// Command benchrunner regenerates every experiment table of
// EXPERIMENTS.md: the experiments E1-E10 that operationalize the
// paper's claims (see DESIGN.md §4 for the per-experiment index).
//
// Usage:
//
//	benchrunner [-scale 1.0] [-only E2,E5]
//
// The scale factor shrinks workloads proportionally for quick runs; the
// recorded EXPERIMENTS.md numbers use -scale 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		scale = flag.Float64("scale", 1.0, "workload scale factor (1 = EXPERIMENTS.md size)")
		only  = flag.String("only", "", "comma-separated experiment ids to run (e.g. E1,E4)")
	)
	flag.Parse()

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, e := range bench.All() {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		fmt.Printf("### %s — %s\n\n", e.ID, e.Claim)
		t0 := time.Now()
		tab := e.Run(*scale)
		fmt.Print(tab.String())
		fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "benchrunner: no experiments matched -only")
		os.Exit(1)
	}
	fmt.Printf("ran %d experiments at scale %g in %s\n", ran, *scale, time.Since(start).Round(time.Millisecond))
}
