// Command benchrunner regenerates every experiment table of
// EXPERIMENTS.md: the experiments E1-E10 that operationalize the
// paper's claims (see DESIGN.md §4 for the per-experiment index).
//
// Usage:
//
//	benchrunner [-scale 1.0] [-only E2,E5]
//	benchrunner -json BENCH_PR2.json [-scale 0.05] [-compare BENCH_baseline.json] [-tolerance 0.30]
//
// The scale factor shrinks workloads proportionally for quick runs; the
// recorded EXPERIMENTS.md numbers use -scale 1.
//
// With -json, benchrunner runs the benchmark-regression suite instead of
// the experiment tables and writes machine-readable results (ns/op per
// E7/bitemporal row) to the given file. With -compare it additionally
// loads a baseline report and exits nonzero when any shared row regressed
// by more than -tolerance (fractional ns/op increase) — the CI
// benchmark-regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		scale     = flag.Float64("scale", 1.0, "workload scale factor (1 = EXPERIMENTS.md size)")
		only      = flag.String("only", "", "comma-separated experiment ids to run (e.g. E1,E4)")
		jsonOut   = flag.String("json", "", "run the regression suite and write results to this file (skips the experiment tables)")
		compare   = flag.String("compare", "", "baseline regression JSON to compare against; exit 1 on regression")
		tolerance = flag.Float64("tolerance", 0.30, "allowed fractional ns/op regression vs the -compare baseline")
	)
	flag.Parse()

	if *jsonOut != "" || *compare != "" {
		if err := runRegression(*scale, *jsonOut, *compare, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, e := range bench.All() {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		fmt.Printf("### %s — %s\n\n", e.ID, e.Claim)
		t0 := time.Now()
		tab := e.Run(*scale)
		fmt.Print(tab.String())
		fmt.Printf("(%s in %s)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "benchrunner: no experiments matched -only")
		os.Exit(1)
	}
	fmt.Printf("ran %d experiments at scale %g in %s\n", ran, *scale, time.Since(start).Round(time.Millisecond))
}

// runRegression measures the regression suite, writes the JSON report,
// and compares against a baseline when given.
func runRegression(scale float64, jsonOut, baselinePath string, tolerance float64) error {
	start := time.Now()
	rep := bench.RegressionSuite(scale)
	fmt.Printf("regression suite at scale %g (%d rows in %s, GOMAXPROCS=%d, NumCPU=%d)\n",
		scale, len(rep.Results), time.Since(start).Round(time.Millisecond),
		rep.GoMaxProcs, rep.NumCPU)
	for _, m := range rep.Results {
		if m.AllocsPerOp > 0 {
			fmt.Printf("  %-28s %12.1f ns/op %14.0f ops/s %10.2f allocs/op\n",
				m.Name, m.NsPerOp, m.OpsPerSec, m.AllocsPerOp)
		} else {
			fmt.Printf("  %-28s %12.1f ns/op %14.0f ops/s\n", m.Name, m.NsPerOp, m.OpsPerSec)
		}
	}

	if jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("encode report: %w", err)
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}

	if baselinePath == "" {
		return nil
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base bench.RegressionReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("decode baseline %s: %w", baselinePath, err)
	}

	failures := 0

	// Absolute ns/op rows only compare meaningfully on the hardware class
	// that recorded the baseline: cross-machine, per-core speed and real
	// parallelism shift every row by more than any useful tolerance. On a
	// hardware mismatch the absolute gate is skipped (with a loud note to
	// refresh the baseline); the same-run contention invariant below still
	// applies everywhere.
	hwMatch := base.NumCPU == rep.NumCPU && base.GoMaxProcs == rep.GoMaxProcs
	if !hwMatch {
		fmt.Printf("note: baseline hardware (num_cpu=%d gomaxprocs=%d) differs from this machine "+
			"(num_cpu=%d gomaxprocs=%d); absolute ns/op comparison skipped — refresh the baseline on "+
			"this hardware class:\n  go run ./cmd/benchrunner -json %s -scale %g\n",
			base.NumCPU, base.GoMaxProcs, rep.NumCPU, rep.GoMaxProcs, baselinePath, rep.Scale)
	} else {
		if base.Scale != rep.Scale {
			fmt.Printf("note: baseline scale %g differs from run scale %g\n", base.Scale, rep.Scale)
		}
		curByName := make(map[string]bench.Measurement, len(rep.Results))
		for _, m := range rep.Results {
			curByName[m.Name] = m
		}
		baseNames := make(map[string]bool, len(base.Results))
		fmt.Printf("comparing against %s (tolerance %.0f%%):\n", baselinePath, tolerance*100)
		for _, b := range base.Results {
			baseNames[b.Name] = true
			m, ok := curByName[b.Name]
			if !ok {
				// A baseline row with no current counterpart means a
				// benchmark was renamed or deleted without refreshing the
				// baseline — fail rather than silently ungate the path.
				fmt.Printf("  %-28s MISSING from current run\n", b.Name)
				failures++
				continue
			}
			if b.NsPerOp <= 0 {
				continue
			}
			ratio := m.NsPerOp / b.NsPerOp
			status := "ok"
			if ratio > 1+tolerance {
				status = "REGRESSED"
				failures++
			}
			fmt.Printf("  %-28s %12.1f ns/op   baseline %10.1f   %.2fx  %s\n",
				b.Name, m.NsPerOp, b.NsPerOp, ratio, status)
		}
		for _, m := range rep.Results {
			if !baseNames[m.Name] {
				fmt.Printf("  %-28s %12.1f ns/op   (new row, no baseline)\n", m.Name, m.NsPerOp)
			}
		}
	}

	// Allocation counts are hardware-independent, so the allocs/op gate
	// applies even when the absolute ns/op comparison was skipped: a
	// 1-CPU CI container still catches a hot path growing allocations.
	failures += checkAllocRegressions(rep, &base, tolerance)
	failures += checkContentionInvariant(rep)
	failures += checkIngestScaling(rep)
	failures += checkFanoutOverhead(rep)
	failures += checkScanUnderIngest(rep)
	failures += checkPartitionedScan(rep)
	failures += checkIndexedQuery(rep)
	failures += checkRecoverySpeedup(rep)
	failures += checkVFSOverhead(rep)
	failures += checkDegradedIngest(rep)
	failures += checkWALTruncate(rep)
	failures += checkCompactReclaim(rep)
	failures += checkParallelRecovery(rep)
	failures += checkColdScan(rep)

	if failures > 0 {
		return fmt.Errorf("%d benchmark gate failure(s) vs %s", failures, baselinePath)
	}
	fmt.Println("no regressions")
	return nil
}

// checkAllocRegressions compares allocs/op for rows both reports carry
// the metric on, with the same fractional tolerance as ns/op.
func checkAllocRegressions(rep, base *bench.RegressionReport, tolerance float64) int {
	curByName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		curByName[m.Name] = m
	}
	failures := 0
	for _, b := range base.Results {
		if b.AllocsPerOp <= 0 {
			continue
		}
		m, ok := curByName[b.Name]
		if !ok || m.AllocsPerOp <= 0 {
			// A baseline row carried the metric but the current run does
			// not: the allocation gate is the only gate on 1-CPU runners,
			// so losing the metric must fail, not silently ungate.
			fmt.Printf("  %-28s MISSING allocs_per_op in current run\n", b.Name)
			failures++
			continue
		}
		ratio := m.AllocsPerOp / b.AllocsPerOp
		status := "ok"
		if ratio > 1+tolerance {
			status = "ALLOCS REGRESSED"
			failures++
		}
		fmt.Printf("  %-28s %10.2f allocs/op  baseline %8.2f   %.2fx  %s\n",
			b.Name, m.AllocsPerOp, b.AllocsPerOp, ratio, status)
	}
	return failures
}

// ingestSpeedupMin is the required serial/par4 elements-per-second ratio
// on hardware that can actually run 4 workers in parallel. On fewer CPUs
// (or a capped GOMAXPROCS) the workers time-share cores and the gate is
// skipped — there the allocs/op gate on the serial row stands in.
const ingestSpeedupMin = 1.5

// checkIngestScaling enforces the parallel-ingestion payoff: with >= 4
// CPUs available, 4 workers must move at least ingestSpeedupMin times the
// serial elements/sec in the same report.
func checkIngestScaling(rep *bench.RegressionReport) int {
	byName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		byName[m.Name] = m
	}
	serial, ok1 := byName["e7/ingest-serial"]
	par4, ok2 := byName["e7/ingest-par4"]
	if !ok1 || !ok2 || par4.NsPerOp <= 0 {
		// The rows disappearing means the suite was renamed without
		// updating this gate — fail rather than silently ungate the
		// parallel pipeline.
		fmt.Printf("  %-28s MISSING ingest-serial/ingest-par4 rows\n", "e7/ingest")
		return 1
	}
	speedup := serial.NsPerOp / par4.NsPerOp
	if rep.NumCPU < 4 || rep.GoMaxProcs < 4 {
		fmt.Printf("  %-28s serial/par4 speedup %.2fx (not gated: num_cpu=%d gomaxprocs=%d < 4)\n",
			"e7/ingest", speedup, rep.NumCPU, rep.GoMaxProcs)
		return 0
	}
	status := "ok"
	failures := 0
	if speedup < ingestSpeedupMin {
		status = "PARALLEL INGEST REGRESSED"
		failures++
	}
	fmt.Printf("  %-28s serial/par4 speedup %.2fx (min %.1fx)  %s\n",
		"e7/ingest", speedup, ingestSpeedupMin, status)
	return failures
}

// fanoutOverheadMax bounds the ingest slowdown of carrying 1k push
// subscribers (one permanently stalled) on the subscription broker: the
// watched-store change capture plus the non-blocking watermark hand-off
// may cost at most 10% of serial ingest throughput. On fewer than 4 CPUs
// the 1k drain goroutines time-share the ingest core and the ratio
// measures scheduling, not broker overhead, so the gate is skipped.
const fanoutOverheadMax = 1.10

// checkFanoutOverhead enforces the zero-ish-cost subscription contract:
// e7/fanout-1k-subscribers ns/op must stay within fanoutOverheadMax of
// e7/ingest-serial in the same report.
func checkFanoutOverhead(rep *bench.RegressionReport) int {
	byName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		byName[m.Name] = m
	}
	serial, ok1 := byName["e7/ingest-serial"]
	fanout, ok2 := byName["e7/fanout-1k-subscribers"]
	if !ok1 || !ok2 || serial.NsPerOp <= 0 {
		// Renaming the rows without updating this gate must fail loudly,
		// not silently ungate the fan-out path.
		fmt.Printf("  %-28s MISSING ingest-serial/fanout-1k-subscribers rows\n", "e7/fanout")
		return 1
	}
	ratio := fanout.NsPerOp / serial.NsPerOp
	if rep.NumCPU < 4 || rep.GoMaxProcs < 4 {
		fmt.Printf("  %-28s fanout/serial overhead %.2fx (not gated: num_cpu=%d gomaxprocs=%d < 4)\n",
			"e7/fanout", ratio, rep.NumCPU, rep.GoMaxProcs)
		return 0
	}
	status := "ok"
	failures := 0
	if ratio > fanoutOverheadMax {
		status = "FAN-OUT OVERHEAD REGRESSED"
		failures++
	}
	fmt.Printf("  %-28s fanout/serial overhead %.2fx (max %.2fx)  %s\n",
		"e7/fanout", ratio, fanoutOverheadMax, status)
	return failures
}

// scanUnderIngestMin is the required lock-all/snapshot latency ratio for
// wildcard scans racing 4 background writers: the snapshot-epoch read
// path must be at least this much faster than the retained all-shard
// read-lock gather. Like the ingest-scaling gate it only engages where
// readers and writers can truly run in parallel; on fewer CPUs everything
// time-shares one core and the ratio hovers near 1x, so the gate reports
// without failing.
const scanUnderIngestMin = 2.0

// checkScanUnderIngest enforces the lock-free-scan payoff using the
// same-run snapshot vs lock-all pair — hardware-independent in the same
// sense as the contention invariant, gated only on >= 4 CPUs.
func checkScanUnderIngest(rep *bench.RegressionReport) int {
	byName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		byName[m.Name] = m
	}
	snap, ok1 := byName["e7/scan-under-ingest/snapshot"]
	lockAll, ok2 := byName["e7/scan-under-ingest/lock-all"]
	if !ok1 || !ok2 || snap.NsPerOp <= 0 {
		// The rows disappearing means the suite was renamed without
		// updating this gate — fail rather than silently ungate the
		// lock-free read path.
		fmt.Printf("  %-28s MISSING snapshot/lock-all rows\n", "e7/scan-under-ingest")
		return 1
	}
	ratio := lockAll.NsPerOp / snap.NsPerOp
	if rep.NumCPU < 4 || rep.GoMaxProcs < 4 {
		fmt.Printf("  %-28s lock-all/snapshot ratio %.2fx (not gated: num_cpu=%d gomaxprocs=%d < 4)\n",
			"e7/scan-under-ingest", ratio, rep.NumCPU, rep.GoMaxProcs)
		return 0
	}
	status := "ok"
	failures := 0
	if ratio < scanUnderIngestMin {
		status = "LOCK-FREE SCAN REGRESSED"
		failures++
	}
	fmt.Printf("  %-28s lock-all/snapshot ratio %.2fx (min %.1fx)  %s\n",
		"e7/scan-under-ingest", ratio, scanUnderIngestMin, status)
	return failures
}

// partitionedScanMin is the required serial/par4 latency ratio for the
// quiet-store snapshot gather: the shard-partitioned parallel gather
// must be at least this much faster than the serial List on machines
// that can actually run 4 gather workers in parallel. On fewer CPUs the
// workers time-share cores, partitioning buys nothing, and the gate is
// skipped.
const partitionedScanMin = 2.0

// checkPartitionedScan enforces the partitioned-gather payoff using the
// same-run scan-serial / scan-par4 pair, gated only on >= 4 CPUs.
func checkPartitionedScan(rep *bench.RegressionReport) int {
	byName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		byName[m.Name] = m
	}
	serial, ok1 := byName["e7/scan-serial"]
	par4, ok2 := byName["e7/scan-par4"]
	if !ok1 || !ok2 || par4.NsPerOp <= 0 {
		// The rows disappearing means the suite was renamed without
		// updating this gate — fail rather than silently ungate the
		// partitioned execution path.
		fmt.Printf("  %-28s MISSING scan-serial/scan-par4 rows\n", "e7/scan-partitioned")
		return 1
	}
	speedup := serial.NsPerOp / par4.NsPerOp
	if rep.NumCPU < 4 || rep.GoMaxProcs < 4 {
		fmt.Printf("  %-28s serial/par4 speedup %.2fx (not gated: num_cpu=%d gomaxprocs=%d < 4)\n",
			"e7/scan-partitioned", speedup, rep.NumCPU, rep.GoMaxProcs)
		return 0
	}
	status := "ok"
	failures := 0
	if speedup < partitionedScanMin {
		status = "PARTITIONED SCAN REGRESSED"
		failures++
	}
	fmt.Printf("  %-28s serial/par4 speedup %.2fx (min %.1fx)  %s\n",
		"e7/scan-partitioned", speedup, partitionedScanMin, status)
	return failures
}

// indexedQueryMin is the required fullscan/indexed latency ratio for the
// selective range query: pushing the bounds into the gather and pruning
// by the value-envelope index must beat scan-and-filter by at least this
// much. Both rows run serially (parallelism 1) in the same process, so
// like the contention invariant the ratio needs no hardware-class
// baseline and is gated everywhere.
const indexedQueryMin = 1.5

// checkIndexedQuery enforces the value-index payoff using the same-run
// query-fullscan / query-indexed pair.
func checkIndexedQuery(rep *bench.RegressionReport) int {
	byName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		byName[m.Name] = m
	}
	full, ok1 := byName["e7/query-fullscan"]
	indexed, ok2 := byName["e7/query-indexed"]
	if !ok1 || !ok2 || indexed.NsPerOp <= 0 {
		// The rows disappearing means the suite was renamed without
		// updating this gate — fail rather than silently ungate the
		// value-index path.
		fmt.Printf("  %-28s MISSING query-fullscan/query-indexed rows\n", "e7/query-indexed")
		return 1
	}
	ratio := full.NsPerOp / indexed.NsPerOp
	status := "ok"
	failures := 0
	if ratio < indexedQueryMin {
		status = "INDEXED QUERY REGRESSED"
		failures++
	}
	fmt.Printf("  %-28s fullscan/indexed ratio %.2fx (min %.1fx)  %s\n",
		"e7/query-indexed", ratio, indexedQueryMin, status)
	return failures
}

// recoverySpeedupMin is the required wal/segment cold-start ratio: a
// durable directory (segment bulk-load + WAL-tail replay) must recover
// at least this much faster than replaying the full WAL. Both rows run
// in the same process on the same machine and disk, so like the
// contention invariant the ratio needs no hardware-class baseline; the
// gate self-disables only when the measured recovery is too brief to
// time reliably (tiny -scale runs).
const recoverySpeedupMin = 3.0

// recoveryGateMinElapsed is the minimum full-WAL recovery wall time for
// the recovery gate to engage; below it the rows are reported, not
// gated.
const recoveryGateMinElapsed = 10 * time.Millisecond

// checkRecoverySpeedup enforces the durable cold-start payoff using the
// same-run recover-wal / recover-segment pair.
func checkRecoverySpeedup(rep *bench.RegressionReport) int {
	byName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		byName[m.Name] = m
	}
	wal, ok1 := byName["e7/recover-wal"]
	seg, ok2 := byName["e7/recover-segment"]
	if !ok1 || !ok2 || seg.NsPerOp <= 0 {
		// The rows disappearing means the suite was renamed without
		// updating this gate — fail rather than silently ungate the
		// durable recovery path.
		fmt.Printf("  %-28s MISSING recover-wal/recover-segment rows\n", "e7/recover")
		return 1
	}
	ratio := wal.NsPerOp / seg.NsPerOp
	if walElapsed := time.Duration(wal.NsPerOp * float64(wal.Ops)); walElapsed < recoveryGateMinElapsed {
		fmt.Printf("  %-28s wal/segment speedup %.2fx (not gated: wal recovery %s < %s)\n",
			"e7/recover", ratio, walElapsed.Round(time.Microsecond), recoveryGateMinElapsed)
		return 0
	}
	status := "ok"
	failures := 0
	if ratio < recoverySpeedupMin {
		status = "RECOVERY REGRESSED"
		failures++
	}
	fmt.Printf("  %-28s wal/segment speedup %.2fx (min %.1fx)  %s\n",
		"e7/recover", ratio, recoverySpeedupMin, status)
	return failures
}

// vfsOverheadMax bounds the flush-workload cost of the always-pluggable
// fault-injection seam: an empty FaultFS wrap (rules armed: none) may
// cost at most 5% over the vfs.OS passthrough. Both rows run the same
// workload in the same process on the same disk, so the ratio needs no
// hardware-class baseline; the gate self-disables only when the plain
// leg is too brief to time reliably (tiny -scale runs).
const vfsOverheadMax = 1.05

// vfsGateMinElapsed is the minimum plain-leg wall time for the VFS and
// degraded-ingest gates to engage; below it the rows are reported, not
// gated.
const vfsGateMinElapsed = 10 * time.Millisecond

// checkVFSOverhead enforces the free-when-idle injection contract using
// the same-run flush-os / flush-vfs-overhead pair.
func checkVFSOverhead(rep *bench.RegressionReport) int {
	byName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		byName[m.Name] = m
	}
	plain, ok1 := byName["e7/flush-os"]
	wrapped, ok2 := byName["e7/flush-vfs-overhead"]
	if !ok1 || !ok2 || plain.NsPerOp <= 0 {
		// The rows disappearing means the suite was renamed without
		// updating this gate — fail rather than silently ungate the
		// injection seam.
		fmt.Printf("  %-28s MISSING flush-os/flush-vfs-overhead rows\n", "e7/flush-vfs")
		return 1
	}
	ratio := wrapped.NsPerOp / plain.NsPerOp
	if elapsed := time.Duration(plain.NsPerOp * float64(plain.Ops)); elapsed < vfsGateMinElapsed {
		fmt.Printf("  %-28s wrap/os overhead %.2fx (not gated: flush-os run %s < %s)\n",
			"e7/flush-vfs", ratio, elapsed.Round(time.Microsecond), vfsGateMinElapsed)
		return 0
	}
	status := "ok"
	failures := 0
	if ratio > vfsOverheadMax {
		status = "VFS OVERHEAD REGRESSED"
		failures++
	}
	fmt.Printf("  %-28s wrap/os overhead %.2fx (max %.2fx)  %s\n",
		"e7/flush-vfs", ratio, vfsOverheadMax, status)
	return failures
}

// degradedIngestMax bounds degraded-mode ingest against healthy durable
// ingest in the same report: dropping WAL appends and parking flushes
// must never cost more than 10% over the healthy path — degraded mode
// is a pressure valve, not a new bottleneck.
const degradedIngestMax = 1.10

// checkDegradedIngest enforces the degraded-mode cost bound using the
// same-run ingest-durable / ingest-degraded pair.
func checkDegradedIngest(rep *bench.RegressionReport) int {
	byName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		byName[m.Name] = m
	}
	healthy, ok1 := byName["e7/ingest-durable"]
	degraded, ok2 := byName["e7/ingest-degraded"]
	if !ok1 || !ok2 || healthy.NsPerOp <= 0 {
		// The rows disappearing means the suite was renamed without
		// updating this gate — fail rather than silently ungate the
		// degraded path.
		fmt.Printf("  %-28s MISSING ingest-durable/ingest-degraded rows\n", "e7/ingest-degraded")
		return 1
	}
	ratio := degraded.NsPerOp / healthy.NsPerOp
	if elapsed := time.Duration(healthy.NsPerOp * float64(healthy.Ops)); elapsed < vfsGateMinElapsed {
		fmt.Printf("  %-28s degraded/durable ratio %.2fx (not gated: ingest-durable run %s < %s)\n",
			"e7/ingest-degraded", ratio, elapsed.Round(time.Microsecond), vfsGateMinElapsed)
		return 0
	}
	status := "ok"
	failures := 0
	if ratio > degradedIngestMax {
		status = "DEGRADED INGEST REGRESSED"
		failures++
	}
	fmt.Printf("  %-28s degraded/durable ratio %.2fx (max %.2fx)  %s\n",
		"e7/ingest-degraded", ratio, degradedIngestMax, status)
	return failures
}

// walTruncateRatioMax bounds the 8x-tail/1x-tail truncation cost ratio.
// Both legs drop the same NUMBER of WAL files; the 8x leg's files hold
// eight times the records. Whole-file truncation is O(files), so the
// ratio sits near 1x — an O(records) in-place tail rewrite would push it
// toward 8x. Both legs run in the same process on the same disk, so the
// ratio needs no hardware-class baseline; the gate self-disables only
// when the 1x leg is too brief for the clock to resolve the ratio.
const walTruncateRatioMax = 3.0

// walTruncateGateMinElapsed is the minimum 1x-leg wall time for the
// truncation gate to engage.
const walTruncateGateMinElapsed = 200 * time.Microsecond

// checkWALTruncate enforces tail-length independence of WAL truncation
// using the same-run tail-1x / tail-8x pair.
func checkWALTruncate(rep *bench.RegressionReport) int {
	byName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		byName[m.Name] = m
	}
	one, ok1 := byName["e7/wal-truncate/tail-1x"]
	eight, ok2 := byName["e7/wal-truncate/tail-8x"]
	if !ok1 || !ok2 || one.NsPerOp <= 0 {
		// The rows disappearing means the suite was renamed without
		// updating this gate — fail rather than silently ungate the
		// truncation path.
		fmt.Printf("  %-28s MISSING tail-1x/tail-8x rows\n", "e7/wal-truncate")
		return 1
	}
	ratio := eight.NsPerOp / one.NsPerOp
	if elapsed := time.Duration(one.NsPerOp * float64(one.Ops)); elapsed < walTruncateGateMinElapsed {
		fmt.Printf("  %-28s tail-8x/tail-1x ratio %.2fx (not gated: tail-1x run %s < %s)\n",
			"e7/wal-truncate", ratio, elapsed.Round(time.Microsecond), walTruncateGateMinElapsed)
		return 0
	}
	status := "ok"
	failures := 0
	if ratio > walTruncateRatioMax {
		status = "WAL TRUNCATION REGRESSED"
		failures++
	}
	fmt.Printf("  %-28s tail-8x/tail-1x ratio %.2fx (max %.1fx)  %s\n",
		"e7/wal-truncate", ratio, walTruncateRatioMax, status)
	return failures
}

// compactReclaimMax bounds the merged/unmerged restart load: after a
// full Compact, the catalog's frame-slot count at restart must be at
// most half the unmerged chain's. The rows carry FrameSlots as Ops —
// a deterministic count, so the gate applies on every machine with no
// timing floor.
const compactReclaimMax = 0.5

// checkCompactReclaim enforces the merge-reclaim payoff using the
// same-run compact-reclaim unmerged / merged pair.
func checkCompactReclaim(rep *bench.RegressionReport) int {
	byName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		byName[m.Name] = m
	}
	unmerged, ok1 := byName["e7/compact-reclaim/unmerged"]
	merged, ok2 := byName["e7/compact-reclaim/merged"]
	if !ok1 || !ok2 || unmerged.Ops <= 0 {
		// The rows disappearing means the suite was renamed without
		// updating this gate — fail rather than silently ungate the
		// compaction path.
		fmt.Printf("  %-28s MISSING unmerged/merged rows\n", "e7/compact-reclaim")
		return 1
	}
	ratio := float64(merged.Ops) / float64(unmerged.Ops)
	status := "ok"
	failures := 0
	if ratio > compactReclaimMax {
		status = "COMPACTION RECLAIM REGRESSED"
		failures++
	}
	fmt.Printf("  %-28s merged/unmerged frame slots %.2fx (max %.1fx)  %s\n",
		"e7/compact-reclaim", ratio, compactReclaimMax, status)
	return failures
}

// recoverParSpeedupMin is the required serial/parallel cold-start ratio
// on a fully flushed directory: sharding frame decode across GOMAXPROCS
// workers must at least halve the serial load time on machines with >= 4
// CPUs. On fewer the workers time-share cores and the gate is skipped,
// as it is when the serial load is too brief to time reliably.
const recoverParSpeedupMin = 2.0

// checkParallelRecovery enforces the parallel cold-start payoff using
// the same-run recover-serial / recover-par pair.
func checkParallelRecovery(rep *bench.RegressionReport) int {
	byName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		byName[m.Name] = m
	}
	par, ok1 := byName["e7/recover-par"]
	serial, ok2 := byName["e7/recover-serial"]
	if !ok1 || !ok2 || par.NsPerOp <= 0 {
		// The rows disappearing means the suite was renamed without
		// updating this gate — fail rather than silently ungate the
		// parallel loader.
		fmt.Printf("  %-28s MISSING recover-par/recover-serial rows\n", "e7/recover-par")
		return 1
	}
	speedup := serial.NsPerOp / par.NsPerOp
	if rep.NumCPU < 4 || rep.GoMaxProcs < 4 {
		fmt.Printf("  %-28s serial/parallel speedup %.2fx (not gated: num_cpu=%d gomaxprocs=%d < 4)\n",
			"e7/recover-par", speedup, rep.NumCPU, rep.GoMaxProcs)
		return 0
	}
	if elapsed := time.Duration(serial.NsPerOp * float64(serial.Ops)); elapsed < recoveryGateMinElapsed {
		fmt.Printf("  %-28s serial/parallel speedup %.2fx (not gated: serial load %s < %s)\n",
			"e7/recover-par", speedup, elapsed.Round(time.Microsecond), recoveryGateMinElapsed)
		return 0
	}
	status := "ok"
	failures := 0
	if speedup < recoverParSpeedupMin {
		status = "PARALLEL RECOVERY REGRESSED"
		failures++
	}
	fmt.Printf("  %-28s serial/parallel speedup %.2fx (min %.1fx)  %s\n",
		"e7/recover-par", speedup, recoverParSpeedupMin, status)
	return failures
}

// coldScanRatioMax bounds the scan-cold/scan-resident latency ratio for
// the selective prepared query: with per-segment value envelopes pruning
// all but one flush segment before any pread, a fully evicted directory
// must answer within this factor of the all-resident run. Both rows run
// the same query over the same directory shape in the same process, so
// the ratio needs no hardware-class baseline; the gate self-disables
// only when the resident leg is too brief to time reliably.
const coldScanRatioMax = 3.0

// coldScanGateMinElapsed is the minimum resident-leg wall time for the
// cold-scan gate to engage.
const coldScanGateMinElapsed = 5 * time.Millisecond

// checkColdScan enforces the out-of-core scan bound using the same-run
// scan-resident / scan-cold pair.
func checkColdScan(rep *bench.RegressionReport) int {
	byName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		byName[m.Name] = m
	}
	resident, ok1 := byName["e7/scan-resident"]
	cold, ok2 := byName["e7/scan-cold"]
	if !ok1 || !ok2 || resident.NsPerOp <= 0 {
		// The rows disappearing means the suite was renamed without
		// updating this gate — fail rather than silently ungate the
		// out-of-core scan path.
		fmt.Printf("  %-28s MISSING scan-resident/scan-cold rows\n", "e7/scan-cold")
		return 1
	}
	ratio := cold.NsPerOp / resident.NsPerOp
	if elapsed := time.Duration(resident.NsPerOp * float64(resident.Ops)); elapsed < coldScanGateMinElapsed {
		fmt.Printf("  %-28s cold/resident ratio %.2fx (not gated: resident run %s < %s)\n",
			"e7/scan-cold", ratio, elapsed.Round(time.Microsecond), coldScanGateMinElapsed)
		return 0
	}
	status := "ok"
	failures := 0
	if ratio > coldScanRatioMax {
		status = "COLD SCAN REGRESSED"
		failures++
	}
	fmt.Printf("  %-28s cold/resident ratio %.2fx (max %.1fx)  %s\n",
		"e7/scan-cold", ratio, coldScanRatioMax, status)
	return failures
}

// shardedRatioLimit bounds how much slower the sharded store may run than
// the single-lock baseline in the same report. On machines with cores to
// spare the sharded rows should be well under 1x; on a single CPU the 8
// goroutines time-share one core and the ratio hovers around 1x (striping
// buys nothing, hashing costs a little). 1.5x catches a pathological
// striping regression on any hardware without flaking on either.
const shardedRatioLimit = 1.5

// checkContentionInvariant enforces the same-run sharded-vs-single-lock
// pairs — a hardware-independent gate, since both sides of each ratio are
// measured on this machine in this process.
func checkContentionInvariant(rep *bench.RegressionReport) int {
	byName := make(map[string]bench.Measurement, len(rep.Results))
	for _, m := range rep.Results {
		byName[m.Name] = m
	}
	failures := 0
	for _, pair := range []string{"e7/find-par8", "e7/put-par8"} {
		sharded, ok1 := byName[pair+"/sharded"]
		single, ok2 := byName[pair+"/single-lock"]
		if !ok1 || !ok2 || single.NsPerOp <= 0 {
			// The invariant rows disappearing means the suite was renamed
			// without updating this gate — fail rather than silently
			// ungate the sharding property.
			fmt.Printf("  %-28s MISSING sharded/single-lock rows\n", pair)
			failures++
			continue
		}
		ratio := sharded.NsPerOp / single.NsPerOp
		status := "ok"
		if ratio > shardedRatioLimit {
			status = "SHARDING REGRESSED"
			failures++
		}
		fmt.Printf("  %-28s sharded/single-lock ratio %.2fx (limit %.1fx)  %s\n",
			pair, ratio, shardedRatioLimit, status)
	}
	return failures
}
