// Command stateserve replays a persisted state log and exposes the
// reconstructed repository over HTTP — the §3.2 interoperability
// scenario: "stream processing systems can expose their state and query
// the state of other systems."
//
// Usage:
//
//	stateserve -log state.log [-addr :8080]
//
// Then, from anywhere:
//
//	curl -s -X POST localhost:8080/query \
//	     -d '{"query":"SELECT entity, value FROM position"}'
//	curl -s 'localhost:8080/fact?entity=ann&attr=position&at=35'
//	curl -s localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/server"
	"repro/internal/state"
)

func main() {
	var (
		logFile = flag.String("log", "", "state log file to replay (required)")
		addr    = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if err := run(*logFile, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "stateserve:", err)
		os.Exit(1)
	}
}

func run(logFile, addr string) error {
	if logFile == "" {
		return fmt.Errorf("-log is required")
	}
	store := state.NewStore()
	n, err := state.ReplayFile(logFile, store)
	if err != nil {
		return err
	}
	st := store.Stats()
	fmt.Printf("replayed %d mutations (%d keys, %d versions); serving on %s\n",
		n, st.Keys, st.Versions, addr)
	return http.ListenAndServe(addr, server.New(store, nil))
}
