// Command statestream runs the explicit-state engine over one of the
// paper's three workloads, applies the matching state management rules,
// and answers on-demand queries against the resulting state repository.
//
// Usage:
//
//	statestream -workload security [-policy state-first] [-scale 1.0]
//	            [-rules file.rules] [-log state.log] [query ...]
//
// Each trailing argument is a temporal query executed after the run, e.g.
//
//	statestream -workload security \
//	    "SELECT entity, value FROM position LIMIT 5" \
//	    "SELECT value, count(*) FROM position HISTORY GROUP BY value"
//
// With -log, every state mutation is appended to the named file, which
// cmd/stateql can replay and query offline.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/stream"
	"repro/internal/workload"
)

// builtinRules maps each workload to its canonical state management rules.
var builtinRules = map[string]string{
	"security": `
RULE position ON RoomEntry AS r THEN REPLACE position(r.visitor) = r.room
RULE exit ON BuildingExit AS r THEN RETRACT position(r.visitor)`,
	"clickstream": `
RULE open ON Enter AS x THEN REPLACE active(x.user) = true
RULE close ON Leave AS x THEN RETRACT active(x.user)`,
	"ecommerce": `
RULE classify ON Reclassify AS c THEN REPLACE class(c.product) = c.class`,
}

func main() {
	var (
		workloadName = flag.String("workload", "security", "workload: security, clickstream, or ecommerce")
		policyName   = flag.String("policy", "state-first", "interaction policy: state-first, stream-first, or snapshot")
		scale        = flag.Float64("scale", 1.0, "workload scale factor")
		rulesFile    = flag.String("rules", "", "rule file overriding the built-in rules")
		logFile      = flag.String("log", "", "append state mutations to this log file")
	)
	flag.Parse()
	if err := run(*workloadName, *policyName, *scale, *rulesFile, *logFile, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "statestream:", err)
		os.Exit(1)
	}
}

func run(workloadName, policyName string, scale float64, rulesFile, logFile string, queries []string) error {
	policy, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	els, err := generate(workloadName, scale)
	if err != nil {
		return err
	}
	opts := []core.Option{core.WithPolicy(policy)}
	if logFile != "" {
		l, err := state.CreateLog(logFile)
		if err != nil {
			return err
		}
		defer l.Close()
		opts = append(opts, core.WithLog(l))
	}
	engine := core.New(opts...)

	src := builtinRules[workloadName]
	if rulesFile != "" {
		b, err := os.ReadFile(rulesFile)
		if err != nil {
			return err
		}
		src = string(b)
	}
	if err := engine.DeployRules(src); err != nil {
		return err
	}

	if err := engine.Run(stream.FromElements(els)); err != nil {
		return err
	}

	st := engine.Store().Stats()
	fmt.Printf("processed %d elements (policy %s); state: %d keys, %d versions, %d current, %d records\n",
		engine.ElementsIn(), policy, st.Keys, st.Versions, st.Current, st.Records)

	for _, q := range queries {
		fmt.Printf("\n> %s\n", q)
		res, err := engine.Query(q)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	return nil
}

func parsePolicy(name string) (core.Policy, error) {
	switch name {
	case "state-first":
		return core.StateFirst, nil
	case "stream-first":
		return core.StreamFirst, nil
	case "snapshot":
		return core.Snapshot, nil
	}
	return 0, fmt.Errorf("unknown policy %q", name)
}

func generate(name string, scale float64) ([]*element.Element, error) {
	scaleInt := func(n int) int {
		v := int(float64(n) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	switch name {
	case "security":
		cfg := workload.DefaultBuilding()
		cfg.Visitors = scaleInt(cfg.Visitors)
		els, _ := workload.Building(cfg)
		return els, nil
	case "clickstream":
		cfg := workload.DefaultClickstream()
		cfg.Users = scaleInt(cfg.Users)
		els, _ := workload.Clickstream(cfg)
		return renameClickstreamFields(els), nil
	case "ecommerce":
		cfg := workload.DefaultEcommerce()
		cfg.Sales = scaleInt(cfg.Sales)
		els, _ := workload.Ecommerce(cfg)
		return els, nil
	}
	return nil, fmt.Errorf("unknown workload %q (want security, clickstream, or ecommerce)", name)
}

// renameClickstreamFields adapts the generator's "visitor" field to the
// "user" field the built-in clickstream rules use.
func renameClickstreamFields(els []*element.Element) []*element.Element {
	schema := element.NewSchema(
		element.Field{Name: "user", Kind: element.KindString},
		element.Field{Name: "page", Kind: element.KindString},
	)
	out := make([]*element.Element, len(els))
	for i, el := range els {
		user, _ := el.Get("visitor")
		page, _ := el.Get("page")
		ne := element.New(el.Stream, el.Timestamp, element.NewTuple(schema, user, page))
		ne.Seq = el.Seq
		out[i] = ne
	}
	return out
}
