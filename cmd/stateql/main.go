// Command stateql replays a persisted state log (written by
// cmd/statestream -log or any program using state.Log) and answers
// temporal queries against the reconstructed repository — the paper's
// §3.2 "queryable state" benefit, offline: the state outlives the stream
// processor that built it.
//
// The reconstructed repository is bitemporal: retroactive corrections in
// the log replay with their original transaction times, so SYSTEM TIME
// ASOF queries recover any past belief —
//
//	stateql -log state.log "SELECT entity, value FROM position ASOF 1m SYSTEM TIME ASOF 30s"
//
// Usage:
//
//	stateql -log state.log "SELECT entity, value FROM position" \
//	                       "SELECT * FROM * HISTORY LIMIT 20"
//	stateql -log state.log -i     # interactive REPL (\q quits, \stats, \help)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/query"
	"repro/internal/state"
	"repro/internal/temporal"
)

func main() {
	logFile := flag.String("log", "", "state log file to replay (required)")
	interactive := flag.Bool("i", false, "interactive mode: read queries from stdin")
	flag.Parse()
	if err := run(*logFile, *interactive, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "stateql:", err)
		os.Exit(1)
	}
}

func run(logFile string, interactive bool, queries []string) error {
	if logFile == "" {
		return fmt.Errorf("-log is required")
	}
	if !interactive && len(queries) == 0 {
		return fmt.Errorf("no queries given (use -i for interactive mode)")
	}
	store := state.NewStore()
	n, err := state.ReplayFile(logFile, store)
	if err != nil {
		return err
	}
	st := store.Stats()
	fmt.Printf("replayed %d mutations: %d keys, %d versions, %d current, %d superseded\n",
		n, st.Keys, st.Versions, st.Current, st.Superseded)

	// Anchor now() past every stored validity start so CURRENT sees the
	// final state.
	var horizon temporal.Instant
	for _, f := range store.Scan(nil) {
		if f.Validity.Start > horizon {
			horizon = f.Validity.Start
		}
	}
	ex := &query.Executor{Store: store, Now: horizon + 1}
	for _, q := range queries {
		fmt.Printf("\n> %s\n", q)
		res, err := ex.Run(q)
		if err != nil {
			return err
		}
		fmt.Print(res)
	}
	if interactive {
		return repl(ex, store)
	}
	return nil
}

// repl reads queries line by line. Errors are reported, not fatal; \q or
// EOF ends the session; \stats prints store occupancy; \help lists the
// dialect.
func repl(ex *query.Executor, store *state.Store) error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	fmt.Print("stateql> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q` || line == "exit" || line == "quit":
			return nil
		case line == `\stats`:
			st := store.Stats()
			fmt.Printf("keys=%d versions=%d current=%d attributes=%d records=%d superseded=%d\n",
				st.Keys, st.Versions, st.Current, st.Attributes, st.Records, st.Superseded)
		case line == `\help`:
			fmt.Print(`SELECT cols FROM attr [CURRENT | ASOF t | DURING a TO b | HISTORY]
       [SYSTEM TIME ASOF tt] [WHERE expr] [GROUP BY cols] [ORDER BY cols] [LIMIT n]
columns: entity, attribute, value, start, end, recorded, superseded
SYSTEM TIME ASOF tt queries the belief held at transaction time tt.
`)
		default:
			res, err := ex.Run(line)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Print(res)
			}
		}
		fmt.Print("stateql> ")
	}
	fmt.Println()
	return sc.Err()
}
