package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("zero histogram")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Errorf("count: %d", h.Count())
	}
	if h.Min() != time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Errorf("min/max: %v %v", h.Min(), h.Max())
	}
	wantMean := time.Duration(50500) * time.Nanosecond
	if h.Mean() != wantMean {
		t.Errorf("mean: %v want %v", h.Mean(), wantMean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 30*time.Microsecond || p50 > 80*time.Microsecond {
		t.Errorf("p50 out of tolerance: %v", p50)
	}
	if h.Quantile(1.0) < h.Quantile(0.5) {
		t.Error("quantiles must be monotone")
	}
	if !strings.Contains(h.String(), "n=100") {
		t.Errorf("string: %s", h.String())
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Record(0)             // clamps to 1ns bucket
	h.Record(2 * time.Hour) // clamps to last bucket
	if h.Count() != 2 {
		t.Error("count")
	}
	if h.Quantile(0.01) > time.Microsecond {
		t.Errorf("low quantile: %v", h.Quantile(0.01))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	b.Record(2 * time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 || a.Max() != 3*time.Millisecond || a.Min() != time.Millisecond {
		t.Errorf("merge: %s", a.String())
	}
	var empty Histogram
	empty.Merge(&a)
	if empty.Count() != 3 || empty.Min() != time.Millisecond {
		t.Error("merge into empty")
	}
}

func TestThroughput(t *testing.T) {
	tp := StartThroughput()
	tp.Add(500)
	tp.Add(500)
	if tp.Events() != 1000 {
		t.Errorf("events: %d", tp.Events())
	}
	if tp.PerSecond() <= 0 {
		t.Errorf("rate: %f", tp.PerSecond())
	}
}

func TestHeapAlloc(t *testing.T) {
	before := HeapAlloc()
	buf := make([]byte, 8<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	after := HeapAlloc()
	if after <= before {
		t.Skip("allocation not visible; GC timing")
	}
	_ = buf[0]
}

func TestTable(t *testing.T) {
	tab := NewTable("E1: demo", "param", "metric")
	tab.AddRow("b", 2.5)
	tab.AddRow("a", 10.0)
	tab.SortByFirstColumn()
	s := tab.String()
	if !strings.Contains(s, "## E1: demo") || !strings.Contains(s, "param") {
		t.Errorf("table:\n%s", s)
	}
	if strings.Index(s, "\na ") > strings.Index(s, "\nb ") {
		t.Errorf("sorting failed:\n%s", s)
	}
	if !strings.Contains(s, "10") || !strings.Contains(s, "2.500") {
		t.Errorf("float formatting:\n%s", s)
	}
	if len(tab.Rows()) != 2 {
		t.Error("rows")
	}
}

func TestFormatFloat(t *testing.T) {
	if formatFloat(1234.5678) != "1234.6" {
		t.Errorf("large: %s", formatFloat(1234.5678))
	}
	if formatFloat(3) != "3" {
		t.Errorf("integral: %s", formatFloat(3))
	}
	if formatFloat(0.1234) != "0.123" {
		t.Errorf("small: %s", formatFloat(0.1234))
	}
}
