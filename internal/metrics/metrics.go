// Package metrics provides the measurement instruments for the experiment
// harness: latency histograms with logarithmic buckets, throughput meters,
// and heap probes. All experiments in EXPERIMENTS.md report numbers
// collected through this package.
package metrics

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram records durations in logarithmic buckets (one per power of
// ~1.25 between 1ns and ~1h) plus exact min/max/sum. The zero value is
// ready to use. Not safe for concurrent use.
type Histogram struct {
	counts [256]uint64
	n      uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

const bucketBase = 1.25

func bucketFor(d time.Duration) int {
	if d < 1 {
		d = 1
	}
	b := int(math.Log(float64(d)) / math.Log(bucketBase))
	if b < 0 {
		b = 0
	}
	if b > 255 {
		b = 255
	}
	return b
}

func bucketValue(b int) time.Duration {
	return time.Duration(math.Pow(bucketBase, float64(b)))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.counts[bucketFor(d)]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the exact mean of all observations.
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an estimate of the q-quantile (0 < q <= 1), accurate to
// the bucket resolution (~25%).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	target := uint64(q * float64(h.n))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for b, c := range h.counts {
		seen += c
		if seen >= target {
			return bucketValue(b)
		}
	}
	return h.max
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.n, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.max)
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	for b, c := range o.counts {
		h.counts[b] += c
	}
	if o.n > 0 {
		if h.n == 0 || o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.n += o.n
	h.sum += o.sum
}

// Counter is a monotonically increasing event count, safe for concurrent
// use. The zero value is ready. The subscription broker counts drops,
// resyncs, and skipped batches with it.
type Counter struct{ n atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an instantaneous level (e.g. queue depth, subscriber count),
// safe for concurrent use. The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Throughput measures events per second over a wall-clock run.
type Throughput struct {
	start  time.Time
	events uint64
}

// StartThroughput begins a measurement.
func StartThroughput() *Throughput { return &Throughput{start: time.Now()} }

// Add counts n events.
func (t *Throughput) Add(n uint64) { t.events += n }

// Events returns the event count.
func (t *Throughput) Events() uint64 { return t.events }

// PerSecond returns events per wall-clock second so far.
func (t *Throughput) PerSecond() float64 {
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.events) / el
}

// HeapAlloc returns the current live-heap estimate after a GC, in bytes.
// Experiments use before/after deltas to attribute retained memory to a
// structure under test.
func HeapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// Table accumulates rows for an experiment report and renders them as an
// aligned text table (the EXPERIMENTS.md format).
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Rows returns the accumulated rows.
func (t *Table) Rows() [][]string { return t.rows }

// SortByFirstColumn orders rows lexicographically by their first cell.
func (t *Table) SortByFirstColumn() {
	sort.SliceStable(t.rows, func(i, j int) bool { return t.rows[i][0] < t.rows[j][0] })
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, hn := range t.Headers {
		widths[i] = len(hn)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := ""
	if t.Title != "" {
		out += "## " + t.Title + "\n"
	}
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			if i > 0 {
				s += "  "
			}
			s += pad(c, widths[i])
		}
		return s + "\n"
	}
	out += line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = dashes(widths[i])
	}
	out += line(sep)
	for _, row := range t.rows {
		out += line(row)
	}
	return out
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
