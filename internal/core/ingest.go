// Parallel micro-batch ingestion (WithParallelism). The watermark — the
// boundary the Snapshot policy already treats as the micro-batch edge —
// delimits batches: elements buffer between watermarks, and each batch
// runs through a three-phase pipeline before the watermark advances:
//
//  1. Parallel rule phase: elements are partitioned by routing key
//     (FNV-1a, the state store's shard hash) onto workers. Each worker
//     applies the stream-trigger rules of its elements in order. For
//     streams whose routed rules are all pure (state-free REPLACE/EMIT;
//     see rules.Set.StreamPure) the writes are deferred and
//     group-committed via state.Store.PutBatch — one lock acquisition
//     per touched shard and one WAL frame per flush; impure elements
//     flush the pending batch first, preserving the worker's write
//     order, then write through.
//  2. Serial pattern phase: CEP matchers are stateful and order-
//     sensitive across streams, so pattern-trigger rules observe the
//     batch's elements in input order on the driver goroutine.
//  3. Serial processor phase: for each element in input order, stream
//     processors evaluate exactly as in the serial path — gates and
//     enrichment read the state at the policy's instant — followed by
//     the element's derived emissions.
//
// Derived (EMIT) elements from both rule phases are merged per input
// element by rule deployment order and numbered with one TakeSeq
// reservation, reproducing the serial path's sequence assignment.
//
// Determinism: with parallelism n the pipeline produces byte-identical
// outputs, state, and (replayed) WAL to the serial path provided:
//
//   - the routing key co-locates each state lineage's writers — all
//     elements whose rules write the same (entity, attribute) share a
//     key — so per-lineage write order is the input order;
//   - rule clauses (WHERE/WHEN) and rule-action expressions do not read
//     state written within the same micro-batch by elements of a
//     different routing key, at any timestamp: phase-1 reads happen
//     physically during the fan-out, so a same-batch cross-key write
//     may not have been applied yet regardless of its logical instant
//     (cross-batch reads are always safe — earlier batches are fully
//     committed at the barrier);
//   - pattern-trigger rules that write state touch only lineages that
//     the batch's stream-trigger rules neither read nor write: pattern
//     actions apply in phase 2, after every phase-1 write;
//   - processor gates and enrichment do not depend on state written at
//     the very same timestamp by other elements of the batch (same or
//     different routing key): phase 3 runs after the rule phases, so a
//     gate read at instant t observes the batch's final state at t,
//     where serial execution lets earlier elements observe a prefix of
//     the writes at t.
//
// Watermark-pinned Snapshot reads make the last condition vacuous for
// that policy, and workloads with strictly increasing timestamps
// satisfy it trivially. The serial path (parallelism 1, the
// default) remains the semantic oracle: core's determinism tests drive
// identical inputs through both and require identical results.

package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/element"
	"repro/internal/rules"
	"repro/internal/state"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// processBuffered is Process under WithParallelism(n > 1): elements
// buffer until a watermark closes the micro-batch.
func (e *Engine) processBuffered(m stream.Message) error {
	if m.IsWatermark {
		if err := e.flushBatch(); err != nil {
			return err
		}
		return e.advance(m.Watermark)
	}
	e.pending = append(e.pending, m.El)
	return nil
}

// Flush forces out any buffered partial micro-batch (elements received
// since the last watermark). Run calls it after its final message; use it
// directly when feeding Process one message at a time without a trailing
// watermark. A no-op on the serial path.
func (e *Engine) Flush() error {
	if e.parallelism > 1 {
		return e.flushBatch()
	}
	return nil
}

// CompactBefore prunes store history before t (see state.CompactBefore),
// sweeping shards in parallel bounded by the engine's ingestion
// parallelism.
func (e *Engine) CompactBefore(t temporal.Instant) int {
	return e.store.CompactBeforeWithWorkers(t, e.parallelism)
}

// routeKey resolves an element's partition key.
func (e *Engine) routeKey(el *element.Element) string {
	if e.routingKey != nil {
		return e.routingKey(el)
	}
	if el.Tuple != nil && el.Tuple.Schema().Len() > 0 {
		if v, ok := el.Get(el.Tuple.Schema().Field(0).Name); ok {
			return v.String()
		}
	}
	return el.Stream
}

// flushBatch drives one micro-batch through the three-phase pipeline.
// On a rule error the error of the lowest-indexed failing element is
// returned and the batch aborts: unlike a serial run, writes of elements
// after the failing one may already be applied (workers abort
// cooperatively, not instantly) and the batch's emissions and processor
// outputs are not dispatched. Errors end the run; the partial state is
// not specified beyond "every applied write is a prefix-consistent
// per-key sequence".
func (e *Engine) flushBatch() error {
	els := e.pending
	if len(els) == 0 {
		return nil
	}
	e.pending = nil
	e.elements += uint64(len(els))

	// Under the Snapshot policy, an element at the snapshot instant
	// (timestamp == the last watermark) writes at the very transaction
	// time the view is pinned to: serial execution order is observable
	// for it — its gates must not see its own writes, while later
	// elements of the batch must see them. Peel such elements (they can
	// only lead the batch) onto the serial path; every remaining element
	// writes strictly after the pinned view, where physical interleaving
	// is invisible to snapshot reads.
	if e.policy == Snapshot {
		i := 0
		for i < len(els) && els[i].Timestamp <= e.pinned.At() {
			if err := e.processElement(els[i]); err != nil {
				return err
			}
			i++
		}
		els = els[i:]
		if len(els) == 0 {
			return nil
		}
	}

	streamFired := make([][]rules.Fired, len(els))
	if e.ruleSet != nil {
		if err := e.parallelRulePhase(els, streamFired); err != nil {
			return err
		}
	}

	var patternFired [][]rules.Fired
	if e.ruleSet != nil && e.ruleSet.HasPatterns() {
		patternFired = make([][]rules.Fired, len(els))
		for i, el := range els {
			if err := e.ruleSet.ApplyPatterns(el, e.store, &patternFired[i]); err != nil {
				return err
			}
		}
	}

	// Merge each element's emissions into deployment order and number
	// them with one sequence reservation, matching serial assignment.
	total := 0
	for i := range els {
		total += len(streamFired[i])
		if patternFired != nil {
			total += len(patternFired[i])
		}
	}
	var seq uint64
	if e.ruleSet != nil {
		seq = e.ruleSet.TakeSeq(total)
	}
	for i, el := range els {
		derived := streamFired[i]
		if patternFired != nil {
			derived = mergeFired(derived, patternFired[i])
		}
		for _, f := range derived {
			f.El.Seq = seq
			seq++
			e.emitted = append(e.emitted, f.El)
			if e.wmTap {
				e.wmEmitted = append(e.wmEmitted, f.El)
			}
		}
		e.trimEmitted()
		e.dispatchElement(el, derived)
	}
	return nil
}

// parallelRulePhase partitions els by routing key and applies their
// stream-trigger rules on up to e.parallelism workers. streamFired[i]
// receives element i's emissions; only element i's worker writes it.
func (e *Engine) parallelRulePhase(els []*element.Element, streamFired [][]rules.Fired) error {
	nw := e.parallelism
	if nw > len(els) {
		nw = len(els)
	}
	parts := make([][]int, nw)
	for i, el := range els {
		w := int(state.HashString(e.routeKey(el)) % uint64(nw))
		parts[w] = append(parts[w], i)
	}

	errs := make([]error, nw)
	errAt := make([]int, nw)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, idxs []int) {
			defer wg.Done()
			var batch []state.BatchPut
			flush := func() error {
				if len(batch) == 0 {
					return nil
				}
				err := e.store.PutBatch(batch)
				batch = batch[:0]
				return err
			}
			for _, i := range idxs {
				// Cooperative abort: once any worker fails, stop applying
				// further elements to bound the divergence from serial.
				if failed.Load() {
					return
				}
				el := els[i]
				var err error
				if e.ruleSet.StreamPure(el.Stream) {
					err = e.ruleSet.ApplyStreamBatch(el, e.store, &batch, &streamFired[i])
				} else if err = flush(); err == nil {
					err = e.ruleSet.ApplyStream(el, e.store, &streamFired[i])
				}
				if err != nil {
					errs[w], errAt[w] = err, i
					failed.Store(true)
					return
				}
			}
			if err := flush(); err != nil {
				errs[w], errAt[w] = err, idxs[len(idxs)-1]
				failed.Store(true)
			}
		}(w, idxs)
	}
	wg.Wait()

	var firstErr error
	first := len(els)
	for w := range errs {
		if errs[w] != nil && errAt[w] < first {
			first, firstErr = errAt[w], errs[w]
		}
	}
	return firstErr
}

// dispatchElement runs the serial processor phase for one element and its
// derived emissions, at the policy's state-read instants — the same
// per-element switch the serial Process performs.
func (e *Engine) dispatchElement(el *element.Element, derived []rules.Fired) {
	switch e.policy {
	case StateFirst:
		e.processStreams(el, el.Timestamp)
		for _, d := range derived {
			e.processStreams(d.El, d.El.Timestamp)
		}
	case StreamFirst:
		e.processStreams(el, el.Timestamp-1)
		for _, d := range derived {
			e.processStreams(d.El, d.El.Timestamp-1)
		}
	case Snapshot:
		e.processStreams(el, e.pinned.At())
		for _, d := range derived {
			e.processStreams(d.El, e.pinned.At())
		}
	}
}

// mergeFired merges two deployment-ordered emission lists into one, by
// rule index (stable: equal indices cannot occur across the two phases).
func mergeFired(a, b []rules.Fired) []rules.Fired {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]rules.Fired, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].RuleIdx <= b[j].RuleIdx {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
