package core

import (
	"testing"

	"repro/internal/cql"
	"repro/internal/element"
	"repro/internal/lang"
	"repro/internal/reason"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/window"
)

var entrySchema = element.NewSchema(
	element.Field{Name: "visitor", Kind: element.KindString},
	element.Field{Name: "room", Kind: element.KindString},
)

var saleSchema = element.NewSchema(
	element.Field{Name: "product", Kind: element.KindString},
	element.Field{Name: "amount", Kind: element.KindFloat},
)

func entry(ts int64, visitor, room string) *element.Element {
	return element.New("RoomEntry", temporal.Instant(ts),
		element.NewTuple(entrySchema, element.String(visitor), element.String(room)))
}

func sale(ts int64, product string, amount float64) *element.Element {
	return element.New("Sale", temporal.Instant(ts),
		element.NewTuple(saleSchema, element.String(product), element.Float(amount)))
}

func mustExpr(t *testing.T, src string) lang.Expr {
	t.Helper()
	e, err := lang.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSecurityUseCase is the paper's §1 building-security scenario
// end-to-end: state management rules keep one position per visitor, and
// the state is queryable at any instant without contradictions.
func TestSecurityUseCase(t *testing.T) {
	e := New(StateFirst)
	if err := e.DeployRules(`
RULE position ON RoomEntry AS r THEN REPLACE position(r.visitor) = r.room`); err != nil {
		t.Fatal(err)
	}
	msgs := stream.FromElements([]*element.Element{
		entry(10, "ann", "hall"), entry(20, "bob", "hall"),
		entry(30, "ann", "lab"), entry(40, "ann", "vault"), entry(50, "bob", "lab"),
	})
	if err := e.Run(msgs); err != nil {
		t.Fatal(err)
	}
	// At every probed instant each visitor is in exactly one room.
	for _, at := range []temporal.Instant{15, 25, 35, 45} {
		for _, who := range []string{"ann", "bob"} {
			facts := e.Store().AsOfByAttribute("position", at)
			n := 0
			for _, f := range facts {
				if f.Entity == who {
					n++
				}
			}
			if n > 1 {
				t.Fatalf("visitor %s in %d rooms at %d", who, n, at)
			}
		}
	}
	res, err := e.Query("SELECT entity, value FROM position ORDER BY entity")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].MustString() != "vault" || res.Rows[1][1].MustString() != "lab" {
		t.Fatalf("final positions: %v", res.Rows)
	}
	// Historical query: where was ann at 35?
	res, err = e.Query("SELECT value FROM position ASOF 35 WHERE entity = 'ann'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "lab" {
		t.Fatalf("ann at 35: %v", res.Rows)
	}
}

// TestEcommerceTrendWithEnrichment is the §3.1 case study: sales trends
// grouped by the *current* product classification, where classification
// changes arrive on a separate stream handled by state management rules.
func TestEcommerceTrendWithEnrichment(t *testing.T) {
	e := New(StateFirst)
	reclassSchema := element.NewSchema(
		element.Field{Name: "product", Kind: element.KindString},
		element.Field{Name: "class", Kind: element.KindString},
	)
	if err := e.DeployRules(`
RULE classify ON Reclassify AS c THEN REPLACE class(c.product) = c.class`); err != nil {
		t.Fatal(err)
	}
	trend := cql.NewQuery("Trend", "Sale", window.NewTumblingTime(100), false, cql.IStream,
		cql.NewAggregate([]string{"class"},
			cql.AggSpec{Func: cql.Sum, Field: "amount", As: "total"}),
	)
	if err := e.DeployProcessor(&Processor{
		Name:   "trend",
		Source: "Sale",
		Enrich: []EnrichSpec{{Attr: "class", EntityField: "product", As: "class"}},
		Op:     trend,
	}); err != nil {
		t.Fatal(err)
	}
	reclass := func(ts int64, product, class string) *element.Element {
		return element.New("Reclassify", temporal.Instant(ts),
			element.NewTuple(reclassSchema, element.String(product), element.String(class)))
	}
	els := []*element.Element{
		reclass(0, "p1", "books"),
		sale(10, "p1", 5),
		sale(20, "p1", 7),
		reclass(50, "p1", "toys"), // reclassification mid-window
		sale(60, "p1", 100),
	}
	if err := e.Run(stream.FromElements(els)); err != nil {
		t.Fatal(err)
	}
	if err := e.Process(stream.WatermarkMsg(100)); err != nil {
		t.Fatal(err)
	}
	out := e.Output("trend")
	// Window [0,100): books=12, toys=100 — sales are attributed to the
	// classification current at sale time, not at window close.
	if len(out) != 2 {
		t.Fatalf("trend output: %v", out)
	}
	got := map[string]float64{}
	for _, el := range out {
		got[el.MustGet("class").MustString()] = el.MustGet("total").MustFloat()
	}
	if got["books"] != 12 || got["toys"] != 100 {
		t.Fatalf("totals: %v", got)
	}
}

// TestClickstreamGate is §1's click-stream scenario with §5's claim that
// state can "limit the amount of streaming data that needs to be
// analyzed": only active users' clicks reach the (expensive) processor.
func TestClickstreamGate(t *testing.T) {
	e := New(StateFirst)
	if err := e.DeployRules(`
RULE enter ON Enter AS x THEN REPLACE active(x.visitor) = true
RULE leave ON Leave AS x THEN RETRACT active(x.visitor)`); err != nil {
		t.Fatal(err)
	}
	if err := e.DeployProcessor(&Processor{
		Name:   "clicks",
		Source: "Click",
		Gate:   mustExpr(t, "EXISTS active(e.visitor)"),
	}); err != nil {
		t.Fatal(err)
	}
	mk := func(stream string, ts int64, who string) *element.Element {
		return element.New(stream, temporal.Instant(ts),
			element.NewTuple(entrySchema, element.String(who), element.String("-")))
	}
	els := []*element.Element{
		mk("Click", 5, "ann"), // before enter: gated
		mk("Enter", 10, "ann"),
		mk("Click", 20, "ann"), // passes
		mk("Click", 30, "bob"), // never entered: gated
		mk("Leave", 40, "ann"),
		mk("Click", 50, "ann"), // after leave: gated
	}
	if err := e.Run(stream.FromElements(els)); err != nil {
		t.Fatal(err)
	}
	out := e.Output("clicks")
	if len(out) != 1 || out[0].Timestamp != 20 {
		t.Fatalf("gated clicks: %v", out)
	}
	st := e.Stats()[0]
	if st.Seen != 4 || st.Gated != 3 || st.Processed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestPolicySemantics checks the §3.3 ablation: an element whose rule
// updates state at t is visible to a same-timestamp gate only under
// StateFirst.
func TestPolicySemantics(t *testing.T) {
	build := func(p Policy) *Engine {
		e := New(p)
		if err := e.DeployRules(`
RULE enter ON Enter AS x THEN REPLACE active(x.visitor) = true`); err != nil {
			t.Fatal(err)
		}
		if err := e.DeployProcessor(&Processor{
			Name: "enters", Source: "Enter",
			Gate: mustExpr(t, "EXISTS active(e.visitor)"),
		}); err != nil {
			t.Fatal(err)
		}
		return e
	}
	mk := func(ts int64, who string) *element.Element {
		return element.New("Enter", temporal.Instant(ts),
			element.NewTuple(entrySchema, element.String(who), element.String("-")))
	}
	// StateFirst: the Enter at t=10 activates ann before the gate runs.
	e1 := build(StateFirst)
	e1.Run(stream.FromElements([]*element.Element{mk(10, "ann")}))
	if len(e1.Output("enters")) != 1 {
		t.Error("StateFirst: same-tick state should be visible")
	}
	// StreamFirst: the gate sees the state as of t-1 — ann not yet active.
	e2 := build(StreamFirst)
	e2.Run(stream.FromElements([]*element.Element{mk(10, "ann")}))
	if len(e2.Output("enters")) != 0 {
		t.Error("StreamFirst: same-tick state should be invisible")
	}
	// Snapshot: visibility lags to the last watermark.
	e3 := build(Snapshot)
	e3.Process(stream.ElementMsg(mk(10, "ann")))
	e3.Process(stream.ElementMsg(mk(11, "ann"))) // still pre-watermark view
	if len(e3.Output("enters")) != 0 {
		t.Error("Snapshot: updates invisible before a watermark")
	}
	e3.Process(stream.WatermarkMsg(12))
	e3.Process(stream.ElementMsg(mk(13, "ann")))
	if len(e3.Output("enters")) != 1 {
		t.Error("Snapshot: updates visible after the watermark")
	}
}

func TestRuleEmitFlowsToProcessors(t *testing.T) {
	e := New(StateFirst)
	if err := e.DeployRules(`
RULE alarm ON RoomEntry AS r WHERE r.room = 'vault'
THEN EMIT Alarm(visitor = r.visitor)`); err != nil {
		t.Fatal(err)
	}
	if err := e.DeployProcessor(&Processor{Name: "alarms", Source: "Alarm"}); err != nil {
		t.Fatal(err)
	}
	e.Run(stream.FromElements([]*element.Element{
		entry(10, "ann", "hall"), entry(20, "ann", "vault"),
	}))
	if len(e.Output("alarms")) != 1 {
		t.Fatalf("alarm routing: %v", e.Output("alarms"))
	}
	if len(e.Emitted()) != 1 {
		t.Fatalf("emitted: %v", e.Emitted())
	}
}

func TestReasonerGateIntegration(t *testing.T) {
	// The gate can rely on derived knowledge: watch anything typed (via
	// taxonomy) as "staff".
	e := New(StateFirst)
	ont := reason.NewOntology()
	if err := ont.SubClassOf("guard", "staff"); err != nil {
		t.Fatal(err)
	}
	e.EnableReasoning(ont)
	e.Store().Put("ann", "type", element.String("guard"), 0)

	if err := e.DeployProcessor(&Processor{
		Name: "staffmoves", Source: "RoomEntry",
		Gate: mustExpr(t, "type(e.visitor) = 'staff' OR EXISTS type(e.visitor)"),
	}); err != nil {
		t.Fatal(err)
	}
	e.Run(stream.FromElements([]*element.Element{
		entry(10, "ann", "lab"), entry(20, "zoe", "lab"),
	}))
	if len(e.Output("staffmoves")) != 1 {
		t.Fatalf("reasoned gate: %v", e.Output("staffmoves"))
	}
	// And WITH INFERENCE works through Engine.Query.
	res, err := e.Query("SELECT entity FROM type WHERE value = 'staff' WITH INFERENCE")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "ann" {
		t.Fatalf("inference query: %v", res.Rows)
	}
}

func TestEngineErrors(t *testing.T) {
	e := New(StateFirst)
	if err := e.DeployProcessor(&Processor{}); err == nil {
		t.Error("unnamed processor should be rejected")
	}
	if err := e.DeployProcessor(&Processor{Name: "p"}); err != nil {
		t.Fatal(err)
	}
	if err := e.DeployProcessor(&Processor{Name: "p"}); err == nil {
		t.Error("duplicate processor should be rejected")
	}
	if err := e.DeployRules("garbage"); err == nil {
		t.Error("bad rules should be rejected")
	}
	if got := e.Output("nosuch"); got != nil {
		t.Error("unknown processor output")
	}
}

func TestWatermarkMonotonic(t *testing.T) {
	e := New(StateFirst)
	e.Process(stream.WatermarkMsg(10))
	e.Process(stream.WatermarkMsg(5)) // regression ignored
	if e.Watermark() != 10 {
		t.Errorf("watermark: %d", e.Watermark())
	}
}

func TestEnrichMissingStateIsNull(t *testing.T) {
	e := New(StateFirst)
	if err := e.DeployProcessor(&Processor{
		Name: "p", Source: "Sale",
		Enrich: []EnrichSpec{{Attr: "class", EntityField: "product", As: "class"}},
	}); err != nil {
		t.Fatal(err)
	}
	e.Run(stream.FromElements([]*element.Element{sale(10, "p1", 1)}))
	out := e.Output("p")
	if len(out) != 1 {
		t.Fatal("missing output")
	}
	if v, ok := out[0].Get("class"); !ok || !v.IsNull() {
		t.Fatalf("enriched value: %v %v", v, ok)
	}
}

func TestElementsInCounter(t *testing.T) {
	e := New(StateFirst)
	e.Run(stream.FromElements([]*element.Element{sale(1, "a", 1), sale(2, "b", 2)}))
	if e.ElementsIn() != 2 {
		t.Errorf("elements in: %d", e.ElementsIn())
	}
	if e.Policy().String() == "" || StreamFirst.String() == "" || Snapshot.String() == "" {
		t.Error("policy strings")
	}
}
