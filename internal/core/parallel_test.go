package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// oracleRules mixes every parallel-relevant rule class: pure REPLACE and
// EMIT rules (deferred group-commit path), an impure RETRACT rule (write-
// through path with batch flushes), and a correlated CEP pattern rule
// (serial pattern phase).
const oracleRules = `
RULE track ON Reading AS r
THEN REPLACE temp(r.sensor) = r.celsius

RULE hot ON Reading AS r WHERE r.celsius > 80
THEN EMIT Hot(sensor = r.sensor, celsius = r.celsius)

RULE clear ON Reset AS x
THEN RETRACT temp(x.sensor)

RULE swing ON SEQ(Up AS a, Down AS b) WITHIN 40ns WHERE a.k = b.k
THEN EMIT Swing(k = a.k)
`

// oracleMessages builds a deterministic mixed workload: strictly
// increasing timestamps (the documented determinism condition), entity-
// keyed first fields, and a watermark every 50 elements.
func oracleMessages(n int) []stream.Message {
	readingSchema := element.NewSchema(
		element.Field{Name: "sensor", Kind: element.KindString},
		element.Field{Name: "celsius", Kind: element.KindFloat},
	)
	resetSchema := element.NewSchema(element.Field{Name: "sensor", Kind: element.KindString})
	upSchema := element.NewSchema(element.Field{Name: "k", Kind: element.KindString})

	rng := rand.New(rand.NewSource(7))
	els := make([]*element.Element, 0, n)
	for i := 0; i < n; i++ {
		ts := temporal.Instant(i + 1)
		var el *element.Element
		switch rng.Intn(10) {
		case 0:
			el = element.New("Reset", ts, element.NewTuple(resetSchema,
				element.String(fmt.Sprintf("s%02d", rng.Intn(16)))))
		case 1:
			el = element.New("Up", ts, element.NewTuple(upSchema,
				element.String(fmt.Sprintf("k%d", rng.Intn(4)))))
		case 2:
			el = element.New("Down", ts, element.NewTuple(upSchema,
				element.String(fmt.Sprintf("k%d", rng.Intn(4)))))
		default:
			el = element.New("Reading", ts, element.NewTuple(readingSchema,
				element.String(fmt.Sprintf("s%02d", rng.Intn(16))),
				element.Float(float64(rng.Intn(100)))))
		}
		el.Seq = uint64(i)
		els = append(els, el)
	}
	return stream.WithPeriodicWatermarks(els, 50)
}

// oracleEngine builds one engine over the oracle workload's rules,
// processors (a state gate plus enrichment), and an attached WAL.
func oracleEngine(t *testing.T, policy Policy, workers int, wal *bytes.Buffer) *Engine {
	t.Helper()
	opts := []Option{WithPolicy(policy), WithParallelism(workers)}
	if wal != nil {
		opts = append(opts, WithLog(state.NewLog(wal)))
	}
	e := New(opts...)
	if err := e.DeployRules(oracleRules); err != nil {
		t.Fatal(err)
	}
	gate := mustExpr(t, "EXISTS temp(e.sensor) AND e.celsius > 20")
	if err := e.DeployProcessor(&Processor{
		Name:   "warm",
		Source: "Reading",
		Gate:   gate,
		Enrich: []EnrichSpec{{Attr: "temp", EntityField: "sensor", As: "known"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.DeployProcessor(&Processor{Name: "alerts", Source: "Hot"}); err != nil {
		t.Fatal(err)
	}
	return e
}

func elementSig(el *element.Element) string {
	return fmt.Sprintf("%d|%s", el.Seq, el.String())
}

func factSig(f *element.Fact) string {
	return fmt.Sprintf("%s|%s|%s|%s|%d|%d|%v|%s",
		f.Entity, f.Attribute, f.Value, f.Validity,
		f.RecordedAt, f.SupersededAt, f.Derived, f.Source)
}

func compareElements(t *testing.T, what string, a, b []*element.Element) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: serial %d elements, parallel %d", what, len(a), len(b))
	}
	for i := range a {
		if elementSig(a[i]) != elementSig(b[i]) {
			t.Fatalf("%s[%d]: serial %s != parallel %s", what, i, elementSig(a[i]), elementSig(b[i]))
		}
	}
}

func compareStores(t *testing.T, what string, a, b *state.Store) {
	t.Helper()
	fa, fb := a.List(state.AllVersions()), b.List(state.AllVersions())
	if len(fa) != len(fb) {
		t.Fatalf("%s: serial %d facts, parallel %d", what, len(fa), len(fb))
	}
	for i := range fa {
		if factSig(fa[i]) != factSig(fb[i]) {
			t.Fatalf("%s fact[%d]: serial %s != parallel %s", what, i, factSig(fa[i]), factSig(fb[i]))
		}
	}
	sa, sb := a.Stats(), b.Stats()
	sa.Shards, sb.Shards = 0, 0 // layout may differ; contents must not
	sa.TxHigh, sb.TxHigh = 0, 0 // clock high-water mark is not state
	if sa != sb {
		t.Fatalf("%s stats: serial %+v, parallel %+v", what, sa, sb)
	}
}

// TestParallelOracle drives identical workloads through the serial engine
// (the semantic oracle) and the 8-worker micro-batch pipeline under every
// interaction policy, requiring byte-identical processor outputs, derived
// elements, state — and that WAL replay of the parallel run reproduces
// the serial run's state.
func TestParallelOracle(t *testing.T) {
	for _, policy := range []Policy{StateFirst, StreamFirst, Snapshot} {
		t.Run(policy.String(), func(t *testing.T) {
			msgs := oracleMessages(2_000)
			var walSerial, walParallel bytes.Buffer
			serial := oracleEngine(t, policy, 1, &walSerial)
			parallel := oracleEngine(t, policy, 8, &walParallel)
			if err := serial.Run(msgs); err != nil {
				t.Fatal(err)
			}
			if err := parallel.Run(msgs); err != nil {
				t.Fatal(err)
			}

			for _, proc := range []string{"warm", "alerts"} {
				compareElements(t, "output "+proc, serial.Output(proc), parallel.Output(proc))
			}
			compareElements(t, "emitted", serial.Emitted(), parallel.Emitted())
			if serial.ElementsIn() != parallel.ElementsIn() {
				t.Fatalf("elements in: %d vs %d", serial.ElementsIn(), parallel.ElementsIn())
			}
			for i, st := range serial.Stats() {
				if pt := parallel.Stats()[i]; st != pt {
					t.Fatalf("processor stats: %+v vs %+v", st, pt)
				}
			}
			compareStores(t, "store", serial.Store(), parallel.Store())

			// WAL replay: the parallel log's record order may differ
			// (workers interleave, batches are framed), but replay must
			// rebuild the same state the serial run left behind.
			fromSerial, fromParallel := state.NewStore(), state.NewStore()
			if _, err := state.Replay(bytes.NewReader(walSerial.Bytes()), fromSerial); err != nil {
				t.Fatal(err)
			}
			if _, err := state.Replay(bytes.NewReader(walParallel.Bytes()), fromParallel); err != nil {
				t.Fatal(err)
			}
			compareStores(t, "replayed", fromSerial, fromParallel)
		})
	}
}

// TestParallelFlushWithoutWatermark: a trailing partial batch (no final
// watermark) must still be processed by Run, matching the serial path.
func TestParallelFlushWithoutWatermark(t *testing.T) {
	msgs := oracleMessages(99) // watermark period 50: 49 trailing elements
	serial := oracleEngine(t, StateFirst, 1, nil)
	parallel := oracleEngine(t, StateFirst, 4, nil)
	if err := serial.Run(msgs); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Run(msgs); err != nil {
		t.Fatal(err)
	}
	compareElements(t, "output warm", serial.Output("warm"), parallel.Output("warm"))
	compareStores(t, "store", serial.Store(), parallel.Store())
}

// TestEmittedRetention: the Emitted buffer is bounded by the retention
// option — at least the most recent n are kept, growth stops at 2n — and
// the retained suffix is the true tail of the emission sequence.
func TestEmittedRetention(t *testing.T) {
	schema := element.NewSchema(element.Field{Name: "sensor", Kind: element.KindString},
		element.Field{Name: "celsius", Kind: element.KindFloat})
	els := make([]*element.Element, 500)
	for i := range els {
		els[i] = element.New("Reading", temporal.Instant(i+1),
			element.NewTuple(schema, element.String("s"), element.Float(90))) // always hot
		els[i].Seq = uint64(i)
	}
	e := New(WithEmittedRetention(10))
	if err := e.DeployRules(oracleRules); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.FromElements(els)); err != nil {
		t.Fatal(err)
	}
	got := e.Emitted()
	if len(got) < 10 || len(got) > 20 {
		t.Fatalf("retention window: %d elements retained, want within [10, 20]", len(got))
	}
	// The retained elements are the most recent emissions, in order.
	last := got[len(got)-1]
	if last.Seq != 499 {
		t.Fatalf("last retained seq: %d, want 499", last.Seq)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("retained suffix not contiguous at %d: %d after %d", i, got[i].Seq, got[i-1].Seq)
		}
	}
}

// TestParallelConcurrentQueries races on-demand reads against parallel
// ingestion: Query, List, and Watermark are documented safe to call
// concurrently with Run. Run under -race in CI.
func TestParallelConcurrentQueries(t *testing.T) {
	msgs := oracleMessages(4_000)
	e := oracleEngine(t, Snapshot, 4, nil)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := e.Query("SELECT entity, value FROM temp"); err != nil {
					t.Error(err)
					return
				}
				e.Store().List(state.WithAttribute("temp"))
				_ = e.Watermark()
			}
		}()
	}
	err := e.Run(msgs)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if e.ElementsIn() != 4_000 {
		t.Fatalf("elements in: %d", e.ElementsIn())
	}
}

// TestEngineCompactBefore: the engine-level sweep (bounded by ingestion
// parallelism) matches the store-level serial sweep.
func TestEngineCompactBefore(t *testing.T) {
	build := func(workers int) *Engine {
		e := New(WithParallelism(workers))
		if err := e.DeployRules(oracleRules); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(oracleMessages(1_000)); err != nil {
			t.Fatal(err)
		}
		return e
	}
	serial, parallel := build(1), build(8)
	rs := serial.CompactBefore(500)
	rp := parallel.CompactBefore(500)
	if rs != rp {
		t.Fatalf("removed: serial %d, parallel %d", rs, rp)
	}
	compareStores(t, "compacted", serial.Store(), parallel.Store())
}
