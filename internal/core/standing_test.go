package core

import (
	"testing"

	"repro/internal/element"
	"repro/internal/query"
	"repro/internal/stream"
)

// TestStandingQueryDrivenByRules closes the Figure 1 loop: input stream →
// state management rule → state change → standing query update, with no
// polling anywhere.
func TestStandingQueryDrivenByRules(t *testing.T) {
	e := New(StateFirst)
	if err := e.DeployRules(`
RULE position ON RoomEntry AS r THEN REPLACE position(r.visitor) = r.room`); err != nil {
		t.Fatal(err)
	}
	var updates []*query.Result
	sq, err := e.RegisterStateQuery("dashboard",
		"SELECT value, count(*) FROM position GROUP BY value ORDER BY value",
		func(r *query.Result) { updates = append(updates, r) })
	if err != nil {
		t.Fatal(err)
	}
	els := []*element.Element{
		entry(10, "ann", "hall"),
		entry(20, "bob", "hall"),
		entry(30, "ann", "lab"),
	}
	if err := e.Run(stream.FromElements(els)); err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Fatal("standing query never fired")
	}
	final := sq.Result()
	// hall: bob; lab: ann.
	if len(final.Rows) != 2 || final.Rows[0][1].MustInt() != 1 || final.Rows[1][1].MustInt() != 1 {
		t.Fatalf("final dashboard: %v", final.Rows)
	}
	// The last pushed update equals the final result.
	last := updates[len(updates)-1]
	if last.String() != final.String() {
		t.Error("pushed result should match Result()")
	}
}

func TestStandingQueryNilCallback(t *testing.T) {
	e := New(StateFirst)
	sq, err := e.RegisterStateQuery("q", "SELECT entity FROM position", nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Store().Put("ann", "position", element.String("hall"), 0)
	if got := sq.Result(); len(got.Rows) != 1 {
		t.Fatalf("result: %v", got.Rows)
	}
	if sq.Updates() != 1 {
		t.Errorf("updates: %d", sq.Updates())
	}
}

func TestStandingQueryErrorsSurface(t *testing.T) {
	e := New(StateFirst)
	if _, err := e.RegisterStateQuery("bad", "SELECT entity FROM *", nil); err == nil {
		t.Error("FROM * should be rejected for standing queries")
	}
}
