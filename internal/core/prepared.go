// Prepared on-demand queries: the engine-level face of the query
// planner (internal/query). Prepare parses and plans once; the returned
// handle executes many times — each execution pins a fresh snapshot (or
// an explicitly supplied one) and runs the partitioned gather with the
// plan's pushed predicates and value bounds.

package core

import (
	"repro/internal/query"
	"repro/internal/state"
	"repro/internal/temporal"
)

// PreparedQuery is a query parsed and planned once against this engine,
// executable many times without re-parsing or re-planning. Handles are
// immutable and safe for concurrent Exec calls.
type PreparedQuery struct {
	e *Engine
	p *query.Prepared
}

// QueryOpt configures one execution of a prepared query.
type QueryOpt func(*queryCfg)

type queryCfg struct {
	snap        *state.Snapshot
	sysTime     temporal.Instant
	hasSysTime  bool
	parallelism int
}

// AtSnapshot evaluates the execution against an explicit pinned
// snapshot handle instead of pinning a fresh one — e.g. the snapshot a
// watermark hook received, so the query observes exactly that batch's
// cut. now() still anchors at the engine's current watermark.
func AtSnapshot(sn *state.Snapshot) QueryOpt {
	return func(c *queryCfg) { c.snap = sn }
}

// AsOfSystemTime pins the execution's belief (transaction time) to t,
// overriding any SYSTEM TIME ASOF clause in the query text.
func AsOfSystemTime(t temporal.Instant) QueryOpt {
	return func(c *queryCfg) { c.sysTime, c.hasSysTime = t, true }
}

// WithQueryParallelism bounds the partitioned gather's workers for this
// execution; n <= 0 restores the default (GOMAXPROCS, with small scans
// degrading to serial). 1 forces a serial gather.
func WithQueryParallelism(n int) QueryOpt {
	return func(c *queryCfg) { c.parallelism = n }
}

// Prepare parses and plans an on-demand query against this engine.
// Exec runs it; Explain reports the physical plan.
func (e *Engine) Prepare(src string) (*PreparedQuery, error) {
	p, err := query.Prepare(src)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{e: e, p: p}, nil
}

// Exec runs the prepared query. By default it pins a fresh snapshot
// handle — one consistent cut of every committed write, read without
// shard locks — and anchors now() at the current watermark, exactly as
// Engine.Query does; options override the snapshot, the belief instant,
// and the gather parallelism.
func (pq *PreparedQuery) Exec(opts ...QueryOpt) (*query.Result, error) {
	var cfg queryCfg
	for _, o := range opts {
		o(&cfg)
	}
	sn := cfg.snap
	if sn == nil {
		sn = pq.e.store.Snapshot()
	}
	return pq.p.Exec(query.ExecEnv{
		Store:       sn,
		Reasoner:    pq.e.reasoner,
		Now:         pq.e.Watermark(),
		Parallelism: cfg.parallelism,
		SysTime:     cfg.sysTime,
		HasSysTime:  cfg.hasSysTime,
	})
}

// Explain returns the physical plan computed at Prepare time. Callers
// must not mutate it.
func (pq *PreparedQuery) Explain() *query.Plan { return pq.p.Explain() }

// Source returns the query text the handle was prepared from.
func (pq *PreparedQuery) Source() string { return pq.p.Source() }
