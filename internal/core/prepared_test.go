package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/element"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// preparedEngine ingests the room-entry workload under one policy and
// returns the engine ready for querying.
func preparedEngine(t *testing.T, p Policy) *Engine {
	t.Helper()
	e := New(p)
	if err := e.DeployRules(`
RULE position ON RoomEntry AS r THEN REPLACE position(r.visitor) = r.room
RULE visits ON RoomEntry AS r THEN REPLACE visits(r.visitor) = 1`); err != nil {
		t.Fatal(err)
	}
	var els []*element.Element
	for i := 0; i < 60; i++ {
		els = append(els, entry(int64(10+i), fmt.Sprintf("v%02d", i%20), fmt.Sprintf("room%d", i%5)))
	}
	if err := e.Run(stream.FromElements(els)); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestPreparedMatchesQueryAcrossPolicies is the engine-level oracle:
// under every interaction policy, the prepared partitioned execution of
// each temporal clause agrees byte for byte with the serial executor on
// the same pinned cut.
func TestPreparedMatchesQueryAcrossPolicies(t *testing.T) {
	srcs := []string{
		"SELECT entity, value FROM position",
		"SELECT entity, value FROM position ASOF 30",
		"SELECT * FROM position DURING 20 TO 50",
		"SELECT entity, start, end FROM position HISTORY",
		"SELECT entity, value FROM position ASOF 30 SYSTEM TIME ASOF 40",
		"SELECT value, count(*) FROM position GROUP BY value ORDER BY value",
	}
	for _, policy := range []Policy{StateFirst, StreamFirst, Snapshot} {
		e := preparedEngine(t, policy)
		snap := e.Store().Snapshot()
		for _, src := range srcs {
			ex := &query.Executor{Store: snap, Now: e.Watermark()}
			want, err := ex.Run(src)
			if err != nil {
				t.Fatalf("%v %q: %v", policy, src, err)
			}
			pq, err := e.Prepare(src)
			if err != nil {
				t.Fatalf("%v %q: %v", policy, src, err)
			}
			for _, par := range []int{1, 4} {
				got, err := pq.Exec(AtSnapshot(snap), WithQueryParallelism(par))
				if err != nil {
					t.Fatalf("%v %q par=%d: %v", policy, src, par, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v %q par=%d:\ngot  %v\nwant %v", policy, src, par, got, want)
				}
			}
			// Engine.Query is the same prepare-and-exec path.
			got, err := e.Query(src)
			if err != nil {
				t.Fatalf("%v %q: %v", policy, src, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v %q via Query:\ngot  %v\nwant %v", policy, src, got, want)
			}
		}
	}
}

// TestPreparedQueryOptions exercises the per-execution knobs: AtSnapshot
// pins an old cut, AsOfSystemTime overrides the belief, and Explain
// reports the plan.
func TestPreparedQueryOptions(t *testing.T) {
	e := New(StateFirst)
	if err := e.DeployRules(`
RULE position ON RoomEntry AS r THEN REPLACE position(r.visitor) = r.room`); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.FromElements([]*element.Element{entry(10, "ann", "hall")})); err != nil {
		t.Fatal(err)
	}
	old := e.Store().Snapshot()
	oldWM := e.Watermark()
	if err := e.Run(stream.FromElements([]*element.Element{entry(20, "ann", "lab")})); err != nil {
		t.Fatal(err)
	}

	pq, err := e.Prepare("SELECT value FROM position")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].MustString() != "lab" {
		t.Fatalf("fresh exec: %v", res.Rows[0][0])
	}
	// The old pin must not see the later entry... but now() has advanced,
	// so ask as of the old watermark.
	pqAsOf, err := e.Prepare("SELECT value FROM position ASOF 10")
	if err != nil {
		t.Fatal(err)
	}
	res, err = pqAsOf.Exec(AtSnapshot(old))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].MustString() != "hall" {
		t.Fatalf("pinned exec: %v", res.Rows[0][0])
	}
	// AsOfSystemTime against the live store: the belief at the old
	// watermark did not yet contain the lab entry.
	res, err = pqAsOf.Exec(AsOfSystemTime(temporal.Instant(oldWM)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].MustString() != "hall" {
		t.Fatalf("systime exec: %v", res.Rows[0][0])
	}

	if pl := pq.Explain(); pl == nil || pl.Attribute != "position" || pl.Temporal != "current" {
		t.Fatalf("explain: %+v", pq.Explain())
	}
	if pq.Source() != "SELECT value FROM position" {
		t.Fatalf("source: %q", pq.Source())
	}
}
