// Package core implements the paper's primary contribution: the stream
// processing engine with explicit state management of Figure 1.
//
// Input streams are routed to two components:
//
//   - The state management component (internal/rules) updates the state
//     repository (internal/state) according to deployed state management
//     rules.
//   - The stream processing component evaluates deployed processors —
//     CQL continuous queries (internal/cql) optionally preceded by
//     state-aware operators (a state-condition gate and state enrichment) —
//     producing output streams.
//
// Users can query the state repository on demand (internal/query), and a
// reasoner (internal/reason) augments both queries and rule conditions
// with ontology-derived facts.
//
// The engine resolves the paper's third open question (§3.3, "interaction
// between stream processing and state") with three pluggable policies; see
// Policy.
//
// With WithDurableDir the engine persists its state repository in a
// durable segment directory (internal/state/segment): flushes are
// pinned at watermarks, restarts recover the exact bitemporal state,
// and Close flushes the final cut.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/element"
	"repro/internal/lang"
	"repro/internal/query"
	"repro/internal/reason"
	"repro/internal/rules"
	"repro/internal/state"
	"repro/internal/state/segment"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// Policy fixes when stream processing observes state updates triggered at
// the same timestamp (§3.3, open question 3).
type Policy int

// Interaction policies.
const (
	// StateFirst (default): at timestamp t, state management rules fire
	// before stream processors evaluate, so processors observe the state
	// as of t including this tick's updates. This matches the paper's
	// security example: the position update must invalidate the previous
	// position before any conclusion is drawn.
	StateFirst Policy = iota
	// StreamFirst: processors at t observe the state as of just before t;
	// rules apply afterwards. Models systems where enrichment lags
	// updates by one tick.
	StreamFirst
	// Snapshot: processors observe an immutable view taken at the last
	// watermark, as micro-batch systems do [14]. The view is
	// transaction-time consistent: gates and enrichment read the state as
	// believed at the watermark (state.AsOfTransactionTime), so even
	// retroactive corrections recorded after the watermark cannot leak
	// into the current micro-batch.
	Snapshot
)

// applyOption makes Policy usable directly as an engine Option, so the
// historical New(StateFirst) call sites keep working unchanged.
func (p Policy) applyOption(e *Engine) { e.policy = p }

// String names the policy.
func (p Policy) String() string {
	switch p {
	case StateFirst:
		return "state-first"
	case StreamFirst:
		return "stream-first"
	}
	return "snapshot"
}

// EnrichSpec adds one field to elements from the state repository: the
// current value of Attr(entity), where entity is read from the element's
// EntityField. Missing state yields Null.
type EnrichSpec struct {
	Attr        string
	EntityField string
	As          string
}

// Processor is one deployed stream processing pipeline: an optional state
// gate, optional state enrichment, then an operator (typically a
// *cql.Query), with a collector sink.
type Processor struct {
	// Name identifies the processor and its output.
	Name string
	// Source limits input to one stream; empty accepts all.
	Source string
	// Gate, when set, drops elements for which the expression is not
	// truthy. The expression sees the element as binding "e" and may read
	// state: EXISTS active(e.user). This is §1's "activating some
	// derivations only when specific conditions on the state are met".
	Gate lang.Expr
	// Enrich appends state-derived fields to the element before the
	// operator sees it.
	Enrich []EnrichSpec
	// Op is the stream operator; nil passes elements straight to the sink.
	Op stream.Operator

	sink *stream.Collector
	// stats
	seen, gated, processed uint64
	enrichSchemas          map[*element.Schema]*element.Schema
}

// ProcessorStats reports element counters for one processor.
type ProcessorStats struct {
	Name string
	// Seen counts elements offered to the processor.
	Seen uint64
	// Gated counts elements dropped by the state gate.
	Gated uint64
	// Processed counts elements that reached the operator.
	Processed uint64
}

// Engine is the explicit-state stream processing system.
type Engine struct {
	policy     Policy
	store      *state.Store
	ruleSet    *rules.Set
	processors []*Processor
	reasoner   *reason.Reasoner

	// parallelism is the ingestion worker count; 1 is the serial path
	// (see ingest.go). routingKey partitions elements onto workers.
	parallelism int
	routingKey  func(*element.Element) string
	// pending buffers elements between watermarks when parallelism > 1.
	pending []*element.Element

	// watermark is read by on-demand Query callers concurrently with
	// ingestion, hence atomic (it holds a temporal.Instant).
	watermark atomic.Int64
	// pinned is the snapshot handle taken at the last watermark: the
	// Snapshot policy's view instant (pinned.At()) and the immutable cut
	// its gate/enrich reads resolve against. Re-pinned (O(1)) each time
	// the watermark advances.
	pinned  *state.Snapshot
	emitted []*element.Element
	// emittedCap bounds the retained EMIT-derived elements (0 =
	// unlimited): at least the most recent emittedCap are kept.
	emittedCap int
	elements   uint64

	// gateScratch is the reusable gate evaluation environment; processors
	// run single-threaded, so one scratch per engine suffices.
	gateScratch gateEnv

	// durable is the segment-backed durability layer around the store
	// (WithDurableDir); nil for a purely in-memory engine. durableErr
	// latches an open failure, surfaced by the next Process/Run/Close.
	// The options record intents (durablePath, userLog) and New resolves
	// them after the option loop, so WithDurableDir supersedes WithLog
	// in either order — attaching both would silently split the write
	// stream across two logs and break crash recovery.
	durable     *segment.Store
	durableErr  error
	durablePath string
	durableOpts []segment.Option
	userLog     *state.Log

	// wmHooks are the watermark-boundary taps (OnWatermark): each hook
	// receives the batch closed by an advancing watermark — the pinned
	// snapshot plus the change events and emitted elements accumulated
	// since the previous watermark. With no hooks the engine registers no
	// store watcher, so the unwatched fast path does zero extra work (the
	// store skips event clones entirely when it has no watchers).
	wmHooks []WatermarkHook
	// wmMu guards wmChanges: under WithParallelism the rule workers
	// commit to the store concurrently and the change watcher appends
	// from their goroutines.
	wmMu      sync.Mutex
	wmChanges []state.Change
	wmEmitted []*element.Element
	// wmTap records that the change watcher is installed (set once by the
	// first OnWatermark; read on the emitted hot paths).
	wmTap bool
}

// WatermarkBatch is the unit handed to watermark hooks: everything one
// advancing watermark closed over. Snapshot is the engine's freshly
// pinned O(1) handle at the watermark — hook consumers read catch-up
// state through it lock-free. Changes are the state transitions committed
// since the previous watermark (store change events, in commit order) and
// Emitted the EMIT-derived elements of the same span. The slices are
// owned by the receiver: the engine hands them off and starts fresh
// buffers, so hooks may retain them without copying.
type WatermarkBatch struct {
	// Watermark is the instant that closed the batch.
	Watermark temporal.Instant
	// Snapshot is pinned at Watermark: one consistent multi-shard cut.
	Snapshot *state.Snapshot
	// Changes are the span's state transitions in commit order.
	Changes []state.Change
	// Emitted are the span's EMIT-derived elements in emission order.
	Emitted []*element.Element
}

// WatermarkHook observes watermark batches. Hooks run synchronously on
// the ingestion driver goroutine each time the watermark advances — they
// must not block (the subscription broker, the canonical consumer, does a
// non-blocking channel hand-off and resynchronizes on overflow).
type WatermarkHook func(WatermarkBatch)

// Option configures an Engine at construction. Policy values implement
// Option directly, so both styles work:
//
//	core.New(core.Snapshot)
//	core.New(core.WithPolicy(core.Snapshot), core.WithLog(l), core.WithReasoning(ont))
type Option interface{ applyOption(*Engine) }

// optionFunc adapts a closure to the Option interface.
type optionFunc func(*Engine)

func (f optionFunc) applyOption(e *Engine) { f(e) }

// WithPolicy selects the state/stream interaction policy (default
// StateFirst).
func WithPolicy(p Policy) Option {
	return optionFunc(func(e *Engine) { e.policy = p })
}

// WithLog attaches an append-only mutation log to the state repository,
// so the engine's state survives the process (replayable with
// state.Replay / cmd/stateql). Superseded by WithDurableDir when both
// are given, regardless of option order: the durable directory manages
// its own WAL.
func WithLog(l *state.Log) Option {
	return optionFunc(func(e *Engine) { e.userLog = l })
}

// WithReasoning attaches a reasoner over the given ontology (nil for an
// empty one), as EnableReasoning does.
func WithReasoning(ont *reason.Ontology) Option {
	return optionFunc(func(e *Engine) { e.reasoner = reason.NewReasoner(e.store, ont) })
}

// WithParallelism sets the ingestion worker count (default 1, the exact
// serial semantics). With n > 1 the engine micro-batches elements between
// watermarks and fans rule application out across n workers partitioned
// by routing key; see ingest.go for the pipeline and its determinism
// conditions.
func WithParallelism(n int) Option {
	if n < 1 {
		n = 1
	}
	return optionFunc(func(e *Engine) { e.parallelism = n })
}

// WithRoutingKey sets the partitioning key for parallel ingestion: all
// elements with equal keys are applied by the same worker, in order. The
// key should identify the state lineage(s) the element's rules touch —
// typically the entity. The default uses the element's first tuple field
// (falling back to the stream name), which matches rule sets keyed on the
// leading field, e.g. REPLACE position(e.visitor) over (visitor, room)
// tuples.
func WithRoutingKey(fn func(*element.Element) string) Option {
	return optionFunc(func(e *Engine) { e.routingKey = fn })
}

// WithDurableDir persists the engine's state repository in a durable
// segment directory at path (see internal/state/segment): committed
// lineage heads flush as immutable checksummed segment files as the
// watermark advances, a WAL covers the tail since the last flush, and
// restarting an engine on the same directory recovers the exact
// bitemporal state — manifest, segments, WAL tail — without replaying
// the full history. Opening also replays any existing durable state
// into the fresh engine's store, so construction doubles as recovery.
//
// Flushes pin the engine watermark as their cut. The stream contract
// (elements arrive in timestamp order, none at or before a passed
// watermark) therefore guarantees no write lands behind a durable cut;
// see DESIGN.md "Durability". An open failure (corrupt directory,
// permissions) is latched and returned by the next Process, Run, or
// Close. WithDurableDir attaches its own WAL to the store, superseding
// any WithLog.
//
// Extra segment options (e.g. segment.WithFlushEvery) tune the flush
// cadence.
func WithDurableDir(path string, opts ...segment.Option) Option {
	return optionFunc(func(e *Engine) {
		e.durablePath, e.durableOpts = path, opts
	})
}

// WithResidencyBudget caps the RAM working set of a durable engine at n
// estimated bytes (see segment.WithResidencyBudget): as the watermark
// advances, fully-flushed least-recently-used lineages are evicted from
// RAM, reads fall through to their segment frames, and writes fault
// them back in — derived state larger than RAM keeps serving. A
// convenience wrapper over the extra-options slot of WithDurableDir;
// it has no effect without WithDurableDir.
func WithResidencyBudget(n int64) Option {
	return optionFunc(func(e *Engine) {
		e.durableOpts = append(e.durableOpts, segment.WithResidencyBudget(n))
	})
}

// WithAutoCompact schedules per-shard state compaction from ingest
// progress: once any single shard of the store has accumulated growth new
// records since its last sweep, the next write to that shard compacts its
// history older than retain behind the engine's watermark. Only the
// grown shard is swept — compaction load follows each shard's own write
// rate instead of store-wide passes — and since compaction publishes
// fresh lineage heads, in-flight lock-free readers are never blocked by
// a sweep. Disabled by default; growth <= 0 disables it explicitly.
func WithAutoCompact(retain time.Duration, growth int) Option {
	return optionFunc(func(e *Engine) {
		e.store.SetCompactionPolicy(&state.CompactionPolicy{
			GrowthThreshold: growth,
			Horizon: func() temporal.Instant {
				wm := e.Watermark()
				if wm == temporal.MinInstant {
					return temporal.MinInstant
				}
				return wm.Add(-retain)
			},
		})
	})
}

// DefaultEmittedRetention bounds Emitted's buffer unless overridden: a
// long-running ingest no longer accumulates every derived element forever.
const DefaultEmittedRetention = 1 << 16

// WithEmittedRetention bounds how many EMIT-derived elements the engine
// retains for Emitted: at least the most recent n are kept (n <= 0 keeps
// everything, the historical behavior). Retention only trims the engine's
// buffer — derived elements still flow to stream processors regardless.
func WithEmittedRetention(n int) Option {
	if n < 0 {
		n = 0
	}
	return optionFunc(func(e *Engine) { e.emittedCap = n })
}

// New returns an engine configured by the given options; with none it
// uses the StateFirst policy over a fresh in-memory store.
func New(opts ...Option) *Engine {
	e := &Engine{
		policy:      StateFirst,
		store:       state.NewStore(),
		parallelism: 1,
		emittedCap:  DefaultEmittedRetention,
	}
	e.pinned = e.store.SnapshotAt(temporal.MinInstant)
	e.watermark.Store(int64(temporal.MinInstant))
	for _, o := range opts {
		o.applyOption(e)
	}
	// Resolve the logging intents after the loop so the outcome does not
	// depend on option order: a durable directory owns the WAL (recovery
	// must replay into a store with no other log attached); WithLog
	// applies only to in-memory engines.
	switch {
	case e.durablePath != "":
		d, err := segment.Open(e.durablePath,
			append([]segment.Option{segment.WithStore(e.store)}, e.durableOpts...)...)
		if err != nil {
			e.durableErr = err
		} else {
			e.durable = d
		}
	case e.userLog != nil:
		e.store.AttachLog(e.userLog)
	}
	return e
}

// OnWatermark registers a hook invoked each time the watermark advances,
// with the batch the watermark closed (see WatermarkBatch). The first
// registration installs a store batch watcher to collect change events —
// until then ingestion commits with no watchers and pays nothing for the
// tap; with the tap installed the cost is one lock and one bulk copy per
// committed mutation (the store's change facts are lineage-shared, not
// cloned). Register hooks before ingestion starts; hooks run on the
// driver goroutine and must not block.
func (e *Engine) OnWatermark(h WatermarkHook) {
	if h == nil {
		return
	}
	e.wmHooks = append(e.wmHooks, h)
	if e.wmTap {
		return
	}
	e.wmTap = true
	e.store.WatchBatch(func(chs []state.Change) {
		// chs is store-owned scratch: append copies the structs out.
		e.wmMu.Lock()
		e.wmChanges = append(e.wmChanges, chs...)
		e.wmMu.Unlock()
	})
}

// takeWatermarkBatch hands off the accumulated change/emitted buffers for
// the batch closed at wm, leaving fresh buffers behind.
func (e *Engine) takeWatermarkBatch(wm temporal.Instant) WatermarkBatch {
	e.wmMu.Lock()
	changes := e.wmChanges
	e.wmChanges = nil
	e.wmMu.Unlock()
	emitted := e.wmEmitted
	e.wmEmitted = nil
	return WatermarkBatch{Watermark: wm, Snapshot: e.pinned, Changes: changes, Emitted: emitted}
}

// Store exposes the state repository (e.g. for seeding background state).
func (e *Engine) Store() *state.Store { return e.store }

// DB exposes the bitemporal option-based surface of the state repository
// (retroactive corrections, transaction-time reads).
func (e *Engine) DB() *state.DB { return e.store.DB() }

// Policy reports the configured interaction policy.
func (e *Engine) Policy() Policy { return e.policy }

// DeployRules installs the state management rules, replacing any previous
// set.
func (e *Engine) DeployRules(src string) error {
	set, err := rules.ParseSet(src)
	if err != nil {
		return err
	}
	e.ruleSet = set
	return nil
}

// DeployRuleSet installs an already-compiled rule set.
func (e *Engine) DeployRuleSet(set *rules.Set) { e.ruleSet = set }

// DeployProcessor installs a stream processor.
func (e *Engine) DeployProcessor(p *Processor) error {
	if p.Name == "" {
		return fmt.Errorf("core: processor needs a name")
	}
	for _, existing := range e.processors {
		if existing.Name == p.Name {
			return fmt.Errorf("core: duplicate processor %q", p.Name)
		}
	}
	p.sink = stream.NewCollector()
	p.enrichSchemas = make(map[*element.Schema]*element.Schema)
	e.processors = append(e.processors, p)
	return nil
}

// EnableReasoning attaches a reasoner with the given ontology (nil for an
// empty one) and returns it so callers can add Horn rules.
func (e *Engine) EnableReasoning(ont *reason.Ontology) *reason.Reasoner {
	e.reasoner = reason.NewReasoner(e.store, ont)
	return e.reasoner
}

// Reasoner returns the attached reasoner, if any.
func (e *Engine) Reasoner() *reason.Reasoner { return e.reasoner }

// Process feeds one message (element or watermark) through Figure 1.
// Messages must arrive in timestamp order. Under WithParallelism(n > 1)
// elements buffer until the next watermark (the micro-batch boundary);
// call Flush to force out a trailing partial batch.
func (e *Engine) Process(m stream.Message) error {
	if e.durableErr != nil {
		return e.durableErr
	}
	if e.parallelism > 1 {
		return e.processBuffered(m)
	}
	if m.IsWatermark {
		return e.advance(m.Watermark)
	}
	el := m.El
	e.elements++
	return e.processElement(el)
}

// processElement is the serial per-element path: the policy-ordered
// interleaving of rule application and stream processing.
func (e *Engine) processElement(el *element.Element) error {
	switch e.policy {
	case StateFirst:
		derived, err := e.applyRules(el)
		if err != nil {
			return err
		}
		e.processStreams(el, el.Timestamp)
		for _, d := range derived {
			e.processStreams(d, d.Timestamp)
		}
	case StreamFirst:
		// Processors observe the state just before this element's updates.
		e.processStreams(el, el.Timestamp-1)
		derived, err := e.applyRules(el)
		if err != nil {
			return err
		}
		for _, d := range derived {
			e.processStreams(d, d.Timestamp-1)
		}
	case Snapshot:
		e.processStreams(el, e.pinned.At())
		derived, err := e.applyRules(el)
		if err != nil {
			return err
		}
		for _, d := range derived {
			e.processStreams(d, e.pinned.At())
		}
	}
	return nil
}

// Run drives a whole message batch and returns the first error. Under
// WithParallelism(n > 1) it is the micro-batch driver — elements between
// watermarks are partitioned across workers — and any trailing partial
// batch is flushed before returning.
func (e *Engine) Run(ms []stream.Message) error {
	for _, m := range ms {
		if err := e.Process(m); err != nil {
			return err
		}
	}
	return e.Flush()
}

// ProcessBatch drives one message batch, exactly as Run.
func (e *Engine) ProcessBatch(ms []stream.Message) error { return e.Run(ms) }

func (e *Engine) applyRules(el *element.Element) ([]*element.Element, error) {
	if e.ruleSet == nil {
		return nil, nil
	}
	derived, err := e.ruleSet.Apply(el, e.store)
	if err != nil {
		return nil, err
	}
	e.retainEmitted(derived)
	return derived, nil
}

// retainEmitted appends derived elements to the Emitted buffer, enforcing
// the retention cap, and mirrors them into the watermark-batch buffer
// when a hook is tapping the engine.
func (e *Engine) retainEmitted(derived []*element.Element) {
	e.emitted = append(e.emitted, derived...)
	if e.wmTap {
		e.wmEmitted = append(e.wmEmitted, derived...)
	}
	e.trimEmitted()
}

// trimEmitted enforces the retention cap. The buffer may overshoot to 2x
// the cap before the oldest elements are dropped, keeping the amortized
// per-append cost O(1) while always retaining at least the most recent
// emittedCap elements.
func (e *Engine) trimEmitted() {
	if e.emittedCap > 0 && len(e.emitted) > 2*e.emittedCap {
		n := copy(e.emitted, e.emitted[len(e.emitted)-e.emittedCap:])
		tail := e.emitted[n:]
		for i := range tail {
			tail[i] = nil // release the dropped prefix for GC
		}
		e.emitted = e.emitted[:n]
	}
}

// pointReader is the per-element state read surface gates and enrichment
// resolve against: the live store under StateFirst/StreamFirst, the
// watermark-pinned snapshot handle under the Snapshot policy. Both sides
// are lock-free walks of the published lineage heads.
type pointReader interface {
	FindValue(entity, attr string, spec state.ReadSpec) (element.Value, bool)
}

// readSpec resolves the policy's state-read configuration for processors
// evaluating with state pinned at stateAt. Under the Snapshot policy,
// reads are pinned along both time axes to the watermark instant: valid
// time AND transaction time — the handle's pin. Together with the
// AdvanceClock call in advance, the pinned transaction time makes each
// gate/enrich read resolve against the same consistent multi-shard cut.
// The other policies read the current belief at the chosen valid-time
// instant.
func (e *Engine) readSpec(stateAt temporal.Instant) state.ReadSpec {
	spec := state.ReadSpec{ValidAt: stateAt, HasValidAt: true}
	if e.policy == Snapshot {
		spec.TxAt, spec.HasTxAt = stateAt, true
	}
	return spec
}

// stateSource selects the point-read surface for the policy: the pinned
// watermark snapshot for Snapshot (elements AT the watermark peel onto
// the serial path and write at the pin, which the handle — a pin, not a
// freeze — correctly exposes to later same-instant reads), the live
// store otherwise.
func (e *Engine) stateSource() pointReader {
	if e.policy == Snapshot {
		return e.pinned
	}
	return e.store
}

func (e *Engine) processStreams(el *element.Element, stateAt temporal.Instant) {
	spec := e.readSpec(stateAt)
	src := e.stateSource()
	for _, p := range e.processors {
		if p.Source != "" && p.Source != el.Stream {
			continue
		}
		p.seen++
		if p.Gate != nil {
			g := &e.gateScratch
			g.el, g.store, g.at, g.spec, g.reasoner = el, src, stateAt, spec, e.reasoner
			ok, err := lang.EvalBool(p.Gate, g)
			if err != nil || !ok {
				p.gated++
				continue
			}
		}
		out := el
		if len(p.Enrich) > 0 {
			out = p.enrichElement(el, src, spec)
		}
		p.processed++
		e.dispatch(p, stream.ElementMsg(out))
	}
}

func (e *Engine) dispatch(p *Processor, m stream.Message) {
	if p.Op == nil {
		p.sink.Process(m)
		return
	}
	for _, out := range p.Op.Process(m) {
		p.sink.Process(out)
	}
}

func (p *Processor) enrichElement(el *element.Element, st pointReader, read state.ReadSpec) *element.Element {
	base := el.Tuple.Schema()
	target := p.enrichSchemas[base]
	vals := el.Tuple.Values()
	extra := make([]element.Value, 0, len(p.Enrich))
	for _, spec := range p.Enrich {
		ent, _ := el.Get(spec.EntityField)
		v := element.Null
		if fv, ok := st.FindValue(ent.String(), spec.Attr, read); ok {
			v = fv
		}
		extra = append(extra, v)
	}
	if target == nil {
		fields := base.Fields()
		for i, spec := range p.Enrich {
			fields = append(fields, element.Field{Name: spec.As, Kind: extra[i].Kind()})
		}
		target = element.NewSchema(fields...)
		p.enrichSchemas[base] = target
	}
	out := element.New(el.Stream, el.Timestamp, element.NewTuple(target, append(vals, extra...)...))
	out.Seq = el.Seq
	return out
}

func (e *Engine) advance(wm temporal.Instant) error {
	if wm <= e.Watermark() {
		return nil
	}
	e.watermark.Store(int64(wm))
	if e.ruleSet != nil {
		e.ruleSet.AdvanceTo(wm)
	}
	for _, p := range e.processors {
		e.dispatch(p, stream.WatermarkMsg(wm))
	}
	// The Snapshot policy refreshes its view at watermarks (micro-batch
	// boundary). Advancing the store's transaction clock in step pins the
	// cut across every shard — any later default-clock write commits
	// strictly after wm — and the engine then takes a fresh O(1) snapshot
	// handle at the watermark: the micro-batch's gate/enrich reads
	// resolve against that one immutable multi-shard cut, lock-free.
	e.store.AdvanceClock(wm)
	e.pinned = e.store.SnapshotAt(wm)
	// Hand the closed batch to watermark hooks after the snapshot is
	// pinned, so hook consumers see the cut the batch's changes produced.
	if len(e.wmHooks) > 0 {
		wb := e.takeWatermarkBatch(wm)
		for _, h := range e.wmHooks {
			h(wb)
		}
	}
	// The watermark is the durability layer's natural cut — minus one
	// tick: a watermark at wm asserts no element EARLIER than wm will
	// follow, so elements stamped exactly wm may still arrive (and the
	// parallel pipeline peels them onto the serial path at the pin).
	// Flushing at wm-1 keeps every such write strictly after the durable
	// cut. Pulse starts a background flush when the WAL tail has grown
	// enough.
	if e.durable != nil {
		e.durable.Pulse(wm - 1)
	}
	return nil
}

// Durable returns the segment-backed durability layer when the engine
// was built with WithDurableDir, nil otherwise. Its point reads (Find,
// History) fall through RAM to durable segment frames, so state below
// the compaction horizon stays reachable.
func (e *Engine) Durable() *segment.Store { return e.durable }

// Health summarizes the engine's serving posture for operators and the
// /readyz endpoint. The zero value (both fields nil) means healthy:
// either the engine is purely in-memory or its durable layer is fully
// functional.
type Health struct {
	// Degraded is non-nil while the durable layer is in degraded mode:
	// ingest, RAM reads, queries, and subscriptions keep serving, but
	// flushes and durable fallthrough reads have stopped (see
	// segment.Degraded). A successful Flush or Resume clears it.
	Degraded *segment.Degraded
	// DurableErr is a latched durable-open failure: the engine came up
	// without its durability layer and the next Process/Run/Close will
	// return this error.
	DurableErr error
}

// Healthy reports whether the engine is serving with full durability.
func (h Health) Healthy() bool { return h.Degraded == nil && h.DurableErr == nil }

// Health reports the engine's current health. Safe to call concurrently
// with ingestion.
func (e *Engine) Health() Health {
	h := Health{DurableErr: e.durableErr}
	if e.durable != nil {
		h.Degraded = e.durable.Degraded()
	}
	return h
}

// Close flushes a durable engine's state to its segment directory and
// releases the WAL and segment files. For an in-memory engine it is a
// no-op. Crashing without Close loses nothing but the final flush: the
// WAL tail still covers every committed write.
func (e *Engine) Close() error {
	if e.durableErr != nil {
		return e.durableErr
	}
	if e.durable == nil {
		return nil
	}
	return e.durable.Close()
}

// Watermark reports the engine's current watermark. It is safe to call
// concurrently with ingestion (on-demand Query anchors now() on it).
func (e *Engine) Watermark() temporal.Instant {
	return temporal.Instant(e.watermark.Load())
}

// Output returns the elements collected for the named processor.
func (e *Engine) Output(processor string) []*element.Element {
	for _, p := range e.processors {
		if p.Name == processor {
			return p.sink.Elements
		}
	}
	return nil
}

// Emitted returns elements produced by state management rules (EMIT).
func (e *Engine) Emitted() []*element.Element { return e.emitted }

// Stats returns per-processor counters, in deployment order.
func (e *Engine) Stats() []ProcessorStats {
	out := make([]ProcessorStats, len(e.processors))
	for i, p := range e.processors {
		out[i] = ProcessorStats{Name: p.Name, Seen: p.seen, Gated: p.gated, Processed: p.processed}
	}
	return out
}

// ElementsIn reports how many input elements the engine has processed.
func (e *Engine) ElementsIn() uint64 { return e.elements }

// Query runs an on-demand query against the state repository, with now()
// anchored at the current watermark. WITH INFERENCE consults the attached
// reasoner. The query evaluates against a snapshot handle pinned when the
// call arrives: one consistent cut of every committed write, read without
// any shard locks — an arbitrarily long analytical query never stalls
// concurrent ingestion. Query is prepare-and-exec in one call; callers
// issuing the same text repeatedly should Prepare once and Exec the
// handle (see PreparedQuery).
func (e *Engine) Query(src string) (*query.Result, error) {
	pq, err := e.Prepare(src)
	if err != nil {
		return nil, err
	}
	return pq.Exec()
}

// RegisterStateQuery deploys a standing query over the state repository:
// it re-evaluates whenever a state management rule (or any other mutation)
// changes the queried attribute, and invokes onUpdate with each changed
// result. This is the continuous face of §3.2's queryable state — the
// paper's managers "receive constant updates" without polling. now() in
// the query is anchored at each triggering change's application time via
// the engine watermark.
func (e *Engine) RegisterStateQuery(name, src string, onUpdate func(*query.Result)) (*query.Continuous, error) {
	var opts []query.ContinuousOption
	if onUpdate != nil {
		opts = append(opts, query.OnUpdate(onUpdate))
	}
	return query.RegisterContinuous(name, src, e.store, nil, opts...)
}

// gateEnv evaluates gate expressions: the element binds as "e" (and under
// its stream name), state lookups read the policy's point-read source —
// the live store, or the watermark-pinned snapshot handle under Snapshot
// — with the policy-chosen read spec (valid-time instant, plus a pinned
// transaction time under Snapshot), augmented by the reasoner when
// attached. The engine reuses one instance (Engine.gateScratch) across
// elements.
type gateEnv struct {
	el       *element.Element
	store    pointReader
	at       temporal.Instant
	spec     state.ReadSpec
	reasoner *reason.Reasoner
}

// Var implements lang.Env.
func (g *gateEnv) Var(string) (element.Value, bool) { return element.Null, false }

// Field implements lang.Env.
func (g *gateEnv) Field(varName, field string) (element.Value, bool) {
	if varName == "e" || varName == g.el.Stream {
		return g.el.Get(field)
	}
	return element.Null, false
}

// State implements lang.Env.
func (g *gateEnv) State(attr string, entity element.Value) (element.Value, bool) {
	if v, ok := g.store.FindValue(entity.String(), attr, g.spec); ok {
		return v, true
	}
	if g.reasoner != nil {
		if vals := g.reasoner.HoldsAt(entity.String(), attr, g.at); len(vals) > 0 {
			return vals[0], true
		}
	}
	return element.Null, false
}

// Now implements lang.Env.
func (g *gateEnv) Now() temporal.Instant { return g.el.Timestamp }
