package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cql"
	"repro/internal/state"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/window"
	"repro/internal/workload"
)

// TestSystemSecurityWorkload is the end-to-end soak test for the security
// scenario at full workload scale: rules, state, queries, log persistence
// and recovery all in one run, with ground-truth verification at many
// probe points.
func TestSystemSecurityWorkload(t *testing.T) {
	cfg := workload.DefaultBuilding()
	els, truth := workload.Building(cfg)

	e := New(StateFirst)
	var logBuf bytes.Buffer
	e.Store().AttachLog(state.NewLog(&logBuf))
	if err := e.DeployRules(`
RULE position ON RoomEntry AS r THEN REPLACE position(r.visitor) = r.room
RULE exit ON BuildingExit AS r THEN RETRACT position(r.visitor)`); err != nil {
		t.Fatal(err)
	}
	msgs := stream.WithPeriodicWatermarks(els, temporal.Instant(time.Minute))
	if err := e.Run(msgs); err != nil {
		t.Fatal(err)
	}

	// Probe the state against ground truth across the whole run.
	horizon := els[len(els)-1].Timestamp
	checked := 0
	for at := temporal.Instant(0); at < horizon; at += horizon / 50 {
		for _, f := range e.Store().AsOfByAttribute("position", at) {
			want := workload.TrueRoomAt(truth, f.Entity, at)
			if want == "" {
				continue // boundary instant between stays
			}
			if got := f.Value.MustString(); got != want {
				t.Fatalf("at %d: %s in %s, truth says %s", at, f.Entity, got, want)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("too few probes checked: %d", checked)
	}

	// All visitors exited: no current positions remain.
	if cur := e.Store().CurrentByAttribute("position"); len(cur) != 0 {
		t.Fatalf("positions after all exits: %v", cur)
	}

	// Recovery: replay the log into a fresh store and compare full
	// histories.
	restored := state.NewStore()
	if _, err := state.Replay(bytes.NewReader(logBuf.Bytes()), restored); err != nil {
		t.Fatal(err)
	}
	a, b := e.Store().Scan(nil), restored.Scan(nil)
	if len(a) != len(b) {
		t.Fatalf("recovered %d versions, want %d", len(b), len(a))
	}
	for i := range a {
		if a[i].Entity != b[i].Entity || !a[i].Value.Equal(b[i].Value) || a[i].Validity != b[i].Validity {
			t.Fatalf("recovery divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSystemEcommerceWorkload runs the full §3.1 pipeline — catalogue
// rules, enrichment, windowed aggregation, taxonomy-free — at workload
// scale and cross-checks the aggregated revenue per class against a
// ground-truth computation.
func TestSystemEcommerceWorkload(t *testing.T) {
	cfg := workload.DefaultEcommerce()
	cfg.Sales = 2000
	els, truth := workload.Ecommerce(cfg)

	e := New(StateFirst)
	if err := e.DeployRules(`
RULE classify ON Reclassify AS c THEN REPLACE class(c.product) = c.class`); err != nil {
		t.Fatal(err)
	}
	windowSize := temporal.Instant(time.Minute)
	trend := cql.NewQuery("Trend", "Sale", window.NewTumblingTime(windowSize), false, cql.IStream,
		cql.NewAggregate([]string{"class"},
			cql.AggSpec{Func: cql.Sum, Field: "amount", As: "revenue"}),
	)
	if err := e.DeployProcessor(&Processor{
		Name:   "trend",
		Source: "Sale",
		Enrich: []EnrichSpec{{Attr: "class", EntityField: "product", As: "class"}},
		Op:     trend,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.WithPeriodicWatermarks(els, windowSize)); err != nil {
		t.Fatal(err)
	}
	last := els[len(els)-1].Timestamp
	if err := e.Process(stream.WatermarkMsg(last + windowSize)); err != nil {
		t.Fatal(err)
	}

	// Sum the engine's emitted per-window revenues per class and compare
	// with ground truth computed from raw events.
	got := map[string]float64{}
	for _, el := range e.Output("trend") {
		got[el.MustGet("class").MustString()] += el.MustGet("revenue").MustFloat()
	}
	want := map[string]float64{}
	for _, el := range els {
		if el.Stream != "Sale" {
			continue
		}
		cls := workload.TrueClassAt(truth, el.MustGet("product").MustString(), el.Timestamp)
		want[cls] += el.MustGet("amount").MustFloat()
	}
	if len(got) != len(want) {
		t.Fatalf("class sets differ: got %d want %d", len(got), len(want))
	}
	for cls, w := range want {
		g := got[cls]
		if diff := g - w; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("class %s: revenue %f want %f", cls, g, w)
		}
	}
}

// TestSystemClickstreamWorkload exercises session rules + standing query
// at workload scale: the standing dashboard's final answer must agree
// with a direct query.
func TestSystemClickstreamWorkload(t *testing.T) {
	cfg := workload.DefaultClickstream()
	cfg.Users = 20
	els, _ := workload.Clickstream(cfg)
	// The generator uses field "visitor".
	e := New(StateFirst)
	if err := e.DeployRules(`
RULE open ON Enter AS x THEN REPLACE active(x.visitor) = true,
     REPLACE visits(x.visitor) = coalesce(visits(x.visitor), 0) + 1
RULE close ON Leave AS x THEN RETRACT active(x.visitor)`); err != nil {
		t.Fatal(err)
	}
	sq, err := e.RegisterStateQuery("active-now", "SELECT count(*) FROM active", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.FromElements(els)); err != nil {
		t.Fatal(err)
	}
	direct, err := e.Query("SELECT count(*) FROM active")
	if err != nil {
		t.Fatal(err)
	}
	standing := sq.Result()
	if direct.Rows[0][0].MustInt() != standing.Rows[0][0].MustInt() {
		t.Fatalf("standing %v vs direct %v", standing.Rows, direct.Rows)
	}
	// Every user made SessionsPerUser visits; the counter state knows.
	res, err := e.Query("SELECT entity, value FROM visits ORDER BY entity")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != cfg.Users {
		t.Fatalf("visit counters: %d users", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].MustInt() != int64(cfg.SessionsPerUser) {
			t.Fatalf("user %s: %d visits, want %d", row[0], row[1].MustInt(), cfg.SessionsPerUser)
		}
	}
}
