package core

import (
	"fmt"
	"testing"

	"repro/internal/element"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// TestWithAutoCompact drives a long ingest through an engine with
// growth-scheduled per-shard compaction: superseded history behind the
// retention window prunes itself as shards grow, the current state stays
// exact, and recent history (inside the window) survives for temporal
// queries.
func TestWithAutoCompact(t *testing.T) {
	const (
		sensors = 16
		n       = 6000
		retain  = 500 // nanoseconds of valid time behind the watermark
	)
	e := New(WithPolicy(StateFirst), WithAutoCompact(retain, 64))
	if err := e.DeployRules(`
RULE track ON Reading AS r
THEN REPLACE temperature(r.sensor) = r.celsius`); err != nil {
		t.Fatal(err)
	}

	schema := element.NewSchema(
		element.Field{Name: "sensor", Kind: element.KindString},
		element.Field{Name: "celsius", Kind: element.KindFloat},
	)
	els := make([]*element.Element, n)
	for i := 0; i < n; i++ {
		els[i] = element.New("Reading", temporal.Instant(i+1), element.NewTuple(schema,
			element.String(fmt.Sprintf("s%02d", i%sensors)),
			element.Float(float64(i))))
	}
	if err := e.Run(stream.WithPeriodicWatermarks(els, 100)); err != nil {
		t.Fatal(err)
	}

	stats := e.Store().Stats()
	// Each element appends ~2 records; auto-compaction must have kept the
	// store far below the uncompacted ~2n.
	if stats.Records > n {
		t.Fatalf("auto-compaction did not engage: %d records after %d elements", stats.Records, n)
	}
	for s := 0; s < sensors; s++ {
		name := fmt.Sprintf("s%02d", s)
		want := float64(n - sensors + s)
		f, ok := e.Store().Current(name, "temperature")
		if !ok {
			t.Fatalf("current value of %s lost", name)
		}
		if got, _ := f.Value.AsFloat(); got != want {
			t.Fatalf("current value of %s: got %v want %v", name, got, want)
		}
	}
	// History inside the retention window survives the sweeps.
	res, err := e.Query(fmt.Sprintf("SELECT entity, value FROM temperature ASOF %d", n-100))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != sensors {
		t.Fatalf("recent history pruned: %d rows, want %d", len(res.Rows), sensors)
	}
}
