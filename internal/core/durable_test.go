package core

import (
	"bytes"
	"testing"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/state/segment"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// storeBytes serializes an engine's full bitemporal state — the
// byte-identical comparison surface of the restart tests.
func storeBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Store().WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

// splitAtWatermark returns the index just past the first watermark after
// the given fraction of the stream — a legal restart boundary: every
// element at or before the watermark has committed, none after it has
// been seen.
func splitAtWatermark(t *testing.T, msgs []stream.Message, frac float64) int {
	t.Helper()
	from := int(float64(len(msgs)) * frac)
	for i := from; i < len(msgs); i++ {
		if msgs[i].IsWatermark {
			return i + 1
		}
	}
	t.Fatalf("no watermark after index %d", from)
	return -1
}

// durableQueries are the on-demand probes compared between a restarted
// durable engine and the never-restarted oracle — current state plus
// temporal and SYSTEM TIME (transaction-time) reads spanning the restart
// point.
var durableQueries = []string{
	"SELECT entity, value FROM temp",
	"SELECT entity, value FROM temp ASOF 120",
	"SELECT entity, value FROM temp ASOF 220",
	"SELECT entity, value FROM temp SYSTEM TIME ASOF 150",
	"SELECT entity, value FROM temp ASOF 120 SYSTEM TIME ASOF 150",
	"SELECT entity, value FROM temp ASOF 120 SYSTEM TIME ASOF 350",
	"SELECT entity, value, recorded, superseded FROM temp HISTORY",
}

// TestRecoveryDurableEngineRestart kills a durable engine mid-stream —
// after a flush plus a WAL-tail's worth of further elements, without
// Close — restarts it on the same directory, feeds the rest of the
// stream, and requires byte-identical state and identical SYSTEM TIME
// query answers versus an engine that never restarted. The parallel leg
// runs the restart under WithParallelism(4), exercising the group-commit
// (PutBatch) WAL frames across the crash.
func TestRecoveryDurableEngineRestart(t *testing.T) {
	msgs := oracleMessages(400)
	flushAtIdx := splitAtWatermark(t, msgs, 0.3)
	split := splitAtWatermark(t, msgs, 0.6)

	oracle := oracleEngine(t, StateFirst, 1, nil)
	if err := oracle.Run(msgs); err != nil {
		t.Fatal(err)
	}

	for _, leg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 4}} {
		t.Run(leg.name, func(t *testing.T) {
			dir := t.TempDir()
			e1 := New(WithDurableDir(dir), WithParallelism(leg.workers))
			if err := e1.DeployRules(oracleRules); err != nil {
				t.Fatal(err)
			}
			if err := e1.Run(msgs[:flushAtIdx]); err != nil {
				t.Fatal(err)
			}
			// One explicit flush mid-history at the engine's cut: one tick
			// behind the watermark, since elements stamped exactly at a
			// watermark may still follow it (see Engine.advance).
			if err := e1.Durable().FlushAt(e1.Watermark() - 1); err != nil {
				t.Fatalf("flush: %v", err)
			}
			// More elements land in the WAL tail only; then the crash —
			// no Close, no final flush.
			if err := e1.Run(msgs[flushAtIdx:split]); err != nil {
				t.Fatal(err)
			}
			if info := e1.Durable().Info(); info.Segments == 0 || info.WALRecords == 0 {
				t.Fatalf("restart precondition needs segments AND a WAL tail, got %+v", info)
			}
			// The crash: drop the directory lock and descriptors without
			// flushing, exactly as process death would.
			e1.Durable().Abandon()

			e2 := New(WithDurableDir(dir), WithParallelism(leg.workers))
			if err := e2.DeployRules(oracleRules); err != nil {
				t.Fatal(err)
			}
			if err := e2.Run(msgs[split:]); err != nil {
				t.Fatal(err)
			}
			if got, want := storeBytes(t, e2), storeBytes(t, oracle); !bytes.Equal(got, want) {
				t.Fatalf("restarted state differs from oracle (%d vs %d bytes)", len(got), len(want))
			}
			for _, q := range durableQueries {
				want, err := oracle.Query(q)
				if err != nil {
					t.Fatalf("oracle %q: %v", q, err)
				}
				got, err := e2.Query(q)
				if err != nil {
					t.Fatalf("restarted %q: %v", q, err)
				}
				if got.String() != want.String() {
					t.Errorf("%q diverged after restart:\ngot:\n%s\nwant:\n%s", q, got, want)
				}
			}
			if err := e2.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
		})
	}
}

// TestRecoveryDurableSupersedesWithLog pins the option-resolution rule:
// a durable directory owns the WAL regardless of where WithLog appears
// in the option list — attaching both would split the write stream and
// silently break crash recovery.
func TestRecoveryDurableSupersedesWithLog(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts func(dir string, l *state.Log) []Option
	}{
		{"log-first", func(dir string, l *state.Log) []Option {
			return []Option{WithLog(l), WithDurableDir(dir)}
		}},
		{"log-last", func(dir string, l *state.Log) []Option {
			return []Option{WithDurableDir(dir), WithLog(l)}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			var user bytes.Buffer
			e := New(tc.opts(dir, state.NewLog(&user))...)
			if err := e.Store().DB().Put("k", "v", element.Int(7)); err != nil {
				t.Fatal(err)
			}
			// Crash: no flush. Recovery must see the write — it can only
			// be in the durable WAL.
			e.Durable().Abandon()
			e2 := New(WithDurableDir(dir))
			if f, ok := e2.Store().Find("k", "v"); !ok || f.Value.String() != "7" {
				t.Fatalf("write lost across restart (ok=%v f=%v): WithLog stole the WAL", ok, f)
			}
			if user.Len() != 0 {
				t.Fatalf("user log received %d bytes; durable engines must not split the stream", user.Len())
			}
			if err := e2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRecoveryDurableEnginePulse drives the background flusher the way
// production does — Pulse at each watermark once the WAL tail crosses
// the threshold — closes cleanly, and requires the reopened engine to
// match the oracle byte-identically with an empty WAL tail.
func TestRecoveryDurableEnginePulse(t *testing.T) {
	msgs := oracleMessages(400)
	oracle := oracleEngine(t, StateFirst, 1, nil)
	if err := oracle.Run(msgs); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	e1 := New(WithDurableDir(dir, segment.WithFlushEvery(64)))
	if err := e1.DeployRules(oracleRules); err != nil {
		t.Fatal(err)
	}
	if err := e1.Run(msgs); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := New(WithDurableDir(dir))
	if err := e2.DeployRules(oracleRules); err != nil {
		t.Fatal(err)
	}
	info := e2.Durable().Info()
	if info.Segments == 0 {
		t.Fatalf("background pulses flushed nothing: %+v", info)
	}
	if info.WALRecords != 0 {
		t.Fatalf("clean close should leave an empty WAL tail: %+v", info)
	}
	// The reopened engine answers from recovered state; anchor now() by
	// re-advancing the final watermark.
	if err := e2.Process(stream.WatermarkMsg(temporal.Instant(400))); err != nil {
		t.Fatal(err)
	}
	if got, want := storeBytes(t, e2), storeBytes(t, oracle); !bytes.Equal(got, want) {
		t.Fatalf("reopened state differs from oracle")
	}
	for _, q := range durableQueries {
		want, _ := oracle.Query(q)
		got, err := e2.Query(q)
		if err != nil {
			t.Fatalf("reopened %q: %v", q, err)
		}
		if got.String() != want.String() {
			t.Errorf("%q diverged after clean reopen:\ngot:\n%s\nwant:\n%s", q, got, want)
		}
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
}
