package core

import (
	"bytes"
	"testing"

	"repro/internal/element"
	"repro/internal/reason"
	"repro/internal/state"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// TestNewOptions covers the option-based constructor and the shimmed
// positional form New(policy).
func TestNewOptions(t *testing.T) {
	if e := New(); e.Policy() != StateFirst {
		t.Errorf("default policy: %v", e.Policy())
	}
	if e := New(Snapshot); e.Policy() != Snapshot {
		t.Errorf("positional policy shim: %v", e.Policy())
	}
	if e := New(WithPolicy(StreamFirst)); e.Policy() != StreamFirst {
		t.Errorf("WithPolicy: %v", e.Policy())
	}

	var buf bytes.Buffer
	e := New(WithPolicy(Snapshot), WithLog(state.NewLog(&buf)), WithReasoning(reason.NewOntology()))
	if e.Policy() != Snapshot {
		t.Errorf("combined policy: %v", e.Policy())
	}
	if e.Reasoner() == nil {
		t.Error("WithReasoning should attach a reasoner")
	}
	if err := e.Store().Put("u", "flag", element.Bool(true), 5); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("WithLog should capture mutations")
	}
	restored := state.NewStore()
	if _, err := state.Replay(&buf, restored); err != nil {
		t.Fatal(err)
	}
	if _, ok := restored.Current("u", "flag"); !ok {
		t.Error("logged mutation should replay")
	}
}

// TestEngineDB exposes the bitemporal surface through the engine.
func TestEngineDB(t *testing.T) {
	e := New(StateFirst)
	if err := e.DB().Put("ann", "position", element.String("hall"),
		state.WithValidTime(10), state.WithTransactionTime(10)); err != nil {
		t.Fatal(err)
	}
	if f, ok := e.Store().Current("ann", "position"); !ok || f.Value.MustString() != "hall" {
		t.Fatalf("DB write not visible through store: %v %v", f, ok)
	}
}

// TestSnapshotTransactionConsistency is the policy's new contract: a
// retroactive correction recorded after the watermark must not leak into
// the micro-batch view, even though its valid time predates the
// watermark. (A valid-time-only snapshot would see it.)
func TestSnapshotTransactionConsistency(t *testing.T) {
	e := New(Snapshot)
	if err := e.DeployProcessor(&Processor{
		Name: "flagged", Source: "Enter",
		Gate: mustExpr(t, "EXISTS flag(e.visitor)"),
	}); err != nil {
		t.Fatal(err)
	}
	mk := func(ts int64) *element.Element {
		return element.New("Enter", temporal.Instant(ts),
			element.NewTuple(entrySchema, element.String("ann"), element.String("-")))
	}

	// Watermark at 10 pins the micro-batch view (valid AND transaction
	// time 10).
	e.Process(stream.WatermarkMsg(10))

	// At tx 20 we retroactively learn ann was flagged since t=0.
	if err := e.DB().Put("ann", "flag", element.Bool(true),
		state.WithValidTime(0), state.WithTransactionTime(20)); err != nil {
		t.Fatal(err)
	}

	// An element inside the micro-batch: the view at 10 did not believe
	// the flag yet, so the gate must drop it.
	e.Process(stream.ElementMsg(mk(21)))
	if got := len(e.Output("flagged")); got != 0 {
		t.Fatalf("retroactive correction leaked into the snapshot view: %d", got)
	}

	// After the next watermark the belief includes the correction.
	e.Process(stream.WatermarkMsg(30))
	e.Process(stream.ElementMsg(mk(31)))
	if got := len(e.Output("flagged")); got != 1 {
		t.Fatalf("correction should be visible after the watermark: %d", got)
	}

	// Control: StateFirst reads the current belief and passes the element
	// immediately after the retroactive write.
	c := New(StateFirst)
	if err := c.DeployProcessor(&Processor{
		Name: "flagged", Source: "Enter",
		Gate: mustExpr(t, "EXISTS flag(e.visitor)"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.DB().Put("ann", "flag", element.Bool(true),
		state.WithValidTime(0), state.WithTransactionTime(20)); err != nil {
		t.Fatal(err)
	}
	c.Process(stream.ElementMsg(mk(21)))
	if got := len(c.Output("flagged")); got != 1 {
		t.Fatalf("StateFirst should see the current belief: %d", got)
	}
}

// TestSnapshotEnrichmentConsistency checks the same pin for enrichment:
// fields joined from state inside a micro-batch come from the watermark
// belief.
func TestSnapshotEnrichmentConsistency(t *testing.T) {
	e := New(Snapshot)
	if err := e.DeployProcessor(&Processor{
		Name: "enriched", Source: "Enter",
		Enrich: []EnrichSpec{{Attr: "tier", EntityField: "visitor", As: "tier"}},
	}); err != nil {
		t.Fatal(err)
	}
	e.Store().Put("ann", "tier", element.String("silver"), 0)
	e.Process(stream.WatermarkMsg(10))

	// Retroactive upgrade recorded later: ann was gold all along.
	if err := e.DB().Put("ann", "tier", element.String("gold"),
		state.WithValidTime(0), state.WithTransactionTime(20)); err != nil {
		t.Fatal(err)
	}
	e.Process(stream.ElementMsg(element.New("Enter", 21,
		element.NewTuple(entrySchema, element.String("ann"), element.String("-")))))
	out := e.Output("enriched")
	if len(out) != 1 {
		t.Fatalf("outputs: %d", len(out))
	}
	if v, _ := out[0].Get("tier"); v.MustString() != "silver" {
		t.Fatalf("micro-batch should see the watermark belief, got %s", v)
	}
}
