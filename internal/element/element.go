package element

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/temporal"
)

// Field is one named, typed attribute of a schema.
type Field struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of fields describing the tuples of one stream.
// Schemas are immutable after construction and safe for concurrent use.
type Schema struct {
	fields []Field
	index  map[string]int
}

// NewSchema builds a schema from the given fields. Duplicate field names
// are rejected with a panic, since a schema is static configuration and a
// duplicate is a programming error.
func NewSchema(fields ...Field) *Schema {
	s := &Schema{fields: fields, index: make(map[string]int, len(fields))}
	for i, f := range fields {
		if _, dup := s.index[f.Name]; dup {
			panic(fmt.Sprintf("element: duplicate field %q in schema", f.Name))
		}
		s.index[f.Name] = i
	}
	return s
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the field list.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// Index returns the position of the named field, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named field.
func (s *Schema) Has(name string) bool { _, ok := s.index[name]; return ok }

// Project returns a new schema with only the named fields, in the order
// given. Unknown names return an error.
func (s *Schema) Project(names ...string) (*Schema, error) {
	fields := make([]Field, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("element: schema has no field %q", n)
		}
		fields = append(fields, s.fields[i])
	}
	return NewSchema(fields...), nil
}

// String renders the schema as (name kind, ...).
func (s *Schema) String() string {
	parts := make([]string, len(s.fields))
	for i, f := range s.fields {
		parts[i] = f.Name + " " + f.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Tuple is one row conforming to a schema. Tuples are treated as immutable
// once built; operators that modify tuples copy them first.
type Tuple struct {
	schema *Schema
	values []Value
}

// NewTuple pairs a schema with its values. The value count must match the
// schema; a mismatch is a programming error and panics.
func NewTuple(schema *Schema, values ...Value) *Tuple {
	if len(values) != schema.Len() {
		panic(fmt.Sprintf("element: tuple has %d values for schema of %d fields",
			len(values), schema.Len()))
	}
	return &Tuple{schema: schema, values: values}
}

// Schema returns the tuple's schema.
func (t *Tuple) Schema() *Schema { return t.schema }

// Get returns the value of the named field; ok is false if the field is
// not in the schema.
func (t *Tuple) Get(name string) (Value, bool) {
	i := t.schema.Index(name)
	if i < 0 {
		return Null, false
	}
	return t.values[i], true
}

// MustGet returns the value of the named field and panics if absent.
func (t *Tuple) MustGet(name string) Value {
	v, ok := t.Get(name)
	if !ok {
		panic(fmt.Sprintf("element: tuple %s has no field %q", t, name))
	}
	return v
}

// At returns the value at position i.
func (t *Tuple) At(i int) Value { return t.values[i] }

// Values returns a copy of the value slice.
func (t *Tuple) Values() []Value {
	out := make([]Value, len(t.values))
	copy(out, t.values)
	return out
}

// With returns a copy of the tuple with the named field replaced. The field
// must exist in the schema.
func (t *Tuple) With(name string, v Value) *Tuple {
	i := t.schema.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("element: tuple schema has no field %q", name))
	}
	vals := t.Values()
	vals[i] = v
	return &Tuple{schema: t.schema, values: vals}
}

// Equal reports whether two tuples have pairwise equal values. Schemas are
// compared by field names and kinds.
func (t *Tuple) Equal(o *Tuple) bool {
	if t.schema.Len() != o.schema.Len() {
		return false
	}
	for i := range t.values {
		if t.schema.fields[i] != o.schema.fields[i] || !t.values[i].Equal(o.values[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical string for the whole tuple, usable as a map key.
func (t *Tuple) Key() string {
	parts := make([]string, len(t.values))
	for i, v := range t.values {
		parts[i] = v.Key()
	}
	return strings.Join(parts, "\x1f")
}

// String renders the tuple as {name: value, ...}.
func (t *Tuple) String() string {
	parts := make([]string, len(t.values))
	for i, v := range t.values {
		parts[i] = t.schema.fields[i].Name + ": " + v.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Element is one stream element: a typed tuple tagged with a stream (type)
// name, an application timestamp, and an arrival sequence number that
// breaks ties deterministically.
type Element struct {
	// Stream names the logical stream (event type) this element belongs
	// to, e.g. "Sale" or "RoomEntry".
	Stream string
	// Tuple carries the payload.
	Tuple *Tuple
	// Timestamp is the application time at which the event occurred.
	Timestamp temporal.Instant
	// Seq is a per-run arrival sequence number assigned by the source. It
	// provides a deterministic total order among equal timestamps.
	Seq uint64
}

// New builds an element.
func New(stream string, ts temporal.Instant, tuple *Tuple) *Element {
	return &Element{Stream: stream, Tuple: tuple, Timestamp: ts}
}

// Get is shorthand for e.Tuple.Get.
func (e *Element) Get(name string) (Value, bool) { return e.Tuple.Get(name) }

// MustGet is shorthand for e.Tuple.MustGet.
func (e *Element) MustGet(name string) Value { return e.Tuple.MustGet(name) }

// Before orders elements by timestamp, breaking ties by arrival sequence.
func (e *Element) Before(o *Element) bool {
	if e.Timestamp != o.Timestamp {
		return e.Timestamp < o.Timestamp
	}
	return e.Seq < o.Seq
}

// String renders the element with its stream name and timestamp.
func (e *Element) String() string {
	return fmt.Sprintf("%s@%s%s", e.Stream, e.Timestamp, e.Tuple)
}

// SortElements sorts a batch in place by (timestamp, seq).
func SortElements(els []*Element) {
	sort.Slice(els, func(i, j int) bool { return els[i].Before(els[j]) })
}
