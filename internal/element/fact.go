package element

import (
	"fmt"

	"repro/internal/temporal"
)

// Fact is one timed state element: the paper's "data elements annotated
// with their time of validity" (§3). A fact states that Attribute of Entity
// had Value throughout Validity. The state store keys facts by
// (entity, attribute); successive versions of the same key have disjoint
// validity intervals.
type Fact struct {
	// Entity identifies the subject, e.g. a visitor id or product id.
	Entity string
	// Attribute names the property, e.g. "position" or "class".
	Attribute string
	// Value is the attribute's value over the validity interval.
	Value Value
	// Validity is the half-open interval during which the fact holds.
	Validity temporal.Interval
	// Derived marks facts materialized by the reasoner rather than
	// asserted by state management rules.
	Derived bool
	// Source names the rule (state management or reasoning) that produced
	// the fact; empty for facts asserted directly through the API.
	Source string
}

// NewFact builds an asserted fact valid over the given interval.
func NewFact(entity, attribute string, v Value, validity temporal.Interval) *Fact {
	return &Fact{Entity: entity, Attribute: attribute, Value: v, Validity: validity}
}

// Key returns the state-store key of the fact: entity and attribute.
func (f *Fact) Key() FactKey { return FactKey{Entity: f.Entity, Attribute: f.Attribute} }

// ValidAt reports whether the fact holds at instant t.
func (f *Fact) ValidAt(t temporal.Instant) bool { return f.Validity.Contains(t) }

// IsCurrent reports whether the fact's validity is still open.
func (f *Fact) IsCurrent() bool { return f.Validity.IsOpen() }

// Clone returns an independent copy of the fact.
func (f *Fact) Clone() *Fact {
	c := *f
	return &c
}

// String renders the fact as attribute(entity)=value @ validity.
func (f *Fact) String() string {
	tag := ""
	if f.Derived {
		tag = " [derived]"
	}
	return fmt.Sprintf("%s(%s)=%s @ %s%s", f.Attribute, f.Entity, f.Value, f.Validity, tag)
}

// FactKey identifies a fact lineage in the state store.
type FactKey struct {
	Entity    string
	Attribute string
}

// String renders the key as attribute(entity).
func (k FactKey) String() string { return k.Attribute + "(" + k.Entity + ")" }
