package element

import (
	"fmt"
	"sync/atomic"

	"repro/internal/temporal"
)

// Fact is one timed state element: the paper's "data elements annotated
// with their time of validity" (§3). A fact states that Attribute of Entity
// had Value throughout Validity. The state store keys facts by
// (entity, attribute); successive versions of the same key have disjoint
// validity intervals.
//
// Facts are bitemporal: alongside the valid-time interval (when the fact
// held in the modeled world) every stored version carries a transaction-time
// interval [RecordedAt, SupersededAt) — when the store believed the version.
// A retroactive correction does not destroy the record it corrects; it
// closes the record's transaction-time interval and inserts replacements,
// so "what did we believe at tx about validity at vt" stays answerable.
type Fact struct {
	// SupersededAt is the transaction time at which a later write
	// superseded this version; Forever while the version is part of the
	// store's current belief.
	//
	// SupersededAt is the one fact field mutated after the fact has been
	// published to readers (the state store closes belief intervals in
	// place). Code that can race a writer — anything reading a fact still
	// owned by a store rather than a Clone — must go through the atomic
	// accessors (BeliefEnd, VisibleAt, Superseded, Recorded, Clone) and
	// writers through MarkSuperseded; direct field access is safe only on
	// clones and on facts not yet shared. The field is first in the
	// struct so its offset is 64-bit aligned even on 32-bit platforms,
	// which the sync/atomic 64-bit operations require.
	SupersededAt temporal.Instant
	// Entity identifies the subject, e.g. a visitor id or product id.
	Entity string
	// Attribute names the property, e.g. "position" or "class".
	Attribute string
	// Value is the attribute's value over the validity interval.
	Value Value
	// Validity is the half-open interval during which the fact holds.
	Validity temporal.Interval
	// RecordedAt is the transaction time at which this version entered the
	// store (the start of the record's belief interval).
	RecordedAt temporal.Instant
	// Derived marks facts materialized by the reasoner rather than
	// asserted by state management rules.
	Derived bool
	// Source names the rule (state management or reasoning) that produced
	// the fact; empty for facts asserted directly through the API.
	Source string
}

// NewFact builds an asserted fact valid over the given interval. The
// transaction-time dimension defaults to [validity.Start, Forever); the
// state store overrides it with the actual commit time on insert.
func NewFact(entity, attribute string, v Value, validity temporal.Interval) *Fact {
	return &Fact{
		Entity: entity, Attribute: attribute, Value: v, Validity: validity,
		RecordedAt: validity.Start, SupersededAt: temporal.Forever,
	}
}

// Key returns the state-store key of the fact: entity and attribute.
func (f *Fact) Key() FactKey { return FactKey{Entity: f.Entity, Attribute: f.Attribute} }

// ValidAt reports whether the fact holds at instant t.
func (f *Fact) ValidAt(t temporal.Instant) bool { return f.Validity.Contains(t) }

// IsCurrent reports whether the fact's validity is still open.
func (f *Fact) IsCurrent() bool { return f.Validity.IsOpen() }

// BeliefEnd atomically reads SupersededAt. It is the raw accessor behind
// VisibleAt/Superseded/Recorded for facts that may be shared with a
// concurrent writer (see the SupersededAt field comment).
func (f *Fact) BeliefEnd() temporal.Instant {
	return temporal.Instant(atomic.LoadInt64((*int64)(&f.SupersededAt)))
}

// MarkSuperseded atomically closes the record's belief interval at tt.
// The state store calls it under the owning shard's write lock when a
// later write revises this version; the atomic store pairs with the
// atomic loads in BeliefEnd so lock-free snapshot readers holding older
// published heads can race the mutation safely.
func (f *Fact) MarkSuperseded(tt temporal.Instant) {
	atomic.StoreInt64((*int64)(&f.SupersededAt), int64(tt))
}

// Recorded returns the transaction-time interval [RecordedAt, SupersededAt)
// over which the store believed this version.
func (f *Fact) Recorded() temporal.Interval {
	return temporal.NewInterval(f.RecordedAt, f.BeliefEnd())
}

// Superseded reports whether a later write has revised this version out of
// the store's current belief.
func (f *Fact) Superseded() bool { return f.BeliefEnd() != temporal.Forever }

// VisibleAt reports whether the version was part of the store's belief at
// transaction time tt.
func (f *Fact) VisibleAt(tt temporal.Instant) bool {
	return f.RecordedAt <= tt && tt < f.BeliefEnd()
}

// Copy returns an independent value copy of the fact. The copy is built
// field by field (not by struct assignment) so the SupersededAt read is
// atomic: copying a store-owned fact may race the write that supersedes
// it. Returning a value lets scan loops reuse one scratch Fact without
// allocating per candidate.
func (f *Fact) Copy() Fact {
	return Fact{
		Entity: f.Entity, Attribute: f.Attribute, Value: f.Value,
		Validity: f.Validity, RecordedAt: f.RecordedAt,
		SupersededAt: f.BeliefEnd(),
		Derived:      f.Derived, Source: f.Source,
	}
}

// Clone returns an independent copy of the fact, with the same atomic
// SupersededAt read as Copy.
func (f *Fact) Clone() *Fact {
	c := f.Copy()
	return &c
}

// String renders the fact as attribute(entity)=value @ validity.
func (f *Fact) String() string {
	tag := ""
	if f.Derived {
		tag = " [derived]"
	}
	return fmt.Sprintf("%s(%s)=%s @ %s%s", f.Attribute, f.Entity, f.Value, f.Validity, tag)
}

// FactKey identifies a fact lineage in the state store.
type FactKey struct {
	Entity    string
	Attribute string
}

// String renders the key as attribute(entity).
func (k FactKey) String() string { return k.Attribute + "(" + k.Entity + ")" }
