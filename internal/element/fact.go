package element

import (
	"fmt"

	"repro/internal/temporal"
)

// Fact is one timed state element: the paper's "data elements annotated
// with their time of validity" (§3). A fact states that Attribute of Entity
// had Value throughout Validity. The state store keys facts by
// (entity, attribute); successive versions of the same key have disjoint
// validity intervals.
//
// Facts are bitemporal: alongside the valid-time interval (when the fact
// held in the modeled world) every stored version carries a transaction-time
// interval [RecordedAt, SupersededAt) — when the store believed the version.
// A retroactive correction does not destroy the record it corrects; it
// closes the record's transaction-time interval and inserts replacements,
// so "what did we believe at tx about validity at vt" stays answerable.
type Fact struct {
	// Entity identifies the subject, e.g. a visitor id or product id.
	Entity string
	// Attribute names the property, e.g. "position" or "class".
	Attribute string
	// Value is the attribute's value over the validity interval.
	Value Value
	// Validity is the half-open interval during which the fact holds.
	Validity temporal.Interval
	// RecordedAt is the transaction time at which this version entered the
	// store (the start of the record's belief interval).
	RecordedAt temporal.Instant
	// SupersededAt is the transaction time at which a later write
	// superseded this version; Forever while the version is part of the
	// store's current belief.
	SupersededAt temporal.Instant
	// Derived marks facts materialized by the reasoner rather than
	// asserted by state management rules.
	Derived bool
	// Source names the rule (state management or reasoning) that produced
	// the fact; empty for facts asserted directly through the API.
	Source string
}

// NewFact builds an asserted fact valid over the given interval. The
// transaction-time dimension defaults to [validity.Start, Forever); the
// state store overrides it with the actual commit time on insert.
func NewFact(entity, attribute string, v Value, validity temporal.Interval) *Fact {
	return &Fact{
		Entity: entity, Attribute: attribute, Value: v, Validity: validity,
		RecordedAt: validity.Start, SupersededAt: temporal.Forever,
	}
}

// Key returns the state-store key of the fact: entity and attribute.
func (f *Fact) Key() FactKey { return FactKey{Entity: f.Entity, Attribute: f.Attribute} }

// ValidAt reports whether the fact holds at instant t.
func (f *Fact) ValidAt(t temporal.Instant) bool { return f.Validity.Contains(t) }

// IsCurrent reports whether the fact's validity is still open.
func (f *Fact) IsCurrent() bool { return f.Validity.IsOpen() }

// Recorded returns the transaction-time interval [RecordedAt, SupersededAt)
// over which the store believed this version.
func (f *Fact) Recorded() temporal.Interval {
	return temporal.NewInterval(f.RecordedAt, f.SupersededAt)
}

// Superseded reports whether a later write has revised this version out of
// the store's current belief.
func (f *Fact) Superseded() bool { return f.SupersededAt != temporal.Forever }

// VisibleAt reports whether the version was part of the store's belief at
// transaction time tt.
func (f *Fact) VisibleAt(tt temporal.Instant) bool {
	return f.RecordedAt <= tt && tt < f.SupersededAt
}

// Clone returns an independent copy of the fact.
func (f *Fact) Clone() *Fact {
	c := *f
	return &c
}

// String renders the fact as attribute(entity)=value @ validity.
func (f *Fact) String() string {
	tag := ""
	if f.Derived {
		tag = " [derived]"
	}
	return fmt.Sprintf("%s(%s)=%s @ %s%s", f.Attribute, f.Entity, f.Value, f.Validity, tag)
}

// FactKey identifies a fact lineage in the state store.
type FactKey struct {
	Entity    string
	Attribute string
}

// String renders the key as attribute(entity).
func (k FactKey) String() string { return k.Attribute + "(" + k.Entity + ")" }
