// Package element defines the data model shared by the streaming and state
// layers: dynamically typed values, tuple schemas, stream elements, and
// timed facts.
//
// Stream elements are the inputs of Figure 1 in the paper: typed tuples
// tagged with an application timestamp. Facts are the members of the state
// repository: (entity, attribute, value) triples "annotated with their time
// of validity" (§3). Stream processing rules consume elements; state
// management rules turn elements into fact updates.
package element

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/temporal"
)

// Kind enumerates the dynamic types a Value can hold.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTime
)

var kindNames = [...]string{
	KindNull:   "null",
	KindBool:   "bool",
	KindInt:    "int",
	KindFloat:  "float",
	KindString: "string",
	KindTime:   "time",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a compact dynamically typed scalar. The zero Value is Null.
// Values are immutable; all operations return new Values.
type Value struct {
	kind Kind
	num  int64   // bool (0/1), int, or time as temporal.Instant
	flt  float64 // float
	str  string  // string
}

// Null is the absent value.
var Null = Value{}

// Bool wraps a boolean.
func Bool(b bool) Value {
	var n int64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Int wraps a 64-bit integer.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float wraps a 64-bit float.
func Float(f float64) Value { return Value{kind: KindFloat, flt: f} }

// String wraps a string.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Time wraps an instant.
func Time(t temporal.Instant) Value { return Value{kind: KindTime, num: int64(t)} }

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is absent.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; ok is false when the kind differs.
func (v Value) AsBool() (b, ok bool) { return v.num != 0, v.kind == KindBool }

// AsInt returns the integer payload; ok is false when the kind differs.
func (v Value) AsInt() (int64, bool) { return v.num, v.kind == KindInt }

// AsFloat returns the numeric payload widened to float64; ok is false for
// non-numeric kinds. Ints widen losslessly for the magnitudes used here.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.flt, true
	case KindInt:
		return float64(v.num), true
	}
	return 0, false
}

// AsString returns the string payload; ok is false when the kind differs.
func (v Value) AsString() (string, bool) { return v.str, v.kind == KindString }

// AsTime returns the instant payload; ok is false when the kind differs.
func (v Value) AsTime() (temporal.Instant, bool) {
	return temporal.Instant(v.num), v.kind == KindTime
}

// MustString returns the string payload and panics on kind mismatch. Use in
// code paths where the schema guarantees the kind.
func (v Value) MustString() string {
	s, ok := v.AsString()
	if !ok {
		panic(fmt.Sprintf("element: value %s is not a string", v))
	}
	return s
}

// MustInt returns the integer payload and panics on kind mismatch.
func (v Value) MustInt() int64 {
	i, ok := v.AsInt()
	if !ok {
		panic(fmt.Sprintf("element: value %s is not an int", v))
	}
	return i
}

// MustFloat returns the numeric payload and panics for non-numeric kinds.
func (v Value) MustFloat() float64 {
	f, ok := v.AsFloat()
	if !ok {
		panic(fmt.Sprintf("element: value %s is not numeric", v))
	}
	return f
}

// Truthy reports whether the value counts as true in a boolean context:
// true booleans, non-zero numbers, non-empty strings, any time. Null is
// false.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.num != 0
	case KindFloat:
		return v.flt != 0
	case KindString:
		return v.str != ""
	case KindTime:
		return true
	}
	return false
}

// Equal reports deep equality of kind and payload, except that numeric
// kinds compare by value (Int(2) equals Float(2)).
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		switch v.kind {
		case KindNull:
			return true
		case KindFloat:
			return v.flt == o.flt
		case KindString:
			return v.str == o.str
		default:
			return v.num == o.num
		}
	}
	if v.isNumeric() && o.isNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	return false
}

func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare orders two values: -1, 0, or +1. Values of different kinds order
// by kind, except numerics which compare by value. Null sorts first.
func (v Value) Compare(o Value) int {
	if v.isNumeric() && o.isNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindString:
		return strings.Compare(v.str, o.str)
	case KindFloat:
		switch {
		case v.flt < o.flt:
			return -1
		case v.flt > o.flt:
			return 1
		}
		return 0
	default:
		switch {
		case v.num < o.num:
			return -1
		case v.num > o.num:
			return 1
		}
		return 0
	}
}

// Key returns a string that uniquely identifies the value within its kind,
// suitable for use in map keys (group-by, joins, state keys).
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "∅"
	case KindBool:
		if v.num != 0 {
			return "b:true"
		}
		return "b:false"
	case KindInt:
		return "i:" + strconv.FormatInt(v.num, 10)
	case KindFloat:
		return "f:" + strconv.FormatFloat(v.flt, 'g', -1, 64)
	case KindString:
		return "s:" + v.str
	case KindTime:
		return "t:" + strconv.FormatInt(v.num, 10)
	}
	return "?"
}

// String renders the value for humans.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.flt, 'g', -1, 64)
	case KindString:
		return v.str
	case KindTime:
		return temporal.Instant(v.num).String()
	}
	return "?"
}
