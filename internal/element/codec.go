package element

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Value implements encoding.BinaryMarshaler / BinaryUnmarshaler so facts
// can be persisted in the state log (internal/state) with encoding/gob.
// The format is one kind byte followed by the payload: 8 bytes little
// endian for numeric kinds, a uvarint length plus bytes for strings.

// MarshalBinary implements encoding.BinaryMarshaler.
func (v Value) MarshalBinary() ([]byte, error) {
	switch v.kind {
	case KindNull:
		return []byte{byte(KindNull)}, nil
	case KindBool, KindInt, KindTime:
		buf := make([]byte, 9)
		buf[0] = byte(v.kind)
		binary.LittleEndian.PutUint64(buf[1:], uint64(v.num))
		return buf, nil
	case KindFloat:
		buf := make([]byte, 9)
		buf[0] = byte(v.kind)
		binary.LittleEndian.PutUint64(buf[1:], floatBits(v.flt))
		return buf, nil
	case KindString:
		buf := make([]byte, 1+binary.MaxVarintLen64+len(v.str))
		buf[0] = byte(v.kind)
		n := binary.PutUvarint(buf[1:], uint64(len(v.str)))
		n += copy(buf[1+n:], v.str)
		return buf[:1+n], nil
	}
	return nil, fmt.Errorf("element: cannot marshal value of kind %s", v.kind)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (v *Value) UnmarshalBinary(data []byte) error {
	if len(data) == 0 {
		return errors.New("element: empty value encoding")
	}
	k := Kind(data[0])
	body := data[1:]
	switch k {
	case KindNull:
		*v = Null
		return nil
	case KindBool, KindInt, KindTime:
		if len(body) != 8 {
			return fmt.Errorf("element: %s payload has %d bytes, want 8", k, len(body))
		}
		*v = Value{kind: k, num: int64(binary.LittleEndian.Uint64(body))}
		return nil
	case KindFloat:
		if len(body) != 8 {
			return fmt.Errorf("element: float payload has %d bytes, want 8", len(body))
		}
		*v = Value{kind: k, flt: bitsFloat(binary.LittleEndian.Uint64(body))}
		return nil
	case KindString:
		n, read := binary.Uvarint(body)
		if read <= 0 || uint64(len(body)-read) != n {
			return errors.New("element: corrupt string encoding")
		}
		*v = Value{kind: k, str: string(body[read:])}
		return nil
	}
	return fmt.Errorf("element: unknown value kind %d", data[0])
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func bitsFloat(u uint64) float64 { return math.Float64frombits(u) }
