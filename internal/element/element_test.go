package element

import (
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("Bool")
	}
	if i, ok := Int(42).AsInt(); !ok || i != 42 {
		t.Error("Int")
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Error("Float")
	}
	if s, ok := String("x").AsString(); !ok || s != "x" {
		t.Error("String")
	}
	if ts, ok := Time(7).AsTime(); !ok || ts != temporal.Instant(7) {
		t.Error("Time")
	}
	if !Null.IsNull() || Int(1).IsNull() {
		t.Error("IsNull")
	}
	if _, ok := Int(1).AsString(); ok {
		t.Error("kind mismatch should report !ok")
	}
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Error("int should widen to float")
	}
}

func TestValueMustAccessorsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustString on int should panic")
		}
	}()
	_ = Int(1).MustString()
}

func TestValueTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Null, false}, {Bool(false), false}, {Bool(true), true},
		{Int(0), false}, {Int(-1), true},
		{Float(0), false}, {Float(0.1), true},
		{String(""), false}, {String("a"), true},
		{Time(0), true},
	}
	for _, c := range cases {
		if c.v.Truthy() != c.want {
			t.Errorf("Truthy(%s): want %v", c.v, c.want)
		}
	}
}

func TestValueEqualNumericCrossKind(t *testing.T) {
	if !Int(2).Equal(Float(2)) || !Float(2).Equal(Int(2)) {
		t.Error("numeric cross-kind equality")
	}
	if Int(2).Equal(String("2")) {
		t.Error("int should not equal string")
	}
	if !Null.Equal(Null) {
		t.Error("null equals null")
	}
}

func TestValueCompare(t *testing.T) {
	if Int(1).Compare(Int(2)) != -1 || Int(2).Compare(Int(1)) != 1 || Int(2).Compare(Int(2)) != 0 {
		t.Error("int compare")
	}
	if Int(1).Compare(Float(1.5)) != -1 {
		t.Error("numeric cross compare")
	}
	if String("a").Compare(String("b")) != -1 {
		t.Error("string compare")
	}
	if Null.Compare(Int(0)) != -1 {
		t.Error("null sorts first")
	}
}

func TestValueKeyDistinguishesKinds(t *testing.T) {
	seen := map[string]Value{
		Bool(true).Key():  Bool(true),
		Int(1).Key():      Int(1),
		String("1").Key(): String("1"),
		Time(1).Key():     Time(1),
		Float(1).Key():    Float(1),
		Null.Key():        Null,
	}
	if len(seen) != 6 {
		t.Errorf("keys collide: %v", seen)
	}
}

func TestValueKeyEqualQuick(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := Int(int64(a)), Int(int64(b))
		return (va.Key() == vb.Key()) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema(Field{"user", KindString}, Field{"amount", KindFloat})
	if s.Len() != 2 || s.Index("user") != 0 || s.Index("amount") != 1 || s.Index("nope") != -1 {
		t.Error("schema index")
	}
	if !s.Has("user") || s.Has("nope") {
		t.Error("schema Has")
	}
	p, err := s.Project("amount")
	if err != nil || p.Len() != 1 || p.Field(0).Name != "amount" {
		t.Errorf("project: %v %v", p, err)
	}
	if _, err := s.Project("nope"); err == nil {
		t.Error("project unknown should error")
	}
	if s.String() == "" {
		t.Error("schema string")
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate field should panic")
		}
	}()
	NewSchema(Field{"a", KindInt}, Field{"a", KindInt})
}

func TestTuple(t *testing.T) {
	s := NewSchema(Field{"user", KindString}, Field{"n", KindInt})
	tp := NewTuple(s, String("ann"), Int(3))
	if v, ok := tp.Get("user"); !ok || v.MustString() != "ann" {
		t.Error("Get")
	}
	if _, ok := tp.Get("nope"); ok {
		t.Error("Get unknown")
	}
	if tp.At(1).MustInt() != 3 {
		t.Error("At")
	}
	tp2 := tp.With("n", Int(9))
	if tp.MustGet("n").MustInt() != 3 || tp2.MustGet("n").MustInt() != 9 {
		t.Error("With should copy")
	}
	if !tp.Equal(NewTuple(s, String("ann"), Int(3))) || tp.Equal(tp2) {
		t.Error("Equal")
	}
	if tp.Key() == tp2.Key() {
		t.Error("Key should differ")
	}
}

func TestTupleArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	NewTuple(NewSchema(Field{"a", KindInt}), Int(1), Int(2))
}

func TestElementOrdering(t *testing.T) {
	s := NewSchema(Field{"x", KindInt})
	a := New("S", 10, NewTuple(s, Int(1)))
	b := New("S", 10, NewTuple(s, Int(2)))
	b.Seq = 1
	c := New("S", 5, NewTuple(s, Int(3)))
	els := []*Element{b, a, c}
	SortElements(els)
	if els[0] != c || els[1] != a || els[2] != b {
		t.Errorf("sort order wrong: %v", els)
	}
	if !c.Before(a) || a.Before(c) {
		t.Error("Before wrong")
	}
}

func TestFact(t *testing.T) {
	f := NewFact("u1", "position", String("room1"), temporal.NewInterval(10, 20))
	if f.Key() != (FactKey{"u1", "position"}) {
		t.Error("Key")
	}
	if !f.ValidAt(10) || f.ValidAt(20) {
		t.Error("ValidAt half-open")
	}
	if f.IsCurrent() {
		t.Error("finite validity is not current")
	}
	open := NewFact("u1", "position", String("room2"), temporal.Since(20))
	if !open.IsCurrent() {
		t.Error("open validity is current")
	}
	c := f.Clone()
	c.Value = String("other")
	if f.Value.MustString() != "room1" {
		t.Error("clone should be independent")
	}
	if f.String() == "" || f.Key().String() != "position(u1)" {
		t.Error("strings")
	}
	f.Derived = true
	if f.String() == NewFact("u1", "position", String("room1"), temporal.NewInterval(10, 20)).String() {
		t.Error("derived tag should show")
	}
}
