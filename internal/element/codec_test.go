package element

import (
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

func TestValueBinaryRoundTrip(t *testing.T) {
	vals := []Value{
		Null,
		Bool(true), Bool(false),
		Int(0), Int(-1), Int(1<<62 + 7),
		Float(0), Float(-2.5), Float(1e300),
		String(""), String("héllo"), String("with'quote"),
		Time(temporal.Instant(123456789)), Time(temporal.Forever),
	}
	for _, v := range vals {
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %s: %v", v, err)
		}
		var got Value
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal %s: %v", v, err)
		}
		if got.Kind() != v.Kind() {
			t.Errorf("%s: kind changed to %s", v, got.Kind())
		}
		if !got.Equal(v) && !(got.IsNull() && v.IsNull()) {
			t.Errorf("%s: round-tripped to %s", v, got)
		}
	}
}

func TestValueBinaryRoundTripQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, which uint8) bool {
		var v Value
		switch which % 4 {
		case 0:
			v = Int(i)
		case 1:
			v = Float(fl)
		case 2:
			v = String(s)
		case 3:
			v = Time(temporal.Instant(i))
		}
		data, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var got Value
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		// NaN != NaN; compare bit-level via Key.
		return got.Key() == v.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueUnmarshalCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,                          // empty
		{99},                         // unknown kind
		{byte(KindInt)},              // truncated numeric
		{byte(KindInt), 1, 2, 3},     // short numeric
		{byte(KindFloat), 1},         // short float
		{byte(KindString)},           // missing length
		{byte(KindString), 200, 1},   // length beyond payload
		{byte(KindString), 5, 'a'},   // declared 5, got 1
		{byte(KindBool), 1, 2, 3, 4}, // wrong length bool
	}
	for _, data := range cases {
		var v Value
		if err := v.UnmarshalBinary(data); err == nil {
			t.Errorf("UnmarshalBinary(%v): want error", data)
		}
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := map[string]Value{
		"null":  Null,
		"true":  Bool(true),
		"false": Bool(false),
		"-7":    Int(-7),
		"2.5":   Float(2.5),
		"hi":    String("hi"),
		"+inf":  Time(temporal.Forever),
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("String(%v): got %q want %q", v.Kind(), v.String(), want)
		}
	}
}

func TestValueCompareCrossKinds(t *testing.T) {
	// Non-numeric cross-kind comparisons order by kind.
	if Bool(true).Compare(String("a")) >= 0 {
		t.Error("bool should sort before string by kind")
	}
	if String("a").Compare(Bool(true)) <= 0 {
		t.Error("inverse kind ordering")
	}
	if Bool(false).Compare(Bool(true)) != -1 || Bool(true).Compare(Bool(false)) != 1 {
		t.Error("bool ordering")
	}
	if Time(1).Compare(Time(2)) != -1 || Time(2).Compare(Time(2)) != 0 {
		t.Error("time ordering")
	}
	if Float(1.5).Compare(Float(2.5)) != -1 || Float(2.5).Compare(Float(1.5)) != 1 {
		t.Error("float ordering")
	}
}

func TestValueMustFloatAndKindAccessors(t *testing.T) {
	if Float(2.5).MustFloat() != 2.5 || Int(2).MustFloat() != 2 {
		t.Error("MustFloat")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustFloat on string should panic")
		}
	}()
	_ = String("x").MustFloat()
}

func TestSchemaFieldsAndTupleSchema(t *testing.T) {
	s := NewSchema(Field{"a", KindInt}, Field{"b", KindString})
	fields := s.Fields()
	if len(fields) != 2 || fields[0].Name != "a" {
		t.Error("Fields")
	}
	fields[0].Name = "mutated"
	if s.Field(0).Name != "a" {
		t.Error("Fields should return a copy")
	}
	tp := NewTuple(s, Int(1), String("x"))
	if tp.Schema() != s {
		t.Error("Tuple.Schema")
	}
	if tp.String() == "" {
		t.Error("Tuple.String")
	}
}

func TestElementAccessorsAndString(t *testing.T) {
	s := NewSchema(Field{"k", KindString})
	e := New("S", 5, NewTuple(s, String("v")))
	if v, ok := e.Get("k"); !ok || v.MustString() != "v" {
		t.Error("Element.Get")
	}
	if e.MustGet("k").MustString() != "v" {
		t.Error("Element.MustGet")
	}
	if e.String() == "" {
		t.Error("Element.String")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGet unknown field should panic")
		}
	}()
	e.MustGet("nope")
}
