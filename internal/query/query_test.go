package query

import (
	"strings"
	"testing"

	"repro/internal/element"
	"repro/internal/reason"
	"repro/internal/state"
)

func populated() *state.Store {
	s := state.NewStore()
	s.Put("ann", "position", element.String("hall"), 0)
	s.Put("ann", "position", element.String("lab"), 50)
	s.Put("bob", "position", element.String("hall"), 10)
	s.Put("cat", "position", element.String("lab"), 20)
	s.Retract("cat", "position", 60)
	s.Put("ann", "badge", element.Int(7), 0)
	return s
}

func exec() *Executor { return &Executor{Store: populated(), Now: 100} }

func run(t *testing.T, src string) *Result {
	t.Helper()
	res, err := exec().Run(src)
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return res
}

func TestSelectCurrent(t *testing.T) {
	res := run(t, "SELECT entity, value FROM position")
	if len(res.Rows) != 2 { // ann, bob (cat retracted)
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Columns[0] != "entity" || res.Columns[1] != "value" {
		t.Errorf("columns: %v", res.Columns)
	}
	if res.Rows[0][0].MustString() != "ann" || res.Rows[0][1].MustString() != "lab" {
		t.Errorf("row 0: %v", res.Rows[0])
	}
}

func TestSelectStar(t *testing.T) {
	res := run(t, "SELECT * FROM *")
	if len(res.Columns) != 5 {
		t.Fatalf("columns: %v", res.Columns)
	}
	if len(res.Rows) != 3 { // ann position+badge, bob position
		t.Fatalf("rows: %d", len(res.Rows))
	}
}

func TestSelectAsOf(t *testing.T) {
	res := run(t, "SELECT entity, value FROM position ASOF 30")
	if len(res.Rows) != 3 {
		t.Fatalf("as-of rows: %v", res.Rows)
	}
	// ann was in hall at 30.
	if res.Rows[0][1].MustString() != "hall" {
		t.Errorf("ann at 30: %v", res.Rows[0])
	}
	// ASOF with arithmetic on now().
	res = run(t, "SELECT entity FROM position ASOF now() - 70ns")
	if len(res.Rows) != 3 {
		t.Fatalf("as-of now()-70: %v", res.Rows)
	}
}

func TestSelectDuring(t *testing.T) {
	res := run(t, "SELECT entity, value, start, end FROM position DURING 0 TO 20")
	// Versions overlapping [0,20): ann hall, bob hall. (cat starts at 20.)
	if len(res.Rows) != 2 {
		t.Fatalf("during rows: %v", res.Rows)
	}
}

func TestSelectHistory(t *testing.T) {
	res := run(t, "SELECT entity, value FROM position HISTORY")
	if len(res.Rows) != 4 { // ann×2, bob, cat
		t.Fatalf("history rows: %v", res.Rows)
	}
}

func TestWhere(t *testing.T) {
	res := run(t, "SELECT entity FROM position WHERE value = 'lab'")
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "ann" {
		t.Fatalf("where: %v", res.Rows)
	}
	// WHERE can consult other state.
	res = run(t, "SELECT entity FROM position WHERE EXISTS badge(entity)")
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "ann" {
		t.Fatalf("state-condition where: %v", res.Rows)
	}
}

func TestGroupByAndAggregates(t *testing.T) {
	res := run(t, "SELECT value, count(*) FROM position HISTORY GROUP BY value")
	if len(res.Rows) != 2 {
		t.Fatalf("groups: %v", res.Rows)
	}
	// hall: ann+bob = 2; lab: ann+cat = 2.
	for _, row := range res.Rows {
		if row[1].MustInt() != 2 {
			t.Errorf("group %v: %v", row[0], row[1])
		}
	}
	res = run(t, "SELECT count(*) FROM position")
	if res.Rows[0][0].MustInt() != 2 {
		t.Fatalf("global count: %v", res.Rows)
	}
	res = run(t, "SELECT min(start), max(end) FROM position HISTORY")
	if len(res.Rows) != 1 {
		t.Fatalf("min/max: %v", res.Rows)
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	res := run(t, "SELECT count(*), sum(value), avg(value), min(value) FROM nosuchattr")
	if len(res.Rows) != 1 {
		t.Fatalf("empty global aggregate: %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0].MustInt() != 0 || row[1].MustFloat() != 0 || !row[2].IsNull() || !row[3].IsNull() {
		t.Fatalf("empty aggregate values: %v", row)
	}
	// Grouped aggregates over empty input still return no rows.
	res = run(t, "SELECT value, count(*) FROM nosuchattr GROUP BY value")
	if len(res.Rows) != 0 {
		t.Fatalf("empty grouped aggregate: %v", res.Rows)
	}
}

func TestAggregateSumAvgOnBadge(t *testing.T) {
	res := run(t, "SELECT sum(value), avg(value) FROM badge")
	if res.Rows[0][0].MustFloat() != 7 || res.Rows[0][1].MustFloat() != 7 {
		t.Fatalf("sum/avg: %v", res.Rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	res := run(t, "SELECT entity FROM position HISTORY ORDER BY entity DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].MustString() != "cat" {
		t.Fatalf("order/limit: %v", res.Rows)
	}
	res = run(t, "SELECT entity, start FROM position HISTORY ORDER BY start, entity")
	if res.Rows[0][0].MustString() != "ann" {
		t.Fatalf("multi-key order: %v", res.Rows)
	}
}

func TestWithInference(t *testing.T) {
	st := state.NewStore()
	ont := reason.NewOntology()
	if err := ont.SubClassOf("novel", "books"); err != nil {
		t.Fatal(err)
	}
	r := reason.NewReasoner(st, ont)
	st.Put("p1", "type", element.String("novel"), 0)

	e := &Executor{Store: st, Reasoner: r, Now: 10}
	res, err := e.Run("SELECT entity, value FROM type WHERE value = 'books' WITH INFERENCE")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "p1" {
		t.Fatalf("inferred rows: %v", res.Rows)
	}
	// Without inference the derived type is invisible.
	res, err = e.Run("SELECT entity FROM type WHERE value = 'books'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("base rows: %v", res.Rows)
	}
}

func TestInferenceWithoutReasonerFails(t *testing.T) {
	if _, err := exec().Run("SELECT entity FROM position WITH INFERENCE"); err == nil {
		t.Error("inference without reasoner should fail")
	}
}

func TestInferenceOnHistoryFails(t *testing.T) {
	st := state.NewStore()
	e := &Executor{Store: st, Reasoner: reason.NewReasoner(st, nil), Now: 10}
	if _, err := e.Run("SELECT entity FROM position HISTORY WITH INFERENCE"); err == nil {
		t.Error("inference over history should be rejected")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT FROM position",
		"SELECT nosuchcol FROM position",
		"SELECT entity FROM",
		"SELECT entity FROM position ASOF",
		"SELECT entity FROM position DURING 1",
		"SELECT entity FROM position LIMIT 0",
		"SELECT entity FROM position LIMIT -1",
		"SELECT entity FROM position GROUP BY nosuch",
		"SELECT entity, count(*) FROM position",       // entity not grouped
		"SELECT count(entity) FROM position",          // count takes *
		"SELECT sum(*) FROM position",                 // sum needs a column
		"SELECT entity FROM position ORDER BY nosuch", // unknown order key
		"SELECT entity FROM position trailing",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT entity, value FROM position",
		"SELECT entity, value FROM position ASOF 30 WHERE value = 'lab'",
		"SELECT value, count(*) FROM position HISTORY GROUP BY value ORDER BY value DESC LIMIT 5",
		"SELECT entity FROM type WITH INFERENCE",
		"SELECT * FROM * DURING 0 TO 20",
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if q2.String() != printed {
			t.Errorf("round trip unstable: %q -> %q", printed, q2.String())
		}
	}
}

func TestResultString(t *testing.T) {
	res := run(t, "SELECT entity, value FROM position")
	s := res.String()
	if !strings.Contains(s, "entity") || !strings.Contains(s, "ann") {
		t.Errorf("result table:\n%s", s)
	}
}

func TestWhereOnTemporalColumns(t *testing.T) {
	res := run(t, "SELECT entity FROM position HISTORY WHERE end - start > 40ns")
	// ann hall [0,50): 50 ✓; bob hall [10,∞): huge ✓; cat [20,60): 40 ✗;
	// ann lab [50,∞) ✓.
	if len(res.Rows) != 3 {
		t.Fatalf("temporal where: %v", res.Rows)
	}
}

// bitemporalStore builds a store with a retroactive correction: position
// writes at tx 0/50, then a correction recorded at tx 80 revising [20,40).
func bitemporalStore() *state.Store {
	s := state.NewStore()
	db := s.DB()
	db.Put("ann", "position", element.String("hall"), state.WithValidTime(0), state.WithTransactionTime(0))
	db.Put("ann", "position", element.String("lab"), state.WithValidTime(50), state.WithTransactionTime(50))
	db.Put("ann", "position", element.String("vault"),
		state.WithValidTime(20), state.WithEndValidTime(40), state.WithTransactionTime(80))
	return s
}

func TestSystemTimeParsePrint(t *testing.T) {
	q, err := Parse("SELECT entity, value FROM position ASOF 1m SYSTEM TIME ASOF 30s")
	if err != nil {
		t.Fatal(err)
	}
	if q.SysTime == nil {
		t.Fatal("SysTime not parsed")
	}
	printed := q.String()
	if !strings.Contains(printed, "SYSTEM TIME ASOF") {
		t.Fatalf("print: %s", printed)
	}
	q2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse %q: %v", printed, err)
	}
	if q2.String() != printed {
		t.Fatalf("unstable print: %q vs %q", printed, q2.String())
	}
	// SYSTEM TIME composes with every qualifier and with WHERE.
	for _, src := range []string{
		"SELECT entity FROM position SYSTEM TIME ASOF 10",
		"SELECT entity FROM position DURING 0 TO 50 SYSTEM TIME ASOF 10",
		"SELECT entity FROM position HISTORY SYSTEM TIME ASOF 10 WHERE value = 'hall'",
		"SELECT entity FROM * SYSTEM TIME ASOF now() - 5ns ORDER BY entity",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("parse %q: %v", src, err)
		}
	}
	// Incomplete clause errors.
	for _, src := range []string{
		"SELECT entity FROM position SYSTEM",
		"SELECT entity FROM position SYSTEM TIME",
		"SELECT entity FROM position SYSTEM TIME ASOF",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("parse %q should fail", src)
		}
	}
}

func TestSystemTimeExecution(t *testing.T) {
	ex := &Executor{Store: bitemporalStore(), Now: 100}
	// Current belief about vt=30: the correction applies.
	res, err := ex.Run("SELECT value FROM position ASOF 30")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "vault" {
		t.Fatalf("corrected read: %v", res.Rows)
	}
	// The belief held at tx=60 predates the correction.
	res, err = ex.Run("SELECT value FROM position ASOF 30 SYSTEM TIME ASOF 60")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "hall" {
		t.Fatalf("belief at 60: %v", res.Rows)
	}
	// HISTORY under SYSTEM TIME shows the uncorrected timeline.
	res, err = ex.Run("SELECT value, start, end FROM position HISTORY SYSTEM TIME ASOF 60 ORDER BY start")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].MustString() != "hall" || res.Rows[1][0].MustString() != "lab" {
		t.Fatalf("history at 60: %v", res.Rows)
	}
	// ...and the corrected timeline without it: hall[0,20) vault[20,40) hall[40,50) lab[50,∞).
	res, err = ex.Run("SELECT value FROM position HISTORY ORDER BY start")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("corrected history: %v", res.Rows)
	}
	// DURING composes too: overlap [0,50) at belief 60 is the single
	// uncorrected hall version.
	res, err = ex.Run("SELECT value FROM position DURING 0 TO 50 SYSTEM TIME ASOF 60")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "hall" {
		t.Fatalf("during at 60: %v", res.Rows)
	}
	// CURRENT under an early belief: before tx 50 no open lab version...
	res, err = ex.Run("SELECT value FROM position SYSTEM TIME ASOF 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "hall" {
		t.Fatalf("current at belief 10: %v", res.Rows)
	}
}

func TestRecordedSupersededColumns(t *testing.T) {
	ex := &Executor{Store: bitemporalStore(), Now: 100}
	res, err := ex.Run("SELECT value, recorded, superseded FROM position HISTORY ORDER BY recorded, start")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %v", res.Rows)
	}
	// Remnants and the correction were all recorded at tx 80.
	recorded80 := 0
	for _, row := range res.Rows {
		if tt, ok := row[1].AsTime(); ok && tt == 80 {
			recorded80++
		}
	}
	if recorded80 != 3 {
		t.Fatalf("recorded@80 rows: %d (%v)", recorded80, res.Rows)
	}
	// Filtering on transaction-time columns works in WHERE: versions
	// recorded after their validity began are retroactive corrections.
	res, err = ex.Run("SELECT value FROM position HISTORY WHERE recorded > start ORDER BY start")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("where recorded > start: %v", res.Rows)
	}
}
