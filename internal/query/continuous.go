package query

import (
	"fmt"
	"sync"

	"repro/internal/state"
	"repro/internal/temporal"
)

// Continuous is a standing query over the state repository: it
// re-evaluates whenever a state change touches its attribute and
// delivers the new result to the subscriber if it differs from the
// previous one. This completes the Figure 1 "Queries" arrow: the paper's
// managers "want to receive constant updates", not only one-time
// answers.
//
// Evaluation is change-triggered, not change-incremental: the query
// re-runs against the store on every relevant change. For the paper's
// management-dashboard queries (small result sets over current state)
// this is the right trade-off; the E4 numbers bound the cost per
// re-evaluation.
type Continuous struct {
	// Name identifies the standing query.
	Name string

	mu      sync.Mutex
	q       *Query
	ex      *Executor
	last    string
	updates int
	result  *Result
	onDiff  func(*Result)
	stopped bool
}

// ContinuousOption configures a standing query.
type ContinuousOption func(*Continuous)

// OnUpdate registers a callback invoked (synchronously, under the
// store's watcher dispatch) whenever the result changes.
func OnUpdate(fn func(*Result)) ContinuousOption {
	return func(c *Continuous) { c.onDiff = fn }
}

// RegisterContinuous parses src and attaches it to the store as a
// standing query: it re-evaluates after every committed change to its
// attribute. The query must target a single attribute (FROM * would
// re-run on every change of anything) and may not use WITH INFERENCE
// (standing queries fire from watcher callbacks; reasoner
// rematerialization there would recurse into watcher dispatch).
// now supplies the evaluation instant per re-run; nil pins it just
// before Forever, which makes CURRENT queries see the latest state.
func RegisterContinuous(name, src string, st *state.Store, now func() temporal.Instant, opts ...ContinuousOption) (*Continuous, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if q.Inference {
		return nil, fmt.Errorf("query: standing queries do not support WITH INFERENCE")
	}
	if q.Attr == "*" {
		return nil, fmt.Errorf("query: standing queries must target one attribute")
	}
	c := &Continuous{Name: name, q: q}
	for _, opt := range opts {
		opt(c)
	}
	c.ex = &Executor{Store: st}
	nowFn := now
	if nowFn == nil {
		nowFn = func() temporal.Instant { return temporal.Forever - 1 }
	}
	evaluate := func() (*Result, error) {
		c.ex.Now = nowFn()
		return c.ex.Execute(c.q)
	}
	res, err := evaluate()
	if err != nil {
		return nil, fmt.Errorf("query: standing query %q: %w", name, err)
	}
	c.result = res
	c.last = res.String()

	st.Watch(func(ch state.Change) {
		if ch.Fact.Attribute != c.q.Attr {
			return
		}
		c.mu.Lock()
		if c.stopped {
			c.mu.Unlock()
			return
		}
		res, err := evaluate()
		if err != nil {
			c.mu.Unlock()
			return
		}
		rendered := res.String()
		changed := rendered != c.last
		if changed {
			c.result = res
			c.last = rendered
			c.updates++
		}
		cb := c.onDiff
		c.mu.Unlock()
		if changed && cb != nil {
			cb(res)
		}
	})
	return c, nil
}

// Result returns the latest evaluation.
func (c *Continuous) Result() *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.result
}

// Updates reports how many times the result has changed since
// registration.
func (c *Continuous) Updates() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.updates
}

// Stop detaches the query: subsequent state changes no longer trigger
// re-evaluation. (The store watcher slot remains but becomes inert.)
func (c *Continuous) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
}
