package query

// Out-of-core query equivalence: the full oracle corpus executed against
// a durable store whose every lineage has been evicted from RAM must
// match the all-resident in-memory store result for result, at every
// parallelism — scans ride the merged gather's cold union, and residual
// predicates' point lookups fall through to segment frames.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/state/segment"
	"repro/internal/temporal"
)

// TestPreparedExecColdMatchesResident runs the whole oracle corpus twice
// — all-resident versus fully evicted — at every parallelism. The evicted
// store replays planSeedStore's exact schedule, so the logical clocks
// advance identically on both sides and results must be equal.
func TestPreparedExecColdMatchesResident(t *testing.T) {
	const keys = 100
	st := planSeedStore(t, keys)
	snap := st.Snapshot()

	d, err := segment.Open(t.TempDir(), segment.WithResidencyBudget(1))
	if err != nil {
		t.Fatalf("open segment store: %v", err)
	}
	defer d.Close()
	cm := d.Mem()
	for i := 0; i < keys; i++ {
		ent := fmt.Sprintf("e%03d", i)
		if err := cm.Put(ent, "value", element.Int(int64(i)), temporal.Instant(10+i)); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			if err := cm.Put(ent, "badge", element.Int(int64(i%7)), temporal.Instant(10+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cm.DB().Put("e003", "value", element.Int(999),
		state.WithValidTime(11), state.WithEndValidTime(13)); err != nil {
		t.Fatal(err)
	}
	if err := cm.DB().Delete("e004", "value", state.WithValidTime(500)); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if n := d.EvictToBudget(0); n == 0 {
		t.Fatal("nothing evicted — corpus would run all-resident")
	}
	if n := d.Info().ResidentLineages; n != 0 {
		t.Fatalf("%d lineages still resident", n)
	}
	csnap := cm.Snapshot()

	now := temporal.Instant(200)
	for _, src := range oracleQueries {
		want, wantErr := (&Executor{Store: snap, Now: now}).Run(src)
		got, gotErr := (&Executor{Store: csnap, Now: now}).Run(src)
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("%q serial: err %v, want %v", src, gotErr, wantErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%q: cold serial result diverged from resident", src)
		}
		p, err := Prepare(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		for _, par := range []int{0, 1, 4, 32} {
			got, gotErr := p.Exec(ExecEnv{Store: csnap, Now: now, Parallelism: par})
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("%q par=%d: err %v, want %v", src, par, gotErr, wantErr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%q par=%d: cold Exec result diverged from resident", src, par)
			}
		}
	}
	if d.Info().ScanFrames == 0 {
		t.Fatal("corpus never read a cold frame — the cold path did not run")
	}
}
