// Package query implements the on-demand temporal query language over the
// state repository — the "queryable state" benefit of §3.2: "the proposed
// model enables the users to query the state on-demand, potentially
// referring to historical data".
//
// The language is a small SELECT dialect with temporal qualifiers:
//
//	SELECT entity, value FROM position                      -- current state
//	SELECT entity, value FROM position ASOF 1m              -- point in time
//	SELECT * FROM position DURING 10s TO 1m                 -- interval
//	SELECT entity, value, start, end FROM position HISTORY  -- all versions
//	SELECT value, count(*) FROM position GROUP BY value
//	SELECT entity FROM type WHERE value = 'books' WITH INFERENCE
//
// The store is bitemporal, and the dialect exposes the transaction-time
// axis through a SYSTEM TIME clause composable with every qualifier
// above: SYSTEM TIME ASOF tt evaluates the query against the belief the
// store held at transaction time tt, making retroactive corrections
// recorded after tt invisible. So
//
//	SELECT entity, value FROM position ASOF 1m SYSTEM TIME ASOF 30s
//
// answers "what did we believe at 30s about the position at 1m".
//
// Every fact version contributes a row with the pseudo-columns entity,
// attribute, value, start, and end, plus the transaction-time columns
// recorded (when the version entered the store) and superseded (when a
// correction revised it out of the belief; +inf while believed).
// WITH INFERENCE adds reasoner-derived facts to the scanned set
// (Figure 1's reasoning component augmenting one-time queries); derived
// facts are materialized in the current belief and are unaffected by
// SYSTEM TIME.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/element"
	"repro/internal/lang"
	"repro/internal/reason"
	"repro/internal/state"
	"repro/internal/temporal"
)

// TemporalKind selects which fact versions a query scans.
type TemporalKind int

// Temporal qualifiers.
const (
	// Current scans open versions only (the default).
	Current TemporalKind = iota
	// AsOf scans versions valid at one instant.
	AsOf
	// During scans versions overlapping an interval.
	During
	// History scans every version.
	History
)

// Col is one output column: a pseudo-column name or an aggregate.
type Col struct {
	// Name is the pseudo-column (entity, attribute, value, start, end)
	// when Agg is empty.
	Name string
	// Agg is the aggregate function name (count, sum, avg, min, max);
	// empty for plain columns. count uses Name "*".
	Agg string
}

// Label returns the column's output header.
func (c Col) Label() string {
	if c.Agg == "" {
		return c.Name
	}
	return c.Agg + "(" + c.Name + ")"
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Col  string
	Desc bool
}

// Query is a parsed query.
type Query struct {
	Cols      []Col
	Attr      string // "*" scans every attribute
	Temporal  TemporalKind
	At        lang.Expr // AsOf instant
	FromT     lang.Expr // During bounds
	ToT       lang.Expr
	SysTime   lang.Expr // SYSTEM TIME ASOF instant; nil = current belief
	Where     lang.Expr
	Inference bool
	GroupBy   []string
	OrderBy   []OrderKey
	Limit     int // 0 = unlimited
}

// String renders the query in re-parseable syntax.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	parts := make([]string, len(q.Cols))
	for i, c := range q.Cols {
		parts[i] = c.Label()
	}
	sb.WriteString(strings.Join(parts, ", "))
	sb.WriteString(" FROM " + q.Attr)
	switch q.Temporal {
	case AsOf:
		sb.WriteString(" ASOF " + q.At.String())
	case During:
		sb.WriteString(" DURING " + q.FromT.String() + " TO " + q.ToT.String())
	case History:
		sb.WriteString(" HISTORY")
	}
	if q.SysTime != nil {
		sb.WriteString(" SYSTEM TIME ASOF " + q.SysTime.String())
	}
	if q.Where != nil {
		sb.WriteString(" WHERE " + q.Where.String())
	}
	if q.Inference {
		sb.WriteString(" WITH INFERENCE")
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY " + strings.Join(q.GroupBy, ", "))
	}
	if len(q.OrderBy) > 0 {
		keys := make([]string, len(q.OrderBy))
		for i, k := range q.OrderBy {
			keys[i] = k.Col
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		sb.WriteString(" ORDER BY " + strings.Join(keys, ", "))
	}
	if q.Limit > 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", q.Limit))
	}
	return sb.String()
}

// Result is a query's output table.
type Result struct {
	Columns []string
	Rows    [][]element.Value
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], c)
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

var pseudoColumns = map[string]bool{
	"entity": true, "attribute": true, "value": true, "start": true, "end": true,
	"recorded": true, "superseded": true,
}

var aggFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// Parse parses a query.
func Parse(src string) (*Query, error) {
	toks, err := lang.Lex(src)
	if err != nil {
		return nil, err
	}
	c := lang.NewCursor(toks)
	q, err := parseQuery(c)
	if err != nil {
		return nil, err
	}
	if c.Peek().Kind != lang.TokEOF {
		return nil, fmt.Errorf("query: unexpected input after query")
	}
	return q, nil
}

func parseQuery(c *lang.Cursor) (*Query, error) {
	if err := c.ExpectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	if _, ok := c.Accept(lang.TokStar); ok {
		q.Cols = []Col{{Name: "entity"}, {Name: "attribute"}, {Name: "value"}, {Name: "start"}, {Name: "end"}}
	} else {
		for {
			col, err := parseCol(c)
			if err != nil {
				return nil, err
			}
			q.Cols = append(q.Cols, col)
			if _, ok := c.Accept(lang.TokComma); !ok {
				break
			}
		}
	}
	if err := c.ExpectKeyword("from"); err != nil {
		return nil, err
	}
	if _, ok := c.Accept(lang.TokStar); ok {
		q.Attr = "*"
	} else {
		attr, err := c.Expect(lang.TokIdent)
		if err != nil {
			return nil, err
		}
		q.Attr = attr.Text
	}
	var err error
	switch {
	case c.AcceptKeyword("asof"):
		q.Temporal = AsOf
		if q.At, err = lang.ParseExprFrom(c); err != nil {
			return nil, err
		}
	case c.AcceptKeyword("during"):
		q.Temporal = During
		if q.FromT, err = lang.ParseExprFrom(c); err != nil {
			return nil, err
		}
		if err := c.ExpectKeyword("to"); err != nil {
			return nil, err
		}
		if q.ToT, err = lang.ParseExprFrom(c); err != nil {
			return nil, err
		}
	case c.AcceptKeyword("history"):
		q.Temporal = History
	case c.AcceptKeyword("current"):
		q.Temporal = Current
	}
	if c.AcceptKeyword("system") {
		if err := c.ExpectKeyword("time"); err != nil {
			return nil, err
		}
		if err := c.ExpectKeyword("asof"); err != nil {
			return nil, err
		}
		if q.SysTime, err = lang.ParseExprFrom(c); err != nil {
			return nil, err
		}
	}
	if c.AcceptKeyword("where") {
		if q.Where, err = lang.ParseExprFrom(c); err != nil {
			return nil, err
		}
	}
	if c.AcceptKeyword("with") {
		if err := c.ExpectKeyword("inference"); err != nil {
			return nil, err
		}
		q.Inference = true
	}
	if c.AcceptKeyword("group") {
		if err := c.ExpectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			name, err := c.Expect(lang.TokIdent)
			if err != nil {
				return nil, err
			}
			if !pseudoColumns[name.Text] {
				return nil, fmt.Errorf("query: unknown GROUP BY column %q", name.Text)
			}
			q.GroupBy = append(q.GroupBy, name.Text)
			if _, ok := c.Accept(lang.TokComma); !ok {
				break
			}
		}
	}
	if c.AcceptKeyword("order") {
		if err := c.ExpectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			name, err := c.Expect(lang.TokIdent)
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: name.Text}
			if c.AcceptKeyword("desc") {
				key.Desc = true
			} else {
				c.AcceptKeyword("asc")
			}
			q.OrderBy = append(q.OrderBy, key)
			if _, ok := c.Accept(lang.TokComma); !ok {
				break
			}
		}
	}
	if c.AcceptKeyword("limit") {
		n, err := c.Expect(lang.TokInt)
		if err != nil {
			return nil, err
		}
		if n.Int <= 0 {
			return nil, fmt.Errorf("query: LIMIT must be positive")
		}
		q.Limit = int(n.Int)
	}
	if err := q.validate(); err != nil {
		return nil, err
	}
	return q, nil
}

func parseCol(c *lang.Cursor) (Col, error) {
	name, err := c.Expect(lang.TokIdent)
	if err != nil {
		return Col{}, err
	}
	lowered := strings.ToLower(name.Text)
	if aggFuncs[lowered] && c.Peek().Kind == lang.TokLParen {
		c.Next()
		var inner string
		if _, ok := c.Accept(lang.TokStar); ok {
			inner = "*"
		} else {
			arg, err := c.Expect(lang.TokIdent)
			if err != nil {
				return Col{}, err
			}
			inner = arg.Text
			if !pseudoColumns[inner] {
				return Col{}, fmt.Errorf("query: unknown column %q in %s()", inner, lowered)
			}
		}
		if _, err := c.Expect(lang.TokRParen); err != nil {
			return Col{}, err
		}
		if lowered == "count" && inner != "*" {
			return Col{}, fmt.Errorf("query: count takes *")
		}
		if lowered != "count" && inner == "*" {
			return Col{}, fmt.Errorf("query: %s needs a column", lowered)
		}
		return Col{Name: inner, Agg: lowered}, nil
	}
	if !pseudoColumns[lowered] {
		return Col{}, fmt.Errorf("query: unknown column %q", name.Text)
	}
	return Col{Name: lowered}, nil
}

func (q *Query) validate() error {
	hasAgg := false
	for _, c := range q.Cols {
		if c.Agg != "" {
			hasAgg = true
		}
	}
	if hasAgg || len(q.GroupBy) > 0 {
		grouped := map[string]bool{}
		for _, g := range q.GroupBy {
			grouped[g] = true
		}
		for _, c := range q.Cols {
			if c.Agg == "" && !grouped[c.Name] {
				return fmt.Errorf("query: column %q must appear in GROUP BY or an aggregate", c.Name)
			}
		}
	}
	for _, k := range q.OrderBy {
		if !pseudoColumns[k.Col] && !q.hasLabel(k.Col) {
			return fmt.Errorf("query: unknown ORDER BY column %q", k.Col)
		}
	}
	return nil
}

func (q *Query) hasLabel(name string) bool {
	for _, c := range q.Cols {
		if c.Label() == name || (c.Agg != "" && c.Agg == name) {
			return true
		}
	}
	return false
}

// Executor runs queries against a state reader, optionally consulting a
// reasoner for WITH INFERENCE queries.
type Executor struct {
	// Store is the temporal read surface the query scans: the live store,
	// its DB adapter, or — the recommended source for queries that may
	// run concurrently with ingestion — a pinned state.Snapshot handle,
	// which evaluates the whole query against one consistent lock-free
	// cut (engine.Query and the HTTP server pin one per query).
	Store state.Reader
	// Reasoner may be nil; WITH INFERENCE queries then fail.
	Reasoner *reason.Reasoner
	// Now anchors now() in temporal expressions.
	Now temporal.Instant
}

// Run parses and executes a query.
func (e *Executor) Run(src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Execute(q)
}

// Execute runs a parsed query.
func (e *Executor) Execute(q *Query) (*Result, error) {
	tx, err := e.systemTime(q)
	if err != nil {
		return nil, err
	}
	facts, err := e.scan(q, tx)
	if err != nil {
		return nil, err
	}
	rows := make([]rowEnv, 0, len(facts))
	for _, f := range facts {
		rows = append(rows, rowEnv{fact: f, now: e.Now, store: e.Store, tx: tx})
	}
	if q.Where != nil {
		kept := rows[:0]
		for _, r := range rows {
			ok, err := lang.EvalBool(q.Where, &r)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	res, err := e.projectRows(q, rows)
	if err != nil {
		return nil, err
	}
	e.orderAndLimit(q, res)
	return res, nil
}

// systemTime evaluates the SYSTEM TIME ASOF clause, nil when absent.
func (e *Executor) systemTime(q *Query) (*temporal.Instant, error) {
	if q.SysTime == nil {
		return nil, nil
	}
	v, err := lang.Eval(q.SysTime, &nowEnv{now: e.Now})
	if err != nil {
		return nil, err
	}
	tt, err := asInstant(v)
	if err != nil {
		return nil, err
	}
	return &tt, nil
}

// scanBounds evaluates the temporal header expressions (the ASOF instant
// or the DURING interval) against now(). Shared by the one-shot scan and
// the prepared execution path (exec.go), which evaluates them per call.
func (e *Executor) scanBounds(q *Query) (at temporal.Instant, iv temporal.Interval, err error) {
	env := &nowEnv{now: e.Now}
	switch q.Temporal {
	case AsOf:
		v, err := lang.Eval(q.At, env)
		if err != nil {
			return 0, iv, err
		}
		if at, err = asInstant(v); err != nil {
			return 0, iv, err
		}
	case During:
		fv, err := lang.Eval(q.FromT, env)
		if err != nil {
			return 0, iv, err
		}
		tv, err := lang.Eval(q.ToT, env)
		if err != nil {
			return 0, iv, err
		}
		from, err := asInstant(fv)
		if err != nil {
			return 0, iv, err
		}
		to, err := asInstant(tv)
		if err != nil {
			return 0, iv, err
		}
		iv = temporal.NewInterval(from, to)
	}
	return at, iv, nil
}

// scanOpts maps a query's shape onto the store's option-based List;
// SYSTEM TIME composes as an AsOfTransactionTime option. Shared by the
// serial scan and the partitioned gather so both read the same shape.
func scanOpts(q *Query, tx *temporal.Instant, at temporal.Instant, iv temporal.Interval) []state.ReadOpt {
	var opts []state.ReadOpt
	if q.Attr != "*" {
		opts = append(opts, state.WithAttribute(q.Attr))
	}
	if tx != nil {
		opts = append(opts, state.AsOfTransactionTime(*tx))
	}
	switch q.Temporal {
	case AsOf:
		opts = append(opts, state.AsOfValidTime(at))
	case During:
		opts = append(opts, state.DuringValidTime(iv.Start, iv.End))
	case History:
		opts = append(opts, state.AllVersions())
	}
	return opts
}

func (e *Executor) scan(q *Query, tx *temporal.Instant) ([]*element.Fact, error) {
	at, iv, err := e.scanBounds(q)
	if err != nil {
		return nil, err
	}
	facts := e.Store.List(scanOpts(q, tx, at, iv)...)
	if q.Inference {
		if e.Reasoner == nil {
			return nil, fmt.Errorf("query: WITH INFERENCE requires a reasoner")
		}
		derived, err := e.derivedFor(q, at, iv)
		if err != nil {
			return nil, err
		}
		facts = append(facts, derived...)
	}
	return facts, nil
}

func (e *Executor) derivedFor(q *Query, at temporal.Instant, iv temporal.Interval) ([]*element.Fact, error) {
	var probe temporal.Instant
	switch q.Temporal {
	case Current:
		probe = e.Now
	case AsOf:
		probe = at
	default:
		return nil, fmt.Errorf("query: WITH INFERENCE supports CURRENT and ASOF only")
	}
	var out []*element.Fact
	for _, f := range e.Reasoner.DerivedAt(probe) {
		if q.Attr == "*" || f.Attribute == q.Attr {
			out = append(out, f)
		}
	}
	return out, nil
}

func asInstant(v element.Value) (temporal.Instant, error) {
	if t, ok := v.AsTime(); ok {
		return t, nil
	}
	if n, ok := v.AsInt(); ok {
		return temporal.Instant(n), nil
	}
	return 0, fmt.Errorf("query: %s is not a time", v)
}

func (e *Executor) projectRows(q *Query, rows []rowEnv) (*Result, error) {
	cols := make([]string, len(q.Cols))
	for i, c := range q.Cols {
		cols[i] = c.Label()
	}
	res := &Result{Columns: cols}

	hasAgg := false
	for _, c := range q.Cols {
		if c.Agg != "" {
			hasAgg = true
		}
	}
	if !hasAgg {
		for _, r := range rows {
			vals := make([]element.Value, len(q.Cols))
			for i, c := range q.Cols {
				vals[i] = r.column(c.Name)
			}
			res.Rows = append(res.Rows, vals)
		}
		return res, nil
	}

	// Global aggregates (no GROUP BY) return one row even over an empty
	// input: count is 0, sum is 0, avg/min/max are null — SQL semantics.
	if len(q.GroupBy) == 0 && len(rows) == 0 {
		vals := make([]element.Value, len(q.Cols))
		for i, c := range q.Cols {
			switch c.Agg {
			case "count":
				vals[i] = element.Int(0)
			case "sum":
				vals[i] = element.Float(0)
			default:
				vals[i] = element.Null
			}
		}
		res.Rows = append(res.Rows, vals)
		return res, nil
	}

	type group struct {
		keyVals []element.Value
		rows    []rowEnv
	}
	groups := map[string]*group{}
	var order []string
	for _, r := range rows {
		parts := make([]string, len(q.GroupBy))
		keyVals := make([]element.Value, len(q.GroupBy))
		for i, gcol := range q.GroupBy {
			keyVals[i] = r.column(gcol)
			parts[i] = keyVals[i].Key()
		}
		k := strings.Join(parts, "\x1f")
		g := groups[k]
		if g == nil {
			g = &group{keyVals: keyVals}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, r)
	}
	sort.Strings(order)
	for _, k := range order {
		g := groups[k]
		vals := make([]element.Value, len(q.Cols))
		for i, c := range q.Cols {
			if c.Agg == "" {
				for gi, gcol := range q.GroupBy {
					if gcol == c.Name {
						vals[i] = g.keyVals[gi]
					}
				}
				continue
			}
			vals[i] = aggregate(c, g.rows)
		}
		res.Rows = append(res.Rows, vals)
	}
	return res, nil
}

func aggregate(c Col, rows []rowEnv) element.Value {
	if c.Agg == "count" {
		return element.Int(int64(len(rows)))
	}
	var sum float64
	var best element.Value
	n := 0
	for _, r := range rows {
		v := r.column(c.Name)
		switch c.Agg {
		case "sum", "avg":
			if f, ok := v.AsFloat(); ok {
				sum += f
				n++
			}
		case "min", "max":
			if best.IsNull() {
				best = v
				continue
			}
			cv := v.Compare(best)
			if (c.Agg == "min" && cv < 0) || (c.Agg == "max" && cv > 0) {
				best = v
			}
		}
	}
	switch c.Agg {
	case "sum":
		return element.Float(sum)
	case "avg":
		if n == 0 {
			return element.Null
		}
		return element.Float(sum / float64(n))
	}
	return best
}

func (e *Executor) orderAndLimit(q *Query, res *Result) {
	if len(q.OrderBy) > 0 {
		idx := map[string]int{}
		for i, c := range res.Columns {
			idx[c] = i
		}
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for _, k := range q.OrderBy {
				ci, ok := idx[k.Col]
				if !ok {
					// ORDER BY on a pseudo-column not projected: find by
					// aggregate label match.
					for i, c := range res.Columns {
						if strings.HasPrefix(c, k.Col+"(") {
							ci, ok = i, true
							break
						}
					}
					if !ok {
						continue
					}
				}
				cmp := res.Rows[a][ci].Compare(res.Rows[b][ci])
				if cmp != 0 {
					if k.Desc {
						return cmp > 0
					}
					return cmp < 0
				}
			}
			return false
		})
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
}

// rowEnv exposes one fact version as an expression environment.
type rowEnv struct {
	fact  *element.Fact
	now   temporal.Instant
	store state.Reader
	tx    *temporal.Instant // SYSTEM TIME belief instant; nil = current
}

func (r *rowEnv) column(name string) element.Value {
	switch name {
	case "entity":
		return element.String(r.fact.Entity)
	case "attribute":
		return element.String(r.fact.Attribute)
	case "value":
		return r.fact.Value
	case "start":
		return element.Time(r.fact.Validity.Start)
	case "end":
		return element.Time(r.fact.Validity.End)
	case "recorded":
		return element.Time(r.fact.RecordedAt)
	case "superseded":
		return element.Time(r.fact.SupersededAt)
	}
	return element.Null
}

// Var implements lang.Env: bare identifiers resolve to pseudo-columns.
func (r *rowEnv) Var(name string) (element.Value, bool) {
	if pseudoColumns[name] {
		return r.column(name), true
	}
	return element.Null, false
}

// Field implements lang.Env; rows have no nested fields.
func (r *rowEnv) Field(string, string) (element.Value, bool) { return element.Null, false }

// State implements lang.Env: WHERE clauses may consult other state, e.g.
// SELECT entity FROM position WHERE EXISTS watchlist(entity). Under
// SYSTEM TIME the lookup observes the same belief as the scan.
func (r *rowEnv) State(attr string, entity element.Value) (element.Value, bool) {
	opts := []state.ReadOpt{state.AsOfValidTime(r.now)}
	if r.tx != nil {
		opts = append(opts, state.AsOfTransactionTime(*r.tx))
	}
	f, ok := r.store.Find(entity.String(), attr, opts...)
	if !ok {
		return element.Null, false
	}
	return f.Value, true
}

// Now implements lang.Env.
func (r *rowEnv) Now() temporal.Instant { return r.now }

// nowEnv evaluates temporal header expressions (ASOF/DURING bounds).
type nowEnv struct{ now temporal.Instant }

func (e *nowEnv) Var(string) (element.Value, bool)           { return element.Null, false }
func (e *nowEnv) Field(string, string) (element.Value, bool) { return element.Null, false }
func (e *nowEnv) State(string, element.Value) (element.Value, bool) {
	return element.Null, false
}
func (e *nowEnv) Now() temporal.Instant { return e.now }
