package query

import (
	"testing"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
)

func TestContinuousQueryUpdates(t *testing.T) {
	st := state.NewStore()
	st.Put("ann", "position", element.String("hall"), 0)

	var pushed []*Result
	c, err := RegisterContinuous("positions",
		"SELECT entity, value FROM position ORDER BY entity",
		st, nil, OnUpdate(func(r *Result) { pushed = append(pushed, r) }))
	if err != nil {
		t.Fatal(err)
	}
	// Initial evaluation happened at registration.
	if got := c.Result(); len(got.Rows) != 1 || got.Rows[0][1].MustString() != "hall" {
		t.Fatalf("initial: %v", got.Rows)
	}
	if c.Updates() != 0 {
		t.Errorf("updates before changes: %d", c.Updates())
	}

	// A relevant change re-evaluates and pushes.
	st.Put("ann", "position", element.String("lab"), 10)
	if c.Updates() == 0 || len(pushed) == 0 {
		t.Fatal("relevant change should trigger an update")
	}
	if got := c.Result(); got.Rows[0][1].MustString() != "lab" {
		t.Fatalf("after change: %v", got.Rows)
	}

	// An irrelevant attribute does not trigger.
	before := c.Updates()
	st.Put("ann", "badge", element.Int(7), 20)
	if c.Updates() != before {
		t.Error("irrelevant attribute triggered an update")
	}

	// A new entity triggers.
	st.Put("bob", "position", element.String("hall"), 30)
	if got := c.Result(); len(got.Rows) != 2 {
		t.Fatalf("after second entity: %v", got.Rows)
	}

	// Retraction triggers.
	st.Retract("bob", "position", 40)
	if got := c.Result(); len(got.Rows) != 1 {
		t.Fatalf("after retract: %v", got.Rows)
	}

	// Stop detaches.
	c.Stop()
	stopped := c.Updates()
	st.Put("ann", "position", element.String("roof"), 50)
	if c.Updates() != stopped {
		t.Error("stopped query still updating")
	}
}

func TestContinuousQueryAggregates(t *testing.T) {
	st := state.NewStore()
	c, err := RegisterContinuous("occupancy",
		"SELECT value, count(*) FROM position GROUP BY value ORDER BY value",
		st, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Put("ann", "position", element.String("hall"), 0)
	st.Put("bob", "position", element.String("hall"), 1)
	st.Put("cat", "position", element.String("lab"), 2)
	got := c.Result()
	if len(got.Rows) != 2 || got.Rows[0][1].MustInt() != 2 || got.Rows[1][1].MustInt() != 1 {
		t.Fatalf("occupancy: %v", got.Rows)
	}
	// Moving bob shifts a count between groups.
	st.Put("bob", "position", element.String("lab"), 3)
	got = c.Result()
	if got.Rows[0][1].MustInt() != 1 || got.Rows[1][1].MustInt() != 2 {
		t.Fatalf("after move: %v", got.Rows)
	}
}

func TestContinuousQueryRejections(t *testing.T) {
	st := state.NewStore()
	if _, err := RegisterContinuous("x", "SELECT entity FROM *", st, nil); err == nil {
		t.Error("FROM * should be rejected")
	}
	if _, err := RegisterContinuous("x", "SELECT entity FROM a WITH INFERENCE", st, nil); err == nil {
		t.Error("WITH INFERENCE should be rejected")
	}
	if _, err := RegisterContinuous("x", "garbage", st, nil); err == nil {
		t.Error("parse errors should surface")
	}
	if _, err := RegisterContinuous("x", "SELECT entity FROM a WHERE nosuch(1,2)", st, nil); err == nil {
		t.Error("initial evaluation errors should surface")
	}
}

func TestContinuousQueryCustomNow(t *testing.T) {
	st := state.NewStore()
	clock := temporal.Instant(100)
	c, err := RegisterContinuous("asof",
		"SELECT entity FROM position ASOF now()",
		st, func() temporal.Instant { return clock })
	if err != nil {
		t.Fatal(err)
	}
	st.Put("ann", "position", element.String("hall"), 50)
	if got := c.Result(); len(got.Rows) != 1 {
		t.Fatalf("asof now=100: %v", got.Rows)
	}
	clock = 40 // before the fact: re-evaluations see nothing
	st.Put("bob", "position", element.String("lab"), 60)
	if got := c.Result(); len(got.Rows) != 0 {
		t.Fatalf("asof now=40: %v", got.Rows)
	}
}
