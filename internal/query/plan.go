// Query planning: Prepare compiles a parsed query into a Prepared handle
// whose physical plan is computed exactly once — conjuncts of the WHERE
// clause that reference only the row itself are pushed below the
// partitioned gather (they run inside the scan workers, before any row
// reaches the single-threaded executor), and numeric range predicates
// over the `value` pseudo-column additionally compile into a
// state.ValueBounds the scan resolves against each lineage's published
// value envelope, skipping lineages that cannot match.
//
// The split is semantics-preserving for every query that evaluates
// without error: AND distributes over the conjuncts, and a pushed
// conjunct sees the same rowEnv bindings below the gather as it would
// above it. The one observable difference is error ordering — WHERE
// conjuncts normally evaluate left-to-right with short-circuiting, while
// the pushed subset runs first; a query whose WHERE errors only on rows
// another conjunct would have filtered may report an error in one mode
// and not the other. Predicates that reach outside the row (state
// lookups, EXISTS) are never pushed, so pushed evaluation never touches
// the store.

package query

import (
	"runtime"
	"strconv"
	"strings"

	"repro/internal/lang"
	"repro/internal/state"
)

// Prepared is a query parsed and planned once, executable many times.
// Construct with Prepare; execute with Exec. A Prepared is immutable
// after construction and safe for concurrent Exec calls.
type Prepared struct {
	q   *Query
	src string

	// pushed are the WHERE conjuncts evaluated below the partitioned
	// gather; residual is the remainder (nil when fully pushed). The
	// serial fallback ignores the split and evaluates q.Where whole.
	pushed   []lang.Expr
	residual lang.Expr
	bounds   state.ValueBounds

	plan *Plan
}

// Plan is the physical execution plan of a prepared query, as reported
// by Explain. It is computed at Prepare time; per-execution numbers
// (lineages scanned, lineages pruned, partitions used) live in
// state.ScanStats, returned by the scan itself.
type Plan struct {
	// Source is the query text the plan was compiled from.
	Source string `json:"source"`
	// Attribute is the scanned attribute; "*" scans every attribute.
	Attribute string `json:"attribute"`
	// Temporal names the temporal qualifier: current, asof, during, or
	// history.
	Temporal string `json:"temporal"`
	// SystemTime reports a SYSTEM TIME ASOF clause (or a per-execution
	// override slot; the clause value itself is evaluated per call).
	SystemTime bool `json:"system_time"`
	// Partitions is the default gather parallelism (GOMAXPROCS at plan
	// time); executions may override it, and small scans degrade to one
	// partition regardless.
	Partitions int `json:"partitions"`
	// AttributeIndex reports that the scan walks the per-shard attribute
	// directory instead of every lineage.
	AttributeIndex bool `json:"attribute_index"`
	// PushedPredicates are the WHERE conjuncts evaluated inside the
	// gather workers, in evaluation order.
	PushedPredicates []string `json:"pushed_predicates,omitempty"`
	// ResidualPredicate is the WHERE remainder evaluated above the
	// gather; empty when the whole clause was pushed.
	ResidualPredicate string `json:"residual_predicate,omitempty"`
	// ValueBounds renders the numeric envelope constraint used to skip
	// lineages, e.g. "10 < value <= 20"; empty when no range predicate
	// over `value` was pushed.
	ValueBounds string `json:"value_bounds,omitempty"`
	// EnvelopePruning reports that the scan skips lineages (and, on
	// durable backends, whole segments) whose envelopes cannot overlap
	// the query — true whenever ValueBounds is set or the temporal shape
	// constrains validity/belief.
	EnvelopePruning bool `json:"envelope_pruning"`
	// Inference reports a WITH INFERENCE clause; derived facts join the
	// scanned set above the gather and are filtered by the full WHERE.
	Inference bool `json:"inference,omitempty"`
}

// Prepare parses src and compiles its physical plan. The returned
// Prepared re-executes without re-parsing or re-planning.
func Prepare(src string) (*Prepared, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return newPrepared(q, src), nil
}

// PrepareParsed plans an already-parsed query. The query must not be
// mutated afterwards.
func PrepareParsed(q *Query) *Prepared { return newPrepared(q, q.String()) }

func newPrepared(q *Query, src string) *Prepared {
	p := &Prepared{q: q, src: src}
	var resid []lang.Expr
	for _, c := range conjuncts(q.Where, nil) {
		if pushable(c) {
			p.pushed = append(p.pushed, c)
		} else {
			resid = append(resid, c)
		}
	}
	p.residual = conjoin(resid)
	p.bounds = extractBounds(p.pushed)
	p.plan = p.buildPlan()
	return p
}

// Query returns the parsed query. Callers must not mutate it.
func (p *Prepared) Query() *Query { return p.q }

// Source returns the query text the handle was prepared from.
func (p *Prepared) Source() string { return p.src }

// Explain returns the physical plan. The plan is computed at Prepare
// time and cached; callers must not mutate it.
func (p *Prepared) Explain() *Plan { return p.plan }

func (p *Prepared) buildPlan() *Plan {
	pl := &Plan{
		Source:         p.src,
		Attribute:      p.q.Attr,
		Temporal:       temporalName(p.q.Temporal),
		SystemTime:     p.q.SysTime != nil,
		Partitions:     runtime.GOMAXPROCS(0),
		AttributeIndex: p.q.Attr != "*",
		Inference:      p.q.Inference,
	}
	for _, c := range p.pushed {
		pl.PushedPredicates = append(pl.PushedPredicates, c.String())
	}
	if p.residual != nil {
		pl.ResidualPredicate = p.residual.String()
	}
	if p.bounds.Constrained() {
		pl.ValueBounds = boundsString(p.bounds)
	}
	// Value bounds prune lineage envelopes; any non-History temporal
	// shape prunes durable segment envelopes on fall-through scans.
	pl.EnvelopePruning = p.bounds.Constrained() || p.q.Temporal != History
	return pl
}

func temporalName(k TemporalKind) string {
	switch k {
	case AsOf:
		return "asof"
	case During:
		return "during"
	case History:
		return "history"
	}
	return "current"
}

// boundsString renders bounds as a chained comparison over `value`.
func boundsString(b state.ValueBounds) string {
	var sb strings.Builder
	if b.HasMin {
		sb.WriteString(strconv.FormatFloat(b.Min, 'g', -1, 64))
		if b.MinExcl {
			sb.WriteString(" < ")
		} else {
			sb.WriteString(" <= ")
		}
	}
	sb.WriteString("value")
	if b.HasMax {
		if b.MaxExcl {
			sb.WriteString(" < ")
		} else {
			sb.WriteString(" <= ")
		}
		sb.WriteString(strconv.FormatFloat(b.Max, 'g', -1, 64))
	}
	return sb.String()
}

// conjuncts flattens nested ANDs into their conjunct list, preserving
// left-to-right evaluation order. A nil expression yields none.
func conjuncts(e lang.Expr, out []lang.Expr) []lang.Expr {
	if e == nil {
		return out
	}
	if b, ok := e.(*lang.Binary); ok && b.Op == "and" {
		return conjuncts(b.R, conjuncts(b.L, out))
	}
	return append(out, e)
}

// conjoin rebuilds an AND chain from a conjunct list; nil when empty.
func conjoin(es []lang.Expr) lang.Expr {
	if len(es) == 0 {
		return nil
	}
	e := es[0]
	for _, r := range es[1:] {
		e = &lang.Binary{Op: "and", L: e, R: r}
	}
	return e
}

// pushable reports whether a conjunct may evaluate inside a gather
// worker: it must read only the row itself — literals, durations,
// pseudo-column references, operators, and builtin calls. State lookups
// (attr(entity)), EXISTS, field accesses, and non-pseudo-column
// variables stay above the gather.
func pushable(e lang.Expr) bool {
	switch x := e.(type) {
	case *lang.Lit, *lang.Duration:
		return true
	case *lang.VarRef:
		return pseudoColumns[x.Name]
	case *lang.Unary:
		return pushable(x.X)
	case *lang.Binary:
		return pushable(x.L) && pushable(x.R)
	case *lang.Call:
		if !lang.Builtins[x.Name] {
			return false
		}
		for _, a := range x.Args {
			if !pushable(a) {
				return false
			}
		}
		return true
	}
	return false
}

// extractBounds compiles pushed conjuncts of the shape
// `value <cmp> <numeric literal>` (either operand order) into the
// tightest combined ValueBounds. The conjuncts stay pushed — the bounds
// are an additional lineage-level prune, not a replacement filter.
func extractBounds(pushed []lang.Expr) state.ValueBounds {
	var b state.ValueBounds
	for _, c := range pushed {
		bin, ok := c.(*lang.Binary)
		if !ok {
			continue
		}
		op := bin.Op
		f, ok := boundOperands(bin.L, bin.R)
		if !ok {
			// Literal on the left: `10 < value` is `value > 10`.
			if f, ok = boundOperands(bin.R, bin.L); !ok {
				continue
			}
			op = flipCmp(op)
		}
		switch op {
		case "=":
			tightenMin(&b, f, false)
			tightenMax(&b, f, false)
		case ">":
			tightenMin(&b, f, true)
		case ">=":
			tightenMin(&b, f, false)
		case "<":
			tightenMax(&b, f, true)
		case "<=":
			tightenMax(&b, f, false)
		}
	}
	return b
}

// tightenMin raises the lower bound if (f, excl) is stricter.
func tightenMin(b *state.ValueBounds, f float64, excl bool) {
	if !b.HasMin || f > b.Min || (f == b.Min && excl && !b.MinExcl) {
		b.Min, b.HasMin, b.MinExcl = f, true, excl
	}
}

// tightenMax lowers the upper bound if (f, excl) is stricter.
func tightenMax(b *state.ValueBounds, f float64, excl bool) {
	if !b.HasMax || f < b.Max || (f == b.Max && excl && !b.MaxExcl) {
		b.Max, b.HasMax, b.MaxExcl = f, true, excl
	}
}

// boundOperands matches (VarRef("value"), numeric Lit) and returns the
// literal as a float.
func boundOperands(l, r lang.Expr) (float64, bool) {
	v, ok := l.(*lang.VarRef)
	if !ok || v.Name != "value" {
		return 0, false
	}
	lit, ok := r.(*lang.Lit)
	if !ok {
		return 0, false
	}
	return lit.Value.AsFloat()
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // "=" and anything unrecognized are symmetric or ignored
}
