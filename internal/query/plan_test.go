package query

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
)

// planSeedStore builds a store with numeric and string lineages,
// retroactive corrections, and a second attribute for cross-lineage
// WHERE lookups.
func planSeedStore(t testing.TB, keys int) *state.Store {
	t.Helper()
	st := state.NewStore()
	for i := 0; i < keys; i++ {
		ent := fmt.Sprintf("e%03d", i)
		if err := st.Put(ent, "value", element.Int(int64(i)), temporal.Instant(10+i)); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			if err := st.Put(ent, "badge", element.Int(int64(i%7)), temporal.Instant(10+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.DB().Put("e003", "value", element.Int(999),
		state.WithValidTime(11), state.WithEndValidTime(13)); err != nil {
		t.Fatal(err)
	}
	if err := st.DB().Delete("e004", "value", state.WithValidTime(500)); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPrepareSplitsWhere pins the pushdown decision: row-local conjuncts
// push below the gather, state-reaching ones stay residual, and the plan
// reports both.
func TestPrepareSplitsWhere(t *testing.T) {
	p, err := Prepare("SELECT entity, value FROM value WHERE value > 10 and badge(entity) = 3 and entity != 'e000'")
	if err != nil {
		t.Fatal(err)
	}
	pl := p.Explain()
	if want := []string{"(value > 10)", "(entity != 'e000')"}; !reflect.DeepEqual(pl.PushedPredicates, want) {
		t.Fatalf("pushed = %v, want %v", pl.PushedPredicates, want)
	}
	if pl.ResidualPredicate != "(badge(entity) = 3)" {
		t.Fatalf("residual = %q", pl.ResidualPredicate)
	}
	if pl.ValueBounds != "10 < value" {
		t.Fatalf("bounds = %q", pl.ValueBounds)
	}
	if !pl.AttributeIndex || !pl.EnvelopePruning {
		t.Fatalf("plan flags: %+v", pl)
	}
	if pl.Temporal != "current" || pl.SystemTime {
		t.Fatalf("plan shape: %+v", pl)
	}
	// Explain must return the cached plan, not rebuild it.
	if p.Explain() != pl {
		t.Fatal("Explain rebuilt the plan")
	}
}

// TestExtractBounds pins the bounds compiler across operand orders,
// tightening, and non-extractable shapes.
func TestExtractBounds(t *testing.T) {
	cases := []struct {
		where string
		want  string
	}{
		{"value > 10", "10 < value"},
		{"value >= 10", "10 <= value"},
		{"10 < value", "10 < value"},
		{"value < 20 and value > 5", "5 < value < 20"},
		{"value > 5 and value > 8", "8 < value"},
		{"value = 42", "42 <= value <= 42"},
		{"value > 1.5", "1.5 < value"},
		{"value != 3", ""},              // not a range
		{"value > 'abc'", ""},           // non-numeric literal
		{"value + 1 > 10", ""},          // not a bare comparison
		{"entity > 10", ""},             // wrong column
		{"value > 10 or value < 2", ""}, // disjunction: one unsplittable conjunct
	}
	for _, c := range cases {
		p, err := Prepare("SELECT entity FROM value WHERE " + c.where)
		if err != nil {
			t.Fatalf("%q: %v", c.where, err)
		}
		if got := p.Explain().ValueBounds; got != c.want {
			t.Errorf("%q: bounds %q, want %q", c.where, got, c.want)
		}
	}
}

// oracleQueries is the equivalence corpus: every temporal clause, SYSTEM
// TIME composition, pushed and residual predicates, aggregates, ordering.
var oracleQueries = []string{
	"SELECT entity, value FROM value",
	"SELECT entity, value FROM value WHERE value > 50",
	"SELECT entity, value FROM value WHERE value > 50 and value < 70",
	"SELECT entity, value FROM value WHERE value > 10 and badge(entity) = 3",
	"SELECT entity, value FROM value WHERE EXISTS badge(entity)",
	"SELECT entity, value FROM value ASOF 12",
	"SELECT entity, value FROM value ASOF 12 SYSTEM TIME ASOF 40",
	"SELECT * FROM value DURING 10 TO 60",
	"SELECT entity, start, end FROM value HISTORY",
	"SELECT entity, start, end, recorded, superseded FROM value HISTORY SYSTEM TIME ASOF 50",
	"SELECT * FROM * HISTORY",
	"SELECT entity, value FROM value SYSTEM TIME ASOF 30",
	"SELECT value, count(*) FROM value WHERE value < 20 GROUP BY value ORDER BY value DESC LIMIT 5",
	"SELECT count(*), sum(value), avg(value), min(value), max(value) FROM value",
	"SELECT entity FROM value WHERE value > 90 ORDER BY entity LIMIT 3",
	"SELECT entity, value FROM nope",
}

// TestPreparedExecMatchesExecute is the serial-vs-partitioned oracle:
// for every corpus query and parallelism, Prepared.Exec over a snapshot
// equals the serial Executor byte for byte.
func TestPreparedExecMatchesExecute(t *testing.T) {
	st := planSeedStore(t, 100)
	snap := st.Snapshot()
	now := temporal.Instant(200)
	for _, src := range oracleQueries {
		ex := &Executor{Store: snap, Now: now}
		want, wantErr := ex.Run(src)
		p, err := Prepare(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		for _, par := range []int{0, 1, 4, 32} {
			got, gotErr := p.Exec(ExecEnv{Store: snap, Now: now, Parallelism: par})
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("%q par=%d: err %v, want %v", src, par, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%q par=%d:\ngot  %v\nwant %v", src, par, got, want)
			}
		}
		// Serial fallback: a non-snapshot Reader takes the classic path
		// and must agree too.
		exLive := &Executor{Store: st, Now: now}
		wantLive, wantLiveErr := exLive.Run(src)
		gotLive, gotLiveErr := p.Exec(ExecEnv{Store: st, Now: now})
		if (gotLiveErr != nil) != (wantLiveErr != nil) {
			t.Fatalf("%q live: err %v, want %v", src, gotLiveErr, wantLiveErr)
		}
		if wantLiveErr == nil && !reflect.DeepEqual(gotLive, wantLive) {
			t.Fatalf("%q live:\ngot  %v\nwant %v", src, gotLive, wantLive)
		}
	}
}

// TestExecSysTimeOverride checks the per-execution belief pin overrides
// the query's SYSTEM TIME clause.
func TestExecSysTimeOverride(t *testing.T) {
	st := state.NewStore()
	if err := st.Put("ann", "position", element.String("hall"), 10); err != nil {
		t.Fatal(err)
	}
	if err := st.DB().Put("ann", "position", element.String("vault"),
		state.WithValidTime(10)); err != nil {
		t.Fatal(err)
	}
	p, err := Prepare("SELECT value FROM position ASOF 10 SYSTEM TIME ASOF 999")
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	res, err := p.Exec(ExecEnv{Store: snap, Now: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].MustString() != "vault" {
		t.Fatalf("clause belief: %v", res.Rows[0][0])
	}
	// Override back to the pre-correction belief.
	res, err = p.Exec(ExecEnv{Store: snap, Now: 100, SysTime: 10, HasSysTime: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].MustString() != "hall" {
		t.Fatalf("overridden belief: %v", res.Rows[0][0])
	}
}

// TestPreparedExecNoPlanAllocs is the zero-parse/zero-plan gate: an
// executed prepared query must allocate far less than preparing does,
// and within a fixed per-exec budget — if Exec ever re-parses or
// re-plans, both bounds blow up.
func TestPreparedExecNoPlanAllocs(t *testing.T) {
	st := state.NewStore()
	snap := st.Snapshot()
	const src = "SELECT entity, value FROM value SYSTEM TIME ASOF 50 WHERE value > 10 and value < 90"
	p, err := Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	env := ExecEnv{Store: snap, Now: 100}
	prepAllocs := testing.AllocsPerRun(200, func() {
		if _, err := Prepare(src); err != nil {
			t.Fatal(err)
		}
	})
	execAllocs := testing.AllocsPerRun(200, func() {
		if _, err := p.Exec(env); err != nil {
			t.Fatal(err)
		}
	})
	explainAllocs := testing.AllocsPerRun(200, func() { _ = p.Explain() })
	if explainAllocs != 0 {
		t.Errorf("Explain allocates %.0f/op, want 0", explainAllocs)
	}
	if execAllocs >= prepAllocs/2 {
		t.Errorf("Exec allocates %.0f/op vs Prepare %.0f/op — is it re-planning?", execAllocs, prepAllocs)
	}
	const budget = 40
	if execAllocs > budget {
		t.Errorf("Exec allocates %.0f/op on an empty store, budget %d", execAllocs, budget)
	}
}
