// Prepared execution: the per-call half of the planner. Exec binds a
// Prepared to one store view and runs it — partitioned, with the pushed
// predicates and value bounds inside the gather workers, when the view
// is a pinned state.Snapshot; serially (the classic Executor path)
// against any other Reader. Both paths produce identical results for
// the same view: the partitioned gather is order-preserving and the
// pushed/residual split distributes the WHERE conjunction.

package query

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/element"
	"repro/internal/lang"
	"repro/internal/reason"
	"repro/internal/state"
	"repro/internal/temporal"
)

// ExecEnv binds one execution of a prepared query: the store view, the
// clock anchor, and per-call overrides. The zero value of the optional
// fields means "as planned".
type ExecEnv struct {
	// Store is the read surface. A *state.Snapshot enables the
	// partitioned gather; any other Reader runs the serial path.
	Store state.Reader
	// Reasoner may be nil; WITH INFERENCE executions then fail.
	Reasoner *reason.Reasoner
	// Now anchors now() in temporal expressions.
	Now temporal.Instant
	// Parallelism bounds the gather workers; <= 0 uses the scan's
	// default (GOMAXPROCS, degraded to serial for small scans).
	Parallelism int
	// SysTime overrides the query's SYSTEM TIME ASOF clause when
	// HasSysTime is set, pinning the belief without re-planning.
	SysTime    temporal.Instant
	HasSysTime bool
	// Ctx, when non-nil, bounds the execution: cancellation or deadline
	// expiry aborts the scan between row batches and Exec returns the
	// context's error. Nil means no deadline.
	Ctx context.Context
}

// ctxCheckStride is how many rows pass between context checks: frequent
// enough to abort a runaway scan promptly, rare enough that Err()'s lock
// never shows up in a scan profile.
const ctxCheckStride = 1024

// Exec runs the prepared query against env. It performs no parsing and
// no planning — only the temporal header expressions are evaluated per
// call (they may reference now()).
func (p *Prepared) Exec(env ExecEnv) (*Result, error) {
	q := p.q
	ex := Executor{Store: env.Store, Reasoner: env.Reasoner, Now: env.Now}

	var tx *temporal.Instant
	if env.HasSysTime {
		tt := env.SysTime
		tx = &tt
	} else {
		var err error
		if tx, err = ex.systemTime(q); err != nil {
			return nil, err
		}
	}
	at, iv, err := ex.scanBounds(q)
	if err != nil {
		return nil, err
	}

	var derived []*element.Fact
	if q.Inference {
		if env.Reasoner == nil {
			return nil, fmt.Errorf("query: WITH INFERENCE requires a reasoner")
		}
		if derived, err = ex.derivedFor(q, at, iv); err != nil {
			return nil, err
		}
	}

	opts := scanOpts(q, tx, at, iv)
	var facts []*element.Fact
	// rowFilter is what still has to run above the gather on scanned
	// facts; derived facts always face the full WHERE.
	rowFilter := q.Where
	if sn, ok := env.Store.(*state.Snapshot); ok {
		keep, keepErr := p.keepFunc(env, tx)
		facts, _ = sn.ScanPartitioned(state.ScanSpec{
			Opts:        opts,
			Parallelism: env.Parallelism,
			Bounds:      p.bounds,
			Keep:        keep,
		})
		if err := keepErr(); err != nil {
			return nil, err
		}
		rowFilter = p.residual
	} else {
		facts = env.Store.List(opts...)
	}
	if err := ctxErr(env.Ctx); err != nil {
		return nil, err
	}

	rows := make([]rowEnv, 0, len(facts)+len(derived))
	for _, f := range facts {
		rows = append(rows, rowEnv{fact: f, now: env.Now, store: env.Store, tx: tx})
	}
	if rowFilter != nil {
		kept := rows[:0]
		for i := range rows {
			if i%ctxCheckStride == ctxCheckStride-1 {
				if err := ctxErr(env.Ctx); err != nil {
					return nil, err
				}
			}
			r := rows[i]
			ok, err := lang.EvalBool(rowFilter, &r)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	for _, f := range derived {
		r := rowEnv{fact: f, now: env.Now, store: env.Store, tx: tx}
		if q.Where != nil {
			ok, err := lang.EvalBool(q.Where, &r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		rows = append(rows, r)
	}

	if err := ctxErr(env.Ctx); err != nil {
		return nil, err
	}
	res, err := ex.projectRows(q, rows)
	if err != nil {
		return nil, err
	}
	ex.orderAndLimit(q, res)
	return res, nil
}

// ctxErr reports the context's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("query: %w", err)
	}
	return nil
}

// keepFunc builds the pushed row predicate for the gather workers, plus
// a getter for the first evaluation error (workers run concurrently; the
// scan's completion orders the error read after every write).
func (p *Prepared) keepFunc(env ExecEnv, tx *temporal.Instant) (func(*element.Fact) bool, func() error) {
	if len(p.pushed) == 0 && env.Ctx == nil {
		return nil, func() error { return nil }
	}
	var once sync.Once
	var firstErr error
	var seen atomic.Int64
	keep := func(f *element.Fact) bool {
		// Deadline checks ride the pushed predicate every stride rows;
		// the counter is shared across gather workers.
		if env.Ctx != nil && seen.Add(1)%ctxCheckStride == 0 {
			if err := ctxErr(env.Ctx); err != nil {
				once.Do(func() { firstErr = err })
				return false
			}
		}
		r := rowEnv{fact: f, now: env.Now, store: env.Store, tx: tx}
		for _, c := range p.pushed {
			ok, err := lang.EvalBool(c, &r)
			if err != nil {
				once.Do(func() { firstErr = err })
				return false
			}
			if !ok {
				return false
			}
		}
		return true
	}
	return keep, func() error { return firstErr }
}
