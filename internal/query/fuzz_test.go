package query

import (
	"testing"

	"repro/internal/element"
	"repro/internal/state"
)

// FuzzParseQuery asserts the query parser never panics, successful
// parses are print/reparse stable, and execution against a small store
// never panics.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"SELECT entity, value FROM position",
		"SELECT * FROM * HISTORY LIMIT 3",
		"SELECT value, count(*) FROM position ASOF now() - 5m GROUP BY value ORDER BY value DESC",
		"SELECT entity FROM position DURING 0 TO 100 WHERE value = 'lab'",
		"SELECT entity FROM t WITH INFERENCE",
		"SELECT",
		"SELECT entity FROM",
		"select lower from position",
		"SELECT min(start), max(end) FROM * HISTORY",
		"SELECT entity, value FROM position ASOF 1m SYSTEM TIME ASOF 30s",
		"SELECT entity, recorded, superseded FROM * HISTORY SYSTEM TIME ASOF now()",
		"SELECT entity FROM position WHERE EXISTS badge(entity) ORDER BY entity LIMIT 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	st := state.NewStore()
	st.Put("ann", "position", element.String("hall"), 0)
	st.Put("ann", "position", element.String("lab"), 50)
	st.Put("ann", "badge", element.Int(7), 0)

	f.Fuzz(func(t *testing.T, src string) {
		q1, err := Parse(src)
		if err != nil {
			return
		}
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed query does not reparse: %q -> %q: %v", src, printed, err)
		}
		if q2.String() != printed {
			t.Fatalf("unstable print: %q -> %q -> %q", src, printed, q2.String())
		}
		// Execution must not panic; errors (e.g. inference without a
		// reasoner) are acceptable.
		ex := &Executor{Store: st, Now: 100}
		_, _ = ex.Execute(q1)
	})
}
