package query

import (
	"reflect"
	"testing"

	"repro/internal/element"
	"repro/internal/state"
)

// FuzzParseQuery asserts the query parser never panics, successful
// parses are print/reparse stable, and execution against a small store
// never panics.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"SELECT entity, value FROM position",
		"SELECT * FROM * HISTORY LIMIT 3",
		"SELECT value, count(*) FROM position ASOF now() - 5m GROUP BY value ORDER BY value DESC",
		"SELECT entity FROM position DURING 0 TO 100 WHERE value = 'lab'",
		"SELECT entity FROM t WITH INFERENCE",
		"SELECT",
		"SELECT entity FROM",
		"select lower from position",
		"SELECT min(start), max(end) FROM * HISTORY",
		"SELECT entity, value FROM position ASOF 1m SYSTEM TIME ASOF 30s",
		"SELECT entity, recorded, superseded FROM * HISTORY SYSTEM TIME ASOF now()",
		"SELECT entity FROM position WHERE EXISTS badge(entity) ORDER BY entity LIMIT 1",
		"SELECT entity, value FROM position WHERE value > 1 and value < 9",
		"SELECT entity FROM position WHERE 3 <= value and lower(entity) = 'ann'",
		"SELECT entity FROM position WHERE value = 7 and badge(entity) = 7",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	st := state.NewStore()
	st.Put("ann", "position", element.String("hall"), 0)
	st.Put("ann", "position", element.String("lab"), 50)
	st.Put("ann", "badge", element.Int(7), 0)

	f.Fuzz(func(t *testing.T, src string) {
		q1, err := Parse(src)
		if err != nil {
			return
		}
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed query does not reparse: %q -> %q: %v", src, printed, err)
		}
		if q2.String() != printed {
			t.Fatalf("unstable print: %q -> %q -> %q", src, printed, q2.String())
		}
		// Execution must not panic; errors (e.g. inference without a
		// reasoner) are acceptable.
		ex := &Executor{Store: st, Now: 100}
		_, _ = ex.Execute(q1)

		// Prepare → Explain → Exec round trip: planning must succeed for
		// any parsed query, the plan must carry the printed source, and a
		// partitioned execution over a snapshot must agree with the serial
		// executor whenever both succeed.
		p, err := Prepare(printed)
		if err != nil {
			t.Fatalf("parsed query does not prepare: %q: %v", printed, err)
		}
		pl := p.Explain()
		if pl == nil || pl.Source != printed {
			t.Fatalf("plan source mismatch: %q -> %+v", printed, pl)
		}
		snap := st.Snapshot()
		got, gotErr := p.Exec(ExecEnv{Store: snap, Now: 100, Parallelism: 4})
		want, wantErr := (&Executor{Store: snap, Now: 100}).Execute(q1)
		if gotErr == nil && wantErr == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("partitioned exec diverges for %q:\ngot  %v\nwant %v", printed, got, want)
		}
	})
}
