package cep

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

// TestSequenceMatchesOracle compares the incremental NFA matcher against
// a brute-force oracle on random streams: for a sequence of positive
// atoms with optional negation guards and a WITHIN bound, the oracle
// enumerates every strictly increasing index tuple whose events match
// the atoms in order, rejects tuples with a guard event between
// consecutive constituents, and enforces the span bound. Match
// multisets (identified by constituent event timestamps) must coincide.
func TestSequenceMatchesOracle(t *testing.T) {
	streams := []string{"A", "B", "C", "G"}
	rng := rand.New(rand.NewSource(2024))

	for trial := 0; trial < 300; trial++ {
		// Random pattern: 2-3 positive atoms over A/B/C, optionally one
		// negation guard (G) before a random position, optional WITHIN.
		nAtoms := 2 + rng.Intn(2)
		items := make([]SeqItem, 0, nAtoms+1)
		atomStreams := make([]string, nAtoms)
		guardBefore := -1
		if rng.Intn(2) == 0 {
			guardBefore = rng.Intn(nAtoms)
		}
		for i := 0; i < nAtoms; i++ {
			if i == guardBefore {
				items = append(items, SeqItem{Pattern: Event("G"), Negated: true})
			}
			s := streams[rng.Intn(3)] // A, B, or C
			atomStreams[i] = s
			items = append(items, SeqItem{Pattern: EventAs(s, aliasFor(i))})
		}
		var pat Pattern = &Seq{Items: items}
		within := temporal.Instant(0)
		if rng.Intn(2) == 0 {
			within = temporal.Instant(5 + rng.Intn(20))
			pat = &Within{P: pat, D: within}
		}

		// Random stream of 12-20 events with strictly increasing time.
		n := 12 + rng.Intn(9)
		els := make([]*element.Element, n)
		ts := temporal.Instant(0)
		for i := range els {
			ts += temporal.Instant(1 + rng.Intn(3))
			els[i] = element.New(streams[rng.Intn(len(streams))], ts, emptyTuple())
			els[i].Seq = uint64(i)
		}

		m, err := NewMatcher(pat)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		var got []string
		for _, el := range els {
			for _, match := range m.Observe(el) {
				got = append(got, matchKey(match))
			}
		}
		want := oracle(els, atomStreams, guardBefore, within)
		sort.Strings(got)
		sort.Strings(want)
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Fatalf("trial %d: pattern %s\nevents: %v\n got %v\nwant %v",
				trial, pat, renderEls(els), got, want)
		}
	}
}

func aliasFor(i int) string { return string(rune('a' + i)) }

var oracleSchema = element.NewSchema()

func emptyTuple() *element.Tuple { return element.NewTuple(oracleSchema) }

func matchKey(m Match) string {
	parts := make([]string, len(m.Events))
	for i, e := range m.Events {
		parts[i] = e.Timestamp.Time().UTC().Format("150405.000000000")
	}
	return strings.Join(parts, ",")
}

func renderEls(els []*element.Element) string {
	parts := make([]string, len(els))
	for i, e := range els {
		parts[i] = e.Stream + "@" + e.Timestamp.Time().UTC().Format("05.000000000")
	}
	return strings.Join(parts, " ")
}

// oracle brute-forces all valid constituent index tuples.
func oracle(els []*element.Element, atoms []string, guardBefore int, within temporal.Instant) []string {
	var out []string
	var rec func(pos int, startIdx int, chosen []int)
	rec = func(pos, startIdx int, chosen []int) {
		if pos == len(atoms) {
			m := Match{Events: make([]*element.Element, len(chosen))}
			for i, idx := range chosen {
				m.Events[i] = els[idx]
			}
			out = append(out, matchKey(m))
			return
		}
		for i := startIdx; i < len(els); i++ {
			if els[i].Stream != atoms[pos] {
				continue
			}
			// WITHIN: strict span check against the first constituent.
			if within > 0 && len(chosen) > 0 && els[i].Timestamp >= els[chosen[0]].Timestamp+within {
				break
			}
			// Negation guard before position pos: no G event strictly
			// between the previous constituent and this one. (For pos 0
			// the matcher only checks guards after the run starts, so a
			// leading guard never fires — mirror that.)
			if guardBefore == pos && pos > 0 {
				blocked := false
				for k := chosen[len(chosen)-1] + 1; k < i; k++ {
					if els[k].Stream == "G" {
						blocked = true
						break
					}
				}
				if blocked {
					continue
				}
			}
			rec(pos+1, i+1, append(chosen, i))
		}
	}
	rec(0, 0, nil)
	return out
}
