package cep

import (
	"errors"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

var sch = element.NewSchema(
	element.Field{Name: "user", Kind: element.KindString},
	element.Field{Name: "v", Kind: element.KindInt},
)

func ev(stream string, ts int64, user string, v int64) *element.Element {
	e := element.New(stream, temporal.Instant(ts),
		element.NewTuple(sch, element.String(user), element.Int(v)))
	e.Seq = uint64(ts)
	return e
}

func feed(t *testing.T, p Pattern, els ...*element.Element) []Match {
	t.Helper()
	m, err := NewMatcher(p)
	if err != nil {
		t.Fatalf("compile %s: %v", p, err)
	}
	var out []Match
	for _, e := range els {
		out = append(out, m.Observe(e)...)
	}
	return out
}

func TestAtomMatch(t *testing.T) {
	got := feed(t, Event("A"), ev("A", 1, "u", 1), ev("B", 2, "u", 1), ev("A", 3, "u", 2))
	if len(got) != 2 {
		t.Fatalf("matches: %d", len(got))
	}
	if got[0].Interval != temporal.NewInterval(1, 2) {
		t.Errorf("interval: %v", got[0].Interval)
	}
	if e, ok := got[0].Binding("A"); !ok || e.Timestamp != 1 {
		t.Errorf("binding: %v %v", e, ok)
	}
}

func TestAtomPredicate(t *testing.T) {
	p := EventWhere("A", "big", func(e *element.Element) bool { return e.MustGet("v").MustInt() > 5 })
	got := feed(t, p, ev("A", 1, "u", 3), ev("A", 2, "u", 7))
	if len(got) != 1 || got[0].Events[0].Timestamp != 2 {
		t.Fatalf("predicate: %v", got)
	}
}

func TestSequence(t *testing.T) {
	p := Sequence(EventAs("A", "a"), EventAs("B", "b"))
	got := feed(t, p,
		ev("A", 1, "u", 1), ev("C", 2, "u", 1), ev("B", 3, "u", 1), ev("B", 4, "u", 1))
	// A@1 pairs with B@3 and (skip-till-any-match) with B@4.
	if len(got) != 2 {
		t.Fatalf("matches: %d", len(got))
	}
	if got[0].Interval != temporal.NewInterval(1, 4) {
		t.Errorf("interval: %v", got[0].Interval)
	}
	a, _ := got[1].Binding("a")
	b, _ := got[1].Binding("b")
	if a.Timestamp != 1 || b.Timestamp != 4 {
		t.Errorf("bindings: a@%d b@%d", a.Timestamp, b.Timestamp)
	}
}

func TestSequenceOrderMatters(t *testing.T) {
	p := Sequence(Event("A"), Event("B"))
	if got := feed(t, p, ev("B", 1, "u", 1), ev("A", 2, "u", 1)); len(got) != 0 {
		t.Fatalf("B before A should not match: %v", got)
	}
}

func TestWithinConstraint(t *testing.T) {
	p := &Within{P: Sequence(Event("A"), Event("B")), D: 10}
	got := feed(t, p, ev("A", 0, "u", 1), ev("B", 9, "u", 1), ev("A", 20, "u", 1), ev("B", 31, "u", 1))
	if len(got) != 1 || got[0].Events[0].Timestamp != 0 {
		t.Fatalf("within: %v", got)
	}
}

func TestWithinPrunesRuns(t *testing.T) {
	p := &Within{P: Sequence(Event("A"), Event("B")), D: 10}
	m, err := NewMatcher(p)
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(ev("A", 0, "u", 1))
	if m.ActiveRuns() != 1 {
		t.Fatalf("runs: %d", m.ActiveRuns())
	}
	m.AdvanceTo(10)
	if m.ActiveRuns() != 0 {
		t.Fatalf("runs after watermark: %d", m.ActiveRuns())
	}
}

func TestNegationGuard(t *testing.T) {
	// A then (no C) then B: "visitor entered and reached the vault without
	// badging out".
	p := &Seq{Items: []SeqItem{
		{Pattern: EventAs("A", "a")},
		{Pattern: Event("C"), Negated: true},
		{Pattern: EventAs("B", "b")},
	}}
	// Without C in between: match.
	if got := feed(t, p, ev("A", 1, "u", 1), ev("B", 2, "u", 1)); len(got) != 1 {
		t.Fatalf("no guard event: %v", got)
	}
	// With C in between: the guard kills the run.
	if got := feed(t, p, ev("A", 1, "u", 1), ev("C", 2, "u", 1), ev("B", 3, "u", 1)); len(got) != 0 {
		t.Fatalf("guard should kill: %v", got)
	}
	// C after B is irrelevant.
	if got := feed(t, p, ev("A", 1, "u", 1), ev("B", 2, "u", 1), ev("C", 3, "u", 1)); len(got) != 1 {
		t.Fatalf("late guard event: %v", got)
	}
}

func TestConjunctionAnyOrder(t *testing.T) {
	p := &All{Patterns: []Pattern{Event("A"), Event("B")}}
	for _, order := range [][]*element.Element{
		{ev("A", 1, "u", 1), ev("B", 2, "u", 1)},
		{ev("B", 1, "u", 1), ev("A", 2, "u", 1)},
	} {
		if got := feed(t, p, order...); len(got) != 1 {
			t.Fatalf("ALL order %v: %d matches", order[0].Stream, len(got))
		}
	}
	m, _ := NewMatcher(p)
	if m.Alternatives() != 2 {
		t.Errorf("alternatives: %d", m.Alternatives())
	}
}

func TestDisjunction(t *testing.T) {
	p := &Any{Patterns: []Pattern{Event("A"), Event("B")}}
	got := feed(t, p, ev("A", 1, "u", 1), ev("B", 2, "u", 1), ev("C", 3, "u", 1))
	if len(got) != 2 {
		t.Fatalf("ANY: %d matches", len(got))
	}
}

func TestIteration(t *testing.T) {
	p := Sequence(&Iter{A: EventAs("A", "a"), Min: 2, Max: 3}, EventAs("B", "b"))
	got := feed(t, p, ev("A", 1, "u", 1), ev("A", 2, "u", 1), ev("A", 3, "u", 1), ev("B", 4, "u", 1))
	// Valid event subsets ending at B@4: {1,2},{1,3},{2,3},{1,2,3} → 4 matches.
	if len(got) != 4 {
		t.Fatalf("iteration matches: %d", len(got))
	}
	for _, mt := range got {
		n := len(mt.Events) - 1
		if n < 2 || n > 3 {
			t.Errorf("iteration size %d out of bounds", n)
		}
		if _, ok := mt.Binding("a[0]"); !ok {
			t.Error("indexed binding missing")
		}
		if _, ok := mt.Binding("b"); !ok {
			t.Error("closing binding missing")
		}
	}
}

func TestIterationSingle(t *testing.T) {
	p := &Iter{A: Event("A"), Min: 1, Max: 2}
	got := feed(t, p, ev("A", 1, "u", 1), ev("A", 2, "u", 1))
	// Matches: {1}, {2}, {1,2}.
	if len(got) != 3 {
		t.Fatalf("iteration: %d matches", len(got))
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		p    Pattern
		want error
	}{
		{&Seq{Items: []SeqItem{{Pattern: Event("A")}, {Pattern: Event("B"), Negated: true}}}, ErrTrailingNegation},
		{&Seq{Items: []SeqItem{{Pattern: Sequence(Event("A")), Negated: true}, {Pattern: Event("B")}}}, ErrNegatedNonAtom},
		{Sequence(&Within{P: Event("A"), D: 5}, Event("B")), ErrInnerWithin},
	}
	for _, c := range cases {
		if _, err := NewMatcher(c.p); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v want %v", c.p, err, c.want)
		}
	}
	if _, err := NewMatcher(&Iter{A: Event("A"), Min: 0, Max: 2}); err == nil {
		t.Error("bad iteration bounds should fail")
	}
	if _, err := NewMatcher(&Within{P: Event("A"), D: 0}); err == nil {
		t.Error("non-positive within should fail")
	}
}

func TestMaxRunsBound(t *testing.T) {
	m, err := NewMatcher(Sequence(Event("A"), Event("B")))
	if err != nil {
		t.Fatal(err)
	}
	m.MaxRuns = 10
	for i := int64(0); i < 100; i++ {
		m.Observe(ev("A", i, "u", 1))
	}
	if m.ActiveRuns() > 10 {
		t.Fatalf("runs: %d", m.ActiveRuns())
	}
}

func TestPatternStrings(t *testing.T) {
	ps := []Pattern{
		Event("A"),
		EventAs("A", "x"),
		Sequence(Event("A"), Event("B")),
		&Seq{Items: []SeqItem{{Pattern: Event("A")}, {Pattern: Event("C"), Negated: true}, {Pattern: Event("B")}}},
		&All{Patterns: []Pattern{Event("A"), Event("B")}},
		&Any{Patterns: []Pattern{Event("A"), Event("B")}},
		&Within{P: Event("A"), D: 100},
		&Iter{A: Event("A"), Min: 1, Max: 3},
	}
	for _, p := range ps {
		if p.String() == "" {
			t.Errorf("empty string for %T", p)
		}
	}
}

func TestSequenceWithDisjunctionInside(t *testing.T) {
	p := Sequence(Event("A"), &Any{Patterns: []Pattern{Event("B"), Event("C")}})
	if got := feed(t, p, ev("A", 1, "u", 1), ev("C", 2, "u", 1)); len(got) != 1 {
		t.Fatalf("A then (B|C): %v", got)
	}
	if got := feed(t, p, ev("A", 1, "u", 1), ev("B", 2, "u", 1)); len(got) != 1 {
		t.Fatalf("A then (B|C): %v", got)
	}
}

func TestMatchEventOrder(t *testing.T) {
	p := &All{Patterns: []Pattern{Event("A"), Event("B"), Event("C")}}
	got := feed(t, p, ev("B", 1, "u", 1), ev("C", 2, "u", 1), ev("A", 3, "u", 1))
	if len(got) != 1 {
		t.Fatalf("ALL(3): %d", len(got))
	}
	evs := got[0].Events
	for i := 1; i < len(evs); i++ {
		if evs[i].Timestamp < evs[i-1].Timestamp {
			t.Error("events out of order")
		}
	}
	if got[0].Interval != temporal.NewInterval(1, 4) {
		t.Errorf("interval: %v", got[0].Interval)
	}
}
