// Package cep implements a complex event processing pattern matcher in the
// tradition the paper surveys in §2 [2, 6, 11]: situations of interest are
// declared as temporal patterns of events — sequences, conjunctions,
// disjunctions, negation guards, bounded iteration — with WITHIN time
// constraints, and detected situations carry interval time semantics: each
// match is annotated with the validity interval spanned by the events that
// produced it, as in EP-SPARQL [2].
//
// The engine (internal/core) uses matchers as triggers for multi-element
// state management rules: the paper's §3.3 asks for "more complex
// situations in which a state transition is determined by multiple
// streaming elements", and a pattern match is exactly such a determination.
package cep

import (
	"fmt"
	"strings"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Predicate filters candidate events for one pattern position.
type Predicate func(*element.Element) bool

// Pattern is the AST of a situation declaration.
type Pattern interface {
	// String renders the pattern for diagnostics.
	String() string
	patternNode()
}

// Atom matches one event from the named stream satisfying the predicate.
// Alias names the binding in the produced match.
type Atom struct {
	Stream string
	Alias  string
	Pred   Predicate
}

// Seq matches its sub-patterns in temporal order (skip-till-any-match:
// irrelevant events between constituents are ignored).
type Seq struct {
	Items []SeqItem
}

// SeqItem is one step of a sequence. A Negated item is a guard: the
// sequence dies if a matching event occurs between the previous and the
// next positive constituent.
type SeqItem struct {
	Pattern Pattern
	Negated bool
}

// All matches its sub-patterns in any temporal order (conjunction).
type All struct {
	Patterns []Pattern
}

// Any matches when any one sub-pattern matches (disjunction).
type Any struct {
	Patterns []Pattern
}

// Within constrains the whole sub-pattern to span at most D of
// application time.
type Within struct {
	P Pattern
	D temporal.Instant
}

// Iter matches between Min and Max consecutive occurrences of the atom
// (bounded Kleene iteration). All matched events bind under the atom's
// alias (indexed).
type Iter struct {
	A        *Atom
	Min, Max int
}

func (*Atom) patternNode()   {}
func (*Seq) patternNode()    {}
func (*All) patternNode()    {}
func (*Any) patternNode()    {}
func (*Within) patternNode() {}
func (*Iter) patternNode()   {}

// String implements Pattern.
func (a *Atom) String() string {
	if a.Alias != "" && a.Alias != a.Stream {
		return a.Stream + " AS " + a.Alias
	}
	return a.Stream
}

// String implements Pattern.
func (s *Seq) String() string {
	parts := make([]string, len(s.Items))
	for i, it := range s.Items {
		if it.Negated {
			parts[i] = "NOT " + it.Pattern.String()
		} else {
			parts[i] = it.Pattern.String()
		}
	}
	return "SEQ(" + strings.Join(parts, ", ") + ")"
}

// String implements Pattern.
func (a *All) String() string {
	parts := make([]string, len(a.Patterns))
	for i, p := range a.Patterns {
		parts[i] = p.String()
	}
	return "ALL(" + strings.Join(parts, ", ") + ")"
}

// String implements Pattern.
func (a *Any) String() string {
	parts := make([]string, len(a.Patterns))
	for i, p := range a.Patterns {
		parts[i] = p.String()
	}
	return "ANY(" + strings.Join(parts, ", ") + ")"
}

// String implements Pattern.
func (w *Within) String() string {
	return fmt.Sprintf("%s WITHIN %s", w.P.String(), time(w.D))
}

// String implements Pattern.
func (i *Iter) String() string {
	return fmt.Sprintf("%s{%d,%d}", i.A.String(), i.Min, i.Max)
}

func time(d temporal.Instant) string { return fmt.Sprintf("%dns", int64(d)) }

// Convenience constructors ---------------------------------------------

// Event matches any element of the stream.
func Event(stream string) *Atom { return &Atom{Stream: stream, Alias: stream} }

// EventAs matches any element of the stream, bound under alias.
func EventAs(stream, alias string) *Atom { return &Atom{Stream: stream, Alias: alias} }

// EventWhere matches elements of the stream satisfying pred.
func EventWhere(stream, alias string, pred Predicate) *Atom {
	return &Atom{Stream: stream, Alias: alias, Pred: pred}
}

// Sequence builds a Seq of positive items.
func Sequence(ps ...Pattern) *Seq {
	items := make([]SeqItem, len(ps))
	for i, p := range ps {
		items[i] = SeqItem{Pattern: p}
	}
	return &Seq{Items: items}
}

// Match is one detected situation.
type Match struct {
	// Events are the constituent events in temporal order.
	Events []*element.Element
	// Bindings maps atom aliases to events. Iteration atoms bind as
	// alias[0], alias[1], ...
	Bindings map[string]*element.Element
	// Interval is the situation's time of validity: from the first
	// constituent event to just past the last (interval semantics [2]).
	Interval temporal.Interval
}

// Binding returns the event bound to the alias.
func (m Match) Binding(alias string) (*element.Element, bool) {
	e, ok := m.Bindings[alias]
	return e, ok
}
