package cep

import (
	"errors"
	"fmt"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Compilation errors.
var (
	// ErrTrailingNegation reports a sequence ending in a negated item;
	// without a closing positive event the guard can never be discharged.
	ErrTrailingNegation = errors.New("cep: sequence cannot end with a negated item")
	// ErrNegatedNonAtom reports negation applied to a composite pattern.
	ErrNegatedNonAtom = errors.New("cep: only atoms can be negated")
	// ErrInnerWithin reports a WITHIN below the top level; the constraint
	// applies to whole alternatives only.
	ErrInnerWithin = errors.New("cep: WITHIN must wrap the whole pattern")
)

// step is one positive position of a compiled program, with the negated
// guards that must not fire while the matcher waits at this position.
type step struct {
	atom   *Atom
	guards []*Atom
	// iterMin/iterMax > 0 mark a bounded-iteration step.
	iterMin, iterMax int
}

// program is one linearized alternative of a pattern.
type program struct {
	steps  []step
	within temporal.Instant // 0 = unconstrained
}

// Matcher evaluates a pattern over a stream of elements in timestamp
// order, maintaining partial matches (runs) with skip-till-any-match
// semantics: constituent events need not be adjacent, and one event may
// participate in several matches.
type Matcher struct {
	progs []program
	runs  []*run
	// MaxRuns bounds the number of simultaneous partial matches; when
	// exceeded, the oldest runs are dropped. Zero means the default
	// (65536). WITHIN pruning normally keeps run counts far below this.
	MaxRuns int
}

type run struct {
	prog     *program
	pos      int
	iterSeen int // events consumed by the iteration step at pos
	events   []*element.Element
	bindings map[string]*element.Element
	start    temporal.Instant
}

// NewMatcher compiles a pattern. Within must be the outermost node (or
// absent); negation may only apply to atoms and not at the end of a
// sequence.
func NewMatcher(p Pattern) (*Matcher, error) {
	within := temporal.Instant(0)
	if w, ok := p.(*Within); ok {
		if w.D <= 0 {
			return nil, fmt.Errorf("cep: WITHIN duration must be positive")
		}
		within = w.D
		p = w.P
	}
	alts, err := compile(p)
	if err != nil {
		return nil, err
	}
	progs := make([]program, len(alts))
	for i, steps := range alts {
		if len(steps) == 0 {
			return nil, fmt.Errorf("cep: pattern alternative %d is empty", i)
		}
		progs[i] = program{steps: steps, within: within}
	}
	return &Matcher{progs: progs}, nil
}

// compile lowers a pattern to its alternative step sequences.
func compile(p Pattern) ([][]step, error) {
	switch x := p.(type) {
	case *Atom:
		return [][]step{{{atom: x}}}, nil
	case *Iter:
		if x.Min < 1 || x.Max < x.Min {
			return nil, fmt.Errorf("cep: iteration bounds {%d,%d} invalid", x.Min, x.Max)
		}
		return [][]step{{{atom: x.A, iterMin: x.Min, iterMax: x.Max}}}, nil
	case *Seq:
		return compileSeq(x.Items)
	case *Any:
		var all [][]step
		for _, sub := range x.Patterns {
			alts, err := compile(sub)
			if err != nil {
				return nil, err
			}
			all = append(all, alts...)
		}
		return all, nil
	case *All:
		var all [][]step
		for _, perm := range permutations(len(x.Patterns)) {
			items := make([]SeqItem, len(perm))
			for i, pi := range perm {
				items[i] = SeqItem{Pattern: x.Patterns[pi]}
			}
			alts, err := compileSeq(items)
			if err != nil {
				return nil, err
			}
			all = append(all, alts...)
		}
		return all, nil
	case *Within:
		return nil, ErrInnerWithin
	}
	return nil, fmt.Errorf("cep: unknown pattern node %T", p)
}

func compileSeq(items []SeqItem) ([][]step, error) {
	// Gather pending negated guards; attach them to the next positive step.
	alts := [][]step{{}}
	var pending []*Atom
	for _, it := range items {
		if it.Negated {
			a, ok := it.Pattern.(*Atom)
			if !ok {
				return nil, ErrNegatedNonAtom
			}
			pending = append(pending, a)
			continue
		}
		subAlts, err := compile(it.Pattern)
		if err != nil {
			return nil, err
		}
		// Attach pending guards to the first step of each sub-alternative.
		guarded := make([][]step, len(subAlts))
		for i, sa := range subAlts {
			cp := make([]step, len(sa))
			copy(cp, sa)
			if len(pending) > 0 {
				first := cp[0]
				first.guards = append(append([]*Atom{}, pending...), first.guards...)
				cp[0] = first
			}
			guarded[i] = cp
		}
		pending = nil
		// Cross product with accumulated alternatives.
		var next [][]step
		for _, acc := range alts {
			for _, g := range guarded {
				merged := make([]step, 0, len(acc)+len(g))
				merged = append(merged, acc...)
				merged = append(merged, g...)
				next = append(next, merged)
			}
		}
		alts = next
	}
	if len(pending) > 0 {
		return nil, ErrTrailingNegation
	}
	return alts, nil
}

func permutations(n int) [][]int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int{}, idx...))
			return
		}
		for i := k; i < n; i++ {
			idx[k], idx[i] = idx[i], idx[k]
			rec(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	rec(0)
	return out
}

func (a *Atom) matches(el *element.Element) bool {
	if a.Stream != "" && a.Stream != el.Stream {
		return false
	}
	return a.Pred == nil || a.Pred(el)
}

const defaultMaxRuns = 65536

// Observe feeds one element and returns any situations completed by it.
// Elements must arrive in timestamp order.
func (m *Matcher) Observe(el *element.Element) []Match {
	var matches []Match
	survivors := m.runs[:0]
	var spawned []*run

	for _, r := range m.runs {
		// WITHIN pruning against the advancing event time.
		if r.prog.within > 0 && el.Timestamp >= r.start+r.prog.within {
			continue
		}
		st := r.prog.steps[r.pos]
		// Negation guard: a matching guard event kills the run.
		killed := false
		for _, g := range st.guards {
			if g.matches(el) {
				killed = true
				break
			}
		}
		if killed {
			continue
		}
		survivors = append(survivors, r) // skip-till-any-match: run persists
		if !st.atom.matches(el) {
			continue
		}
		if st.iterMax > 0 {
			// Iteration step: consume and stay (if below max), and/or
			// consume and advance (if at or above min).
			if r.iterSeen+1 < st.iterMax {
				nr := r.fork(el, st, r.pos, r.iterSeen+1)
				spawned = append(spawned, nr)
			}
			if r.iterSeen+1 >= st.iterMin {
				nr := r.fork(el, st, r.pos+1, 0)
				if nr.pos == len(r.prog.steps) {
					matches = append(matches, nr.toMatch())
				} else {
					spawned = append(spawned, nr)
				}
			}
			continue
		}
		nr := r.fork(el, st, r.pos+1, 0)
		if nr.pos == len(r.prog.steps) {
			matches = append(matches, nr.toMatch())
		} else {
			spawned = append(spawned, nr)
		}
	}
	m.runs = append(survivors, spawned...)

	// Start new runs where the element matches a program's first step.
	for i := range m.progs {
		prog := &m.progs[i]
		st := prog.steps[0]
		if !st.atom.matches(el) {
			continue
		}
		r := &run{prog: prog, start: el.Timestamp, bindings: map[string]*element.Element{}}
		if st.iterMax > 0 {
			nr := r.fork(el, st, 0, 1)
			if st.iterMin <= 1 {
				adv := r.fork(el, st, 1, 0)
				if adv.pos == len(prog.steps) {
					matches = append(matches, adv.toMatch())
				} else {
					m.runs = append(m.runs, adv)
				}
			}
			if st.iterMax > 1 {
				m.runs = append(m.runs, nr)
			}
			continue
		}
		nr := r.fork(el, st, 1, 0)
		if nr.pos == len(prog.steps) {
			matches = append(matches, nr.toMatch())
		} else {
			m.runs = append(m.runs, nr)
		}
	}

	max := m.MaxRuns
	if max == 0 {
		max = defaultMaxRuns
	}
	if len(m.runs) > max {
		m.runs = append(m.runs[:0], m.runs[len(m.runs)-max:]...)
	}
	return matches
}

// AdvanceTo prunes runs that can no longer complete given that all future
// events have timestamps >= wm.
func (m *Matcher) AdvanceTo(wm temporal.Instant) {
	survivors := m.runs[:0]
	for _, r := range m.runs {
		if r.prog.within > 0 && wm >= r.start+r.prog.within {
			continue
		}
		survivors = append(survivors, r)
	}
	m.runs = survivors
}

// ActiveRuns reports the number of partial matches currently maintained.
func (m *Matcher) ActiveRuns() int { return len(m.runs) }

// Alternatives reports the number of compiled linear alternatives (useful
// to see the expansion cost of ALL/ANY patterns).
func (m *Matcher) Alternatives() int { return len(m.progs) }

func (r *run) fork(el *element.Element, st step, newPos, iterSeen int) *run {
	nb := make(map[string]*element.Element, len(r.bindings)+1)
	for k, v := range r.bindings {
		nb[k] = v
	}
	alias := st.atom.Alias
	if alias == "" {
		alias = st.atom.Stream
	}
	if st.iterMax > 0 {
		nb[fmt.Sprintf("%s[%d]", alias, countPrefix(nb, alias))] = el
	} else {
		nb[alias] = el
	}
	ne := make([]*element.Element, len(r.events)+1)
	copy(ne, r.events)
	ne[len(r.events)] = el
	return &run{
		prog: r.prog, pos: newPos, iterSeen: iterSeen,
		events: ne, bindings: nb, start: r.start,
	}
}

func countPrefix(b map[string]*element.Element, alias string) int {
	n := 0
	for {
		if _, ok := b[fmt.Sprintf("%s[%d]", alias, n)]; !ok {
			return n
		}
		n++
	}
}

func (r *run) toMatch() Match {
	first := r.events[0].Timestamp
	last := r.events[len(r.events)-1].Timestamp
	return Match{
		Events:   r.events,
		Bindings: r.bindings,
		Interval: temporal.NewInterval(first, last+1),
	}
}
