package temporal

import (
	"sort"
	"strings"
)

// Set is a coalesced collection of disjoint, non-adjacent, non-empty
// intervals kept in ascending order. The zero value is an empty set ready
// to use. Sets answer "over which periods was this condition true" queries,
// e.g. the union of validity intervals of all versions of a fact.
type Set struct {
	ivs []Interval
}

// NewSet builds a set from the given intervals, coalescing as needed.
func NewSet(ivs ...Interval) *Set {
	s := &Set{}
	for _, iv := range ivs {
		s.Add(iv)
	}
	return s
}

// Len returns the number of disjoint intervals in the set.
func (s *Set) Len() int { return len(s.ivs) }

// IsEmpty reports whether the set covers no instants.
func (s *Set) IsEmpty() bool { return len(s.ivs) == 0 }

// Intervals returns a copy of the coalesced intervals in ascending order.
func (s *Set) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// Add inserts an interval, merging with any overlapping or adjacent members
// so the set stays coalesced. Empty intervals are ignored.
func (s *Set) Add(iv Interval) {
	if iv.IsEmpty() {
		return
	}
	// Position of the first interval that could interact with iv.
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End >= iv.Start })
	j := i
	merged := iv
	for j < len(s.ivs) && s.ivs[j].Start <= merged.End {
		merged.Start = Min(merged.Start, s.ivs[j].Start)
		merged.End = Max(merged.End, s.ivs[j].End)
		j++
	}
	out := make([]Interval, 0, len(s.ivs)-(j-i)+1)
	out = append(out, s.ivs[:i]...)
	out = append(out, merged)
	out = append(out, s.ivs[j:]...)
	s.ivs = out
}

// Remove subtracts an interval from the set.
func (s *Set) Remove(iv Interval) {
	if iv.IsEmpty() || len(s.ivs) == 0 {
		return
	}
	out := make([]Interval, 0, len(s.ivs)+1)
	for _, have := range s.ivs {
		out = append(out, have.Subtract(iv)...)
	}
	s.ivs = out
}

// Contains reports whether t is covered by the set.
func (s *Set) Contains(t Instant) bool {
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End > t })
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// Covers reports whether every instant of iv is in the set. Because the set
// is coalesced, iv must be inside a single member.
func (s *Set) Covers(iv Interval) bool {
	if iv.IsEmpty() {
		return true
	}
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End > iv.Start })
	return i < len(s.ivs) && s.ivs[i].ContainsInterval(iv)
}

// Overlaps reports whether the set shares any instant with iv.
func (s *Set) Overlaps(iv Interval) bool {
	if iv.IsEmpty() {
		return false
	}
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End > iv.Start })
	return i < len(s.ivs) && s.ivs[i].Overlaps(iv)
}

// Intersect returns a new set covering the instants in both s and iv.
func (s *Set) Intersect(iv Interval) *Set {
	out := &Set{}
	for _, have := range s.ivs {
		x := have.Intersect(iv)
		if !x.IsEmpty() {
			out.ivs = append(out.ivs, x)
		}
	}
	return out
}

// IntersectSet returns a new set covering the instants in both s and o.
func (s *Set) IntersectSet(o *Set) *Set {
	out := &Set{}
	for _, iv := range o.ivs {
		for _, have := range s.ivs {
			x := have.Intersect(iv)
			if !x.IsEmpty() {
				out.ivs = append(out.ivs, x)
			}
		}
	}
	sort.Slice(out.ivs, func(i, j int) bool { return out.ivs[i].Start < out.ivs[j].Start })
	return out
}

// UnionSet returns a new set covering the instants in either s or o.
func (s *Set) UnionSet(o *Set) *Set {
	out := &Set{}
	for _, iv := range s.ivs {
		out.Add(iv)
	}
	for _, iv := range o.ivs {
		out.Add(iv)
	}
	return out
}

// TotalDuration sums the lengths of the member intervals. Sets containing
// an open interval report a duration reaching Forever.
func (s *Set) TotalDuration() int64 {
	var total int64
	for _, iv := range s.ivs {
		total += int64(iv.End - iv.Start)
	}
	return total
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	return &Set{ivs: s.Intervals()}
}

// String renders the member intervals in order.
func (s *Set) String() string {
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}
