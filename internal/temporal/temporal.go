// Package temporal provides the time algebra that underpins explicit state
// management: instants, half-open validity intervals, Allen's interval
// relations, and coalesced interval sets.
//
// The paper models state as "a collection of data elements annotated with
// their time of validity" (Margara et al., EDBT 2017, §3). This package is
// the foundation for those validity annotations: the state store
// (internal/state) attaches an Interval to every fact version, the CEP
// matcher (internal/cep) gives detected situations interval semantics, and
// the reasoner (internal/reason) intersects premise intervals to derive the
// validity of inferred facts.
package temporal

import (
	"fmt"
	"time"
)

// Instant is a point on the application time line, expressed in nanoseconds
// since the Unix epoch. Using a plain integer (rather than time.Time) keeps
// elements and fact versions compact, comparable with <, and trivially
// serializable in the state log.
type Instant int64

// Distinguished instants. The valid range for application timestamps is
// [MinInstant, Forever); Forever marks the open end of a fact that is still
// valid ("until further notice").
const (
	// MinInstant is the earliest representable instant.
	MinInstant Instant = -1 << 62
	// Forever marks an unbounded interval end: the fact is valid until it
	// is explicitly retracted or replaced.
	Forever Instant = 1<<63 - 1
)

// FromTime converts a time.Time to an Instant.
func FromTime(t time.Time) Instant { return Instant(t.UnixNano()) }

// FromMillis converts a millisecond epoch timestamp to an Instant.
func FromMillis(ms int64) Instant { return Instant(ms) * Instant(time.Millisecond) }

// FromSeconds converts a second epoch timestamp to an Instant.
func FromSeconds(s int64) Instant { return Instant(s) * Instant(time.Second) }

// Time converts the instant back to a time.Time. Forever and MinInstant do
// not round-trip; callers should test for them explicitly.
func (i Instant) Time() time.Time { return time.Unix(0, int64(i)) }

// Millis reports the instant as milliseconds since the epoch, truncating.
func (i Instant) Millis() int64 { return int64(i) / int64(time.Millisecond) }

// Add returns the instant shifted by d. Forever and MinInstant absorb
// shifts, so open interval ends stay open under arithmetic.
func (i Instant) Add(d time.Duration) Instant {
	if i == Forever || i == MinInstant {
		return i
	}
	return i + Instant(d)
}

// Sub returns the duration between two finite instants.
func (i Instant) Sub(j Instant) time.Duration { return time.Duration(i - j) }

// Before reports whether i precedes j.
func (i Instant) Before(j Instant) bool { return i < j }

// After reports whether i follows j.
func (i Instant) After(j Instant) bool { return i > j }

// Min returns the earlier of two instants.
func Min(a, b Instant) Instant {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of two instants.
func Max(a, b Instant) Instant {
	if a > b {
		return a
	}
	return b
}

// String renders the instant; the two sentinels print symbolically.
func (i Instant) String() string {
	switch i {
	case Forever:
		return "+inf"
	case MinInstant:
		return "-inf"
	}
	return i.Time().UTC().Format(time.RFC3339Nano)
}

// Interval is a half-open time interval [Start, End). Half-open intervals
// compose without double counting: a fact replaced at time t is valid in
// [s, t) and its successor in [t, ...), so exactly one version holds at
// every instant. An interval with End == Forever is still open.
type Interval struct {
	Start Instant
	End   Instant
}

// NewInterval returns the half-open interval [start, end).
func NewInterval(start, end Instant) Interval { return Interval{Start: start, End: end} }

// Since returns the open-ended interval [start, Forever).
func Since(start Instant) Interval { return Interval{Start: start, End: Forever} }

// At returns the smallest non-empty interval containing t: [t, t+1).
func At(t Instant) Interval { return Interval{Start: t, End: t + 1} }

// Always is the interval covering all representable time.
func Always() Interval { return Interval{Start: MinInstant, End: Forever} }

// IsEmpty reports whether the interval contains no instants.
func (iv Interval) IsEmpty() bool { return iv.End <= iv.Start }

// IsOpen reports whether the interval extends to Forever.
func (iv Interval) IsOpen() bool { return iv.End == Forever }

// Contains reports whether t lies in [Start, End).
func (iv Interval) Contains(t Instant) bool { return t >= iv.Start && t < iv.End }

// ContainsInterval reports whether o is entirely inside iv.
func (iv Interval) ContainsInterval(o Interval) bool {
	return o.Start >= iv.Start && o.End <= iv.End && !o.IsEmpty()
}

// Overlaps reports whether the two intervals share at least one instant.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End && !iv.IsEmpty() && !o.IsEmpty()
}

// Adjacent reports whether the intervals abut without overlapping
// (iv.End == o.Start or o.End == iv.Start).
func (iv Interval) Adjacent(o Interval) bool {
	return iv.End == o.Start || o.End == iv.Start
}

// Intersect returns the largest interval contained in both. The result may
// be empty; test with IsEmpty.
func (iv Interval) Intersect(o Interval) Interval {
	r := Interval{Start: Max(iv.Start, o.Start), End: Min(iv.End, o.End)}
	if r.IsEmpty() {
		return Interval{}
	}
	return r
}

// Union returns the smallest interval containing both, and true, when the
// intervals overlap or are adjacent; otherwise it returns the zero interval
// and false (the union would not be contiguous).
func (iv Interval) Union(o Interval) (Interval, bool) {
	if !iv.Overlaps(o) && !iv.Adjacent(o) {
		return Interval{}, false
	}
	if iv.IsEmpty() {
		return o, true
	}
	if o.IsEmpty() {
		return iv, true
	}
	return Interval{Start: Min(iv.Start, o.Start), End: Max(iv.End, o.End)}, true
}

// Subtract removes o from iv and returns the remaining pieces in order.
// The result has zero, one, or two intervals.
func (iv Interval) Subtract(o Interval) []Interval {
	if iv.IsEmpty() {
		return nil
	}
	if !iv.Overlaps(o) {
		return []Interval{iv}
	}
	var out []Interval
	if iv.Start < o.Start {
		out = append(out, Interval{Start: iv.Start, End: o.Start})
	}
	if o.End < iv.End {
		out = append(out, Interval{Start: o.End, End: iv.End})
	}
	return out
}

// ClampEnd returns the interval truncated so that it ends no later than t.
// Truncating an open interval is how the state store terminates the
// previous version of a fact on replace.
func (iv Interval) ClampEnd(t Instant) Interval {
	if t < iv.End {
		return Interval{Start: iv.Start, End: t}
	}
	return iv
}

// Duration returns the length of a finite interval. Open intervals report
// the duration until Forever, which callers should treat as unbounded.
func (iv Interval) Duration() time.Duration { return time.Duration(iv.End - iv.Start) }

// String renders the interval in [start, end) form.
func (iv Interval) String() string { return fmt.Sprintf("[%s, %s)", iv.Start, iv.End) }

// Relation is one of Allen's thirteen interval relations. Relations are
// named from the perspective of the first interval: a Before b, a Meets b,
// and so on.
type Relation int

// The thirteen Allen relations.
const (
	RelBefore Relation = iota
	RelAfter
	RelMeets
	RelMetBy
	RelOverlaps
	RelOverlappedBy
	RelStarts
	RelStartedBy
	RelDuring
	RelContains
	RelFinishes
	RelFinishedBy
	RelEquals
)

var relationNames = [...]string{
	RelBefore:       "before",
	RelAfter:        "after",
	RelMeets:        "meets",
	RelMetBy:        "met-by",
	RelOverlaps:     "overlaps",
	RelOverlappedBy: "overlapped-by",
	RelStarts:       "starts",
	RelStartedBy:    "started-by",
	RelDuring:       "during",
	RelContains:     "contains",
	RelFinishes:     "finishes",
	RelFinishedBy:   "finished-by",
	RelEquals:       "equals",
}

// String returns the conventional name of the relation.
func (r Relation) String() string {
	if int(r) < len(relationNames) {
		return relationNames[r]
	}
	return fmt.Sprintf("relation(%d)", int(r))
}

// Inverse returns the converse relation: if Relate(a, b) == r then
// Relate(b, a) == r.Inverse().
func (r Relation) Inverse() Relation {
	switch r {
	case RelBefore:
		return RelAfter
	case RelAfter:
		return RelBefore
	case RelMeets:
		return RelMetBy
	case RelMetBy:
		return RelMeets
	case RelOverlaps:
		return RelOverlappedBy
	case RelOverlappedBy:
		return RelOverlaps
	case RelStarts:
		return RelStartedBy
	case RelStartedBy:
		return RelStarts
	case RelDuring:
		return RelContains
	case RelContains:
		return RelDuring
	case RelFinishes:
		return RelFinishedBy
	case RelFinishedBy:
		return RelFinishes
	default:
		return RelEquals
	}
}

// Relate classifies the position of a relative to b as one of Allen's
// thirteen relations. Both intervals must be non-empty.
func Relate(a, b Interval) Relation {
	switch {
	case a.Start == b.Start && a.End == b.End:
		return RelEquals
	case a.End < b.Start:
		return RelBefore
	case b.End < a.Start:
		return RelAfter
	case a.End == b.Start:
		return RelMeets
	case b.End == a.Start:
		return RelMetBy
	case a.Start == b.Start:
		if a.End < b.End {
			return RelStarts
		}
		return RelStartedBy
	case a.End == b.End:
		if a.Start > b.Start {
			return RelFinishes
		}
		return RelFinishedBy
	case a.Start > b.Start && a.End < b.End:
		return RelDuring
	case a.Start < b.Start && a.End > b.End:
		return RelContains
	case a.Start < b.Start:
		return RelOverlaps
	default:
		return RelOverlappedBy
	}
}
