package temporal

import (
	"math/rand"
	"testing"
)

func TestSetAddCoalesces(t *testing.T) {
	s := NewSet(iv(0, 10), iv(20, 30))
	if s.Len() != 2 {
		t.Fatalf("want 2 intervals, got %d: %s", s.Len(), s)
	}
	s.Add(iv(10, 20)) // bridges the gap
	if s.Len() != 1 || s.Intervals()[0] != iv(0, 30) {
		t.Fatalf("coalesce failed: %s", s)
	}
}

func TestSetAddOverlapping(t *testing.T) {
	s := NewSet()
	s.Add(iv(5, 15))
	s.Add(iv(0, 7))
	s.Add(iv(14, 20))
	if s.Len() != 1 || s.Intervals()[0] != iv(0, 20) {
		t.Fatalf("overlap coalesce failed: %s", s)
	}
}

func TestSetAddEmptyIgnored(t *testing.T) {
	s := NewSet()
	s.Add(iv(5, 5))
	if !s.IsEmpty() {
		t.Fatal("empty interval should be ignored")
	}
}

func TestSetRemoveSplits(t *testing.T) {
	s := NewSet(iv(0, 30))
	s.Remove(iv(10, 20))
	got := s.Intervals()
	if len(got) != 2 || got[0] != iv(0, 10) || got[1] != iv(20, 30) {
		t.Fatalf("remove split failed: %s", s)
	}
}

func TestSetContainsCovers(t *testing.T) {
	s := NewSet(iv(0, 10), iv(20, 30))
	if !s.Contains(0) || !s.Contains(9) || s.Contains(10) || s.Contains(15) {
		t.Error("Contains wrong")
	}
	if !s.Covers(iv(2, 8)) || s.Covers(iv(5, 25)) || !s.Covers(iv(20, 30)) {
		t.Error("Covers wrong")
	}
	if !s.Covers(Interval{}) {
		t.Error("empty interval should be covered vacuously")
	}
	if !s.Overlaps(iv(5, 25)) || s.Overlaps(iv(10, 20)) {
		t.Error("Overlaps wrong")
	}
}

func TestSetIntersect(t *testing.T) {
	s := NewSet(iv(0, 10), iv(20, 30))
	x := s.Intersect(iv(5, 25))
	got := x.Intervals()
	if len(got) != 2 || got[0] != iv(5, 10) || got[1] != iv(20, 25) {
		t.Fatalf("Intersect: %s", x)
	}
}

func TestSetSetOps(t *testing.T) {
	a := NewSet(iv(0, 10), iv(20, 30))
	b := NewSet(iv(5, 25))
	inter := a.IntersectSet(b)
	if inter.TotalDuration() != 10 {
		t.Errorf("IntersectSet duration: got %d", inter.TotalDuration())
	}
	union := a.UnionSet(b)
	if union.Len() != 1 || union.Intervals()[0] != iv(0, 30) {
		t.Errorf("UnionSet: %s", union)
	}
}

func TestSetClone(t *testing.T) {
	a := NewSet(iv(0, 10))
	b := a.Clone()
	b.Add(iv(20, 30))
	if a.Len() != 1 || b.Len() != 2 {
		t.Error("clone should be independent")
	}
}

func TestSetString(t *testing.T) {
	if NewSet().String() != "{}" {
		t.Error("empty set string")
	}
}

// TestSetMatchesNaiveModel compares the coalescing Set against a brute-force
// boolean timeline over a small domain under a random op sequence.
func TestSetMatchesNaiveModel(t *testing.T) {
	const domain = 64
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := NewSet()
		var model [domain]bool
		for op := 0; op < 30; op++ {
			a := rng.Int63n(domain)
			b := rng.Int63n(domain)
			if a > b {
				a, b = b, a
			}
			in := iv(a, b)
			if rng.Intn(2) == 0 {
				s.Add(in)
				for k := a; k < b; k++ {
					model[k] = true
				}
			} else {
				s.Remove(in)
				for k := a; k < b; k++ {
					model[k] = false
				}
			}
		}
		for k := 0; k < domain; k++ {
			if s.Contains(Instant(k)) != model[k] {
				t.Fatalf("trial %d: mismatch at %d: set=%v model=%v (%s)",
					trial, k, s.Contains(Instant(k)), model[k], s)
			}
		}
		// Invariant: members are sorted, disjoint, non-adjacent, non-empty.
		ivs := s.Intervals()
		for i, in := range ivs {
			if in.IsEmpty() {
				t.Fatalf("trial %d: empty member %v", trial, in)
			}
			if i > 0 && ivs[i-1].End >= in.Start {
				t.Fatalf("trial %d: not coalesced: %v then %v", trial, ivs[i-1], in)
			}
		}
	}
}
