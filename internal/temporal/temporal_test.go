package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func iv(a, b int64) Interval { return Interval{Start: Instant(a), End: Instant(b)} }

func TestInstantConversions(t *testing.T) {
	now := time.Unix(1700000000, 123456789)
	i := FromTime(now)
	if !i.Time().Equal(now) {
		t.Fatalf("round trip: got %v want %v", i.Time(), now)
	}
	if got := FromMillis(1500).Millis(); got != 1500 {
		t.Fatalf("FromMillis/Millis: got %d", got)
	}
	if got := FromSeconds(2); got != Instant(2*time.Second) {
		t.Fatalf("FromSeconds: got %d", got)
	}
}

func TestInstantAddSentinels(t *testing.T) {
	if Forever.Add(time.Hour) != Forever {
		t.Error("Forever should absorb Add")
	}
	if MinInstant.Add(-time.Hour) != MinInstant {
		t.Error("MinInstant should absorb Add")
	}
	if Instant(10).Add(5) != Instant(15) {
		t.Error("finite Add failed")
	}
}

func TestInstantOrdering(t *testing.T) {
	if !Instant(1).Before(Instant(2)) || Instant(2).Before(Instant(1)) {
		t.Error("Before is wrong")
	}
	if !Instant(2).After(Instant(1)) {
		t.Error("After is wrong")
	}
	if Min(Instant(3), Instant(5)) != 3 || Max(Instant(3), Instant(5)) != 5 {
		t.Error("Min/Max wrong")
	}
}

func TestInstantString(t *testing.T) {
	if Forever.String() != "+inf" || MinInstant.String() != "-inf" {
		t.Error("sentinel strings wrong")
	}
	if Instant(0).String() == "" {
		t.Error("finite instant should render")
	}
}

func TestIntervalBasics(t *testing.T) {
	a := iv(10, 20)
	if a.IsEmpty() || a.IsOpen() {
		t.Error("finite interval misclassified")
	}
	if !Since(5).IsOpen() {
		t.Error("Since should be open")
	}
	if iv(10, 10).IsEmpty() == false || iv(20, 10).IsEmpty() == false {
		t.Error("empty intervals misclassified")
	}
	if !a.Contains(10) || a.Contains(20) || a.Contains(9) {
		t.Error("half-open containment wrong")
	}
	if !At(7).Contains(7) || At(7).Contains(8) {
		t.Error("At wrong")
	}
	if !Always().Contains(0) || !Always().Contains(MinInstant) {
		t.Error("Always should contain everything")
	}
	if a.Duration() != 10 {
		t.Errorf("Duration: got %d", a.Duration())
	}
}

func TestIntervalOverlapIntersect(t *testing.T) {
	cases := []struct {
		a, b    Interval
		overlap bool
		inter   Interval
	}{
		{iv(0, 10), iv(5, 15), true, iv(5, 10)},
		{iv(0, 10), iv(10, 20), false, Interval{}},
		{iv(0, 10), iv(2, 5), true, iv(2, 5)},
		{iv(0, 10), iv(20, 30), false, Interval{}},
		{iv(0, 10), iv(0, 10), true, iv(0, 10)},
		{Since(5), iv(0, 10), true, iv(5, 10)},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.overlap {
			t.Errorf("%v overlaps %v: got %v", c.a, c.b, got)
		}
		if got := c.a.Intersect(c.b); got != c.inter {
			t.Errorf("%v intersect %v: got %v want %v", c.a, c.b, got, c.inter)
		}
	}
}

func TestIntervalUnion(t *testing.T) {
	u, ok := iv(0, 10).Union(iv(5, 15))
	if !ok || u != iv(0, 15) {
		t.Errorf("overlapping union: got %v %v", u, ok)
	}
	u, ok = iv(0, 10).Union(iv(10, 20))
	if !ok || u != iv(0, 20) {
		t.Errorf("adjacent union: got %v %v", u, ok)
	}
	if _, ok := iv(0, 10).Union(iv(11, 20)); ok {
		t.Error("disjoint union should fail")
	}
}

func TestIntervalSubtract(t *testing.T) {
	cases := []struct {
		a, b Interval
		want []Interval
	}{
		{iv(0, 10), iv(3, 6), []Interval{iv(0, 3), iv(6, 10)}},
		{iv(0, 10), iv(0, 5), []Interval{iv(5, 10)}},
		{iv(0, 10), iv(5, 10), []Interval{iv(0, 5)}},
		{iv(0, 10), iv(0, 10), nil},
		{iv(0, 10), iv(20, 30), []Interval{iv(0, 10)}},
		{iv(0, 10), iv(-5, 15), nil},
	}
	for _, c := range cases {
		got := c.a.Subtract(c.b)
		if len(got) != len(c.want) {
			t.Errorf("%v - %v: got %v want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v - %v: got %v want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

func TestIntervalClampEnd(t *testing.T) {
	if got := Since(0).ClampEnd(10); got != iv(0, 10) {
		t.Errorf("ClampEnd open: got %v", got)
	}
	if got := iv(0, 5).ClampEnd(10); got != iv(0, 5) {
		t.Errorf("ClampEnd no-op: got %v", got)
	}
}

func TestAllenRelations(t *testing.T) {
	cases := []struct {
		a, b Interval
		want Relation
	}{
		{iv(0, 5), iv(10, 20), RelBefore},
		{iv(10, 20), iv(0, 5), RelAfter},
		{iv(0, 10), iv(10, 20), RelMeets},
		{iv(10, 20), iv(0, 10), RelMetBy},
		{iv(0, 10), iv(5, 15), RelOverlaps},
		{iv(5, 15), iv(0, 10), RelOverlappedBy},
		{iv(0, 5), iv(0, 10), RelStarts},
		{iv(0, 10), iv(0, 5), RelStartedBy},
		{iv(3, 7), iv(0, 10), RelDuring},
		{iv(0, 10), iv(3, 7), RelContains},
		{iv(5, 10), iv(0, 10), RelFinishes},
		{iv(0, 10), iv(5, 10), RelFinishedBy},
		{iv(0, 10), iv(0, 10), RelEquals},
	}
	for _, c := range cases {
		if got := Relate(c.a, c.b); got != c.want {
			t.Errorf("Relate(%v, %v): got %v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRelationInverseProperty(t *testing.T) {
	// Relate(a, b).Inverse() == Relate(b, a) for random non-empty intervals.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a := randInterval(rng)
		b := randInterval(rng)
		if Relate(a, b).Inverse() != Relate(b, a) {
			t.Fatalf("inverse property fails for %v, %v", a, b)
		}
	}
}

func TestRelationNames(t *testing.T) {
	for r := RelBefore; r <= RelEquals; r++ {
		if r.String() == "" {
			t.Errorf("relation %d has no name", r)
		}
	}
}

func randInterval(rng *rand.Rand) Interval {
	s := rng.Int63n(100)
	return Interval{Start: Instant(s), End: Instant(s + 1 + rng.Int63n(50))}
}

func TestIntersectCommutesQuick(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		a := iv(int64(a1), int64(a2))
		b := iv(int64(b1), int64(b2))
		return a.Intersect(b) == b.Intersect(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectContainedQuick(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		a := iv(int64(a1), int64(a2))
		b := iv(int64(b1), int64(b2))
		x := a.Intersect(b)
		if x.IsEmpty() {
			return true
		}
		return a.ContainsInterval(x) && b.ContainsInterval(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubtractDisjointFromOperandQuick(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		a := iv(int64(a1), int64(a2))
		b := iv(int64(b1), int64(b2))
		for _, piece := range a.Subtract(b) {
			if piece.Overlaps(b) || !a.ContainsInterval(piece) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
