package lang

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Expr is a parsed expression. Expressions are immutable and safe to share
// across evaluations.
type Expr interface {
	// String renders the expression in re-parseable syntax.
	String() string
	exprNode()
}

// Lit is a literal value.
type Lit struct{ Value element.Value }

// Duration is a duration literal in nanoseconds (rendered as e.g. 5m).
type Duration struct{ Nanos int64 }

// VarRef is a bare identifier reference, resolved against the environment
// (e.g. a rule binding variable or a query column).
type VarRef struct{ Name string }

// FieldRef accesses a field of a bound element: var.field.
type FieldRef struct{ Var, Field string }

// StateRef reads the state repository: attr(entityExpr) evaluates to the
// value of the attribute for the entity, or Null when absent. This is how
// stream processing rules "access that information during processing"
// (paper §3.1).
type StateRef struct {
	Attr   string
	Entity Expr
}

// Exists tests state presence: EXISTS attr(entityExpr).
type Exists struct {
	Attr   string
	Entity Expr
}

// Unary is NOT x or -x.
type Unary struct {
	Op string // "not" or "-"
	X  Expr
}

// Binary is a binary operation: arithmetic, comparison, or logical.
type Binary struct {
	Op   string // + - * / % = != < <= > >= and or
	L, R Expr
}

// Call invokes a builtin function.
type Call struct {
	Name string
	Args []Expr
}

func (*Lit) exprNode()      {}
func (*Duration) exprNode() {}
func (*VarRef) exprNode()   {}
func (*FieldRef) exprNode() {}
func (*StateRef) exprNode() {}
func (*Exists) exprNode()   {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Call) exprNode()     {}

// String implements Expr.
func (e *Lit) String() string {
	if s, ok := e.Value.AsString(); ok {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	if e.Value.Kind() == element.KindFloat {
		// Plain decimal notation: the lexer does not read 1e+06. Keep a
		// decimal point so the literal re-lexes as a float even when the
		// value is integral (a bare 1e19 would overflow integer lexing).
		f, _ := e.Value.AsFloat()
		s := strconv.FormatFloat(f, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	}
	return e.Value.String()
}

// String implements Expr, choosing the largest whole unit.
func (e *Duration) String() string {
	order := []struct {
		unit string
		n    int64
	}{{"d", 86400e9}, {"h", 3600e9}, {"m", 60e9}, {"s", 1e9}, {"ms", 1e6}, {"us", 1e3}, {"ns", 1}}
	for _, u := range order {
		if e.Nanos != 0 && e.Nanos%u.n == 0 {
			return fmt.Sprintf("%d%s", e.Nanos/u.n, u.unit)
		}
	}
	return fmt.Sprintf("%dns", e.Nanos)
}

// String implements Expr.
func (e *VarRef) String() string { return e.Name }

// String implements Expr.
func (e *FieldRef) String() string { return e.Var + "." + e.Field }

// String implements Expr.
func (e *StateRef) String() string { return e.Attr + "(" + e.Entity.String() + ")" }

// String implements Expr.
func (e *Exists) String() string { return "EXISTS " + e.Attr + "(" + e.Entity.String() + ")" }

// String implements Expr.
func (e *Unary) String() string {
	if e.Op == "not" {
		return "NOT " + e.X.String()
	}
	s := e.X.String()
	if strings.HasPrefix(s, "-") {
		// A space keeps nested negation from printing as a "--" comment.
		return "- " + s
	}
	return "-" + s
}

// String implements Expr.
func (e *Binary) String() string {
	op := e.Op
	if op == "and" || op == "or" {
		op = strings.ToUpper(op)
	}
	return "(" + e.L.String() + " " + op + " " + e.R.String() + ")"
}

// String implements Expr.
func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

// Builtins lists the function names the parser recognizes as calls; any
// other name(arg) form parses as a state lookup.
var Builtins = map[string]bool{
	"now": true, "abs": true, "min": true, "max": true,
	"coalesce": true, "concat": true, "len": true, "lower": true,
	"upper": true, "if": true, "round": true, "floor": true,
	"ceil": true, "contains": true, "startswith": true,
	"endswith": true, "substr": true, "replace": true,
}

// Env supplies bindings during evaluation. Implementations come from the
// rule runtime (event bindings + state view) and the query executor.
type Env interface {
	// Var resolves a bare identifier.
	Var(name string) (element.Value, bool)
	// Field resolves var.field.
	Field(varName, field string) (element.Value, bool)
	// State resolves attr(entity) against the state repository (typically
	// an as-of view at the evaluation instant).
	State(attr string, entity element.Value) (element.Value, bool)
	// Now is the evaluation instant.
	Now() temporal.Instant
}

// EvalError reports an evaluation failure.
type EvalError struct {
	Expr Expr
	Msg  string
}

// Error implements error.
func (e *EvalError) Error() string {
	return fmt.Sprintf("eval %s: %s", e.Expr.String(), e.Msg)
}

func evalErr(e Expr, format string, args ...interface{}) error {
	return &EvalError{Expr: e, Msg: fmt.Sprintf(format, args...)}
}

// Eval evaluates the expression under env. Nulls propagate through
// arithmetic; comparisons involving Null are false except Null = Null.
func Eval(e Expr, env Env) (element.Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.Value, nil
	case *Duration:
		return element.Int(x.Nanos), nil
	case *VarRef:
		if v, ok := env.Var(x.Name); ok {
			return v, nil
		}
		return element.Null, evalErr(e, "unbound variable %q", x.Name)
	case *FieldRef:
		if v, ok := env.Field(x.Var, x.Field); ok {
			return v, nil
		}
		return element.Null, evalErr(e, "no field %q on %q", x.Field, x.Var)
	case *StateRef:
		ent, err := Eval(x.Entity, env)
		if err != nil {
			return element.Null, err
		}
		if v, ok := env.State(x.Attr, ent); ok {
			return v, nil
		}
		return element.Null, nil // absent state reads as Null
	case *Exists:
		ent, err := Eval(x.Entity, env)
		if err != nil {
			return element.Null, err
		}
		_, ok := env.State(x.Attr, ent)
		return element.Bool(ok), nil
	case *Unary:
		v, err := Eval(x.X, env)
		if err != nil {
			return element.Null, err
		}
		if x.Op == "not" {
			return element.Bool(!v.Truthy()), nil
		}
		switch v.Kind() {
		case element.KindInt:
			return element.Int(-v.MustInt()), nil
		case element.KindFloat:
			return element.Float(-v.MustFloat()), nil
		case element.KindNull:
			return element.Null, nil
		}
		return element.Null, evalErr(e, "cannot negate %s", v.Kind())
	case *Binary:
		return evalBinary(x, env)
	case *Call:
		return evalCall(x, env)
	}
	return element.Null, evalErr(e, "unknown expression type %T", e)
}

func evalBinary(x *Binary, env Env) (element.Value, error) {
	// Short-circuit logical operators.
	switch x.Op {
	case "and":
		l, err := Eval(x.L, env)
		if err != nil {
			return element.Null, err
		}
		if !l.Truthy() {
			return element.Bool(false), nil
		}
		r, err := Eval(x.R, env)
		if err != nil {
			return element.Null, err
		}
		return element.Bool(r.Truthy()), nil
	case "or":
		l, err := Eval(x.L, env)
		if err != nil {
			return element.Null, err
		}
		if l.Truthy() {
			return element.Bool(true), nil
		}
		r, err := Eval(x.R, env)
		if err != nil {
			return element.Null, err
		}
		return element.Bool(r.Truthy()), nil
	}
	l, err := Eval(x.L, env)
	if err != nil {
		return element.Null, err
	}
	r, err := Eval(x.R, env)
	if err != nil {
		return element.Null, err
	}
	switch x.Op {
	case "=":
		return element.Bool(l.Equal(r)), nil
	case "!=":
		return element.Bool(!l.Equal(r)), nil
	case "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return element.Bool(false), nil
		}
		if bothComparable(l, r) {
			c := l.Compare(r)
			switch x.Op {
			case "<":
				return element.Bool(c < 0), nil
			case "<=":
				return element.Bool(c <= 0), nil
			case ">":
				return element.Bool(c > 0), nil
			default:
				return element.Bool(c >= 0), nil
			}
		}
		return element.Null, evalErr(x, "cannot compare %s and %s", l.Kind(), r.Kind())
	case "+", "-", "*", "/", "%":
		return evalArith(x, l, r)
	}
	return element.Null, evalErr(x, "unknown operator %q", x.Op)
}

func bothComparable(l, r element.Value) bool {
	lk, rk := l.Kind(), r.Kind()
	numeric := func(k element.Kind) bool { return k == element.KindInt || k == element.KindFloat }
	if numeric(lk) && numeric(rk) {
		return true
	}
	return lk == rk
}

func evalArith(x *Binary, l, r element.Value) (element.Value, error) {
	if l.IsNull() || r.IsNull() {
		return element.Null, nil
	}
	// String concatenation via +.
	if x.Op == "+" {
		if ls, ok := l.AsString(); ok {
			if rs, ok := r.AsString(); ok {
				return element.String(ls + rs), nil
			}
		}
	}
	// Time arithmetic: time ± int (nanoseconds / duration), time - time.
	if lt, ok := l.AsTime(); ok {
		if ri, ok := r.AsInt(); ok {
			switch x.Op {
			case "+":
				return element.Time(lt + temporal.Instant(ri)), nil
			case "-":
				return element.Time(lt - temporal.Instant(ri)), nil
			}
		}
		if rt, ok := r.AsTime(); ok && x.Op == "-" {
			return element.Int(int64(lt - rt)), nil
		}
		return element.Null, evalErr(x, "bad time arithmetic")
	}
	li, lInt := l.AsInt()
	ri, rInt := r.AsInt()
	if lInt && rInt {
		switch x.Op {
		case "+":
			return element.Int(li + ri), nil
		case "-":
			return element.Int(li - ri), nil
		case "*":
			return element.Int(li * ri), nil
		case "/":
			if ri == 0 {
				return element.Null, evalErr(x, "division by zero")
			}
			return element.Int(li / ri), nil
		case "%":
			if ri == 0 {
				return element.Null, evalErr(x, "division by zero")
			}
			return element.Int(li % ri), nil
		}
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return element.Null, evalErr(x, "cannot apply %q to %s and %s", x.Op, l.Kind(), r.Kind())
	}
	switch x.Op {
	case "+":
		return element.Float(lf + rf), nil
	case "-":
		return element.Float(lf - rf), nil
	case "*":
		return element.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return element.Null, evalErr(x, "division by zero")
		}
		return element.Float(lf / rf), nil
	}
	return element.Null, evalErr(x, "cannot apply %q to floats", x.Op)
}

func evalCall(x *Call, env Env) (element.Value, error) {
	args := make([]element.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := Eval(a, env)
		if err != nil {
			return element.Null, err
		}
		args[i] = v
	}
	arity := func(n int) error {
		if len(args) != n {
			return evalErr(x, "%s expects %d arguments, got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "now":
		if err := arity(0); err != nil {
			return element.Null, err
		}
		return element.Time(env.Now()), nil
	case "abs":
		if err := arity(1); err != nil {
			return element.Null, err
		}
		if i, ok := args[0].AsInt(); ok {
			if i < 0 {
				i = -i
			}
			return element.Int(i), nil
		}
		if f, ok := args[0].AsFloat(); ok {
			if f < 0 {
				f = -f
			}
			return element.Float(f), nil
		}
		return element.Null, evalErr(x, "abs of non-numeric")
	case "min", "max":
		if len(args) == 0 {
			return element.Null, evalErr(x, "%s needs arguments", x.Name)
		}
		best := args[0]
		for _, a := range args[1:] {
			c := a.Compare(best)
			if (x.Name == "min" && c < 0) || (x.Name == "max" && c > 0) {
				best = a
			}
		}
		return best, nil
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return element.Null, nil
	case "concat":
		var sb strings.Builder
		for _, a := range args {
			sb.WriteString(a.String())
		}
		return element.String(sb.String()), nil
	case "len":
		if err := arity(1); err != nil {
			return element.Null, err
		}
		if s, ok := args[0].AsString(); ok {
			return element.Int(int64(len(s))), nil
		}
		return element.Null, evalErr(x, "len of non-string")
	case "lower", "upper":
		if err := arity(1); err != nil {
			return element.Null, err
		}
		s, ok := args[0].AsString()
		if !ok {
			return element.Null, evalErr(x, "%s of non-string", x.Name)
		}
		if x.Name == "lower" {
			return element.String(strings.ToLower(s)), nil
		}
		return element.String(strings.ToUpper(s)), nil
	case "if":
		if err := arity(3); err != nil {
			return element.Null, err
		}
		if args[0].Truthy() {
			return args[1], nil
		}
		return args[2], nil
	case "round", "floor", "ceil":
		if err := arity(1); err != nil {
			return element.Null, err
		}
		if i, ok := args[0].AsInt(); ok {
			return element.Int(i), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return element.Null, evalErr(x, "%s of non-numeric", x.Name)
		}
		switch x.Name {
		case "round":
			return element.Int(int64(math.Round(f))), nil
		case "floor":
			return element.Int(int64(math.Floor(f))), nil
		default:
			return element.Int(int64(math.Ceil(f))), nil
		}
	case "contains", "startswith", "endswith":
		if err := arity(2); err != nil {
			return element.Null, err
		}
		s, ok1 := args[0].AsString()
		sub, ok2 := args[1].AsString()
		if !ok1 || !ok2 {
			return element.Null, evalErr(x, "%s of non-strings", x.Name)
		}
		switch x.Name {
		case "contains":
			return element.Bool(strings.Contains(s, sub)), nil
		case "startswith":
			return element.Bool(strings.HasPrefix(s, sub)), nil
		default:
			return element.Bool(strings.HasSuffix(s, sub)), nil
		}
	case "substr":
		if err := arity(3); err != nil {
			return element.Null, err
		}
		s, ok1 := args[0].AsString()
		from, ok2 := args[1].AsInt()
		n, ok3 := args[2].AsInt()
		if !ok1 || !ok2 || !ok3 {
			return element.Null, evalErr(x, "substr(string, int, int)")
		}
		if from < 0 || n < 0 || from > int64(len(s)) {
			return element.Null, evalErr(x, "substr bounds out of range")
		}
		end := from + n
		if end > int64(len(s)) {
			end = int64(len(s))
		}
		return element.String(s[from:end]), nil
	case "replace":
		if err := arity(3); err != nil {
			return element.Null, err
		}
		s, ok1 := args[0].AsString()
		old, ok2 := args[1].AsString()
		nw, ok3 := args[2].AsString()
		if !ok1 || !ok2 || !ok3 {
			return element.Null, evalErr(x, "replace(string, string, string)")
		}
		return element.String(strings.ReplaceAll(s, old, nw)), nil
	}
	return element.Null, evalErr(x, "unknown function %q", x.Name)
}

// EvalBool evaluates the expression and reports its truthiness.
func EvalBool(e Expr, env Env) (bool, error) {
	v, err := Eval(e, env)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}
