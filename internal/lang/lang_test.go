package lang

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

// mockEnv is a simple test environment.
type mockEnv struct {
	vars   map[string]element.Value
	fields map[string]map[string]element.Value
	state  map[string]map[string]element.Value // attr → entityKey → value
	now    temporal.Instant
}

func (m *mockEnv) Var(name string) (element.Value, bool) {
	v, ok := m.vars[name]
	return v, ok
}

func (m *mockEnv) Field(varName, field string) (element.Value, bool) {
	f, ok := m.fields[varName]
	if !ok {
		return element.Null, false
	}
	v, ok := f[field]
	return v, ok
}

func (m *mockEnv) State(attr string, entity element.Value) (element.Value, bool) {
	a, ok := m.state[attr]
	if !ok {
		return element.Null, false
	}
	v, ok := a[entity.String()]
	return v, ok
}

func (m *mockEnv) Now() temporal.Instant { return m.now }

func env() *mockEnv {
	return &mockEnv{
		vars: map[string]element.Value{"x": element.Int(10), "name": element.String("ann")},
		fields: map[string]map[string]element.Value{
			"e": {"user": element.String("ann"), "amount": element.Float(2.5), "n": element.Int(4)},
		},
		state: map[string]map[string]element.Value{
			"position": {"ann": element.String("lab")},
			"active":   {"ann": element.Bool(true)},
		},
		now: 1000,
	}
}

func evalStr(t *testing.T, src string) element.Value {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(e, env())
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`foo 42 3.14 'it''s' "dq" 5m <= != -- comment
	next`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokIdent, TokInt, TokFloat, TokString, TokString, TokDuration, TokLe, TokNeq, TokIdent, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count: got %d want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v want %v", i, toks[i].Kind, k)
		}
	}
	if toks[3].Text != "it's" {
		t.Errorf("escaped string: %q", toks[3].Text)
	}
	if toks[5].Int != int64(5*60*1e9) {
		t.Errorf("duration 5m: %d", toks[5].Int)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "5q", "@", "99999999999999999999"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Lex(%q): want SyntaxError, got %T", src, err)
			}
		}
	}
}

func TestLexFractionalDuration(t *testing.T) {
	toks, err := Lex("1.5h")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokDuration || toks[0].Int != int64(1.5*3600e9) {
		t.Errorf("1.5h: %+v", toks[0])
	}
}

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want element.Value
	}{
		{"1 + 2 * 3", element.Int(7)},
		{"(1 + 2) * 3", element.Int(9)},
		{"10 / 4", element.Int(2)},
		{"10.0 / 4", element.Float(2.5)},
		{"10 % 3", element.Int(1)},
		{"-x + 1", element.Int(-9)},
		{"'a' + 'b'", element.String("ab")},
		{"2 + e.amount", element.Float(4.5)},
		{"1 + null", element.Null},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src); !got.Equal(c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("%q: got %s want %s", c.src, got, c.want)
		}
	}
}

func TestEvalComparisonsAndLogic(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"4 >= 4", true},
		{"x = 10", true},
		{"x != 10", false},
		{"1 = 1.0", true},
		{"'a' < 'b'", true},
		{"1 < 2 AND 2 < 3", true},
		{"1 > 2 OR 2 < 3", true},
		{"NOT (1 < 2)", false},
		{"null = null", true},
		{"null < 1", false},
		{"true AND false", false},
		{"e.n % 2 = 0", true},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src); got.Truthy() != c.want {
			t.Errorf("%q: got %s want %v", c.src, got, c.want)
		}
	}
}

func TestEvalStateLookup(t *testing.T) {
	if got := evalStr(t, "position('ann')"); got.MustString() != "lab" {
		t.Errorf("state lookup: %s", got)
	}
	if got := evalStr(t, "position(e.user)"); got.MustString() != "lab" {
		t.Errorf("state lookup via field: %s", got)
	}
	if got := evalStr(t, "position('bob')"); !got.IsNull() {
		t.Errorf("absent state should be null: %s", got)
	}
	if got := evalStr(t, "EXISTS position('ann')"); !got.Truthy() {
		t.Error("exists true")
	}
	if got := evalStr(t, "EXISTS position('bob')"); got.Truthy() {
		t.Error("exists false")
	}
	if got := evalStr(t, "EXISTS active(name) AND position(name) = 'lab'"); !got.Truthy() {
		t.Error("combined state condition")
	}
}

func TestEvalBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want element.Value
	}{
		{"now()", element.Time(1000)},
		{"abs(-5)", element.Int(5)},
		{"abs(-2.5)", element.Float(2.5)},
		{"min(3, 1, 2)", element.Int(1)},
		{"max(3, 1, 2)", element.Int(3)},
		{"coalesce(null, 7)", element.Int(7)},
		{"coalesce(position('bob'), 'unknown')", element.String("unknown")},
		{"concat('a', 1, 'b')", element.String("a1b")},
		{"len('abc')", element.Int(3)},
		{"lower('AbC')", element.String("abc")},
		{"upper('AbC')", element.String("ABC")},
		{"if(1 < 2, 'y', 'n')", element.String("y")},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src); !got.Equal(c.want) {
			t.Errorf("%q: got %s want %s", c.src, got, c.want)
		}
	}
}

func TestEvalDurations(t *testing.T) {
	if got := evalStr(t, "5m"); got.MustInt() != int64(5*60*1e9) {
		t.Errorf("5m: %s", got)
	}
	if v, _ := evalStr(t, "now() + 1m").AsTime(); v != 1000+temporal.Instant(60*1e9) {
		t.Errorf("time + duration: %s", v)
	}
	if got := evalStr(t, "now() - now()"); got.MustInt() != 0 {
		t.Errorf("time - time: %s", got)
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		"nosuchvar",
		"e.nosuchfield",
		"1 / 0",
		"1 % 0",
		"abs('s')",
		"len(1)",
		"'a' < 1",
		"-'s'",
		"lower(1)",
		"if(1, 2)",
	}
	for _, src := range bad {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Eval(e, env()); err == nil {
			t.Errorf("eval %q: want error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"(1",
		"state(a, b)",    // state lookup arity
		"nosuchfn(1, 2)", // non-builtin with two args
		"EXISTS 3(x)",    // exists needs ident
		"1 2",            // trailing token
		"e.",             // missing field
		"min(1,",         // unterminated args
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q): want error", src)
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		"1 + 2 * 3",
		"(x = 10 AND e.user != 'bob') OR NOT EXISTS position(e.user)",
		"coalesce(position(e.user), 'none')",
		"now() + 5m",
		"-x - 1",
		"'it''s'",
		"if(x > 0, x, -x)",
		"e.amount * 2.5 >= 10",
		"max(1, 2, 3) % 2",
	}
	for _, src := range srcs {
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := e1.String()
		e2, err := ParseExpr(printed)
		if err != nil {
			t.Fatalf("reparse %q (printed from %q): %v", printed, src, err)
		}
		if e2.String() != printed {
			t.Errorf("round trip unstable: %q -> %q -> %q", src, printed, e2.String())
		}
		// Both parses must evaluate identically.
		v1, err1 := Eval(e1, env())
		v2, err2 := Eval(e2, env())
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("%q: eval err mismatch: %v vs %v", src, err1, err2)
		}
		if err1 == nil && !v1.Equal(v2) && !(v1.IsNull() && v2.IsNull()) {
			t.Errorf("%q: eval mismatch: %s vs %s", src, v1, v2)
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := map[int64]string{
		int64(5 * 60 * 1e9): "5m",
		int64(2 * 3600e9):   "2h",
		int64(86400e9):      "1d",
		int64(1500 * 1e6):   "1500ms",
		int64(7):            "7ns",
		0:                   "0ns",
	}
	for n, want := range cases {
		d := &Duration{Nanos: n}
		if d.String() != want {
			t.Errorf("Duration(%d): got %s want %s", n, d.String(), want)
		}
	}
}

func TestCursorHelpers(t *testing.T) {
	toks, _ := Lex("WHERE x THEN")
	c := NewCursor(toks)
	if !c.Peek().Is("where") || !c.Peek().Is("WHERE") {
		t.Error("Is should be case-insensitive")
	}
	if !c.AcceptKeyword("where") {
		t.Error("AcceptKeyword")
	}
	if err := c.ExpectKeyword("then"); err == nil {
		t.Error("ExpectKeyword should fail on x")
	}
	c.Next() // skip x
	if err := c.ExpectKeyword("then"); err != nil {
		t.Errorf("ExpectKeyword then: %v", err)
	}
	// Next at EOF stays at EOF.
	c.Next()
	if c.Next().Kind != TokEOF {
		t.Error("Next at EOF")
	}
}

func TestStopKeywordsTerminateExpr(t *testing.T) {
	toks, err := Lex("e.user = 'ann' THEN rest")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCursor(toks)
	e, err := ParseExprFrom(c)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Peek().Is("then") {
		t.Errorf("cursor should stop at THEN, is at %v", c.Peek())
	}
	if !strings.Contains(e.String(), "e.user") {
		t.Errorf("expr: %s", e)
	}
}

func TestEvalBoolHelper(t *testing.T) {
	e, _ := ParseExpr("1 < 2")
	ok, err := EvalBool(e, env())
	if err != nil || !ok {
		t.Errorf("EvalBool: %v %v", ok, err)
	}
	e2, _ := ParseExpr("nosuch")
	if _, err := EvalBool(e2, env()); err == nil {
		t.Error("EvalBool should propagate errors")
	}
}

func TestSyntaxErrorFormatting(t *testing.T) {
	_, err := ParseExpr("1 +")
	var se *SyntaxError
	if !errors.As(err, &se) || se.Error() == "" {
		t.Errorf("want SyntaxError, got %v", err)
	}
}
