package lang

import (
	"testing"

	"repro/internal/element"
)

func TestNumericBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want element.Value
	}{
		{"round(2.4)", element.Int(2)},
		{"round(2.5)", element.Int(3)},
		{"round(-2.5)", element.Int(-3)},
		{"floor(2.9)", element.Int(2)},
		{"floor(-2.1)", element.Int(-3)},
		{"ceil(2.1)", element.Int(3)},
		{"ceil(-2.9)", element.Int(-2)},
		{"round(7)", element.Int(7)}, // ints pass through
	}
	for _, c := range cases {
		if got := evalStr(t, c.src); !got.Equal(c.want) {
			t.Errorf("%q: got %s want %s", c.src, got, c.want)
		}
	}
}

func TestStringBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want element.Value
	}{
		{"contains('hello', 'ell')", element.Bool(true)},
		{"contains('hello', 'xyz')", element.Bool(false)},
		{"startswith('hello', 'he')", element.Bool(true)},
		{"startswith('hello', 'lo')", element.Bool(false)},
		{"endswith('hello', 'lo')", element.Bool(true)},
		{"endswith('hello', 'he')", element.Bool(false)},
		{"substr('hello', 1, 3)", element.String("ell")},
		{"substr('hello', 3, 10)", element.String("lo")},
		{"substr('hello', 0, 0)", element.String("")},
		{"replace('a-b-c', '-', '+')", element.String("a+b+c")},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src); !got.Equal(c.want) {
			t.Errorf("%q: got %s want %s", c.src, got, c.want)
		}
	}
}

func TestBuiltinErrors(t *testing.T) {
	bad := []string{
		"round('s')",
		"floor('s')",
		"contains(1, 's')",
		"substr('s', -1, 2)",
		"substr('s', 9, 2)",
		"substr('s', 0)",
		"replace('a', 'b')",
		"startswith('a', 1)",
	}
	for _, src := range bad {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Eval(e, env()); err == nil {
			t.Errorf("eval %q: want error", src)
		}
	}
}

func TestNewBuiltinsComposeWithState(t *testing.T) {
	// Builtins compose with state lookups in rule/gate shapes.
	if got := evalStr(t, "startswith(position('ann'), 'la')"); !got.Truthy() {
		t.Error("builtin over state lookup")
	}
	if got := evalStr(t, "if(contains(e.user, 'nn'), upper(e.user), 'x')"); got.MustString() != "ANN" {
		t.Errorf("composition: %s", got)
	}
}
