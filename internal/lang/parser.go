package lang

import (
	"repro/internal/element"
)

// ParseExpr parses a complete expression from src.
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	c := NewCursor(toks)
	e, err := ParseExprFrom(c)
	if err != nil {
		return nil, err
	}
	if c.Peek().Kind != TokEOF {
		return nil, errf(c.Peek().Pos, "unexpected %s after expression", describe(c.Peek()))
	}
	return e, nil
}

// ParseExprFrom parses an expression starting at the cursor, leaving the
// cursor after the expression. The rule and query parsers call this for
// embedded expressions.
func ParseExprFrom(c *Cursor) (Expr, error) { return parseOr(c) }

// Reserved keywords that terminate an expression when they appear where a
// binary operator could: rule/query clause keywords. Without this, "WHERE x
// THEN ..." would try to parse THEN as an operand.
var exprStopKeywords = map[string]bool{
	"then": true, "when": true, "where": true, "from": true, "until": true,
	"as": true, "emit": true, "assert": true, "replace": true, "retract": true,
	"order": true, "by": true, "limit": true, "group": true, "asof": true,
	"during": true, "history": true, "current": true, "select": true,
	"within": true, "on": true, "rule": true, "with": true, "having": true,
	"desc": true, "asc": true, "set": true, "to": true,
}

func atStopKeyword(c *Cursor) bool {
	t := c.Peek()
	return t.Kind == TokIdent && exprStopKeywords[lowerASCII(t.Text)]
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i, ch := range b {
		if ch >= 'A' && ch <= 'Z' {
			b[i] = ch + 'a' - 'A'
		}
	}
	return string(b)
}

func parseOr(c *Cursor) (Expr, error) {
	l, err := parseAnd(c)
	if err != nil {
		return nil, err
	}
	for !atStopKeyword(c) && c.AcceptKeyword("or") {
		r, err := parseAnd(c)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func parseAnd(c *Cursor) (Expr, error) {
	l, err := parseNot(c)
	if err != nil {
		return nil, err
	}
	for !atStopKeyword(c) && c.AcceptKeyword("and") {
		r, err := parseNot(c)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "and", L: l, R: r}
	}
	return l, nil
}

func parseNot(c *Cursor) (Expr, error) {
	if c.AcceptKeyword("not") {
		x, err := parseNot(c)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "not", X: x}, nil
	}
	return parseComparison(c)
}

var cmpOps = map[TokenKind]string{
	TokEq: "=", TokNeq: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
}

func parseComparison(c *Cursor) (Expr, error) {
	l, err := parseAdd(c)
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[c.Peek().Kind]; ok {
		c.Next()
		r, err := parseAdd(c)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func parseAdd(c *Cursor) (Expr, error) {
	l, err := parseMul(c)
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch c.Peek().Kind {
		case TokPlus:
			op = "+"
		case TokMinus:
			op = "-"
		default:
			return l, nil
		}
		c.Next()
		r, err := parseMul(c)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func parseMul(c *Cursor) (Expr, error) {
	l, err := parseUnary(c)
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch c.Peek().Kind {
		case TokStar:
			op = "*"
		case TokSlash:
			op = "/"
		case TokPercent:
			op = "%"
		default:
			return l, nil
		}
		c.Next()
		r, err := parseUnary(c)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func parseUnary(c *Cursor) (Expr, error) {
	if _, ok := c.Accept(TokMinus); ok {
		x, err := parseUnary(c)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return parsePrimary(c)
}

func parsePrimary(c *Cursor) (Expr, error) {
	t := c.Peek()
	switch t.Kind {
	case TokInt:
		c.Next()
		return &Lit{Value: element.Int(t.Int)}, nil
	case TokFloat:
		c.Next()
		return &Lit{Value: element.Float(t.Float)}, nil
	case TokString:
		c.Next()
		return &Lit{Value: element.String(t.Text)}, nil
	case TokDuration:
		c.Next()
		return &Duration{Nanos: t.Int}, nil
	case TokLParen:
		c.Next()
		e, err := ParseExprFrom(c)
		if err != nil {
			return nil, err
		}
		if _, err := c.Expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		switch lowerASCII(t.Text) {
		case "true":
			c.Next()
			return &Lit{Value: element.Bool(true)}, nil
		case "false":
			c.Next()
			return &Lit{Value: element.Bool(false)}, nil
		case "null":
			c.Next()
			return &Lit{Value: element.Null}, nil
		case "exists":
			c.Next()
			name, err := c.Expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := c.Expect(TokLParen); err != nil {
				return nil, err
			}
			ent, err := ParseExprFrom(c)
			if err != nil {
				return nil, err
			}
			if _, err := c.Expect(TokRParen); err != nil {
				return nil, err
			}
			return &Exists{Attr: name.Text, Entity: ent}, nil
		}
		c.Next()
		// ident(...) is a builtin call or a state lookup.
		if _, ok := c.Accept(TokLParen); ok {
			var args []Expr
			if c.Peek().Kind != TokRParen {
				for {
					a, err := ParseExprFrom(c)
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if _, ok := c.Accept(TokComma); !ok {
						break
					}
				}
			}
			if _, err := c.Expect(TokRParen); err != nil {
				return nil, err
			}
			if Builtins[lowerASCII(t.Text)] {
				return &Call{Name: lowerASCII(t.Text), Args: args}, nil
			}
			if len(args) != 1 {
				return nil, errf(t.Pos, "state lookup %s(...) takes exactly one entity argument", t.Text)
			}
			return &StateRef{Attr: t.Text, Entity: args[0]}, nil
		}
		// ident.ident is a field reference.
		if _, ok := c.Accept(TokDot); ok {
			f, err := c.Expect(TokIdent)
			if err != nil {
				return nil, err
			}
			return &FieldRef{Var: t.Text, Field: f.Text}, nil
		}
		return &VarRef{Name: t.Text}, nil
	}
	return nil, errf(t.Pos, "expected expression, found %s", describe(t))
}
