// Package lang implements the textual language shared by the state
// management rule language (internal/rules) and the temporal query
// language (internal/query): a lexer, an expression AST with printer, a
// precedence-climbing expression parser, and a dynamic evaluator.
//
// The paper leaves "the language used to express state management rules"
// and "which language to offer for state query and retrieval" as open
// research questions (§3.3). This package is our concrete answer: a small,
// SQL-flavoured expression core with three extensions the model needs —
// duration literals (5m, 30s) for temporal constraints, state lookups
// attr(entity) that read the state repository during evaluation, and
// EXISTS attr(entity) state tests for condition-gated processing.
package lang

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	TokDuration
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokComma
	TokDot
	TokStar
	TokEq  // = or ==
	TokNeq // != or <>
	TokLt
	TokLe
	TokGt
	TokGe
	TokPlus
	TokMinus
	TokSlash
	TokPercent
)

var tokenNames = map[TokenKind]string{
	TokEOF: "end of input", TokIdent: "identifier", TokInt: "integer",
	TokFloat: "float", TokString: "string", TokDuration: "duration",
	TokLParen: "'('", TokRParen: "')'", TokLBracket: "'['", TokRBracket: "']'",
	TokComma: "','", TokDot: "'.'", TokStar: "'*'",
	TokEq: "'='", TokNeq: "'!='", TokLt: "'<'", TokLe: "'<='",
	TokGt: "'>'", TokGe: "'>='", TokPlus: "'+'", TokMinus: "'-'",
	TokSlash: "'/'", TokPercent: "'%'",
}

// String names the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	// Text is the raw text for identifiers and strings (unquoted).
	Text string
	// Int holds the value of TokInt and TokDuration (nanoseconds).
	Int int64
	// Float holds the value of TokFloat.
	Float float64
	// Pos is the byte offset of the token start.
	Pos int
}

// Is reports whether the token is an identifier equal (case-insensitively)
// to the given keyword.
func (t Token) Is(keyword string) bool {
	return t.Kind == TokIdent && strings.EqualFold(t.Text, keyword)
}

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string { return fmt.Sprintf("syntax error at %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...interface{}) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

var durationUnits = map[string]time.Duration{
	"ns": time.Nanosecond,
	"us": time.Microsecond,
	"ms": time.Millisecond,
	"s":  time.Second,
	"m":  time.Minute,
	"h":  time.Hour,
	"d":  24 * time.Hour,
}

// Lex tokenizes src. Comments run from "--" to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			toks = append(toks, Token{Kind: TokIdent, Text: src[start:i], Pos: start})
		case c >= '0' && c <= '9':
			start := i
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			isFloat := false
			if i < n && src[i] == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9' {
				isFloat = true
				i++
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			// A trailing unit makes it a duration literal: 5m, 1.5h, 30s.
			unitStart := i
			for i < n && src[i] >= 'a' && src[i] <= 'z' {
				i++
			}
			if unit := src[unitStart:i]; unit != "" {
				d, ok := durationUnits[unit]
				if !ok {
					return nil, errf(start, "unknown duration unit %q", unit)
				}
				num := src[start:unitStart]
				f, err := strconv.ParseFloat(num, 64)
				if err != nil {
					return nil, errf(start, "bad duration %q", src[start:i])
				}
				ns := f * float64(d)
				if ns >= float64(1<<63) {
					return nil, errf(start, "duration %q overflows", src[start:i])
				}
				toks = append(toks, Token{Kind: TokDuration, Int: int64(ns), Pos: start})
				continue
			}
			text := src[start:i]
			if isFloat {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, errf(start, "bad float %q", text)
				}
				toks = append(toks, Token{Kind: TokFloat, Float: f, Pos: start})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, errf(start, "bad integer %q", text)
				}
				toks = append(toks, Token{Kind: TokInt, Int: v, Pos: start})
			}
		case c == '\'' || c == '"':
			quote := c
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if src[i] == quote {
					if i+1 < n && src[i+1] == quote { // doubled quote escapes
						sb.WriteByte(quote)
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, errf(start, "unterminated string")
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch {
			case two == "==":
				toks = append(toks, Token{Kind: TokEq, Pos: start})
				i += 2
			case two == "!=" || two == "<>":
				toks = append(toks, Token{Kind: TokNeq, Pos: start})
				i += 2
			case two == "<=":
				toks = append(toks, Token{Kind: TokLe, Pos: start})
				i += 2
			case two == ">=":
				toks = append(toks, Token{Kind: TokGe, Pos: start})
				i += 2
			default:
				kind, ok := singleCharTokens[c]
				if !ok {
					return nil, errf(start, "unexpected character %q", string(c))
				}
				toks = append(toks, Token{Kind: kind, Pos: start})
				i++
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

var singleCharTokens = map[byte]TokenKind{
	'(': TokLParen, ')': TokRParen, '[': TokLBracket, ']': TokRBracket,
	',': TokComma, '.': TokDot, '*': TokStar, '=': TokEq,
	'<': TokLt, '>': TokGt, '+': TokPlus, '-': TokMinus,
	'/': TokSlash, '%': TokPercent,
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

// Cursor walks a token slice; the rule and query parsers share it.
type Cursor struct {
	Toks []Token
	I    int
}

// NewCursor returns a cursor at the start of toks.
func NewCursor(toks []Token) *Cursor { return &Cursor{Toks: toks} }

// Peek returns the current token without consuming it.
func (c *Cursor) Peek() Token { return c.Toks[c.I] }

// Next consumes and returns the current token.
func (c *Cursor) Next() Token {
	t := c.Toks[c.I]
	if c.Toks[c.I].Kind != TokEOF {
		c.I++
	}
	return t
}

// Accept consumes the current token if it has the given kind.
func (c *Cursor) Accept(k TokenKind) (Token, bool) {
	if c.Peek().Kind == k {
		return c.Next(), true
	}
	return Token{}, false
}

// AcceptKeyword consumes the current token if it is the given keyword.
func (c *Cursor) AcceptKeyword(kw string) bool {
	if c.Peek().Is(kw) {
		c.Next()
		return true
	}
	return false
}

// Expect consumes a token of the given kind or returns a syntax error.
func (c *Cursor) Expect(k TokenKind) (Token, error) {
	if c.Peek().Kind != k {
		return Token{}, errf(c.Peek().Pos, "expected %s, found %s", k, describe(c.Peek()))
	}
	return c.Next(), nil
}

// ExpectKeyword consumes the given keyword or returns a syntax error.
func (c *Cursor) ExpectKeyword(kw string) error {
	if !c.Peek().Is(kw) {
		return errf(c.Peek().Pos, "expected %s, found %s", strings.ToUpper(kw), describe(c.Peek()))
	}
	c.Next()
	return nil
}

func describe(t Token) string {
	if t.Kind == TokIdent {
		return fmt.Sprintf("%q", t.Text)
	}
	return t.Kind.String()
}
