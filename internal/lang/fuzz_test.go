package lang

import (
	"testing"
)

// FuzzParseExpr asserts the expression parser never panics and that a
// successful parse is print/reparse stable. Run the seed corpus in
// normal `go test`; explore with `go test -fuzz=FuzzParseExpr`.
func FuzzParseExpr(f *testing.F) {
	seeds := []string{
		"1 + 2 * 3",
		"position(e.user) = 'lab' AND EXISTS active(e.user)",
		"now() + 5m",
		"if(x > 0, 'p', concat('n', -x))",
		"'unterminated",
		"((((1))))",
		"a.b.c",
		"5zz",
		"NOT NOT NOT true",
		"min(1,2,3) % max(1,2)",
		"-- just a comment",
		"\"double\" != 'single'",
		"e . f",
		"1e9", // not scientific notation in this grammar: lexes as duration error or ident
		"xyzzy(1)",
		"xyzzy(1, 2)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e1, err := ParseExpr(src)
		if err != nil {
			return
		}
		printed := e1.String()
		e2, err := ParseExpr(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %q -> %q: %v", src, printed, err)
		}
		if e2.String() != printed {
			t.Fatalf("unstable print: %q -> %q -> %q", src, printed, e2.String())
		}
	})
}
