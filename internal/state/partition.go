// Partitioned cross-shard scans: the parallel gather behind the query
// planner (internal/query). A partitioned scan collects and orders the
// candidate lineages exactly as the serial gather does, splits the
// ordered list into contiguous chunks, gathers each chunk on its own
// worker from the same pinned snapshot, and concatenates the chunk
// results in order — so the output is byte-identical to the serial
// gather by construction, for every temporal shape and pin. Predicates
// the planner pushes below the merge (Keep, plus the numeric ValueBounds
// resolved against each head's published value envelope) run inside the
// workers, before any row reaches the single-threaded query executor.

package state

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/element"
)

// ValueBounds is a numeric constraint on fact values, extracted by the
// query planner from pushed equality/range predicates over the `value`
// pseudo-column (e.g. `value > 10` or `value = 42`). A scan skips a
// lineage whose published value envelope is disjoint from the bounds —
// see head.skipByBounds for the exact soundness conditions. The zero
// value constrains nothing.
type ValueBounds struct {
	// Min is the lower bound, meaningful when HasMin; MinExcl makes it
	// exclusive (value > Min) instead of inclusive (value >= Min).
	Min     float64
	HasMin  bool
	MinExcl bool
	// Max is the upper bound, meaningful when HasMax; MaxExcl makes it
	// exclusive (value < Max) instead of inclusive (value <= Max).
	Max     float64
	HasMax  bool
	MaxExcl bool
}

// Constrained reports whether the bounds constrain anything.
func (b ValueBounds) Constrained() bool { return b.HasMin || b.HasMax }

// Excludes reports whether the closed interval [lo, hi] cannot contain
// any value satisfying the bounds — the exported form of the envelope
// test the scan paths use. Backends prune durable frames against their
// own per-segment value envelopes with it, so frame pruning and head
// pruning share one definition of "disjoint".
func (b ValueBounds) Excludes(lo, hi float64) bool { return b.disjoint(lo, hi) }

// disjoint reports whether the closed interval [lo, hi] cannot contain
// any value satisfying the bounds.
func (b ValueBounds) disjoint(lo, hi float64) bool {
	if b.HasMin && (hi < b.Min || (b.MinExcl && hi <= b.Min)) {
		return true
	}
	if b.HasMax && (lo > b.Max || (b.MaxExcl && lo >= b.Max)) {
		return true
	}
	return false
}

// ScanSpec describes one partitioned gather against a snapshot.
type ScanSpec struct {
	// Opts is the temporal shape and attribute scope of the scan — the
	// same ReadOpt list List accepts.
	Opts []ReadOpt
	// Parallelism bounds the gather workers. Values <= 0 pick a default
	// scaled to GOMAXPROCS and capped so each worker keeps at least
	// minLineagesPerPartition lineages (small scans run serially rather
	// than paying goroutine fan-out). Explicit values are honored up to
	// the candidate lineage count. The result is independent of the
	// worker count.
	Parallelism int
	// Bounds prunes lineages by their published numeric value envelope
	// before partitioning. The zero value prunes nothing.
	Bounds ValueBounds
	// Keep is the pushed row predicate, run inside the gather workers on
	// each selected (already cloned) fact; nil keeps every fact. It must
	// be safe for concurrent calls.
	Keep func(*element.Fact) bool
}

// ScanStats reports what a partitioned scan did — the planner surfaces
// these decisions through PreparedQuery.Explain.
type ScanStats struct {
	// Lineages is the candidate lineage count after attribute scoping,
	// resident and cold alike.
	Lineages int
	// IndexPruned counts resident candidates skipped by the value
	// envelope. (Cold candidates arrive pre-pruned by their per-segment
	// envelopes and are not counted here.)
	IndexPruned int
	// Partitions is the number of gather partitions actually used.
	Partitions int
	// ColdLineages is the number of durable-only candidates the gather
	// unioned in — lineages served from segment frames, not RAM.
	ColdLineages int
}

// minLineagesPerPartition is the smallest per-worker chunk the default
// parallelism will create: below it, goroutine hand-off costs more than
// the gather itself, so small scans stay serial.
const minLineagesPerPartition = 64

// ScanShards is List executed as a partitioned parallel gather: workers
// gather disjoint contiguous ranges of the ordered lineage list from
// this snapshot's pin and the chunks are concatenated in order, so the
// result is exactly Snapshot.List(opts...) for any parallelism.
func (sn *Snapshot) ScanShards(parallelism int, opts ...ReadOpt) []*element.Fact {
	out, _ := sn.ScanPartitioned(ScanSpec{Opts: opts, Parallelism: parallelism})
	return out
}

// ScanPartitioned runs one partitioned gather with pushed predicates and
// envelope pruning, returning the selected facts (serial gather order)
// and the scan's execution stats.
func (sn *Snapshot) ScanPartitioned(spec ScanSpec) ([]*element.Fact, ScanStats) {
	return sn.s.gatherPartitioned(sn.clamp(newReadCfg(spec.Opts)), spec)
}

// scanCand is one partitioned-gather candidate: a resident head loaded
// once at partition time, or a cold lineage whose frame is read and
// decoded lazily inside the worker that owns its chunk.
type scanCand struct {
	h    *head
	cold ColdLineage // meaningful when h == nil
}

// gatherPartitioned is the partitioned counterpart of gatherList. The
// lineage collection and ordering mirror byAttributeAll/scanAll —
// including the sorted union with the ColdSource's durable-only
// lineages — and the per-lineage selection is the shared pickInto, so
// the output is byte-identical to the serial gather for any parallelism
// and any residency state. Cold frames are decoded inside the gather
// workers: a scan over mostly-cold data parallelizes its preads and
// decodes, not just its selection.
func (s *Store) gatherPartitioned(cfg readCfg, spec ScanSpec) ([]*element.Fact, ScanStats) {
	var lins []*lineage
	if cfg.attr != "" {
		for _, sh := range s.shards {
			lins = append(lins, sh.pub.Load().byAttr[cfg.attr]...)
		}
		sort.Slice(lins, func(i, j int) bool { return lins[i].key.Entity < lins[j].key.Entity })
	} else {
		for _, sh := range s.shards {
			for _, ls := range sh.pub.Load().byAttr {
				lins = append(lins, ls...)
			}
		}
		sort.Slice(lins, func(i, j int) bool {
			return coldKeyLess(lins[i].key, lins[j].key)
		})
	}
	stats := ScanStats{Lineages: len(lins)}
	cold := s.coldLineagesFor(shapeOfCfg(cfg), spec.Bounds)

	// Merge resident heads and cold candidates in key order. Each
	// resident head is loaded once (the scan's consistent view of the
	// lineage) and dropped when the value envelope proves it irrelevant
	// before chunking, so pruning also rebalances the partitions; cold
	// candidates arrive pre-pruned by their per-segment envelopes.
	// Resident wins on equal keys, exactly as in mergeGather. The merge
	// is deliberately closure-free: prepared-query Exec rides this path,
	// and its per-exec allocation budget has no room for captured-
	// variable cells.
	prune := spec.Bounds.Constrained()
	cands := make([]scanCand, 0, len(lins)+len(cold))
	i, j := 0, 0
	for i < len(lins) || j < len(cold) {
		if i >= len(lins) || (j < len(cold) && coldKeyLess(cold[j].Key, lins[i].key)) {
			cands = append(cands, scanCand{cold: cold[j]})
			stats.Lineages++
			stats.ColdLineages++
			j++
			continue
		}
		if j < len(cold) && !coldKeyLess(lins[i].key, cold[j].Key) {
			j++ // equal keys: resident wins, the cold entry is shadowed
		}
		h := lins[i].head.Load()
		i++
		if prune && h.skipByBounds(spec.Bounds) {
			stats.IndexPruned++
			continue
		}
		cands = append(cands, scanCand{h: h})
	}

	par := spec.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
		if lim := len(cands) / minLineagesPerPartition; par > lim {
			par = lim
		}
	}
	if par > len(cands) {
		par = len(cands)
	}
	if par < 1 {
		par = 1
	}
	stats.Partitions = par

	if par == 1 {
		var out []*element.Fact
		for _, c := range cands {
			out = gatherCand(c, cfg, spec.Bounds, prune, out)
		}
		return keepFiltered(out, spec.Keep), stats
	}

	parts := make([][]*element.Fact, par)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		lo, hi := w*len(cands)/par, (w+1)*len(cands)/par
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []*element.Fact
			for _, c := range cands[lo:hi] {
				out = gatherCand(c, cfg, spec.Bounds, prune, out)
			}
			parts[w] = keepFiltered(out, spec.Keep)
		}(w, lo, hi)
	}
	wg.Wait()

	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]*element.Fact, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, stats
}

// gatherCand resolves one partitioned-scan candidate into out: a
// resident head runs the shared pickInto directly; a cold candidate is
// loaded here — pread + decode on the worker that owns its chunk — and
// the decoded head re-runs the envelope test, since the per-segment
// envelope covers the whole segment while the decoded head's envelope
// covers just this lineage, so the second test can prune what the first
// could not.
func gatherCand(c scanCand, cfg readCfg, bounds ValueBounds, prune bool, out []*element.Fact) []*element.Fact {
	h := c.h
	if h == nil {
		if h = coldHead(c.cold); h == nil {
			return out
		}
		if prune && h.skipByBounds(bounds) {
			return out
		}
	}
	return pickInto(h, cfg, out)
}

// keepFiltered applies the pushed row predicate in place.
func keepFiltered(facts []*element.Fact, keep func(*element.Fact) bool) []*element.Fact {
	if keep == nil {
		return facts
	}
	kept := facts[:0]
	for _, f := range facts {
		if keep(f) {
			kept = append(kept, f)
		}
	}
	return kept
}
