package state

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

func TestPutReplaceSemantics(t *testing.T) {
	s := NewStore()
	if err := s.Put("v1", "position", element.String("hall"), 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("v1", "position", element.String("lab"), 20); err != nil {
		t.Fatal(err)
	}
	cur, ok := s.Current("v1", "position")
	if !ok || cur.Value.MustString() != "lab" || cur.Validity != temporal.Since(20) {
		t.Fatalf("current: %v %v", cur, ok)
	}
	// The invariant the paper's security use case needs: at no instant are
	// two positions valid.
	if f, _ := s.ValidAt("v1", "position", 15); f.Value.MustString() != "hall" {
		t.Error("as-of 15 should be hall")
	}
	if f, _ := s.ValidAt("v1", "position", 20); f.Value.MustString() != "lab" {
		t.Error("as-of 20 should be lab (half-open boundary)")
	}
	hist := s.History("v1", "position")
	if len(hist) != 2 || hist[0].Validity != temporal.NewInterval(10, 20) {
		t.Fatalf("history: %v", hist)
	}
}

func TestPutSameInstantOverwrites(t *testing.T) {
	s := NewStore()
	s.Put("e", "a", element.Int(1), 10)
	if err := s.Put("e", "a", element.Int(2), 10); err != nil {
		t.Fatal(err)
	}
	hist := s.History("e", "a")
	if len(hist) != 1 || hist[0].Value.MustInt() != 2 {
		t.Fatalf("overwrite: %v", hist)
	}
}

func TestPutOutOfOrder(t *testing.T) {
	s := NewStore()
	s.Put("e", "a", element.Int(1), 10)
	err := s.Put("e", "a", element.Int(2), 5)
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("want ErrOutOfOrder, got %v", err)
	}
}

func TestAssertExplicitInterval(t *testing.T) {
	s := NewStore()
	f := element.NewFact("e", "a", element.Int(1), temporal.NewInterval(10, 20))
	if err := s.Assert(f); err != nil {
		t.Fatal(err)
	}
	if err := s.Assert(element.NewFact("e", "a", element.Int(2), temporal.NewInterval(15, 25))); !errors.Is(err, ErrOverlap) {
		t.Fatalf("want ErrOverlap, got %v", err)
	}
	if err := s.Assert(element.NewFact("e", "a", element.Int(2), temporal.NewInterval(20, 30))); err != nil {
		t.Fatalf("adjacent assert should work: %v", err)
	}
	if err := s.Assert(element.NewFact("e", "a", element.Int(3), temporal.NewInterval(5, 8))); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("want ErrOutOfOrder, got %v", err)
	}
	if err := s.Assert(element.NewFact("e", "a", element.Int(3), temporal.Interval{})); err == nil {
		t.Fatal("empty validity should error")
	}
	// Mutating the caller's fact must not affect the store.
	f.Value = element.Int(99)
	if got, _ := s.ValidAt("e", "a", 12); got.Value.MustInt() != 1 {
		t.Error("store should hold a clone")
	}
}

func TestRetract(t *testing.T) {
	s := NewStore()
	s.Put("e", "a", element.Int(1), 10)
	if err := s.Retract("e", "a", 30); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Current("e", "a"); ok {
		t.Error("retracted key should have no current")
	}
	if f, ok := s.ValidAt("e", "a", 20); !ok || f.Validity != temporal.NewInterval(10, 30) {
		t.Errorf("history preserved: %v %v", f, ok)
	}
	if err := s.Retract("e", "a", 40); !errors.Is(err, ErrNoCurrent) {
		t.Fatalf("want ErrNoCurrent, got %v", err)
	}
	if err := s.Retract("x", "a", 40); !errors.Is(err, ErrNoCurrent) {
		t.Fatalf("unknown key: want ErrNoCurrent, got %v", err)
	}
}

func TestRetractAtStartRemovesVersion(t *testing.T) {
	s := NewStore()
	s.Put("e", "a", element.Int(1), 10)
	if err := s.Retract("e", "a", 10); err != nil {
		t.Fatal(err)
	}
	if len(s.History("e", "a")) != 0 {
		t.Error("zero-length version should be removed")
	}
	if got := s.Stats().Versions; got != 0 {
		t.Errorf("versions: %d", got)
	}
}

func TestRetractBeforeStartIsOutOfOrder(t *testing.T) {
	s := NewStore()
	s.Put("e", "a", element.Int(1), 10)
	if err := s.Retract("e", "a", 5); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("want ErrOutOfOrder, got %v", err)
	}
}

func TestCurrentByAttributeSorted(t *testing.T) {
	s := NewStore()
	s.Put("bob", "position", element.String("r2"), 5)
	s.Put("ann", "position", element.String("r1"), 5)
	s.Put("ann", "badge", element.Int(7), 5)
	got := s.CurrentByAttribute("position")
	if len(got) != 2 || got[0].Entity != "ann" || got[1].Entity != "bob" {
		t.Fatalf("by attribute: %v", got)
	}
	if s.CurrentByAttribute("nope") != nil {
		t.Error("unknown attribute should be empty")
	}
}

func TestAsOfAndDuring(t *testing.T) {
	s := NewStore()
	s.Put("ann", "position", element.String("r1"), 0)
	s.Put("ann", "position", element.String("r2"), 10)
	s.Put("bob", "position", element.String("r3"), 5)
	s.Retract("bob", "position", 8)

	asof := s.AsOf(6)
	if len(asof) != 2 {
		t.Fatalf("as-of 6: %v", asof)
	}
	asof = s.AsOf(9)
	if len(asof) != 1 || asof[0].Entity != "ann" {
		t.Fatalf("as-of 9: %v", asof)
	}
	during := s.During(temporal.NewInterval(6, 11))
	if len(during) != 3 {
		t.Fatalf("during [6,11): %v", during)
	}
	if len(s.During(temporal.NewInterval(100, 200))) != 1 {
		t.Error("open version overlaps far future")
	}
}

func TestScanAndValiditySet(t *testing.T) {
	s := NewStore()
	s.Put("e", "a", element.Int(1), 0)
	s.Retract("e", "a", 10)
	s.Put("e", "a", element.Int(2), 20)
	all := s.Scan(nil)
	if len(all) != 2 {
		t.Fatalf("scan: %v", all)
	}
	only2 := s.Scan(func(f *element.Fact) bool { return f.Value.MustInt() == 2 })
	if len(only2) != 1 {
		t.Fatalf("scan pred: %v", only2)
	}
	vs := s.ValiditySet("e", "a")
	ivs := vs.Intervals()
	if len(ivs) != 2 || ivs[0] != temporal.NewInterval(0, 10) || ivs[1] != temporal.Since(20) {
		t.Fatalf("validity set: %s", vs)
	}
}

func TestCompactBefore(t *testing.T) {
	s := NewStore()
	for i := int64(0); i < 10; i++ {
		s.Put("e", "a", element.Int(i), temporal.Instant(i*10))
	}
	st := s.Stats()
	if st.Versions != 10 || st.Current != 1 {
		t.Fatalf("pre-compact stats: %+v", st)
	}
	removed := s.CompactBefore(50)
	if removed != 5 {
		t.Fatalf("removed: %d", removed)
	}
	if got := s.Stats().Versions; got != 5 {
		t.Errorf("versions after compaction: %d", got)
	}
	if cur, ok := s.Current("e", "a"); !ok || cur.Value.MustInt() != 9 {
		t.Error("current must survive compaction")
	}
	// Fully-closed lineage disappears when compacted away.
	s2 := NewStore()
	s2.Put("x", "a", element.Int(1), 0)
	s2.Retract("x", "a", 5)
	s2.CompactBefore(10)
	if st := s2.Stats(); st.Keys != 0 || st.Attributes != 0 {
		t.Errorf("empty lineage should be dropped: %+v", st)
	}
}

func TestDropDerived(t *testing.T) {
	s := NewStore()
	s.Put("e", "a", element.Int(1), 0)
	d := element.NewFact("e", "b", element.Int(2), temporal.Since(0))
	d.Derived = true
	s.Assert(d)
	if got := s.DropDerived(); got != 1 {
		t.Fatalf("dropped: %d", got)
	}
	if _, ok := s.Current("e", "b"); ok {
		t.Error("derived fact should be gone")
	}
	if _, ok := s.Current("e", "a"); !ok {
		t.Error("asserted fact should remain")
	}
}

func TestWatchers(t *testing.T) {
	s := NewStore()
	var changes []Change
	s.Watch(func(c Change) { changes = append(changes, c) })
	s.Put("e", "a", element.Int(1), 10)
	s.Put("e", "a", element.Int(2), 20) // terminate + assert
	s.Retract("e", "a", 30)
	kinds := []ChangeKind{Asserted, Terminated, Asserted, Terminated}
	if len(changes) != len(kinds) {
		t.Fatalf("changes: %d", len(changes))
	}
	for i, k := range kinds {
		if changes[i].Kind != k {
			t.Errorf("change %d: got %v want %v", i, changes[i].Kind, k)
		}
	}
	if changes[1].Fact.Validity != temporal.NewInterval(10, 20) {
		t.Errorf("terminated validity: %v", changes[1].Fact.Validity)
	}
	if Asserted.String() != "asserted" || Terminated.String() != "terminated" {
		t.Error("kind strings")
	}
}

func TestViewSnapshotIsolation(t *testing.T) {
	s := NewStore()
	s.Put("e", "a", element.Int(1), 10)
	v := s.ViewAt(15)
	if v.At() != 15 {
		t.Error("view instant")
	}
	// A later mutation must not change what the view sees.
	s.Put("e", "a", element.Int(2), 20)
	f, ok := v.Get("e", "a")
	if !ok || f.Value.MustInt() != 1 {
		t.Fatalf("view get: %v %v", f, ok)
	}
	if got := v.ByAttribute("a"); len(got) != 1 || got[0].Value.MustInt() != 1 {
		t.Fatalf("view by attribute: %v", got)
	}
	if got := v.All(); len(got) != 1 {
		t.Fatalf("view all: %v", got)
	}
}

// TestLineageInvariantRandomized drives the store with random valid
// mutations and checks the core invariant: per-key versions are ordered,
// disjoint, and at most the last is open. It cross-checks ValidAt against
// a naive timeline model.
func TestLineageInvariantRandomized(t *testing.T) {
	const horizon = 200
	rng := rand.New(rand.NewSource(99))
	entities := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		s := NewStore()
		// model[entity][t] = value or -1
		model := map[string][]int64{}
		last := map[string]temporal.Instant{}
		for _, e := range entities {
			tl := make([]int64, horizon)
			for i := range tl {
				tl[i] = -1
			}
			model[e] = tl
		}
		for op := 0; op < 100; op++ {
			e := entities[rng.Intn(len(entities))]
			at := last[e] + temporal.Instant(rng.Intn(5))
			if at >= horizon {
				continue
			}
			last[e] = at
			if rng.Intn(4) == 0 {
				if err := s.Retract(e, "x", at); err == nil {
					for i := at; i < horizon; i++ {
						model[e][i] = -1
					}
				}
			} else {
				val := int64(rng.Intn(100))
				if err := s.Put(e, "x", element.Int(val), at); err != nil {
					t.Fatalf("put: %v", err)
				}
				for i := at; i < horizon; i++ {
					model[e][i] = val
				}
			}
		}
		for _, e := range entities {
			hist := s.History(e, "x")
			for i := 1; i < len(hist); i++ {
				if hist[i-1].Validity.Overlaps(hist[i].Validity) {
					t.Fatalf("overlapping versions: %v %v", hist[i-1], hist[i])
				}
				if hist[i-1].Validity.Start > hist[i].Validity.Start {
					t.Fatalf("unordered versions")
				}
				if hist[i-1].IsCurrent() {
					t.Fatalf("non-last open version")
				}
			}
			for ti := temporal.Instant(0); ti < horizon; ti += 7 {
				f, ok := s.ValidAt(e, "x", ti)
				want := model[e][ti]
				if (want == -1) == ok {
					t.Fatalf("trial %d: validAt(%s,%d): ok=%v want value %d", trial, e, ti, ok, want)
				}
				if ok && f.Value.MustInt() != want {
					t.Fatalf("trial %d: validAt(%s,%d)=%d want %d", trial, e, ti, f.Value.MustInt(), want)
				}
			}
		}
	}
}

func TestStatsAttributes(t *testing.T) {
	s := NewStore()
	s.Put("e1", "a", element.Int(1), 0)
	s.Put("e2", "a", element.Int(1), 0)
	s.Put("e1", "b", element.Int(1), 0)
	st := s.Stats()
	if st.Keys != 3 || st.Attributes != 2 || st.Current != 3 || st.Versions != 3 {
		t.Fatalf("stats: %+v", st)
	}
}
