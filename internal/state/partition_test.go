package state

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

// partitionSeedStore builds a store with enough lineage variety to
// exercise every gather shape: several attributes, retroactive
// corrections, closed versions, deletes, and a non-numeric attribute.
func partitionSeedStore(t *testing.T, keys int) *Store {
	t.Helper()
	st := NewStore()
	db := st.DB()
	for i := 0; i < keys; i++ {
		ent := fmt.Sprintf("e%03d", i)
		if err := st.Put(ent, "value", element.Int(int64(i)), temporal.Instant(10+i)); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := st.Put(ent, "room", element.String(fmt.Sprintf("r%d", i%5)), temporal.Instant(20+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Retroactive shapes: a correction, a bounded version, a retraction.
	if err := db.Put("e001", "value", element.Int(500),
		WithValidTime(12), WithEndValidTime(30)); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("e002", "value", WithValidTime(15)); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestScanShardsMatchesList is the partitioned-gather equivalence oracle
// at the store layer: for every temporal shape and every parallelism,
// ScanShards through a snapshot returns exactly Snapshot.List.
func TestScanShardsMatchesList(t *testing.T) {
	st := partitionSeedStore(t, 200)
	snap := st.Snapshot()
	shapes := []struct {
		name string
		opts []ReadOpt
	}{
		{"current-all", nil},
		{"current-attr", []ReadOpt{WithAttribute("value")}},
		{"asof", []ReadOpt{WithAttribute("value"), AsOfValidTime(25)}},
		{"during", []ReadOpt{DuringValidTime(10, 60)}},
		{"history", []ReadOpt{WithAttribute("value"), AllVersions()}},
		{"systime", []ReadOpt{AsOfTransactionTime(100)}},
		{"asof-systime", []ReadOpt{WithAttribute("value"), AsOfValidTime(25), AsOfTransactionTime(120)}},
		{"missing-attr", []ReadOpt{WithAttribute("nope")}},
	}
	for _, sh := range shapes {
		want := snap.List(sh.opts...)
		for _, par := range []int{0, 1, 2, 3, 7, 64, 1000} {
			got := snap.ScanShards(par, sh.opts...)
			if len(got) != len(want) {
				t.Fatalf("%s par=%d: %d facts, want %d", sh.name, par, len(got), len(want))
			}
			for i := range got {
				if *got[i] != *want[i] {
					t.Fatalf("%s par=%d fact %d: %+v, want %+v", sh.name, par, i, got[i], want[i])
				}
			}
		}
	}
}

// TestScanPartitionedEnvelopePrune checks the value-envelope prune:
// numeric lineages outside the bounds are skipped (and counted), the
// survivors match a Keep-equivalent serial filter, and non-numeric
// lineages are never pruned.
func TestScanPartitionedEnvelopePrune(t *testing.T) {
	st := NewStore()
	for i := 0; i < 100; i++ {
		ent := fmt.Sprintf("e%03d", i)
		if err := st.Put(ent, "value", element.Int(int64(i)), temporal.Instant(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	// A non-numeric lineage under the same attribute: its envelope is
	// unusable, so bounds must never prune it.
	if err := st.Put("word", "value", element.String("ninety"), 200); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()

	bounds := ValueBounds{Min: 90, HasMin: true, MinExcl: true} // value > 90
	facts, stats := snap.ScanPartitioned(ScanSpec{
		Opts:   []ReadOpt{WithAttribute("value")},
		Bounds: bounds,
	})
	if stats.Lineages != 101 {
		t.Fatalf("lineages = %d, want 101", stats.Lineages)
	}
	if stats.IndexPruned != 91 { // e000..e090 pruned; e091..e099 + word kept
		t.Fatalf("pruned = %d, want 91", stats.IndexPruned)
	}
	if len(facts) != 10 {
		t.Fatalf("got %d facts, want 10 (9 numeric + 1 non-numeric)", len(facts))
	}
	for _, f := range facts {
		if n, ok := f.Value.AsFloat(); ok && n <= 90 {
			t.Fatalf("pruned scan leaked value %v", f.Value)
		}
	}

	// A retroactive correction must widen the envelope: e005 gains a
	// historical value 95, so value > 90 may no longer prune it.
	if err := st.DB().Put("e005", "value", element.Int(95),
		WithValidTime(11), WithEndValidTime(12)); err != nil {
		t.Fatal(err)
	}
	_, stats = st.Snapshot().ScanPartitioned(ScanSpec{
		Opts:   []ReadOpt{WithAttribute("value"), AllVersions()},
		Bounds: bounds,
	})
	if stats.IndexPruned != 90 {
		t.Fatalf("after widening correction pruned = %d, want 90", stats.IndexPruned)
	}
}

// TestScanPartitionedKeep checks the pushed row predicate runs inside
// the gather and composes with bounds, preserving order.
func TestScanPartitionedKeep(t *testing.T) {
	st := partitionSeedStore(t, 120)
	snap := st.Snapshot()
	keep := func(f *element.Fact) bool {
		n, ok := f.Value.AsFloat()
		return ok && n >= 30 && int64(n)%2 == 0
	}
	want := []*element.Fact{}
	for _, f := range snap.List(WithAttribute("value")) {
		if keep(f) {
			want = append(want, f)
		}
	}
	for _, par := range []int{1, 4} {
		got, _ := snap.ScanPartitioned(ScanSpec{
			Opts:        []ReadOpt{WithAttribute("value")},
			Parallelism: par,
			Bounds:      ValueBounds{Min: 30, HasMin: true},
			Keep:        keep,
		})
		if len(got) != len(want) {
			t.Fatalf("par=%d: %d facts, want %d", par, len(got), len(want))
		}
		for i := range got {
			if *got[i] != *want[i] {
				t.Fatalf("par=%d fact %d: %+v, want %+v", par, i, got[i], want[i])
			}
		}
	}
}

// TestValueBoundsDisjoint pins the envelope-overlap arithmetic,
// including the exclusive-bound edge cases.
func TestValueBoundsDisjoint(t *testing.T) {
	cases := []struct {
		b        ValueBounds
		lo, hi   float64
		disjoint bool
	}{
		{ValueBounds{}, 0, 10, false},
		{ValueBounds{Min: 5, HasMin: true}, 0, 4, true},
		{ValueBounds{Min: 5, HasMin: true}, 0, 5, false},
		{ValueBounds{Min: 5, HasMin: true, MinExcl: true}, 0, 5, true},
		{ValueBounds{Max: 5, HasMax: true}, 6, 10, true},
		{ValueBounds{Max: 5, HasMax: true}, 5, 10, false},
		{ValueBounds{Max: 5, HasMax: true, MaxExcl: true}, 5, 10, true},
		{ValueBounds{Min: 3, HasMin: true, Max: 7, HasMax: true}, 4, 5, false},
		{ValueBounds{Min: 3, HasMin: true, Max: 7, HasMax: true}, 8, 9, true},
	}
	for i, c := range cases {
		if got := c.b.disjoint(c.lo, c.hi); got != c.disjoint {
			t.Errorf("case %d: disjoint(%v, %v) = %v, want %v", i, c.lo, c.hi, got, c.disjoint)
		}
	}
}

// TestScanPartitionedUnderIngest races partitioned scans against batch
// ingest (run with -race). The byte-identical oracle compares the two
// gathers at a quiesced belief instant — the writer publishes its last
// fully committed transaction time, and belief at (or before) that
// instant is immutable under later writes, so serial and partitioned
// scans taken at different moments must still agree exactly. Scans of
// the live (unpinned-instant) belief run alongside purely to shake out
// data races.
func TestScanPartitionedUnderIngest(t *testing.T) {
	st := NewStore()
	const keys = 256
	for i := 0; i < keys; i++ {
		if err := st.Put(fmt.Sprintf("e%03d", i), "value", element.Int(int64(i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	var committed atomic.Int64 // last fully committed transaction time
	committed.Store(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := temporal.Instant(10)
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			puts := make([]BatchPut, 0, keys/2)
			for i := round % 2; i < keys; i += 2 {
				puts = append(puts, BatchPut{
					Entity: fmt.Sprintf("e%03d", i), Attr: "value",
					Value: element.Int(int64(round*keys + i)), At: tick,
				})
			}
			if err := st.PutBatch(puts); err != nil {
				t.Error(err)
				return
			}
			committed.Store(int64(tick))
			tick++
		}
	}()
	var scanners sync.WaitGroup
	for w := 0; w < 2; w++ {
		scanners.Add(1)
		go func() {
			defer scanners.Done()
			for r := 0; r < 50; r++ {
				cut := temporal.Instant(committed.Load())
				snap := st.Snapshot()
				want := snap.List(WithAttribute("value"), AsOfTransactionTime(cut))
				got := snap.ScanShards(4, WithAttribute("value"), AsOfTransactionTime(cut))
				if len(got) != len(want) {
					t.Errorf("round %d: partitioned %d facts, serial %d", r, len(got), len(want))
					return
				}
				for i := range got {
					if *got[i] != *want[i] {
						t.Errorf("round %d fact %d: %+v, want %+v", r, i, got[i], want[i])
						return
					}
				}
				// Live-belief scans: result is timing-dependent, but the
				// gather must be race-free and well-formed.
				if live := snap.ScanShards(4, WithAttribute("value")); len(live) < keys/2 {
					t.Errorf("round %d: live scan lost lineages: %d", r, len(live))
					return
				}
			}
		}()
	}
	scanners.Wait()
	close(stop)
	wg.Wait()
}
