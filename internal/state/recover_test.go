package state

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

// TestRecoverLogSurfacesApplyErrors: a tail record that decodes but
// fails to apply must fail recovery loudly — silently skipping it (and
// then compacting the WAL without it) would erase committed history.
func TestRecoverLogSurfacesApplyErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := CreateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	// Two overlapping asserts: legal to encode, but the second fails
	// Assert's no-overlap rule on application (as a skewed or
	// hand-damaged WAL would).
	f1 := element.NewFact("e", "a", element.Int(1), temporal.NewInterval(0, 10))
	f2 := element.NewFact("e", "a", element.Int(2), temporal.NewInterval(5, 15))
	if err := l.appendAssert(f1); err != nil {
		t.Fatal(err)
	}
	if err := l.appendAssert(f2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RecoverLog(path, NewStore(), temporal.MinInstant); !errors.Is(err, ErrOverlap) {
		t.Fatalf("apply error swallowed: got %v, want ErrOverlap", err)
	}
}

// TestRecoverLogTruncationIsTornTail: a file cut mid-record is the torn
// final append and recovers to the whole-record prefix, while the same
// truncation is a loud error through the strict Replay path. (Mid-file
// bit rot that still DECODES is not detectable — gob frames carry no
// checksums — which is exactly why the segment format adds crc32c; the
// WAL's structural errors, like this one, are the detectable class.)
func TestRecoverLogTruncationIsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	st := NewStore()
	l, err := CreateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	st.AttachLog(l)
	db := st.DB()
	for i := 0; i < 20; i++ {
		if err := db.Put("k", "v", element.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	rec := NewStore()
	l2, n, err := RecoverLog(path, rec, temporal.MinInstant)
	if err != nil {
		t.Fatalf("torn tail should recover: %v", err)
	}
	defer l2.Close()
	if n != 19 {
		t.Fatalf("want 19 whole records recovered, got %d", n)
	}
	if f, ok := rec.Find("k", "v"); !ok || f.Value.String() != "18" {
		t.Fatalf("recovered head: %v ok=%v", f, ok)
	}
	if _, err := ReplayFile(path, NewStore()); err == nil {
		t.Fatal("strict Replay should reject the torn file")
	}
}
