package state

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

// TestConcurrentReadersAndWriters hammers the store from parallel
// writers (disjoint key ranges, so per-key monotonicity holds) and
// parallel readers running the full read API. Run with -race; the test
// also checks reader-visible invariants (per-key version ordering).
func TestConcurrentReadersAndWriters(t *testing.T) {
	st := NewStore()
	const (
		writers       = 4
		keysPerWriter = 50
		opsPerWriter  = 500
		readers       = 4
	)
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < opsPerWriter; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%keysPerWriter)
				at := temporal.Instant(i)
				switch i % 5 {
				case 4:
					_ = st.Retract(key, "v", at)
				default:
					if err := st.Put(key, "v", element.Int(int64(i)), at); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}
		}(w)
	}

	var reads atomic.Int64
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-k%d", i%writers, i%keysPerWriter)
				st.Current(key, "v")
				st.ValidAt(key, "v", temporal.Instant(i%opsPerWriter))
				if i%50 == 0 {
					st.CurrentByAttribute("v")
					st.AsOf(temporal.Instant(i % opsPerWriter))
					st.Stats()
				}
				hist := st.History(key, "v")
				for j := 1; j < len(hist); j++ {
					if hist[j-1].Validity.Overlaps(hist[j].Validity) {
						t.Errorf("reader saw overlapping versions for %s", key)
						return
					}
				}
				reads.Add(1)
			}
		}(r)
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	if reads.Load() == 0 {
		t.Error("readers never ran")
	}
	stats := st.Stats()
	if stats.Keys == 0 || stats.Versions == 0 {
		t.Errorf("stats after run: %+v", stats)
	}
}

// TestConcurrentViews checks that point-in-time views stay stable while
// later-timestamped writes land concurrently.
func TestConcurrentViews(t *testing.T) {
	st := NewStore()
	for i := 0; i < 100; i++ {
		st.Put("e", "v", element.Int(int64(i)), temporal.Instant(i*10))
	}
	view := st.ViewAt(500)
	want, ok := view.Get("e", "v")
	if !ok {
		t.Fatal("view get")
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 100; i < 200; i++ {
			st.Put("e", "v", element.Int(int64(i)), temporal.Instant(i*10))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			got, ok := view.Get("e", "v")
			if !ok || !got.Value.Equal(want.Value) {
				t.Errorf("view drifted: %v", got)
				return
			}
		}
	}()
	wg.Wait()
}

// TestConcurrentRetroactiveWrites hammers the store with retroactive
// corrections (out-of-order valid times through the option API) on
// per-writer key ranges while readers pin a transaction time below every
// correction: their view must never change, and default reads must always
// see a disjoint, ordered belief.
func TestConcurrentRetroactiveWrites(t *testing.T) {
	st := NewStore()
	db := st.DB()
	const (
		writers = 4
		keys    = 16
		ops     = 300
		baseTx  = temporal.Instant(1000)
	)
	// Seed a stable prefix: every key holds its index since t=0,
	// recorded no later than baseTx.
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%d", k)
		if err := db.Put(key, "v", element.Int(int64(k)), WithValidTime(0), WithTransactionTime(baseTx)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("k%d", (w*keys/writers)+(i%(keys/writers)))
				tx := baseTx + temporal.Instant(1+i)
				// Retroactive bounded correction somewhere in [1, 500).
				from := temporal.Instant(1 + (i*7)%400)
				if err := db.Put(key, "v", element.Int(int64(i)),
					WithValidTime(from), WithEndValidTime(from+50), WithTransactionTime(tx)); err != nil {
					t.Errorf("retro put: %v", err)
					return
				}
				if i%9 == 0 {
					if err := db.Delete(key, "v", WithValidTime(from+10),
						WithEndValidTime(from+20), WithTransactionTime(tx+1)); err != nil {
						t.Errorf("retro delete: %v", err)
						return
					}
				}
			}
		}(w)
	}

	var reads atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("k%d", i%keys)
				// Pinned belief: the seed state must be frozen forever.
				f, ok := db.Find(key, "v", AsOfValidTime(250), AsOfTransactionTime(baseTx))
				if !ok || f.Value.MustInt() != int64(i%keys) {
					t.Errorf("pinned read drifted for %s: %v %v", key, f, ok)
					return
				}
				// Default belief: whatever it is now, it must be consistent.
				hist := db.History(key, "v")
				for j := 1; j < len(hist); j++ {
					if hist[j-1].Validity.Overlaps(hist[j].Validity) {
						t.Errorf("reader saw overlapping belief for %s: %v %v", key, hist[j-1], hist[j])
						return
					}
				}
				if i%100 == 0 {
					db.List(WithAttribute("v"), AsOfValidTime(250), AsOfTransactionTime(baseTx))
				}
				reads.Add(1)
			}
		}(r)
	}

	wg.Wait()
	if reads.Load() == 0 {
		t.Error("readers never ran")
	}
	if st.Stats().Superseded == 0 {
		t.Error("retroactive writes should leave superseded records")
	}
}

// TestWatcherOrdering checks that watcher callbacks observe changes in
// mutation order even with concurrent readers present.
func TestWatcherOrdering(t *testing.T) {
	st := NewStore()
	var seen []temporal.Instant
	st.Watch(func(c Change) {
		if c.Kind == Asserted {
			seen = append(seen, c.At)
		}
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			st.CurrentAll()
		}
	}()
	for i := 0; i < 100; i++ {
		st.Put("e", "v", element.Int(int64(i)), temporal.Instant(i))
	}
	wg.Wait()
	if len(seen) != 100 {
		t.Fatalf("watcher saw %d assertions", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatal("watcher saw out-of-order changes")
		}
	}
}
