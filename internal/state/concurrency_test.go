package state

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

// TestConcurrentReadersAndWriters hammers the store from parallel
// writers (disjoint key ranges, so per-key monotonicity holds) and
// parallel readers running the full read API. Run with -race; the test
// also checks reader-visible invariants (per-key version ordering).
func TestConcurrentReadersAndWriters(t *testing.T) {
	st := NewStore()
	const (
		writers       = 4
		keysPerWriter = 50
		opsPerWriter  = 500
		readers       = 4
	)
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < opsPerWriter; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%keysPerWriter)
				at := temporal.Instant(i)
				switch i % 5 {
				case 4:
					_ = st.Retract(key, "v", at)
				default:
					if err := st.Put(key, "v", element.Int(int64(i)), at); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}
		}(w)
	}

	var reads atomic.Int64
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-k%d", i%writers, i%keysPerWriter)
				st.Current(key, "v")
				st.ValidAt(key, "v", temporal.Instant(i%opsPerWriter))
				if i%50 == 0 {
					st.CurrentByAttribute("v")
					st.AsOf(temporal.Instant(i % opsPerWriter))
					st.Stats()
				}
				hist := st.History(key, "v")
				for j := 1; j < len(hist); j++ {
					if hist[j-1].Validity.Overlaps(hist[j].Validity) {
						t.Errorf("reader saw overlapping versions for %s", key)
						return
					}
				}
				reads.Add(1)
			}
		}(r)
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	if reads.Load() == 0 {
		t.Error("readers never ran")
	}
	stats := st.Stats()
	if stats.Keys == 0 || stats.Versions == 0 {
		t.Errorf("stats after run: %+v", stats)
	}
}

// TestConcurrentViews checks that point-in-time views stay stable while
// later-timestamped writes land concurrently.
func TestConcurrentViews(t *testing.T) {
	st := NewStore()
	for i := 0; i < 100; i++ {
		st.Put("e", "v", element.Int(int64(i)), temporal.Instant(i*10))
	}
	view := st.ViewAt(500)
	want, ok := view.Get("e", "v")
	if !ok {
		t.Fatal("view get")
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 100; i < 200; i++ {
			st.Put("e", "v", element.Int(int64(i)), temporal.Instant(i*10))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			got, ok := view.Get("e", "v")
			if !ok || !got.Value.Equal(want.Value) {
				t.Errorf("view drifted: %v", got)
				return
			}
		}
	}()
	wg.Wait()
}

// TestWatcherOrdering checks that watcher callbacks observe changes in
// mutation order even with concurrent readers present.
func TestWatcherOrdering(t *testing.T) {
	st := NewStore()
	var seen []temporal.Instant
	st.Watch(func(c Change) {
		if c.Kind == Asserted {
			seen = append(seen, c.At)
		}
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			st.CurrentAll()
		}
	}()
	for i := 0; i < 100; i++ {
		st.Put("e", "v", element.Int(int64(i)), temporal.Instant(i))
	}
	wg.Wait()
	if len(seen) != 100 {
		t.Fatalf("watcher saw %d assertions", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatal("watcher saw out-of-order changes")
		}
	}
}
