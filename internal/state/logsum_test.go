package state

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

// flipEntityByte corrupts one payload byte of the given marker string
// inside raw — a bit flip gob still decodes (string contents are raw
// bytes behind a length prefix), detectable only by the checksum.
func flipEntityByte(t *testing.T, raw []byte, marker string) []byte {
	t.Helper()
	i := bytes.Index(raw, []byte(marker))
	if i < 0 {
		t.Fatalf("marker %q not found in log bytes", marker)
	}
	out := append([]byte(nil), raw...)
	out[i] ^= 0x20 // flip case of the first marker byte
	return out
}

func TestLogChecksumDetectsBitRot(t *testing.T) {
	const entity = "sensor-with-a-long-stable-name"
	var buf bytes.Buffer
	s := NewStore()
	s.AttachLog(NewLog(&buf))
	s.Put(entity, "temperature", element.Float(20), 10)
	s.Put(entity, "temperature", element.Float(25), 20)

	// The pristine stream replays.
	if _, err := Replay(bytes.NewReader(buf.Bytes()), NewStore()); err != nil {
		t.Fatal(err)
	}

	rotted := flipEntityByte(t, buf.Bytes(), entity)
	_, err := Replay(bytes.NewReader(rotted), NewStore())
	if err == nil {
		t.Fatal("bit-rotted record replayed silently")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want checksum failure, got %v", err)
	}
}

func TestRecoverLogFailsOnBitRot(t *testing.T) {
	const entity = "sensor-with-a-long-stable-name"
	dir := t.TempDir()
	path := filepath.Join(dir, "state.log")
	l, err := CreateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	s.AttachLog(l)
	s.Put(entity, "temperature", element.Float(20), 10)
	s.PutBatch([]BatchPut{
		{Entity: entity, Attr: "pressure", Value: element.Float(1), At: 11},
		{Entity: "other", Attr: "pressure", Value: element.Float(2), At: 12},
	})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, flipEntityByte(t, raw, entity), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RecoverLog(path, NewStore(), temporal.MinInstant); err == nil {
		t.Fatal("recovery replayed a bit-rotted record")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want checksum failure, got %v", err)
	}
}

// TestReplayUnsummedLog feeds a stream of old-format records (written
// before checksums existed, so Summed is false) through Replay: they
// must apply unverified, keeping replay compatible with existing logs.
func TestReplayUnsummedLog(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, rec := range []logRecord{
		{Op: opPut, Entity: "ann", Attr: "position", Value: element.String("hall"), At: 10},
		{Op: opPut, Entity: "ann", Attr: "position", Value: element.String("lab"), At: 20},
		{Op: opPutBatch, Puts: []BatchPut{
			{Entity: "bob", Attr: "position", Value: element.String("hall"), At: 30},
		}},
	} {
		if err := enc.Encode(&rec); err != nil {
			t.Fatal(err)
		}
	}
	s := NewStore()
	n, err := Replay(bytes.NewReader(buf.Bytes()), s)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records, want 3", n)
	}
	if f, ok := s.Current("ann", "position"); !ok || f.Value.MustString() != "lab" {
		t.Fatalf("unsummed replay state: %v %v", f, ok)
	}
}

// TestTruncateReseals recovers a segmented WAL with a cut through the
// middle of an opPutBatch frame: the surviving frame is rewritten with
// fewer puts and must carry a recomputed sum, so the tail file still
// passes checksum verification on the next replay.
func TestTruncateReseals(t *testing.T) {
	dir := t.TempDir()
	l, n, err := RecoverWALDir(dir, NewStore(), temporal.MinInstant, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("fresh dir replayed %d records", n)
	}
	s := NewStore()
	s.AttachLog(l)
	s.PutBatch([]BatchPut{
		{Entity: "a", Attr: "x", Value: element.Int(1), At: 10},
		{Entity: "b", Attr: "x", Value: element.Int(2), At: 20},
		{Entity: "c", Attr: "x", Value: element.Int(3), At: 30},
	})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	restored := NewStore()
	l2, n, err := RecoverWALDir(dir, restored, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records, want 1", n)
	}
	if _, ok := restored.Current("a", "x"); ok {
		t.Fatal("pre-cut put survived truncation")
	}
	for _, e := range []string{"b", "c"} {
		if _, ok := restored.Current(e, "x"); !ok {
			t.Fatalf("post-cut put %s lost", e)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// The rewritten tail replays cleanly: checksum recomputed, trimmed
	// put gone from the bytes.
	again := NewStore()
	l3, n, err := RecoverWALDir(dir, again, temporal.MinInstant, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resealed chain replayed %d records, want 1", n)
	}
	if _, ok := again.Current("a", "x"); ok {
		t.Fatal("trimmed put resurfaced from the rewritten file")
	}
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
}
