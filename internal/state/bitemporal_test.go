package state

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

// TestRetroactivePutSupersedes is the core bitemporal contract: a
// retroactive correction is visible under default reads but invisible
// under AsOfTransactionTime instants before the write.
func TestRetroactivePutSupersedes(t *testing.T) {
	st := NewStore()
	db := st.DB()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.Put("ann", "position", element.String("hall"), WithValidTime(10), WithTransactionTime(10)))
	must(db.Put("ann", "position", element.String("lab"), WithValidTime(20), WithTransactionTime(20)))

	// At tx 50 we learn ann was actually in the vault over [12, 18).
	must(db.Put("ann", "position", element.String("vault"),
		WithValidTime(12), WithEndValidTime(18), WithTransactionTime(50)))

	// Default reads see the corrected timeline.
	if f, ok := db.Find("ann", "position", AsOfValidTime(15)); !ok || f.Value.MustString() != "vault" {
		t.Fatalf("default read at vt=15: %v %v", f, ok)
	}
	// But the belief at tx 30 predates the correction.
	if f, ok := db.Find("ann", "position", AsOfValidTime(15), AsOfTransactionTime(30)); !ok || f.Value.MustString() != "hall" {
		t.Fatalf("belief at tt=30 about vt=15: %v %v", f, ok)
	}
	// The open version is unaffected either way.
	if f, ok := db.Find("ann", "position"); !ok || f.Value.MustString() != "lab" {
		t.Fatalf("current: %v %v", f, ok)
	}

	// Corrected history: hall [10,12), vault [12,18), hall [18,20), lab [20,∞).
	hist := db.History("ann", "position")
	wantVals := []string{"hall", "vault", "hall", "lab"}
	if len(hist) != len(wantVals) {
		t.Fatalf("corrected history: %v", hist)
	}
	for i, w := range wantVals {
		if hist[i].Value.MustString() != w {
			t.Errorf("history[%d] = %s, want %s", i, hist[i].Value, w)
		}
	}
	if hist[0].Validity != temporal.NewInterval(10, 12) || hist[1].Validity != temporal.NewInterval(12, 18) ||
		hist[2].Validity != temporal.NewInterval(18, 20) || hist[3].Validity != temporal.Since(20) {
		t.Errorf("corrected intervals: %v", hist)
	}

	// Belief-at-30 history is the uncorrected timeline.
	old := db.History("ann", "position", AsOfTransactionTime(30))
	if len(old) != 2 || old[0].Validity != temporal.NewInterval(10, 20) || old[1].Validity != temporal.Since(20) {
		t.Fatalf("belief-at-30 history: %v", old)
	}

	// The audit log keeps every record, superseded included.
	audit := db.History("ann", "position", AllVersions())
	if len(audit) != 6 { // 2 originals + correction + 2 remnants + lab untouched? lab is one of the originals
		// originals: hall[10,∞)→superseded@20, lab[20,∞);
		// after correction: hall[10,20) superseded@50, remnants hall[10,12), hall[18,20), vault[12,18).
		t.Fatalf("audit trail: %d records: %v", len(audit), audit)
	}
	superseded := 0
	for _, f := range audit {
		if f.Superseded() {
			superseded++
		}
	}
	if superseded != 2 {
		t.Errorf("superseded records: %d, want 2", superseded)
	}
	if got := st.Stats(); got.Records != 6 || got.Versions != 4 || got.Superseded != 2 {
		t.Errorf("stats: %+v", got)
	}
}

// TestRetroactiveDelete removes a slice of believed history.
func TestRetroactiveDelete(t *testing.T) {
	st := NewStore()
	db := st.DB()
	if err := db.Put("e", "a", element.Int(1), WithValidTime(0), WithTransactionTime(0)); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("e", "a", WithValidTime(10), WithEndValidTime(20), WithTransactionTime(30)); err != nil {
		t.Fatal(err)
	}
	hist := db.History("e", "a")
	if len(hist) != 2 || hist[0].Validity != temporal.NewInterval(0, 10) || hist[1].Validity != temporal.Since(20) {
		t.Fatalf("history after retro delete: %v", hist)
	}
	if _, ok := db.Find("e", "a", AsOfValidTime(15)); ok {
		t.Error("deleted range should be empty under default reads")
	}
	if f, ok := db.Find("e", "a", AsOfValidTime(15), AsOfTransactionTime(20)); !ok || f.Value.MustInt() != 1 {
		t.Errorf("belief before delete: %v %v", f, ok)
	}
	// Deleting where nothing holds is a no-op, even for unknown keys.
	if err := db.Delete("ghost", "a", WithValidTime(0)); err != nil {
		t.Errorf("delete of unknown key: %v", err)
	}
}

// TestTransactionClockDefaults checks that writes without explicit
// transaction times land at the store's high-water mark, so a retroactive
// valid time alone never backdates belief.
func TestTransactionClockDefaults(t *testing.T) {
	st := NewStore()
	db := st.DB()
	db.Put("e", "a", element.Int(1), WithValidTime(100))
	db.Put("e", "a", element.Int(2), WithValidTime(40)) // retroactive, tx defaults to 101
	f, ok := db.Find("e", "a", AsOfValidTime(50))
	if !ok || f.Value.MustInt() != 2 {
		t.Fatalf("corrected read: %v %v", f, ok)
	}
	if f.RecordedAt != 101 {
		t.Errorf("default tx should advance past the clock high-water mark, got %s", f.RecordedAt)
	}
	// Belief as of tx 99 predates the first write entirely.
	if _, ok := db.Find("e", "a", AsOfValidTime(50), AsOfTransactionTime(99)); ok {
		t.Error("nothing was believed before the first write")
	}
	if st.Stats().TxHigh != 101 {
		t.Errorf("txHigh: %s", st.Stats().TxHigh)
	}
	// Two writes with all defaults get distinct transaction times, so the
	// first belief stays recoverable (supersede, never destroy).
	st2 := NewStore()
	db2 := st2.DB()
	db2.Put("x", "a", element.Int(1))
	db2.Put("x", "a", element.Int(2))
	first, ok := db2.Find("x", "a", AsOfValidTime(1), AsOfTransactionTime(1))
	if !ok || first.Value.MustInt() != 1 {
		t.Fatalf("pre-correction belief lost under default clocks: %v %v", first, ok)
	}
}

// TestFindListOptionCombos exercises the read-option matrix.
func TestFindListOptionCombos(t *testing.T) {
	st := NewStore()
	db := st.DB()
	db.Put("ann", "position", element.String("hall"), WithValidTime(0), WithTransactionTime(0))
	db.Put("bob", "position", element.String("lab"), WithValidTime(5), WithTransactionTime(5))
	db.Put("ann", "badge", element.Int(7), WithValidTime(0), WithTransactionTime(0))
	db.Put("ann", "position", element.String("roof"), WithValidTime(10), WithTransactionTime(10))

	if got := db.List(); len(got) != 3 { // badge(ann), roof(ann), lab(bob)
		t.Fatalf("List all current: %v", got)
	}
	if got := db.List(WithAttribute("position")); len(got) != 2 || got[0].Entity != "ann" || got[1].Entity != "bob" {
		t.Fatalf("List position: %v", got)
	}
	if got := db.List(WithAttribute("position"), AsOfValidTime(7)); len(got) != 2 || got[0].Value.MustString() != "hall" {
		t.Fatalf("List asof 7: %v", got)
	}
	if got := db.List(WithAttribute("position"), DuringValidTime(0, 20)); len(got) != 3 {
		t.Fatalf("List during: %v", got)
	}
	if got := db.List(WithAttribute("position"), AsOfValidTime(7), AsOfTransactionTime(3)); len(got) != 1 || got[0].Entity != "ann" {
		t.Fatalf("List asof vt=7 tt=3: %v", got)
	}
	if got := db.List(AllVersions()); len(got) != 4 { // hall[0,10), roof[10,∞), lab, badge
		t.Fatalf("List all versions: %v", got)
	}
}

// TestBitemporalLogReplay proves the wire format round-trips retroactive
// corrections: replayed stores answer transaction-time queries identically.
func TestBitemporalLogReplay(t *testing.T) {
	var buf bytes.Buffer
	st := NewStore()
	st.AttachLog(NewLog(&buf))
	db := st.DB()
	db.Put("ann", "position", element.String("hall"), WithValidTime(10), WithTransactionTime(10))
	db.Put("ann", "position", element.String("vault"),
		WithValidTime(12), WithEndValidTime(18), WithTransactionTime(50))
	db.Delete("ann", "position", WithValidTime(30), WithTransactionTime(60))

	restored := NewStore()
	n, err := Replay(&buf, restored)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records", n)
	}
	assertBitemporalEqual(t, st, restored)
}

// TestSnapshotPreservesTransactionTime proves snapshots carry superseded
// records and belief intervals.
func TestSnapshotPreservesTransactionTime(t *testing.T) {
	st := NewStore()
	db := st.DB()
	db.Put("e", "a", element.Int(1), WithValidTime(0), WithTransactionTime(0))
	db.Put("e", "a", element.Int(2), WithValidTime(0), WithTransactionTime(10)) // same-start correction

	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := ReadSnapshot(&buf, restored); err != nil {
		t.Fatal(err)
	}
	assertBitemporalEqual(t, st, restored)
	if f, ok := restored.Find("e", "a", AsOfValidTime(5), AsOfTransactionTime(5)); !ok || f.Value.MustInt() != 1 {
		t.Fatalf("restored belief at 5: %v %v", f, ok)
	}
	if restored.Stats().TxHigh != 10 {
		t.Errorf("restored txHigh: %s", restored.Stats().TxHigh)
	}
}

// TestSnapshotRoundTripDefaultClock is the regression for snapshot
// recovery of stores written entirely with default options (early
// transaction times, including superseded-at-small-instants records).
func TestSnapshotRoundTripDefaultClock(t *testing.T) {
	st := NewStore()
	db := st.DB()
	db.Put("a", "x", element.Int(1))
	db.Put("a", "x", element.Int(2)) // supersedes at a small tx
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := ReadSnapshot(&buf, restored); err != nil {
		t.Fatal(err)
	}
	assertBitemporalEqual(t, st, restored)
}

// TestRetroactiveWritesNotifyWatchers: a correction that fully covers a
// believed version still emits a Terminated change for it.
func TestRetroactiveWritesNotifyWatchers(t *testing.T) {
	st := NewStore()
	db := st.DB()
	db.Put("e", "a", element.Int(1), WithValidTime(10), WithEndValidTime(20), WithTransactionTime(10))
	var got []Change
	st.Watch(func(c Change) { got = append(got, c) })
	// Covers [10,20) entirely: the old version leaves the belief.
	db.Put("e", "a", element.Int(2), WithValidTime(5), WithEndValidTime(25), WithTransactionTime(30))
	if len(got) != 2 || got[0].Kind != Terminated || got[1].Kind != Asserted {
		t.Fatalf("changes: %v", got)
	}
	if got[0].Fact.Validity != temporal.NewInterval(10, 20) {
		t.Errorf("terminated fact should carry the superseded validity: %v", got[0].Fact)
	}
}

// TestStateDBInterface pins the StateDB contract to the DB adapter and the
// legacy wrappers to the new core.
func TestStateDBInterface(t *testing.T) {
	st := NewStore()
	var db StateDB = st.DB()
	if err := db.Put("e", "a", element.Int(1), WithValidTime(5)); err != nil {
		t.Fatal(err)
	}
	// Legacy and option-based reads agree.
	lf, lok := st.Current("e", "a")
	nf, nok := db.Find("e", "a")
	if lok != nok || !lf.Value.Equal(nf.Value) {
		t.Fatalf("legacy/new disagree: %v vs %v", lf, nf)
	}
	if len(db.History("e", "a")) != len(st.History("e", "a")) {
		t.Error("history disagrees")
	}
	if err := db.Delete("e", "a", WithValidTime(9)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Current("e", "a"); ok {
		t.Error("delete should close the open version")
	}
}

// TestLegacyPutStillMonotonic pins the deprecated wrapper contract: the
// positional surface rejects out-of-order writes rather than treating
// them as corrections.
func TestLegacyPutStillMonotonic(t *testing.T) {
	st := NewStore()
	st.Put("e", "a", element.Int(1), 10)
	if err := st.Put("e", "a", element.Int(2), 5); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("want ErrOutOfOrder, got %v", err)
	}
	// The same instants through the option API are a correction.
	if err := st.DB().Put("e", "a", element.Int(2), WithValidTime(5), WithEndValidTime(10)); err != nil {
		t.Fatal(err)
	}
	if f, _ := st.ValidAt("e", "a", 7); f.Value.MustInt() != 2 {
		t.Error("retroactive insert before existing version")
	}
}

func assertBitemporalEqual(t *testing.T, want, got *Store) {
	t.Helper()
	wf, gf := want.allRecordsAt(want.clock.now()), got.allRecordsAt(got.clock.now())
	if len(wf) != len(gf) {
		t.Fatalf("record count: want %d got %d", len(wf), len(gf))
	}
	for i := range wf {
		if wf[i].Entity != gf[i].Entity || wf[i].Attribute != gf[i].Attribute ||
			!wf[i].Value.Equal(gf[i].Value) || wf[i].Validity != gf[i].Validity ||
			wf[i].RecordedAt != gf[i].RecordedAt || wf[i].SupersededAt != gf[i].SupersededAt ||
			wf[i].Derived != gf[i].Derived || wf[i].Source != gf[i].Source {
			t.Fatalf("record %d: want %v (tx %s) got %v (tx %s)",
				i, wf[i], wf[i].Recorded(), gf[i], gf[i].Recorded())
		}
	}
}
