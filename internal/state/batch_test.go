package state

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

func batchWorkload(n, keys int) []BatchPut {
	puts := make([]BatchPut, n)
	for i := range puts {
		puts[i] = BatchPut{
			Entity: fmt.Sprintf("k%03d", i%keys),
			Attr:   "value",
			Value:  element.Int(int64(i)),
			At:     temporal.Instant(i + 1),
		}
	}
	return puts
}

func sameFacts(t *testing.T, what string, a, b []*element.Fact) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d facts vs %d", what, len(a), len(b))
	}
	for i := range a {
		as := fmt.Sprintf("%s|%s|%s|%s|%d|%d", a[i].Entity, a[i].Attribute, a[i].Value,
			a[i].Validity, a[i].RecordedAt, a[i].SupersededAt)
		bs := fmt.Sprintf("%s|%s|%s|%s|%d|%d", b[i].Entity, b[i].Attribute, b[i].Value,
			b[i].Validity, b[i].RecordedAt, b[i].SupersededAt)
		if as != bs {
			t.Fatalf("%s[%d]: %s vs %s", what, i, as, bs)
		}
	}
}

// TestPutBatchEquivalence: one group commit leaves the same state as the
// equivalent loop of positional Puts.
func TestPutBatchEquivalence(t *testing.T) {
	puts := batchWorkload(1_000, 37)
	looped, batched := NewStore(), NewStore()
	for _, p := range puts {
		if err := looped.Put(p.Entity, p.Attr, p.Value, p.At); err != nil {
			t.Fatal(err)
		}
	}
	if err := batched.PutBatch(puts); err != nil {
		t.Fatal(err)
	}
	sameFacts(t, "state", looped.List(AllVersions()), batched.List(AllVersions()))
	ls, bs := looped.Stats(), batched.Stats()
	ls.TxHigh, bs.TxHigh = 0, 0
	if ls != bs {
		t.Fatalf("stats: %+v vs %+v", ls, bs)
	}
}

// TestPutBatchReplay: the WAL's one framed record per batch replays to
// the state an unbatched log replays to.
func TestPutBatchReplay(t *testing.T) {
	puts := batchWorkload(500, 11)

	var walBatch, walLoop bytes.Buffer
	batched := NewStore()
	batched.AttachLog(NewLog(&walBatch))
	if err := batched.PutBatch(puts); err != nil {
		t.Fatal(err)
	}
	looped := NewStore()
	looped.AttachLog(NewLog(&walLoop))
	for _, p := range puts {
		if err := looped.Put(p.Entity, p.Attr, p.Value, p.At); err != nil {
			t.Fatal(err)
		}
	}

	fromBatch, fromLoop := NewStore(), NewStore()
	if n, err := Replay(bytes.NewReader(walBatch.Bytes()), fromBatch); err != nil {
		t.Fatal(err)
	} else if n != 1 {
		t.Fatalf("batched WAL: %d records, want 1 frame", n)
	}
	if _, err := Replay(bytes.NewReader(walLoop.Bytes()), fromLoop); err != nil {
		t.Fatal(err)
	}
	sameFacts(t, "replayed", fromLoop.List(AllVersions()), fromBatch.List(AllVersions()))
}

// TestPutBatchOutOfOrder: a monotonicity violation stops the batch with
// ErrOutOfOrder; earlier entries stay applied (the loop-of-Puts contract)
// and the WAL frame carries exactly the applied entries.
func TestPutBatchOutOfOrder(t *testing.T) {
	var wal bytes.Buffer
	st := NewStore()
	st.AttachLog(NewLog(&wal))
	puts := []BatchPut{
		{Entity: "a", Attr: "v", Value: element.Int(1), At: 10},
		{Entity: "a", Attr: "v", Value: element.Int(2), At: 5}, // regresses
		{Entity: "a", Attr: "v", Value: element.Int(3), At: 20},
	}
	err := st.PutBatch(puts)
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("err: %v", err)
	}
	f, ok := st.Find("a", "v")
	if !ok || f.Validity.Start != 10 {
		t.Fatalf("applied prefix: %v %v", f, ok)
	}
	restored := NewStore()
	if _, err := Replay(bytes.NewReader(wal.Bytes()), restored); err != nil {
		t.Fatal(err)
	}
	sameFacts(t, "replayed prefix", st.List(AllVersions()), restored.List(AllVersions()))
}

// TestPutBatchWatchers: watchers see every change of the batch.
func TestPutBatchWatchers(t *testing.T) {
	st := NewStore()
	var asserted, terminated int
	st.Watch(func(c Change) {
		switch c.Kind {
		case Asserted:
			asserted++
		case Terminated:
			terminated++
		}
	})
	if err := st.PutBatch(batchWorkload(100, 10)); err != nil {
		t.Fatal(err)
	}
	if asserted != 100 || terminated != 90 {
		t.Fatalf("watcher counts: %d asserted, %d terminated", asserted, terminated)
	}
}

// TestCompactBeforeWorkers: the parallel sweep removes the same versions
// and leaves the same state as the serial sweep, for any worker count.
func TestCompactBeforeWorkers(t *testing.T) {
	build := func() *Store {
		st := NewStore()
		if err := st.PutBatch(batchWorkload(2_000, 64)); err != nil {
			t.Fatal(err)
		}
		return st
	}
	serial, parallel := build(), build()
	rs := serial.CompactBeforeWithWorkers(1_000, 1)
	rp := parallel.CompactBeforeWithWorkers(1_000, 8)
	if rs != rp {
		t.Fatalf("removed: serial %d, parallel %d", rs, rp)
	}
	sameFacts(t, "compacted", serial.List(AllVersions()), parallel.List(AllVersions()))
}

// TestFindValueSpec: the spec-based value read agrees with the option-
// based Find across both time axes.
func TestFindValueSpec(t *testing.T) {
	st := NewStore()
	db := st.DB()
	for v := 1; v <= 4; v++ {
		if err := db.Put("ann", "position", element.Int(int64(v)),
			WithValidTime(temporal.Instant(v*10)), WithTransactionTime(temporal.Instant(v*10))); err != nil {
			t.Fatal(err)
		}
	}
	// Retroactive correction recorded at 100 over [15, 25).
	if err := db.Put("ann", "position", element.Int(-1),
		WithValidTime(15), WithEndValidTime(25), WithTransactionTime(100)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		spec ReadSpec
		opts []ReadOpt
	}{
		{ReadSpec{}, nil},
		{ReadSpec{ValidAt: 17, HasValidAt: true}, []ReadOpt{AsOfValidTime(17)}},
		{ReadSpec{ValidAt: 17, HasValidAt: true, TxAt: 50, HasTxAt: true},
			[]ReadOpt{AsOfValidTime(17), AsOfTransactionTime(50)}},
		{ReadSpec{ValidAt: 999, HasValidAt: true}, []ReadOpt{AsOfValidTime(999)}},
	}
	for i, c := range cases {
		wantF, wantOK := st.Find("ann", "position", c.opts...)
		gotV, gotOK := st.FindValue("ann", "position", c.spec)
		gotF, gotOK2 := st.FindSpec("ann", "position", c.spec)
		if gotOK != wantOK || gotOK2 != wantOK {
			t.Fatalf("case %d: ok %v/%v, want %v", i, gotOK, gotOK2, wantOK)
		}
		if !wantOK {
			continue
		}
		if !gotV.Equal(wantF.Value) || !gotF.Value.Equal(wantF.Value) {
			t.Fatalf("case %d: value %s/%s, want %s", i, gotV, gotF.Value, wantF.Value)
		}
	}
}
