package state

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/element"
	"repro/internal/temporal"
	"repro/internal/vfs"
)

// Log is an append-only record of store mutations, sufficient to rebuild
// the full bitemporal state (all versions, not just current) by replay.
// Together with WriteSnapshot/ReadSnapshot it gives the state repository
// the durability of the "temporal database" the paper sketches in §3.3.
//
// Records are gob-encoded logRecord values, each sealed with a crc32c
// of its semantic fields: gob framing detects truncation but not bit rot
// that still decodes, so replay and recovery verify every summed record
// and fail loudly on a mismatch. Logs written before checksums existed
// (records without the Summed flag) replay unverified, unchanged.
//
// The sharded store commits
// mutations under per-shard locks, so the log serializes concurrent
// appends itself through a single-appender channel: whoever holds the
// channel's token owns the encoder, and the token hand-off defines one
// total append order. Every record carries its own transaction time (or
// positional application time), so any interleaving the appender admits
// replays to the identical bitemporal state.
//
// Segmented logs (RecoverWALDir) split the WAL across numbered files
// rotated at a byte threshold. They support the durability handoff of
// the segment backend: TruncateBefore unlinks whole sealed files the
// flush cut covers — O(files dropped) off the appender token, never an
// in-place rewrite — and Sync flushes the active file before a manifest
// commit (sealed files are synced when they seal). Logs over plain
// writers (NewLog) or a single file (CreateLog) return ErrNotFileBacked
// from TruncateBefore.
type Log struct {
	c   io.Closer
	enc *gob.Encoder
	n   int
	// path and file are set for file-backed logs only; Sync fsyncs file.
	// All file operations go through fs — the fault-injectable seam
	// (vfs.OS in production).
	path string
	file vfs.File
	fs   vfs.FS
	// Segmented-WAL state (RecoverWALDir): segDir is the directory the
	// numbered wal files live in (empty for single-file logs), seq the
	// active file's sequence number, and sealed the older read-only files
	// still holding records past the durable cut, oldest first. The
	// active file's byte count (via cw), record count, and max
	// transaction time drive rotation and whole-file truncation.
	segDir       string
	seq          uint64
	rotateBytes  int64
	cw           *countWriter
	sealed       []sealedWAL
	activeRecs   int
	activeMaxTx  temporal.Instant
	filesDropped int
	dropFails    int
	// err poisons the log: a failed deferred rewrite (RecoverLog)
	// surfaces from every subsequent operation.
	err error
	// onAppendErr, when set, is offered every append failure (and every
	// append attempt on a poisoned log). Returning true acknowledges the
	// failure and switches the log into dropping mode; returning false
	// propagates the error to the writer. The handler runs under the
	// appender token on the writer's goroutine, so it must only do
	// atomic/channel work — no locks shared with writers.
	onAppendErr func(error) bool
	// dropping marks degraded mode: appends are acknowledged and
	// discarded (counted in dropped) until Rearm starts a fresh file.
	// A failed gob encode leaves the stream unusable mid-message, so
	// there is no per-record recovery — the whole file is forfeit and
	// only a flush elsewhere can restore durability.
	dropping bool
	dropped  int
	// appender is the single-appender channel: a one-slot token guarding
	// enc, n, path, file, and err. Acquire by sending, release by
	// receiving. RecoverLog hands out a Log whose token is pre-held by
	// its background tail rewrite, so the first append transparently
	// waits for the rewrite instead of the cold start paying for it.
	appender chan struct{}
}

// ErrNotFileBacked reports a file-only Log operation (TruncateBefore,
// Sync) on a log constructed over a plain writer, or TruncateBefore on
// a single-file log (only segmented WALs truncate, by whole-file drop).
var ErrNotFileBacked = errors.New("state: log is not file-backed")

// DefaultWALRotateBytes is the default size threshold at which a
// segmented WAL seals its active file and rotates to the next one.
const DefaultWALRotateBytes = 1 << 20

// sealedWAL describes one read-only file of a segmented WAL chain:
// sealed at rotation (synced, closed), droppable by TruncateBefore once
// the durable cut reaches its newest record.
type sealedWAL struct {
	path  string
	maxTx temporal.Instant // max transaction time over the file's records
	recs  int              // records the file still contributes to the tail
}

// countWriter counts the bytes reaching the active WAL file so rotation
// can trigger on size without stat calls. Accessed only under the
// appender token.
type countWriter struct {
	f vfs.File
	n int64
}

func (w *countWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.n += int64(n)
	return n, err
}

// walFileName renders the name of the numbered WAL file with the given
// sequence number. The legacy single-file name "wal.log" sorts as
// sequence 0, so directories written before the WAL was segmented
// recover as a one-file chain.
func walFileName(seq uint64) string { return fmt.Sprintf("wal.%08d", seq) }

// parseWALName reports whether name is part of a WAL chain and its
// sequence number. Temp files (wal.*.tmp) are rewrite debris, not chain
// members.
func parseWALName(name string) (uint64, bool) {
	if name == "wal.log" {
		return 0, true
	}
	rest, ok := strings.CutPrefix(name, "wal.")
	if !ok || rest == "" {
		return 0, false
	}
	var seq uint64
	for _, c := range rest {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// IsWALFileName reports whether name names a WAL chain file — a
// numbered wal.NNNNNNNN member or the legacy wal.log. Directory owners
// (the segment backend's orphan sweep) use it to keep their hands off
// the chain.
func IsWALFileName(name string) bool {
	_, ok := parseWALName(name)
	return ok
}

type opKind uint8

const (
	opPut opKind = iota
	opAssert
	opRetract
	// opPutBi and opDeleteBi are option-based bitemporal writes carrying
	// an explicit valid interval and transaction time.
	opPutBi
	opDeleteBi
	// opPutBatch is a group-committed micro-batch of positional Puts: one
	// framed record carries every write of the batch (see Store.PutBatch),
	// so the WAL pays one append per batch instead of one per element.
	opPutBatch
)

// logRecord is the wire format of one mutation.
type logRecord struct {
	Op      opKind
	Entity  string
	Attr    string
	Value   element.Value
	At      temporal.Instant // Put/Retract application time
	Start   temporal.Instant // Assert / bitemporal validity
	End     temporal.Instant
	Tx      temporal.Instant // bitemporal transaction time
	Derived bool
	Source  string
	// Puts carries the writes of one opPutBatch frame; empty otherwise.
	Puts []BatchPut
	// Sum is the crc32c of the record's semantic fields (see checksum),
	// guarding against bit rot that still gob-decodes. Summed
	// distinguishes a computed checksum from the zero value old-format
	// records decode to, keeping replay compatible with logs written
	// before checksums existed.
	Summed bool
	Sum    uint32
}

// crcTable is the Castagnoli (crc32c) polynomial, hardware-accelerated
// on amd64 and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum renders the record's semantic fields into a canonical byte
// stream and returns its crc32c. The gob frame itself is not summed: gob
// emits type descriptors positionally, so the same record's bytes differ
// between streams (and across rewrites). Sum/Summed are excluded.
func (r *logRecord) checksum() uint32 {
	h := crc32.New(crcTable)
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeU64(uint64(len(s)))
		io.WriteString(h, s)
	}
	writeVal := func(v element.Value) {
		b, _ := v.MarshalBinary()
		writeU64(uint64(len(b)))
		h.Write(b)
	}
	h.Write([]byte{byte(r.Op)})
	writeStr(r.Entity)
	writeStr(r.Attr)
	writeVal(r.Value)
	writeU64(uint64(r.At))
	writeU64(uint64(r.Start))
	writeU64(uint64(r.End))
	writeU64(uint64(r.Tx))
	if r.Derived {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	writeStr(r.Source)
	writeU64(uint64(len(r.Puts)))
	for i := range r.Puts {
		p := &r.Puts[i]
		writeStr(p.Entity)
		writeStr(p.Attr)
		writeVal(p.Value)
		writeU64(uint64(p.At))
	}
	return h.Sum32()
}

// verify checks a summed record against its checksum. Records from logs
// written before checksums (Summed false) pass unverified. Callers must
// verify before keepAfter, which trims opPutBatch frames in place.
func (r *logRecord) verify(n int) error {
	if !r.Summed {
		return nil
	}
	if got := r.checksum(); got != r.Sum {
		return fmt.Errorf("state: log record %d: checksum mismatch (stored %08x, computed %08x)", n, r.Sum, got)
	}
	return nil
}

// reseal recomputes the checksum of a summed record whose Puts were
// trimmed in place by keepAfter, keeping the rewritten frame verifiable.
func (r *logRecord) reseal() {
	if r.Summed && r.Op == opPutBatch {
		r.Sum = r.checksum()
	}
}

// txTime returns the transaction time that orders rec for tail handoff:
// the instant a flush cut at or after it makes the record redundant.
// opPutBatch frames have no single time — their puts are filtered
// individually (see keepAfter).
func (r *logRecord) txTime() temporal.Instant {
	switch r.Op {
	case opAssert:
		return r.Start
	case opPutBi, opDeleteBi:
		return r.Tx
	default: // opPut, opRetract: positional application time
		return r.At
	}
}

// maxTxTime returns the newest transaction time rec carries: txTime for
// plain records, the max put time for an opPutBatch frame. A WAL file
// whose max over all records is at or before a flush cut is fully
// covered by the segments and can be dropped whole.
func (r *logRecord) maxTxTime() temporal.Instant {
	if r.Op != opPutBatch {
		return r.txTime()
	}
	t := temporal.MinInstant
	for i := range r.Puts {
		if r.Puts[i].At > t {
			t = r.Puts[i].At
		}
	}
	return t
}

// keepAfter reports whether rec still carries state newer than a flush
// cut at tt, trimming opPutBatch frames to their surviving puts in
// place. A frame fully covered by the cut (or a plain record at or
// before it) is dropped.
func (r *logRecord) keepAfter(tt temporal.Instant) bool {
	if r.Op != opPutBatch {
		return r.txTime() > tt
	}
	kept := r.Puts[:0]
	for _, p := range r.Puts {
		if p.At > tt {
			kept = append(kept, p)
		}
	}
	r.Puts = kept
	return len(kept) > 0
}

// NewLog wraps a writer in a mutation log.
func NewLog(w io.Writer) *Log {
	l := &Log{enc: gob.NewEncoder(w), appender: make(chan struct{}, 1)}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// CreateLog creates (truncating) a log file at path.
func CreateLog(path string) (*Log, error) {
	return CreateLogFS(vfs.OS, path)
}

// CreateLogFS is CreateLog over an explicit filesystem seam.
func CreateLogFS(fsys vfs.FS, path string) (*Log, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("state: create log: %w", err)
	}
	l := NewLog(f)
	l.path, l.file, l.fs = path, f, fsys
	return l, nil
}

// Len reports the number of records appended through this Log.
func (l *Log) Len() int {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	return l.n
}

// append serializes one record through the single-appender channel.
func (l *Log) append(rec logRecord) error {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	if l.dropping {
		l.dropped++
		return nil
	}
	if l.err != nil {
		return l.failLocked(l.err)
	}
	rec.Summed = true
	rec.Sum = rec.checksum()
	if err := l.enc.Encode(rec); err != nil {
		return l.failLocked(err)
	}
	l.n++
	if l.segDir != "" {
		l.activeRecs++
		if t := rec.maxTxTime(); t > l.activeMaxTx {
			l.activeMaxTx = t
		}
		if l.cw.n >= l.rotateBytes {
			return l.rotateLocked()
		}
	}
	return nil
}

// rotateLocked seals the active WAL file and opens the next numbered
// one. Called under the appender token. The seal syncs the outgoing
// file, so every sealed file is on disk and Sync only ever touches the
// active file. A failed create keeps the current (synced) file active —
// rotation simply retries on a later append; a failed seal sync is an
// append-path durability failure and goes through the degraded-mode
// handler like any other.
func (l *Log) rotateLocked() error {
	if err := l.file.Sync(); err != nil {
		return l.failLocked(err)
	}
	next := l.seq + 1
	path := filepath.Join(l.segDir, walFileName(next))
	f, err := l.fs.Create(path)
	if err != nil {
		return nil
	}
	l.file.Close()
	l.sealed = append(l.sealed, sealedWAL{path: l.path, maxTx: l.activeMaxTx, recs: l.activeRecs})
	l.path, l.file, l.c, l.seq = path, f, f, next
	l.cw = &countWriter{f: f}
	l.enc = gob.NewEncoder(l.cw)
	l.activeRecs, l.activeMaxTx = 0, temporal.MinInstant
	return nil
}

// failLocked offers an append failure to the handler. An acknowledged
// failure flips the log into dropping mode (counting this append as
// dropped) and reports success to the writer — the store's RAM commit
// proceeds; durability is the degraded-mode flow's problem now.
func (l *Log) failLocked(err error) error {
	if l.onAppendErr != nil && l.onAppendErr(err) {
		l.dropping = true
		l.dropped++
		return nil
	}
	return err
}

// OnAppendError installs the append-failure handler (see Log.onAppendErr).
// Install before concurrent appends begin.
func (l *Log) OnAppendError(h func(error) bool) {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	l.onAppendErr = h
}

// Dropping reports whether the log is in dropping (degraded) mode.
func (l *Log) Dropping() bool {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	return l.dropping
}

// Dropped reports how many appends were acknowledged and discarded
// while dropping.
func (l *Log) Dropped() int {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	return l.dropped
}

// Rearm replaces a dropping (or poisoned) file-backed log with a fresh
// empty file and encoder, clearing dropping mode. The records the old
// file held — and every append dropped since — are NOT recovered here:
// the caller must immediately flush the full RAM state to the durable
// backend, pinned at a cut taken AFTER Rearm returns, so everything the
// discarded WAL covered is captured elsewhere before new appends rely
// on the fresh file. The dropped count is kept for observability.
func (l *Log) Rearm() error {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	if l.path == "" {
		return ErrNotFileBacked
	}
	if l.segDir != "" {
		// The whole chain is forfeit. Open the fresh file first so a
		// failed create leaves the old chain untouched, then drop every
		// old file best-effort: one left behind only holds records the
		// caller's full-state flush is about to cover, and recovery
		// filters those by the durable cut.
		next := l.seq + 1
		path := filepath.Join(l.segDir, walFileName(next))
		f, err := l.fs.Create(path)
		if err != nil {
			return err
		}
		for _, sf := range l.sealed {
			if l.fs.Remove(sf.path) == nil {
				l.filesDropped++
			} else {
				l.dropFails++
			}
		}
		l.sealed = nil
		if l.file != nil {
			l.file.Close()
			if l.fs.Remove(l.path) == nil {
				l.filesDropped++
			} else {
				l.dropFails++
			}
		}
		l.path, l.file, l.c, l.seq = path, f, f, next
		l.cw = &countWriter{f: f}
		l.enc = gob.NewEncoder(l.cw)
		l.n, l.activeRecs, l.activeMaxTx = 0, 0, temporal.MinInstant
		l.err = nil
		l.dropping = false
		return nil
	}
	f, _, enc, err := rewriteLogFile(l.fs, l.path, nil)
	if err != nil {
		return err
	}
	if l.file != nil {
		l.file.Close()
	}
	l.file, l.c, l.n, l.enc = f, f, 0, enc
	l.err = nil
	l.dropping = false
	return nil
}

// Close closes the underlying writer when it is closable.
func (l *Log) Close() error {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	if l.err != nil {
		return l.err
	}
	if l.c != nil {
		return l.c.Close()
	}
	return nil
}

// Sync flushes a file-backed log to stable storage. The segment backend
// calls it before committing a manifest, so the WAL tail the manifest's
// durable cut depends on is on disk first.
func (l *Log) Sync() error {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	if l.err != nil {
		return l.err
	}
	if l.file == nil {
		return ErrNotFileBacked
	}
	return l.file.Sync()
}

// TruncateBefore hands the WAL prefix a durability flush at cut tt has
// made redundant back to the filesystem. On a segmented WAL this is
// whole-file drops only: sealed files whose newest record is at or
// before the cut are unlinked — O(files dropped) off the appender
// token, no record is ever rewritten in place — and files straddling
// the cut stay whole (recovery filters their pre-cut records by the
// manifest's durable cut anyway). An active file fully covered by the
// cut rotates out immediately rather than waiting for the size
// threshold, so the tail length Len reports stays honest. A failed
// unlink keeps the file in the chain (counted in DropFailures, retried
// at the next cut); recovery tolerates redundant covered files.
//
// Non-segmented logs return ErrNotFileBacked: the old in-place tail
// rewrite stalled the appender for O(tail) and is gone.
func (l *Log) TruncateBefore(tt temporal.Instant) error {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	if l.err != nil {
		return l.err
	}
	if l.segDir == "" {
		return ErrNotFileBacked
	}
	kept := l.sealed[:0]
	for _, sf := range l.sealed {
		if sf.maxTx > tt {
			kept = append(kept, sf)
			continue
		}
		if err := l.fs.Remove(sf.path); err != nil {
			l.dropFails++
			kept = append(kept, sf)
			continue
		}
		l.filesDropped++
		l.n -= sf.recs
	}
	l.sealed = kept
	if l.activeRecs > 0 && l.activeMaxTx <= tt && !l.dropping {
		next := l.seq + 1
		path := filepath.Join(l.segDir, walFileName(next))
		f, err := l.fs.Create(path)
		if err != nil {
			return nil // keep the covered file active; harmless
		}
		old := l.path
		l.file.Close()
		l.n -= l.activeRecs
		l.path, l.file, l.c, l.seq = path, f, f, next
		l.cw = &countWriter{f: f}
		l.enc = gob.NewEncoder(l.cw)
		l.activeRecs, l.activeMaxTx = 0, temporal.MinInstant
		if err := l.fs.Remove(old); err != nil {
			// The covered file stays behind; recovery filters it by the
			// cut and drops it then.
			l.dropFails++
		} else {
			l.filesDropped++
		}
	}
	return nil
}

// Files reports how many files the segmented WAL chain currently spans
// (sealed plus active); 1 for a single-file log, 0 for a plain writer.
func (l *Log) Files() int {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	if l.segDir != "" {
		return len(l.sealed) + 1
	}
	if l.file != nil {
		return 1
	}
	return 0
}

// DroppedFiles reports how many WAL files truncation (or Rearm) has
// unlinked over the log's lifetime.
func (l *Log) DroppedFiles() int {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	return l.filesDropped
}

// DropFailures reports how many WAL-file unlinks failed (the files stay
// in the chain and are retried at the next cut).
func (l *Log) DropFailures() int {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	return l.dropFails
}

// rewriteLogFile writes records to a temp file next to path, syncs it,
// and renames it over path. It returns the still-open file positioned
// for appends together with the byte-counting writer and the encoder
// that wrote it: a gob stream is one encoder's output, so the log MUST
// keep appending through this encoder — starting a fresh one on the
// same file would begin a second stream a single replay Decoder rejects
// ("duplicate type received").
func rewriteLogFile(fsys vfs.FS, path string, records []logRecord) (vfs.File, *countWriter, *gob.Encoder, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("state: rewrite log: %w", err)
	}
	cw := &countWriter{f: f}
	enc := gob.NewEncoder(cw)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			f.Close()
			fsys.Remove(tmp)
			return nil, nil, nil, fmt.Errorf("state: rewrite log record %d: %w", i, err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return nil, nil, nil, fmt.Errorf("state: rewrite log: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return nil, nil, nil, fmt.Errorf("state: rewrite log: %w", err)
	}
	fsys.SyncDir(filepath.Dir(path))
	return f, cw, enc, nil
}

// SyncDir best-effort fsyncs a directory, making a completed rename in
// it durable. Shared by the WAL rewrite and the segment backend's
// manifest commit; best-effort because some platforms cannot sync
// directories.
func SyncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

func (l *Log) appendPut(entity, attr string, v element.Value, at temporal.Instant) error {
	return l.append(logRecord{Op: opPut, Entity: entity, Attr: attr, Value: v, At: at})
}

func (l *Log) appendAssert(f *element.Fact) error {
	return l.append(logRecord{
		Op: opAssert, Entity: f.Entity, Attr: f.Attribute, Value: f.Value,
		Start: f.Validity.Start, End: f.Validity.End,
		Derived: f.Derived, Source: f.Source,
	})
}

func (l *Log) appendRetract(entity, attr string, at temporal.Instant) error {
	return l.append(logRecord{Op: opRetract, Entity: entity, Attr: attr, At: at})
}

func (l *Log) appendPutBi(f *element.Fact) error {
	return l.append(logRecord{
		Op: opPutBi, Entity: f.Entity, Attr: f.Attribute, Value: f.Value,
		Start: f.Validity.Start, End: f.Validity.End, Tx: f.RecordedAt,
		Derived: f.Derived, Source: f.Source,
	})
}

func (l *Log) appendDelete(entity, attr string, w temporal.Interval, tx temporal.Instant) error {
	return l.append(logRecord{
		Op: opDeleteBi, Entity: entity, Attr: attr,
		Start: w.Start, End: w.End, Tx: tx,
	})
}

func (l *Log) appendPutBatch(puts []BatchPut) error {
	return l.append(logRecord{Op: opPutBatch, Puts: puts})
}

// applyLogRecord re-applies one decoded record through the store's write
// paths — the shared body of Replay and RecoverLog.
func (s *Store) applyLogRecord(rec *logRecord) error {
	switch rec.Op {
	case opPut:
		return s.Put(rec.Entity, rec.Attr, rec.Value, rec.At)
	case opAssert:
		f := element.NewFact(rec.Entity, rec.Attr, rec.Value,
			temporal.NewInterval(rec.Start, rec.End))
		f.Derived = rec.Derived
		f.Source = rec.Source
		return s.Assert(f)
	case opRetract:
		return s.Retract(rec.Entity, rec.Attr, rec.At)
	case opPutBi:
		return s.apply(writeReq{
			entity: rec.Entity, attr: rec.Attr, value: rec.Value,
			validFrom: rec.Start, hasValidFrom: true,
			validTo: rec.End, hasValidTo: true,
			tx: rec.Tx, hasTx: true,
			derived: rec.Derived, source: rec.Source,
		})
	case opDeleteBi:
		return s.apply(writeReq{
			entity: rec.Entity, attr: rec.Attr, isDelete: true,
			validFrom: rec.Start, hasValidFrom: true,
			validTo: rec.End, hasValidTo: true,
			tx: rec.Tx, hasTx: true,
		})
	case opPutBatch:
		// Replay applies the frame's writes one at a time: the group
		// commit is a durability optimization, not a semantic unit, and
		// per-key write order is preserved within the frame.
		for _, p := range rec.Puts {
			if err := s.Put(p.Entity, p.Attr, p.Value, p.At); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("state: unknown op %d", rec.Op)
}

// Replay applies every record from r to the store, in order. The store
// should be empty (or a snapshot-restored prefix of the log's history).
// It returns the number of records applied.
func Replay(r io.Reader, s *Store) (int, error) {
	dec := gob.NewDecoder(r)
	n := 0
	for {
		var rec logRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, fmt.Errorf("state: replay record %d: %w", n, err)
		}
		if err := rec.verify(n); err != nil {
			return n, fmt.Errorf("state: replay: %w", err)
		}
		if err := s.applyLogRecord(&rec); err != nil {
			return n, fmt.Errorf("state: replay record %d: %w", n, err)
		}
		n++
	}
}

// RecoverLog replays the tail of the WAL at path into s — only records
// carrying state newer than the durable cut (opPutBatch frames trimmed
// to their surviving puts) — and returns a Log continuing at that file.
// This is the recovery half of the segment backend's handoff: segments
// restore the cut, RecoverLog replays what the cut does not cover. Pass
// cut = MinInstant for a full WAL-only recovery.
//
// An unexpected EOF is treated as a torn final record — the tail a
// crash cut mid-append — not an error: replay stops at the last whole
// record. Any other decode error is corruption and fails recovery
// loudly. Either way the surviving file is compacted to exactly the
// records applied (atomic rewrite), so torn bytes and the pre-cut
// prefix are gone and the returned Log appends cleanly. A missing file
// yields an empty log created at path.
//
// Unlike the general Replay, RecoverLog applies runs of positional Put
// records through PutBatch: the store is empty of observers during
// recovery and positional puts on distinct keys commute, so the group
// commit reproduces the identical bitemporal state at a fraction of the
// per-record locking — this is the WAL-tail half of the fast cold
// start, as LoadLineage is the segment half.
//
// It returns the Log and the number of tail records applied.
func RecoverLog(path string, s *Store, cut temporal.Instant) (*Log, int, error) {
	return RecoverLogFS(vfs.OS, path, s, cut)
}

// RecoverLogFS is RecoverLog over an explicit filesystem seam.
func RecoverLogFS(fsys vfs.FS, path string, s *Store, cut temporal.Instant) (*Log, int, error) {
	src, err := fsys.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		l, err := CreateLogFS(fsys, path)
		return l, 0, err
	}
	if err != nil {
		return nil, 0, fmt.Errorf("state: recover log: %w", err)
	}
	var (
		kept    []logRecord
		pending []BatchPut // run of positional puts awaiting group apply
	)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		err := s.PutBatch(pending)
		pending = pending[:0]
		return err
	}
	dec := gob.NewDecoder(io.NewSectionReader(src, 0, 1<<62))
	decoded := 0
	for {
		var rec logRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				// A torn final append: gob messages are length-prefixed,
				// so a crash mid-append reliably leaves a message whose
				// byte count outruns the file. Replay stops at the last
				// whole record — the durable prefix — and the rewrite
				// below drops the torn bytes.
				break
			}
			// Any other decode error is corruption, not a crash artifact:
			// records after it may be intact but are unreachable in an
			// unframed gob stream, so fail loudly rather than silently
			// compact them away.
			src.Close()
			return nil, 0, fmt.Errorf("state: recover log record %d: %w", decoded, err)
		}
		decoded++
		// Verify before keepAfter trims the frame in place: a record that
		// still decodes but fails its checksum is bit rot, not a torn
		// tail, and recovery must fail loudly rather than replay it.
		if err := rec.verify(decoded - 1); err != nil {
			src.Close()
			return nil, 0, fmt.Errorf("state: recover log: %w", err)
		}
		if !rec.keepAfter(cut) {
			continue
		}
		rec.reseal()
		kept = append(kept, rec)
		switch rec.Op {
		case opPut:
			pending = append(pending, BatchPut{
				Entity: rec.Entity, Attr: rec.Attr, Value: rec.Value, At: rec.At,
			})
		case opPutBatch:
			pending = append(pending, rec.Puts...)
		default:
			// Order matters across ops of one key: drain the put run
			// before any other mutation kind.
			applyErr := flush()
			if applyErr == nil {
				applyErr = s.applyLogRecord(&rec)
			}
			if applyErr != nil {
				src.Close()
				return nil, 0, fmt.Errorf("state: recover log record %d: %w", decoded-1, applyErr)
			}
		}
	}
	if err := flush(); err != nil {
		src.Close()
		return nil, 0, fmt.Errorf("state: recover log: %w", err)
	}
	src.Close()

	// The state is recovered; compacting the file to the surviving tail
	// is bookkeeping the cold start need not wait for. The returned Log
	// is born with its appender token held by the background rewrite,
	// so the first append (or Sync/TruncateBefore/Close) transparently
	// blocks until the file is ready; a rewrite failure poisons the log
	// and surfaces there.
	l := &Log{path: path, fs: fsys, appender: make(chan struct{}, 1)}
	l.appender <- struct{}{}
	go func() {
		defer func() { <-l.appender }()
		f, _, enc, err := rewriteLogFile(fsys, path, kept)
		if err != nil {
			l.err = err
			return
		}
		l.file, l.c, l.n, l.enc = f, f, len(kept), enc
	}()
	return l, len(kept), nil
}

// RecoverWALDir replays the segmented WAL chain in dir into s — only
// records carrying state newer than the durable cut, in file order —
// and returns a Log continuing the chain. It is the segmented
// counterpart of RecoverLog: the chain is every wal.NNNNNNNN file plus
// a legacy wal.log (which sorts oldest), replayed oldest first with the
// same per-record crc32c verification. An unexpected EOF is tolerated
// only in the newest file — the tail a crash cut mid-append; anywhere
// earlier it is corruption and fails recovery loudly.
//
// Fully covered older files are unlinked and the newest file is
// compacted to its surviving records (atomic rewrite) in the
// background, under the returned Log's pre-held appender token, so the
// cold start does not wait for either. Files straddling the cut stay
// whole as sealed chain members. An empty directory yields a fresh
// one-file chain.
func RecoverWALDir(dir string, s *Store, cut temporal.Instant, rotateBytes int64) (*Log, int, error) {
	return RecoverWALDirFS(vfs.OS, dir, s, cut, rotateBytes)
}

// RecoverWALDirFS is RecoverWALDir over an explicit filesystem seam.
func RecoverWALDirFS(fsys vfs.FS, dir string, s *Store, cut temporal.Instant, rotateBytes int64) (*Log, int, error) {
	if rotateBytes <= 0 {
		rotateBytes = DefaultWALRotateBytes
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("state: recover wal dir: %w", err)
	}
	type chainFile struct {
		path  string
		seq   uint64
		maxTx temporal.Instant // over ALL decoded records, kept or not
		kept  int
	}
	var files []chainFile
	for _, ent := range ents {
		if seq, ok := parseWALName(ent.Name()); ok {
			files = append(files, chainFile{
				path: filepath.Join(dir, ent.Name()), seq: seq, maxTx: temporal.MinInstant,
			})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].seq < files[j].seq })

	newSegmented := func(path string, seq uint64) *Log {
		return &Log{
			path: path, fs: fsys, appender: make(chan struct{}, 1),
			segDir: dir, seq: seq, rotateBytes: rotateBytes,
			activeMaxTx: temporal.MinInstant,
		}
	}
	if len(files) == 0 {
		path := filepath.Join(dir, walFileName(1))
		f, err := fsys.Create(path)
		if err != nil {
			return nil, 0, fmt.Errorf("state: create wal: %w", err)
		}
		l := newSegmented(path, 1)
		l.file, l.c = f, f
		l.cw = &countWriter{f: f}
		l.enc = gob.NewEncoder(l.cw)
		return l, 0, nil
	}

	var (
		lastKept []logRecord
		pending  []BatchPut // run of positional puts awaiting group apply
		total    int
	)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		err := s.PutBatch(pending)
		pending = pending[:0]
		return err
	}
	for i := range files {
		cf := &files[i]
		last := i == len(files)-1
		src, err := fsys.Open(cf.path)
		if err != nil {
			return nil, 0, fmt.Errorf("state: recover wal: %w", err)
		}
		dec := gob.NewDecoder(io.NewSectionReader(src, 0, 1<<62))
		decoded := 0
		for {
			var rec logRecord
			if err := dec.Decode(&rec); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				if errors.Is(err, io.ErrUnexpectedEOF) && last {
					// A torn final append in the newest file — the tail a
					// crash cut mid-write. Anywhere earlier the file was
					// sealed whole, so short bytes are corruption.
					break
				}
				src.Close()
				return nil, 0, fmt.Errorf("state: recover wal %s record %d: %w", filepath.Base(cf.path), decoded, err)
			}
			decoded++
			if err := rec.verify(decoded - 1); err != nil {
				src.Close()
				return nil, 0, fmt.Errorf("state: recover wal %s: %w", filepath.Base(cf.path), err)
			}
			if t := rec.maxTxTime(); t > cf.maxTx {
				cf.maxTx = t
			}
			if !rec.keepAfter(cut) {
				continue
			}
			rec.reseal()
			cf.kept++
			total++
			if last {
				lastKept = append(lastKept, rec)
			}
			switch rec.Op {
			case opPut:
				pending = append(pending, BatchPut{
					Entity: rec.Entity, Attr: rec.Attr, Value: rec.Value, At: rec.At,
				})
			case opPutBatch:
				pending = append(pending, rec.Puts...)
			default:
				applyErr := flush()
				if applyErr == nil {
					applyErr = s.applyLogRecord(&rec)
				}
				if applyErr != nil {
					src.Close()
					return nil, 0, fmt.Errorf("state: recover wal %s record %d: %w", filepath.Base(cf.path), decoded-1, applyErr)
				}
			}
		}
		src.Close()
	}
	if err := flush(); err != nil {
		return nil, 0, fmt.Errorf("state: recover wal: %w", err)
	}

	// Assemble the surviving chain: covered older files are dropped,
	// straddling ones sealed, and the newest file rewritten to exactly
	// its kept records — all deferred to the background under the
	// pre-held appender token, like RecoverLog's tail compaction.
	lastF := files[len(files)-1]
	l := newSegmented(lastF.path, lastF.seq)
	var drop []string
	for _, cf := range files[:len(files)-1] {
		if cf.kept == 0 {
			drop = append(drop, cf.path)
			continue
		}
		l.sealed = append(l.sealed, sealedWAL{path: cf.path, maxTx: cf.maxTx, recs: cf.kept})
	}
	l.appender <- struct{}{}
	go func() {
		defer func() { <-l.appender }()
		for _, p := range drop {
			if fsys.Remove(p) == nil {
				l.filesDropped++
			} else {
				l.dropFails++
			}
		}
		f, cw, enc, err := rewriteLogFile(fsys, lastF.path, lastKept)
		if err != nil {
			l.err = err
			return
		}
		l.file, l.c, l.cw, l.enc = f, f, cw, enc
		l.n = total
		l.activeRecs = len(lastKept)
		if len(lastKept) > 0 {
			l.activeMaxTx = lastF.maxTx
		}
	}()
	return l, total, nil
}

// ReplayFile replays a log file into the store.
func ReplayFile(path string, s *Store) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("state: open log: %w", err)
	}
	defer f.Close()
	return Replay(f, s)
}

// snapshotRecord is the wire format of one fact record in a snapshot.
type snapshotRecord struct {
	Entity       string
	Attr         string
	Value        element.Value
	Start        temporal.Instant
	End          temporal.Instant
	RecordedAt   temporal.Instant
	SupersededAt temporal.Instant
	Derived      bool
	Source       string
}

// WriteSnapshot serializes every record in the store to w — including
// versions superseded by retroactive corrections, so transaction-time
// queries survive recovery. A snapshot plus the log suffix written after
// it reconstructs the store; snapshots are the compaction mechanism for
// the log. The record set is one consistent cut pinned at the transaction
// clock's high-water mark, gathered lock-free from the published heads —
// serializing a large store no longer stalls writers.
func (s *Store) WriteSnapshot(w io.Writer) error {
	return s.writeSnapshotAt(w, s.pinBarrier())
}

// writeSnapshotAt serializes the cut believed at tt (Snapshot.WriteTo
// pins a handle's instant; WriteSnapshot pins the clock).
func (s *Store) writeSnapshotAt(w io.Writer, tt temporal.Instant) error {
	enc := gob.NewEncoder(w)
	facts := s.allRecordsAt(tt)
	if err := enc.Encode(len(facts)); err != nil {
		return fmt.Errorf("state: snapshot header: %w", err)
	}
	for _, f := range facts {
		rec := snapshotRecord{
			Entity: f.Entity, Attr: f.Attribute, Value: f.Value,
			Start: f.Validity.Start, End: f.Validity.End,
			RecordedAt: f.RecordedAt, SupersededAt: f.SupersededAt,
			Derived: f.Derived, Source: f.Source,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("state: snapshot record: %w", err)
		}
	}
	return nil
}

// allRecordsAt clones every record of the cut believed at tt, in
// deterministic key order, preserving per-lineage recording order. The
// gather is lock-free and the per-lineage cut reconstruction is
// recordsAt's: records recorded after the pin are excluded, and a belief
// interval closed after the pin is restored to open — the clone set is
// exactly the bitemporal state as of tt.
func (s *Store) allRecordsAt(tt temporal.Instant) []*element.Fact {
	shape := ScanShape{TxAt: tt, HasTxAt: true, AllVersions: true}
	return s.scanAll(shape, func(h *head, out []*element.Fact) []*element.Fact {
		return recordsAt(h, tt, out)
	})
}

// ReadSnapshot loads a snapshot into an empty store.
func ReadSnapshot(r io.Reader, s *Store) error {
	dec := gob.NewDecoder(r)
	var n int
	if err := dec.Decode(&n); err != nil {
		return fmt.Errorf("state: snapshot header: %w", err)
	}
	for i := 0; i < n; i++ {
		var rec snapshotRecord
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("state: snapshot record %d: %w", i, err)
		}
		f := element.NewFact(rec.Entity, rec.Attr, rec.Value,
			temporal.NewInterval(rec.Start, rec.End))
		f.RecordedAt = rec.RecordedAt
		f.SupersededAt = rec.SupersededAt
		f.Derived = rec.Derived
		f.Source = rec.Source
		if err := s.loadRecord(f); err != nil {
			return fmt.Errorf("state: snapshot record %d: %w", i, err)
		}
	}
	return nil
}

// loadRecord inserts a record during snapshot load, bypassing the log and
// watchers. Records arrive in per-lineage recording order; believed ones
// additionally join the belief slices, which must stay disjoint. Each
// record publishes a successor head, exactly like a live mutation.
func (s *Store) loadRecord(f *element.Fact) error {
	sh := s.shardFor(f.Entity, f.Attribute)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	l := sh.lineage(f.Key(), true)
	h := l.head.Load()
	nh := &head{txOrdered: h.txOrdered, maxTx: h.maxTx, lastWrite: h.lastWrite}
	if n := len(h.records); n > 0 && f.RecordedAt < h.records[n-1].RecordedAt {
		nh.txOrdered = false
	}
	if f.RecordedAt > nh.maxTx {
		nh.maxTx = f.RecordedAt
	}
	if f.RecordedAt > nh.lastWrite {
		nh.lastWrite = f.RecordedAt
	}
	nh.records = append(h.records, f)
	sh.records.Add(1)
	sh.bytes.Add(approxFactBytes(f))
	s.clock.observe(f.RecordedAt)
	if f.Superseded() {
		s.clock.observe(f.SupersededAt)
		if f.SupersededAt > nh.maxTx {
			nh.maxTx = f.SupersededAt
		}
		if f.SupersededAt > nh.lastWrite {
			nh.lastWrite = f.SupersededAt
		}
		nh.closed, nh.open = h.closed, h.open
		l.head.Store(nh)
		return nil
	}
	if over := h.overlappingLive(f.Validity); len(over) > 0 {
		nh.closed, nh.open = h.closed, h.open
		l.head.Store(nh)
		return fmt.Errorf("state: snapshot version disorder for %s: %s overlaps %s",
			f.Key(), f.Validity, over[0].Validity)
	}
	if f.IsCurrent() {
		nh.closed, nh.open = h.closed, f
	} else {
		i := sort.Search(len(h.closed), func(k int) bool {
			return h.closed[k].Validity.Start >= f.Validity.Start
		})
		nc := make([]*element.Fact, 0, len(h.closed)+1)
		nc = append(nc, h.closed[:i]...)
		nc = append(nc, f)
		nc = append(nc, h.closed[i:]...)
		nh.closed, nh.open = nc, h.open
	}
	sh.versions.Add(1)
	l.head.Store(nh)
	return nil
}
