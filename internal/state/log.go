package state

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Log is an append-only record of store mutations, sufficient to rebuild
// the full bitemporal state (all versions, not just current) by replay.
// Together with WriteSnapshot/ReadSnapshot it gives the state repository
// the durability of the "temporal database" the paper sketches in §3.3.
//
// Records are gob-encoded logRecord values. The sharded store commits
// mutations under per-shard locks, so the log serializes concurrent
// appends itself through a single-appender channel: whoever holds the
// channel's token owns the encoder, and the token hand-off defines one
// total append order. Every record carries its own transaction time (or
// positional application time), so any interleaving the appender admits
// replays to the identical bitemporal state.
type Log struct {
	c   io.Closer
	enc *gob.Encoder
	n   int
	// appender is the single-appender channel: a one-slot token guarding
	// enc and n. Acquire by sending, release by receiving.
	appender chan struct{}
}

type opKind uint8

const (
	opPut opKind = iota
	opAssert
	opRetract
	// opPutBi and opDeleteBi are option-based bitemporal writes carrying
	// an explicit valid interval and transaction time.
	opPutBi
	opDeleteBi
	// opPutBatch is a group-committed micro-batch of positional Puts: one
	// framed record carries every write of the batch (see Store.PutBatch),
	// so the WAL pays one append per batch instead of one per element.
	opPutBatch
)

// logRecord is the wire format of one mutation.
type logRecord struct {
	Op      opKind
	Entity  string
	Attr    string
	Value   element.Value
	At      temporal.Instant // Put/Retract application time
	Start   temporal.Instant // Assert / bitemporal validity
	End     temporal.Instant
	Tx      temporal.Instant // bitemporal transaction time
	Derived bool
	Source  string
	// Puts carries the writes of one opPutBatch frame; empty otherwise.
	Puts []BatchPut
}

// NewLog wraps a writer in a mutation log.
func NewLog(w io.Writer) *Log {
	l := &Log{enc: gob.NewEncoder(w), appender: make(chan struct{}, 1)}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// CreateLog creates (truncating) a log file at path.
func CreateLog(path string) (*Log, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("state: create log: %w", err)
	}
	return NewLog(f), nil
}

// Len reports the number of records appended through this Log.
func (l *Log) Len() int {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	return l.n
}

// append serializes one record through the single-appender channel.
func (l *Log) append(rec logRecord) error {
	l.appender <- struct{}{}
	defer func() { <-l.appender }()
	l.n++
	return l.enc.Encode(rec)
}

// Close closes the underlying writer when it is closable.
func (l *Log) Close() error {
	if l.c != nil {
		return l.c.Close()
	}
	return nil
}

func (l *Log) appendPut(entity, attr string, v element.Value, at temporal.Instant) error {
	return l.append(logRecord{Op: opPut, Entity: entity, Attr: attr, Value: v, At: at})
}

func (l *Log) appendAssert(f *element.Fact) error {
	return l.append(logRecord{
		Op: opAssert, Entity: f.Entity, Attr: f.Attribute, Value: f.Value,
		Start: f.Validity.Start, End: f.Validity.End,
		Derived: f.Derived, Source: f.Source,
	})
}

func (l *Log) appendRetract(entity, attr string, at temporal.Instant) error {
	return l.append(logRecord{Op: opRetract, Entity: entity, Attr: attr, At: at})
}

func (l *Log) appendPutBi(f *element.Fact) error {
	return l.append(logRecord{
		Op: opPutBi, Entity: f.Entity, Attr: f.Attribute, Value: f.Value,
		Start: f.Validity.Start, End: f.Validity.End, Tx: f.RecordedAt,
		Derived: f.Derived, Source: f.Source,
	})
}

func (l *Log) appendDelete(entity, attr string, w temporal.Interval, tx temporal.Instant) error {
	return l.append(logRecord{
		Op: opDeleteBi, Entity: entity, Attr: attr,
		Start: w.Start, End: w.End, Tx: tx,
	})
}

func (l *Log) appendPutBatch(puts []BatchPut) error {
	return l.append(logRecord{Op: opPutBatch, Puts: puts})
}

// Replay applies every record from r to the store, in order. The store
// should be empty (or a snapshot-restored prefix of the log's history).
// It returns the number of records applied.
func Replay(r io.Reader, s *Store) (int, error) {
	dec := gob.NewDecoder(r)
	n := 0
	for {
		var rec logRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, fmt.Errorf("state: replay record %d: %w", n, err)
		}
		var err error
		switch rec.Op {
		case opPut:
			err = s.Put(rec.Entity, rec.Attr, rec.Value, rec.At)
		case opAssert:
			f := element.NewFact(rec.Entity, rec.Attr, rec.Value,
				temporal.NewInterval(rec.Start, rec.End))
			f.Derived = rec.Derived
			f.Source = rec.Source
			err = s.Assert(f)
		case opRetract:
			err = s.Retract(rec.Entity, rec.Attr, rec.At)
		case opPutBi:
			err = s.apply(writeReq{
				entity: rec.Entity, attr: rec.Attr, value: rec.Value,
				validFrom: rec.Start, hasValidFrom: true,
				validTo: rec.End, hasValidTo: true,
				tx: rec.Tx, hasTx: true,
				derived: rec.Derived, source: rec.Source,
			})
		case opDeleteBi:
			err = s.apply(writeReq{
				entity: rec.Entity, attr: rec.Attr, isDelete: true,
				validFrom: rec.Start, hasValidFrom: true,
				validTo: rec.End, hasValidTo: true,
				tx: rec.Tx, hasTx: true,
			})
		case opPutBatch:
			// Replay applies the frame's writes one at a time: the group
			// commit is a durability optimization, not a semantic unit, and
			// per-key write order is preserved within the frame.
			for _, p := range rec.Puts {
				if err = s.Put(p.Entity, p.Attr, p.Value, p.At); err != nil {
					break
				}
			}
		default:
			err = fmt.Errorf("state: unknown op %d", rec.Op)
		}
		if err != nil {
			return n, fmt.Errorf("state: replay record %d: %w", n, err)
		}
		n++
	}
}

// ReplayFile replays a log file into the store.
func ReplayFile(path string, s *Store) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("state: open log: %w", err)
	}
	defer f.Close()
	return Replay(f, s)
}

// snapshotRecord is the wire format of one fact record in a snapshot.
type snapshotRecord struct {
	Entity       string
	Attr         string
	Value        element.Value
	Start        temporal.Instant
	End          temporal.Instant
	RecordedAt   temporal.Instant
	SupersededAt temporal.Instant
	Derived      bool
	Source       string
}

// WriteSnapshot serializes every record in the store to w — including
// versions superseded by retroactive corrections, so transaction-time
// queries survive recovery. A snapshot plus the log suffix written after
// it reconstructs the store; snapshots are the compaction mechanism for
// the log. The record set is one consistent cut pinned at the transaction
// clock's high-water mark, gathered lock-free from the published heads —
// serializing a large store no longer stalls writers.
func (s *Store) WriteSnapshot(w io.Writer) error {
	return s.writeSnapshotAt(w, s.pinBarrier())
}

// writeSnapshotAt serializes the cut believed at tt (Snapshot.WriteTo
// pins a handle's instant; WriteSnapshot pins the clock).
func (s *Store) writeSnapshotAt(w io.Writer, tt temporal.Instant) error {
	enc := gob.NewEncoder(w)
	facts := s.allRecordsAt(tt)
	if err := enc.Encode(len(facts)); err != nil {
		return fmt.Errorf("state: snapshot header: %w", err)
	}
	for _, f := range facts {
		rec := snapshotRecord{
			Entity: f.Entity, Attr: f.Attribute, Value: f.Value,
			Start: f.Validity.Start, End: f.Validity.End,
			RecordedAt: f.RecordedAt, SupersededAt: f.SupersededAt,
			Derived: f.Derived, Source: f.Source,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("state: snapshot record: %w", err)
		}
	}
	return nil
}

// allRecordsAt clones every record of the cut believed at tt, in
// deterministic key order, preserving per-lineage recording order. The
// gather is lock-free and the per-lineage cut reconstruction is
// recordsAt's: records recorded after the pin are excluded, and a belief
// interval closed after the pin is restored to open — the clone set is
// exactly the bitemporal state as of tt.
func (s *Store) allRecordsAt(tt temporal.Instant) []*element.Fact {
	return s.scanAll(func(h *head, out []*element.Fact) []*element.Fact {
		return recordsAt(h, tt, out)
	})
}

// ReadSnapshot loads a snapshot into an empty store.
func ReadSnapshot(r io.Reader, s *Store) error {
	dec := gob.NewDecoder(r)
	var n int
	if err := dec.Decode(&n); err != nil {
		return fmt.Errorf("state: snapshot header: %w", err)
	}
	for i := 0; i < n; i++ {
		var rec snapshotRecord
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("state: snapshot record %d: %w", i, err)
		}
		f := element.NewFact(rec.Entity, rec.Attr, rec.Value,
			temporal.NewInterval(rec.Start, rec.End))
		f.RecordedAt = rec.RecordedAt
		f.SupersededAt = rec.SupersededAt
		f.Derived = rec.Derived
		f.Source = rec.Source
		if err := s.loadRecord(f); err != nil {
			return fmt.Errorf("state: snapshot record %d: %w", i, err)
		}
	}
	return nil
}

// loadRecord inserts a record during snapshot load, bypassing the log and
// watchers. Records arrive in per-lineage recording order; believed ones
// additionally join the belief slices, which must stay disjoint. Each
// record publishes a successor head, exactly like a live mutation.
func (s *Store) loadRecord(f *element.Fact) error {
	sh := s.shardFor(f.Entity, f.Attribute)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	l := sh.lineage(f.Key(), true)
	h := l.head.Load()
	nh := &head{txOrdered: h.txOrdered, maxTx: h.maxTx}
	if n := len(h.records); n > 0 && f.RecordedAt < h.records[n-1].RecordedAt {
		nh.txOrdered = false
	}
	if f.RecordedAt > nh.maxTx {
		nh.maxTx = f.RecordedAt
	}
	nh.records = append(h.records, f)
	sh.records.Add(1)
	s.clock.observe(f.RecordedAt)
	if f.Superseded() {
		s.clock.observe(f.SupersededAt)
		if f.SupersededAt > nh.maxTx {
			nh.maxTx = f.SupersededAt
		}
		nh.closed, nh.open = h.closed, h.open
		l.head.Store(nh)
		return nil
	}
	if over := h.overlappingLive(f.Validity); len(over) > 0 {
		nh.closed, nh.open = h.closed, h.open
		l.head.Store(nh)
		return fmt.Errorf("state: snapshot version disorder for %s: %s overlaps %s",
			f.Key(), f.Validity, over[0].Validity)
	}
	if f.IsCurrent() {
		nh.closed, nh.open = h.closed, f
	} else {
		i := sort.Search(len(h.closed), func(k int) bool {
			return h.closed[k].Validity.Start >= f.Validity.Start
		})
		nc := make([]*element.Fact, 0, len(h.closed)+1)
		nc = append(nc, h.closed[:i]...)
		nc = append(nc, f)
		nc = append(nc, h.closed[i:]...)
		nh.closed, nh.open = nc, h.open
	}
	sh.versions.Add(1)
	l.head.Store(nh)
	return nil
}
