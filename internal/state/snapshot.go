// Snapshot handles: cheap immutable views over one consistent cut of the
// whole store, pinned at a transaction-clock instant.
//
// The snapshot-epoch protocol has no freeze step. Every lineage publishes
// an immutable head through an atomic pointer (see head in store.go) and
// every record carries its belief interval [RecordedAt, SupersededAt), so
// "the cut at transaction time T" is fully determined by T alone: a
// handle is just {store, T}. Readers load whatever heads are current and
// filter by visibility at T — records committed after the pin carry later
// transaction times and drop out, belief intervals closed after the pin
// still satisfy SupersededAt > T. Old heads a reader has already loaded
// stay alive by ordinary garbage collection until every such reader
// drains; nothing blocks, nothing is copied, and writers never wait.
//
// The one caveat, inherited from the bitemporal model itself: a writer
// that pins an explicit transaction time at or before an in-flight pin
// (WithTransactionTime, or the positional surface's application times)
// can commit "into" an already-pinned cut. Default-clock writes cannot —
// the clock reserve makes their transaction times strictly later than
// every instant already handed to a reader.

package state

import (
	"io"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Reader is the read-only temporal query surface shared by the live
// store, the bitemporal DB adapter, and pinned snapshot handles. The
// query layer (internal/query) evaluates against a Reader, so on-demand
// queries can run on a snapshot handle — off the lock path entirely —
// while the engine keeps ingesting.
type Reader interface {
	// Find returns the version of (entity, attr) selected by the read
	// options.
	Find(entity, attr string, opts ...ReadOpt) (*element.Fact, bool)
	// List returns one selected version per key — or every matching
	// version with AllVersions/DuringValidTime — sorted by (attribute,
	// entity, validity start).
	List(opts ...ReadOpt) []*element.Fact
}

var (
	_ Reader = (*Store)(nil)
	_ Reader = (*DB)(nil)
	_ Reader = (*Snapshot)(nil)
)

// Snapshot is an immutable handle over one consistent multi-shard cut of
// the store: the state as believed at the pinned transaction-clock
// instant. Taking a handle is O(1) — it captures the pin, not the data —
// and reading through it acquires no shard locks, so arbitrarily long
// analytical reads never stall ingestion. Retroactive corrections
// recorded after the pin are invisible through the handle.
//
// Compaction is the one operation that can reach into a pin: records
// compacted away are gone for handles pinned before the sweep (exactly
// as they are for AsOfTransactionTime reads), though gathers already in
// flight keep the heads they have loaded.
type Snapshot struct {
	s  *Store
	at temporal.Instant
}

// Snapshot returns a handle pinned at the transaction clock's current
// high-water mark: one consistent cut containing every committed write.
// Taking the handle runs the publication barrier (one O(1) lock
// handshake per shard, never held across anything), so every write at or
// before the pin is already published and re-reads through the handle
// are repeatable.
func (s *Store) Snapshot() *Snapshot { return &Snapshot{s: s, at: s.pinBarrier()} }

// SnapshotAt returns a handle pinned at an explicit transaction-time
// instant, without the publication barrier: the caller asserts that
// writes at or before t have quiesced. Callers that coordinate pins with
// their own clock (the engine pins watermarks between micro-batches)
// should AdvanceClock(t) first, so no later default-clock write can
// commit at or before the pin.
func (s *Store) SnapshotAt(t temporal.Instant) *Snapshot {
	return &Snapshot{s: s, at: t}
}

// At reports the handle's pinned transaction-time instant.
func (sn *Snapshot) At() temporal.Instant { return sn.at }

// clamp pins cfg's belief instant to the handle: reads default to the
// pin, and an explicit AsOfTransactionTime may only look further into
// the past, never past the pin.
func (sn *Snapshot) clamp(cfg readCfg) readCfg {
	if !cfg.hasTxAt || cfg.txAt > sn.at {
		cfg.txAt, cfg.hasTxAt = sn.at, true
	}
	return cfg
}

// Find returns the version of (entity, attr) selected by the read options
// within the pinned cut.
func (sn *Snapshot) Find(entity, attr string, opts ...ReadOpt) (*element.Fact, bool) {
	return sn.s.findClone(entity, attr, sn.clamp(newReadCfg(opts)))
}

// FindSpec is Find with a pre-resolved ReadSpec, clamped to the pin.
func (sn *Snapshot) FindSpec(entity, attr string, spec ReadSpec) (*element.Fact, bool) {
	return sn.s.findClone(entity, attr, sn.clamp(spec.cfg()))
}

// FindValue returns just the value of the version FindSpec would select —
// the allocation-free point read, against the pinned cut.
func (sn *Snapshot) FindValue(entity, attr string, spec ReadSpec) (element.Value, bool) {
	if f := sn.s.findPick(entity, attr, sn.clamp(spec.cfg())); f != nil {
		return f.Value, true
	}
	return element.Null, false
}

// List returns the cut's versions selected by the read options, exactly
// as Store.List would at the pinned instant.
func (sn *Snapshot) List(opts ...ReadOpt) []*element.Fact {
	return sn.s.gatherList(sn.clamp(newReadCfg(opts)))
}

// Scan returns clones of every version believed at the pin matching pred,
// sorted by (attribute, entity, start). A nil pred matches all.
func (sn *Snapshot) Scan(pred func(*element.Fact) bool) []*element.Fact {
	return sn.s.scanAt(sn.at, pred)
}

// History returns the version history of one key as believed at the pin:
// by default the versions believed at the pinned instant in validity
// order; with AllVersions the audit trail of the cut — superseded
// records included — in recording order, with belief intervals closed
// after the cut restored to open (the key-level analogue of
// WriteSnapshot). An explicit AsOfTransactionTime moves the cut further
// into the past, exactly as it does on Store.History.
func (sn *Snapshot) History(entity, attr string, opts ...ReadOpt) []*element.Fact {
	return sn.s.history(entity, attr, sn.clamp(newReadCfg(opts)))
}

// WriteSnapshot serializes the pinned cut in the snapshot file format
// (see Store.WriteSnapshot): every record believed at the pin, with
// belief intervals closed after the pin restored to open. ReadSnapshot
// of the result reproduces the cut exactly.
func (sn *Snapshot) WriteSnapshot(w io.Writer) error {
	return sn.s.writeSnapshotAt(w, sn.at)
}

// View is a read-only, point-in-time view of the store along both time
// axes: reads resolve as of instant t in valid time AND transaction time,
// so a View is immutable even under retroactive corrections recorded
// later — the engine's Snapshot interaction policy is built on this.
// Views are cheap: like Snapshot handles they borrow the store's
// published heads rather than copying anything, and since the
// snapshot-epoch refactor their multi-key reads (ByAttribute, All) run
// entirely lock-free.
type View struct {
	store *Store
	at    temporal.Instant
}

// ViewAt returns a read-only view of the state as believed and valid at t.
// Callers that coordinate views with their own clock (the engine pins
// views at watermarks) should AdvanceClock(t) first, so no later
// default-clock write can commit at or before the view instant.
func (s *Store) ViewAt(t temporal.Instant) *View { return &View{store: s, at: t} }

// At reports the view's instant.
func (v *View) At() temporal.Instant { return v.at }

// Get returns the version of (entity, attr) valid at the view instant.
func (v *View) Get(entity, attr string) (*element.Fact, bool) {
	return v.store.Find(entity, attr, AsOfValidTime(v.at), AsOfTransactionTime(v.at))
}

// ByAttribute returns all facts for attr valid at the view instant.
func (v *View) ByAttribute(attr string) []*element.Fact {
	return v.store.List(WithAttribute(attr), AsOfValidTime(v.at), AsOfTransactionTime(v.at))
}

// All returns every fact valid at the view instant.
func (v *View) All() []*element.Fact {
	return v.store.List(AsOfValidTime(v.at), AsOfTransactionTime(v.at))
}
