package state

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

// TestSnapshotPinsBelief is the snapshot-pinning contract: a handle taken
// before a retroactive correction still returns the pre-correction
// belief, for point reads, scans, and the serialized cut alike.
func TestSnapshotPinsBelief(t *testing.T) {
	st := NewStore()
	db := st.DB()
	if err := db.Put("ann", "position", element.String("hall"),
		WithValidTime(10), WithTransactionTime(10)); err != nil {
		t.Fatal(err)
	}

	snap := st.Snapshot()
	if snap.At() != 10 {
		t.Fatalf("pin at %v, want 10", snap.At())
	}

	// Retroactive correction recorded after the pin: ann was in the vault
	// over [12, 18) all along — but the handle must not believe it.
	if err := db.Put("ann", "position", element.String("vault"),
		WithValidTime(12), WithEndValidTime(18)); err != nil {
		t.Fatal(err)
	}

	if f, ok := st.Find("ann", "position", AsOfValidTime(15)); !ok || f.Value.MustString() != "vault" {
		t.Fatalf("live store should believe the correction, got %v", f)
	}
	if f, ok := snap.Find("ann", "position", AsOfValidTime(15)); !ok || f.Value.MustString() != "hall" {
		t.Fatalf("pinned handle leaked the correction: %v", f)
	}
	if got := snap.List(WithAttribute("position"), AsOfValidTime(15)); len(got) != 1 || got[0].Value.MustString() != "hall" {
		t.Fatalf("pinned List leaked the correction: %v", got)
	}
	if got := snap.Scan(nil); len(got) != 1 || !got[0].IsCurrent() {
		t.Fatalf("pinned Scan: %v", got)
	}
	if got := snap.History("ann", "position"); len(got) != 1 || got[0].Validity != temporal.Since(10) {
		t.Fatalf("pinned History: %v", got)
	}
	// AllVersions through the handle is the cut's audit trail: only the
	// records recorded by the pin, with post-pin supersessions undone —
	// while the live store's trail carries the correction and remnants.
	if got := snap.History("ann", "position", AllVersions()); len(got) != 1 || got[0].Superseded() {
		t.Fatalf("pinned AllVersions history: %v", got)
	}
	if got := st.History("ann", "position", AllVersions()); len(got) != 4 {
		t.Fatalf("live AllVersions history: %d records, want 4", len(got))
	}
	// AllVersions composed with an explicit earlier SYSTEM TIME agrees
	// between the handle and the live store (the cut at min(tt, pin)).
	snapAudit := fmt.Sprint(snap.History("ann", "position", AllVersions(), AsOfTransactionTime(10)))
	liveAudit := fmt.Sprint(st.History("ann", "position", AllVersions(), AsOfTransactionTime(10)))
	if snapAudit != liveAudit {
		t.Fatalf("audit cut diverges: snap %s live %s", snapAudit, liveAudit)
	}

	// An explicit SYSTEM TIME deeper in the past composes; one past the
	// pin clamps to the pin.
	if _, ok := snap.Find("ann", "position", AsOfTransactionTime(5)); ok {
		t.Error("belief before the first write should be empty")
	}
	if f, ok := snap.Find("ann", "position", AsOfValidTime(15), AsOfTransactionTime(temporal.Forever-1)); !ok || f.Value.MustString() != "hall" {
		t.Fatalf("future systime must clamp to the pin, got %v", f)
	}

	// The serialized cut restores to the pre-correction belief.
	var buf bytes.Buffer
	if err := snap.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := ReadSnapshot(&buf, restored); err != nil {
		t.Fatal(err)
	}
	if f, ok := restored.Find("ann", "position", AsOfValidTime(15)); !ok || f.Value.MustString() != "hall" {
		t.Fatalf("restored cut leaked the correction: %v", f)
	}
	if got := restored.Stats().Records; got != 1 {
		t.Fatalf("restored cut has %d records, want 1", got)
	}
}

// TestSnapshotCutIsImmutableUnderWrites re-reads one handle across a
// stream of later default-clock writes: every re-read must render the
// identical cut.
func TestSnapshotCutIsImmutableUnderWrites(t *testing.T) {
	st := NewStore()
	db := st.DB()
	for i := 0; i < 64; i++ {
		if err := db.Put(fmt.Sprintf("e%02d", i%16), "v", element.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := st.Snapshot()
	before := fmt.Sprint(snap.List(WithAttribute("v")))
	for i := 0; i < 64; i++ {
		if err := db.Put(fmt.Sprintf("e%02d", i%16), "v", element.Int(int64(1000+i))); err != nil {
			t.Fatal(err)
		}
		if err := db.Delete(fmt.Sprintf("e%02d", (i+7)%16), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if after := fmt.Sprint(snap.List(WithAttribute("v"))); after != before {
		t.Fatalf("pinned cut changed under writes:\nbefore %s\nafter  %s", before, after)
	}
}

// TestListLockAllEquivalence pins the benchmark baseline to the
// production read path: on a quiescent store the lock-free List and the
// lock-all gather return identical results for every option shape.
func TestListLockAllEquivalence(t *testing.T) {
	st := NewStore()
	db := st.DB()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1500; i++ {
		entity := fmt.Sprintf("e%02d", rng.Intn(32))
		attr := []string{"position", "badge"}[rng.Intn(2)]
		tx := temporal.Instant(i + 1)
		switch rng.Intn(4) {
		case 0:
			from := temporal.Instant(rng.Intn(i + 1))
			if err := db.Put(entity, attr, element.Int(int64(i)),
				WithValidTime(from),
				WithEndValidTime(from+1+temporal.Instant(rng.Intn(20))),
				WithTransactionTime(tx)); err != nil {
				t.Fatal(err)
			}
		default:
			if err := db.Put(entity, attr, element.Int(int64(i)),
				WithValidTime(tx), WithTransactionTime(tx)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, opts := range [][]ReadOpt{
		nil,
		{WithAttribute("position")},
		{AsOfValidTime(700)},
		{AsOfValidTime(700), AsOfTransactionTime(900)},
		{AllVersions()},
		{DuringValidTime(100, 800)},
		{WithAttribute("badge"), AllVersions(), AsOfTransactionTime(600)},
	} {
		got := fmt.Sprint(st.List(opts...))
		want := fmt.Sprint(st.ListLockAll(opts...))
		if got != want {
			t.Fatalf("List diverges from ListLockAll for %d opts:\n%s\nvs\n%s", len(opts), got, want)
		}
	}
}

// TestPerShardCompactionScheduling exercises the growth-triggered
// per-shard sweeps: with a CompactionPolicy installed, history prunes
// itself as writes accumulate — no store-wide CompactBefore call — and
// the current belief survives.
func TestPerShardCompactionScheduling(t *testing.T) {
	st := NewStore()
	var horizon atomic.Int64
	st.SetCompactionPolicy(&CompactionPolicy{
		GrowthThreshold: 64,
		Horizon:         func() temporal.Instant { return temporal.Instant(horizon.Load()) },
	})
	const keys = 64
	const ops = 8192
	for i := 0; i < ops; i++ {
		at := temporal.Instant(i + 1)
		horizon.Store(int64(at) - 256)
		key := fmt.Sprintf("k%02d", i%keys)
		if err := st.Put(key, "v", element.Int(int64(i)), at); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	// Each put appends ~2 records (remnant + version); without compaction
	// that is ~2*ops. The scheduler must have kept the store far below it.
	if stats.Records > ops {
		t.Fatalf("auto-compaction did not engage: %d records after %d puts", stats.Records, ops)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%02d", k)
		want := int64(ops - keys + k)
		f, ok := st.Find(key, "v")
		if !ok || f.Value.MustInt() != want {
			t.Fatalf("open version of %s lost by compaction: got %v want %d", key, f, want)
		}
	}

	// Removing the policy stops the sweeps.
	st.SetCompactionPolicy(nil)
	before := st.Stats().Records
	for i := 0; i < 512; i++ {
		at := temporal.Instant(ops + i + 1)
		if err := st.Put(fmt.Sprintf("k%02d", i%keys), "v", element.Int(int64(i)), at); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Stats().Records; got <= before {
		t.Fatalf("records should grow once the policy is removed: %d -> %d", before, got)
	}
}

// TestFindOutOfOrderTransactionTimes pins the !txOrdered fallback of the
// belief-pinned read path: with explicit out-of-order transaction times,
// more than one current-shaped version can be visible at a historical
// instant, so the read must resolve by latest RecordedAt — the live
// fast path is only sound for tx-ordered lineages (or pins at/after
// every write).
func TestFindOutOfOrderTransactionTimes(t *testing.T) {
	st := NewStore()
	db := st.DB()
	if err := db.Put("k", "a", element.Int(1), WithValidTime(1), WithTransactionTime(10)); err != nil {
		t.Fatal(err)
	}
	if err := db.Put("k", "a", element.Int(2), WithValidTime(1), WithEndValidTime(50),
		WithTransactionTime(30)); err != nil {
		t.Fatal(err)
	}
	// Out-of-order: recorded at 5, AFTER the tx-30 write.
	if err := db.Put("k", "a", element.Int(3), WithValidTime(1), WithTransactionTime(5)); err != nil {
		t.Fatal(err)
	}
	// Current belief: the last write wins.
	if f, ok := st.Find("k", "a"); !ok || f.Value.MustInt() != 3 {
		t.Fatalf("current belief: %v %v", f, ok)
	}
	// Belief at 15: both the tx-10 and tx-5 versions are visible and
	// current-shaped; the latest-recorded one (tx 10) is the belief.
	if f, ok := st.Find("k", "a", AsOfTransactionTime(15)); !ok || f.Value.MustInt() != 1 {
		t.Fatalf("belief at 15: %v %v", f, ok)
	}
	// A pin at or after every write may use the live resolution.
	if f, ok := st.Find("k", "a", AsOfTransactionTime(40)); !ok || f.Value.MustInt() != 3 {
		t.Fatalf("belief at 40: %v %v", f, ok)
	}
}
