package state

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

func TestLogReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewStore()
	s.AttachLog(NewLog(&buf))

	s.Put("ann", "position", element.String("hall"), 10)
	s.Put("ann", "position", element.String("lab"), 20)
	s.Retract("ann", "position", 30)
	f := element.NewFact("p1", "class", element.String("books"), temporal.NewInterval(0, 50))
	f.Derived = true
	f.Source = "taxonomy"
	s.Assert(f)

	restored := NewStore()
	n, err := Replay(&buf, restored)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d records", n)
	}
	assertStoresEqual(t, s, restored)
	got, ok := restored.ValidAt("p1", "class", 10)
	if !ok || !got.Derived || got.Source != "taxonomy" {
		t.Fatalf("derived metadata lost: %v", got)
	}
}

func TestLogFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.log")
	l, err := CreateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	s.AttachLog(l)
	s.Put("e", "a", element.Int(42), 7)
	if l.Len() != 1 {
		t.Errorf("log length: %d", l.Len())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if _, err := ReplayFile(path, restored); err != nil {
		t.Fatal(err)
	}
	if f, ok := restored.Current("e", "a"); !ok || f.Value.MustInt() != 42 {
		t.Fatalf("restored: %v %v", f, ok)
	}
	if _, err := ReplayFile(filepath.Join(dir, "missing.log"), restored); err == nil {
		t.Error("missing file should error")
	}
}

func TestReplayCorruptLog(t *testing.T) {
	if _, err := Replay(bytes.NewReader([]byte("garbage")), NewStore()); err == nil {
		t.Error("corrupt log should error")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	for i := int64(0); i < 20; i++ {
		s.Put("e", "a", element.Int(i), temporal.Instant(i))
	}
	s.Put("x", "b", element.Float(2.5), 3)
	s.Retract("x", "b", 9)

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := ReadSnapshot(&buf, restored); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, s, restored)
}

func TestSnapshotPlusLogSuffixRecovery(t *testing.T) {
	// The compaction protocol: snapshot at time T, then replay the log
	// suffix of mutations after T.
	s := NewStore()
	s.Put("e", "a", element.Int(1), 0)
	s.Put("e", "a", element.Int(2), 10)

	var snap bytes.Buffer
	if err := s.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	var suffix bytes.Buffer
	s.AttachLog(NewLog(&suffix))
	s.Put("e", "a", element.Int(3), 20)
	s.Put("f", "a", element.Int(9), 25)

	restored := NewStore()
	if err := ReadSnapshot(&snap, restored); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(&suffix, restored); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, s, restored)
}

func TestReadSnapshotCorrupt(t *testing.T) {
	if err := ReadSnapshot(bytes.NewReader([]byte("junk")), NewStore()); err == nil {
		t.Error("corrupt snapshot should error")
	}
}

func TestLogReplayRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		var buf bytes.Buffer
		s := NewStore()
		s.AttachLog(NewLog(&buf))
		clock := map[string]temporal.Instant{}
		for op := 0; op < 200; op++ {
			e := string(rune('a' + rng.Intn(5)))
			at := clock[e] + temporal.Instant(1+rng.Intn(10))
			clock[e] = at
			switch rng.Intn(3) {
			case 0, 1:
				s.Put(e, "v", element.Int(rng.Int63n(1000)), at)
			case 2:
				s.Retract(e, "v", at) // may legitimately fail; not logged then? it IS logged only on success
			}
		}
		restored := NewStore()
		if _, err := Replay(&buf, restored); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertStoresEqual(t, s, restored)
	}
}

func TestNoLogOnFailedMutation(t *testing.T) {
	var buf bytes.Buffer
	s := NewStore()
	l := NewLog(&buf)
	s.AttachLog(l)
	if err := s.Retract("nope", "a", 5); err == nil {
		t.Fatal("expected error")
	}
	if l.Len() != 0 {
		t.Error("failed mutation must not be logged")
	}
}

func assertStoresEqual(t *testing.T, want, got *Store) {
	t.Helper()
	wf, gf := want.Scan(nil), got.Scan(nil)
	if len(wf) != len(gf) {
		t.Fatalf("fact count: want %d got %d", len(wf), len(gf))
	}
	for i := range wf {
		if wf[i].Entity != gf[i].Entity || wf[i].Attribute != gf[i].Attribute ||
			!wf[i].Value.Equal(gf[i].Value) || wf[i].Validity != gf[i].Validity ||
			wf[i].Derived != gf[i].Derived || wf[i].Source != gf[i].Source {
			t.Fatalf("fact %d: want %v got %v", i, wf[i], gf[i])
		}
	}
}

func TestMain(m *testing.M) { os.Exit(m.Run()) }
