// Group-committed micro-batch writes. The engine's parallel ingestion
// pipeline buffers the state updates of one micro-batch (the elements
// between two watermarks) and flushes them here, so the store pays one
// lock acquisition per touched shard and one WAL append per batch instead
// of one of each per element. Head publication amortizes the same way:
// each entry swaps exactly one lineage head (the O(1) shared-prefix
// append of commit's fast path), with no per-entry lock traffic.

package state

import (
	"fmt"

	"repro/internal/element"
	"repro/internal/temporal"
)

// BatchPut is one replace-semantics write in a PutBatch micro-batch: the
// same semantics as the positional Put(entity, attr, value, at) — the
// current version is terminated at At and a new version valid over
// [At, Forever) is asserted with transaction time At.
type BatchPut struct {
	Entity string
	Attr   string
	Value  element.Value
	At     temporal.Instant
}

// PutBatch applies a micro-batch of positional Puts as one group commit.
// Entries are bucketed by shard; each shard's write lock is taken exactly
// once and its entries applied in slice order, so per-key ordering (and
// the per-key monotonicity rule of Put) is exactly that of an equivalent
// loop of Puts. The WAL receives a single framed record carrying every
// applied entry (replay-compatible with per-element logs: replay applies
// the frame's writes one at a time).
//
// Two deliberate relaxations versus the per-element path, both in
// exchange for the amortized locking:
//
//   - The WAL append happens after the mutations commit (the per-element
//     path logs first), so a log-write failure leaves the store ahead of
//     the log; the error is returned so callers can fail the batch.
//   - Watchers observe the batch's changes grouped by shard (in shard
//     index order, entry order within a shard), not interleaved in global
//     entry order.
//
// On a validation error (e.g. ErrOutOfOrder) the batch stops and the
// error is returned. Application is shard-major, so the applied set is
// NOT the slice prefix a failed loop of Puts would leave: every entry of
// lower-indexed shards (including entries after the failing one in slice
// order) plus the failing shard's own prefix is applied, the rest is
// not. Per-key the applied writes are always a prefix of that key's
// entries, and the WAL frame records exactly the applied entries, so
// replay reproduces the post-error state; callers wanting more than
// per-key prefix consistency must treat a batch error as fatal rather
// than re-issue a suffix.
func (s *Store) PutBatch(puts []BatchPut) error {
	if len(puts) == 0 {
		return nil
	}
	ws, bws, log := s.observers()
	record := len(ws) > 0 || len(bws) > 0
	perShard := make([][]int, len(s.shards))
	for i := range puts {
		si := shardIndex(puts[i].Entity, puts[i].Attr, s.shardMask)
		perShard[si] = append(perShard[si], i)
	}

	var (
		changes  []Change
		bufp     *[]Change
		firstErr error
		applied  = make([]bool, len(puts))
		nApplied int
	)
	if record {
		bufp = takeChangeBuf()
		changes = *bufp
	}
	for si, idxs := range perShard {
		if len(idxs) == 0 {
			continue
		}
		sh := s.shards[si]
		sh.mu.Lock()
		for _, i := range idxs {
			p := &puts[i]
			w := temporal.NewInterval(p.At, temporal.Forever)
			key := element.FactKey{Entity: p.Entity, Attribute: p.Attr}
			if w.IsEmpty() {
				firstErr = fmt.Errorf("state: batch put %s: empty validity %s", key, w)
				break
			}
			l := sh.byKey[key]
			if l == nil {
				// An evicted key must be faulted back in before the batch
				// mutates it — same rule as the per-element path (apply).
				l = s.faultIn(sh, key)
			}
			if l == nil {
				l = sh.lineage(key, true)
			}
			s.touch(l)
			if last := l.head.Load().lastLive(); last != nil && p.At < last.Validity.Start {
				firstErr = fmt.Errorf("%w: %s at %s before %s",
					ErrOutOfOrder, key, p.At, last.Validity.Start)
				break
			}
			f := element.NewFact(p.Entity, p.Attr, p.Value, w)
			f.RecordedAt = p.At
			f.SupersededAt = temporal.Forever
			s.clock.observe(p.At)
			changes = sh.commit(l, f, w, p.At, changes, record)
			applied[i] = true
			nApplied++
		}
		sh.mu.Unlock()
		s.maybeCompact(sh)
		if firstErr != nil {
			break
		}
	}

	if log != nil && nApplied > 0 {
		frame := puts
		if nApplied < len(puts) {
			frame = make([]BatchPut, 0, nApplied)
			for i := range puts {
				if applied[i] {
					frame = append(frame, puts[i])
				}
			}
		}
		if err := log.appendPutBatch(frame); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	notifyAll(ws, bws, changes)
	if bufp != nil {
		putChangeBuf(bufp, changes)
	}
	return firstErr
}
