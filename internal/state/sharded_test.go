package state

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

// TestShardCountRounding pins the shard-count policy: powers of two, a
// single-lock layout at 1, and a GOMAXPROCS-scaled default.
func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		if got := NewStoreWithShards(tc.in).ShardCount(); got != tc.want {
			t.Errorf("NewStoreWithShards(%d).ShardCount() = %d, want %d", tc.in, got, tc.want)
		}
	}
	def := NewStore().ShardCount()
	if def < 8 || def&(def-1) != 0 {
		t.Errorf("default shard count %d: want a power of two >= 8", def)
	}
	if got := NewStore().Stats().Shards; got != def {
		t.Errorf("Stats().Shards = %d, want %d", got, def)
	}
}

// TestShardDistribution checks that FNV-1a spreads realistic lineage keys
// across shards instead of piling them onto a few stripes.
func TestShardDistribution(t *testing.T) {
	const shards = 16
	st := NewStoreWithShards(shards)
	counts := make([]int, shards)
	const keys = 4096
	for i := 0; i < keys; i++ {
		counts[shardIndex(fmt.Sprintf("entity-%d", i), "position", st.shardMask)]++
	}
	// Expect roughly keys/shards per stripe; flag anything further than
	// 2x from uniform, which FNV-1a comfortably beats on this key shape.
	for i, c := range counts {
		if c < keys/shards/2 || c > keys/shards*2 {
			t.Errorf("shard %d holds %d of %d keys (uniform would be %d)", i, c, keys, keys/shards)
		}
	}
}

// TestShardedEquivalence is the differential test for the shard refactor:
// the same deterministic mixed workload applied to a single-lock store
// and a many-shard store must produce bit-identical bitemporal state —
// records, belief intervals, stats, and query results.
func TestShardedEquivalence(t *testing.T) {
	run := func(st *Store) {
		db := st.DB()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 2000; i++ {
			entity := fmt.Sprintf("e%03d", rng.Intn(64))
			attr := []string{"position", "badge", "load"}[rng.Intn(3)]
			tx := temporal.Instant(i + 1)
			switch rng.Intn(5) {
			case 0: // retroactive bounded correction
				from := temporal.Instant(rng.Intn(i + 1))
				if err := db.Put(entity, attr, element.Int(int64(i)),
					WithValidTime(from), WithEndValidTime(from+temporal.Instant(1+rng.Intn(40))),
					WithTransactionTime(tx)); err != nil {
					t.Fatalf("retro put: %v", err)
				}
			case 1: // retroactive delete
				from := temporal.Instant(rng.Intn(i + 1))
				if err := db.Delete(entity, attr, WithValidTime(from),
					WithEndValidTime(from+temporal.Instant(1+rng.Intn(20))),
					WithTransactionTime(tx)); err != nil {
					t.Fatalf("retro delete: %v", err)
				}
			default: // forward replace
				if err := db.Put(entity, attr, element.Int(int64(i)),
					WithValidTime(tx), WithTransactionTime(tx)); err != nil {
					t.Fatalf("put: %v", err)
				}
			}
		}
	}
	single := NewStoreWithShards(1)
	sharded := NewStoreWithShards(32)
	run(single)
	run(sharded)
	assertBitemporalEqual(t, single, sharded)

	ss, hs := single.Stats(), sharded.Stats()
	ss.Shards, hs.Shards = 0, 0
	if ss != hs {
		t.Errorf("stats diverge: single %+v sharded %+v", ss, hs)
	}
	if got, want := sharded.List(), single.List(); len(got) != len(want) {
		t.Errorf("List diverges: %d vs %d", len(got), len(want))
	}
	if got, want := sharded.List(AsOfValidTime(500), AsOfTransactionTime(1000)),
		single.List(AsOfValidTime(500), AsOfTransactionTime(1000)); len(got) != len(want) {
		t.Errorf("pinned List diverges: %d vs %d", len(got), len(want))
	}

	// Compaction must agree too (it sweeps shard by shard).
	if got, want := sharded.CompactBefore(800), single.CompactBefore(800); got != want {
		t.Errorf("CompactBefore removed %d on sharded, %d on single", got, want)
	}
	assertBitemporalEqual(t, single, sharded)
}

// TestShardedStress hammers a sharded store from concurrent writers
// (Put/Delete with explicit per-writer transaction times), point readers,
// a compactor, and a wildcard List racing WriteSnapshot. It asserts the
// two properties the shard refactor must preserve under -race:
//
//   - no lost updates: after the run, every key holds the last value its
//     writer put (writers own disjoint key ranges);
//   - consistent snapshot views: every snapshot taken mid-run restores
//     into a store whose per-key beliefs are ordered and disjoint, and
//     List never observes a torn per-key state.
func TestShardedStress(t *testing.T) {
	st := NewStore()
	db := st.DB()
	const (
		writers      = 4
		keysPerWrite = 32
		ops          = 400
		horizon      = temporal.Instant(1 << 20)
	)

	var writerWG, bgWG sync.WaitGroup
	var stop atomic.Bool
	finals := make([][]int64, writers)

	for w := 0; w < writers; w++ {
		finals[w] = make([]int64, keysPerWrite)
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < ops; i++ {
				k := i % keysPerWrite
				key := fmt.Sprintf("w%d-k%d", w, k)
				// Per-writer monotonic transaction times keep the run
				// deterministic per lineage; writers interleave freely.
				tx := horizon + temporal.Instant(w*ops+i)
				val := int64(w*ops + i)
				if err := db.Put(key, "v", element.Int(val),
					WithValidTime(temporal.Instant(i)), WithTransactionTime(tx)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				finals[w][k] = val
				if i%7 == 3 {
					// Retroactive delete of a slice of history well below
					// the open version's start.
					if err := db.Delete(key, "v",
						WithValidTime(temporal.Instant(i/2)), WithEndValidTime(temporal.Instant(i/2+1)),
						WithTransactionTime(tx)); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}

	// Point readers: per-key belief must always be ordered and disjoint.
	for r := 0; r < 2; r++ {
		bgWG.Add(1)
		go func(r int) {
			defer bgWG.Done()
			for i := 0; !stop.Load(); i++ {
				key := fmt.Sprintf("w%d-k%d", i%writers, i%keysPerWrite)
				db.Find(key, "v")
				hist := db.History(key, "v")
				for j := 1; j < len(hist); j++ {
					if hist[j-1].Validity.Overlaps(hist[j].Validity) {
						t.Errorf("overlapping belief for %s: %v %v", key, hist[j-1], hist[j])
						return
					}
				}
			}
		}(r)
	}

	// Compactor: prunes far-past history; open versions must survive.
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		for i := 0; !stop.Load(); i++ {
			st.CompactBefore(temporal.Instant(i % 50))
		}
	}()

	// Wildcard List racing WriteSnapshot: every snapshot must restore
	// into a consistent store.
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		for i := 0; !stop.Load(); i++ {
			if all := st.List(WithAttribute("v")); len(all) > writers*keysPerWrite {
				t.Errorf("List saw %d live keys for %d lineages", len(all), writers*keysPerWrite)
				return
			}
			var buf bytes.Buffer
			if err := st.WriteSnapshot(&buf); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			restored := NewStore()
			if err := ReadSnapshot(&buf, restored); err != nil {
				t.Errorf("snapshot restore: %v", err)
				return
			}
			for w := 0; w < writers; w++ {
				for k := 0; k < keysPerWrite; k++ {
					key := fmt.Sprintf("w%d-k%d", w, k)
					hist := restored.History(key, "v")
					for j := 1; j < len(hist); j++ {
						if hist[j-1].Validity.Overlaps(hist[j].Validity) {
							t.Errorf("restored snapshot has overlapping belief for %s", key)
							return
						}
					}
				}
			}
		}
	}()

	writerWG.Wait()
	stop.Store(true)
	bgWG.Wait()

	// No lost updates: every key ends at its writer's last value.
	for w := 0; w < writers; w++ {
		for k := 0; k < keysPerWrite; k++ {
			key := fmt.Sprintf("w%d-k%d", w, k)
			f, ok := db.Find(key, "v")
			if !ok {
				t.Fatalf("key %s lost entirely", key)
			}
			if f.Value.MustInt() != finals[w][k] {
				t.Errorf("lost update on %s: got %d want %d", key, f.Value.MustInt(), finals[w][k])
			}
		}
	}
	if st.Stats().Superseded == 0 {
		t.Error("stress run should leave superseded records")
	}
}
