// Out-of-core residency: the cold-read seam and the working-set
// eviction machinery that let RAM track the hot working set instead of
// total live state.
//
// A ColdSource (the segment backend implements it) answers for lineages
// that are NOT resident in RAM: point reads and histories fall through
// to it key by key (ColdRecords), scans union its durable-only lineages
// into the gather in key order (ColdLineages), and writes to an evicted
// key restore the full record history first (FaultIn) so a later flush
// frame never supersedes history it no longer sees.
//
// Eviction is the inverse of recovery's LoadLineage: EvictToBudget
// removes fully-flushed, least-recently-used lineages from the shard
// maps — their bytes leave RAM entirely; the durable frame remains the
// single copy — and remembers the evicted keys per shard so the write
// path knows to fault them back in. A lineage is evictable only when
// every transaction that touched it is durable (head.maxTx at or before
// the flushed cut): for such a lineage the segment frame holds the
// byte-identical record set, so evicting and re-reading through the
// ColdSource is invisible to every read shape at every pin.
package state

import (
	"sort"

	"repro/internal/element"
	"repro/internal/temporal"
)

// ColdLineage is one durable-only lineage a ColdSource contributes to a
// scan: the key (scans merge by it) and a lazy loader returning the
// lineage's full record set. Load runs only when the merge actually
// reaches the lineage — envelope-pruned or RAM-shadowed entries are
// never read — and may run from a scan worker, so it must be safe for
// concurrent calls with other loaders.
type ColdLineage struct {
	Key  element.FactKey
	Load func() ([]*element.Fact, error)
}

// ColdSource serves reads for lineages that are not resident in RAM —
// evicted by the residency budget or dropped by compaction with their
// durable frames still truthful. The segment backend is the production
// implementation. All methods must be safe for concurrent use and must
// tolerate being asked about keys they do not own (return ok=false /
// no entry).
type ColdSource interface {
	// ColdRecords returns the full record set of one durable-only
	// lineage for a point-shaped (point=true: Find and friends) or
	// history-shaped read. The spec carries the read's temporal
	// selectors so the source may prune against its envelopes; a source
	// unable or unwilling to answer (degraded, no frame, pruned)
	// returns ok=false.
	ColdRecords(key element.FactKey, spec ReadSpec, point bool) ([]*element.Fact, bool)
	// ColdLineages returns the durable-only lineage candidates a scan
	// of the given shape must union with RAM, sorted by (attribute,
	// entity), with frames provably disjoint from the shape or the
	// value bounds already pruned. Entries for keys that are in fact
	// resident are permitted — the merge discards them unloaded.
	ColdLineages(shape ScanShape, bounds ValueBounds) []ColdLineage
	// FaultIn returns the full record set of an evicted key so the
	// write path can reinstall it before mutating. Unlike ColdRecords
	// it never prunes: the caller needs the history, not an answer.
	FaultIn(key element.FactKey) ([]*element.Fact, bool)
}

// coldSourceRef wraps the interface value for atomic publication.
type coldSourceRef struct{ cs ColdSource }

// SetColdSource installs (or, with nil, removes) the store's cold-read
// backend. Install before eviction can occur; reads race-freely observe
// either the old or the new source.
func (s *Store) SetColdSource(cs ColdSource) {
	if cs == nil {
		s.cold.Store(nil)
		return
	}
	s.cold.Store(&coldSourceRef{cs: cs})
}

// coldSource returns the installed ColdSource, nil when none.
func (s *Store) coldSource() ColdSource {
	if ref := s.cold.Load(); ref != nil {
		return ref.cs
	}
	return nil
}

// SetAccessTracking enables recency stamping on point reads and writes,
// the signal EvictToBudget's LRU ordering consumes. Off by default: the
// two atomic operations per read are measurable on the hottest paths,
// so only budgeted stores pay them.
func (s *Store) SetAccessTracking(on bool) {
	s.trackAccess.Store(on)
}

// touch stamps a lineage's access recency when tracking is enabled.
func (s *Store) touch(l *lineage) {
	if s.trackAccess.Load() {
		l.access.Store(s.accessSeq.Add(1))
	}
}

// factOverheadBytes approximates the fixed in-RAM cost of one record:
// the Fact struct itself, its slot in the records slice, and its share
// of head/belief-slice bookkeeping.
const factOverheadBytes = 96

// approxFactBytes estimates the resident size of one record. The
// estimate only needs to be consistent (the same record always costs
// the same), since the budget compares accumulated estimates against a
// configured number, not against the allocator.
func approxFactBytes(f *element.Fact) int64 {
	n := int64(factOverheadBytes + len(f.Entity) + len(f.Attribute) + len(f.Source))
	if s, ok := f.Value.AsString(); ok {
		n += int64(len(s))
	}
	return n
}

// headBytes sums the record estimates of one published head.
func headBytes(h *head) int64 {
	var n int64
	for _, f := range h.records {
		n += approxFactBytes(f)
	}
	return n
}

// ResidentBytes reports the estimated bytes of all RAM-resident records,
// summed from the per-shard atomics without any shard lock.
func (s *Store) ResidentBytes() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.bytes.Load()
	}
	return n
}

// ResidentLineages reports the number of lineages resident in RAM.
func (s *Store) ResidentLineages() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.pub.Load().n
	}
	return n
}

// EvictedCount reports the number of keys currently marked evicted.
func (s *Store) EvictedCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.evicted)
		sh.mu.RUnlock()
	}
	return n
}

// EvictedKeys returns the evicted key set sorted by (attribute, entity)
// — the order the durability manifest records, so recovery reseeds
// deterministically.
func (s *Store) EvictedKeys() []element.FactKey {
	var keys []element.FactKey
	for _, sh := range s.shards {
		sh.mu.RLock()
		for key := range sh.evicted {
			keys = append(keys, key)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(keys, func(i, j int) bool { return coldKeyLess(keys[i], keys[j]) })
	return keys
}

// MarkEvicted seeds the evicted key set — recovery calls it with the
// manifest's evicted keys plus any frames it skipped loading to honor
// the budget. Keys that turn out to be resident are left alone.
func (s *Store) MarkEvicted(keys []element.FactKey) {
	for _, key := range keys {
		sh := s.shardFor(key.Entity, key.Attribute)
		sh.mu.Lock()
		if sh.byKey[key] == nil {
			if sh.evicted == nil {
				sh.evicted = make(map[element.FactKey]bool)
			}
			sh.evicted[key] = true
		}
		sh.mu.Unlock()
	}
}

// EvictToBudget evicts least-recently-used, fully-durable lineages until
// the store's resident byte estimate is at or below budget, returning
// how many lineages were evicted. `durable` is the durability layer's
// flushed cut: only lineages whose every touch (head.maxTx — writes and
// sweep bumps alike) is at or before it are candidates, because only
// for those does a durable frame hold the byte-identical record set.
// Husks (empty heads awaiting their tombstone flush) are never evicted.
//
// The candidate scan is lock-free over the published directories; the
// evictions themselves batch per shard under one write-lock hold, with
// the directory republished before the lock is released — a concurrent
// write faulting the key back in therefore always observes a consistent
// (map, directory) pair. Candidates that were touched between the scan
// and the locked re-check are skipped: they just proved themselves hot.
func (s *Store) EvictToBudget(budget int64, durable temporal.Instant) int {
	if budget < 0 {
		budget = 0
	}
	resident := s.ResidentBytes()
	if resident <= budget {
		return 0
	}
	type candidate struct {
		shard  int
		l      *lineage
		access int64
		size   int64
	}
	var cands []candidate
	for si, sh := range s.shards {
		for _, ls := range sh.pub.Load().byAttr {
			for _, l := range ls {
				h := l.head.Load()
				if len(h.records) == 0 || h.maxTx > durable {
					continue
				}
				cands = append(cands, candidate{shard: si, l: l, access: l.access.Load(), size: headBytes(h)})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].access < cands[j].access })
	need := resident - budget
	byShard := make(map[int][]candidate)
	var sum int64
	for _, c := range cands {
		if sum >= need {
			break
		}
		byShard[c.shard] = append(byShard[c.shard], c)
		sum += c.size
	}
	evicted := 0
	for si, group := range byShard {
		sh := s.shards[si]
		sh.mu.Lock()
		changed := false
		for _, c := range group {
			key := c.l.key
			if sh.byKey[key] != c.l {
				continue
			}
			h := c.l.head.Load()
			if len(h.records) == 0 || h.maxTx > durable || c.l.access.Load() != c.access {
				continue
			}
			delete(sh.byKey, key)
			if sh.evicted == nil {
				sh.evicted = make(map[element.FactKey]bool)
			}
			sh.evicted[key] = true
			sh.records.Add(int64(-len(h.records)))
			sh.versions.Add(int64(-h.nLive()))
			sh.bytes.Add(-headBytes(h))
			changed = true
			evicted++
		}
		if changed {
			sh.publishRebuild()
		}
		sh.mu.Unlock()
	}
	return evicted
}

// faultIn reinstalls an evicted key's record history before a write
// touches it, and clears the evicted mark either way — a key the source
// cannot produce (degraded durability) forfeits its history exactly as
// degraded mode forfeits reads, and the write proceeds on a fresh
// lineage. Callers hold sh.mu and have already missed sh.byKey.
func (s *Store) faultIn(sh *shard, key element.FactKey) *lineage {
	if !sh.evicted[key] {
		return nil
	}
	delete(sh.evicted, key)
	cs := s.coldSource()
	if cs == nil {
		return nil
	}
	records, ok := cs.FaultIn(key)
	if !ok || len(records) == 0 {
		return nil
	}
	nh, err := buildHead(records, true)
	if err != nil {
		return nil
	}
	l := &lineage{key: key}
	l.head.Store(nh)
	if s.trackAccess.Load() {
		l.access.Store(s.accessSeq.Add(1))
	}
	sh.byKey[key] = l
	sh.publishInsert(l)
	sh.records.Add(int64(len(records)))
	sh.versions.Add(int64(nh.nLive()))
	sh.bytes.Add(headBytes(nh))
	s.clock.observe(nh.maxTx)
	return l
}

// coldKeyLess orders keys by (attribute, entity) — the deterministic
// order of every cross-shard gather, which cold merges share.
func coldKeyLess(a, b element.FactKey) bool {
	if a.Attribute != b.Attribute {
		return a.Attribute < b.Attribute
	}
	return a.Entity < b.Entity
}

// coldLineagesFor fetches the scan's durable-only candidates from the
// installed ColdSource, nil when none is installed.
func (s *Store) coldLineagesFor(shape ScanShape, bounds ValueBounds) []ColdLineage {
	cs := s.coldSource()
	if cs == nil {
		return nil
	}
	return cs.ColdLineages(shape, bounds)
}

// coldHead loads one cold candidate and wraps it in a detached head; nil
// when the load fails or yields nothing (a frame the owner retired
// mid-scan reads as absent, matching the read posture of point
// fall-through).
func coldHead(c ColdLineage) *head {
	records, err := c.Load()
	if err != nil || len(records) == 0 {
		return nil
	}
	return detachedHead(records)
}

// shapeOfCfg converts a resolved read configuration to the exported
// scan-shape form ColdSources consume.
func shapeOfCfg(cfg readCfg) ScanShape {
	return ScanShape{
		ValidAt: cfg.validAt, HasValidAt: cfg.hasValidAt,
		During: cfg.validDuring, HasDuring: cfg.hasDuring,
		TxAt: cfg.txAt, HasTxAt: cfg.hasTxAt,
		Attr: cfg.attr, AllVersions: cfg.allVersions,
	}
}

// specOfCfg converts a resolved read configuration to the exported
// point-read spec form ColdSources consume.
func specOfCfg(cfg readCfg) ReadSpec {
	return ReadSpec{
		ValidAt: cfg.validAt, HasValidAt: cfg.hasValidAt,
		TxAt: cfg.txAt, HasTxAt: cfg.hasTxAt,
	}
}
