// Package state implements the state repository of Figure 1 as a
// bitemporal database: every fact version carries a valid-time interval
// (when it held in the modeled world) and a transaction-time interval
// (when the store believed it), with point (as-of) and range (during)
// temporal queries along both axes, change notification, compaction, and
// append-only log persistence with recovery.
//
// The store realizes the paper's §3 proposal — "we model state as a
// collection of data elements annotated with their time of validity" — and
// the §3.3 suggestion to "implement the state component as a temporal
// database, thus enabling the query and retrieval of both the current
// state and historical data".
//
// The unit of storage is a lineage: the record history of one
// (entity, attribute) key. At every transaction time the believed versions
// of a lineage form an ordered, non-overlapping sequence, so exactly one
// version holds at every valid-time point — this is what prevents the
// "visitor simultaneously in multiple rooms" contradictions of §1.
// Retroactive writes supersede (never destroy) the record versions they
// revise: the superseded record keeps its original validity with a closed
// transaction-time interval, and trimmed replacements join the current
// belief. AsOfTransactionTime reads recover any past belief exactly.
//
// The preferred API is the option-based bitemporal surface in db.go
// (Find/List/Put/Delete/History with ReadOpt/WriteOpt). The positional
// methods (Put/Assert/Retract/Current/ValidAt/AsOf/...) are retained as
// thin deprecated wrappers with their historical semantics.
package state

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Errors returned by store mutations.
var (
	// ErrOutOfOrder reports a positional mutation earlier than the key's
	// latest believed version start; the legacy surface requires per-key
	// timestamp-monotonic updates. (The option-based surface instead
	// treats such writes as retroactive corrections.)
	ErrOutOfOrder = errors.New("state: mutation out of timestamp order for key")
	// ErrOverlap reports an explicit-interval assertion that overlaps an
	// existing version of the same key.
	ErrOverlap = errors.New("state: validity interval overlaps existing version")
	// ErrNoCurrent reports a retraction of a key with no open version.
	ErrNoCurrent = errors.New("state: no current version to retract")
)

// ChangeKind classifies a state change event.
type ChangeKind int

// Change kinds delivered to watchers.
const (
	// Asserted: a new version became part of the state.
	Asserted ChangeKind = iota
	// Terminated: an open version's validity was closed (or a version was
	// superseded by a retroactive correction).
	Terminated
)

// String names the change kind.
func (k ChangeKind) String() string {
	if k == Asserted {
		return "asserted"
	}
	return "terminated"
}

// Change describes one state transition, delivered synchronously to
// watchers in mutation order.
type Change struct {
	Kind ChangeKind
	// Fact is the affected version. For Terminated changes the validity
	// reflects the new (closed) interval.
	Fact *element.Fact
	// At is the application time of the transition.
	At temporal.Instant
}

// Watcher observes state changes. Watchers run synchronously after the
// mutation commits (outside the store lock), in mutation order for a
// single mutator; they may read back into the store — standing queries
// (internal/query.RegisterContinuous) rely on this. Under concurrent
// mutators, a watcher may observe store state newer than its Change.
type Watcher func(Change)

// lineage is the bitemporal record history of one key. records holds
// every version ever written, in recording order; live is the
// current-belief subset (SupersededAt == Forever), ordered by validity
// start with pairwise disjoint intervals. The slices share *Fact pointers.
// txOrdered tracks whether records are non-decreasing in RecordedAt —
// always true unless a caller pinned out-of-order explicit transaction
// times — enabling binary-searched belief reads.
type lineage struct {
	key       element.FactKey
	records   []*element.Fact
	live      []*element.Fact
	txOrdered bool
}

// current returns the believed open version, if any. Only the last live
// version can be open because live intervals are disjoint and ordered.
func (l *lineage) current() *element.Fact {
	if n := len(l.live); n > 0 && l.live[n-1].IsCurrent() {
		return l.live[n-1]
	}
	return nil
}

// validAt binary-searches the current belief for the version valid at t.
func (l *lineage) validAt(t temporal.Instant) *element.Fact {
	i := sort.Search(len(l.live), func(k int) bool {
		return l.live[k].Validity.End > t
	})
	if i < len(l.live) && l.live[i].Validity.Contains(t) {
		return l.live[i]
	}
	return nil
}

// pick resolves a point read: the version selected by validAt/txAt.
func (l *lineage) pick(cfg readCfg) *element.Fact {
	if cfg.txAt == nil {
		if cfg.validAt == nil {
			return l.current()
		}
		return l.validAt(*cfg.validAt)
	}
	tt := *cfg.txAt
	matches := func(f *element.Fact) bool {
		if cfg.validAt == nil {
			return f.IsCurrent()
		}
		return f.Validity.Contains(*cfg.validAt)
	}
	if l.txOrdered {
		// Records are ordered by RecordedAt, so the belief at tt lives in
		// the recorded-by-tt prefix; scanning it backwards, the first
		// visible match is the unique believed version (beliefs are
		// disjoint, and anything recorded later in the prefix supersedes
		// earlier overlapping records). For recent tt — the Snapshot
		// policy's per-element reads — the match sits near the prefix end.
		hi := sort.Search(len(l.records), func(k int) bool {
			return l.records[k].RecordedAt > tt
		})
		for i := hi - 1; i >= 0; i-- {
			if f := l.records[i]; f.VisibleAt(tt) && matches(f) {
				return f
			}
		}
		return nil
	}
	var best *element.Fact
	for _, f := range l.records {
		if !f.VisibleAt(tt) || !matches(f) {
			continue
		}
		if best == nil || f.RecordedAt > best.RecordedAt {
			best = f
		}
	}
	return best
}

// believed returns the versions believed at txAt (the current belief when
// txAt is nil), ordered by validity start.
func (l *lineage) believed(txAt *temporal.Instant) []*element.Fact {
	if txAt == nil {
		return l.live
	}
	tt := *txAt
	var out []*element.Fact
	for _, f := range l.records {
		if f.VisibleAt(tt) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Validity.Start != out[j].Validity.Start {
			return out[i].Validity.Start < out[j].Validity.Start
		}
		return out[i].RecordedAt < out[j].RecordedAt
	})
	return out
}

// insertLive places f into the live slice, keeping validity-start order.
func (l *lineage) insertLive(f *element.Fact) {
	i := sort.Search(len(l.live), func(k int) bool {
		return l.live[k].Validity.Start >= f.Validity.Start
	})
	l.live = append(l.live, nil)
	copy(l.live[i+1:], l.live[i:])
	l.live[i] = f
}

// removeLive splices the exact version out of the live slice.
func (l *lineage) removeLive(f *element.Fact) {
	for i, v := range l.live {
		if v == f {
			l.live = append(l.live[:i], l.live[i+1:]...)
			return
		}
	}
}

// overlappingLive returns the live versions overlapping w, in order.
func (l *lineage) overlappingLive(w temporal.Interval) []*element.Fact {
	i := sort.Search(len(l.live), func(k int) bool {
		return l.live[k].Validity.End > w.Start
	})
	j := i
	for j < len(l.live) && l.live[j].Validity.Start < w.End {
		j++
	}
	if i == j {
		return nil
	}
	out := make([]*element.Fact, j-i)
	copy(out, l.live[i:j])
	return out
}

// Store is the state repository. It is safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	byKey    map[element.FactKey]*lineage
	byAttr   map[string]map[string]*lineage // attribute → entity → lineage
	versions int                            // believed (live) versions
	records  int                            // all records, including superseded
	txHigh   temporal.Instant               // transaction clock high-water mark
	watchers []Watcher
	log      *Log
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byKey:  make(map[element.FactKey]*lineage),
		byAttr: make(map[string]map[string]*lineage),
	}
}

// AttachLog makes the store append every mutation to the given log. Attach
// before the first mutation; mutations made earlier are not re-logged.
func (s *Store) AttachLog(l *Log) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = l
}

// Watch registers a watcher for all subsequent changes.
func (s *Store) Watch(w Watcher) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watchers = append(s.watchers, w)
}

// notifyAll dispatches committed changes to the given watcher snapshot;
// call only after releasing the store lock.
func notifyAll(ws []Watcher, changes []Change) {
	for _, c := range changes {
		for _, w := range ws {
			w(c)
		}
	}
}

func (s *Store) lineageLocked(key element.FactKey, create bool) *lineage {
	l := s.byKey[key]
	if l == nil && create {
		l = &lineage{key: key, txOrdered: true}
		s.byKey[key] = l
		ents := s.byAttr[key.Attribute]
		if ents == nil {
			ents = make(map[string]*lineage)
			s.byAttr[key.Attribute] = ents
		}
		ents[key.Entity] = l
	}
	return l
}

// writeReq is one resolved-or-resolvable mutation against a lineage. The
// option-based and legacy surfaces both funnel into apply.
type writeReq struct {
	entity, attr string
	value        element.Value
	validFrom    *temporal.Instant // nil: the resolved transaction time
	validTo      *temporal.Instant // nil: Forever
	tx           *temporal.Instant // nil: the store's transaction clock
	derived      bool
	source       string
	isDelete     bool

	// Legacy-surface semantics flags.
	legacy         bool // log in the positional wire format
	monotonic      bool // reject validFrom earlier than the latest believed start
	requireCurrent bool // ErrNoCurrent unless an open version exists
	noOverlap      bool // ErrOverlap instead of superseding (Assert)
}

// apply validates, commits, logs, and notifies one mutation. It is the
// single write path of the store.
func (s *Store) apply(r writeReq) error {
	var changes []Change
	var ws []Watcher
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		ws = s.watchers

		// Resolve the transaction time and valid interval. Without an
		// explicit WithTransactionTime, the write commits one tick past
		// the transaction clock's high-water mark (or at its valid-time
		// start, whichever is later), so consecutive default writes get
		// distinct belief intervals and every superseded belief stays
		// recoverable.
		var tx temporal.Instant
		if r.tx != nil {
			tx = *r.tx
		} else {
			tx = s.txHigh + 1
			if r.validFrom != nil && *r.validFrom > tx {
				tx = *r.validFrom
			}
		}
		from := tx
		if r.validFrom != nil {
			from = *r.validFrom
		}
		to := temporal.Forever
		if r.validTo != nil {
			to = *r.validTo
		}
		w := temporal.NewInterval(from, to)
		key := element.FactKey{Entity: r.entity, Attribute: r.attr}
		if w.IsEmpty() {
			return fmt.Errorf("state: write %s: empty validity %s", key, w)
		}

		l := s.lineageLocked(key, !r.isDelete)
		if r.requireCurrent && (l == nil || l.current() == nil) {
			return fmt.Errorf("%w: %s", ErrNoCurrent, key)
		}
		if l == nil {
			// Option-based delete of a key with no believed state: no-op.
			return nil
		}
		if n := len(l.live); n > 0 {
			last := l.live[n-1]
			if r.monotonic && from < last.Validity.Start {
				return fmt.Errorf("%w: %s at %s before %s", ErrOutOfOrder, key, from, last.Validity.Start)
			}
			if r.noOverlap && last.Validity.Overlaps(w) {
				return fmt.Errorf("%w: %s: %s overlaps %s", ErrOverlap, key, w, last.Validity)
			}
		}

		var put *element.Fact
		if !r.isDelete {
			put = element.NewFact(r.entity, r.attr, r.value, w)
			put.Derived = r.derived
			put.Source = r.source
			put.RecordedAt = tx
			put.SupersededAt = temporal.Forever
		}

		// Log before mutating: validation is complete and the mutation
		// below cannot fail, so a log error leaves the store untouched.
		if s.log != nil {
			var err error
			switch {
			case r.legacy && r.noOverlap:
				err = s.log.appendAssert(put)
			case r.legacy && r.isDelete:
				err = s.log.appendRetract(r.entity, r.attr, from)
			case r.legacy:
				err = s.log.appendPut(r.entity, r.attr, r.value, from)
			case r.isDelete:
				err = s.log.appendDelete(r.entity, r.attr, w, tx)
			default:
				err = s.log.appendPutBi(put)
			}
			if err != nil {
				return err
			}
		}
		if tx > s.txHigh {
			s.txHigh = tx
		}

		// Supersede the believed versions the write overlaps, re-recording
		// the portions outside the write interval as fresh records. Every
		// superseded version emits one Terminated change: with the left
		// remnant's closed validity when the write truncates it, with its
		// original validity when the write covers it entirely.
		for _, v := range l.overlappingLive(w) {
			v.SupersededAt = tx
			l.removeLive(v)
			s.versions--
			var left *element.Fact
			if v.Validity.Start < w.Start {
				left = s.reRecordLocked(l, v, temporal.NewInterval(v.Validity.Start, w.Start), tx)
			}
			if w.End < v.Validity.End {
				s.reRecordLocked(l, v, temporal.NewInterval(w.End, v.Validity.End), tx)
			}
			ev := v.Clone()
			if left != nil {
				ev = left.Clone()
			}
			changes = append(changes, Change{Kind: Terminated, Fact: ev, At: tx})
		}

		if put != nil {
			s.appendRecordLocked(l, put)
			l.insertLive(put)
			s.versions++
			changes = append(changes, Change{Kind: Asserted, Fact: put.Clone(), At: w.Start})
		}
		return nil
	}()
	if err != nil {
		return err
	}
	notifyAll(ws, changes)
	return nil
}

// appendRecordLocked appends to the lineage's record history, keeping
// the counters and the RecordedAt-ordering flag current.
func (s *Store) appendRecordLocked(l *lineage, f *element.Fact) {
	if n := len(l.records); n > 0 && f.RecordedAt < l.records[n-1].RecordedAt {
		l.txOrdered = false
	}
	l.records = append(l.records, f)
	s.records++
}

// reRecordLocked inserts a trimmed replacement for a superseded version:
// same value and provenance, validity iv, recorded at tx.
func (s *Store) reRecordLocked(l *lineage, v *element.Fact, iv temporal.Interval, tx temporal.Instant) *element.Fact {
	c := v.Clone()
	c.Validity = iv
	c.RecordedAt = tx
	c.SupersededAt = temporal.Forever
	s.appendRecordLocked(l, c)
	l.insertLive(c)
	s.versions++
	return c
}

// Find returns the version of (entity, attr) selected by the read options:
// by default the open version in the current belief; AsOfValidTime selects
// by valid time, AsOfTransactionTime by belief.
func (s *Store) Find(entity, attr string, opts ...ReadOpt) (*element.Fact, bool) {
	cfg := newReadCfg(opts)
	s.mu.RLock()
	defer s.mu.RUnlock()
	l := s.byKey[element.FactKey{Entity: entity, Attribute: attr}]
	if l == nil {
		return nil, false
	}
	if f := l.pick(cfg); f != nil {
		return f.Clone(), true
	}
	return nil, false
}

// List returns one selected version per key — or, with AllVersions /
// DuringValidTime, every matching version — sorted by (attribute, entity,
// validity start). WithAttribute scopes the scan to one attribute.
func (s *Store) List(opts ...ReadOpt) []*element.Fact {
	cfg := newReadCfg(opts)
	s.mu.RLock()
	defer s.mu.RUnlock()
	pick := func(l *lineage) []*element.Fact {
		if !cfg.allVersions {
			if f := l.pick(cfg); f != nil {
				return []*element.Fact{f}
			}
			return nil
		}
		var out []*element.Fact
		for _, f := range l.believed(cfg.txAt) {
			if cfg.validDuring != nil && !f.Validity.Overlaps(*cfg.validDuring) {
				continue
			}
			if cfg.validAt != nil && !f.Validity.Contains(*cfg.validAt) {
				continue
			}
			out = append(out, f)
		}
		return out
	}
	if cfg.attr != "" {
		return s.byAttributeAllLocked(cfg.attr, pick)
	}
	return s.scanLocked(pick)
}

// Delete removes any value of (entity, attr) over the write options' valid
// interval (default [transaction time, Forever)), superseding the
// overlapped versions at the write's transaction time. Deleting where
// nothing is believed is a no-op.
func (s *Store) Delete(entity, attr string, opts ...WriteOpt) error {
	cfg := newWriteCfg(opts)
	return s.apply(writeReq{
		entity: entity, attr: attr, isDelete: true,
		validFrom: cfg.validFrom, validTo: cfg.validTo, tx: cfg.tx,
	})
}

// History returns the version history of (entity, attr): by default the
// current-belief versions in validity order; under AsOfTransactionTime the
// versions believed then; with AllVersions every record ever written —
// including superseded ones — in recording order.
func (s *Store) History(entity, attr string, opts ...ReadOpt) []*element.Fact {
	cfg := newReadCfg(opts)
	s.mu.RLock()
	defer s.mu.RUnlock()
	l := s.byKey[element.FactKey{Entity: entity, Attribute: attr}]
	if l == nil {
		return nil
	}
	src := l.believed(cfg.txAt)
	if cfg.allVersions && cfg.txAt == nil {
		src = l.records
	}
	out := make([]*element.Fact, len(src))
	for i, f := range src {
		out[i] = f.Clone()
	}
	return out
}

// Put applies replace semantics on the positional surface: the current
// version of (entity, attr), if any, is terminated at `at`, and a new
// version valid over [at, Forever) is asserted with transaction time `at`.
// This is the paper's canonical state transition ("the most recent
// position invalidates and updates any previous position", §1).
//
// Deprecated: use the option-based Put (db.go) — this wrapper remains for
// timestamp-monotonic callers such as the rule engine.
func (s *Store) Put(entity, attr string, v element.Value, at temporal.Instant) error {
	return s.apply(writeReq{
		entity: entity, attr: attr, value: v,
		validFrom: &at, tx: &at,
		legacy: true, monotonic: true,
	})
}

// Assert inserts a fact with an explicit validity interval. The interval
// must not overlap any believed version of the same key and must start no
// earlier than the latest believed version's start (per-key monotonic
// appends). Use Assert for facts whose full validity is known, e.g.
// bounded reservations, or for reasoner-derived facts.
//
// Deprecated: use the option-based Put with WithValidTime/WithEndValidTime
// (db.go), which supersedes overlaps instead of rejecting them.
func (s *Store) Assert(f *element.Fact) error {
	if f.Validity.IsEmpty() {
		return fmt.Errorf("state: assert %s: empty validity", f.Key())
	}
	return s.apply(writeReq{
		entity: f.Entity, attr: f.Attribute, value: f.Value,
		validFrom: &f.Validity.Start, validTo: &f.Validity.End, tx: &f.Validity.Start,
		derived: f.Derived, source: f.Source,
		legacy: true, monotonic: true, noOverlap: true,
	})
}

// Retract terminates the current version of (entity, attr) at `at`. A
// version that started exactly at `at` leaves the current belief entirely
// (it would have empty validity); as with every mutation, the superseded
// record remains reachable under AsOfTransactionTime.
//
// Deprecated: use the option-based Delete (db.go).
func (s *Store) Retract(entity, attr string, at temporal.Instant) error {
	return s.apply(writeReq{
		entity: entity, attr: attr, isDelete: true,
		validFrom: &at, tx: &at,
		legacy: true, monotonic: true, requireCurrent: true,
	})
}

// Current returns the open version of (entity, attr), if any.
//
// Deprecated: use Find.
func (s *Store) Current(entity, attr string) (*element.Fact, bool) {
	return s.Find(entity, attr)
}

// ValidAt returns the version of (entity, attr) valid at t, if any.
//
// Deprecated: use Find with AsOfValidTime.
func (s *Store) ValidAt(entity, attr string, t temporal.Instant) (*element.Fact, bool) {
	return s.Find(entity, attr, AsOfValidTime(t))
}

// CurrentByAttribute returns the open versions of every entity for the
// given attribute, sorted by entity.
//
// Deprecated: use List with WithAttribute.
func (s *Store) CurrentByAttribute(attr string) []*element.Fact {
	return s.List(WithAttribute(attr))
}

// AsOfByAttribute returns, for the given attribute, the version of every
// entity valid at t, sorted by entity.
//
// Deprecated: use List with WithAttribute and AsOfValidTime.
func (s *Store) AsOfByAttribute(attr string, t temporal.Instant) []*element.Fact {
	return s.List(WithAttribute(attr), AsOfValidTime(t))
}

// byAttributeAllLocked iterates one attribute's lineages in entity order.
func (s *Store) byAttributeAllLocked(attr string, pick func(*lineage) []*element.Fact) []*element.Fact {
	ents := s.byAttr[attr]
	if len(ents) == 0 {
		return nil
	}
	names := make([]string, 0, len(ents))
	for e := range ents {
		names = append(names, e)
	}
	sort.Strings(names)
	var out []*element.Fact
	for _, e := range names {
		for _, f := range pick(ents[e]) {
			out = append(out, f.Clone())
		}
	}
	return out
}

// AsOf returns every fact valid at t, sorted by (attribute, entity).
//
// Deprecated: use List with AsOfValidTime.
func (s *Store) AsOf(t temporal.Instant) []*element.Fact {
	return s.List(AsOfValidTime(t))
}

// CurrentAll returns every open fact, sorted by (attribute, entity).
//
// Deprecated: use List.
func (s *Store) CurrentAll() []*element.Fact {
	return s.List()
}

// During returns every believed version whose validity overlaps iv, sorted
// by (attribute, entity, start).
//
// Deprecated: use List with DuringValidTime.
func (s *Store) During(iv temporal.Interval) []*element.Fact {
	return s.List(DuringValidTime(iv.Start, iv.End))
}

// Scan returns clones of every believed version (current and historical)
// matching pred, sorted by (attribute, entity, start). A nil pred matches
// all.
func (s *Store) Scan(pred func(*element.Fact) bool) []*element.Fact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scanLocked(func(l *lineage) []*element.Fact {
		var out []*element.Fact
		for _, f := range l.live {
			if pred == nil || pred(f) {
				out = append(out, f)
			}
		}
		return out
	})
}

// scanLocked iterates lineages in deterministic key order, clones the
// picked facts and returns them.
func (s *Store) scanLocked(pick func(*lineage) []*element.Fact) []*element.Fact {
	keys := make([]element.FactKey, 0, len(s.byKey))
	for k := range s.byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Attribute != keys[j].Attribute {
			return keys[i].Attribute < keys[j].Attribute
		}
		return keys[i].Entity < keys[j].Entity
	})
	var out []*element.Fact
	for _, k := range keys {
		for _, f := range pick(s.byKey[k]) {
			out = append(out, f.Clone())
		}
	}
	return out
}

// ValiditySet returns the coalesced set of intervals over which
// (entity, attr) is believed to have had any value.
func (s *Store) ValiditySet(entity, attr string) *temporal.Set {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := temporal.NewSet()
	if l := s.byKey[element.FactKey{Entity: entity, Attribute: attr}]; l != nil {
		for _, f := range l.live {
			set.Add(f.Validity)
		}
	}
	return set
}

// CompactBefore bounds history growth along both time axes: it drops every
// believed version whose validity ends at or before t, and every
// superseded record whose belief interval closed at or before t. Open
// versions are always retained. Compaction is lossy for transaction-time
// queries about the dropped records, exactly as it is for valid-time
// queries about dropped history. It returns the number of believed
// versions removed.
func (s *Store) CompactBefore(t temporal.Instant) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for key, l := range s.byKey {
		keptLive := l.live[:0]
		for _, f := range l.live {
			if f.Validity.End <= t {
				removed++
			} else {
				keptLive = append(keptLive, f)
			}
		}
		l.live = keptLive
		keptRecords := l.records[:0]
		for _, f := range l.records {
			drop := (!f.Superseded() && f.Validity.End <= t) ||
				(f.Superseded() && f.SupersededAt <= t)
			if drop {
				s.records--
			} else {
				keptRecords = append(keptRecords, f)
			}
		}
		l.records = keptRecords
		if len(l.records) == 0 {
			s.dropLineageLocked(key)
		}
	}
	s.versions -= removed
	return removed
}

func (s *Store) dropLineageLocked(key element.FactKey) {
	delete(s.byKey, key)
	if ents := s.byAttr[key.Attribute]; ents != nil {
		delete(ents, key.Entity)
		if len(ents) == 0 {
			delete(s.byAttr, key.Attribute)
		}
	}
}

// DropDerived removes every derived version (facts materialized by the
// reasoner), returning how many believed versions were dropped. The
// reasoner uses this to rematerialize from scratch after a retraction.
// Derived records are removed physically — they are a cache over the
// asserted state, not part of the audit history.
func (s *Store) DropDerived() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for key, l := range s.byKey {
		keptLive := l.live[:0]
		for _, f := range l.live {
			if f.Derived {
				removed++
			} else {
				keptLive = append(keptLive, f)
			}
		}
		l.live = keptLive
		keptRecords := l.records[:0]
		for _, f := range l.records {
			if f.Derived {
				s.records--
			} else {
				keptRecords = append(keptRecords, f)
			}
		}
		l.records = keptRecords
		if len(l.records) == 0 {
			s.dropLineageLocked(key)
		}
	}
	s.versions -= removed
	return removed
}

// Stats summarizes store occupancy.
type Stats struct {
	// Keys is the number of (entity, attribute) lineages.
	Keys int
	// Versions is the number of believed fact versions.
	Versions int
	// Current is the number of open believed versions.
	Current int
	// Attributes is the number of distinct attributes.
	Attributes int
	// Records is the total number of stored records, including versions
	// superseded by retroactive corrections.
	Records int
	// Superseded is the number of records no longer part of the current
	// belief (Records - Versions).
	Superseded int
	// TxHigh is the transaction clock's high-water mark.
	TxHigh temporal.Instant
}

// Stats returns current occupancy counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Keys: len(s.byKey), Versions: s.versions, Attributes: len(s.byAttr),
		Records: s.records, Superseded: s.records - s.versions, TxHigh: s.txHigh,
	}
	for _, l := range s.byKey {
		if l.current() != nil {
			st.Current++
		}
	}
	return st
}

// View is a read-only, point-in-time view of the store along both time
// axes: reads resolve as of instant t in valid time AND transaction time,
// so a View is immutable even under retroactive corrections recorded
// later — the engine's Snapshot interaction policy is built on this.
// Views are cheap: they borrow the store's bitemporal history rather than
// copying it.
type View struct {
	store *Store
	at    temporal.Instant
}

// ViewAt returns a read-only view of the state as believed and valid at t.
func (s *Store) ViewAt(t temporal.Instant) *View { return &View{store: s, at: t} }

// At reports the view's instant.
func (v *View) At() temporal.Instant { return v.at }

// Get returns the version of (entity, attr) valid at the view instant.
func (v *View) Get(entity, attr string) (*element.Fact, bool) {
	return v.store.Find(entity, attr, AsOfValidTime(v.at), AsOfTransactionTime(v.at))
}

// ByAttribute returns all facts for attr valid at the view instant.
func (v *View) ByAttribute(attr string) []*element.Fact {
	return v.store.List(WithAttribute(attr), AsOfValidTime(v.at), AsOfTransactionTime(v.at))
}

// All returns every fact valid at the view instant.
func (v *View) All() []*element.Fact {
	return v.store.List(AsOfValidTime(v.at), AsOfTransactionTime(v.at))
}
