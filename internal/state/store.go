// Package state implements the state repository of Figure 1 as a
// bitemporal database: every fact version carries a valid-time interval
// (when it held in the modeled world) and a transaction-time interval
// (when the store believed it), with point (as-of) and range (during)
// temporal queries along both axes, change notification, compaction, and
// append-only log persistence with recovery.
//
// The store realizes the paper's §3 proposal — "we model state as a
// collection of data elements annotated with their time of validity" — and
// the §3.3 suggestion to "implement the state component as a temporal
// database, thus enabling the query and retrieval of both the current
// state and historical data".
//
// The unit of storage is a lineage: the record history of one
// (entity, attribute) key. At every transaction time the believed versions
// of a lineage form an ordered, non-overlapping sequence, so exactly one
// version holds at every valid-time point — this is what prevents the
// "visitor simultaneously in multiple rooms" contradictions of §1.
// Retroactive writes supersede (never destroy) the record versions they
// revise: the superseded record keeps its original validity with a closed
// transaction-time interval, and trimmed replacements join the current
// belief. AsOfTransactionTime reads recover any past belief exactly.
//
// Lineages are hash-partitioned across an array of lock-striped shards
// (see shard.go), so reads and writes of unrelated lineages never contend
// on a lock; the transaction clock (txclock.go) and the WAL appender
// (log.go) are the only cross-shard synchronization points.
//
// The preferred API is the option-based bitemporal surface in db.go
// (Find/List/Put/Delete/History with ReadOpt/WriteOpt). The positional
// methods (Put/Assert/Retract/Current/ValidAt/AsOf/...) are retained as
// thin deprecated wrappers with their historical semantics.
package state

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Errors returned by store mutations.
var (
	// ErrOutOfOrder reports a positional mutation earlier than the key's
	// latest believed version start; the legacy surface requires per-key
	// timestamp-monotonic updates. (The option-based surface instead
	// treats such writes as retroactive corrections.)
	ErrOutOfOrder = errors.New("state: mutation out of timestamp order for key")
	// ErrOverlap reports an explicit-interval assertion that overlaps an
	// existing version of the same key.
	ErrOverlap = errors.New("state: validity interval overlaps existing version")
	// ErrNoCurrent reports a retraction of a key with no open version.
	ErrNoCurrent = errors.New("state: no current version to retract")
)

// ChangeKind classifies a state change event.
type ChangeKind int

// Change kinds delivered to watchers.
const (
	// Asserted: a new version became part of the state.
	Asserted ChangeKind = iota
	// Terminated: an open version's validity was closed (or a version was
	// superseded by a retroactive correction).
	Terminated
)

// String names the change kind.
func (k ChangeKind) String() string {
	if k == Asserted {
		return "asserted"
	}
	return "terminated"
}

// Change describes one state transition, delivered synchronously to
// watchers in mutation order.
type Change struct {
	Kind ChangeKind
	// Fact is the affected version. For Terminated changes the validity
	// reflects the new (closed) interval.
	Fact *element.Fact
	// At is the application time of the transition.
	At temporal.Instant
}

// Watcher observes state changes. Watchers run synchronously after the
// mutation commits (outside the shard lock), in mutation order for a
// single mutator; they may read back into the store — standing queries
// (internal/query.RegisterContinuous) rely on this. Under concurrent
// mutators, a watcher may observe store state newer than its Change.
type Watcher func(Change)

// lineage is the bitemporal record history of one key. records holds
// every version ever written, in recording order; live is the
// current-belief subset (SupersededAt == Forever), ordered by validity
// start with pairwise disjoint intervals. The slices share *Fact pointers.
// txOrdered tracks whether records are non-decreasing in RecordedAt —
// always true unless a caller pinned out-of-order explicit transaction
// times — enabling binary-searched belief reads.
type lineage struct {
	key       element.FactKey
	records   []*element.Fact
	live      []*element.Fact
	txOrdered bool
}

// current returns the believed open version, if any. Only the last live
// version can be open because live intervals are disjoint and ordered.
func (l *lineage) current() *element.Fact {
	if n := len(l.live); n > 0 && l.live[n-1].IsCurrent() {
		return l.live[n-1]
	}
	return nil
}

// validAt binary-searches the current belief for the version valid at t.
func (l *lineage) validAt(t temporal.Instant) *element.Fact {
	i := sort.Search(len(l.live), func(k int) bool {
		return l.live[k].Validity.End > t
	})
	if i < len(l.live) && l.live[i].Validity.Contains(t) {
		return l.live[i]
	}
	return nil
}

// pick resolves a point read: the version selected by validAt/txAt.
func (l *lineage) pick(cfg readCfg) *element.Fact {
	if !cfg.hasTxAt {
		if !cfg.hasValidAt {
			return l.current()
		}
		return l.validAt(cfg.validAt)
	}
	tt := cfg.txAt
	matches := func(f *element.Fact) bool {
		if !cfg.hasValidAt {
			return f.IsCurrent()
		}
		return f.Validity.Contains(cfg.validAt)
	}
	if l.txOrdered {
		// Records are ordered by RecordedAt, so the belief at tt lives in
		// the recorded-by-tt prefix; scanning it backwards, the first
		// visible match is the unique believed version (beliefs are
		// disjoint, and anything recorded later in the prefix supersedes
		// earlier overlapping records). For recent tt — the Snapshot
		// policy's per-element reads — the match sits near the prefix end.
		hi := sort.Search(len(l.records), func(k int) bool {
			return l.records[k].RecordedAt > tt
		})
		for i := hi - 1; i >= 0; i-- {
			if f := l.records[i]; f.VisibleAt(tt) && matches(f) {
				return f
			}
		}
		return nil
	}
	var best *element.Fact
	for _, f := range l.records {
		if !f.VisibleAt(tt) || !matches(f) {
			continue
		}
		if best == nil || f.RecordedAt > best.RecordedAt {
			best = f
		}
	}
	return best
}

// believed returns the versions believed at txAt (the current belief when
// hasTxAt is unset), ordered by validity start.
func (l *lineage) believed(txAt temporal.Instant, hasTxAt bool) []*element.Fact {
	if !hasTxAt {
		return l.live
	}
	tt := txAt
	var out []*element.Fact
	for _, f := range l.records {
		if f.VisibleAt(tt) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Validity.Start != out[j].Validity.Start {
			return out[i].Validity.Start < out[j].Validity.Start
		}
		return out[i].RecordedAt < out[j].RecordedAt
	})
	return out
}

// insertLive places f into the live slice, keeping validity-start order.
func (l *lineage) insertLive(f *element.Fact) {
	i := sort.Search(len(l.live), func(k int) bool {
		return l.live[k].Validity.Start >= f.Validity.Start
	})
	l.live = append(l.live, nil)
	copy(l.live[i+1:], l.live[i:])
	l.live[i] = f
}

// removeLive splices the exact version out of the live slice.
func (l *lineage) removeLive(f *element.Fact) {
	for i, v := range l.live {
		if v == f {
			l.live = append(l.live[:i], l.live[i+1:]...)
			return
		}
	}
}

// overlappingLive returns the live versions overlapping w, in order.
func (l *lineage) overlappingLive(w temporal.Interval) []*element.Fact {
	i := sort.Search(len(l.live), func(k int) bool {
		return l.live[k].Validity.End > w.Start
	})
	j := i
	for j < len(l.live) && l.live[j].Validity.Start < w.End {
		j++
	}
	if i == j {
		return nil
	}
	out := make([]*element.Fact, j-i)
	copy(out, l.live[i:j])
	return out
}

// Store is the state repository. It is safe for concurrent use: lineages
// are hash-partitioned across lock-striped shards (shard.go), so
// operations on unrelated keys proceed in parallel.
type Store struct {
	shards    []*shard
	shardMask uint64
	clock     txClock

	// obsMu guards the mutation observers: the watcher list and the
	// attached log. Both are read at the start of every mutation and
	// written only by Watch/AttachLog.
	obsMu    sync.RWMutex
	watchers []Watcher
	log      *Log
}

// NewStore returns an empty store with a GOMAXPROCS-scaled shard count.
func NewStore() *Store {
	return NewStoreWithShards(0)
}

// NewStoreWithShards returns an empty store with a fixed shard count,
// rounded up to a power of two. n == 1 yields the single-lock layout of
// the pre-sharding store (every lineage behind one mutex) — useful as a
// contention baseline; n <= 0 selects the GOMAXPROCS-scaled default.
func NewStoreWithShards(n int) *Store {
	if n <= 0 {
		n = defaultShardCount()
	}
	n = nextPowerOfTwo(n)
	s := &Store{
		shards:    make([]*shard, n),
		shardMask: uint64(n - 1),
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			byKey:  make(map[element.FactKey]*lineage),
			byAttr: make(map[string]map[string]*lineage),
		}
	}
	return s
}

// ShardCount reports the number of shards the store partitions its
// lineages across.
func (s *Store) ShardCount() int { return len(s.shards) }

// AttachLog makes the store append every mutation to the given log. Attach
// before the first mutation; mutations made earlier are not re-logged.
func (s *Store) AttachLog(l *Log) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	s.log = l
}

// Watch registers a watcher for all subsequent changes.
func (s *Store) Watch(w Watcher) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	s.watchers = append(s.watchers, w)
}

// observers snapshots the watcher list and attached log for one mutation.
func (s *Store) observers() ([]Watcher, *Log) {
	s.obsMu.RLock()
	defer s.obsMu.RUnlock()
	return s.watchers, s.log
}

// AdvanceClock advances the transaction clock's high-water mark to at
// least t, so every subsequent default-clock write — on any shard —
// commits strictly after t. The engine calls this when its watermark
// advances: a micro-batch view pinned at the watermark (AsOfTransactionTime)
// then reads one consistent multi-shard cut that later default writes
// cannot disturb.
func (s *Store) AdvanceClock(t temporal.Instant) {
	s.clock.observe(t)
}

// notifyAll dispatches committed changes to the given watcher snapshot;
// call only after releasing the shard lock.
func notifyAll(ws []Watcher, changes []Change) {
	for _, c := range changes {
		for _, w := range ws {
			w(c)
		}
	}
}

// writeReq is one resolved-or-resolvable mutation against a lineage. The
// option-based and legacy surfaces both funnel into apply. Like readCfg,
// its temporal selectors are value+flag pairs so building a request on the
// hot write path does not heap-allocate the instants.
type writeReq struct {
	entity, attr string
	value        element.Value
	validFrom    temporal.Instant // meaningful when hasValidFrom; else the resolved transaction time
	hasValidFrom bool
	validTo      temporal.Instant // meaningful when hasValidTo; else Forever
	hasValidTo   bool
	tx           temporal.Instant // meaningful when hasTx; else the store's transaction clock
	hasTx        bool
	derived      bool
	source       string
	isDelete     bool

	// Legacy-surface semantics flags.
	legacy         bool // log in the positional wire format
	monotonic      bool // reject validFrom earlier than the latest believed start
	requireCurrent bool // ErrNoCurrent unless an open version exists
	noOverlap      bool // ErrOverlap instead of superseding (Assert)
}

// apply validates, commits, logs, and notifies one mutation. It is the
// single write path of the store; it locks exactly one shard.
func (s *Store) apply(r writeReq) error {
	ws, log := s.observers()
	sh := s.shardFor(r.entity, r.attr)
	var changes []Change
	err := func() error {
		sh.mu.Lock()
		defer sh.mu.Unlock()

		// Resolve the transaction time and valid interval. Without an
		// explicit WithTransactionTime, the write reserves the next tick
		// of the transaction clock (one past its high-water mark, or the
		// valid-time start when that is later), so concurrent default
		// writes get distinct belief intervals and every superseded belief
		// stays recoverable. A reserved tick is consumed even when
		// validation or logging fails below: the clock only ever moves
		// forward.
		var tx temporal.Instant
		if r.hasTx {
			tx = r.tx
		} else {
			floor := temporal.MinInstant
			if r.hasValidFrom {
				floor = r.validFrom
			}
			tx = s.clock.reserve(floor)
		}
		from := tx
		if r.hasValidFrom {
			from = r.validFrom
		}
		to := temporal.Forever
		if r.hasValidTo {
			to = r.validTo
		}
		w := temporal.NewInterval(from, to)
		key := element.FactKey{Entity: r.entity, Attribute: r.attr}
		if w.IsEmpty() {
			return fmt.Errorf("state: write %s: empty validity %s", key, w)
		}

		l := sh.lineage(key, !r.isDelete)
		if r.requireCurrent && (l == nil || l.current() == nil) {
			return fmt.Errorf("%w: %s", ErrNoCurrent, key)
		}
		if l == nil {
			// Option-based delete of a key with no believed state: no-op.
			return nil
		}
		if n := len(l.live); n > 0 {
			last := l.live[n-1]
			if r.monotonic && from < last.Validity.Start {
				return fmt.Errorf("%w: %s at %s before %s", ErrOutOfOrder, key, from, last.Validity.Start)
			}
			if r.noOverlap && last.Validity.Overlaps(w) {
				return fmt.Errorf("%w: %s: %s overlaps %s", ErrOverlap, key, w, last.Validity)
			}
		}

		var put *element.Fact
		if !r.isDelete {
			put = element.NewFact(r.entity, r.attr, r.value, w)
			put.Derived = r.derived
			put.Source = r.source
			put.RecordedAt = tx
			put.SupersededAt = temporal.Forever
		}

		// Log before mutating: validation is complete and the mutation
		// below cannot fail, so a log error leaves the store untouched.
		// The log serializes appends from concurrent shards through its
		// single-appender channel.
		if log != nil {
			var err error
			switch {
			case r.legacy && r.noOverlap:
				err = log.appendAssert(put)
			case r.legacy && r.isDelete:
				err = log.appendRetract(r.entity, r.attr, from)
			case r.legacy:
				err = log.appendPut(r.entity, r.attr, r.value, from)
			case r.isDelete:
				err = log.appendDelete(r.entity, r.attr, w, tx)
			default:
				err = log.appendPutBi(put)
			}
			if err != nil {
				return err
			}
		}
		s.clock.observe(tx)
		changes = sh.commit(l, put, w, tx, changes)
		return nil
	}()
	if err != nil {
		return err
	}
	notifyAll(ws, changes)
	return nil
}

// commit mutates one lineage under the shard lock: it supersedes the
// believed versions the write interval w overlaps — re-recording the
// portions outside w as fresh records — and inserts put (when non-nil) as
// a new believed version. Every superseded version appends one Terminated
// change (with the left remnant's closed validity when the write truncates
// it, with its original validity when the write covers it entirely); the
// insert appends one Asserted change. Callers hold sh.mu.
func (sh *shard) commit(l *lineage, put *element.Fact, w temporal.Interval, tx temporal.Instant, changes []Change) []Change {
	for _, v := range l.overlappingLive(w) {
		v.SupersededAt = tx
		l.removeLive(v)
		sh.versions--
		var left *element.Fact
		if v.Validity.Start < w.Start {
			left = sh.reRecord(l, v, temporal.NewInterval(v.Validity.Start, w.Start), tx)
		}
		if w.End < v.Validity.End {
			sh.reRecord(l, v, temporal.NewInterval(w.End, v.Validity.End), tx)
		}
		ev := v.Clone()
		if left != nil {
			ev = left.Clone()
		}
		changes = append(changes, Change{Kind: Terminated, Fact: ev, At: tx})
	}
	if put != nil {
		sh.appendRecord(l, put)
		l.insertLive(put)
		sh.versions++
		changes = append(changes, Change{Kind: Asserted, Fact: put.Clone(), At: w.Start})
	}
	return changes
}

// Find returns the version of (entity, attr) selected by the read options:
// by default the open version in the current belief; AsOfValidTime selects
// by valid time, AsOfTransactionTime by belief. Find locks only the
// lineage's shard.
func (s *Store) Find(entity, attr string, opts ...ReadOpt) (*element.Fact, bool) {
	cfg := newReadCfg(opts)
	sh := s.shardFor(entity, attr)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	l := sh.byKey[element.FactKey{Entity: entity, Attribute: attr}]
	if l == nil {
		return nil, false
	}
	if f := l.pick(cfg); f != nil {
		return f.Clone(), true
	}
	return nil, false
}

// FindSpec is Find with a pre-resolved ReadSpec instead of a ReadOpt list:
// the same selection semantics without allocating option closures. Hot
// paths that issue one point read per stream element use it.
func (s *Store) FindSpec(entity, attr string, spec ReadSpec) (*element.Fact, bool) {
	sh := s.shardFor(entity, attr)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	l := sh.byKey[element.FactKey{Entity: entity, Attribute: attr}]
	if l == nil {
		return nil, false
	}
	if f := l.pick(spec.cfg()); f != nil {
		return f.Clone(), true
	}
	return nil, false
}

// FindValue returns just the value of the version FindSpec would select.
// Because element.Value is a plain struct, the read allocates nothing: no
// option closures and no defensive Fact clone. This is the engine's
// gate/enrichment read.
func (s *Store) FindValue(entity, attr string, spec ReadSpec) (element.Value, bool) {
	sh := s.shardFor(entity, attr)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	l := sh.byKey[element.FactKey{Entity: entity, Attribute: attr}]
	if l == nil {
		return element.Null, false
	}
	if f := l.pick(spec.cfg()); f != nil {
		return f.Value, true
	}
	return element.Null, false
}

// List returns one selected version per key — or, with AllVersions /
// DuringValidTime, every matching version — sorted by (attribute, entity,
// validity start). WithAttribute scopes the scan to one attribute. List is
// a cross-shard read: it holds every shard's read lock for the duration,
// so the result is one consistent cut of the whole store.
func (s *Store) List(opts ...ReadOpt) []*element.Fact {
	cfg := newReadCfg(opts)
	s.rlockAll()
	defer s.runlockAll()
	pick := func(l *lineage) []*element.Fact {
		if !cfg.allVersions {
			if f := l.pick(cfg); f != nil {
				return []*element.Fact{f}
			}
			return nil
		}
		var out []*element.Fact
		for _, f := range l.believed(cfg.txAt, cfg.hasTxAt) {
			if cfg.hasDuring && !f.Validity.Overlaps(cfg.validDuring) {
				continue
			}
			if cfg.hasValidAt && !f.Validity.Contains(cfg.validAt) {
				continue
			}
			out = append(out, f)
		}
		return out
	}
	if cfg.attr != "" {
		return s.byAttributeAllLocked(cfg.attr, pick)
	}
	return s.scanAllLocked(pick)
}

// Delete removes any value of (entity, attr) over the write options' valid
// interval (default [transaction time, Forever)), superseding the
// overlapped versions at the write's transaction time. Deleting where
// nothing is believed is a no-op.
func (s *Store) Delete(entity, attr string, opts ...WriteOpt) error {
	cfg := newWriteCfg(opts)
	r := writeReq{entity: entity, attr: attr, isDelete: true}
	cfg.fill(&r)
	return s.apply(r)
}

// History returns the version history of (entity, attr): by default the
// current-belief versions in validity order; under AsOfTransactionTime the
// versions believed then; with AllVersions every record ever written —
// including superseded ones — in recording order.
func (s *Store) History(entity, attr string, opts ...ReadOpt) []*element.Fact {
	cfg := newReadCfg(opts)
	sh := s.shardFor(entity, attr)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	l := sh.byKey[element.FactKey{Entity: entity, Attribute: attr}]
	if l == nil {
		return nil
	}
	src := l.believed(cfg.txAt, cfg.hasTxAt)
	if cfg.allVersions && !cfg.hasTxAt {
		src = l.records
	}
	out := make([]*element.Fact, len(src))
	for i, f := range src {
		out[i] = f.Clone()
	}
	return out
}

// Put applies replace semantics on the positional surface: the current
// version of (entity, attr), if any, is terminated at `at`, and a new
// version valid over [at, Forever) is asserted with transaction time `at`.
// This is the paper's canonical state transition ("the most recent
// position invalidates and updates any previous position", §1).
//
// Deprecated: use the option-based Put (db.go) — this wrapper remains for
// timestamp-monotonic callers such as the rule engine.
func (s *Store) Put(entity, attr string, v element.Value, at temporal.Instant) error {
	return s.apply(writeReq{
		entity: entity, attr: attr, value: v,
		validFrom: at, hasValidFrom: true, tx: at, hasTx: true,
		legacy: true, monotonic: true,
	})
}

// Assert inserts a fact with an explicit validity interval. The interval
// must not overlap any believed version of the same key and must start no
// earlier than the latest believed version's start (per-key monotonic
// appends). Use Assert for facts whose full validity is known, e.g.
// bounded reservations, or for reasoner-derived facts.
//
// Deprecated: use the option-based Put with WithValidTime/WithEndValidTime
// (db.go), which supersedes overlaps instead of rejecting them.
func (s *Store) Assert(f *element.Fact) error {
	if f.Validity.IsEmpty() {
		return fmt.Errorf("state: assert %s: empty validity", f.Key())
	}
	return s.apply(writeReq{
		entity: f.Entity, attr: f.Attribute, value: f.Value,
		validFrom: f.Validity.Start, hasValidFrom: true,
		validTo: f.Validity.End, hasValidTo: true,
		tx: f.Validity.Start, hasTx: true,
		derived: f.Derived, source: f.Source,
		legacy: true, monotonic: true, noOverlap: true,
	})
}

// Retract terminates the current version of (entity, attr) at `at`. A
// version that started exactly at `at` leaves the current belief entirely
// (it would have empty validity); as with every mutation, the superseded
// record remains reachable under AsOfTransactionTime.
//
// Deprecated: use the option-based Delete (db.go).
func (s *Store) Retract(entity, attr string, at temporal.Instant) error {
	return s.apply(writeReq{
		entity: entity, attr: attr, isDelete: true,
		validFrom: at, hasValidFrom: true, tx: at, hasTx: true,
		legacy: true, monotonic: true, requireCurrent: true,
	})
}

// Current returns the open version of (entity, attr), if any.
//
// Deprecated: use Find.
func (s *Store) Current(entity, attr string) (*element.Fact, bool) {
	return s.Find(entity, attr)
}

// ValidAt returns the version of (entity, attr) valid at t, if any.
//
// Deprecated: use Find with AsOfValidTime.
func (s *Store) ValidAt(entity, attr string, t temporal.Instant) (*element.Fact, bool) {
	return s.Find(entity, attr, AsOfValidTime(t))
}

// CurrentByAttribute returns the open versions of every entity for the
// given attribute, sorted by entity.
//
// Deprecated: use List with WithAttribute.
func (s *Store) CurrentByAttribute(attr string) []*element.Fact {
	return s.List(WithAttribute(attr))
}

// AsOfByAttribute returns, for the given attribute, the version of every
// entity valid at t, sorted by entity.
//
// Deprecated: use List with WithAttribute and AsOfValidTime.
func (s *Store) AsOfByAttribute(attr string, t temporal.Instant) []*element.Fact {
	return s.List(WithAttribute(attr), AsOfValidTime(t))
}

// byAttributeAllLocked gathers one attribute's lineages from every shard
// and iterates them in entity order. Callers hold every shard's lock.
func (s *Store) byAttributeAllLocked(attr string, pick func(*lineage) []*element.Fact) []*element.Fact {
	var ents []keyedLineage
	for _, sh := range s.shards {
		for e, l := range sh.byAttr[attr] {
			ents = append(ents, keyedLineage{element.FactKey{Entity: e, Attribute: attr}, l})
		}
	}
	if len(ents) == 0 {
		return nil
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].key.Entity < ents[j].key.Entity })
	var out []*element.Fact
	for _, e := range ents {
		for _, f := range pick(e.l) {
			out = append(out, f.Clone())
		}
	}
	return out
}

// AsOf returns every fact valid at t, sorted by (attribute, entity).
//
// Deprecated: use List with AsOfValidTime.
func (s *Store) AsOf(t temporal.Instant) []*element.Fact {
	return s.List(AsOfValidTime(t))
}

// CurrentAll returns every open fact, sorted by (attribute, entity).
//
// Deprecated: use List.
func (s *Store) CurrentAll() []*element.Fact {
	return s.List()
}

// During returns every believed version whose validity overlaps iv, sorted
// by (attribute, entity, start).
//
// Deprecated: use List with DuringValidTime.
func (s *Store) During(iv temporal.Interval) []*element.Fact {
	return s.List(DuringValidTime(iv.Start, iv.End))
}

// Scan returns clones of every believed version (current and historical)
// matching pred, sorted by (attribute, entity, start). A nil pred matches
// all. Like List, Scan reads one consistent cut across all shards.
func (s *Store) Scan(pred func(*element.Fact) bool) []*element.Fact {
	s.rlockAll()
	defer s.runlockAll()
	return s.scanAllLocked(func(l *lineage) []*element.Fact {
		var out []*element.Fact
		for _, f := range l.live {
			if pred == nil || pred(f) {
				out = append(out, f)
			}
		}
		return out
	})
}

// keyedLineage pairs a lineage with its key so cross-shard gathers sort
// once and avoid re-hashing keys back to shards in the output loop.
type keyedLineage struct {
	key element.FactKey
	l   *lineage
}

// scanAllLocked iterates every shard's lineages in deterministic
// (attribute, entity) key order, clones the picked facts and returns
// them. Callers hold every shard's lock.
func (s *Store) scanAllLocked(pick func(*lineage) []*element.Fact) []*element.Fact {
	total := 0
	for _, sh := range s.shards {
		total += len(sh.byKey)
	}
	pairs := make([]keyedLineage, 0, total)
	for _, sh := range s.shards {
		for k, l := range sh.byKey {
			pairs = append(pairs, keyedLineage{k, l})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].key.Attribute != pairs[j].key.Attribute {
			return pairs[i].key.Attribute < pairs[j].key.Attribute
		}
		return pairs[i].key.Entity < pairs[j].key.Entity
	})
	var out []*element.Fact
	for _, p := range pairs {
		for _, f := range pick(p.l) {
			out = append(out, f.Clone())
		}
	}
	return out
}

// ValiditySet returns the coalesced set of intervals over which
// (entity, attr) is believed to have had any value.
func (s *Store) ValiditySet(entity, attr string) *temporal.Set {
	sh := s.shardFor(entity, attr)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	set := temporal.NewSet()
	if l := sh.byKey[element.FactKey{Entity: entity, Attribute: attr}]; l != nil {
		for _, f := range l.live {
			set.Add(f.Validity)
		}
	}
	return set
}

// CompactBefore bounds history growth along both time axes: it drops every
// believed version whose validity ends at or before t, and every
// superseded record whose belief interval closed at or before t. Open
// versions are always retained. Compaction is lossy for transaction-time
// queries about the dropped records, exactly as it is for valid-time
// queries about dropped history. It returns the number of believed
// versions removed.
//
// Compaction sweeps shards under their own write locks — per-lineage
// atomicity is all it needs — so reads and writes on other shards proceed
// while it runs. Shards are swept on up to GOMAXPROCS workers; use
// CompactBeforeWithWorkers to bound the sweep explicitly (the engine
// bounds it with its ingestion parallelism).
func (s *Store) CompactBefore(t temporal.Instant) int {
	return s.CompactBeforeWithWorkers(t, runtime.GOMAXPROCS(0))
}

// CompactBeforeWithWorkers is CompactBefore with an explicit worker
// bound: shards are swept concurrently on min(workers, shards) goroutines
// (workers <= 1 sweeps serially, shard by shard). Per-shard sweeps are
// independent, so the removed count and resulting state do not depend on
// the worker count.
func (s *Store) CompactBeforeWithWorkers(t temporal.Instant, workers int) int {
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	if workers <= 1 {
		removed := 0
		for _, sh := range s.shards {
			removed += sh.compactBefore(t)
		}
		return removed
	}
	var (
		total atomic.Int64
		next  atomic.Int64
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.shards) {
					return
				}
				total.Add(int64(s.shards[i].compactBefore(t)))
			}
		}()
	}
	wg.Wait()
	return int(total.Load())
}

// compactBefore sweeps one shard under its write lock; see CompactBefore.
func (sh *shard) compactBefore(t temporal.Instant) int {
	removed := 0
	sh.mu.Lock()
	for key, l := range sh.byKey {
		keptLive := l.live[:0]
		for _, f := range l.live {
			if f.Validity.End <= t {
				removed++
				sh.versions--
			} else {
				keptLive = append(keptLive, f)
			}
		}
		l.live = keptLive
		keptRecords := l.records[:0]
		for _, f := range l.records {
			drop := (!f.Superseded() && f.Validity.End <= t) ||
				(f.Superseded() && f.SupersededAt <= t)
			if drop {
				sh.records--
			} else {
				keptRecords = append(keptRecords, f)
			}
		}
		l.records = keptRecords
		if len(l.records) == 0 {
			sh.dropLineage(key)
		}
	}
	sh.mu.Unlock()
	return removed
}

// DropDerived removes every derived version (facts materialized by the
// reasoner), returning how many believed versions were dropped. The
// reasoner uses this to rematerialize from scratch after a retraction.
// Derived records are removed physically — they are a cache over the
// asserted state, not part of the audit history. Like CompactBefore, it
// sweeps one shard at a time.
func (s *Store) DropDerived() int {
	removed := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for key, l := range sh.byKey {
			keptLive := l.live[:0]
			for _, f := range l.live {
				if f.Derived {
					removed++
					sh.versions--
				} else {
					keptLive = append(keptLive, f)
				}
			}
			l.live = keptLive
			keptRecords := l.records[:0]
			for _, f := range l.records {
				if f.Derived {
					sh.records--
				} else {
					keptRecords = append(keptRecords, f)
				}
			}
			l.records = keptRecords
			if len(l.records) == 0 {
				sh.dropLineage(key)
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// Stats summarizes store occupancy.
type Stats struct {
	// Keys is the number of (entity, attribute) lineages.
	Keys int
	// Versions is the number of believed fact versions.
	Versions int
	// Current is the number of open believed versions.
	Current int
	// Attributes is the number of distinct attributes.
	Attributes int
	// Records is the total number of stored records, including versions
	// superseded by retroactive corrections.
	Records int
	// Superseded is the number of records no longer part of the current
	// belief (Records - Versions).
	Superseded int
	// TxHigh is the transaction clock's high-water mark.
	TxHigh temporal.Instant
	// Shards is the number of lock-striped partitions.
	Shards int
}

// Stats returns current occupancy counters, summed over one consistent
// cut of every shard.
func (s *Store) Stats() Stats {
	s.rlockAll()
	defer s.runlockAll()
	st := Stats{TxHigh: s.clock.now(), Shards: len(s.shards)}
	attrs := make(map[string]struct{})
	for _, sh := range s.shards {
		st.Keys += len(sh.byKey)
		st.Versions += sh.versions
		st.Records += sh.records
		for a := range sh.byAttr {
			attrs[a] = struct{}{}
		}
		for _, l := range sh.byKey {
			if l.current() != nil {
				st.Current++
			}
		}
	}
	st.Attributes = len(attrs)
	st.Superseded = st.Records - st.Versions
	return st
}

// View is a read-only, point-in-time view of the store along both time
// axes: reads resolve as of instant t in valid time AND transaction time,
// so a View is immutable even under retroactive corrections recorded
// later — the engine's Snapshot interaction policy is built on this.
// Views are cheap: they borrow the store's bitemporal history rather than
// copying it. Multi-key reads (ByAttribute, All) take every shard's read
// lock, so each call observes one consistent multi-shard cut.
type View struct {
	store *Store
	at    temporal.Instant
}

// ViewAt returns a read-only view of the state as believed and valid at t.
// Callers that coordinate views with their own clock (the engine pins
// views at watermarks) should AdvanceClock(t) first, so no later
// default-clock write can commit at or before the view instant.
func (s *Store) ViewAt(t temporal.Instant) *View { return &View{store: s, at: t} }

// At reports the view's instant.
func (v *View) At() temporal.Instant { return v.at }

// Get returns the version of (entity, attr) valid at the view instant.
func (v *View) Get(entity, attr string) (*element.Fact, bool) {
	return v.store.Find(entity, attr, AsOfValidTime(v.at), AsOfTransactionTime(v.at))
}

// ByAttribute returns all facts for attr valid at the view instant.
func (v *View) ByAttribute(attr string) []*element.Fact {
	return v.store.List(WithAttribute(attr), AsOfValidTime(v.at), AsOfTransactionTime(v.at))
}

// All returns every fact valid at the view instant.
func (v *View) All() []*element.Fact {
	return v.store.List(AsOfValidTime(v.at), AsOfTransactionTime(v.at))
}
