// Package state implements the state repository of Figure 1 as a
// bitemporal database: every fact version carries a valid-time interval
// (when it held in the modeled world) and a transaction-time interval
// (when the store believed it), with point (as-of) and range (during)
// temporal queries along both axes, change notification, compaction, and
// append-only log persistence with recovery.
//
// The store realizes the paper's §3 proposal — "we model state as a
// collection of data elements annotated with their time of validity" — and
// the §3.3 suggestion to "implement the state component as a temporal
// database, thus enabling the query and retrieval of both the current
// state and historical data".
//
// The unit of storage is a lineage: the record history of one
// (entity, attribute) key. At every transaction time the believed versions
// of a lineage form an ordered, non-overlapping sequence, so exactly one
// version holds at every valid-time point — this is what prevents the
// "visitor simultaneously in multiple rooms" contradictions of §1.
// Retroactive writes supersede (never destroy) the record versions they
// revise: the superseded record keeps its original validity with a closed
// transaction-time interval, and trimmed replacements join the current
// belief. AsOfTransactionTime reads recover any past belief exactly.
//
// Lineages are hash-partitioned across an array of shards (see shard.go)
// whose locks serialize writers only: every lineage publishes an
// immutable head — the record and belief slices readers walk — through an
// atomic pointer, swapped on each mutation (copy-on-write with
// shared-prefix appends on the monotonic hot path). Readers resolve
// against published heads pinned at a transaction-clock instant, so
// cross-shard scans and snapshot handles never hold a shard lock and
// never stall a writer; see snapshot.go and DESIGN.md "Snapshot epochs".
//
// Durability is layered, not monolithic: the WAL (log.go) makes every
// mutation replayable, and the flush/recovery seam (flush.go — FlushCut,
// LoadLineage, Log.TruncateBefore) lets the segment backend
// (internal/state/segment) persist published heads as immutable segment
// files so recovery replays only the WAL tail since the last flush.
//
// The preferred API is the option-based bitemporal surface in db.go
// (Find/List/Put/Delete/History with ReadOpt/WriteOpt). The positional
// methods (Put/Assert/Retract/Current/ValidAt/AsOf/...) are retained as
// thin deprecated wrappers with their historical semantics.
package state

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Errors returned by store mutations.
var (
	// ErrOutOfOrder reports a positional mutation earlier than the key's
	// latest believed version start; the legacy surface requires per-key
	// timestamp-monotonic updates. (The option-based surface instead
	// treats such writes as retroactive corrections.)
	ErrOutOfOrder = errors.New("state: mutation out of timestamp order for key")
	// ErrOverlap reports an explicit-interval assertion that overlaps an
	// existing version of the same key.
	ErrOverlap = errors.New("state: validity interval overlaps existing version")
	// ErrNoCurrent reports a retraction of a key with no open version.
	ErrNoCurrent = errors.New("state: no current version to retract")
)

// ChangeKind classifies a state change event.
type ChangeKind int

// Change kinds delivered to watchers.
const (
	// Asserted: a new version became part of the state.
	Asserted ChangeKind = iota
	// Terminated: an open version's validity was closed (or a version was
	// superseded by a retroactive correction).
	Terminated
)

// String names the change kind.
func (k ChangeKind) String() string {
	if k == Asserted {
		return "asserted"
	}
	return "terminated"
}

// Change describes one state transition, delivered synchronously to
// watchers in mutation order.
type Change struct {
	Kind ChangeKind
	// Fact is the affected version. For Terminated changes the validity
	// reflects the new (closed) interval. The pointer is store-owned —
	// shared with the lineage rather than cloned, so the watched write
	// path stays allocation-free — which means its belief end may keep
	// moving after delivery: watchers must not mutate it and must read
	// the supersession state through the atomic accessors (BeliefEnd,
	// Superseded, Clone), never the raw SupersededAt field.
	Fact *element.Fact
	// At is the application time of the transition.
	At temporal.Instant
}

// Watcher observes state changes. Watchers run synchronously after the
// mutation commits (outside the shard lock), in mutation order for a
// single mutator; they may read back into the store — standing queries
// (internal/query.RegisterContinuous) rely on this. Under concurrent
// mutators, a watcher may observe store state newer than its Change.
type Watcher func(Change)

// BatchWatcher observes the full change set of one mutation (a Put, a
// retroactive write, or one PutBatch call) in a single callback instead
// of one call per change. It exists for high-volume taps — the engine's
// watermark capture uses it — where per-change callback and locking
// overhead on the write path matters. The slice is store-owned scratch,
// valid only for the duration of the call: implementations must copy out
// the Change structs they retain and never keep the slice itself.
type BatchWatcher func([]Change)

// lineage is the bitemporal record history of one key. All of its data
// lives in the published head; the lineage itself is just the stable
// identity the shard directory and key map point at.
type lineage struct {
	key  element.FactKey
	head atomic.Pointer[head]

	// access is the lineage's recency stamp — the store's accessSeq value
	// at its last point read or write — consumed by EvictToBudget's LRU
	// ordering. Stamped only when access tracking is enabled (budgeted
	// stores; see SetAccessTracking), so unbudgeted reads pay nothing.
	access atomic.Int64
}

// head is the published, immutable read state of one lineage. A mutation
// builds a successor head and swaps the lineage's pointer; readers load
// the pointer once and walk a consistent value without locks.
//
// Immutability is structural, with two deliberate sharing rules that keep
// the monotonic hot path O(1):
//
//   - records and closed are append-only across successor heads: a
//     successor may append into spare capacity of the shared backing
//     array, beyond every previously published length. Readers never
//     index past their own head's length, and the atomic head swap
//     publishes the appended elements (release/acquire).
//   - the facts themselves are immutable except SupersededAt, which a
//     later write closes in place via Fact.MarkSuperseded; readers use
//     the atomic accessors (Fact.VisibleAt / BeliefEnd / Clone).
//
// Any other shape of change (mid-slice insertion or removal) copies the
// affected slices into fresh arrays.
type head struct {
	// records holds every version ever written, in recording order.
	records []*element.Fact
	// closed is the current belief's versions with closed validity, in
	// validity order with pairwise disjoint intervals.
	closed []*element.Fact
	// open is the current belief's open ("until further notice") version,
	// nil when none. Because beliefs are disjoint, open always follows
	// every closed version in validity order.
	open *element.Fact
	// maxTx is the highest transaction time that has touched this
	// lineage — writes AND compaction sweeps (sweeps bump it so the
	// durability flusher revisits swept lineages). A reader pinned at
	// tt >= maxTx can resolve against the belief slices directly;
	// earlier pins fall back to the record scan.
	maxTx temporal.Instant
	// lastWrite is the highest transaction time of an actual WRITE
	// (commit or supersession) — unlike maxTx it is NOT bumped by
	// sweeps. The durability layer compares it against a segment
	// frame's cut: a frame at cut >= lastWrite is truthful history even
	// for a lineage compaction has since emptied, while one older than
	// lastWrite is stale and needs a tombstone.
	lastWrite temporal.Instant
	// txOrdered tracks whether records are non-decreasing in RecordedAt —
	// always true unless a caller pinned out-of-order explicit transaction
	// times — enabling binary-searched belief reads.
	txOrdered bool
	// vMin/vMax are the lineage's numeric value envelope: inclusive
	// bounds covering the value of every record in this head. vNumeric
	// reports that the head has at least one record and every record's
	// value is numeric (int or float) — only then may a scan skip the
	// lineage on a disjoint ValueBounds (see skipByBounds): with the
	// whole record set inside a disjoint envelope, no read of any
	// temporal shape or pin can select a record satisfying the bound.
	// The envelope is maintained at every head-construction site
	// (commit, sweepLineage, buildHead) and published with the head, so
	// index reads are as lock-free as head reads.
	vMin, vMax float64
	vNumeric   bool
}

// emptyHead is the shared head of a lineage with no records yet.
var emptyHead = &head{maxTx: temporal.MinInstant, lastWrite: temporal.MinInstant, txOrdered: true}

// observeValue folds one new record value into the head's numeric value
// envelope. hadRecords distinguishes the lineage's first record (which
// seeds the bounds) from later ones (which widen them). Any non-numeric
// value permanently voids vNumeric for the head chain — a mixed lineage
// is never envelope-pruned.
func (h *head) observeValue(v element.Value, hadRecords bool) {
	f, ok := v.AsFloat()
	if !ok {
		h.vNumeric = false
		return
	}
	if !hadRecords {
		h.vMin, h.vMax, h.vNumeric = f, f, true
		return
	}
	if !h.vNumeric {
		return
	}
	if f < h.vMin {
		h.vMin = f
	}
	if f > h.vMax {
		h.vMax = f
	}
}

// recomputeValueEnv rebuilds the value envelope from h.records. Sweeps
// use it after removing records so the bounds track the surviving set
// (a stale superset would stay sound but prune less).
func (h *head) recomputeValueEnv() {
	h.vMin, h.vMax, h.vNumeric = 0, 0, false
	for i, f := range h.records {
		h.observeValue(f.Value, i > 0)
	}
}

// skipByBounds reports whether no record of this head can satisfy b:
// the lineage is non-empty, purely numeric, and its value envelope is
// disjoint from the bound. Lineages holding any non-numeric record are
// never skipped — the pushed predicate itself decides those rows, so
// pruning stays exactly as selective as evaluation.
func (h *head) skipByBounds(b ValueBounds) bool {
	return h.vNumeric && b.disjoint(h.vMin, h.vMax)
}

// nLive reports the number of believed versions.
func (h *head) nLive() int {
	n := len(h.closed)
	if h.open != nil {
		n++
	}
	return n
}

// liveAt returns the i-th believed version in validity order.
func (h *head) liveAt(i int) *element.Fact {
	if i < len(h.closed) {
		return h.closed[i]
	}
	return h.open
}

// lastLive returns the believed version with the latest validity start.
func (h *head) lastLive() *element.Fact {
	if h.open != nil {
		return h.open
	}
	if n := len(h.closed); n > 0 {
		return h.closed[n-1]
	}
	return nil
}

// validAt resolves the current belief's version valid at t.
func (h *head) validAt(t temporal.Instant) *element.Fact {
	i := sort.Search(len(h.closed), func(k int) bool {
		return h.closed[k].Validity.End > t
	})
	if i < len(h.closed) && h.closed[i].Validity.Contains(t) {
		return h.closed[i]
	}
	if h.open != nil && h.open.Validity.Contains(t) {
		return h.open
	}
	return nil
}

// pick resolves a point read against this head: the version selected by
// validAt/txAt. Belief-pinned reads resolve against the live slices first
// — for a pin at or after every write that touched the lineage (the
// common case: scans pin the clock's high-water mark, the engine pins
// watermarks) the believed version IS the belief at the pin, so the read
// costs the same as a current-belief read. Only genuinely historical pins
// walk the record history.
func (h *head) pick(cfg readCfg) *element.Fact {
	if !cfg.hasTxAt {
		if !cfg.hasValidAt {
			return h.open
		}
		return h.validAt(cfg.validAt)
	}
	tt := cfg.txAt
	var cand *element.Fact
	if !cfg.hasValidAt {
		cand = h.open
	} else {
		cand = h.validAt(cfg.validAt)
	}
	if cand != nil && cand.VisibleAt(tt) && (h.txOrdered || h.maxTx <= tt) {
		// cand is believed at tt and is the unique answer: with tx-ordered
		// records, any other version visible at tt with the same shape
		// would have been superseded when cand was recorded; with
		// maxTx <= tt, the visible-at-tt set IS the live set (every
		// supersession happened at or before tt). Out-of-order explicit
		// transaction times void the first argument — an older-recorded
		// version may remain visible at tt alongside cand — so such
		// lineages take the best-by-RecordedAt scan below for genuinely
		// historical pins.
		return cand
	}
	if cand == nil && h.maxTx <= tt {
		// Every record of this head was written at or before tt, so the
		// live resolution above already was the belief at tt.
		return nil
	}
	matches := func(f *element.Fact) bool {
		if !cfg.hasValidAt {
			return f.IsCurrent()
		}
		return f.Validity.Contains(cfg.validAt)
	}
	if h.txOrdered {
		// Records are ordered by RecordedAt, so the belief at tt lives in
		// the recorded-by-tt prefix; scanning it backwards, the first
		// visible match is the unique believed version (beliefs are
		// disjoint, and anything recorded later in the prefix supersedes
		// earlier overlapping records).
		hi := sort.Search(len(h.records), func(k int) bool {
			return h.records[k].RecordedAt > tt
		})
		for i := hi - 1; i >= 0; i-- {
			if f := h.records[i]; f.VisibleAt(tt) && matches(f) {
				return f
			}
		}
		return nil
	}
	var best *element.Fact
	for _, f := range h.records {
		if !f.VisibleAt(tt) || !matches(f) {
			continue
		}
		if best == nil || f.RecordedAt > best.RecordedAt {
			best = f
		}
	}
	return best
}

// believedAt returns the versions believed at tt (the current belief when
// pinned is false), ordered by validity start. The caller may not mutate
// the result when it aliases the head's own slices; gather paths clone
// facts as they copy them out.
func (h *head) believedAt(tt temporal.Instant, pinned bool) []*element.Fact {
	if !pinned || h.maxTx <= tt {
		// The live slices are the belief at tt: versions superseded after
		// the head was built carry BeliefEnd > maxTx. (A concurrent
		// explicit past transaction time could violate that bound; such
		// writes forfeit scan isolation — see DESIGN.md.)
		if h.open == nil {
			return h.closed
		}
		out := make([]*element.Fact, 0, len(h.closed)+1)
		out = append(out, h.closed...)
		return append(out, h.open)
	}
	var out []*element.Fact
	for _, f := range h.records {
		if f.VisibleAt(tt) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Validity.Start != out[j].Validity.Start {
			return out[i].Validity.Start < out[j].Validity.Start
		}
		return out[i].RecordedAt < out[j].RecordedAt
	})
	return out
}

// overlappingLive returns the believed versions overlapping w, in order.
func (h *head) overlappingLive(w temporal.Interval) []*element.Fact {
	i := sort.Search(len(h.closed), func(k int) bool {
		return h.closed[k].Validity.End > w.Start
	})
	j := i
	for j < len(h.closed) && h.closed[j].Validity.Start < w.End {
		j++
	}
	var out []*element.Fact
	if i < j {
		out = append(out, h.closed[i:j]...)
	}
	if h.open != nil && h.open.Validity.Overlaps(w) {
		out = append(out, h.open)
	}
	return out
}

// Store is the state repository. It is safe for concurrent use: lineages
// are hash-partitioned across shards (shard.go) whose locks serialize
// writers, while readers resolve against atomically published heads.
type Store struct {
	shards    []*shard
	shardMask uint64
	clock     txClock

	// obsMu guards the mutation observers: the watcher list and the
	// attached log. Both are read at the start of every mutation and
	// written only by Watch/AttachLog.
	obsMu    sync.RWMutex
	watchers []Watcher
	batchWs  []BatchWatcher
	log      *Log

	// compaction is the per-shard compaction scheduling policy; nil
	// disables automatic sweeps. See SetCompactionPolicy.
	compaction atomic.Pointer[CompactionPolicy]

	// retainSwept makes sweeps keep fully-emptied lineages as empty
	// husks (published empty head, bumped maxTx) instead of deleting
	// them. The durability layer needs the husk: FlushCut emits it as a
	// tombstone so the key's stale segment frame stops answering, then
	// DropSweptBefore removes it once the tombstone is durable. See
	// SetRetainSwept.
	retainSwept atomic.Bool

	// cold is the installed cold-read backend (see ColdSource in
	// evict.go): reads for non-resident lineages fall through to it and
	// scans union its durable-only lineages into the gather. Nil when
	// the store is purely RAM-resident.
	cold atomic.Pointer[coldSourceRef]

	// accessSeq is the recency clock for eviction's LRU ordering; each
	// tracked access stamps its lineage with the next value. trackAccess
	// gates the stamping — only budgeted stores pay the atomics.
	accessSeq   atomic.Int64
	trackAccess atomic.Bool
}

// NewStore returns an empty store with a GOMAXPROCS-scaled shard count.
func NewStore() *Store {
	return NewStoreWithShards(0)
}

// NewStoreWithShards returns an empty store with a fixed shard count,
// rounded up to a power of two. n == 1 yields the single-lock layout of
// the pre-sharding store (every lineage behind one mutex) — useful as a
// contention baseline; n <= 0 selects the GOMAXPROCS-scaled default.
func NewStoreWithShards(n int) *Store {
	if n <= 0 {
		n = defaultShardCount()
	}
	n = nextPowerOfTwo(n)
	s := &Store{
		shards:    make([]*shard, n),
		shardMask: uint64(n - 1),
	}
	for i := range s.shards {
		sh := &shard{byKey: make(map[element.FactKey]*lineage)}
		sh.pub.Store(emptyPub)
		s.shards[i] = sh
	}
	return s
}

// ShardCount reports the number of shards the store partitions its
// lineages across.
func (s *Store) ShardCount() int { return len(s.shards) }

// AttachLog makes the store append every mutation to the given log. Attach
// before the first mutation; mutations made earlier are not re-logged.
func (s *Store) AttachLog(l *Log) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	s.log = l
}

// Watch registers a watcher for all subsequent changes.
func (s *Store) Watch(w Watcher) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	s.watchers = append(s.watchers, w)
}

// WatchBatch registers a batch watcher for all subsequent changes.
func (s *Store) WatchBatch(w BatchWatcher) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	s.batchWs = append(s.batchWs, w)
}

// observers snapshots the watcher lists and attached log for one mutation.
func (s *Store) observers() ([]Watcher, []BatchWatcher, *Log) {
	s.obsMu.RLock()
	defer s.obsMu.RUnlock()
	return s.watchers, s.batchWs, s.log
}

// changeBufs recycles the per-mutation change scratch: with any watcher
// registered every write assembles a []Change, and at ingest rates a
// fresh slice per element is pure GC pressure. Buffers are cleared of
// fact pointers before pooling so they never pin lineage memory.
var changeBufs = sync.Pool{New: func() any { return new([]Change) }}

// takeChangeBuf borrows an empty change buffer from the pool.
func takeChangeBuf() *[]Change {
	return changeBufs.Get().(*[]Change)
}

// putChangeBuf clears and returns a change buffer to the pool. Safe only
// after every observer of the buffer has returned: per-change watchers
// receive struct copies and batch watchers must not retain the slice.
func putChangeBuf(bp *[]Change, changes []Change) {
	for i := range changes {
		changes[i] = Change{}
	}
	*bp = changes[:0]
	changeBufs.Put(bp)
}

// AdvanceClock advances the transaction clock's high-water mark to at
// least t, so every subsequent default-clock write — on any shard —
// commits strictly after t. The engine calls this when its watermark
// advances: a snapshot handle pinned at the watermark then reads one
// consistent multi-shard cut that later default writes cannot disturb.
func (s *Store) AdvanceClock(t temporal.Instant) {
	s.clock.observe(t)
}

// notifyAll dispatches committed changes to the given watcher snapshot;
// call only after releasing the shard lock. Per-change watchers see one
// call per change in mutation order; batch watchers see the whole set in
// one call.
func notifyAll(ws []Watcher, bws []BatchWatcher, changes []Change) {
	if len(changes) == 0 {
		return
	}
	for _, c := range changes {
		for _, w := range ws {
			w(c)
		}
	}
	for _, w := range bws {
		w(changes)
	}
}

// writeReq is one resolved-or-resolvable mutation against a lineage. The
// option-based and legacy surfaces both funnel into apply. Like readCfg,
// its temporal selectors are value+flag pairs so building a request on the
// hot write path does not heap-allocate the instants.
type writeReq struct {
	entity, attr string
	value        element.Value
	validFrom    temporal.Instant // meaningful when hasValidFrom; else the resolved transaction time
	hasValidFrom bool
	validTo      temporal.Instant // meaningful when hasValidTo; else Forever
	hasValidTo   bool
	tx           temporal.Instant // meaningful when hasTx; else the store's transaction clock
	hasTx        bool
	derived      bool
	source       string
	isDelete     bool

	// Legacy-surface semantics flags.
	legacy         bool // log in the positional wire format
	monotonic      bool // reject validFrom earlier than the latest believed start
	requireCurrent bool // ErrNoCurrent unless an open version exists
	noOverlap      bool // ErrOverlap instead of superseding (Assert)
}

// apply validates, commits, logs, and notifies one mutation. It is the
// single non-batched write path of the store; it locks exactly one shard.
func (s *Store) apply(r writeReq) error {
	ws, bws, log := s.observers()
	sh := s.shardFor(r.entity, r.attr)
	record := len(ws) > 0 || len(bws) > 0
	var (
		changes []Change
		bufp    *[]Change
	)
	if record {
		bufp = takeChangeBuf()
		changes = *bufp
	}
	err := func() error {
		sh.mu.Lock()
		defer sh.mu.Unlock()

		// Resolve the transaction time and valid interval. Without an
		// explicit WithTransactionTime, the write reserves the next tick
		// of the transaction clock (one past its high-water mark, or the
		// valid-time start when that is later), so concurrent default
		// writes get distinct belief intervals and every superseded belief
		// stays recoverable. A reserved tick is consumed even when
		// validation or logging fails below: the clock only ever moves
		// forward.
		var tx temporal.Instant
		if r.hasTx {
			tx = r.tx
		} else {
			floor := temporal.MinInstant
			if r.hasValidFrom {
				floor = r.validFrom
			}
			tx = s.clock.reserve(floor)
		}
		from := tx
		if r.hasValidFrom {
			from = r.validFrom
		}
		to := temporal.Forever
		if r.hasValidTo {
			to = r.validTo
		}
		w := temporal.NewInterval(from, to)
		key := element.FactKey{Entity: r.entity, Attribute: r.attr}
		if w.IsEmpty() {
			return fmt.Errorf("state: write %s: empty validity %s", key, w)
		}

		l := sh.byKey[key]
		if l == nil {
			// A write (or delete) to an evicted key must restore the
			// durable record history first: committing onto a fresh
			// lineage would make the next flush frame supersede history
			// the store no longer sees.
			l = s.faultIn(sh, key)
		}
		if l == nil && !r.isDelete {
			l = sh.lineage(key, true)
		}
		if l != nil {
			s.touch(l)
		}
		h := emptyHead
		if l != nil {
			h = l.head.Load()
		}
		if r.requireCurrent && (l == nil || h.open == nil) {
			return fmt.Errorf("%w: %s", ErrNoCurrent, key)
		}
		if l == nil {
			// Option-based delete of a key with no believed state: no-op.
			return nil
		}
		if last := h.lastLive(); last != nil {
			if r.monotonic && from < last.Validity.Start {
				return fmt.Errorf("%w: %s at %s before %s", ErrOutOfOrder, key, from, last.Validity.Start)
			}
			if r.noOverlap && last.Validity.Overlaps(w) {
				return fmt.Errorf("%w: %s: %s overlaps %s", ErrOverlap, key, w, last.Validity)
			}
		}

		var put *element.Fact
		if !r.isDelete {
			put = element.NewFact(r.entity, r.attr, r.value, w)
			put.Derived = r.derived
			put.Source = r.source
			put.RecordedAt = tx
			put.SupersededAt = temporal.Forever
		}

		// Log before mutating: validation is complete and the mutation
		// below cannot fail, so a log error leaves the store untouched.
		// The log serializes appends from concurrent shards through its
		// single-appender channel.
		if log != nil {
			var err error
			switch {
			case r.legacy && r.noOverlap:
				err = log.appendAssert(put)
			case r.legacy && r.isDelete:
				err = log.appendRetract(r.entity, r.attr, from)
			case r.legacy:
				err = log.appendPut(r.entity, r.attr, r.value, from)
			case r.isDelete:
				err = log.appendDelete(r.entity, r.attr, w, tx)
			default:
				err = log.appendPutBi(put)
			}
			if err != nil {
				return err
			}
		}
		s.clock.observe(tx)
		changes = sh.commit(l, put, w, tx, changes, record)
		return nil
	}()
	if err == nil {
		notifyAll(ws, bws, changes)
	}
	if bufp != nil {
		putChangeBuf(bufp, changes)
	}
	if err != nil {
		return err
	}
	s.maybeCompact(sh)
	return nil
}

// commit applies one validated mutation to a lineage under the shard lock
// and publishes the successor head. It supersedes the believed versions
// the write interval w overlaps — re-recording the portions outside w as
// fresh records — and inserts put (when non-nil) as a new believed
// version. With record set, every superseded version appends one
// Terminated change (carrying the left remnant when the write truncates
// it, the superseded version itself when the write covers it entirely)
// and the insert appends one Asserted change. Change facts are the
// store-owned pointers, not clones — recording adds no allocations
// beyond the changes slice itself. Callers hold sh.mu.
func (sh *shard) commit(l *lineage, put *element.Fact, w temporal.Interval, tx temporal.Instant, changes []Change, record bool) []Change {
	h := l.head.Load()
	nh := &head{txOrdered: h.txOrdered, maxTx: h.maxTx, lastWrite: h.lastWrite,
		vMin: h.vMin, vMax: h.vMax, vNumeric: h.vNumeric}
	if put != nil {
		// Re-recorded remnants reuse values already inside the envelope,
		// so the insert is the only value a commit needs to observe.
		nh.observeValue(put.Value, len(h.records) > 0)
	}
	if tx > nh.maxTx {
		nh.maxTx = tx
	}
	if tx > nh.lastWrite {
		nh.lastWrite = tx
	}
	if n := len(h.records); n > 0 && tx < h.records[n-1].RecordedAt {
		nh.txOrdered = false
	}
	appended := 0
	var addedBytes int64

	// Fast path: a replace-shaped write — open-ended interval starting at
	// or after every believed version — touches at most the open version
	// and only ever appends at the tails, so the successor head shares
	// the records and closed backing arrays (shared-prefix append).
	lastClosedEnd := temporal.MinInstant
	if n := len(h.closed); n > 0 {
		lastClosedEnd = h.closed[n-1].Validity.End
	}
	if put != nil && w.End == temporal.Forever && lastClosedEnd <= w.Start &&
		(h.open == nil || w.Start >= h.open.Validity.Start) {
		records, closed := h.records, h.closed
		if o := h.open; o != nil {
			o.MarkSuperseded(tx)
			sh.versions.Add(-1)
			var left *element.Fact
			if o.Validity.Start < w.Start {
				left = sh.reRecord(o, temporal.NewInterval(o.Validity.Start, w.Start), tx)
				records = append(records, left)
				closed = append(closed, left)
				appended++
				addedBytes += approxFactBytes(left)
				sh.versions.Add(1)
			}
			if record {
				ev := o
				if left != nil {
					ev = left
				}
				changes = append(changes, Change{Kind: Terminated, Fact: ev, At: tx})
			}
		}
		records = append(records, put)
		appended++
		addedBytes += approxFactBytes(put)
		sh.versions.Add(1)
		nh.records, nh.closed, nh.open = records, closed, put
		if record {
			changes = append(changes, Change{Kind: Asserted, Fact: put, At: w.Start})
		}
		sh.records.Add(int64(appended))
		sh.growth.Add(int64(appended))
		sh.bytes.Add(addedBytes)
		l.head.Store(nh)
		return changes
	}

	// General path: retroactive or bounded writes and deletes. The belief
	// slices are rebuilt into fresh arrays; records still appends onto the
	// shared history.
	over := h.overlappingLive(w)
	if put == nil && len(over) == 0 {
		// Delete with nothing believed over w: nothing to publish.
		return changes
	}
	records := h.records
	newLive := make([]*element.Fact, 0, h.nLive()+2)
	for i, n := 0, h.nLive(); i < n; i++ {
		f := h.liveAt(i)
		superseded := false
		for _, v := range over {
			if v == f {
				superseded = true
				break
			}
		}
		if !superseded {
			newLive = append(newLive, f)
		}
	}
	for _, v := range over {
		v.MarkSuperseded(tx)
		sh.versions.Add(-1)
		var left *element.Fact
		if v.Validity.Start < w.Start {
			left = sh.reRecord(v, temporal.NewInterval(v.Validity.Start, w.Start), tx)
			records = append(records, left)
			newLive = append(newLive, left)
			appended++
			addedBytes += approxFactBytes(left)
			sh.versions.Add(1)
		}
		if w.End < v.Validity.End {
			right := sh.reRecord(v, temporal.NewInterval(w.End, v.Validity.End), tx)
			records = append(records, right)
			newLive = append(newLive, right)
			appended++
			addedBytes += approxFactBytes(right)
			sh.versions.Add(1)
		}
		if record {
			ev := v
			if left != nil {
				ev = left
			}
			changes = append(changes, Change{Kind: Terminated, Fact: ev, At: tx})
		}
	}
	if put != nil {
		records = append(records, put)
		newLive = append(newLive, put)
		appended++
		addedBytes += approxFactBytes(put)
		sh.versions.Add(1)
		if record {
			changes = append(changes, Change{Kind: Asserted, Fact: put, At: w.Start})
		}
	}
	sort.Slice(newLive, func(i, j int) bool {
		return newLive[i].Validity.Start < newLive[j].Validity.Start
	})
	if n := len(newLive); n > 0 && newLive[n-1].IsCurrent() {
		nh.open = newLive[n-1]
		newLive = newLive[:n-1]
	}
	nh.records, nh.closed = records, newLive
	sh.records.Add(int64(appended))
	sh.growth.Add(int64(appended))
	sh.bytes.Add(addedBytes)
	l.head.Store(nh)
	return changes
}

// reRecord builds a trimmed replacement for a superseded version: same
// value and provenance, validity iv, recorded at tx. The caller links it
// into the successor head's slices.
func (sh *shard) reRecord(v *element.Fact, iv temporal.Interval, tx temporal.Instant) *element.Fact {
	c := v.Clone()
	c.Validity = iv
	c.RecordedAt = tx
	c.SupersededAt = temporal.Forever
	return c
}

// findPick resolves one point read against the key's published head: the
// shard's read lock covers only the O(1) byKey probe, the head walk is
// lock-free. Every point-read surface (Store and Snapshot, Find and the
// spec/value forms) funnels through it. A key with no resident lineage
// falls through to the installed ColdSource (evicted or compacted-away
// lineages whose durable frame is still truthful).
func (s *Store) findPick(entity, attr string, cfg readCfg) *element.Fact {
	key := element.FactKey{Entity: entity, Attribute: attr}
	l := s.shardFor(entity, attr).get(key)
	if l == nil {
		if cs := s.coldSource(); cs != nil {
			if records, ok := cs.ColdRecords(key, specOfCfg(cfg), true); ok {
				return detachedHead(records).pick(cfg)
			}
		}
		return nil
	}
	s.touch(l)
	return l.head.Load().pick(cfg)
}

// restoreAt maps a record's belief end into the cut at tt: a
// supersession recorded after tt was not yet part of that belief, so it
// comes back open. This single helper carries the cut-reconstruction
// invariant for every pinned read surface (cloneAt, scanAt, recordsAt),
// keeping pinned reads self-contained and REPEATABLE — re-reading a
// snapshot handle yields identical facts even after a later write closes
// a record's belief interval in place — and matching what restoring the
// cut's WriteSnapshot would return.
func restoreAt(end, tt temporal.Instant) temporal.Instant {
	if end > tt {
		return temporal.Forever
	}
	return end
}

// cloneAt clones f for a reader, applying restoreAt for belief-pinned
// configurations.
func cloneAt(f *element.Fact, cfg readCfg) *element.Fact {
	c := f.Clone()
	if cfg.hasTxAt {
		c.SupersededAt = restoreAt(c.SupersededAt, cfg.txAt)
	}
	return c
}

// findClone is findPick plus the pinned-read clone semantics.
func (s *Store) findClone(entity, attr string, cfg readCfg) (*element.Fact, bool) {
	if f := s.findPick(entity, attr, cfg); f != nil {
		return cloneAt(f, cfg), true
	}
	return nil, false
}

// Contains reports whether the store holds a lineage (any record
// history, believed or superseded) for (entity, attr). The segment
// backend uses it to decide when a key-level read should fall through
// to durable frames: only when the RAM working set has no lineage at
// all, e.g. after compaction dropped it.
func (s *Store) Contains(entity, attr string) bool {
	return s.shardFor(entity, attr).get(element.FactKey{Entity: entity, Attribute: attr}) != nil
}

// Find returns the version of (entity, attr) selected by the read options:
// by default the open version in the current belief; AsOfValidTime selects
// by valid time, AsOfTransactionTime by belief. Find locks the lineage's
// shard only for the O(1) key-map probe; the head walk is lock-free.
func (s *Store) Find(entity, attr string, opts ...ReadOpt) (*element.Fact, bool) {
	return s.findClone(entity, attr, newReadCfg(opts))
}

// FindSpec is Find with a pre-resolved ReadSpec instead of a ReadOpt list:
// the same selection semantics without allocating option closures. Hot
// paths that issue one point read per stream element use it.
func (s *Store) FindSpec(entity, attr string, spec ReadSpec) (*element.Fact, bool) {
	return s.findClone(entity, attr, spec.cfg())
}

// FindValue returns just the value of the version FindSpec would select.
// Because element.Value is a plain struct, the read allocates nothing: no
// option closures and no defensive Fact clone. This is the engine's
// gate/enrichment read.
func (s *Store) FindValue(entity, attr string, spec ReadSpec) (element.Value, bool) {
	if f := s.findPick(entity, attr, spec.cfg()); f != nil {
		return f.Value, true
	}
	return element.Null, false
}

// pinBarrier establishes a transaction-time pin with the publication
// guarantee cross-shard readers need: when it returns, every write with a
// transaction time at or before the returned instant has published its
// head. It reads the clock's high-water mark, then handshakes each
// shard's lock in index order — RLock immediately followed by RUnlock —
// which drains any writer that was mid-commit when the mark was read
// (writers reserve/observe their tick and publish inside one critical
// section). Later default-clock writes reserve past the mark and filter
// out of the pinned cut by visibility.
//
// The handshake never holds more than one lock and each hold is O(1), so
// a spinning scanner delays any writer by at most one handshake — this,
// not a lock held across the gather, is the entire lock footprint of the
// scan paths. (A concurrent writer pinning an explicit transaction time
// at or before the mark can still commit "into" the cut; see the caveat
// in snapshot.go.)
func (s *Store) pinBarrier() temporal.Instant {
	t := s.clock.now()
	for _, sh := range s.shards {
		sh.mu.RLock()
		_ = len(sh.byKey) // non-empty critical section; the lock pair is the barrier
		sh.mu.RUnlock()
	}
	return t
}

// pinned returns the read configuration with its belief instant resolved:
// a read without AsOfTransactionTime pins the clock's high-water mark
// behind the publication barrier, so a cross-shard gather observes one
// consistent cut — every default-clock write committing during the
// gather carries a later transaction time and filters out. This is the
// snapshot-epoch read protocol; see DESIGN.md "Snapshot epochs".
func (s *Store) pinned(cfg readCfg) readCfg {
	if !cfg.hasTxAt {
		cfg.txAt, cfg.hasTxAt = s.pinBarrier(), true
	} else {
		// Explicit SYSTEM TIME reads still drain mid-commit writers, so a
		// read at an instant the caller just wrote resolves completely.
		s.pinBarrier()
	}
	return cfg
}

// List returns one selected version per key — or, with AllVersions /
// DuringValidTime, every matching version — sorted by (attribute, entity,
// validity start). WithAttribute scopes the scan to one attribute. List is
// a cross-shard read pinned at one transaction-clock instant: it acquires
// no shard locks and never stalls a writer, yet the result is one
// consistent cut of the whole store.
func (s *Store) List(opts ...ReadOpt) []*element.Fact {
	return s.gatherList(s.pinned(newReadCfg(opts)))
}

// ListLockAll is List executed under every shard's read lock — the
// pre-snapshot-epoch gather, in which a long scan stalls every writer for
// its full duration. It is retained purely as the contention baseline for
// the scan-under-ingest benchmark gate (as NewStoreWithShards(1) is for
// lock striping); production callers should use List.
func (s *Store) ListLockAll(opts ...ReadOpt) []*element.Fact {
	s.rlockAll()
	defer s.runlockAll()
	cfg := newReadCfg(opts)
	if !cfg.hasTxAt {
		// Holding every shard lock IS the publication barrier here; taking
		// pinBarrier's handshake on top would re-enter the held locks.
		cfg.txAt, cfg.hasTxAt = s.clock.now(), true
	}
	return s.gatherList(cfg)
}

// pickInto appends the versions cfg selects from one head — the shared
// per-lineage body of the serial (gatherList) and partitioned
// (gatherPartitioned) cross-shard gathers, so both paths select and
// clone byte-identically by construction.
func pickInto(h *head, cfg readCfg, out []*element.Fact) []*element.Fact {
	if !cfg.allVersions {
		if f := h.pick(cfg); f != nil {
			out = append(out, cloneAt(f, cfg))
		}
		return out
	}
	for _, f := range h.believedAt(cfg.txAt, cfg.hasTxAt) {
		if cfg.hasDuring && !f.Validity.Overlaps(cfg.validDuring) {
			continue
		}
		if cfg.hasValidAt && !f.Validity.Contains(cfg.validAt) {
			continue
		}
		out = append(out, cloneAt(f, cfg))
	}
	return out
}

// gatherList runs the List gather for a pinned configuration.
func (s *Store) gatherList(cfg readCfg) []*element.Fact {
	pick := func(h *head, out []*element.Fact) []*element.Fact {
		return pickInto(h, cfg, out)
	}
	shape := shapeOfCfg(cfg)
	if cfg.attr != "" {
		return s.byAttributeAll(cfg.attr, shape, pick)
	}
	return s.scanAll(shape, pick)
}

// Delete removes any value of (entity, attr) over the write options' valid
// interval (default [transaction time, Forever)), superseding the
// overlapped versions at the write's transaction time. Deleting where
// nothing is believed is a no-op.
func (s *Store) Delete(entity, attr string, opts ...WriteOpt) error {
	cfg := newWriteCfg(opts)
	r := writeReq{entity: entity, attr: attr, isDelete: true}
	cfg.fill(&r)
	return s.apply(r)
}

// History returns the version history of (entity, attr): by default the
// current-belief versions in validity order; under AsOfTransactionTime the
// versions believed then; with AllVersions every record ever written —
// including superseded ones — in recording order, and combined with
// AsOfTransactionTime the audit trail of the cut at that instant (records
// recorded by then, supersessions after it undone). Like Find, History
// locks the shard only for the key probe.
func (s *Store) History(entity, attr string, opts ...ReadOpt) []*element.Fact {
	return s.history(entity, attr, newReadCfg(opts))
}

// history is History over a resolved configuration — the shared body
// behind Store.History and Snapshot.History (which clamps cfg to its pin
// first).
func (s *Store) history(entity, attr string, cfg readCfg) []*element.Fact {
	key := element.FactKey{Entity: entity, Attribute: attr}
	l := s.shardFor(entity, attr).get(key)
	var h *head
	if l == nil {
		cs := s.coldSource()
		if cs == nil {
			return nil
		}
		records, ok := cs.ColdRecords(key, specOfCfg(cfg), false)
		if !ok {
			return nil
		}
		h = detachedHead(records)
	} else {
		s.touch(l)
		h = l.head.Load()
	}
	if cfg.allVersions {
		if cfg.hasTxAt {
			return recordsAt(h, cfg.txAt, nil)
		}
		out := make([]*element.Fact, len(h.records))
		for i, f := range h.records {
			out[i] = f.Clone()
		}
		return out
	}
	src := h.believedAt(cfg.txAt, cfg.hasTxAt)
	out := make([]*element.Fact, len(src))
	for i, f := range src {
		out[i] = cloneAt(f, cfg)
	}
	return out
}

// recordsAt clones one head's records of the cut at tt, in recording
// order: records recorded after tt are excluded, and a belief interval
// closed after tt is restored to open — the per-lineage form of the
// WriteSnapshot cut. Shared by allRecordsAt and the AllVersions history
// surfaces so the cut-reconstruction invariant lives in one place.
func recordsAt(h *head, tt temporal.Instant, dst []*element.Fact) []*element.Fact {
	for _, f := range h.records {
		if f.RecordedAt > tt {
			continue
		}
		c := f.Clone()
		c.SupersededAt = restoreAt(c.SupersededAt, tt)
		dst = append(dst, c)
	}
	return dst
}

// Put applies replace semantics on the positional surface: the current
// version of (entity, attr), if any, is terminated at `at`, and a new
// version valid over [at, Forever) is asserted with transaction time `at`.
// This is the paper's canonical state transition ("the most recent
// position invalidates and updates any previous position", §1).
//
// Deprecated: use the option-based Put (db.go) — this wrapper remains for
// timestamp-monotonic callers such as the rule engine.
func (s *Store) Put(entity, attr string, v element.Value, at temporal.Instant) error {
	return s.apply(writeReq{
		entity: entity, attr: attr, value: v,
		validFrom: at, hasValidFrom: true, tx: at, hasTx: true,
		legacy: true, monotonic: true,
	})
}

// Assert inserts a fact with an explicit validity interval. The interval
// must not overlap any believed version of the same key and must start no
// earlier than the latest believed version's start (per-key monotonic
// appends). Use Assert for facts whose full validity is known, e.g.
// bounded reservations, or for reasoner-derived facts.
//
// Deprecated: use the option-based Put with WithValidTime/WithEndValidTime
// (db.go), which supersedes overlaps instead of rejecting them.
func (s *Store) Assert(f *element.Fact) error {
	if f.Validity.IsEmpty() {
		return fmt.Errorf("state: assert %s: empty validity", f.Key())
	}
	return s.apply(writeReq{
		entity: f.Entity, attr: f.Attribute, value: f.Value,
		validFrom: f.Validity.Start, hasValidFrom: true,
		validTo: f.Validity.End, hasValidTo: true,
		tx: f.Validity.Start, hasTx: true,
		derived: f.Derived, source: f.Source,
		legacy: true, monotonic: true, noOverlap: true,
	})
}

// Retract terminates the current version of (entity, attr) at `at`. A
// version that started exactly at `at` leaves the current belief entirely
// (it would have empty validity); as with every mutation, the superseded
// record remains reachable under AsOfTransactionTime.
//
// Deprecated: use the option-based Delete (db.go).
func (s *Store) Retract(entity, attr string, at temporal.Instant) error {
	return s.apply(writeReq{
		entity: entity, attr: attr, isDelete: true,
		validFrom: at, hasValidFrom: true, tx: at, hasTx: true,
		legacy: true, monotonic: true, requireCurrent: true,
	})
}

// Current returns the open version of (entity, attr), if any.
//
// Deprecated: use Find.
func (s *Store) Current(entity, attr string) (*element.Fact, bool) {
	return s.Find(entity, attr)
}

// ValidAt returns the version of (entity, attr) valid at t, if any.
//
// Deprecated: use Find with AsOfValidTime.
func (s *Store) ValidAt(entity, attr string, t temporal.Instant) (*element.Fact, bool) {
	return s.Find(entity, attr, AsOfValidTime(t))
}

// CurrentByAttribute returns the open versions of every entity for the
// given attribute, sorted by entity.
//
// Deprecated: use List with WithAttribute.
func (s *Store) CurrentByAttribute(attr string) []*element.Fact {
	return s.List(WithAttribute(attr))
}

// AsOfByAttribute returns, for the given attribute, the version of every
// entity valid at t, sorted by entity.
//
// Deprecated: use List with WithAttribute and AsOfValidTime.
func (s *Store) AsOfByAttribute(attr string, t temporal.Instant) []*element.Fact {
	return s.List(WithAttribute(attr), AsOfValidTime(t))
}

// byAttributeAll gathers one attribute's lineages from every shard's
// published directory — unioned with the ColdSource's durable-only
// lineages for the attribute — and visits them in entity order,
// lock-free. Resident lineages win over cold entries for the same key
// (the cold copy is at best the identical flushed cut, at worst stale).
func (s *Store) byAttributeAll(attr string, shape ScanShape, pick func(*head, []*element.Fact) []*element.Fact) []*element.Fact {
	var lins []*lineage
	for _, sh := range s.shards {
		lins = append(lins, sh.pub.Load().byAttr[attr]...)
	}
	cold := s.coldLineagesFor(shape, ValueBounds{})
	if len(lins) == 0 && len(cold) == 0 {
		return nil
	}
	sort.Slice(lins, func(i, j int) bool { return lins[i].key.Entity < lins[j].key.Entity })
	return s.mergeGather(lins, cold, pick)
}

// AsOf returns every fact valid at t, sorted by (attribute, entity).
//
// Deprecated: use List with AsOfValidTime.
func (s *Store) AsOf(t temporal.Instant) []*element.Fact {
	return s.List(AsOfValidTime(t))
}

// CurrentAll returns every open fact, sorted by (attribute, entity).
//
// Deprecated: use List.
func (s *Store) CurrentAll() []*element.Fact {
	return s.List()
}

// During returns every believed version whose validity overlaps iv, sorted
// by (attribute, entity, start).
//
// Deprecated: use List with DuringValidTime.
func (s *Store) During(iv temporal.Interval) []*element.Fact {
	return s.List(DuringValidTime(iv.Start, iv.End))
}

// Scan returns clones of every version believed at the scan's pinned
// instant (current and historical) matching pred, sorted by (attribute,
// entity, start). A nil pred matches all. Like List, Scan is pinned at
// the clock's high-water mark and acquires no shard locks. The fact
// passed to pred is a reused scratch copy valid only during the call;
// the returned facts are independent clones.
func (s *Store) Scan(pred func(*element.Fact) bool) []*element.Fact {
	return s.scanAt(s.pinBarrier(), pred)
}

// scanAt is Scan pinned at an explicit belief instant. The predicate
// never sees a store-owned fact: it is evaluated on a reused scratch
// copy (taken with the atomic SupersededAt read), so predicates may read
// any field directly without racing a concurrent writer's supersession —
// the all-shard lock that used to provide that safety is gone — while
// only MATCHING versions pay a heap clone. The predicate's argument is
// valid only for the duration of the call; facts in the result are
// fresh, private clones.
func (s *Store) scanAt(tt temporal.Instant, pred func(*element.Fact) bool) []*element.Fact {
	var scratch element.Fact
	shape := ScanShape{TxAt: tt, HasTxAt: true, AllVersions: true}
	return s.scanAll(shape, func(h *head, out []*element.Fact) []*element.Fact {
		for _, f := range h.believedAt(tt, true) {
			scratch = f.Copy()
			scratch.SupersededAt = restoreAt(scratch.SupersededAt, tt)
			if pred == nil || pred(&scratch) {
				c := scratch
				out = append(out, &c)
			}
		}
		return out
	})
}

// scanAll visits every lineage's published head — unioned with the
// ColdSource's durable-only lineages for the shape — in deterministic
// (attribute, entity) key order, appending picked clones, lock-free.
// This is the merged gather behind List, Scan, and WriteSnapshot: cold
// data flows through the exact per-lineage selection resident data
// does, so results are byte-identical whether a lineage is resident or
// evicted.
func (s *Store) scanAll(shape ScanShape, pick func(*head, []*element.Fact) []*element.Fact) []*element.Fact {
	var lins []*lineage
	for _, sh := range s.shards {
		for _, ls := range sh.pub.Load().byAttr {
			lins = append(lins, ls...)
		}
	}
	sort.Slice(lins, func(i, j int) bool {
		return coldKeyLess(lins[i].key, lins[j].key)
	})
	return s.mergeGather(lins, s.coldLineagesFor(shape, ValueBounds{}), pick)
}

// mergeGather runs the sorted merge of resident lineages and cold
// candidates, both in (attribute, entity) order, applying pick to each
// selected head. Equal keys keep the resident head: the cold entry is a
// frame the eviction either never happened for or that a fault-in
// already restored, and RAM is at least as new.
func (s *Store) mergeGather(lins []*lineage, cold []ColdLineage, pick func(*head, []*element.Fact) []*element.Fact) []*element.Fact {
	var out []*element.Fact
	pickCold := func(c ColdLineage) {
		if h := coldHead(c); h != nil {
			out = pick(h, out)
		}
	}
	i, j := 0, 0
	for i < len(lins) && j < len(cold) {
		switch {
		case coldKeyLess(cold[j].Key, lins[i].key):
			pickCold(cold[j])
			j++
		case coldKeyLess(lins[i].key, cold[j].Key):
			out = pick(lins[i].head.Load(), out)
			i++
		default:
			out = pick(lins[i].head.Load(), out)
			i++
			j++
		}
	}
	for ; i < len(lins); i++ {
		out = pick(lins[i].head.Load(), out)
	}
	for ; j < len(cold); j++ {
		pickCold(cold[j])
	}
	return out
}

// ValiditySet returns the coalesced set of intervals over which
// (entity, attr) is believed to have had any value. Like the other
// key-level reads it falls through to the ColdSource for non-resident
// lineages.
func (s *Store) ValiditySet(entity, attr string) *temporal.Set {
	set := temporal.NewSet()
	key := element.FactKey{Entity: entity, Attribute: attr}
	l := s.shardFor(entity, attr).get(key)
	var h *head
	if l == nil {
		cs := s.coldSource()
		if cs == nil {
			return set
		}
		records, ok := cs.ColdRecords(key, ReadSpec{}, false)
		if !ok {
			return set
		}
		h = detachedHead(records)
	} else {
		h = l.head.Load()
	}
	for i, n := 0, h.nLive(); i < n; i++ {
		set.Add(h.liveAt(i).Validity)
	}
	return set
}

// CompactionPolicy schedules per-shard compaction from write growth: once
// a shard has appended GrowthThreshold records since its last sweep, the
// committing writer sweeps just that shard with CompactBefore semantics
// at the instant Horizon returns. Shards therefore compact independently,
// paced by their own write load, instead of store-wide passes.
type CompactionPolicy struct {
	// GrowthThreshold is the per-shard appended-record count that triggers
	// a sweep; values <= 0 disable automatic compaction.
	GrowthThreshold int
	// Horizon returns the compact-before instant at sweep time (e.g. the
	// engine's watermark minus a retention window). Returning MinInstant
	// makes the sweep a no-op.
	Horizon func() temporal.Instant
}

// SetCompactionPolicy installs (or, with nil, removes) the per-shard
// compaction scheduling policy. Sweeps run on the committing writer's
// goroutine after its mutation is published; in-flight snapshot readers
// are unaffected because compaction publishes fresh heads and superseded
// ones drain by garbage collection.
func (s *Store) SetCompactionPolicy(p *CompactionPolicy) {
	s.compaction.Store(p)
}

// maybeCompact sweeps sh when its record growth has crossed the policy
// threshold. Called by writers after releasing the shard lock.
func (s *Store) maybeCompact(sh *shard) {
	p := s.compaction.Load()
	if p == nil || p.GrowthThreshold <= 0 || p.Horizon == nil {
		return
	}
	if sh.growth.Load() < int64(p.GrowthThreshold) {
		return
	}
	t := p.Horizon()
	if t == temporal.MinInstant {
		return
	}
	sh.compactBefore(t, s.clock.now(), s.retainSwept.Load())
}

// CompactBefore bounds history growth along both time axes: it drops every
// believed version whose validity ends at or before t, and every
// superseded record whose belief interval closed at or before t. Open
// versions are always retained. Compaction is lossy for transaction-time
// queries about the dropped records, exactly as it is for valid-time
// queries about dropped history; snapshot handles pinned before the sweep
// keep whatever heads they have already loaded, but re-reads through an
// old pin no longer see the dropped records. It returns the number of
// believed versions removed.
//
// Compaction sweeps shards under their own write locks and publishes a
// fresh head per compacted lineage, so concurrent readers — including
// in-flight lock-free scans — are never blocked and never observe a
// half-swept lineage. Shards are swept on up to GOMAXPROCS workers; use
// CompactBeforeWithWorkers to bound the sweep explicitly (the engine
// bounds it with its ingestion parallelism).
func (s *Store) CompactBefore(t temporal.Instant) int {
	return s.CompactBeforeWithWorkers(t, runtime.GOMAXPROCS(0))
}

// CompactBeforeWithWorkers is CompactBefore with an explicit worker
// bound: shards are swept concurrently on min(workers, shards) goroutines
// (workers <= 1 sweeps serially, shard by shard). Per-shard sweeps are
// independent, so the removed count and resulting state do not depend on
// the worker count.
func (s *Store) CompactBeforeWithWorkers(t temporal.Instant, workers int) int {
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	now := s.clock.now()
	retain := s.retainSwept.Load()
	if workers <= 1 {
		removed := 0
		for _, sh := range s.shards {
			removed += sh.compactBefore(t, now, retain)
		}
		return removed
	}
	var (
		total atomic.Int64
		next  atomic.Int64
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.shards) {
					return
				}
				total.Add(int64(s.shards[i].compactBefore(t, now, retain)))
			}
		}()
	}
	wg.Wait()
	return int(total.Load())
}

// sweepLineage rebuilds one lineage's head without the records matching
// drop, updating the shard counters, and publishes it. It returns how
// many believed versions were removed and whether the lineage emptied
// entirely (the caller then drops it from the indexes). A lineage with
// nothing to drop keeps its published head untouched. Callers hold
// sh.mu. This is the one shared body behind every physical-removal sweep
// (CompactBefore, DropDerived); each supplies only its drop predicate.
//
// A lineage that actually dropped records advances its maxTx to `now`
// (the sweep's clock reading): maxTx is the durability layer's dirty
// test (FlushCut), and a swept lineage must be re-flushed so its segment
// frame stops resurrecting the dropped records on recovery. Bumping
// maxTx only narrows the read fast paths keyed on it (belief-pinned
// reads fall back to the record scan until pins pass the sweep), never
// their correctness.
func (sh *shard) sweepLineage(l *lineage, now temporal.Instant, retain bool, drop func(*element.Fact) bool) (liveRemoved int, emptied bool) {
	h := l.head.Load()
	gone := 0
	var goneBytes int64
	for _, f := range h.records {
		if drop(f) {
			gone++
			goneBytes += approxFactBytes(f)
		}
	}
	if gone == 0 {
		return 0, false
	}
	nh := &head{txOrdered: h.txOrdered, maxTx: h.maxTx, lastWrite: h.lastWrite,
		records: make([]*element.Fact, 0, len(h.records)-gone)}
	if now > nh.maxTx {
		nh.maxTx = now
	}
	for _, f := range h.records {
		if !drop(f) {
			nh.records = append(nh.records, f)
		}
	}
	nh.recomputeValueEnv()
	for _, f := range h.closed {
		if drop(f) {
			liveRemoved++
		} else {
			nh.closed = append(nh.closed, f)
		}
	}
	if h.open != nil {
		if drop(h.open) {
			liveRemoved++
		} else {
			nh.open = h.open
		}
	}
	sh.versions.Add(int64(-liveRemoved))
	sh.records.Add(int64(-gone))
	sh.bytes.Add(-goneBytes)
	if len(nh.records) == 0 {
		if !retain {
			return liveRemoved, true
		}
		// Durability tombstone: keep the emptied lineage as a husk so
		// FlushCut (dirty: maxTx just advanced to now) can persist the
		// emptiness — without it, the key's old segment frame would keep
		// answering fall-through reads and recovery with records this
		// sweep just removed. DropSweptBefore reclaims the husk once the
		// tombstone is durable.
	}
	l.head.Store(nh)
	return liveRemoved, false
}

// sweep applies sweepLineage to every lineage of the shard under its
// write lock, dropping emptied lineages (or retaining them as husks —
// see sweepLineage) and republishing the directory when the key set
// changed. `now` is the sweep's clock reading, stamped into swept
// lineages' maxTx.
func (sh *shard) sweep(now temporal.Instant, retain bool, drop func(*element.Fact) bool) int {
	removed := 0
	sh.mu.Lock()
	dropped := false
	for key, l := range sh.byKey {
		liveRemoved, emptied := sh.sweepLineage(l, now, retain, drop)
		removed += liveRemoved
		if emptied {
			delete(sh.byKey, key)
			dropped = true
		}
	}
	if dropped {
		sh.publishRebuild()
	}
	sh.mu.Unlock()
	return removed
}

// compactBefore sweeps one shard; see CompactBefore. A record is dropped
// when its belief closed at or before t (superseded records) or its
// validity ended at or before t (believed ones). Untouched lineages keep
// their published head; compacted ones get a fresh head built from fresh
// arrays, never mutating slices an in-flight reader may hold.
func (sh *shard) compactBefore(t, now temporal.Instant, retain bool) int {
	sh.growth.Store(0)
	return sh.sweep(now, retain, func(f *element.Fact) bool {
		if end := f.BeliefEnd(); end != temporal.Forever {
			return end <= t
		}
		return f.Validity.End <= t
	})
}

// DropDerived removes every derived version (facts materialized by the
// reasoner), returning how many believed versions were dropped. The
// reasoner uses this to rematerialize from scratch after a retraction.
// Derived records are removed physically — they are a cache over the
// asserted state, not part of the audit history. Like CompactBefore, it
// sweeps one shard at a time and publishes fresh heads.
func (s *Store) DropDerived() int {
	removed := 0
	now := s.clock.now()
	retain := s.retainSwept.Load()
	for _, sh := range s.shards {
		removed += sh.sweep(now, retain, func(f *element.Fact) bool { return f.Derived })
	}
	return removed
}

// Stats summarizes store occupancy.
type Stats struct {
	// Keys is the number of (entity, attribute) lineages.
	Keys int
	// Versions is the number of believed fact versions.
	Versions int
	// Current is the number of open believed versions.
	Current int
	// Attributes is the number of distinct attributes.
	Attributes int
	// Records is the total number of stored records, including versions
	// superseded by retroactive corrections.
	Records int
	// Superseded is the number of records no longer part of the current
	// belief (Records - Versions).
	Superseded int
	// TxHigh is the transaction clock's high-water mark.
	TxHigh temporal.Instant
	// Shards is the number of lock-striped partitions.
	Shards int
}

// Stats returns current occupancy counters. Since the snapshot-epoch
// refactor the counters are per-shard atomics summed without any shard
// lock, so Stats never stalls a writer; each counter is internally
// consistent, and at quiescence the summary is exact. (No pin barrier:
// the summary is a racy instantaneous reading by design, so draining
// mid-commit writers would buy nothing.)
func (s *Store) Stats() Stats {
	st := Stats{TxHigh: s.clock.now(), Shards: len(s.shards)}
	attrs := make(map[string]struct{})
	for _, sh := range s.shards {
		pub := sh.pub.Load()
		st.Keys += pub.n
		st.Versions += int(sh.versions.Load())
		st.Records += int(sh.records.Load())
		for a, lins := range pub.byAttr {
			attrs[a] = struct{}{}
			for _, l := range lins {
				if l.head.Load().open != nil {
					st.Current++
				}
			}
		}
	}
	st.Attributes = len(attrs)
	st.Superseded = st.Records - st.Versions
	return st
}
