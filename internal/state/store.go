// Package state implements the state repository of Figure 1: a bitemporal
// fact store where every fact carries a validity interval, with point
// (as-of) and range (during) temporal queries, change notification,
// compaction, and append-only log persistence with recovery.
//
// The store realizes the paper's §3 proposal — "we model state as a
// collection of data elements annotated with their time of validity" — and
// the §3.3 suggestion to "implement the state component as a temporal
// database, thus enabling the query and retrieval of both the current
// state and historical data".
//
// The unit of storage is a lineage: the ordered, non-overlapping sequence
// of versions of one (entity, attribute) key. Replace semantics (Put)
// terminate the open version and begin a new one at the same instant, so
// exactly one version holds at every point in time — this is what prevents
// the "visitor simultaneously in multiple rooms" contradictions of §1.
package state

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Errors returned by store mutations.
var (
	// ErrOutOfOrder reports a mutation earlier than the key's latest
	// version start; per-key updates must be timestamp-monotonic.
	ErrOutOfOrder = errors.New("state: mutation out of timestamp order for key")
	// ErrOverlap reports an explicit-interval assertion that overlaps an
	// existing version of the same key.
	ErrOverlap = errors.New("state: validity interval overlaps existing version")
	// ErrNoCurrent reports a retraction of a key with no open version.
	ErrNoCurrent = errors.New("state: no current version to retract")
)

// ChangeKind classifies a state change event.
type ChangeKind int

// Change kinds delivered to watchers.
const (
	// Asserted: a new version became part of the state.
	Asserted ChangeKind = iota
	// Terminated: an open version's validity was closed.
	Terminated
)

// String names the change kind.
func (k ChangeKind) String() string {
	if k == Asserted {
		return "asserted"
	}
	return "terminated"
}

// Change describes one state transition, delivered synchronously to
// watchers in mutation order.
type Change struct {
	Kind ChangeKind
	// Fact is the affected version. For Terminated changes the validity
	// reflects the new (closed) interval.
	Fact *element.Fact
	// At is the application time of the transition.
	At temporal.Instant
}

// Watcher observes state changes. Watchers run synchronously after the
// mutation commits (outside the store lock), in mutation order for a
// single mutator; they may read back into the store — standing queries
// (internal/query.RegisterContinuous) rely on this. Under concurrent
// mutators, a watcher may observe store state newer than its Change.
type Watcher func(Change)

// lineage is the version history of one key, ordered by validity start,
// with pairwise disjoint intervals.
type lineage struct {
	key      element.FactKey
	versions []*element.Fact
}

// current returns the open version, if any. Only the last version can be
// open because intervals are disjoint and ordered.
func (l *lineage) current() *element.Fact {
	if n := len(l.versions); n > 0 && l.versions[n-1].IsCurrent() {
		return l.versions[n-1]
	}
	return nil
}

// validAt binary-searches for the version valid at t.
func (l *lineage) validAt(t temporal.Instant) *element.Fact {
	i := sort.Search(len(l.versions), func(k int) bool {
		return l.versions[k].Validity.End > t
	})
	if i < len(l.versions) && l.versions[i].Validity.Contains(t) {
		return l.versions[i]
	}
	return nil
}

// Store is the state repository. It is safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	byKey    map[element.FactKey]*lineage
	byAttr   map[string]map[string]*lineage // attribute → entity → lineage
	versions int
	watchers []Watcher
	log      *Log
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byKey:  make(map[element.FactKey]*lineage),
		byAttr: make(map[string]map[string]*lineage),
	}
}

// AttachLog makes the store append every mutation to the given log. Attach
// before the first mutation; mutations made earlier are not re-logged.
func (s *Store) AttachLog(l *Log) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = l
}

// Watch registers a watcher for all subsequent changes.
func (s *Store) Watch(w Watcher) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watchers = append(s.watchers, w)
}

// notifyAll dispatches committed changes to the given watcher snapshot;
// call only after releasing the store lock.
func notifyAll(ws []Watcher, changes []Change) {
	for _, c := range changes {
		for _, w := range ws {
			w(c)
		}
	}
}

func (s *Store) lineageLocked(key element.FactKey, create bool) *lineage {
	l := s.byKey[key]
	if l == nil && create {
		l = &lineage{key: key}
		s.byKey[key] = l
		ents := s.byAttr[key.Attribute]
		if ents == nil {
			ents = make(map[string]*lineage)
			s.byAttr[key.Attribute] = ents
		}
		ents[key.Entity] = l
	}
	return l
}

// Put applies replace semantics: the current version of (entity, attr), if
// any, is terminated at `at`, and a new version valid over [at, Forever)
// is asserted. This is the paper's canonical state transition ("the most
// recent position invalidates and updates any previous position", §1).
// Put at the exact start of the current version overwrites it in place.
func (s *Store) Put(entity, attr string, v element.Value, at temporal.Instant) error {
	var changes []Change
	var ws []Watcher
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		ws = s.watchers
		key := element.FactKey{Entity: entity, Attribute: attr}
		l := s.lineageLocked(key, true)
		if n := len(l.versions); n > 0 {
			last := l.versions[n-1]
			if at < last.Validity.Start {
				return fmt.Errorf("%w: %s at %s before %s", ErrOutOfOrder, key, at, last.Validity.Start)
			}
			if at == last.Validity.Start {
				// Same-instant overwrite: replace the version's value.
				old := *last
				last.Value = v
				if s.log != nil {
					if err := s.log.appendPut(entity, attr, v, at); err != nil {
						*last = old
						return err
					}
				}
				changes = append(changes, Change{Kind: Asserted, Fact: last.Clone(), At: at})
				return nil
			}
			if last.IsCurrent() {
				last.Validity = last.Validity.ClampEnd(at)
				changes = append(changes, Change{Kind: Terminated, Fact: last.Clone(), At: at})
			}
		}
		f := element.NewFact(entity, attr, v, temporal.Since(at))
		l.versions = append(l.versions, f)
		s.versions++
		if s.log != nil {
			if err := s.log.appendPut(entity, attr, v, at); err != nil {
				return err
			}
		}
		changes = append(changes, Change{Kind: Asserted, Fact: f.Clone(), At: at})
		return nil
	}()
	if err != nil {
		return err
	}
	notifyAll(ws, changes)
	return nil
}

// Assert inserts a fact with an explicit validity interval. The interval
// must not overlap any existing version of the same key and must start no
// earlier than the latest version's start (per-key monotonic appends).
// Use Assert for facts whose full validity is known, e.g. bounded
// reservations, or for reasoner-derived facts.
func (s *Store) Assert(f *element.Fact) error {
	if f.Validity.IsEmpty() {
		return fmt.Errorf("state: assert %s: empty validity", f.Key())
	}
	var ws []Watcher
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		ws = s.watchers
		l := s.lineageLocked(f.Key(), true)
		if n := len(l.versions); n > 0 {
			last := l.versions[n-1]
			if f.Validity.Start < last.Validity.Start {
				return fmt.Errorf("%w: %s", ErrOutOfOrder, f.Key())
			}
			if last.Validity.Overlaps(f.Validity) {
				return fmt.Errorf("%w: %s: %s overlaps %s", ErrOverlap, f.Key(), f.Validity, last.Validity)
			}
		}
		cp := f.Clone()
		l.versions = append(l.versions, cp)
		s.versions++
		if s.log != nil {
			if err := s.log.appendAssert(cp); err != nil {
				return err
			}
		}
		return nil
	}()
	if err != nil {
		return err
	}
	notifyAll(ws, []Change{{Kind: Asserted, Fact: f.Clone(), At: f.Validity.Start}})
	return nil
}

// Retract terminates the current version of (entity, attr) at `at`. If the
// version started exactly at `at` it is removed entirely (it would have
// empty validity).
func (s *Store) Retract(entity, attr string, at temporal.Instant) error {
	var ws []Watcher
	var change Change
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		ws = s.watchers
		key := element.FactKey{Entity: entity, Attribute: attr}
		l := s.lineageLocked(key, false)
		if l == nil {
			return fmt.Errorf("%w: %s", ErrNoCurrent, key)
		}
		cur := l.current()
		if cur == nil {
			return fmt.Errorf("%w: %s", ErrNoCurrent, key)
		}
		if at < cur.Validity.Start {
			return fmt.Errorf("%w: retract %s at %s", ErrOutOfOrder, key, at)
		}
		if at == cur.Validity.Start {
			l.versions = l.versions[:len(l.versions)-1]
			s.versions--
		} else {
			cur.Validity = cur.Validity.ClampEnd(at)
		}
		if s.log != nil {
			if err := s.log.appendRetract(entity, attr, at); err != nil {
				return err
			}
		}
		change = Change{Kind: Terminated, Fact: cur.Clone(), At: at}
		return nil
	}()
	if err != nil {
		return err
	}
	notifyAll(ws, []Change{change})
	return nil
}

// Current returns the open version of (entity, attr), if any.
func (s *Store) Current(entity, attr string) (*element.Fact, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l := s.byKey[element.FactKey{Entity: entity, Attribute: attr}]
	if l == nil {
		return nil, false
	}
	if cur := l.current(); cur != nil {
		return cur.Clone(), true
	}
	return nil, false
}

// ValidAt returns the version of (entity, attr) valid at t, if any.
func (s *Store) ValidAt(entity, attr string, t temporal.Instant) (*element.Fact, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l := s.byKey[element.FactKey{Entity: entity, Attribute: attr}]
	if l == nil {
		return nil, false
	}
	if f := l.validAt(t); f != nil {
		return f.Clone(), true
	}
	return nil, false
}

// History returns all versions of (entity, attr) in validity order.
func (s *Store) History(entity, attr string) []*element.Fact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l := s.byKey[element.FactKey{Entity: entity, Attribute: attr}]
	if l == nil {
		return nil
	}
	out := make([]*element.Fact, len(l.versions))
	for i, f := range l.versions {
		out[i] = f.Clone()
	}
	return out
}

// CurrentByAttribute returns the open versions of every entity for the
// given attribute, sorted by entity.
func (s *Store) CurrentByAttribute(attr string) []*element.Fact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byAttributeLocked(attr, func(l *lineage) *element.Fact { return l.current() })
}

// AsOfByAttribute returns, for the given attribute, the version of every
// entity valid at t, sorted by entity.
func (s *Store) AsOfByAttribute(attr string, t temporal.Instant) []*element.Fact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byAttributeLocked(attr, func(l *lineage) *element.Fact { return l.validAt(t) })
}

func (s *Store) byAttributeLocked(attr string, pick func(*lineage) *element.Fact) []*element.Fact {
	ents := s.byAttr[attr]
	if len(ents) == 0 {
		return nil
	}
	names := make([]string, 0, len(ents))
	for e := range ents {
		names = append(names, e)
	}
	sort.Strings(names)
	out := make([]*element.Fact, 0, len(names))
	for _, e := range names {
		if f := pick(ents[e]); f != nil {
			out = append(out, f.Clone())
		}
	}
	return out
}

// AsOf returns every fact valid at t, sorted by (attribute, entity).
func (s *Store) AsOf(t temporal.Instant) []*element.Fact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scanLocked(func(l *lineage) []*element.Fact {
		if f := l.validAt(t); f != nil {
			return []*element.Fact{f}
		}
		return nil
	})
}

// CurrentAll returns every open fact, sorted by (attribute, entity).
func (s *Store) CurrentAll() []*element.Fact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scanLocked(func(l *lineage) []*element.Fact {
		if f := l.current(); f != nil {
			return []*element.Fact{f}
		}
		return nil
	})
}

// During returns every version whose validity overlaps iv, sorted by
// (attribute, entity, start).
func (s *Store) During(iv temporal.Interval) []*element.Fact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scanLocked(func(l *lineage) []*element.Fact {
		var out []*element.Fact
		// First version that could overlap: End > iv.Start.
		i := sort.Search(len(l.versions), func(k int) bool {
			return l.versions[k].Validity.End > iv.Start
		})
		for ; i < len(l.versions) && l.versions[i].Validity.Start < iv.End; i++ {
			out = append(out, l.versions[i])
		}
		return out
	})
}

// Scan returns clones of every version (current and historical) matching
// pred, sorted by (attribute, entity, start). A nil pred matches all.
func (s *Store) Scan(pred func(*element.Fact) bool) []*element.Fact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scanLocked(func(l *lineage) []*element.Fact {
		var out []*element.Fact
		for _, f := range l.versions {
			if pred == nil || pred(f) {
				out = append(out, f)
			}
		}
		return out
	})
}

// scanLocked iterates lineages in deterministic key order, clones the
// picked facts and returns them.
func (s *Store) scanLocked(pick func(*lineage) []*element.Fact) []*element.Fact {
	keys := make([]element.FactKey, 0, len(s.byKey))
	for k := range s.byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Attribute != keys[j].Attribute {
			return keys[i].Attribute < keys[j].Attribute
		}
		return keys[i].Entity < keys[j].Entity
	})
	var out []*element.Fact
	for _, k := range keys {
		for _, f := range pick(s.byKey[k]) {
			out = append(out, f.Clone())
		}
	}
	return out
}

// ValiditySet returns the coalesced set of intervals over which
// (entity, attr) had any value.
func (s *Store) ValiditySet(entity, attr string) *temporal.Set {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := temporal.NewSet()
	if l := s.byKey[element.FactKey{Entity: entity, Attribute: attr}]; l != nil {
		for _, f := range l.versions {
			set.Add(f.Validity)
		}
	}
	return set
}

// CompactBefore drops every closed version whose validity ends at or
// before t, bounding history growth. Open versions are always retained.
// It returns the number of versions removed.
func (s *Store) CompactBefore(t temporal.Instant) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for key, l := range s.byKey {
		i := 0
		for i < len(l.versions) && l.versions[i].Validity.End <= t {
			i++
		}
		if i > 0 {
			l.versions = append([]*element.Fact(nil), l.versions[i:]...)
			removed += i
		}
		if len(l.versions) == 0 {
			delete(s.byKey, key)
			if ents := s.byAttr[key.Attribute]; ents != nil {
				delete(ents, key.Entity)
				if len(ents) == 0 {
					delete(s.byAttr, key.Attribute)
				}
			}
		}
	}
	s.versions -= removed
	return removed
}

// DropDerived removes every derived version (facts materialized by the
// reasoner), returning how many were dropped. The reasoner uses this to
// rematerialize from scratch after a retraction.
func (s *Store) DropDerived() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for key, l := range s.byKey {
		kept := l.versions[:0]
		for _, f := range l.versions {
			if f.Derived {
				removed++
			} else {
				kept = append(kept, f)
			}
		}
		l.versions = kept
		if len(l.versions) == 0 {
			delete(s.byKey, key)
			if ents := s.byAttr[key.Attribute]; ents != nil {
				delete(ents, key.Entity)
				if len(ents) == 0 {
					delete(s.byAttr, key.Attribute)
				}
			}
		}
	}
	s.versions -= removed
	return removed
}

// Stats summarizes store occupancy.
type Stats struct {
	// Keys is the number of (entity, attribute) lineages.
	Keys int
	// Versions is the total number of stored fact versions.
	Versions int
	// Current is the number of open versions.
	Current int
	// Attributes is the number of distinct attributes.
	Attributes int
}

// Stats returns current occupancy counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Keys: len(s.byKey), Versions: s.versions, Attributes: len(s.byAttr)}
	for _, l := range s.byKey {
		if l.current() != nil {
			st.Current++
		}
	}
	return st
}

// View is a read-only, point-in-time view of the store, used by the
// engine's Snapshot interaction policy: stream rules evaluated against a
// View cannot observe updates later than its instant. Views are cheap —
// they borrow the store's history rather than copying it — and remain
// consistent as long as future mutations carry timestamps >= the view
// instant, which the engine's timestamp-ordered processing guarantees.
type View struct {
	store *Store
	at    temporal.Instant
}

// ViewAt returns a read-only view of the state as of t.
func (s *Store) ViewAt(t temporal.Instant) *View { return &View{store: s, at: t} }

// At reports the view's instant.
func (v *View) At() temporal.Instant { return v.at }

// Get returns the version of (entity, attr) valid at the view instant.
func (v *View) Get(entity, attr string) (*element.Fact, bool) {
	return v.store.ValidAt(entity, attr, v.at)
}

// ByAttribute returns all facts for attr valid at the view instant.
func (v *View) ByAttribute(attr string) []*element.Fact {
	return v.store.AsOfByAttribute(attr, v.at)
}

// All returns every fact valid at the view instant.
func (v *View) All() []*element.Fact { return v.store.AsOf(v.at) }
