package state

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/element"
)

// TestScanUnderIngestLinearizableCut is the snapshot-epoch correctness
// stress (run it with -race): 8 parallel writers each own a disjoint key
// range and write their keys round-robin with a strictly increasing round
// number, while scanners continuously List and Scan the whole store.
//
// Because each writer is sequential and default-clock writes become
// visible in reservation order, every scan must observe, per writer, a
// prefix of that writer's ingest: round values non-increasing in key
// order with a gap of at most one (the writer's in-progress round). Any
// torn cut — a later write visible while an earlier one of the same
// writer is not — breaks the pattern and fails the test. This is the
// linearizable-cut check: each observed cut equals some serial prefix of
// each writer's ingest, i.e. a prefix of a legal interleaving.
func TestScanUnderIngestLinearizableCut(t *testing.T) {
	st := NewStore()
	db := st.DB()
	const (
		writers = 8
		keys    = 12
		rounds  = 150
	)

	var wg, scanWG sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 1; round <= rounds; round++ {
				for k := 0; k < keys; k++ {
					key := fmt.Sprintf("w%d-k%02d", w, k)
					if err := db.Put(key, "v", element.Int(int64(round))); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}
		}(w)
	}

	checkCut := func(kind string, facts []*element.Fact) {
		vals := make(map[string]int64, len(facts))
		for _, f := range facts {
			if f.IsCurrent() {
				vals[f.Entity] = f.Value.MustInt()
			}
		}
		for w := 0; w < writers; w++ {
			prev := int64(rounds + 1)
			var hi, lo int64 = 0, rounds + 1
			for k := 0; k < keys; k++ {
				v := vals[fmt.Sprintf("w%d-k%02d", w, k)] // 0 when not yet written
				if v > prev {
					t.Errorf("%s: torn cut for writer %d: key %d at round %d after round %d",
						kind, w, k, v, prev)
					return
				}
				prev = v
				if v > hi {
					hi = v
				}
				if v < lo {
					lo = v
				}
			}
			if hi-lo > 1 {
				t.Errorf("%s: cut spans rounds %d..%d for writer %d (want at most one in-progress round)",
					kind, lo, hi, w)
				return
			}
		}
	}

	for r := 0; r < 2; r++ {
		scanWG.Add(1)
		go func(r int) {
			defer scanWG.Done()
			for !stop.Load() {
				if r == 0 {
					checkCut("list", st.List(WithAttribute("v")))
				} else {
					checkCut("scan", st.Scan(func(f *element.Fact) bool { return f.IsCurrent() }))
				}
			}
		}(r)
	}

	// A pinned handle must render the identical cut every time it is
	// re-read, no matter how much commits around it.
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		for !stop.Load() {
			snap := st.Snapshot()
			first := fmt.Sprint(snap.List(WithAttribute("v")))
			for i := 0; i < 3; i++ {
				if again := fmt.Sprint(snap.List(WithAttribute("v"))); again != first {
					t.Error("pinned snapshot cut changed between re-reads")
					return
				}
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	scanWG.Wait()

	checkCut("final", st.List(WithAttribute("v")))
	for w := 0; w < writers; w++ {
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("w%d-k%02d", w, k)
			f, ok := db.Find(key, "v")
			if !ok || f.Value.MustInt() != rounds {
				t.Fatalf("lost update on %s: %v", key, f)
			}
		}
	}
}

// TestReaderNeverBlocksWriter is the deterministic no-reader-blocks-
// writer proof: a Scan is paused MIDWAY through its gather (its predicate
// blocks on a channel) and a writer must still commit. Under the
// pre-epoch lock-all gather the Put would wait for the scan to finish and
// the test would time out; with published heads the writer never touches
// a reader's lock. The same holds for a WriteSnapshot gather.
func TestReaderNeverBlocksWriter(t *testing.T) {
	st := NewStore()
	db := st.DB()
	for i := 0; i < 256; i++ {
		if err := db.Put(fmt.Sprintf("e%03d", i), "v", element.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		first := true
		st.Scan(func(f *element.Fact) bool {
			if first {
				first = false
				close(entered)
				<-release
			}
			return true
		})
	}()

	<-entered // the scan is now mid-gather and will stay there
	putDone := make(chan error, 1)
	go func() { putDone <- db.Put("e000", "v", element.Int(999)) }()
	select {
	case err := <-putDone:
		if err != nil {
			t.Fatalf("put during paused scan: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked behind an in-flight scan")
	}
	// Cross-shard maintenance must not block either.
	compactDone := make(chan int, 1)
	go func() { compactDone <- st.CompactBefore(1) }()
	select {
	case <-compactDone:
	case <-time.After(5 * time.Second):
		t.Fatal("compaction blocked behind an in-flight scan")
	}
	close(release)
	<-scanDone

	// Writer latency stays bounded under a continuously spinning scanner.
	var stop atomic.Bool
	var scans atomic.Int64
	var scanWG sync.WaitGroup
	firstScan := make(chan struct{})
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		for !stop.Load() {
			st.List()
			if scans.Add(1) == 1 {
				close(firstScan)
			}
		}
	}()
	<-firstScan // the scanner is demonstrably running before we measure
	var worst time.Duration
	for i := 0; i < 2000; i++ {
		t0 := time.Now()
		if err := db.Put(fmt.Sprintf("e%03d", i%256), "v", element.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d > worst {
			worst = d
		}
	}
	stop.Store(true)
	scanWG.Wait()
	// Lock-free puts take microseconds; a generous absolute bound still
	// catches any regression to scans holding shard locks for the gather.
	if worst > 250*time.Millisecond {
		t.Fatalf("worst put latency %v under a spinning scanner", worst)
	}
	if scans.Load() == 0 {
		t.Fatal("scanner made no progress")
	}
}

// TestStatsLockFreeUnderIngest drives Stats concurrently with writers:
// the atomic counters must never tear (negative or wildly inconsistent
// totals) and the call must not serialize against the write path.
func TestStatsLockFreeUnderIngest(t *testing.T) {
	st := NewStore()
	db := st.DB()
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				if err := db.Put(fmt.Sprintf("w%d-k%02d", w, i%32), "v", element.Int(int64(i))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for !stop.Load() {
			s := st.Stats()
			if s.Keys < 0 || s.Versions < 0 || s.Records < 0 || s.Keys > 4*32 {
				t.Errorf("torn stats: %+v", s)
				return
			}
		}
	}()
	wg.Wait()
	stop.Store(true)
	readerWG.Wait()

	s := st.Stats()
	if s.Keys != 4*32 || s.Versions != s.Records-s.Superseded || s.Current != 4*32 {
		t.Fatalf("final stats: %+v", s)
	}
}
