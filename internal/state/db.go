// Bitemporal StateDB surface: functional read/write options in the
// XTDB/Snodgrass style over the state repository.
//
// Reads compose AsOfValidTime (which version held in the modeled world)
// with AsOfTransactionTime (which version the store believed at the time):
//
//	st.Find("ann", "position")                                  // current belief, open version
//	st.Find("ann", "position", AsOfValidTime(60))               // current belief about t=60
//	st.Find("ann", "position", AsOfValidTime(60),
//	        AsOfTransactionTime(30))                            // what we believed at 30 about 60
//
// Writes default to replace semantics from the store's transaction clock
// onward (there is no wall clock: each default write commits one tick
// past the clock's high-water mark) and accept explicit valid intervals
// for retroactive corrections, which supersede — never destroy — the
// record versions they revise:
//
//	db.Put("ann", "position", v)                                // [clock, Forever)
//	db.Put("ann", "position", v, WithValidTime(10))             // retroactive, open end
//	db.Put("ann", "position", v, WithValidTime(10),
//	       WithEndValidTime(20))                                // bounded correction
//	db.Delete("ann", "position", WithValidTime(10))             // retroactive retraction

package state

import (
	"repro/internal/element"
	"repro/internal/temporal"
)

// StateDB is the bitemporal database interface of §3.3 ("implement the
// state component as a temporal database"): point reads, scans, and
// writes, each parameterized by functional temporal options. *DB is the
// in-memory implementation; the interface is the seam for future backends
// (append-only storage, SQL).
type StateDB interface {
	// Find returns the version of (entity, attr) selected by the read
	// options: by default the open version in the store's current belief.
	Find(entity, attr string, opts ...ReadOpt) (*element.Fact, bool)
	// List returns one selected version per (entity, attribute) key — or
	// every version with AllVersions — sorted by (attribute, entity,
	// validity start).
	List(opts ...ReadOpt) []*element.Fact
	// Put writes a value with replace semantics over the write options'
	// valid interval. Overlapped portions of existing versions are
	// superseded at the write's transaction time.
	Put(entity, attr string, v element.Value, opts ...WriteOpt) error
	// Delete removes any value over the write options' valid interval,
	// superseding the overlapped versions. Deleting where nothing holds is
	// a no-op.
	Delete(entity, attr string, opts ...WriteOpt) error
	// History returns the version history of one key: by default the
	// current-belief versions in validity order; under AsOfTransactionTime
	// the versions believed then; with AllVersions every record ever
	// written, including superseded ones, in recording order.
	History(entity, attr string, opts ...ReadOpt) []*element.Fact
}

// ReadOpt configures a temporal read.
type ReadOpt func(*readCfg)

// readCfg is the resolved form of a ReadOpt list. Its temporal selectors
// are value+flag pairs (not pointers) so a cfg can live on the stack of a
// hot read without forcing the instants to escape.
type readCfg struct {
	validAt     temporal.Instant
	hasValidAt  bool
	validDuring temporal.Interval
	hasDuring   bool
	txAt        temporal.Instant
	hasTxAt     bool
	attr        string
	allVersions bool
}

func newReadCfg(opts []ReadOpt) readCfg {
	var cfg readCfg
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// ReadSpec is the pre-resolved, allocation-free form of a point-read
// option list: the engine's per-element reads build one on the stack
// instead of materializing ReadOpt closures. FindSpec and FindValue accept
// it directly; the zero ReadSpec reads the open version in the current
// belief, exactly like Find with no options.
type ReadSpec struct {
	// ValidAt selects by valid time when HasValidAt is set.
	ValidAt    temporal.Instant
	HasValidAt bool
	// TxAt pins the belief (transaction time) when HasTxAt is set.
	TxAt    temporal.Instant
	HasTxAt bool
}

// cfg converts the spec to the internal read configuration.
func (r ReadSpec) cfg() readCfg {
	return readCfg{
		validAt: r.ValidAt, hasValidAt: r.HasValidAt,
		txAt: r.TxAt, hasTxAt: r.HasTxAt,
	}
}

// SpecOf resolves a point-read option list to its temporal selectors —
// the ReadSpec equivalent of the AsOfValidTime/AsOfTransactionTime
// options in opts. Backends layered over the store (the segment store's
// frame reads) use it to inspect a read's instants, e.g. to prune
// against a per-segment bitemporal envelope, without re-deriving option
// semantics.
func SpecOf(opts ...ReadOpt) ReadSpec {
	cfg := newReadCfg(opts)
	return ReadSpec{
		ValidAt: cfg.validAt, HasValidAt: cfg.hasValidAt,
		TxAt: cfg.txAt, HasTxAt: cfg.hasTxAt,
	}
}

// ScanShape is the fully resolved form of a List/scan option list: every
// temporal selector plus the attribute scope and version cardinality.
// Backends layered over the store use it to reason about a scan's shape
// — e.g. the segment store prunes durable frames whose bitemporal
// envelope cannot overlap the shape — without re-deriving option
// semantics.
type ScanShape struct {
	// ValidAt selects by valid time when HasValidAt is set.
	ValidAt    temporal.Instant
	HasValidAt bool
	// During restricts to versions overlapping the interval when
	// HasDuring is set (DuringValidTime).
	During    temporal.Interval
	HasDuring bool
	// TxAt pins the belief when HasTxAt is set.
	TxAt    temporal.Instant
	HasTxAt bool
	// Attr scopes the scan to one attribute when non-empty.
	Attr string
	// AllVersions reports every matching version instead of one per key.
	AllVersions bool
}

// ShapeOf resolves a scan option list to its shape.
func ShapeOf(opts ...ReadOpt) ScanShape {
	cfg := newReadCfg(opts)
	return ScanShape{
		ValidAt: cfg.validAt, HasValidAt: cfg.hasValidAt,
		During: cfg.validDuring, HasDuring: cfg.hasDuring,
		TxAt: cfg.txAt, HasTxAt: cfg.hasTxAt,
		Attr: cfg.attr, AllVersions: cfg.allVersions,
	}
}

// AsOfValidTime selects the version valid at t in the modeled world.
// Without it, point reads return the open ("until further notice") version.
func AsOfValidTime(t temporal.Instant) ReadOpt {
	return func(c *readCfg) { c.validAt, c.hasValidAt = t, true }
}

// AsOfTransactionTime selects the versions the store believed at
// transaction time tt, making retroactive corrections recorded after tt
// invisible. Without it, reads see the current belief.
func AsOfTransactionTime(tt temporal.Instant) ReadOpt {
	return func(c *readCfg) { c.txAt, c.hasTxAt = tt, true }
}

// DuringValidTime restricts List to versions whose validity overlaps
// [from, to). Implies AllVersions semantics over the overlap range.
func DuringValidTime(from, to temporal.Instant) ReadOpt {
	iv := temporal.NewInterval(from, to)
	return func(c *readCfg) {
		c.validDuring, c.hasDuring = iv, true
		c.allVersions = true
	}
}

// WithAttribute scopes List to one attribute.
func WithAttribute(attr string) ReadOpt {
	return func(c *readCfg) { c.attr = attr }
}

// AllVersions makes List return every version (not one per key) and
// History return superseded records alongside believed ones.
func AllVersions() ReadOpt {
	return func(c *readCfg) { c.allVersions = true }
}

// WriteOpt configures a temporal write.
type WriteOpt func(*writeCfg)

type writeCfg struct {
	validFrom *temporal.Instant
	validTo   *temporal.Instant
	tx        *temporal.Instant
	derived   bool
	source    string
}

func newWriteCfg(opts []WriteOpt) writeCfg {
	var cfg writeCfg
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// fill copies the resolved options into a write request.
func (c writeCfg) fill(r *writeReq) {
	if c.validFrom != nil {
		r.validFrom, r.hasValidFrom = *c.validFrom, true
	}
	if c.validTo != nil {
		r.validTo, r.hasValidTo = *c.validTo, true
	}
	if c.tx != nil {
		r.tx, r.hasTx = *c.tx, true
	}
	r.derived = c.derived
	r.source = c.source
}

// WithValidTime sets the start of the write's valid interval. A start
// earlier than existing versions makes the write a retroactive correction.
// Defaults to the write's transaction time.
func WithValidTime(t temporal.Instant) WriteOpt {
	return func(c *writeCfg) { c.validFrom = &t }
}

// WithEndValidTime bounds the write's valid interval: the value holds over
// [WithValidTime, end) instead of [WithValidTime, Forever).
func WithEndValidTime(end temporal.Instant) WriteOpt {
	return func(c *writeCfg) { c.validTo = &end }
}

// WithTransactionTime pins the write's transaction time instead of the
// store's transaction clock (one tick past the high-water mark of times
// seen so far). Transaction times should be non-decreasing; the engine
// uses stream timestamps, which its ordering guarantees. Out-of-order
// explicit times are accepted but drop the lineage to linear-scan belief
// reads.
func WithTransactionTime(tt temporal.Instant) WriteOpt {
	return func(c *writeCfg) { c.tx = &tt }
}

// WithSource labels the written version with the producing rule's name.
func WithSource(source string) WriteOpt {
	return func(c *writeCfg) { c.source = source }
}

// WithDerived marks the written version as reasoner-materialized, so
// DropDerived removes it.
func WithDerived() WriteOpt {
	return func(c *writeCfg) { c.derived = true }
}

// DB is the in-memory StateDB: an adapter over *Store carrying the
// option-based bitemporal API. It shares the store's data, shard locks,
// log, and watchers — legacy positional methods and DB methods interleave
// safely.
type DB struct {
	s *Store
}

var _ StateDB = (*DB)(nil)

// DB returns the bitemporal database view of the store.
func (s *Store) DB() *DB { return &DB{s: s} }

// Store returns the underlying repository (for the legacy surface,
// watchers, stats, and persistence).
func (db *DB) Store() *Store { return db.s }

// Find implements StateDB.
func (db *DB) Find(entity, attr string, opts ...ReadOpt) (*element.Fact, bool) {
	return db.s.Find(entity, attr, opts...)
}

// List implements StateDB.
func (db *DB) List(opts ...ReadOpt) []*element.Fact { return db.s.List(opts...) }

// Put implements StateDB.
func (db *DB) Put(entity, attr string, v element.Value, opts ...WriteOpt) error {
	cfg := newWriteCfg(opts)
	r := writeReq{entity: entity, attr: attr, value: v}
	cfg.fill(&r)
	return db.s.apply(r)
}

// Delete implements StateDB.
func (db *DB) Delete(entity, attr string, opts ...WriteOpt) error {
	return db.s.Delete(entity, attr, opts...)
}

// History implements StateDB.
func (db *DB) History(entity, attr string, opts ...ReadOpt) []*element.Fact {
	return db.s.History(entity, attr, opts...)
}
