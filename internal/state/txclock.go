// The store's transaction clock. Sharding removes the global store lock,
// so the clock — the one piece of state every default write consults —
// becomes a single atomic high-water mark advanced with compare-and-swap
// loops. Reserving a tick is the only cross-shard synchronization a
// default write performs.

package state

import (
	"sync/atomic"

	"repro/internal/temporal"
)

// txClock is the transaction-time high-water mark. The zero value is a
// clock at instant 0, matching the pre-sharding store: the first default
// write commits at tick 1.
type txClock struct {
	high atomic.Int64
}

// now reports the high-water mark.
func (c *txClock) now() temporal.Instant {
	return temporal.Instant(c.high.Load())
}

// reserve allocates the next transaction tick: one past the high-water
// mark, or floor when that is later (a write whose valid time starts in
// the future commits at its valid-time start). The allocated tick
// advances the mark, so concurrent default writes — even on different
// shards — always obtain distinct, increasing transaction times and
// every superseded belief stays recoverable.
func (c *txClock) reserve(floor temporal.Instant) temporal.Instant {
	for {
		cur := c.high.Load()
		next := cur + 1
		if int64(floor) > next {
			next = int64(floor)
		}
		if c.high.CompareAndSwap(cur, next) {
			return temporal.Instant(next)
		}
	}
}

// observe advances the high-water mark to at least t (writes with an
// explicit transaction time, log replay, snapshot load).
func (c *txClock) observe(t temporal.Instant) {
	for {
		cur := c.high.Load()
		if int64(t) <= cur {
			return
		}
		if c.high.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}
