package segment

// Chaos suite: scripted disk-fault schedules (via vfs.FaultFS) driving
// flushes, recovery, and ingestion, checked against the suite's
// invariants — a disk fault never corrupts RAM state, never loses an
// acknowledged flushed watermark, and always either recovers or
// degrades loudly. State comparisons are byte-equality against the
// WAL-only no-fault oracle of segment_test.go.

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
	"repro/internal/vfs"
)

// fastRetry keeps chaos schedules quick without changing the protocol.
var fastRetry = RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFaultTransientFlushRetries: transient segment-create failures are
// retried with backoff and the flush lands without degrading.
func TestFaultTransientFlushRetries(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.OS)
	ffs.AddRule(vfs.Rule{Op: vfs.OpCreate, Path: "seg-*.seg", Count: 2,
		Err: vfs.Transient(errors.New("disk pressure"))})
	d, err := Open(t.TempDir(), WithFS(ffs), WithFlushEvery(1), WithRetryPolicy(fastRetry))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()

	mutate(t, storeBatch{d}, 0)
	cut := d.Mem().Snapshot().At()
	d.Pulse(cut)
	waitFor(t, "retried flush to land", func() bool { return d.DurableTx() >= cut })

	if deg := d.Degraded(); deg != nil {
		t.Fatalf("transient faults must not degrade: %+v", deg)
	}
	info := d.Info()
	if info.FlushRetries < 2 {
		t.Fatalf("want >= 2 transient retries, got %d", info.FlushRetries)
	}
	if info.LastFlushErr != nil {
		t.Fatalf("last flush error should clear on success: %v", info.LastFlushErr)
	}
}

// TestDegradePermanentFlushServesRAMAndResumes: a permanent flush
// failure latches degraded mode loudly; ingest and RAM reads keep
// working, pulses stop, and Resume exits the mode. A restart after the
// resume recovers the oracle state exactly.
func TestDegradePermanentFlushServesRAMAndResumes(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS)
	ffs.AddRule(vfs.Rule{Op: vfs.OpCreate, Path: "seg-*.seg", Count: 1,
		Err: vfs.Permanent(errors.New("medium error"))})
	d, err := Open(dir, WithFS(ffs), WithFlushEvery(1), WithRetryPolicy(fastRetry))
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	var hookMu sync.Mutex
	var transitions []*Degraded
	d.OnDegraded(func(deg *Degraded) {
		hookMu.Lock()
		transitions = append(transitions, deg)
		hookMu.Unlock()
	})

	mutate(t, storeBatch{d}, 0)
	d.Pulse(d.Mem().Snapshot().At())
	waitFor(t, "degraded latch", func() bool { return d.Degraded() != nil })

	deg := d.Degraded()
	if deg.Cause == nil || deg.Since.IsZero() {
		t.Fatalf("degraded record must name a cause and a time: %+v", deg)
	}
	if deg.RetriesExhausted {
		t.Fatalf("a permanent error degrades immediately, not via retry exhaustion")
	}
	if d.Info().Degraded == nil || d.LastFlushErr() == nil {
		t.Fatalf("degraded mode must be loud in Info and LastFlushErr")
	}

	// RAM serving and ingest continue.
	if _, ok := d.Find("k00", "value"); !ok {
		t.Fatalf("RAM point read must keep working while degraded")
	}
	mutate(t, storeBatch{d}, 1)
	if got := d.List(state.WithAttribute("batch")); len(got) == 0 {
		t.Fatalf("RAM scan must keep working while degraded")
	}

	// Pulses are skipped: the durable cut must not move.
	d.Pulse(d.Mem().Snapshot().At())
	time.Sleep(5 * time.Millisecond)
	if d.DurableTx() != temporal.MinInstant {
		t.Fatalf("degraded store must not flush on Pulse")
	}

	// The fault script is exhausted (Count 1): Resume flushes and heals.
	if err := d.Resume(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if d.Degraded() != nil {
		t.Fatalf("resume must clear the degraded latch")
	}
	if d.DurableTx() == temporal.MinInstant {
		t.Fatalf("resume must advance the durable cut")
	}
	hookMu.Lock()
	if len(transitions) != 2 || transitions[0] == nil || transitions[1] != nil {
		t.Fatalf("want one entry + one exit hook firing, got %v", transitions)
	}
	hookMu.Unlock()

	// Restart oracle: crash after the resume recovers the exact state.
	d.Abandon()
	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	want := snapshotBytes(t, oracle(t, 2))
	got := snapshotBytes(t, rec.Mem())
	if !bytes.Equal(got, want) {
		t.Fatalf("degraded-then-resume restart differs from oracle (%d vs %d bytes)", len(got), len(want))
	}
}

// TestDegradeWALAppendDropsAcksAndFlushExits: a WAL write failure
// mid-append degrades the store immediately — later appends are
// acknowledged and counted, not blocked — and a manual Flush rearms the
// WAL, captures the full RAM state in segments, and exits the mode.
// State written both before and after the fault survives a restart.
func TestDegradeWALAppendDropsAcksAndFlushExits(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS)
	ffs.AddRule(vfs.Rule{Op: vfs.OpWrite, Path: "wal.*", After: 5, Count: 1,
		Err: errors.New("io error")})
	d, err := Open(dir, WithFS(ffs))
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	mutate(t, storeBatch{d}, 0) // the 6th append fails mid-round; the rest are acked+dropped
	if d.Degraded() == nil {
		t.Fatalf("WAL append failure must degrade immediately")
	}
	if !d.Log().Dropping() {
		t.Fatalf("the WAL must be dropping after an append failure")
	}
	mutate(t, storeBatch{d}, 1) // still acknowledged
	if n := d.Info().DroppedAppends; n == 0 {
		t.Fatalf("dropped appends must be counted")
	}

	// Manual Flush: rearm, pin past every dropped append, flush, heal.
	if err := d.Flush(); err != nil {
		t.Fatalf("flush out of degraded mode: %v", err)
	}
	if d.Degraded() != nil || d.Log().Dropping() {
		t.Fatalf("flush must clear degraded mode and rearm the WAL")
	}

	// Post-resume appends land in the fresh WAL.
	mutate(t, storeBatch{d}, 2)
	d.Abandon()

	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	want := snapshotBytes(t, oracle(t, 3))
	got := snapshotBytes(t, rec.Mem())
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs from oracle (%d vs %d bytes)", len(got), len(want))
	}
}

// TestFaultCrashDuringTruncateBefore: the post-flush WAL truncation is
// whole-file unlinks (plus a rotate-out create for a fully covered
// active file) — a failing unlink or create never fails the flush: the
// manifest commit already made the cut durable, the covered file stays
// in the chain counted as a drop failure, and recovery filters its
// redundant records by the cut.
func TestFaultCrashDuringTruncateBefore(t *testing.T) {
	for _, tc := range []struct {
		name       string
		rule       vfs.Rule
		wantFailed bool
	}{
		// After: 1 skips the chain-create at Open so the fault lands on
		// the truncation's rotate-out create.
		{"remove-error", vfs.Rule{Op: vfs.OpRemove, Path: "wal.*", Count: 1, Err: errors.New("remove failed")}, true},
		{"create-error", vfs.Rule{Op: vfs.OpCreate, Path: "wal.*", After: 1, Count: 1, Err: errors.New("create failed")}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(vfs.OS)
			ffs.AddRule(tc.rule)
			d, err := Open(dir, WithFS(ffs))
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			mutate(t, storeBatch{d}, 0)
			mutate(t, storeBatch{d}, 1)
			if err := d.Flush(); err != nil {
				t.Fatalf("a whole-file truncation failure must not fail the flush: %v", err)
			}
			// The segment flush and manifest commit preceded the failed
			// truncation: the acknowledged cut must already be durable.
			if d.DurableTx() == temporal.MinInstant {
				t.Fatalf("manifest commit must have advanced the durable cut")
			}
			if tc.wantFailed && d.Info().WALDropFailures == 0 {
				t.Fatalf("a failed WAL unlink must be counted")
			}
			d.Abandon() // crash

			rec, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer rec.Close()
			want := snapshotBytes(t, oracle(t, 2))
			got := snapshotBytes(t, rec.Mem())
			if !bytes.Equal(got, want) {
				t.Fatalf("recovered state differs from oracle (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// TestFaultManifestRenameMidway: the manifest commit rename failing —
// not performed, or performed with the error reported (the ambiguous
// torn outcome) — leaves a directory that recovers the oracle state:
// the commit is atomic, so recovery sees either the old or the new
// manifest and the untruncated WAL covers the difference.
func TestFaultManifestRenameMidway(t *testing.T) {
	for _, tc := range []struct {
		name string
		rule vfs.Rule
	}{
		{"rename-error", vfs.Rule{Op: vfs.OpRename, Path: manifestName, Count: 1, Err: errors.New("rename failed")}},
		{"torn-rename", vfs.Rule{Op: vfs.OpRename, Path: manifestName, Count: 1, Err: errors.New("rename torn"), TornRename: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(vfs.OS)
			ffs.AddRule(tc.rule)
			d, err := Open(dir, WithFS(ffs))
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			mutate(t, storeBatch{d}, 0)
			if err := d.Flush(); err == nil {
				t.Fatalf("flush must surface the manifest commit failure")
			}
			d.Abandon() // crash mid-flush

			rec, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer rec.Close()
			want := snapshotBytes(t, oracle(t, 1))
			got := snapshotBytes(t, rec.Mem())
			if !bytes.Equal(got, want) {
				t.Fatalf("recovered state differs from oracle (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// TestDegradeFallthroughReadsStop: while degraded, point reads and
// scans stop consulting durable frames — a key whose lineage lives only
// in segments misses instead of touching the failing disk.
func TestDegradeFallthroughReadsStop(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.OS)
	d, err := Open(t.TempDir(), WithFS(ffs))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	db := d.Mem().DB()
	// A fully bounded lineage, compacted out of RAM after its flush: the
	// standard fallthrough setup of TestRecoveryFallthroughReads.
	if err := db.Put("old", "v", element.Int(1),
		state.WithValidTime(10), state.WithEndValidTime(20),
		state.WithTransactionTime(10)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := d.FlushAt(50); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if removed := d.Mem().CompactBefore(100); removed == 0 {
		t.Fatalf("compaction removed nothing")
	}
	if err := d.FlushAt(60); err != nil {
		t.Fatalf("reclaim flush: %v", err)
	}
	if _, ok := d.Find("old", "v", state.AsOfValidTime(15)); !ok {
		t.Fatalf("fallthrough read must work while healthy")
	}

	d.enterDegraded(errors.New("scripted"), false)
	if _, ok := d.Find("old", "v", state.AsOfValidTime(15)); ok {
		t.Fatalf("degraded point read must not fall through to segments")
	}
	if got := d.List(state.AllVersions()); len(got) != 0 {
		t.Fatalf("degraded scan must be RAM-only, got %d segment facts", len(got))
	}
	d.exitDegraded()
	if _, ok := d.Find("old", "v", state.AsOfValidTime(15)); !ok {
		t.Fatalf("fallthrough read must return after recovery")
	}
}

// TestChaosConcurrentScheduleRecovers drives deterministic ingestion,
// background pulses, and concurrent readers through a fault schedule —
// transient flush failures, then a permanent one that degrades the
// store — under the race detector. After the fault clears, Resume heals
// the store and a restart recovers byte-identically to the no-fault
// oracle: the faults never corrupted RAM state.
func TestChaosConcurrentScheduleRecovers(t *testing.T) {
	const rounds = 6
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS)
	ffs.AddRule(vfs.Rule{Op: vfs.OpCreate, Path: "seg-*.seg", Count: 2,
		Err: vfs.Transient(errors.New("disk pressure"))})
	ffs.AddRule(vfs.Rule{Op: vfs.OpCreate, Path: "seg-*.seg", Count: 1,
		Err: vfs.Permanent(errors.New("medium error"))})
	d, err := Open(dir, WithFS(ffs), WithFlushEvery(1), WithRetryPolicy(fastRetry))
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// Readers hammer the store throughout; their results are incidental —
	// the invariant is no race, no panic, no torn read.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				d.Find("k00", "value")
				d.List(state.WithAttribute("batch"))
				d.History("k01", "value", state.AllVersions())
				d.Info()
			}
		}()
	}

	// One deterministic writer: the mutation sequence matches the oracle
	// regardless of where in it the fault schedule fires.
	for r := 0; r < rounds; r++ {
		mutate(t, storeBatch{d}, r)
		d.Pulse(d.Mem().Snapshot().At())
		time.Sleep(2 * time.Millisecond)
	}
	waitFor(t, "permanent fault to degrade the store", func() bool { return d.Degraded() != nil })

	// The disk "heals": clear the schedule and resume.
	ffs.Reset()
	if err := d.Resume(); err != nil {
		t.Fatalf("resume after fault cleared: %v", err)
	}
	if d.Degraded() != nil {
		t.Fatalf("store must be healthy after resume")
	}
	resumeCut := d.DurableTx()
	if resumeCut == temporal.MinInstant {
		t.Fatalf("resume must advance the durable cut")
	}
	close(done)
	readers.Wait()

	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	// Acknowledged flushed watermarks survive the restart…
	if rec.DurableTx() < resumeCut {
		t.Fatalf("restart lost an acknowledged durable cut: %d < %d", rec.DurableTx(), resumeCut)
	}
	// …and the state is byte-identical to a run that saw no faults.
	want := snapshotBytes(t, oracle(t, rounds))
	got := snapshotBytes(t, rec.Mem())
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos-recovered state differs from no-fault oracle (%d vs %d bytes)", len(got), len(want))
	}
}

// TestChaosEvictionKillBetweenEvictAndFlush: eviction marks live only in
// RAM until the next flush commits them to the manifest. A crash inside
// that window loses the marks — the keys reload resident — but must lose
// nothing else: the recovered store is byte-identical to the no-eviction
// oracle, because eviction only ever removes state a durable frame
// already holds.
func TestChaosEvictionKillBetweenEvictAndFlush(t *testing.T) {
	const rounds = 2
	dir := t.TempDir()
	d, err := Open(dir, WithResidencyBudget(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for r := 0; r < rounds; r++ {
		mutate(t, storeBatch{d}, r)
		if err := d.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	if n := d.EvictToBudget(0); n == 0 {
		t.Fatal("nothing evicted — the crash window is empty")
	}
	d.Abandon() // kill before any flush could commit the evicted set

	rec, err := Open(dir, WithResidencyBudget(1))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	want := snapshotBytes(t, oracle(t, rounds))
	if got := snapshotBytes(t, rec.Mem()); !bytes.Equal(got, want) {
		t.Fatalf("crash between evict and flush lost state (%d vs %d bytes)", len(got), len(want))
	}
	// The recovered store is fully usable: it can ingest, flush, evict,
	// and still match the oracle of the longer schedule.
	mutate(t, storeBatch{rec}, rounds)
	if err := rec.Flush(); err != nil {
		t.Fatalf("post-recovery flush: %v", err)
	}
	rec.EvictToBudget(0)
	want = snapshotBytes(t, oracle(t, rounds+1))
	if got := snapshotBytes(t, rec.Mem()); !bytes.Equal(got, want) {
		t.Fatalf("post-recovery eviction diverged (%d vs %d bytes)", len(got), len(want))
	}
}

// TestChaosEvictDuringMerge races working-set eviction against leveled
// compaction on every round: the merge rewrites the very frames the
// evicted lineages now depend on, so the catalog swap and the cold-read
// seam must stay consistent throughout. The survivor is compared
// byte-for-byte against an identical schedule that never compacted or
// evicted, then crash-restarted and compared again.
func TestChaosEvictDuringMerge(t *testing.T) {
	const rounds = 6
	dir := t.TempDir()
	d, err := Open(dir, WithCompactionFanout(2))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ref, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open ref: %v", err)
	}
	defer ref.Close()
	d.Mem().SetAccessTracking(true)
	for r := 0; r < rounds; r++ {
		putRound(t, storeBatch{d}, r)
		if err := d.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		putRound(t, storeBatch{ref}, r)
		if err := ref.Flush(); err != nil {
			t.Fatalf("ref flush: %v", err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := d.Compact(); err != nil {
				t.Errorf("compact round %d: %v", r, err)
			}
		}()
		go func() {
			defer wg.Done()
			d.EvictToBudget(0)
		}()
		wg.Wait()
		if t.Failed() {
			return
		}
	}
	want := snapshotBytes(t, ref.Mem())
	if got := snapshotBytes(t, d.Mem()); !bytes.Equal(got, want) {
		t.Fatalf("evict racing merge diverged live (%d vs %d bytes)", len(got), len(want))
	}
	d.Abandon()
	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	if got := snapshotBytes(t, rec.Mem()); !bytes.Equal(got, want) {
		t.Fatalf("evict racing merge diverged after crash-restart (%d vs %d bytes)", len(got), len(want))
	}
}

// TestChaosScanRacingEviction: a snapshot pinned before eviction must
// keep answering — identically — while and after every lineage it covers
// is evicted out from under it. The pin holds no head pointers; it is
// the merged gather's job to serve the evicted lineages from frames.
func TestChaosScanRacingEviction(t *testing.T) {
	d, err := Open(t.TempDir(), WithResidencyBudget(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	for r := 0; r < 2; r++ {
		mutate(t, storeBatch{d}, r)
		if err := d.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	sn := d.Mem().Snapshot()
	want := sn.List(state.AllVersions())
	if len(want) == 0 {
		t.Fatal("empty pinned scan — nothing to race")
	}
	done := make(chan int)
	go func() { done <- d.EvictToBudget(0) }()
	for i := 0; i < 100; i++ {
		if got := sn.List(state.AllVersions()); !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: pinned scan changed under racing eviction (%d vs %d facts)", i, len(got), len(want))
		}
	}
	if n := <-done; n == 0 {
		t.Fatal("nothing evicted — the race never happened")
	}
	// Eviction has fully landed: the pin must now be served entirely
	// through the cold seam, still byte-identically, at any parallelism.
	if got := sn.List(state.AllVersions()); !reflect.DeepEqual(got, want) {
		t.Fatal("pinned scan diverged after eviction completed")
	}
	for _, par := range []int{1, 4, 8} {
		if got := sn.ScanShards(par, state.AllVersions()); !reflect.DeepEqual(got, want) {
			t.Fatalf("pinned ScanShards(%d) diverged after eviction", par)
		}
	}
}
