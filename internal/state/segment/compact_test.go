package segment

// Compaction suite: leveled segment merges, victim selection, tombstone
// and retention reclaim, and the chaos schedules that kill a merge at
// every commit-protocol stage. State comparisons follow the recovery
// suite's rule — byte-equality of the recovered snapshot against a
// no-fault oracle of the same mutation schedule.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
	"repro/internal/vfs"
)

// putRound writes a round of keys with partial overlap: eight keys
// unique to the round (so every flushed segment keeps live frames and
// chains of equal-level segments actually accumulate — fully
// overlapping rounds would let the flush path drop dead predecessors
// outright) plus four shared keys rewritten every round (so older
// segments carry dead frames for merges to reclaim).
func putRound(t *testing.T, db batchStore, r int) {
	t.Helper()
	for i := 0; i < 8; i++ {
		if err := db.Put(fmt.Sprintf("r%d-k%02d", r, i), "v", element.Int(int64(r*100+i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := db.Put(fmt.Sprintf("shared-k%02d", i), "v", element.Int(int64(r*10+i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
}

// buildChain flushes `rounds` putRound rounds into their own level-0
// segments.
func buildChain(t *testing.T, d *Store, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		putRound(t, storeBatch{d}, r)
		if err := d.Flush(); err != nil {
			t.Fatalf("flush round %d: %v", r, err)
		}
	}
}

// TestCompactMergesChain: the operator verb merges the whole chain into
// one segment a level up, reclaiming every superseded duplicate, and a
// crash-restart of the merged directory recovers the exact pre-crash
// cut.
func TestCompactMergesChain(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	buildChain(t, d, 3)

	info := d.Info()
	if info.Segments != 3 {
		t.Fatalf("want 3 level-0 segments, got %+v", info)
	}
	if len(info.SegmentsPerLevel) != 1 || info.SegmentsPerLevel[0] != 3 {
		t.Fatalf("want [3] per level, got %v", info.SegmentsPerLevel)
	}
	// 12 frames per segment; the shared keys' older frames are dead.
	if info.FrameSlots != 36 || info.Frames != 28 {
		t.Fatalf("want 36 slots / 28 live frames, got %d / %d", info.FrameSlots, info.Frames)
	}

	if err := d.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	info = d.Info()
	if info.Merges != 1 || info.CompactionFailures != 0 {
		t.Fatalf("want exactly one clean merge, got %+v", info)
	}
	if info.Segments != 1 || len(info.SegmentsPerLevel) != 2 || info.SegmentsPerLevel[1] != 1 {
		t.Fatalf("want one level-1 segment, got %+v", info)
	}
	if info.Frames != 28 || info.FrameSlots != 28 {
		t.Fatalf("merge left garbage: %d slots / %d frames", info.FrameSlots, info.Frames)
	}
	if info.MergeBytesReclaimed <= 0 {
		t.Fatalf("merge reclaimed %d bytes", info.MergeBytesReclaimed)
	}

	want := snapshotBytes(t, d.Mem())
	d.Abandon()
	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	if got := snapshotBytes(t, rec.Mem()); !bytes.Equal(got, want) {
		t.Fatalf("merged directory recovered differently (%d vs %d bytes)", len(got), len(want))
	}
	if ri := rec.Info(); ri.Segments != 1 || ri.Frames != 28 {
		t.Fatalf("recovered catalog differs: %+v", ri)
	}
}

// TestCompactBackgroundViaPulse: once a contiguous run of equal-level
// segments reaches the fanout, the next pulse starts a background merge
// — no operator verb, no flush coupling.
func TestCompactBackgroundViaPulse(t *testing.T) {
	d, err := Open(t.TempDir(), WithCompactionFanout(2))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	buildChain(t, d, 2)
	if got := d.Info().Segments; got != 2 {
		t.Fatalf("want 2 segments before the pulse, got %d", got)
	}

	d.Pulse(d.DurableTx()) // stale cut: no flush, but compaction may start
	waitFor(t, "background merge to commit", func() bool {
		return d.Info().Merges == 1
	})
	info := d.Info()
	if info.Segments != 1 || len(info.SegmentsPerLevel) != 2 || info.SegmentsPerLevel[1] != 1 {
		t.Fatalf("want one level-1 segment after the background merge, got %+v", info)
	}
	// A second pulse finds a single sub-fanout run: no further merge.
	d.Pulse(d.DurableTx())
	time.Sleep(10 * time.Millisecond)
	if got := d.Info().Merges; got != 1 {
		t.Fatalf("idle pulse started a merge: %d", got)
	}
	if f, ok := d.Find("shared-k00", "v"); !ok || f.Value.String() != "10" {
		t.Fatalf("read after background merge: %v ok=%v", f, ok)
	}
}

// TestCompactGarbageRewrite: a single segment whose dead-frame share
// crosses the garbage threshold is rewritten in place at its own level,
// reclaiming the dead frames without touching its neighbors.
func TestCompactGarbageRewrite(t *testing.T) {
	dir := t.TempDir()
	// A huge fanout disables run merging: only the garbage path can fire.
	d, err := Open(dir, WithCompactionFanout(100))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db := storeBatch{d}
	for i := 0; i < 8; i++ {
		if err := db.Put(fmt.Sprintf("k%02d", i), "v", element.Int(int64(i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Rewrite six of eight keys: the first segment is now 75% dead.
	for i := 0; i < 6; i++ {
		if err := db.Put(fmt.Sprintf("k%02d", i), "v", element.Int(int64(100+i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if info := d.Info(); info.Segments != 2 || info.FrameSlots != 14 {
		t.Fatalf("setup: want 2 segments / 14 slots, got %+v", info)
	}

	d.Pulse(d.DurableTx())
	waitFor(t, "garbage rewrite to commit", func() bool {
		return d.Info().Merges == 1
	})
	info := d.Info()
	if info.Segments != 2 || info.FrameSlots != 8 || info.Frames != 8 {
		t.Fatalf("rewrite should leave 2 segments / 8 slots, got %+v", info)
	}
	if len(info.SegmentsPerLevel) != 1 || info.SegmentsPerLevel[0] != 2 {
		t.Fatalf("in-place rewrite must stay at level 0, got %v", info.SegmentsPerLevel)
	}
	if info.MergeBytesReclaimed <= 0 {
		t.Fatalf("rewrite reclaimed %d bytes", info.MergeBytesReclaimed)
	}

	want := snapshotBytes(t, d.Mem())
	d.Abandon()
	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	if got := snapshotBytes(t, rec.Mem()); !bytes.Equal(got, want) {
		t.Fatalf("rewritten directory recovered differently")
	}
}

// TestCompactTombstoneElision: a merge reclaims tombstone frames once no
// older segment holds anything for them to shadow — including the
// degenerate case where eliding every frame commits the victims away
// with no output segment at all.
func TestCompactTombstoneElision(t *testing.T) {
	t.Run("merge-elides-with-survivor", func(t *testing.T) {
		dir := t.TempDir()
		d, err := Open(dir)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer d.Close()
		db := d.Mem().DB()
		for _, e := range []string{"keep", "gone"} {
			if err := db.Put(e, "v", element.Int(1)); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		if err := d.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if err := db.Delete("gone", "v"); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if removed := d.Mem().CompactBefore(d.Mem().Snapshot().At() + 1); removed == 0 {
			t.Fatalf("sweep removed nothing")
		}
		if err := d.Flush(); err != nil { // writes the tombstone frame
			t.Fatalf("tombstone flush: %v", err)
		}
		if info := d.Info(); info.Segments != 2 || info.FrameSlots != 3 {
			t.Fatalf("setup: want tombstone beside the old frame, got %+v", info)
		}
		if err := d.Compact(); err != nil {
			t.Fatalf("compact: %v", err)
		}
		info := d.Info()
		if info.Segments != 1 || info.FrameSlots != 1 || info.Frames != 1 {
			t.Fatalf("tombstone not elided: %+v", info)
		}
		if _, ok := d.Find("gone", "v"); ok {
			t.Fatalf("tombstoned key resurrected by the merge")
		}
		if f, ok := d.Find("keep", "v"); !ok || f.Value.String() != "1" {
			t.Fatalf("survivor lost by the merge: %v ok=%v", f, ok)
		}
	})

	t.Run("merge-to-nothing", func(t *testing.T) {
		dir := t.TempDir()
		d, err := Open(dir)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		db := d.Mem().DB()
		if err := db.Put("k", "v", element.Int(1)); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := d.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if err := db.Delete("k", "v"); err != nil {
			t.Fatalf("delete: %v", err)
		}
		d.Mem().CompactBefore(d.Mem().Snapshot().At() + 1)
		if err := d.Flush(); err != nil {
			t.Fatalf("tombstone flush: %v", err)
		}
		if err := d.Compact(); err != nil {
			t.Fatalf("compact: %v", err)
		}
		if info := d.Info(); info.Segments != 0 || info.Merges != 1 {
			t.Fatalf("want an empty catalog after full reclaim, got %+v", info)
		}
		// The empty catalog survives a restart.
		d.Abandon()
		rec, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer rec.Close()
		if _, ok := rec.Find("k", "v"); ok {
			t.Fatalf("fully reclaimed key resurrected after restart")
		}
		if info := rec.Info(); info.Segments != 0 {
			t.Fatalf("recovered catalog not empty: %+v", info)
		}
	})
}

// TestCompactBeliefRetention: WithBeliefRetention prunes superseded
// belief versions older than the horizon during merges. After the merge
// the durable frame holds only the surviving version, and — the
// documented caveat — a restart loses SYSTEM TIME ASOF resolution
// before the horizon for pruned keys.
func TestCompactBeliefRetention(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, WithBeliefRetention(100*time.Nanosecond))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db := d.Mem().DB()
	// Version 1, then a correction that supersedes it at tx 20.
	if err := db.Put("k", "v", element.Int(1),
		state.WithValidTime(10), state.WithTransactionTime(10)); err != nil {
		t.Fatalf("put v1: %v", err)
	}
	if err := db.Put("k", "v", element.Int(2),
		state.WithValidTime(10), state.WithTransactionTime(20)); err != nil {
		t.Fatalf("put v2: %v", err)
	}
	if err := d.FlushAt(1000); err != nil { // horizon = 1000 - 100 = 900
		t.Fatalf("flush: %v", err)
	}
	if err := d.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}

	// White box: the merged frame kept only the believed version.
	cat := d.cat.Load()
	key := element.FactKey{Entity: "k", Attribute: "v"}
	r, off, ok := cat.owner(key)
	if !ok {
		t.Fatalf("merged segment lost the key")
	}
	_, records, err := r.readLineage(off)
	if err != nil {
		t.Fatalf("readLineage: %v", err)
	}
	if len(records) != 1 || records[0].Value.String() != "2" {
		t.Fatalf("want only the surviving version in the frame, got %v", records)
	}
	// RAM is untouched: retention prunes durable frames only.
	if hist := d.Mem().DB().History("k", "v", state.AllVersions()); len(hist) != 2 {
		t.Fatalf("RAM lineage must keep both versions, got %d", len(hist))
	}

	// After a restart the lineage reloads from the pruned frame: the
	// superseded version is gone, so a pre-horizon ASOF read misses.
	d.Abandon()
	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	if hist := rec.Mem().DB().History("k", "v", state.AllVersions()); len(hist) != 1 {
		t.Fatalf("restart should reload only the surviving version, got %d", len(hist))
	}
	if f, ok := rec.Find("k", "v"); !ok || f.Value.String() != "2" {
		t.Fatalf("current belief lost: %v ok=%v", f, ok)
	}
	if _, ok := rec.Find("k", "v", state.AsOfTransactionTime(15)); ok {
		t.Fatalf("pre-horizon ASOF read should lose resolution after pruning")
	}
}

// TestRecoveryResidencyAfterRestart: lineages purely compacted out of
// RAM (swept with every write covered by the frame — no tombstone) must
// stay durable-only across restarts: recovery must not reload them
// resident, while fallthrough reads keep answering.
func TestRecoveryResidencyAfterRestart(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db := d.Mem().DB()
	keys := make([]string, 5)
	for i := range keys {
		keys[i] = fmt.Sprintf("cold-%d", i)
		if err := db.Put(keys[i], "v", element.Int(int64(i)),
			state.WithValidTime(10), state.WithEndValidTime(20),
			state.WithTransactionTime(temporal.Instant(10+i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := d.FlushAt(50); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if removed := d.Mem().CompactBefore(100); removed == 0 {
		t.Fatalf("sweep removed nothing")
	}
	if err := d.FlushAt(60); err != nil { // reclaims the husks, records the sweep
		t.Fatalf("reclaim flush: %v", err)
	}
	for _, k := range keys {
		if d.Mem().Contains(k, "v") {
			t.Fatalf("%s still resident after the sweep", k)
		}
	}

	// The regression: before the manifest recorded sweeps, recovery
	// reloaded every frame resident, undoing the compaction's RAM
	// reclaim on every restart.
	d.Abandon()
	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for _, k := range keys {
		if rec.Mem().Contains(k, "v") {
			t.Fatalf("recovery reloaded swept lineage %s resident", k)
		}
		if f, ok := rec.Find(k, "v", state.AsOfValidTime(15)); !ok || f.Value.String() == "" {
			t.Fatalf("fallthrough read lost %s after restart", k)
		}
	}

	// The sweep set survives further flush generations too.
	if err := rec.Mem().DB().Put("hot", "v", element.Int(1),
		state.WithValidTime(70), state.WithTransactionTime(70)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := rec.FlushAt(80); err != nil {
		t.Fatalf("flush: %v", err)
	}
	rec.Abandon()
	again, err := Open(dir)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer again.Close()
	for _, k := range keys {
		if again.Mem().Contains(k, "v") {
			t.Fatalf("swept lineage %s resurfaced two generations later", k)
		}
	}
	if !again.Mem().Contains("hot", "v") {
		t.Fatalf("live lineage must stay resident")
	}
}

// TestFaultMergeCrash kills a merge at each commit-protocol stage and
// requires: the store never corrupts or degrades, victims stay
// readable, and a crash-restart recovers byte-identically to the
// pre-fault cut (the no-fault oracle — merge I/O never touches RAM).
func TestFaultMergeCrash(t *testing.T) {
	cases := []struct {
		name string
		rule vfs.Rule
		// committed reports whether the merge's manifest still lands on
		// disk despite the reported error (torn rename).
		committed bool
	}{
		{"build-write", vfs.Rule{Op: vfs.OpWrite, Path: "seg-*.seg", Count: 1,
			Err: errors.New("disk error")}, false},
		{"manifest-rename-error", vfs.Rule{Op: vfs.OpRename, Path: manifestName, Count: 1,
			Err: errors.New("rename failed")}, false},
		{"manifest-torn-rename", vfs.Rule{Op: vfs.OpRename, Path: manifestName, Count: 1,
			Err: errors.New("rename torn"), TornRename: true}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(vfs.OS)
			d, err := Open(dir, WithFS(ffs), WithRetryPolicy(fastRetry))
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			buildChain(t, d, 3)
			want := snapshotBytes(t, d.Mem())

			// Arm the fault only after the chain is built, so it fires
			// inside the merge, not a flush.
			ffs.AddRule(tc.rule)
			if err := d.Compact(); err == nil {
				t.Fatalf("faulted merge must surface its error")
			}
			info := d.Info()
			if info.CompactionFailures != 1 || info.Merges != 0 {
				t.Fatalf("want one counted failure and no commit, got %+v", info)
			}
			if d.Degraded() != nil {
				t.Fatalf("a merge failure must never degrade the store")
			}
			// The in-RAM catalog still serves from the victims.
			if info.Segments != 3 {
				t.Fatalf("victim chain must survive the failed merge, got %+v", info)
			}
			if f, ok := d.Find("shared-k00", "v"); !ok || f.Value.String() != "20" {
				t.Fatalf("read after failed merge: %v ok=%v", f, ok)
			}

			// Crash and restart on the real filesystem.
			d.Abandon()
			rec, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after %s: %v", tc.name, err)
			}
			defer rec.Close()
			if got := snapshotBytes(t, rec.Mem()); !bytes.Equal(got, want) {
				t.Fatalf("%s: recovered state differs from no-fault oracle", tc.name)
			}
			ri := rec.Info()
			if tc.committed {
				// The torn rename committed the merged manifest: the
				// restart serves from the merged segment, victims are
				// swept as orphans.
				if ri.Segments != 1 {
					t.Fatalf("torn-rename restart should adopt the merged chain, got %+v", ri)
				}
			} else if ri.Segments != 3 {
				t.Fatalf("restart should keep the victim chain, got %+v", ri)
			}
		})
	}
}

// TestFaultCloseInterruptsMerge: Close must interrupt an in-flight
// rate-limited merge instead of waiting out its schedule, and the
// aborted build's partial output must not survive as state — the next
// open removes the orphan and recovers the pre-merge cut.
func TestFaultCloseInterruptsMerge(t *testing.T) {
	dir := t.TempDir()
	// One byte per second: the build throttles immediately and can only
	// finish by being interrupted.
	d, err := Open(dir, WithCompactionFanout(2), WithCompactionRate(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	buildChain(t, d, 2)
	want := snapshotBytes(t, d.Mem())

	d.Pulse(d.DurableTx())
	waitFor(t, "merge to start", func() bool { return d.compacting.Load() })
	start := time.Now()
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("close waited out the merge throttle: %v", elapsed)
	}

	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	if got := snapshotBytes(t, rec.Mem()); !bytes.Equal(got, want) {
		t.Fatalf("interrupted merge changed recovered state")
	}
	if info := rec.Info(); info.Segments != 2 || info.Merges != 0 {
		t.Fatalf("interrupted merge must leave the victim chain, got %+v", info)
	}
}

// TestFaultKillDuringWALRotation: crashes and create faults around WAL
// rotation must never lose acknowledged writes — recovery replays the
// whole file chain against the oracle.
func TestFaultKillDuringWALRotation(t *testing.T) {
	t.Run("crash-mid-chain", func(t *testing.T) {
		dir := t.TempDir()
		d, err := Open(dir, WithWALRotateBytes(512))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		mutate(t, storeBatch{d}, 0)
		mutate(t, storeBatch{d}, 1)
		if files := d.Info().WALFiles; files < 2 {
			t.Fatalf("rotation never happened: %d files", files)
		}
		d.Abandon()

		rec, err := Open(dir, WithWALRotateBytes(512))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer rec.Close()
		want := snapshotBytes(t, oracle(t, 2))
		if got := snapshotBytes(t, rec.Mem()); !bytes.Equal(got, want) {
			t.Fatalf("chain recovery differs from WAL-only oracle")
		}
	})

	t.Run("rotation-create-fault", func(t *testing.T) {
		dir := t.TempDir()
		ffs := vfs.NewFaultFS(vfs.OS)
		// After:1 skips the chain file created at Open; the next two
		// creates are rotation attempts, which must fail soft (keep
		// appending to the oversized active file, retry later).
		ffs.AddRule(vfs.Rule{Op: vfs.OpCreate, Path: "wal.*", After: 1, Count: 2,
			Err: errors.New("create failed")})
		d, err := Open(dir, WithFS(ffs), WithWALRotateBytes(512), WithRetryPolicy(fastRetry))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		mutate(t, storeBatch{d}, 0)
		if deg := d.Degraded(); deg != nil {
			t.Fatalf("a failed rotation must not degrade: %+v", deg)
		}
		mutate(t, storeBatch{d}, 1)
		if files := d.Info().WALFiles; files < 2 {
			t.Fatalf("rotation never recovered after the faults: %d files", files)
		}
		d.Abandon()

		rec, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer rec.Close()
		want := snapshotBytes(t, oracle(t, 2))
		if got := snapshotBytes(t, rec.Mem()); !bytes.Equal(got, want) {
			t.Fatalf("recovery after rotation faults differs from oracle")
		}
	})
}

// TestFuzzMergeVsFlatOracle: a seeded random interleaving of mutation
// rounds, flushes, merges, WAL rotations, and working-set evictions,
// crash-restarted and compared byte-for-byte against a flat
// never-truncated WAL replay of the same mutations. The eviction arms
// drop every fully-durable lineage from RAM mid-schedule, so later
// rounds exercise write fault-in and the recovery compares a store whose
// manifest carries a live evicted set.
func TestFuzzMergeVsFlatOracle(t *testing.T) {
	const rounds = 6
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	d, err := Open(dir, WithWALRotateBytes(2048), WithCompactionFanout(2))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	d.Mem().SetAccessTracking(true)
	for r := 0; r < rounds; r++ {
		mutate(t, storeBatch{d}, r)
		putRound(t, storeBatch{d}, r)
		switch rng.Intn(5) {
		case 0:
			if err := d.Flush(); err != nil {
				t.Fatalf("round %d flush: %v", r, err)
			}
		case 1:
			if err := d.Flush(); err != nil {
				t.Fatalf("round %d flush: %v", r, err)
			}
			if err := d.Compact(); err != nil {
				t.Fatalf("round %d compact: %v", r, err)
			}
		case 2:
			if err := d.Flush(); err != nil {
				t.Fatalf("round %d flush: %v", r, err)
			}
			d.EvictToBudget(0)
		case 3:
			if err := d.Flush(); err != nil {
				t.Fatalf("round %d flush: %v", r, err)
			}
			if err := d.Compact(); err != nil {
				t.Fatalf("round %d compact: %v", r, err)
			}
			d.EvictToBudget(0)
		}
	}
	d.Abandon()

	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()

	// The flat oracle: the identical mutation schedule against a plain
	// store with a never-truncated single-file WAL, fully replayed.
	odir := t.TempDir()
	wal := filepath.Join(odir, "oracle.log")
	st := state.NewStore()
	l, err := state.CreateLog(wal)
	if err != nil {
		t.Fatalf("oracle log: %v", err)
	}
	st.AttachLog(l)
	for r := 0; r < rounds; r++ {
		mutate(t, memBatch{st.DB()}, r)
		putRound(t, memBatch{st.DB()}, r)
	}
	l.Close()
	flat := state.NewStore()
	if _, err := state.ReplayFile(wal, flat); err != nil {
		t.Fatalf("oracle replay: %v", err)
	}

	want := snapshotBytes(t, flat)
	if got := snapshotBytes(t, rec.Mem()); !bytes.Equal(got, want) {
		t.Fatalf("fuzzed merge/flush/rotation schedule diverged from the flat oracle (%d vs %d bytes)", len(got), len(want))
	}
}

// TestSelectVictimsBytesAware pins the size-aware half of victim
// selection: levels budget bytes, not segment counts, so two huge flush
// segments compact as eagerly as a full fanout run of tiny ones — and a
// pair of tiny segments does not.
func TestSelectVictimsBytesAware(t *testing.T) {
	seg := func(size int64, level int) *reader {
		return &reader{size: size, level: level, index: map[element.FactKey]int64{}}
	}
	const fanout, levelBytes = 4, int64(8 << 20)

	// Two 10MB level-0 segments: 20MB >= levelBytes, ripe by bytes even
	// though the run is far short of the fanout count.
	huge := &catalog{segments: []*reader{seg(10<<20, 0), seg(10<<20, 0)}}
	if lo, hi, level := selectVictims(huge, fanout, 0.5, levelBytes); lo != 0 || hi != 2 || level != 1 {
		t.Fatalf("two huge segments not selected by bytes: lo=%d hi=%d level=%d", lo, hi, level)
	}

	// Two 1KB segments: same count, nowhere near the byte budget — a
	// tiny segment must no longer count the same as a huge one.
	tiny := &catalog{segments: []*reader{seg(1<<10, 0), seg(1<<10, 0)}}
	if lo, hi, _ := selectVictims(tiny, fanout, 0.5, levelBytes); lo != hi {
		t.Fatalf("two tiny segments selected by bytes: lo=%d hi=%d", lo, hi)
	}

	// The count trigger still stands on its own: fanout tiny segments
	// are ripe regardless of bytes.
	run := &catalog{segments: []*reader{seg(1<<10, 0), seg(1<<10, 0), seg(1<<10, 0), seg(1<<10, 0)}}
	if lo, hi, level := selectVictims(run, fanout, 0.5, levelBytes); lo != 0 || hi != 4 || level != 1 {
		t.Fatalf("fanout run not selected by count: lo=%d hi=%d level=%d", lo, hi, level)
	}

	// Deeper levels get fanout^level times the budget: the same two
	// 10MB segments at level 1 sit under an effective 32MB cap and wait.
	deep := &catalog{segments: []*reader{seg(10<<20, 1), seg(10<<20, 1)}}
	if lo, hi, _ := selectVictims(deep, fanout, 0.5, levelBytes); lo != hi {
		t.Fatalf("level-1 pair under its byte cap was selected: lo=%d hi=%d", lo, hi)
	}

	// levelBytes <= 0 disables the byte trigger entirely.
	if lo, hi, _ := selectVictims(huge, fanout, 0.5, 0); lo != hi {
		t.Fatalf("byte trigger fired with levelBytes=0: lo=%d hi=%d", lo, hi)
	}

	// A single huge segment is never a by-bytes victim: merges need at
	// least two inputs.
	single := &catalog{segments: []*reader{seg(64<<20, 0)}}
	if lo, hi, _ := selectVictims(single, fanout, 0.5, levelBytes); lo != hi {
		t.Fatalf("single segment selected: lo=%d hi=%d", lo, hi)
	}
}
