package segment

// Out-of-core equivalence suite: the spine of the larger-than-RAM
// contract. A store whose residency budget forces every durable lineage
// out of RAM must answer every read shape — point reads, histories,
// serial scans, partitioned scans at every parallelism, and full
// snapshot serialization — byte-identically to an unbudgeted store that
// kept everything resident. The suite runs the recovery tests' mutation
// schedule twice (all-resident vs tiny-budget) and compares, including
// across write fault-in, crash-restart, and concurrent eviction.

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
)

// outOfCoreShapes is the read-shape table every equivalence check runs:
// current belief, attribute-scoped, valid-time pins, belief pins,
// intervals, and the audit shapes.
var outOfCoreShapes = []struct {
	name string
	opts []state.ReadOpt
}{
	{"current", nil},
	{"attr-value", []state.ReadOpt{state.WithAttribute("value")}},
	{"attr-batch", []state.ReadOpt{state.WithAttribute("batch")}},
	{"asof-valid", []state.ReadOpt{state.AsOfValidTime(1500)}},
	{"asof-tx", []state.ReadOpt{state.AsOfTransactionTime(1500)}},
	{"during", []state.ReadOpt{state.DuringValidTime(200, 2600)}},
	{"all-versions", []state.ReadOpt{state.AllVersions()}},
	{"audit", []state.ReadOpt{state.AllVersions(), state.AsOfTransactionTime(1500)}},
	{"attr-pinned", []state.ReadOpt{state.WithAttribute("audit"), state.AsOfValidTime(1005)}},
}

// mutateKeys enumerates every (entity, attribute) pair the mutate
// schedule touches — the point-read corpus of the equivalence checks.
func mutateKeys() []element.FactKey {
	var keys []element.FactKey
	for i := 0; i < 10; i++ {
		keys = append(keys, element.FactKey{Entity: fmt.Sprintf("k%02d", i), Attribute: "value"})
	}
	for i := 0; i < 5; i++ {
		keys = append(keys, element.FactKey{Entity: fmt.Sprintf("k%02d", i), Attribute: "audit"})
	}
	for i := 0; i < 7; i++ {
		keys = append(keys, element.FactKey{Entity: fmt.Sprintf("b%02d", i), Attribute: "batch"})
	}
	keys = append(keys, element.FactKey{Entity: "nope", Attribute: "value"}) // absent everywhere
	return keys
}

// assertEquivalent compares a budgeted (possibly fully evicted) store
// against the all-resident oracle across the whole read surface:
// snapshot bytes, every scan shape serially and partitioned at several
// parallelisms, and per-key Find/History under several pins.
func assertEquivalent(t *testing.T, leg string, cold, oracle *Store) {
	t.Helper()
	if got, want := snapshotBytes(t, cold.Mem()), snapshotBytes(t, oracle.Mem()); !bytes.Equal(got, want) {
		t.Fatalf("%s: WriteSnapshot diverged (%d vs %d bytes)", leg, len(got), len(want))
	}
	csn, osn := cold.Mem().Snapshot(), oracle.Mem().Snapshot()
	for _, sh := range outOfCoreShapes {
		want := oracle.List(sh.opts...)
		if got := cold.List(sh.opts...); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: List(%s) diverged: %d vs %d facts", leg, sh.name, len(got), len(want))
		}
		for _, par := range []int{1, 2, 4, 8} {
			if got := csn.ScanShards(par, sh.opts...); !reflect.DeepEqual(got, osn.List(sh.opts...)) {
				t.Fatalf("%s: ScanShards(%d, %s) diverged", leg, par, sh.name)
			}
		}
	}
	pointOpts := [][]state.ReadOpt{
		nil,
		{state.AsOfValidTime(1500)},
		{state.AsOfTransactionTime(1500)},
		{state.AllVersions()},
	}
	for _, key := range mutateKeys() {
		for _, opts := range pointOpts {
			gf, gok := cold.Find(key.Entity, key.Attribute, opts...)
			wf, wok := oracle.Find(key.Entity, key.Attribute, opts...)
			if gok != wok || !reflect.DeepEqual(gf, wf) {
				t.Fatalf("%s: Find(%s) diverged: (%v,%v) vs (%v,%v)", leg, key, gf, gok, wf, wok)
			}
			if gh, wh := cold.History(key.Entity, key.Attribute, opts...), oracle.History(key.Entity, key.Attribute, opts...); !reflect.DeepEqual(gh, wh) {
				t.Fatalf("%s: History(%s) diverged: %d vs %d", leg, key, len(gh), len(wh))
			}
		}
	}
}

// TestOutOfCoreEquivalence: the same mutation schedule driven into an
// unbudgeted store and a budgeted one whose every durable lineage is
// evicted after each flush; the budgeted store must stay byte-identical
// across scans, point reads, snapshots, write fault-in (including a
// delete to an evicted key), and a crash-restart that round-trips the
// evicted set through the manifest.
func TestOutOfCoreEquivalence(t *testing.T) {
	const rounds = 3
	oracle, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open oracle: %v", err)
	}
	defer oracle.Close()
	bdir := t.TempDir()
	cold, err := Open(bdir, WithResidencyBudget(1))
	if err != nil {
		t.Fatalf("open budgeted: %v", err)
	}
	for r := 0; r < rounds; r++ {
		mutate(t, storeBatch{oracle}, r)
		mutate(t, storeBatch{cold}, r)
		if err := oracle.Flush(); err != nil {
			t.Fatalf("oracle flush %d: %v", r, err)
		}
		if err := cold.Flush(); err != nil {
			t.Fatalf("cold flush %d: %v", r, err)
		}
		cold.EvictToBudget(0)
	}
	if n := cold.Info().EvictedLineages; n == 0 {
		t.Fatal("budgeted store evicted nothing — the suite is not testing the cold path")
	}
	if n := cold.Info().ResidentLineages; n != 0 {
		t.Fatalf("full eviction left %d lineages resident", n)
	}
	assertEquivalent(t, "evicted", cold, oracle)
	if cold.Info().ScanFrames == 0 {
		t.Fatal("equivalence checks never read a cold frame — the cold path did not run")
	}

	// Write fault-in: a put AND a delete against evicted keys must
	// restore the full history before mutating — a delete applied to a
	// missing lineage would silently no-op and diverge.
	for _, d := range []*Store{oracle, cold} {
		if err := d.Put("k01", "value", element.Int(4242)); err != nil {
			t.Fatalf("fault-in put: %v", err)
		}
		if err := d.Delete("k02", "value"); err != nil {
			t.Fatalf("fault-in delete: %v", err)
		}
	}
	assertEquivalent(t, "fault-in", cold, oracle)

	// Crash-restart: flush (committing the current evicted set in the
	// manifest), evict again, kill, reopen. The reopened store must both
	// stay byte-identical and come back out-of-core.
	if err := cold.Flush(); err != nil {
		t.Fatalf("pre-restart flush: %v", err)
	}
	cold.EvictToBudget(0)
	if err := cold.Flush(); err != nil { // commits the evicted set
		t.Fatalf("manifest flush: %v", err)
	}
	cold.Abandon()
	rec, err := Open(bdir, WithResidencyBudget(1))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	if n := rec.Info().EvictedLineages; n == 0 {
		t.Fatal("evicted set did not survive the manifest round-trip")
	}
	assertEquivalent(t, "restart", rec, oracle)
}

// TestOutOfCoreColdStartBudget: reopening a directory larger than the
// budget must come up within it — older frames stay on disk, marked
// evicted — while every read still resolves.
func TestOutOfCoreColdStartBudget(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for r := 0; r < 3; r++ {
		mutate(t, storeBatch{d}, r)
		// Widen the key space well past one cold-start load chunk so the
		// budget can actually cut the load short mid-segment.
		var puts []state.BatchPut
		for i := 0; i < 150; i++ {
			puts = append(puts, state.BatchPut{
				Entity: fmt.Sprintf("wide%03d", i), Attr: "w",
				Value: element.Int(int64(r)), At: temporal.Instant(r*1000 + 600 + i),
			})
		}
		if err := d.Mem().PutBatch(puts); err != nil {
			t.Fatalf("putbatch: %v", err)
		}
		if err := d.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	full := snapshotBytes(t, d.Mem())
	resident := d.Mem().ResidentBytes()
	d.Abandon()

	budget := resident / 4
	rec, err := Open(dir, WithResidencyBudget(budget))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	info := rec.Info()
	if info.EvictedLineages == 0 {
		t.Fatalf("budget %d of %d bytes loaded everything resident: %+v", budget, resident, info)
	}
	if got := snapshotBytes(t, rec.Mem()); !bytes.Equal(got, full) {
		t.Fatalf("budgeted cold start diverged (%d vs %d bytes)", len(got), len(full))
	}
}

// TestOutOfCoreSteadyStateBounded: under continuous ingest with flush
// pulses, the resident working set stays near the budget instead of
// growing with total state — the "ingest keeps serving while history
// spills to disk" contract.
func TestOutOfCoreSteadyStateBounded(t *testing.T) {
	const budget = 16 << 10
	d, err := Open(t.TempDir(), WithResidencyBudget(budget), WithFlushEvery(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	peak := int64(0)
	for r := 0; r < 60; r++ {
		var puts []state.BatchPut
		for i := 0; i < 64; i++ {
			puts = append(puts, state.BatchPut{
				Entity: fmt.Sprintf("s%04d", r*64+i), Attr: "v",
				Value: element.Int(int64(r)), At: temporal.Instant(r*100 + i + 1),
			})
		}
		if err := d.Mem().PutBatch(puts); err != nil {
			t.Fatalf("putbatch: %v", err)
		}
		if err := d.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		d.EvictToBudget(budget)
		if b := d.Mem().ResidentBytes(); b > peak {
			peak = b
		}
	}
	// Steady state: resident bytes bounded by the budget plus one
	// round's worth of not-yet-durable writes, not by total state.
	if got := d.Mem().ResidentBytes(); got > budget {
		t.Fatalf("resident %d bytes after evictions, budget %d", got, budget)
	}
	if info := d.Info(); info.EvictedLineages == 0 {
		t.Fatalf("nothing evicted at steady state: %+v", info)
	}
	// Everything still answers: the full key range, resident or not.
	if n := len(d.List(state.WithAttribute("v"))); n != 60*64 {
		t.Fatalf("List sees %d of %d ingested keys", n, 60*64)
	}
}

// TestOutOfCoreRaceStress drives ingest, flush+evict pulses, partitioned
// scans, and point reads concurrently (run under -race in CI), then
// byte-compares the settled state against a serially built oracle —
// eviction racing everything must never lose or duplicate a write.
func TestOutOfCoreRaceStress(t *testing.T) {
	const workers, roundsPer, keysPer = 4, 25, 8
	d, err := Open(t.TempDir(), WithResidencyBudget(2048), WithFlushEvery(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// Transaction times must be globally monotonic at commit time: a
	// write whose explicit At lands at or below an already-flushed cut
	// forfeits durability by contract (see FlushCut), which would make
	// the oracle comparison meaningless. Each batch draws a fresh block
	// from seq, and flushMu keeps a flush from pinning its cut while a
	// drawn block is still uncommitted. The issued batches are collected
	// so the oracle can replay exactly what the raced store ingested.
	var seq atomic.Int64
	var flushMu sync.RWMutex
	var issuedMu sync.Mutex
	var issued [][]state.BatchPut

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < roundsPer; r++ {
				flushMu.RLock()
				base := seq.Add(keysPer) - keysPer
				puts := make([]state.BatchPut, 0, keysPer)
				for i := 0; i < keysPer; i++ {
					puts = append(puts, state.BatchPut{
						Entity: fmt.Sprintf("w%d-k%02d", w, i), Attr: "v",
						Value: element.Int(int64(r*10 + i)), At: temporal.Instant(base + int64(i) + 1),
					})
				}
				err := d.Mem().PutBatch(puts)
				flushMu.RUnlock()
				if err != nil {
					t.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				issuedMu.Lock()
				issued = append(issued, puts)
				issuedMu.Unlock()
			}
		}(w)
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // flush + evict pulser
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				flushMu.Lock()
				err := d.Flush()
				flushMu.Unlock()
				if err != nil {
					t.Errorf("flush: %v", err)
					return
				}
				d.EvictToBudget(0)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	go func() { // scans and point reads racing ingest and eviction
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				// No equality asserts here: BatchPut's explicit At is a
				// transaction time, so racing ingest legally lands records
				// below a pin taken moments earlier — two reads of the
				// same snapshot may differ while writers run. This phase
				// only exercises the paths under -race.
				sn := d.Mem().Snapshot()
				sn.List(state.WithAttribute("v"))
				sn.ScanShards(4, state.WithAttribute("v"))
				d.Find("w0-k00", "v")
				d.History("w1-k01", "v", state.AllVersions())
			}
		}
	}()
	wg.Wait()
	// Writes quiesced, pulser still evicting: now snapshots are stable,
	// so serial and partitioned scans of one snapshot must agree even as
	// eviction keeps yanking lineages out of RAM beneath them.
	for i := 0; i < 50 && !t.Failed(); i++ {
		sn := d.Mem().Snapshot()
		serial := sn.List(state.WithAttribute("v"))
		if par := sn.ScanShards(4, state.WithAttribute("v")); !reflect.DeepEqual(par, serial) {
			t.Fatalf("iter %d: partitioned scan diverged from serial under eviction race (%d vs %d facts)", i, len(par), len(serial))
		}
	}
	close(stop)
	aux.Wait()
	if t.Failed() {
		return
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	d.EvictToBudget(0)

	// The oracle: the exact batches the raced store ingested, replayed
	// serially in transaction-time order into a store with no durability
	// and no eviction.
	sort.Slice(issued, func(i, j int) bool { return issued[i][0].At < issued[j][0].At })
	om := state.NewStore()
	for _, puts := range issued {
		if err := om.PutBatch(puts); err != nil {
			t.Fatalf("oracle: %v", err)
		}
	}
	var want bytes.Buffer
	if err := om.WriteSnapshot(&want); err != nil {
		t.Fatal(err)
	}
	if got := snapshotBytes(t, d.Mem()); !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("raced store diverged from serial oracle (%d vs %d bytes)", len(got), want.Len())
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
