package segment

import (
	"fmt"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

// BenchmarkColdOpen measures the cold-start path on the regression
// suite's workload shape: serial positional puts over 1000 keys, a
// flush at 95%, the rest a WAL tail of opPut records, then the crash.
// Open is the measured unit (recovery to a queryable store); the
// deferred WAL rewrite is quiesced outside the timer.
func BenchmarkColdOpen(b *testing.B) {
	const n = 25_000
	const keys = 1_000
	dir := b.TempDir()
	d, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, keys)
	for i := range names {
		names[i] = fmt.Sprintf("s%04d", i)
	}
	split := int(float64(n) * recoverFlushFracBench)
	for i := 0; i < n; i++ {
		if err := d.Mem().Put(names[i%keys], "temperature", element.Float(float64(i)), temporal.Instant(i+1)); err != nil {
			b.Fatal(err)
		}
		if i == split {
			if err := d.FlushAt(temporal.Instant(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	d.Abandon() // the crash

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		rec.Abandon() // off-timer: releases the lock, quiesces the deferred WAL rewrite
		b.StartTimer()
	}
}

const recoverFlushFracBench = 0.95
