package segment

import (
	"testing"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
)

// scanWrites drives the same writes against any StateDB: two bounded
// lineages (one corrected closed, one retracted) and one open lineage.
func scanWrites(t *testing.T, db state.StateDB, openToo bool) {
	t.Helper()
	if err := db.Put("old", "v", element.Int(1),
		state.WithValidTime(10), state.WithEndValidTime(20),
		state.WithTransactionTime(10)); err != nil {
		t.Fatalf("put: %v", err)
	}
	// Transaction times sit above the first durable cut (50): only
	// lineages with writes past the cut are flushed incrementally.
	if err := db.Put("gone", "v", element.Int(2),
		state.WithValidTime(12), state.WithTransactionTime(52)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := db.Delete("gone", "v",
		state.WithValidTime(25), state.WithTransactionTime(55)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if !openToo {
		return
	}
	if err := db.Put("live", "v", element.Int(3),
		state.WithValidTime(15), state.WithTransactionTime(58)); err != nil {
		t.Fatalf("put: %v", err)
	}
}

// scanStore builds a durable store with two segment-only lineages: the
// explicitly bounded one sealed alone in its own segment (its envelope
// holds no open validity, so current-belief scans prune it unread) and
// the retracted one in a second segment whose envelope still spans
// Forever, because frames keep the superseded open record for belief
// pins. Both were compacted out of RAM, so List must merge their frames.
func scanStore(t *testing.T) *Store {
	t.Helper()
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	db := d.Mem().DB()
	if err := db.Put("old", "v", element.Int(1),
		state.WithValidTime(10), state.WithEndValidTime(20),
		state.WithTransactionTime(10)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := d.FlushAt(50); err != nil { // segment A: bounded-only
		t.Fatalf("flush: %v", err)
	}
	if removed := d.Mem().CompactBefore(100); removed == 0 {
		t.Fatalf("compaction removed nothing")
	}
	if err := db.Put("gone", "v", element.Int(2),
		state.WithValidTime(12), state.WithTransactionTime(52)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := d.Mem().Delete("gone", "v",
		state.WithValidTime(25), state.WithTransactionTime(55)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := db.Put("live", "v", element.Int(3),
		state.WithValidTime(15), state.WithTransactionTime(58)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := d.FlushAt(60); err != nil { // segment B: gone + live; reclaims old's husk
		t.Fatalf("flush: %v", err)
	}
	if removed := d.Mem().CompactBefore(100); removed == 0 {
		t.Fatalf("second compaction removed nothing")
	}
	if err := d.FlushAt(70); err != nil { // reclaim gone's husk
		t.Fatalf("reclaim flush: %v", err)
	}
	if d.Mem().Contains("old", "v") || d.Mem().Contains("gone", "v") {
		t.Fatalf("bounded lineages should be gone from RAM")
	}
	if !d.Mem().Contains("live", "v") {
		t.Fatalf("open lineage should stay resident")
	}
	return d
}

// TestScanMergesDurableLineages: List below the compaction horizon must
// return exactly what a plain store with the same history returns —
// segment-only lineages merged in sorted order — while envelope pruning
// keeps shape-impossible segments unread.
func TestScanMergesDurableLineages(t *testing.T) {
	d := scanStore(t)
	oracle := state.NewStore()
	scanWrites(t, oracle.DB(), true)

	shapes := []struct {
		name string
		opts []state.ReadOpt
	}{
		{"asof-past", []state.ReadOpt{state.AsOfValidTime(15)}},
		{"during", []state.ReadOpt{state.DuringValidTime(21, 24)}},
		{"history", []state.ReadOpt{state.AllVersions()}},
		{"history-systime", []state.ReadOpt{state.AllVersions(), state.AsOfTransactionTime(20)}},
		{"current", nil},
	}
	for _, sh := range shapes {
		want := oracle.List(sh.opts...)
		got := d.List(sh.opts...)
		if len(got) != len(want) {
			t.Fatalf("%s: %d facts, want %d\ngot  %v\nwant %v", sh.name, len(got), len(want), got, want)
		}
		for i := range got {
			if *got[i] != *want[i] {
				t.Fatalf("%s fact %d: %+v, want %+v", sh.name, i, got[i], want[i])
			}
		}
	}

	// The scans above read durable frames; a current-belief scan prunes
	// the bounded-only segment unread ("old"), while the retracted
	// lineage's segment must still be read — its envelope spans Forever
	// because frames keep the superseded open record for belief pins —
	// and yields nothing.
	info := d.Info()
	if info.ScanFrames == 0 {
		t.Fatalf("no durable frames were merged into scans: %+v", info)
	}
	before := info
	if cur := d.List(); len(cur) != 1 || cur[0].Entity != "live" {
		t.Fatalf("current scan: want just live")
	}
	after := d.Info()
	if after.ScanFrames != before.ScanFrames+1 {
		t.Fatalf("current scan read %d frames, want 1 (bounded segment pruned)",
			after.ScanFrames-before.ScanFrames)
	}
	if after.ScanFramesPruned != before.ScanFramesPruned+1 {
		t.Fatalf("current scan pruned %d frames, want 1",
			after.ScanFramesPruned-before.ScanFramesPruned)
	}

	// A belief pinned before anything durable was recorded prunes both
	// frames too.
	if got := d.List(state.AsOfTransactionTime(5)); len(got) != 0 {
		t.Fatalf("early belief scan: %v, want nothing", got)
	}
	if final := d.Info(); final.ScanFrames != after.ScanFrames {
		t.Fatalf("early belief scan read frames past the tx envelope")
	}
}

// TestScanPruneShapes pins the envelope arithmetic per scan shape.
func TestScanPruneShapes(t *testing.T) {
	env := envelope{minValid: 10, maxValid: 30, minTx: 10, maxTx: 25}
	open := envelope{minValid: 10, maxValid: temporal.Forever, minTx: 10, maxTx: 25}
	cases := []struct {
		name  string
		env   envelope
		shape state.ScanShape
		prune bool
	}{
		{"tx-before-anything", env, state.ScanShape{HasTxAt: true, TxAt: 5}, true},
		{"tx-inside", env, state.ScanShape{HasTxAt: true, TxAt: 15, AllVersions: true}, false},
		{"valid-below", env, state.ScanShape{HasValidAt: true, ValidAt: 5}, true},
		{"valid-at-max", env, state.ScanShape{HasValidAt: true, ValidAt: 30}, true},
		{"valid-inside", env, state.ScanShape{HasValidAt: true, ValidAt: 15}, false},
		{"during-disjoint-low", env, state.ScanShape{HasDuring: true, During: temporal.Interval{Start: 0, End: 10}}, true},
		{"during-disjoint-high", env, state.ScanShape{HasDuring: true, During: temporal.Interval{Start: 30, End: 40}}, true},
		{"during-overlap", env, state.ScanShape{HasDuring: true, During: temporal.Interval{Start: 25, End: 35}}, false},
		{"current-no-open", env, state.ScanShape{}, true},
		{"current-open", open, state.ScanShape{}, false},
		{"history-bounded", env, state.ScanShape{AllVersions: true}, false},
	}
	for _, c := range cases {
		if got := scanPrune(c.env, c.shape); got != c.prune {
			t.Errorf("%s: scanPrune = %v, want %v", c.name, got, c.prune)
		}
	}
}
