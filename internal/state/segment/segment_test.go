package segment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
)

// snapshotBytes serializes a store's full bitemporal cut — the
// byte-identical comparison surface of the recovery tests.
func snapshotBytes(t *testing.T, s *state.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

// mutate drives one deterministic mutation mix — default-clock puts,
// retroactive corrections, bounded intervals, deletes, batch group
// commits — against any StateDB-with-batch surface. Running it against
// the durable store and a WAL-only oracle store yields identical
// bitemporal state.
type batchStore interface {
	state.StateDB
	PutBatch([]state.BatchPut) error
}

// memBatch adapts *state.Store to batchStore via its DB view.
type memBatch struct {
	*state.DB
}

func (m memBatch) PutBatch(puts []state.BatchPut) error { return m.DB.Store().PutBatch(puts) }

// storeBatch adapts the durable store (PutBatch through Mem).
type storeBatch struct {
	*Store
}

func (s storeBatch) PutBatch(puts []state.BatchPut) error { return s.Mem().PutBatch(puts) }

func mutate(t *testing.T, db batchStore, round int) {
	t.Helper()
	base := temporal.Instant(round * 1000)
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("k%02d", i%10)
		if err := db.Put(key, "value", element.Int(int64(round*100+i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	// Retroactive corrections with explicit transaction times.
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%02d", i)
		if err := db.Put(key, "audit", element.String("fix"),
			state.WithValidTime(base+temporal.Instant(i)),
			state.WithEndValidTime(base+temporal.Instant(i)+10)); err != nil {
			t.Fatalf("retro put: %v", err)
		}
	}
	if err := db.Delete("k03", "value"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	var puts []state.BatchPut
	for i := 0; i < 20; i++ {
		puts = append(puts, state.BatchPut{
			Entity: fmt.Sprintf("b%02d", i%7), Attr: "batch",
			Value: element.Int(int64(i)), At: base + 500 + temporal.Instant(i),
		})
	}
	if err := db.PutBatch(puts); err != nil {
		t.Fatalf("putbatch: %v", err)
	}
}

// oracle replays the full-WAL history: the same mutation rounds against
// a plain store logging to its own (never truncated) WAL, recovered by
// full replay.
func oracle(t *testing.T, rounds int) *state.Store {
	t.Helper()
	dir := t.TempDir()
	wal := filepath.Join(dir, "oracle.log")
	st := state.NewStore()
	l, err := state.CreateLog(wal)
	if err != nil {
		t.Fatalf("oracle log: %v", err)
	}
	st.AttachLog(l)
	for r := 0; r < rounds; r++ {
		mutate(t, memBatch{st.DB()}, r)
	}
	l.Close()
	rec := state.NewStore()
	if _, err := state.ReplayFile(wal, rec); err != nil {
		t.Fatalf("oracle replay: %v", err)
	}
	return rec
}

// TestRecoveryRoundTrip: a durable store flushed mid-history and
// reopened without Close (the crash path) recovers byte-identically to
// a full-WAL replay of the same mutations.
func TestRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mutate(t, storeBatch{d}, 0)
	if err := d.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	mutate(t, storeBatch{d}, 1) // WAL tail beyond the durable cut
	// Simulate a crash with a flushed prefix and a WAL tail: Abandon
	// releases the lock and descriptors without flushing.
	d.Abandon()

	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	want := snapshotBytes(t, oracle(t, 2))
	got := snapshotBytes(t, rec.Mem())
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs from WAL-only oracle (%d vs %d bytes)", len(got), len(want))
	}
	if info := rec.Info(); info.Segments == 0 || info.Frames == 0 {
		t.Fatalf("expected durable segments, got %+v", info)
	}
}

// TestRecoveryCleanClose: Close flushes everything; reopening finds an
// empty WAL tail and the oracle's exact state.
func TestRecoveryCleanClose(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mutate(t, storeBatch{d}, 0)
	mutate(t, storeBatch{d}, 1)
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	if info := rec.Info(); info.WALRecords != 0 {
		t.Fatalf("WAL tail should be empty after clean close, got %+v", info)
	}
	if got, want := snapshotBytes(t, rec.Mem()), snapshotBytes(t, oracle(t, 2)); !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs from oracle")
	}
}

// TestRecoveryIncrementalFlush: a second flush writes only the lineages
// touched since the first, and a flush covering every key of an old
// segment retires the old file.
func TestRecoveryIncrementalFlush(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	db := d.Mem().DB()
	for i := 0; i < 8; i++ {
		if err := db.Put(fmt.Sprintf("s%d", i), "v", element.Int(int64(i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush 1: %v", err)
	}
	// Touch a single key; the second segment must hold only it.
	if err := db.Put("s0", "v", element.Int(100)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush 2: %v", err)
	}
	cat := d.cat.Load()
	if len(cat.segments) != 2 {
		t.Fatalf("want 2 live segments, got %d", len(cat.segments))
	}
	last := cat.segments[len(cat.segments)-1]
	if len(last.index) != 1 {
		t.Fatalf("incremental segment should hold 1 key, holds %d", len(last.index))
	}

	// Touch every key: the next flush supersedes both older segments.
	for i := 0; i < 8; i++ {
		if err := db.Put(fmt.Sprintf("s%d", i), "v", element.Int(int64(200+i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	old := make([]string, 0, 2)
	for _, r := range cat.segments {
		old = append(old, r.path)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush 3: %v", err)
	}
	if got := len(d.cat.Load().segments); got != 1 {
		t.Fatalf("want 1 live segment after full rewrite, got %d", got)
	}
	for _, p := range old {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("superseded segment %s not unlinked", p)
		}
	}
}

// TestRecoveryTornWALTail: a WAL cut mid-record (the bytes a crash left
// half-appended) recovers to the last whole record — the durable
// prefix — and the torn bytes are compacted away.
func TestRecoveryTornWALTail(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db := d.Mem().DB()
	for i := 0; i < 10; i++ {
		if err := db.Put("k", "v", element.Int(int64(i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	wal := filepath.Join(dir, "wal.00000001") // the chain's first (active) file
	st, err := os.Stat(wal)
	if err != nil {
		t.Fatalf("stat wal: %v", err)
	}
	before := st.Size()
	if err := db.Put("k", "v", element.Int(99)); err != nil {
		t.Fatalf("final put: %v", err)
	}
	st, _ = os.Stat(wal)
	d.Abandon()
	// Cut inside the final record: a torn append.
	if err := os.Truncate(wal, (before+st.Size())/2); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer rec.Close()
	f, ok := rec.Find("k", "v")
	if !ok || f.Value.String() != "9" {
		t.Fatalf("want last whole record value 9, got %v (ok=%v)", f, ok)
	}
	if got := rec.Info().WALRecords; got != 10 {
		t.Fatalf("compacted WAL should hold 10 whole records, holds %d", got)
	}
}

// TestRecoveryOrphanSegment: a torn segment file a crash left behind —
// never referenced by the manifest — is removed at open and does not
// perturb recovery.
func TestRecoveryOrphanSegment(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	db := d.Mem().DB()
	if err := db.Put("k", "v", element.Int(7)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Fabricate a torn segment: the valid prefix of a real one.
	src, err := os.ReadFile(filepath.Join(dir, "seg-00000001.seg"))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	orphan := filepath.Join(dir, "seg-99999999.seg")
	if err := os.WriteFile(orphan, src[:len(src)/2], 0o644); err != nil {
		t.Fatalf("write orphan: %v", err)
	}
	d.Abandon()

	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with orphan: %v", err)
	}
	defer rec.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan segment not removed")
	}
	if f, ok := rec.Find("k", "v"); !ok || f.Value.String() != "7" {
		t.Fatalf("state perturbed by orphan: %v ok=%v", f, ok)
	}
}

// TestRecoveryCorruptSegment: bit rot in a manifest-referenced segment
// fails open loudly — it is corruption, not a crash artifact.
func TestRecoveryCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := d.Mem().DB().Put("k", "v", element.Int(7)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	seg := filepath.Join(dir, "seg-00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[len(fileMagic)+frameHdrLen+3] ^= 0xff // flip a payload byte
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("write corrupt segment: %v", err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatalf("open should fail on a corrupt referenced segment")
	}
}

// TestRecoveryFallthroughReads: a lineage compacted out of RAM entirely
// keeps answering point reads and history from its durable frame.
func TestRecoveryFallthroughReads(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	db := d.Mem().DB()
	// A fully bounded lineage: compactable to nothing.
	if err := db.Put("old", "v", element.Int(1),
		state.WithValidTime(10), state.WithEndValidTime(20),
		state.WithTransactionTime(10)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := db.Put("live", "v", element.Int(2),
		state.WithValidTime(10), state.WithTransactionTime(10)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := d.FlushAt(50); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if removed := d.Mem().CompactBefore(100); removed == 0 {
		t.Fatalf("compaction removed nothing")
	}
	// The sweep leaves a husk; the next flush sees its writes are all
	// covered by the existing frame (pure compaction, no tombstone) and
	// reclaims it.
	if err := d.FlushAt(60); err != nil {
		t.Fatalf("reclaim flush: %v", err)
	}
	if d.Mem().Contains("old", "v") {
		t.Fatalf("lineage should be gone from RAM")
	}
	// RAM misses; the frame answers.
	f, ok := d.Find("old", "v", state.AsOfValidTime(15))
	if !ok || f.Value.String() != "1" {
		t.Fatalf("fallthrough find failed: %v ok=%v", f, ok)
	}
	if hist := d.History("old", "v", state.AllVersions()); len(hist) != 1 {
		t.Fatalf("fallthrough history: want 1 record, got %d", len(hist))
	}
	// Envelope pruning: an instant outside the frame's validity span
	// misses without a pread.
	if _, ok := d.Find("old", "v", state.AsOfValidTime(5)); ok {
		t.Fatalf("pruned read should miss")
	}
	if _, ok := d.Find("old", "v"); ok {
		t.Fatalf("current-belief read should miss a fully bounded frame")
	}
	// The live lineage still resolves from RAM.
	if f, ok := d.Find("live", "v"); !ok || f.Value.String() != "2" {
		t.Fatalf("RAM read broken: %v ok=%v", f, ok)
	}
}

// TestRecoveryHistoryFallthroughBoundedSegment: History must fall
// through to a frame even when the owning segment holds no open
// validity anywhere — the open-version envelope prune applies to
// current-belief point reads only.
func TestRecoveryHistoryFallthroughBoundedSegment(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	// The only record in the segment is fully bounded.
	if err := d.Mem().DB().Put("e", "a", element.Int(1),
		state.WithValidTime(10), state.WithEndValidTime(20),
		state.WithTransactionTime(10)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := d.FlushAt(50); err != nil {
		t.Fatalf("flush: %v", err)
	}
	d.Mem().CompactBefore(1000)
	if err := d.FlushAt(60); err != nil { // reclaim the husk; frame stays
		t.Fatalf("reclaim flush: %v", err)
	}
	if d.Mem().Contains("e", "a") {
		t.Fatalf("lineage should be gone from RAM")
	}
	if hist := d.History("e", "a"); len(hist) != 1 {
		t.Fatalf("default History via frame: want 1 closed record, got %d", len(hist))
	}
	if hist := d.History("e", "a", state.AllVersions()); len(hist) != 1 {
		t.Fatalf("AllVersions History via frame: want 1 record, got %d", len(hist))
	}
	// The current-belief point read still prunes correctly: nothing open.
	if _, ok := d.Find("e", "a"); ok {
		t.Fatalf("current-belief read should miss a fully bounded frame")
	}
}

// TestRecoveryCloseIdempotent: the `defer Close` + explicit Close
// pattern must not report a spurious error on the second call.
func TestRecoveryCloseIdempotent(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := d.Mem().DB().Put("k", "v", element.Int(1)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second close should be a no-op, got: %v", err)
	}
}

// TestRecoveryNoFrameResurrection: a lineage still resident in RAM
// answers from RAM alone — a frame flushed before a delete must not
// resurrect the deleted fact through the fallthrough path.
func TestRecoveryNoFrameResurrection(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	db := d.Mem().DB()
	if err := db.Put("k", "v", element.Int(1)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Delete after the flush: the frame still holds the open version.
	if err := db.Delete("k", "v"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if f, ok := d.Find("k", "v"); ok {
		t.Fatalf("deleted fact resurrected from stale frame: %v", f)
	}
	// The pre-delete belief is still reachable the bitemporal way.
	if _, ok := d.Find("k", "v", state.AsOfTransactionTime(d.DurableTx())); !ok {
		t.Fatalf("pre-delete belief should resolve from RAM history")
	}

	// Now compact the deleted lineage away entirely: the husk's last
	// write (the delete) postdates the frame's cut, so the next flush
	// writes a tombstone — the stale frame must not come back, not even
	// through the fallthrough path or a restart.
	if removed := d.Mem().CompactBefore(d.Mem().Snapshot().At() + 1); removed == 0 {
		t.Fatalf("compaction removed nothing")
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("tombstone flush: %v", err)
	}
	if d.Mem().Contains("k", "v") {
		t.Fatalf("husk should be reclaimed after the tombstone flush")
	}
	if f, ok := d.Find("k", "v"); ok {
		t.Fatalf("tombstoned key resurrected: %v", f)
	}
	if hist := d.History("k", "v", state.AllVersions()); len(hist) != 0 {
		t.Fatalf("tombstoned key has history: %v", hist)
	}
	d.Abandon()
	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	if rec.Mem().Contains("k", "v") {
		t.Fatalf("tombstoned key resurrected into RAM by recovery")
	}
	if f, ok := rec.Find("k", "v"); ok {
		t.Fatalf("tombstoned key resurrected after restart: %v", f)
	}
}

// TestRecoveryAdvancesCutWithoutDirt: flushing a quiesced store advances
// the durable cut without writing an empty segment file.
func TestRecoveryAdvancesCutWithoutDirt(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	if err := d.Mem().DB().Put("k", "v", element.Int(1)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	segs := d.Info().Segments
	d.Mem().AdvanceClock(1000)
	if err := d.Flush(); err != nil {
		t.Fatalf("idle flush: %v", err)
	}
	if got := d.Info().Segments; got != segs {
		t.Fatalf("idle flush wrote a segment: %d -> %d", segs, got)
	}
	if got := d.DurableTx(); got != 1000 {
		t.Fatalf("durable cut not advanced: %v", got)
	}
}
