//go:build unix

package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"

	"repro/internal/vfs"
)

// lockDir takes an exclusive advisory flock on the directory's LOCK
// file, guarding against two stores — in this process or another —
// mutating one durable directory (each would rewrite the other's WAL
// and delete the other's in-flight segments as orphans). The lock
// vanishes with the process, so a crash never blocks recovery. The
// returned func releases it.
func lockDir(fsys vfs.FS, dir string) (func(), error) {
	f, err := fsys.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("segment: lock %s: %w", dir, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: %s is already open in another store: %w", dir, err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
