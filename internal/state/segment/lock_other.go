//go:build !unix

package segment

// lockDir is a no-op on platforms without flock: single-owner use of a
// durable directory is then the caller's responsibility.
func lockDir(string) (func(), error) {
	return func() {}, nil
}
