//go:build !unix

package segment

import "repro/internal/vfs"

// lockDir is a no-op on platforms without flock: single-owner use of a
// durable directory is then the caller's responsibility.
func lockDir(vfs.FS, string) (func(), error) {
	return func() {}, nil
}
