// Package segment is the durable, append-only backend of the state
// repository: committed lineage heads flush as immutable, checksummed
// segment files behind the state.StateDB / state.Reader seam, so derived
// state outlives the stream without replaying the full WAL on boot.
//
// A segment.Store wraps the in-memory sharded store (the RAM working
// set, which keeps every read lock-free exactly as before) with a
// durable directory:
//
//	dir/
//	  MANIFEST          commit point: durable cut + live segment list
//	  seg-NNNNNNNN.seg  immutable segment files (see format.go)
//	  wal.NNNNNNNN      the segmented WAL chain: records newer than the
//	                    durable cut, rotated at a size threshold
//
// A flush is a pinned cut, exactly like a snapshot: FlushCut gathers the
// lineages touched since the previous flush, each as the record set
// believed at the pin, into one new segment file; the manifest commit
// (temp file + rename) then atomically advances the durable cut, and
// Log.TruncateBefore unlinks the whole WAL files the segments now cover.
// Recovery inverts it: load the manifest, bulk-load the newest frame of
// every key (state.LoadLineage — one head publication per lineage, no
// mutation replay, fanned across GOMAXPROCS shard-partitioned workers),
// then replay only the WAL tail. Every step is crash-atomic: a torn
// segment is an unreferenced orphan, a torn WAL tail record is dropped,
// and the manifest either renamed or it did not.
//
// The segment list is leveled, LSM-style: flushes append level-0
// segments, and a background merger (see compact.go) rewrites
// contiguous runs into the next level, reclaiming frames a newer
// segment superseded and tombstones nothing older still resurrects.
// The manifest rename is the single atomic commit point for a merge
// exactly as for a flush.
//
// Reads resolve against RAM first and fall through to segment frames
// (pread + per-segment bitemporal envelope pruning) for lineages the RAM
// working set no longer holds — a compacted head keeps its durable
// history answerable. Writes go through the wrapped store unchanged, so
// watchers, rules, and group commits behave identically.
package segment

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
	"repro/internal/vfs"
)

const (
	manifestName = "MANIFEST"
	// walName is the legacy single-file WAL name. The segmented chain
	// still recognizes it on open — it replays as the oldest chain file —
	// so directories written before rotation existed recover unchanged.
	walName  = "wal.log"
	lockName = "LOCK"

	// manifestVersion guards the manifest wire format. Version 2 added
	// the durable-only (swept) key set; version 3 the evicted key set.
	// Older manifests still read.
	manifestVersion = 3

	// DefaultFlushEvery is the WAL-tail record count that triggers a
	// background flush (see Pulse) unless WithFlushEvery overrides it.
	DefaultFlushEvery = 8192

	// DefaultCompactFanout is the length a contiguous run of equal-level
	// segments must reach before the background merger rewrites it into
	// the next level (see compact.go).
	DefaultCompactFanout = 4

	// defaultCompactGarbage is the garbage fraction at which a single
	// segment is rewritten in place to reclaim dead frames.
	defaultCompactGarbage = 0.5

	// minCompactFrames keeps trivial segments out of the garbage-ratio
	// rewrite path: below this frame count a rewrite reclaims too little
	// to be worth the write amplification.
	minCompactFrames = 4

	// DefaultCompactRate is the default merge write-rate limit in bytes
	// per second — background merges yield the disk to foreground
	// flushes instead of monopolizing it.
	DefaultCompactRate = 64 << 20

	// DefaultCompactLevelBytes is the default per-level byte budget of
	// size-aware victim selection: a contiguous equal-level run whose
	// combined size reaches levelBytes * fanout^level merges into the
	// next level even before it reaches the fanout's segment COUNT — so
	// a few huge segments compact as eagerly as many tiny ones.
	DefaultCompactLevelBytes = 8 << 20

	// maxFlushErrHistory bounds the retained background-flush error
	// history: the next Flush/Close surfaces a join of up to this many
	// distinct failures, newest kept, instead of only the first.
	maxFlushErrHistory = 8
)

// RetryPolicy tunes the background flusher's reaction to transient
// durable-path errors (vfs.IsTransient): capped exponential backoff
// with full jitter, then degraded mode when retries are exhausted.
type RetryPolicy struct {
	// MaxRetries is how many times one background flush retries a
	// transient failure before the store degrades.
	MaxRetries int
	// BaseDelay is the first backoff delay; each retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the doubling.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the retry policy Open uses unless
// WithRetryPolicy overrides it.
var DefaultRetryPolicy = RetryPolicy{MaxRetries: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}

// Degraded describes the store's degraded mode: the durable write path
// has failed permanently (or exhausted its retries), so flushes and
// durable fallthrough reads have stopped while ingest and RAM reads
// keep serving. A successful manual Flush (or Resume) exits the mode.
type Degraded struct {
	// Since is when the store degraded.
	Since time.Time
	// Cause is the failure that latched the mode.
	Cause error
	// RetriesExhausted distinguishes a transient failure that outlived
	// the retry budget from an immediately-permanent one.
	RetriesExhausted bool
}

// manifestRec is the gob wire format of the MANIFEST file — the commit
// point of the durable directory.
type manifestRec struct {
	Version   int
	DurableTx temporal.Instant
	NextSeq   uint64
	Segments  []manifestSegment
	// Swept is the durable-only key set (version 2+): keys whose
	// lineages compaction evicted from RAM entirely and whose truthful
	// frames recovery must keep on disk — answerable by fallthrough
	// reads — instead of re-loading them resident.
	Swept []element.FactKey
	// Evicted is the residency-evicted key set (version 3+): lineages
	// the working-set budget pushed out of RAM whose durable frames are
	// the single copy. Unlike Swept keys they still hold records, so
	// recovery must both keep them out of RAM AND mark them evicted —
	// the write path faults them back in before mutating.
	Evicted []element.FactKey
}

// manifestSegment names one live segment file and its cut.
type manifestSegment struct {
	File  string
	CutTx temporal.Instant
}

// catalog is the immutable, atomically published view of the durable
// directory: readers load it once and resolve against it lock-free,
// exactly as store readers load published lineage heads. Segments are
// age-ordered, oldest first: a key's newest durable frame lives in the
// LAST segment whose index holds it, so reads probe newest→oldest.
type catalog struct {
	durableTx temporal.Instant
	segments  []*reader // age order, oldest first
}

// owner resolves the segment holding key's newest durable frame and the
// frame's offset, probing newest→oldest.
func (c *catalog) owner(key element.FactKey) (*reader, int64, bool) {
	for i := len(c.segments) - 1; i >= 0; i-- {
		if off, ok := c.segments[i].index[key]; ok {
			return c.segments[i], off, true
		}
	}
	return nil, 0, false
}

// ownedAt reports whether any segment at index from or later holds a
// frame for key — the "a newer segment owns it" probe of the live
// accounting and the merge.
func (c *catalog) ownedAt(from int, key element.FactKey) bool {
	for i := from; i < len(c.segments); i++ {
		if _, ok := c.segments[i].index[key]; ok {
			return true
		}
	}
	return false
}

// ownedBefore reports whether any segment older than index bound holds
// a frame for key — the merge's tombstone-elision probe: a tombstone
// with no older coverage protects nothing and can be reclaimed.
func (c *catalog) ownedBefore(bound int, key element.FactKey) bool {
	for i := 0; i < bound && i < len(c.segments); i++ {
		if _, ok := c.segments[i].index[key]; ok {
			return true
		}
	}
	return false
}

// Store is the durable segment-backed state store. It implements
// state.StateDB and state.Reader over a RAM working set (Mem) plus the
// segment files and WAL tail of its directory. All methods are safe for
// concurrent use; flushes run concurrently with reads and writes.
type Store struct {
	dir string
	mem *state.Store
	log *state.Log
	// fs is the filesystem seam every durable-path os.* call goes
	// through: vfs.OS in production, a vfs.FaultFS under chaos tests.
	fs vfs.FS

	flushEvery int
	retry      RetryPolicy

	// walRotate is the WAL rotation threshold in bytes (0 = the state
	// package default); loadPar caps the parallel cold-start workers
	// (0 = GOMAXPROCS, 1 = serial).
	walRotate int64
	loadPar   int

	// retentionNs is the belief-retention horizon in nanoseconds of
	// transaction time (0 = keep everything): merges prune superseded
	// belief versions older than durableTx - retentionNs.
	retentionNs int64

	// compactFanout, compactGarbage, and compactRate tune the background
	// merger: run length that triggers a level merge, garbage fraction
	// that triggers a single-segment rewrite, and the merge write-rate
	// limit in bytes/second (<= 0 = unthrottled). levelBytes is the
	// level-0 byte budget of size-aware victim selection (<= 0 disables
	// the byte trigger; runs then merge on segment count alone).
	compactFanout  int
	compactGarbage float64
	compactRate    int64
	levelBytes     int64

	// budget is the RAM residency budget in estimated bytes (0 = no
	// eviction): when the working set's estimate exceeds it, Pulse
	// evicts least-recently-used fully-durable lineages back to it.
	budget int64

	// cat is the published durable view; swapped after each flush.
	cat atomic.Pointer[catalog]

	// mu serializes flushes, manifest commits, and Close.
	mu      sync.Mutex
	nextSeq uint64
	closed  bool
	// swept is the durable-only key set (guarded by mu, persisted in the
	// manifest): lineages compaction evicted from RAM whose frames stay
	// truthful on disk. Recovery keeps them out of the resident working
	// set; fallthrough reads still answer them. A key leaves the set when
	// a flush writes it again.
	swept map[element.FactKey]bool
	// closeOnce makes Close idempotent; closeErr is the first result.
	closeOnce sync.Once
	closeErr  error
	// unlock releases the directory lock taken at Open (single-owner
	// guard against two stores corrupting one directory).
	unlock func()

	// flushing is the single-flight latch of background flushes (Pulse);
	// compacting the single-flight latch of merges; evicting the
	// single-flight latch of budget eviction sweeps; wg tracks all three
	// so Close can wait. closing interrupts a backoff sleep or a merge's
	// rate-limit sleep so Close never waits out a schedule.
	flushing   atomic.Bool
	compacting atomic.Bool
	evicting   atomic.Bool
	wg         sync.WaitGroup
	closing    chan struct{}

	// errMu guards the bounded background-flush error history (surfaced
	// joined by the next Flush/Close) and the latest cause (Info).
	errMu     sync.Mutex
	flushErrs []error
	lastErr   error

	// degraded publishes degraded mode; nil means healthy. Entered by a
	// WAL append failure or a permanent/exhausted flush failure, exited
	// by a successful manual Flush or Resume.
	degraded atomic.Pointer[Degraded]
	// hookMu guards the degraded-transition hooks (OnDegraded).
	hookMu     sync.Mutex
	onDegraded []func(*Degraded)

	// flushRetries counts transient background-flush retries;
	// removeFails counts failed cleanup unlinks (orphan GC, retired
	// segments) — disk leaks made visible instead of silent.
	flushRetries atomic.Int64
	removeFails  atomic.Int64

	// scanFrames/scanPruned count durable frames read into scans and
	// frames the per-segment envelope pruning skipped (see List).
	scanFrames atomic.Int64
	scanPruned atomic.Int64

	// merges counts committed merges; mergeReclaim the net bytes merges
	// reclaimed (victim sizes minus output size); compactFails the
	// merges that failed (aborts on conflict or Close are not failures).
	merges       atomic.Int64
	mergeReclaim atomic.Int64
	compactFails atomic.Int64
}

// Store implements the bitemporal StateDB seam, the read-only Reader
// surface, and the cold-read seam the RAM store's merged gather and
// fault-in paths consume.
var (
	_ state.StateDB    = (*Store)(nil)
	_ state.Reader     = (*Store)(nil)
	_ state.ColdSource = (*Store)(nil)
)

// Option configures Open.
type Option func(*Store)

// WithStore uses mem as the RAM working set instead of a fresh default
// store. mem must be empty: recovery loads the durable state into it.
// The engine uses this to wrap its own store (core.WithDurableDir).
func WithStore(mem *state.Store) Option {
	return func(d *Store) { d.mem = mem }
}

// WithFlushEvery sets the WAL-tail record count at which Pulse starts a
// background flush (default DefaultFlushEvery; n <= 0 makes Pulse flush
// on every call that finds the latch free).
func WithFlushEvery(n int) Option {
	return func(d *Store) { d.flushEvery = n }
}

// WithFS replaces the filesystem seam (default vfs.OS). Chaos tests
// pass a vfs.FaultFS to inject scripted durable-path failures.
func WithFS(fsys vfs.FS) Option {
	return func(d *Store) { d.fs = fsys }
}

// WithRetryPolicy replaces the background flusher's transient-error
// retry policy (default DefaultRetryPolicy).
func WithRetryPolicy(p RetryPolicy) Option {
	return func(d *Store) { d.retry = p }
}

// WithWALRotateBytes sets the size threshold at which the WAL rotates
// to a fresh chain file (default state.DefaultWALRotateBytes). Smaller
// thresholds make TruncateBefore reclaim more eagerly — it only ever
// drops whole files — at the cost of more files.
func WithWALRotateBytes(n int64) Option {
	return func(d *Store) { d.walRotate = n }
}

// WithLoadParallelism caps the cold-start workers that decode and
// install segment frames: 0 (the default) uses GOMAXPROCS, 1 loads
// serially. Workers partition keys by the store's shard index, so they
// never contend on a shard lock.
func WithLoadParallelism(n int) Option {
	return func(d *Store) { d.loadPar = n }
}

// WithBeliefRetention bounds the audit history merges retain: a
// superseded belief version whose supersession is older than the
// horizon (the durable cut minus dur, in transaction time) is pruned
// when its segment is next merged. The default (0) keeps everything.
//
// Caveat: pruning trades audit resolution for space — after a merge,
// SYSTEM TIME ASOF reads pinned before the horizon no longer see the
// pruned versions. Currently-believed versions are never pruned, so
// valid-time queries and current reads are unaffected.
func WithBeliefRetention(dur time.Duration) Option {
	return func(d *Store) { d.retentionNs = dur.Nanoseconds() }
}

// WithCompactionFanout sets the equal-level run length that triggers a
// background level merge (default DefaultCompactFanout; n < 2 is
// clamped to 2).
func WithCompactionFanout(n int) Option {
	return func(d *Store) {
		if n < 2 {
			n = 2
		}
		d.compactFanout = n
	}
}

// WithCompactionRate sets the merge write-rate limit in bytes per
// second (default DefaultCompactRate; n <= 0 unthrottles).
func WithCompactionRate(n int64) Option {
	return func(d *Store) { d.compactRate = n }
}

// WithCompactionLevelBytes sets the level-0 byte budget of size-aware
// victim selection (default DefaultCompactLevelBytes): a contiguous
// equal-level run whose combined file size reaches n * fanout^level is
// merged into the next level even before the run reaches the fanout's
// segment count. n <= 0 disables the byte trigger — runs then merge on
// segment count alone, where one huge segment counts the same as a
// tiny one.
func WithCompactionLevelBytes(n int64) Option {
	return func(d *Store) { d.levelBytes = n }
}

// WithResidencyBudget caps the RAM working set at n estimated bytes
// (default 0 = unbounded, no eviction). When the resident estimate
// exceeds the budget, the flush pulse evicts least-recently-used,
// fully-durable lineages from RAM — their segment frames become the
// single copy, point reads and scans fall through to them, and writes
// fault them back in. The budget is a target, not a hard limit: state
// newer than the durable cut is never evicted, so a working set hotter
// than the flush cadence can exceed it.
func WithResidencyBudget(n int64) Option {
	return func(d *Store) { d.budget = n }
}

// Open opens (or initializes) a durable directory and recovers its
// state: manifest, then the newest segment frame of every key
// (bulk-loaded, no replay), then the WAL tail. Orphan files from a
// flush a crash interrupted — segments the manifest never referenced,
// stale temp files — are removed. The returned store is ready for
// reads, writes, and flushes; writes append to the WAL until a flush
// hands them off to segments.
func Open(dir string, opts ...Option) (*Store, error) {
	d := &Store{
		dir: dir, flushEvery: DefaultFlushEvery, nextSeq: 1,
		fs: vfs.OS, retry: DefaultRetryPolicy,
		compactFanout: DefaultCompactFanout, compactGarbage: defaultCompactGarbage,
		compactRate: DefaultCompactRate, levelBytes: DefaultCompactLevelBytes,
		swept:   map[element.FactKey]bool{},
		closing: make(chan struct{}),
	}
	for _, o := range opts {
		o(d)
	}
	if d.mem == nil {
		d.mem = state.NewStore()
	}
	// Sweeps must leave tombstone husks behind (instead of silently
	// deleting emptied lineages) so the next flush supersedes the key's
	// stale segment frame; see state.SetRetainSwept.
	d.mem.SetRetainSwept(true)
	if err := d.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segment: open %s: %w", dir, err)
	}
	unlock, err := lockDir(d.fs, dir)
	if err != nil {
		return nil, err
	}
	d.unlock = unlock
	opened := false
	defer func() {
		if !opened {
			unlock()
		}
	}()

	// Recovery allocates the whole working set in one bounded burst;
	// letting the collector run its growth-triggered cycles mid-burst
	// just rescans the half-built store several times. Pause it for the
	// duration (the classic storage-engine cold-start move); the deferred
	// restore also triggers one collection that settles the heap goal.
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)

	man, err := readManifest(d.fs, filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	cat := &catalog{durableTx: temporal.MinInstant}
	evicted := map[element.FactKey]bool{}
	if man != nil {
		cat.durableTx = man.DurableTx
		d.nextSeq = man.NextSeq
		for _, ms := range man.Segments {
			r, err := openSegment(d.fs, filepath.Join(dir, ms.File))
			if err != nil {
				d.closeSegments(cat)
				return nil, err
			}
			cat.segments = append(cat.segments, r)
		}
		for _, key := range man.Swept {
			d.swept[key] = true
		}
		for _, key := range man.Evicted {
			evicted[key] = true
		}
	}
	d.removeOrphans(man)

	budgetSkipped, err := d.loadFrames(cat, evicted)
	if err != nil {
		d.closeSegments(cat)
		return nil, err
	}
	// Publish the catalog and install the cold-read seam BEFORE the WAL
	// tail replays: a tail write to an evicted key must fault its frame
	// back in, which needs both in place.
	d.cat.Store(cat)
	d.mem.SetColdSource(d)
	if d.budget > 0 {
		d.mem.SetAccessTracking(true)
	}
	marks := budgetSkipped
	for key := range evicted {
		marks = append(marks, key)
	}
	d.mem.MarkEvicted(marks)
	// Lineages that stayed cold never observe their maxTx into the mem
	// clock, so advance it to the durable cut — it bounds every flushed
	// record — or snapshot and flush pins would land below cold history.
	d.mem.AdvanceClock(cat.durableTx)
	log, _, err := state.RecoverWALDirFS(d.fs, dir, d.mem, cat.durableTx, d.walRotate)
	if err != nil {
		d.closeSegments(cat)
		return nil, err
	}
	d.log = log
	// A WAL append failure ruins the gob stream mid-message — no
	// per-record recovery exists regardless of the error's taxonomy —
	// so the handler always acknowledges: the writer's RAM commit
	// proceeds, the log drops further appends, and the store degrades.
	// The handler runs under a shard lock, so it only latches atomics
	// and fires the (lock-light) transition hooks.
	log.OnAppendError(func(err error) bool {
		d.enterDegraded(fmt.Errorf("segment: wal append: %w", err), false)
		return true
	})
	d.mem.AttachLog(log)
	opened = true
	return d, nil
}

// loadFrames bulk-loads the newest frame of every cataloged key into the
// RAM working set and rebuilds each segment's live count. Segments walk
// newest→oldest with a seen set, so each key loads from exactly its
// newest frame; durable-only keys (see Store.swept) and evicted keys
// keep their frames on disk, answerable by fallthrough reads, but stay
// out of RAM. Each segment is read into memory once — one sequential
// read per segment instead of a pread pair per lineage — and only one
// image is held at a time; within a segment the decode+install work fans
// out across shard-partitioned workers (see loadSegmentFrames).
//
// A residency budget bounds the load: once the working set's byte
// estimate reaches it, the remaining (older, since the walk is
// newest-first) keys are skipped and returned so the caller marks them
// evicted — a cold start of a larger-than-RAM directory comes up within
// budget instead of faulting the whole history resident.
func (d *Store) loadFrames(cat *catalog, evicted map[element.FactKey]bool) ([]element.FactKey, error) {
	seen := make(map[element.FactKey]bool)
	var budgetSkipped []element.FactKey
	workers := d.loadPar
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for i := len(cat.segments) - 1; i >= 0; i-- {
		r := cat.segments[i]
		var load []element.FactKey
		owned := 0
		for key := range r.index {
			if seen[key] {
				continue
			}
			seen[key] = true
			owned++
			if !d.swept[key] && !evicted[key] {
				load = append(load, key)
			}
		}
		r.live.Store(int64(owned))
		if len(load) == 0 {
			continue
		}
		if d.budget > 0 && d.mem.ResidentBytes() >= d.budget {
			budgetSkipped = append(budgetSkipped, load...)
			continue
		}
		img, err := r.image()
		if err != nil {
			return nil, err
		}
		if d.budget <= 0 {
			if err := d.loadSegmentFrames(r, img, load, workers); err != nil {
				return nil, err
			}
			continue
		}
		// Budgeted cold start loads in chunks, re-checking the budget
		// between them: a single segment can hold far more state than the
		// budget, so the per-segment check above is not enough on its own.
		const chunk = 64
		for len(load) > 0 {
			if d.mem.ResidentBytes() >= d.budget {
				budgetSkipped = append(budgetSkipped, load...)
				break
			}
			n := chunk
			if n > len(load) {
				n = len(load)
			}
			if err := d.loadSegmentFrames(r, img, load[:n], workers); err != nil {
				return nil, err
			}
			load = load[n:]
		}
	}
	return budgetSkipped, nil
}

// loadSegmentFrames decodes and installs the given frames of one segment
// image. Keys are partitioned across workers by the store's shard index:
// two keys in different partitions never share a shard, so the workers
// install lineages without contending on a shard lock.
func (d *Store) loadSegmentFrames(r *reader, img []byte, keys []element.FactKey, workers int) error {
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers <= 1 {
		for _, key := range keys {
			if err := d.loadFrame(r, img, key); err != nil {
				return err
			}
		}
		return nil
	}
	parts := make([][]element.FactKey, workers)
	for _, key := range keys {
		w := d.mem.ShardIndex(key.Entity, key.Attribute) % workers
		parts[w] = append(parts[w], key)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := range parts {
		if len(parts[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, key := range parts[w] {
				if err := d.loadFrame(r, img, key); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// loadFrame decodes one frame from a segment image and installs its
// lineage; a tombstone frame installs nothing (the key is durably
// absent).
func (d *Store) loadFrame(r *reader, img []byte, key element.FactKey) error {
	off := r.index[key]
	fkey, records, err := r.readLineageImage(img, off)
	if err != nil {
		return err
	}
	if fkey != key {
		return fmt.Errorf("segment: %s @%d: frame holds %s, index says %s",
			r.path, off, fkey, key)
	}
	return d.mem.LoadLineage(records)
}

// removeOrphans deletes files a crash left unreferenced: segments absent
// from the manifest and stale temp files. Safe by construction — a
// segment becomes referenced only after it is fully written and synced.
func (d *Store) removeOrphans(man *manifestRec) {
	live := map[string]bool{}
	if man != nil {
		for _, ms := range man.Segments {
			live[ms.File] = true
		}
	}
	ents, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case name == manifestName || name == lockName || live[name] ||
			state.IsWALFileName(name):
		case filepath.Ext(name) == ".tmp", filepath.Ext(name) == ".seg":
			if err := d.fs.Remove(filepath.Join(d.dir, name)); err != nil {
				d.removeFails.Add(1)
			}
		}
	}
}

// readManifest loads and validates the manifest, returning nil when the
// directory has none yet (a fresh directory).
func readManifest(fsys vfs.FS, path string) (*manifestRec, error) {
	f, err := fsys.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("segment: manifest: %w", err)
	}
	defer f.Close()
	var man manifestRec
	if err := gob.NewDecoder(io.NewSectionReader(f, 0, 1<<62)).Decode(&man); err != nil {
		return nil, fmt.Errorf("segment: manifest: %w", err)
	}
	if man.Version < 1 || man.Version > manifestVersion {
		return nil, fmt.Errorf("segment: manifest version %d, want <= %d", man.Version, manifestVersion)
	}
	return &man, nil
}

// writeManifest commits a manifest atomically: temp file, sync, rename,
// directory sync.
func (d *Store) writeManifest(man *manifestRec) error {
	path := filepath.Join(d.dir, manifestName)
	tmp := path + ".tmp"
	f, err := d.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("segment: manifest: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(man); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		d.fs.Remove(tmp)
		return fmt.Errorf("segment: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		d.fs.Remove(tmp)
		return fmt.Errorf("segment: manifest: %w", err)
	}
	if err := d.fs.Rename(tmp, path); err != nil {
		d.fs.Remove(tmp)
		return fmt.Errorf("segment: manifest: %w", err)
	}
	d.fs.SyncDir(d.dir)
	return nil
}

// Mem returns the RAM working set — the wrapped sharded store. Engines
// and rules write through it directly; everything it holds is covered by
// the WAL until the next flush.
func (d *Store) Mem() *state.Store { return d.mem }

// Log returns the WAL the working set appends to.
func (d *Store) Log() *state.Log { return d.log }

// DurableTx reports the durable cut: every write at or before it is
// captured by segment files; later writes live in the WAL tail.
func (d *Store) DurableTx() temporal.Instant { return d.cat.Load().durableTx }

// Flush makes everything committed so far durable in segments: it pins
// the cut behind the store's publication barrier (Store.Snapshot
// semantics) and hands the WAL prefix off. See FlushAt for the protocol;
// engines flush at watermarks instead, where the cut is quiesced by the
// stream contract.
func (d *Store) Flush() error {
	return d.FlushAt(d.mem.Snapshot().At())
}

// FlushAt flushes the cut at an explicit transaction-time instant:
// gather the lineages touched since the last flush (each as the record
// set believed at the cut) into one new segment, sync it, commit the
// manifest advancing the durable cut, truncate the WAL prefix the
// segments now cover, and retire segments whose every key has a newer
// frame. Writes with explicit transaction times at or before an
// already-durable cut forfeit durability, exactly as they forfeit
// snapshot isolation (snapshot.go); default-clock and watermark-ordered
// writes cannot land behind the cut.
//
// FlushAt serializes with other flushes; concurrent reads and writes
// proceed throughout (the gather is lock-free, the WAL truncation
// briefly blocks appenders only).
func (d *Store) FlushAt(cut temporal.Instant) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Latched background-flush errors are surfaced alongside — never
	// instead of — this attempt: a transient failure (disk pressure,
	// say) must not disable flushing permanently.
	joined := d.takeFlushErr()
	if d.degraded.Load() != nil && d.log.Dropping() {
		// Degraded-exit protocol for a forfeited WAL. Order is load-
		// bearing: Rearm the log FIRST (fresh file, fresh encoder), THEN
		// pin the cut. A transaction time is reserved under the shard
		// lock before its WAL append, so every append dropped before the
		// Rearm carries a time at or before the pin — the flush below
		// covers it — and every append after the Rearm lands in the
		// fresh WAL. The loss window left is a crash between here and
		// the manifest commit, which degraded mode already forfeited.
		if err := d.log.Rearm(); err != nil {
			return errors.Join(joined, err)
		}
		if c := d.mem.Snapshot().At(); c > cut {
			cut = c
		}
	}
	err := d.flushLocked(cut)
	if err == nil {
		d.errMu.Lock()
		d.lastErr = nil
		d.errMu.Unlock()
		d.exitDegraded()
	}
	return errors.Join(joined, err)
}

// flushLocked is FlushAt's body; callers hold d.mu.
func (d *Store) flushLocked(cut temporal.Instant) error {
	if d.closed {
		return errors.New("segment: store is closed")
	}
	cat := d.cat.Load()
	if cut <= cat.durableTx {
		return nil
	}

	name := fmt.Sprintf("seg-%08d.seg", d.nextSeq)
	w, err := createSegment(d.fs, filepath.Join(d.dir, name), 0)
	if err != nil {
		return err
	}
	var gatherErr error
	// rewritten collects every key the new segment holds — each one's
	// previous owner loses a live frame; newSwept the husks whose
	// truthful frame stays on disk while the lineage leaves RAM.
	var rewritten, newSwept []element.FactKey
	d.mem.FlushCut(cut, cat.durableTx, func(key element.FactKey, records []*element.Fact, lastWrite temporal.Instant) {
		if gatherErr != nil {
			return
		}
		if len(records) == 0 {
			// An emptied husk. Its existing frame stays truthful history
			// when it already covers every write (pure compaction); it
			// needs a tombstone — an empty frame superseding it — only
			// when writes happened after its cut (e.g. a delete the
			// sweep then compacted away, which the stale frame would
			// resurrect).
			own, _, ok := cat.owner(key)
			if !ok || lastWrite <= own.cut {
				if ok {
					newSwept = append(newSwept, key)
				}
				return
			}
		}
		gatherErr = w.writeLineage(key, records)
		rewritten = append(rewritten, key)
	})
	if gatherErr != nil {
		w.abort()
		return gatherErr
	}

	nc := &catalog{durableTx: cut}
	segs := make([]*reader, len(cat.segments), len(cat.segments)+1)
	copy(segs, cat.segments)
	if len(rewritten) == 0 {
		// Nothing dirty: advance the durable cut without an empty file.
		w.abort()
	} else {
		r, err := w.finish(cut)
		if err != nil {
			return err
		}
		d.nextSeq++
		segs = append(segs, r)
		// Per-segment live accounting, O(dirty keys): the new segment
		// owns every rewritten key, so each key's previous owner — its
		// newest OLD frame — loses one.
		for _, key := range rewritten {
			if own, _, ok := cat.owner(key); ok {
				own.live.Add(-1)
			}
		}
	}

	// A segment whose every key has a newer frame is dead (live == 0):
	// drop it from the manifest now, unlink after the commit.
	var dead []*reader
	for _, r := range segs {
		if r.live.Load() == 0 {
			dead = append(dead, r)
		} else {
			nc.segments = append(nc.segments, r)
		}
	}

	// The durable-only key set after this commit: a key the new segment
	// holds is no longer merely durable (its newest frame speaks for
	// itself), a husk whose truthful frame stayed becomes durable-only.
	// The DropSweptBefore preview catches husks FlushCut never visited —
	// a sweep between flushes can bump a husk's maxTx to a point already
	// at or below the previous cut (pure compaction of a long-durable
	// lineage); the commit below is their only chance to be recorded, or
	// a restart would reload them resident.
	preview := d.mem.SweptBefore(cut)
	sweptAfter := d.swept
	if len(rewritten) > 0 || len(newSwept) > 0 || len(preview) > 0 {
		sweptAfter = make(map[element.FactKey]bool, len(d.swept)+len(newSwept)+len(preview))
		for k := range d.swept {
			sweptAfter[k] = true
		}
		for _, k := range newSwept {
			sweptAfter[k] = true
		}
		for _, k := range preview {
			// A husk with no durable frame has nothing to stay skippable
			// for; it simply leaves RAM.
			if _, _, ok := cat.owner(k); ok {
				sweptAfter[k] = true
			}
		}
		// Rewritten last: a key the new segment holds (including fresh
		// tombstones) speaks for itself.
		for _, k := range rewritten {
			delete(sweptAfter, k)
		}
	}
	man := d.manifestFor(nc, sweptAfter, d.mem.EvictedKeys())
	// Sync the WAL before the manifest commit: after the commit, every
	// write is durable against power loss too — at or before the cut in
	// the just-synced segment, after it in the just-synced tail. A
	// dropping (degraded) WAL is forfeit — its tail ends in a torn
	// record and newer appends were discarded — so there is nothing
	// coherent to sync; the segment flush itself carries durability.
	if !d.log.Dropping() {
		if err := d.log.Sync(); err != nil {
			return err
		}
	}
	if err := d.writeManifest(man); err != nil {
		return err
	}
	d.cat.Store(nc)
	d.swept = sweptAfter

	// Retired segments are unlinked but NOT explicitly closed: a reader
	// that loaded an older catalog may still pread them. Dropping every
	// reference here lets the runtime's os.File finalizer close each
	// descriptor once no in-flight reader can reach it — the same
	// GC-based epoch reclamation the store's published heads use. A
	// failed unlink is counted (Info.RemoveFailures), not silenced.
	for _, r := range dead {
		if err := d.fs.Remove(r.path); err != nil {
			d.removeFails.Add(1)
		}
	}

	// The manifest is committed: the WAL prefix at or before the cut is
	// redundant. A crash before (or during) the truncation is benign —
	// recovery filters replay by the manifest's cut. A dropping WAL is
	// skipped for the same reason its sync was.
	if !d.log.Dropping() {
		if err := d.log.TruncateBefore(cut); err != nil {
			return err
		}
	}
	// Husks whose tombstones (or truthful frames) the commit covered are
	// reclaimable (see state.SetRetainSwept). Keys the manifest recorded
	// as durable-only leave RAM here; the rest leave because their
	// tombstone frame is now the durable truth.
	d.mem.DropSweptBefore(cut)
	return nil
}

// manifestFor serializes a catalog plus the durable-only and evicted
// key sets as the manifest record to commit. evicted must already be
// sorted (state.EvictedKeys emits manifest order). Callers hold d.mu.
func (d *Store) manifestFor(cat *catalog, swept map[element.FactKey]bool, evicted []element.FactKey) *manifestRec {
	man := &manifestRec{Version: manifestVersion, DurableTx: cat.durableTx, NextSeq: d.nextSeq}
	for _, r := range cat.segments {
		man.Segments = append(man.Segments, manifestSegment{File: filepath.Base(r.path), CutTx: r.cut})
	}
	if len(swept) > 0 {
		man.Swept = make([]element.FactKey, 0, len(swept))
		for k := range swept {
			man.Swept = append(man.Swept, k)
		}
		// Sorted so manifest bytes are deterministic for a given state.
		sort.Slice(man.Swept, func(i, j int) bool {
			if man.Swept[i].Attribute != man.Swept[j].Attribute {
				return man.Swept[i].Attribute < man.Swept[j].Attribute
			}
			return man.Swept[i].Entity < man.Swept[j].Entity
		})
	}
	man.Evicted = evicted
	return man
}

// Pulse nudges the background flusher: when the WAL tail has grown past
// the flush threshold and no flush is in flight, one starts at cut. The
// engine calls it as its watermark advances — the cut is then quiesced
// by the stream's timestamp order. Transient failures retry with capped
// exponential backoff; a permanent failure degrades the store (see
// Degraded). Accumulated errors surface from the next Flush, FlushAt,
// or Close. Degraded stores skip pulses entirely — a manual Flush or
// Resume is the way back.
func (d *Store) Pulse(cut temporal.Instant) {
	// Order matters: the degraded and flushing latches and the
	// durable-cut check are lock-free, so a Pulse during an in-flight
	// flush returns without touching Log.Len — whose appender token the
	// flush's WAL rewrite may be holding for its O(tail) duration.
	if d.degraded.Load() != nil {
		return
	}
	// Compaction and budget eviction ride the same heartbeat: never from
	// FlushAt itself, so direct flushes stay deterministic for callers
	// that count segments or resident lineages.
	d.maybeCompact()
	d.maybeEvict()
	if d.flushing.Load() || cut <= d.DurableTx() || d.log.Len() < d.flushEvery {
		return
	}
	if !d.flushing.CompareAndSwap(false, true) {
		return
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer d.flushing.Store(false)
		d.backgroundFlush(cut)
	}()
}

// maybeEvict starts one background eviction sweep when the resident
// byte estimate exceeds the residency budget and no sweep is in flight.
// Rides Pulse, like maybeCompact. Only state at or before the durable
// cut is evictable, so a sweep right after a flush reclaims the most.
func (d *Store) maybeEvict() {
	if d.budget <= 0 || d.mem.ResidentBytes() <= d.budget || d.evicting.Load() {
		return
	}
	if !d.evicting.CompareAndSwap(false, true) {
		return
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer d.evicting.Store(false)
		d.mem.EvictToBudget(d.budget, d.DurableTx())
	}()
}

// EvictToBudget synchronously evicts least-recently-used fully-durable
// lineages until the RAM working set's byte estimate is at or below
// budget, returning how many lineages left RAM. It is the operator (and
// test) verb for "evict now"; the background sweep maybeEvict starts
// from Pulse does the same work against the configured budget.
func (d *Store) EvictToBudget(budget int64) int {
	return d.mem.EvictToBudget(budget, d.DurableTx())
}

// backgroundFlush drives one pulsed flush to completion: transient
// failures (vfs.IsTransient) retry under the store's RetryPolicy —
// doubling delay, full jitter, interruptible by Close — and a permanent
// failure or an exhausted budget latches degraded mode.
func (d *Store) backgroundFlush(cut temporal.Instant) {
	delay := d.retry.BaseDelay
	for attempt := 0; ; attempt++ {
		d.mu.Lock()
		err := d.flushLocked(cut)
		d.mu.Unlock()
		if err == nil {
			d.errMu.Lock()
			d.lastErr = nil
			d.errMu.Unlock()
			return
		}
		d.noteFlushErr(err)
		if !vfs.IsTransient(err) {
			d.enterDegraded(err, false)
			return
		}
		if attempt >= d.retry.MaxRetries {
			d.enterDegraded(err, true)
			return
		}
		d.flushRetries.Add(1)
		sleep := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		select {
		case <-time.After(sleep):
		case <-d.closing:
			return
		}
		if delay *= 2; delay > d.retry.MaxDelay {
			delay = d.retry.MaxDelay
		}
	}
}

// noteFlushErr records one background-flush failure in the bounded
// history (oldest evicted) and as the latest cause for Info.
func (d *Store) noteFlushErr(err error) {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	d.lastErr = err
	d.flushErrs = append(d.flushErrs, err)
	if len(d.flushErrs) > maxFlushErrHistory {
		d.flushErrs = d.flushErrs[len(d.flushErrs)-maxFlushErrHistory:]
	}
}

// takeFlushErr drains the background-flush error history, joining every
// retained failure — not just the first — so distinct later causes
// survive to the surfacing Flush/Close.
func (d *Store) takeFlushErr() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	if len(d.flushErrs) == 0 {
		return nil
	}
	err := errors.Join(d.flushErrs...)
	d.flushErrs = nil
	return err
}

// LastFlushErr reports the most recent flush failure; nil after a
// successful flush.
func (d *Store) LastFlushErr() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.lastErr
}

// enterDegraded latches degraded mode (first cause wins) and fires the
// transition hooks.
func (d *Store) enterDegraded(cause error, exhausted bool) {
	deg := &Degraded{Since: time.Now(), Cause: cause, RetriesExhausted: exhausted}
	if d.degraded.CompareAndSwap(nil, deg) {
		d.fireDegradedHooks(deg)
	}
}

// exitDegraded clears the latch and fires the hooks with nil.
func (d *Store) exitDegraded() {
	if d.degraded.Swap(nil) != nil {
		d.fireDegradedHooks(nil)
	}
}

func (d *Store) fireDegradedHooks(deg *Degraded) {
	d.hookMu.Lock()
	hooks := make([]func(*Degraded), len(d.onDegraded))
	copy(hooks, d.onDegraded)
	d.hookMu.Unlock()
	for _, fn := range hooks {
		fn(deg)
	}
}

// Degraded reports the store's degraded mode; nil means healthy. While
// degraded, ingest and RAM reads keep working, flushes and durable
// fallthrough reads stop, and WAL appends are acknowledged but dropped
// (Info.DroppedAppends counts them).
func (d *Store) Degraded() *Degraded { return d.degraded.Load() }

// OnDegraded registers a hook fired on degraded-mode transitions: with
// the Degraded record on entry, with nil on exit. Hooks may run on a
// writer goroutine holding a shard lock (WAL failures latch inline), so
// they must be fast and lock-light — atomic updates and non-blocking
// sends, never store operations. Register before ingestion starts.
func (d *Store) OnDegraded(fn func(*Degraded)) {
	d.hookMu.Lock()
	defer d.hookMu.Unlock()
	d.onDegraded = append(d.onDegraded, fn)
}

// Resume is the operator verb for leaving degraded mode: one full
// manual flush — which rearms a forfeited WAL and, on success, clears
// the degraded latch. A nil return means the store is healthy again;
// an error means it is still degraded. Unlike Flush, a successful
// Resume discards the surfaced pre-resume error history (it was
// observable via LastFlushErr and Info while latched) instead of
// reporting old causes as a fresh failure.
func (d *Store) Resume() error {
	// Drain the latched history first: the return value is then exactly
	// this attempt's outcome, not a replay of already-observed causes.
	d.takeFlushErr()
	return d.Flush()
}

// Close flushes everything committed so far and releases the WAL and
// segment descriptors. The store must not be used afterwards; Close is
// idempotent (later calls return the first call's result, so the
// `defer Close` + explicit `Close` pattern reports no spurious error).
// Omitting Close loses nothing but the final flush: the WAL still
// covers every commit since the last one — that is the crash the
// recovery path is built for.
func (d *Store) Close() error {
	d.closeOnce.Do(func() { d.closeErr = d.doClose() })
	return d.closeErr
}

// doClose is the body of the first Close. The lock and descriptors are
// released even when the final flush fails — Close runs once, so
// holding them would leak the flock (blocking any reopen in-process)
// with no path left to release it.
func (d *Store) doClose() error {
	close(d.closing)
	d.wg.Wait()
	flushErr := d.Flush()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.closeSegments(d.cat.Load())
	closeErr := d.log.Close()
	d.unlock()
	return errors.Join(flushErr, closeErr)
}

// Abandon releases the store's OS resources — the directory lock, WAL,
// and segment descriptors — WITHOUT flushing, leaving the directory
// exactly as a process crash would: segments up to the last durable
// cut plus the WAL tail. It exists for crash-simulation tests and
// benchmarks that reopen a directory their "crashed" store still
// references in-process (a real crash releases the flock with the
// process; in-process the lock must be dropped explicitly). The store
// must not be used afterwards; a subsequent Close is a no-op.
func (d *Store) Abandon() {
	d.closeOnce.Do(func() {
		close(d.closing)
		d.wg.Wait()
		d.mu.Lock()
		defer d.mu.Unlock()
		d.closed = true
		d.closeSegments(d.cat.Load())
		d.log.Close()
		d.unlock()
	})
}

// closeSegments closes every segment descriptor of a catalog.
func (d *Store) closeSegments(cat *catalog) {
	for _, r := range cat.segments {
		r.f.Close()
	}
}

// Find returns the version of (entity, attr) selected by the read
// options. The RAM working set resolves it and falls through to this
// store's ColdRecords (the key's newest segment frame) when the lineage
// is not resident — evicted by the budget or dropped by compaction — so
// reads below the residency horizon still resolve. A resident lineage
// answers from RAM alone, even when the answer is "nothing": its frame
// may predate deletes or supersessions the lineage has since seen, and
// serving it would resurrect them. Implements state.StateDB /
// state.Reader.
func (d *Store) Find(entity, attr string, opts ...state.ReadOpt) (*element.Fact, bool) {
	return d.mem.Find(entity, attr, opts...)
}

// History returns the version history of (entity, attr) — from RAM when
// the working set holds the lineage, from the newest durable frame (via
// ColdRecords) when it does not. RAM and frame histories are never
// merged: whichever side owns the lineage answers alone.
func (d *Store) History(entity, attr string, opts ...state.ReadOpt) []*element.Fact {
	return d.mem.History(entity, attr, opts...)
}

// List scans through the RAM working set, whose gather unions the
// durable-only lineages this store contributes via ColdLineages — one
// sorted merge, resident winning on equal keys, so scans below the
// residency horizon see the same durable history Find and History do,
// in exactly the order an all-resident store would produce. Implements
// state.StateDB / state.Reader.
func (d *Store) List(opts ...state.ReadOpt) []*element.Fact {
	return d.mem.List(opts...)
}

// ColdRecords resolves the newest durable frame of a non-resident key —
// the fall-through behind the RAM store's point reads and histories.
// Point reads (point=true) prune with the owning segment's bitemporal
// envelope: a valid-time instant outside the segment's validity span, a
// current-belief read against a segment with no open validity anywhere,
// or a belief pinned before anything the segment recorded cannot match
// and skips the pread. History reads pass point=false and always read
// the frame — their selection semantics (closed records, AllVersions)
// are not point-shaped, so only the full resolver can answer.
// Implements state.ColdSource.
func (d *Store) ColdRecords(key element.FactKey, spec state.ReadSpec, point bool) ([]*element.Fact, bool) {
	if d.degraded.Load() != nil {
		// Degraded mode serves RAM only: the disk already failed on the
		// write path, so fallthrough preads stop rather than stall or
		// flap per read.
		return nil, false
	}
	cat := d.cat.Load()
	if cat == nil {
		return nil, false
	}
	seg, off, ok := cat.owner(key)
	if !ok {
		return nil, false
	}
	if point {
		env := seg.env
		if spec.HasValidAt && (spec.ValidAt < env.minValid || spec.ValidAt >= env.maxValid) {
			return nil, false
		}
		if !spec.HasValidAt && env.maxValid != temporal.Forever {
			// A current-belief point read needs an open version; a segment
			// with no open validity anywhere cannot hold one.
			return nil, false
		}
		if spec.HasTxAt && spec.TxAt < env.minTx {
			return nil, false
		}
	}
	_, records, err := seg.readLineage(off)
	if err != nil {
		// A failing referenced frame is corruption, not absence; reads
		// degrade to RAM-only rather than panic mid-query.
		return nil, false
	}
	return records, true
}

// ColdLineages returns the durable-only scan candidates of the given
// shape: every key with a durable frame, its newest frame behind a lazy
// loader, sorted by (attribute, entity). Whole frames are pruned — the
// pread never issued — when the owning segment's bitemporal envelope is
// disjoint from the scan shape or its value envelope disjoint from the
// pushed bounds. Keys that are in fact resident are included (the
// catalog does not know residency); the RAM merge discards them
// unloaded, which is what makes the scan race-free against concurrent
// eviction and fault-in. Implements state.ColdSource.
func (d *Store) ColdLineages(shape state.ScanShape, bounds state.ValueBounds) []state.ColdLineage {
	if d.degraded.Load() != nil {
		// Degraded scans serve RAM only, matching ColdRecords' posture.
		return nil
	}
	cat := d.cat.Load()
	if cat == nil || len(cat.segments) == 0 {
		return nil
	}
	var out []state.ColdLineage
	seen := make(map[element.FactKey]bool)
	for i := len(cat.segments) - 1; i >= 0; i-- {
		r := cat.segments[i]
		pruned := scanPrune(r.env, shape) || (r.vNumeric && bounds.Excludes(r.vMin, r.vMax))
		for key, off := range r.index {
			if seen[key] {
				continue
			}
			// Mark even the pruned and filtered: an older frame of the
			// same key must not answer for the newest one.
			seen[key] = true
			if shape.Attr != "" && key.Attribute != shape.Attr {
				continue
			}
			if pruned {
				d.scanPruned.Add(1)
				continue
			}
			r, off := r, off
			out = append(out, state.ColdLineage{Key: key, Load: func() ([]*element.Fact, error) {
				// Loads run from scan workers, possibly concurrently:
				// readLineage preads, so they never seek-contend.
				_, records, err := r.readLineage(off)
				if err == nil {
					d.scanFrames.Add(1)
				}
				return records, err
			}})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Attribute != out[j].Key.Attribute {
			return out[i].Key.Attribute < out[j].Key.Attribute
		}
		return out[i].Key.Entity < out[j].Key.Entity
	})
	return out
}

// FaultIn returns the full record set of a key's newest durable frame so
// the write path can reinstall an evicted lineage before mutating it.
// Unlike ColdRecords it never envelope-prunes — the caller needs the
// history, not an answer — and it stays available in degraded mode: the
// WRITE path of the disk failed, preads may still work, and losing the
// faulted history would compound the degradation. Implements
// state.ColdSource.
func (d *Store) FaultIn(key element.FactKey) ([]*element.Fact, bool) {
	cat := d.cat.Load()
	if cat == nil {
		return nil, false
	}
	seg, off, ok := cat.owner(key)
	if !ok {
		return nil, false
	}
	_, records, err := seg.readLineage(off)
	if err != nil {
		return nil, false
	}
	return records, true
}

// scanPrune reports whether a segment's bitemporal envelope proves that
// no record in it can match the scan shape — findFrame's point-read
// pruning generalized from point reads to every List shape.
func scanPrune(env envelope, shape state.ScanShape) bool {
	if shape.HasTxAt && shape.TxAt < env.minTx {
		// Nothing in the segment was recorded by the belief pin.
		return true
	}
	if shape.HasValidAt {
		return shape.ValidAt < env.minValid || shape.ValidAt >= env.maxValid
	}
	if shape.HasDuring {
		return shape.During.End <= env.minValid || shape.During.Start >= env.maxValid
	}
	if !shape.AllVersions {
		// A current-belief scan selects open versions; a segment with no
		// open validity anywhere cannot hold one.
		return env.maxValid != temporal.Forever
	}
	return false
}

// Put writes through the RAM working set (and its WAL). Implements
// state.StateDB.
func (d *Store) Put(entity, attr string, v element.Value, opts ...state.WriteOpt) error {
	return d.mem.DB().Put(entity, attr, v, opts...)
}

// Delete writes through the RAM working set (and its WAL). Implements
// state.StateDB.
func (d *Store) Delete(entity, attr string, opts ...state.WriteOpt) error {
	return d.mem.Delete(entity, attr, opts...)
}

// Info summarizes the durable directory.
type Info struct {
	// DurableTx is the durable cut (see DurableTx).
	DurableTx temporal.Instant
	// Segments is the number of live segment files.
	Segments int
	// SegmentsPerLevel counts live segments by compaction level (index =
	// level).
	SegmentsPerLevel []int
	// Frames is the number of keys with a durable frame.
	Frames int
	// FrameSlots is the total index-entry count across segments —
	// Frames plus the superseded duplicates compaction has not yet
	// reclaimed.
	FrameSlots int
	// WALRecords is the record count of the WAL tail.
	WALRecords int
	// WALFiles is the file count of the WAL chain.
	WALFiles int
	// DroppedWALFiles is the cumulative count of whole WAL files
	// truncation and rearms unlinked.
	DroppedWALFiles int
	// WALDropFailures counts WAL chain files that should have been
	// unlinked but could not be (disk leak made visible).
	WALDropFailures int
	// Merges counts committed compaction merges.
	Merges int64
	// MergeBytesReclaimed is the net bytes merges reclaimed: victim file
	// sizes minus merged output sizes.
	MergeBytesReclaimed int64
	// CompactionFailures counts merges that failed outright (conflict
	// and shutdown aborts excluded).
	CompactionFailures int64
	// ScanFrames is the cumulative count of durable frames read into
	// scans (the merged gather's cold loads for non-resident lineages).
	ScanFrames int64
	// ScanFramesPruned is the cumulative count of durable scan
	// candidates the per-segment envelopes (bitemporal or value) pruned
	// unread.
	ScanFramesPruned int64
	// ResidentLineages is the number of lineages currently resident in
	// the RAM working set.
	ResidentLineages int
	// EvictedLineages is the number of keys currently evicted from RAM
	// by the residency budget — served from durable frames, faulted back
	// in on write.
	EvictedLineages int
	// ResidentBytes is the RAM working set's estimated byte footprint —
	// what the residency budget is compared against.
	ResidentBytes int64
	// Degraded is non-nil while the store is in degraded mode.
	Degraded *Degraded
	// LastFlushErr is the most recent flush failure; nil after a
	// successful flush.
	LastFlushErr error
	// FlushRetries counts transient background-flush retries.
	FlushRetries int64
	// RemoveFailures counts failed cleanup unlinks (orphan GC, retired
	// segments).
	RemoveFailures int64
	// DroppedAppends counts WAL appends acknowledged and discarded in
	// degraded mode.
	DroppedAppends int
}

// Info returns a point-in-time summary of the durable directory.
func (d *Store) Info() Info {
	cat := d.cat.Load()
	frames, slots := 0, 0
	var perLevel []int
	for _, r := range cat.segments {
		frames += int(r.live.Load())
		slots += len(r.index)
		for len(perLevel) <= r.level {
			perLevel = append(perLevel, 0)
		}
		perLevel[r.level]++
	}
	return Info{
		DurableTx:           cat.durableTx,
		Segments:            len(cat.segments),
		SegmentsPerLevel:    perLevel,
		Frames:              frames,
		FrameSlots:          slots,
		WALRecords:          d.log.Len(),
		WALFiles:            d.log.Files(),
		DroppedWALFiles:     d.log.DroppedFiles(),
		WALDropFailures:     d.log.DropFailures(),
		Merges:              d.merges.Load(),
		MergeBytesReclaimed: d.mergeReclaim.Load(),
		CompactionFailures:  d.compactFails.Load(),
		ScanFrames:          d.scanFrames.Load(),
		ScanFramesPruned:    d.scanPruned.Load(),
		ResidentLineages:    d.mem.ResidentLineages(),
		EvictedLineages:     d.mem.EvictedCount(),
		ResidentBytes:       d.mem.ResidentBytes(),
		Degraded:            d.degraded.Load(),
		LastFlushErr:        d.LastFlushErr(),
		FlushRetries:        d.flushRetries.Load(),
		RemoveFailures:      d.removeFails.Load(),
		DroppedAppends:      d.log.Dropped(),
	}
}
