// Leveled segment compaction: the background merger that turns the
// flush-append segment chain into a log-structured engine.
//
// Flushes append level-0 segments. Once a contiguous run of equal-level
// segments reaches the fanout, the merger rewrites the run into one
// segment at the next level; a single segment whose dead-frame fraction
// crosses the garbage threshold is rewritten in place at its own level.
// A merge reclaims three kinds of garbage: frames a newer segment
// superseded, tombstone frames no older segment still needs (nothing
// left to shadow), and — under WithBeliefRetention — superseded belief
// versions older than the retention horizon.
//
// The merge protocol mirrors the flush protocol exactly:
//
//  1. Build the merged segment OUTSIDE the store lock, newest victim
//     first, rate-limited and interruptible by Close. The output file is
//     unreferenced until commit — a crash mid-build leaves an orphan the
//     next open removes.
//  2. Commit under the lock: re-check the victims still form the same
//     contiguous run in the current catalog (a concurrent flush may have
//     dropped a dead victim — then the merge aborts, never corrupts),
//     write the manifest (temp + rename: the single atomic commit
//     point), publish the new catalog, and unlink the victims. A crash
//     between rename and unlink leaves the victims as orphans.
//
// Victim frames all carry complete lineage snapshots at their segment's
// cut, so "newest frame wins wholesale" is the whole merge semantics —
// no record-level merging exists to get wrong.

package segment

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/element"
	"repro/internal/temporal"
)

// errCompactBusy reports a manual Compact finding a merge in flight.
var errCompactBusy = errors.New("segment: compaction already in flight")

// maybeCompact starts one background merge when victim selection finds
// work and no merge is in flight. Called from Pulse — never from the
// flush path itself, so direct FlushAt callers see deterministic
// segment counts.
func (d *Store) maybeCompact() {
	if d.compacting.Load() {
		return
	}
	cat := d.cat.Load()
	lo, hi, level := selectVictims(cat, d.compactFanout, d.compactGarbage, d.levelBytes)
	if hi <= lo {
		return
	}
	if !d.compacting.CompareAndSwap(false, true) {
		return
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer d.compacting.Store(false)
		d.mergeRange(cat, lo, hi, level)
	}()
}

// Compact synchronously merges the entire segment chain into one
// segment one level above the current maximum, reclaiming every dead
// frame, every unshadowed tombstone, and (under WithBeliefRetention)
// every superseded version beyond the horizon. It is the operator verb
// for "compact now"; background merges do the same work incrementally.
// Returns nil when there is nothing to merge; errCompactBusy-flavored
// error when a background merge is already in flight.
func (d *Store) Compact() error {
	cat := d.cat.Load()
	if len(cat.segments) == 0 {
		return nil
	}
	maxLevel := 0
	for _, r := range cat.segments {
		if r.level > maxLevel {
			maxLevel = r.level
		}
	}
	if !d.compacting.CompareAndSwap(false, true) {
		return errCompactBusy
	}
	defer d.compacting.Store(false)
	return d.mergeRange(cat, 0, len(cat.segments), maxLevel+1)
}

// selectVictims picks the next merge from a catalog: first the oldest
// contiguous run of equal-level segments that is ripe — by COUNT (>=
// fanout segments) or by BYTES (>= 2 segments whose combined file size
// reaches levelBytes * fanout^level; levelBytes <= 0 disables the byte
// trigger) — merged into the next level; else the oldest single segment
// whose dead-frame share reaches garbageFrac (rewritten at its own
// level; the dead > 0 requirement keeps a segment whose garbage is all
// still-shadowing tombstones from being rewritten over and over for no
// reclaim). The byte trigger is what makes selection size-aware: a run
// of two huge flush segments compacts as eagerly as four tiny ones,
// instead of counting the same as them. Returns lo == hi when nothing
// qualifies.
func selectVictims(cat *catalog, fanout int, garbageFrac float64, levelBytes int64) (lo, hi, level int) {
	segs := cat.segments
	if fanout < 2 {
		fanout = 2
	}
	for i := 0; i < len(segs); {
		j := i + 1
		runBytes := segs[i].size
		for j < len(segs) && segs[j].level == segs[i].level {
			runBytes += segs[j].size
			j++
		}
		if j-i >= fanout || (j-i >= 2 && levelBytes > 0 && runBytes >= levelCap(levelBytes, fanout, segs[i].level)) {
			return i, j, segs[i].level + 1
		}
		i = j
	}
	for i, r := range segs {
		n := len(r.index)
		if n >= minCompactFrames && int(r.live.Load()) < n && r.garbage() >= garbageFrac {
			return i, i + 1, r.level
		}
	}
	return 0, 0, 0
}

// levelCap is the byte budget of one level — levelBytes * fanout^level,
// saturating instead of overflowing for deep levels.
func levelCap(levelBytes int64, fanout, level int) int64 {
	cap := levelBytes
	for i := 0; i < level; i++ {
		if cap > (1<<62)/int64(fanout) {
			return 1 << 62
		}
		cap *= int64(fanout)
	}
	return cap
}

// mergeRange builds and commits one merge of cat.segments[lo:hi] into a
// segment at outLevel. cat is the catalog the victims were selected
// from; the commit re-validates against the current one. Aborts —
// concurrent-flush conflicts, shutdown — return nil; real failures
// count in Info.CompactionFailures and return the error.
func (d *Store) mergeRange(cat *catalog, lo, hi, outLevel int) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	seq := d.nextSeq
	d.nextSeq++ // reserved; an aborted merge leaves a harmless gap
	d.mu.Unlock()

	merged, err := d.buildMerge(cat, lo, hi, outLevel, seq)
	if err != nil {
		if errors.Is(err, errMergeAborted) {
			return nil
		}
		d.compactFails.Add(1)
		return err
	}
	return d.commitMerge(cat, lo, hi, merged)
}

// errMergeAborted signals a benign build abort: shutdown, or a victim
// unlinked under the builder by a concurrent flush.
var errMergeAborted = errors.New("segment: merge aborted")

// buildMerge writes the merged segment for cat.segments[lo:hi] without
// holding the store lock. Victims are walked newest→oldest so the first
// frame seen per key is its newest within the run; a key owned by a
// segment newer than the run is pure garbage and is skipped. The
// returned reader is nil when everything was reclaimed.
func (d *Store) buildMerge(cat *catalog, lo, hi, outLevel int, seq uint64) (*reader, error) {
	victims := cat.segments[lo:hi]
	name := fmt.Sprintf("seg-%08d.seg", seq)
	w, err := createSegment(d.fs, filepath.Join(d.dir, name), outLevel)
	if err != nil {
		return nil, err
	}

	// Retention horizon in transaction time; MinInstant disables pruning.
	horizon := temporal.MinInstant
	if d.retentionNs > 0 {
		horizon = cat.durableTx - temporal.Instant(d.retentionNs)
	}

	start := time.Now()
	// throttle paces the build to compactRate bytes/second of output,
	// sleeping interruptibly so Close never waits out the schedule.
	throttle := func() bool {
		if d.compactRate <= 0 {
			return true
		}
		ahead := time.Duration(float64(w.off)/float64(d.compactRate)*float64(time.Second)) - time.Since(start)
		if ahead <= 0 {
			return true
		}
		select {
		case <-time.After(ahead):
			return true
		case <-d.closing:
			return false
		}
	}

	seen := make(map[element.FactKey]bool)
	written := temporal.MinInstant // newest cut among victims = output cut
	for i := len(victims) - 1; i >= 0; i-- {
		r := victims[i]
		if r.cut > written {
			written = r.cut
		}
		img, err := r.image()
		if err != nil {
			w.abort()
			if errors.Is(err, fs.ErrNotExist) {
				// A concurrent flush found the victim dead and unlinked
				// it; the merge is stale, not broken.
				return nil, errMergeAborted
			}
			return nil, err
		}
		// Sorted key order makes the output deterministic for a given
		// victim set (map iteration is not).
		keys := make([]element.FactKey, 0, len(r.index))
		for key := range r.index {
			if !seen[key] {
				keys = append(keys, key)
			}
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].Attribute != keys[b].Attribute {
				return keys[a].Attribute < keys[b].Attribute
			}
			return keys[a].Entity < keys[b].Entity
		})
		for _, key := range keys {
			seen[key] = true
			if cat.ownedAt(hi, key) {
				continue // a newer segment owns the key: dead frame, reclaim
			}
			if !throttle() {
				w.abort()
				return nil, errMergeAborted
			}
			fkey, records, err := r.readLineageImage(img, r.index[key])
			if err != nil {
				w.abort()
				return nil, err
			}
			if fkey != key {
				w.abort()
				return nil, fmt.Errorf("segment: %s: frame holds %s, index says %s", r.path, fkey, key)
			}
			records = pruneRetention(records, horizon)
			if len(records) == 0 && !cat.ownedBefore(lo, key) {
				// A tombstone shadowing nothing: reclaim it outright.
				continue
			}
			if err := w.writeLineage(key, records); err != nil {
				w.abort()
				return nil, err
			}
		}
	}
	if len(w.index) == 0 {
		// Everything reclaimed: commit the victims away with no output.
		w.abort()
		return nil, nil
	}
	return w.finish(written)
}

// pruneRetention drops superseded belief versions whose supersession
// predates the horizon. Currently-believed records always survive, so a
// frame with records never prunes to empty.
func pruneRetention(records []*element.Fact, horizon temporal.Instant) []*element.Fact {
	if horizon == temporal.MinInstant {
		return records
	}
	kept := records[:0]
	for _, f := range records {
		if f.SupersededAt != temporal.Forever && f.SupersededAt <= horizon {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// commitMerge publishes a built merge: re-validates the victims against
// the CURRENT catalog (they must still be the same contiguous run — a
// concurrent flush appends behind them or drops dead ones, never
// reorders), computes the merged segment's live count, commits the
// manifest, swaps the catalog, and unlinks the victims. merged may be
// nil (full reclaim).
func (d *Store) commitMerge(cat *catalog, lo, hi int, merged *reader) error {
	victims := cat.segments[lo:hi]
	abort := func() {
		if merged != nil {
			merged.f.Close()
			if err := d.fs.Remove(merged.path); err != nil {
				d.removeFails.Add(1)
			}
		}
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		abort()
		return nil
	}
	cur := d.cat.Load()
	pos := findRun(cur.segments, victims)
	if pos < 0 {
		abort()
		return nil
	}

	nc := &catalog{durableTx: cur.durableTx}
	nc.segments = append(nc.segments, cur.segments[:pos]...)
	if merged != nil {
		nc.segments = append(nc.segments, merged)
	}
	nc.segments = append(nc.segments, cur.segments[pos+len(victims):]...)
	if merged != nil {
		// The merged segment owns exactly its keys no LATER segment (in
		// the new chain) re-wrote while the merge ran.
		live := 0
		for key := range merged.index {
			if !cur.ownedAt(pos+len(victims), key) {
				live++
			}
		}
		merged.live.Store(int64(live))
	}

	// A manifest failure does NOT unlink the merged output: a torn rename
	// may have committed the new manifest, which references it — the
	// victims are then the orphans. If the rename never happened the
	// output is the orphan instead. Either way the next open's orphan
	// sweep reconciles; unlinking here would race the ambiguity.
	if err := d.writeManifest(d.manifestFor(nc, d.swept, d.mem.EvictedKeys())); err != nil {
		d.compactFails.Add(1)
		return err
	}
	d.cat.Store(nc)

	var reclaimed int64
	for _, r := range victims {
		reclaimed += r.size
		// Unlinked, not closed: an in-flight reader holding the old
		// catalog may still pread them; the finalizer closes the
		// descriptor once unreachable (same posture as retired flush
		// segments).
		if err := d.fs.Remove(r.path); err != nil {
			d.removeFails.Add(1)
		}
	}
	if merged != nil {
		reclaimed -= merged.size
	}
	d.merges.Add(1)
	d.mergeReclaim.Add(reclaimed)
	return nil
}

// findRun locates victims as a contiguous identity run inside segs,
// returning its start index or -1.
func findRun(segs, victims []*reader) int {
	if len(victims) == 0 {
		return -1
	}
outer:
	for i := 0; i+len(victims) <= len(segs); i++ {
		for j, v := range victims {
			if segs[i+j] != v {
				continue outer
			}
		}
		return i
	}
	return -1
}
