package segment

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/element"
	"repro/internal/state"
)

// TestRecoveryStress races ingestion (point puts and group commits),
// repeated durability flushes, and snapshot-pinned reads, then
// crash-reopens the directory and asserts the recovered store matches
// the live one byte-identically. Run under -race this doubles as the
// data-race proof for the flush path: the gather is lock-free against
// published heads while writers keep committing.
func TestRecoveryStress(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, WithFlushEvery(64))
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	const (
		writers = 4
		rounds  = 200
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Background flusher: explicit flushes racing the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := d.Flush(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
		}
	}()

	// Snapshot-pinned readers: the recovery-time read surface, taken
	// while flushes and ingest run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sn := d.Mem().Snapshot()
			_ = sn.List()
			_, _ = d.Find("w0-k00", "value")
		}
	}()

	// Writers stay on the default-clock surface: explicit transaction
	// times racing a flush pin can land behind an already-durable cut
	// and forfeit durability by design (the snapshot.go caveat), so
	// they have no byte-equality guarantee to assert here. The engine's
	// watermark-disciplined PutBatch path is covered deterministically
	// by the core restart test.
	var ingest sync.WaitGroup
	for w := 0; w < writers; w++ {
		ingest.Add(1)
		go func(w int) {
			defer ingest.Done()
			db := d.Mem().DB()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("w%d-k%02d", w, i%16)
				if err := db.Put(key, "value", element.Int(int64(i))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if i%16 == 0 {
					if err := db.Put(key, "audit", element.String("tag"),
						state.WithEndValidTime(d.Mem().Snapshot().At()+1_000_000)); err != nil {
						t.Errorf("bounded put: %v", err)
						return
					}
				}
			}
		}(w)
	}
	ingest.Wait()
	close(stop)
	wg.Wait()

	want := snapshotBytes(t, d.Mem())
	// Crash: Abandon instead of Close — no final flush. The WAL plus
	// flushed segments must reconstruct the exact final state.
	d.Abandon()
	rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	got := snapshotBytes(t, rec.Mem())
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs after concurrent ingest+flush (%d vs %d bytes)", len(got), len(want))
	}
}
