// Segment file format: the on-disk shape of one durability flush.
//
// A segment is an immutable, append-once file of length-prefixed,
// checksummed frames:
//
//	file    := magic "SSG1" frame* trailer
//	frame   := len:u32 crc:u32 payload          (crc32c over payload)
//	payload := kind:u8 body
//	trailer := footerOff:u64 magic "SGFT"       (last 12 bytes)
//
// Two frame kinds exist. A lineage frame (kind 1) carries the full
// record set of one `entity#attribute` lineage as of the segment's cut —
// the per-lineage WriteSnapshot cut FlushCut emits. The footer (kind 2,
// always the last frame) carries the segment's cut transaction time, the
// bitemporal min/max envelope of every contained record (for ASOF /
// SYSTEM TIME read pruning), and the key → frame-offset index the
// in-memory manifest is rebuilt from at open.
//
// Record instants are fixed-width little-endian (decode is four 8-byte
// loads on the bulk path); counts and offsets are varint/uvarint
// encoded; strings and value payloads are length-prefixed. Records
// within a lineage frame appear in recording order, so a frame
// round-trips through state.LoadLineage byte-exactly.
// Torn writes are detected by the length/crc pair: a frame that does not
// checksum is treated as absent, and a file without a valid trailer and
// footer is not a segment (open fails; recovery deletes such orphans —
// a segment is only referenced by the manifest after it is fully synced).

package segment

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/element"
	"repro/internal/temporal"
	"repro/internal/vfs"
)

const (
	fileMagic    = "SSG1"
	trailerMagic = "SGFT"
	trailerLen   = 12
	frameHdrLen  = 8

	kindLineage byte = 1
	kindFooter  byte = 2

	// Record flag bits.
	recDerived   byte = 1 << 0
	recHasSource byte = 1 << 1

	// maxFrameLen bounds a frame payload (1 GiB): anything larger in a
	// length prefix is corruption, not data.
	maxFrameLen = 1 << 30
)

// crcTable is the Castagnoli polynomial table (crc32c), the checksum of
// every frame.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// envelope is the bitemporal min/max summary of a record set: the
// valid-time span covered and the transaction-time span recorded. A
// point read outside the envelope cannot match any contained record, so
// segment reads prune on it (see Store.findFrame). Zero value = empty
// (Min > Max).
type envelope struct {
	minValid, maxValid temporal.Instant
	minTx, maxTx       temporal.Instant
}

// emptyEnvelope orders the bounds so any observation extends them.
func emptyEnvelope() envelope {
	return envelope{
		minValid: temporal.Forever, maxValid: temporal.MinInstant,
		minTx: temporal.Forever, maxTx: temporal.MinInstant,
	}
}

// observe extends the envelope with one record.
func (e *envelope) observe(f *element.Fact) {
	if f.Validity.Start < e.minValid {
		e.minValid = f.Validity.Start
	}
	if f.Validity.End > e.maxValid {
		e.maxValid = f.Validity.End
	}
	if f.RecordedAt < e.minTx {
		e.minTx = f.RecordedAt
	}
	if f.RecordedAt > e.maxTx {
		e.maxTx = f.RecordedAt
	}
	if end := f.SupersededAt; end != temporal.Forever && end > e.maxTx {
		e.maxTx = end
	}
}

// writer builds one segment file. Frames are buffered through bufio and
// the file is fsynced in finish, BEFORE the caller references it from
// the manifest — the crash-atomicity contract of the format.
type writer struct {
	f     vfs.File
	fs    vfs.FS
	bw    *bufio.Writer
	path  string
	off   int64
	index map[element.FactKey]int64
	env   envelope
	scr   []byte // payload scratch, reused across frames
	// level is the compaction level the finished segment carries in its
	// footer: 0 for flush output, victims' max + 1 for merge output.
	level int
	// tombs counts the tombstone (empty) lineage frames written — footer
	// metadata compaction victim selection reads without opening frames.
	tombs int
	// vMin/vMax/vNumeric are the segment's numeric value envelope, the
	// per-segment analogue of the per-head envelope the RAM scan prunes
	// with: vNumeric reports at least one record written and every
	// record's value numeric — only then may a scan skip the whole
	// segment on disjoint ValueBounds. vAny distinguishes the first
	// observed record (seeds the bounds) from later ones (widen them).
	vMin, vMax float64
	vNumeric   bool
	vAny       bool
}

// observeValue folds one record value into the segment's numeric value
// envelope — the same seeding/voiding rules as the head envelope: any
// non-numeric value permanently voids vNumeric, so a mixed segment is
// never envelope-pruned.
func (w *writer) observeValue(v element.Value) {
	x, ok := v.AsFloat()
	if !ok {
		w.vNumeric = false
		w.vAny = true
		return
	}
	if !w.vAny {
		w.vMin, w.vMax, w.vNumeric, w.vAny = x, x, true, true
		return
	}
	if !w.vNumeric {
		return
	}
	if x < w.vMin {
		w.vMin = x
	}
	if x > w.vMax {
		w.vMax = x
	}
}

// createSegment opens a new segment file at path and writes the header.
// level is recorded in the footer (see writer.level).
func createSegment(fsys vfs.FS, path string, level int) (*writer, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("segment: create: %w", err)
	}
	w := &writer{
		f: f, fs: fsys, bw: bufio.NewWriterSize(f, 1<<16), path: path,
		index: make(map[element.FactKey]int64),
		env:   emptyEnvelope(),
		level: level,
	}
	if _, err := w.bw.WriteString(fileMagic); err != nil {
		w.abort()
		return nil, fmt.Errorf("segment: header: %w", err)
	}
	w.off = int64(len(fileMagic))
	return w, nil
}

// writeFrame appends one length-prefixed checksummed frame and returns
// its file offset.
func (w *writer) writeFrame(payload []byte) (int64, error) {
	if len(payload) > maxFrameLen {
		return 0, fmt.Errorf("segment: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [frameHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	off := w.off
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return 0, err
	}
	w.off += int64(frameHdrLen + len(payload))
	return off, nil
}

// writeLineage appends one lineage frame: the records of key's cut, in
// recording order.
func (w *writer) writeLineage(key element.FactKey, records []*element.Fact) error {
	b := w.scr[:0]
	b = append(b, kindLineage)
	b = appendString(b, key.Entity)
	b = appendString(b, key.Attribute)
	b = binary.AppendUvarint(b, uint64(len(records)))
	for _, f := range records {
		val, err := f.Value.MarshalBinary()
		if err != nil {
			return fmt.Errorf("segment: %s: %w", key, err)
		}
		// The four instants are fixed-width: a cold start decodes tens
		// of thousands of records, and four unconditional 8-byte loads
		// beat four varint parses by an order of magnitude. The strings
		// stay length-prefixed; an absent source costs one flag bit.
		b = appendInstant(b, f.Validity.Start)
		b = appendInstant(b, f.Validity.End)
		b = appendInstant(b, f.RecordedAt)
		b = appendInstant(b, f.SupersededAt)
		var flags byte
		if f.Derived {
			flags |= recDerived
		}
		if f.Source != "" {
			flags |= recHasSource
		}
		b = append(b, flags)
		if f.Source != "" {
			b = appendString(b, f.Source)
		}
		b = binary.AppendUvarint(b, uint64(len(val)))
		b = append(b, val...)
		w.env.observe(f)
		w.observeValue(f.Value)
	}
	w.scr = b
	off, err := w.writeFrame(b)
	if err != nil {
		return fmt.Errorf("segment: %s: %w", key, err)
	}
	if len(records) == 0 {
		w.tombs++
	}
	w.index[key] = off
	return nil
}

// finish writes the footer frame and trailer, flushes, and fsyncs. The
// file handle stays open for reads; the returned reader serves them.
func (w *writer) finish(cut temporal.Instant) (*reader, error) {
	keys := make([]element.FactKey, 0, len(w.index))
	for k := range w.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Attribute != keys[j].Attribute {
			return keys[i].Attribute < keys[j].Attribute
		}
		return keys[i].Entity < keys[j].Entity
	})
	b := w.scr[:0]
	b = append(b, kindFooter)
	b = binary.AppendVarint(b, int64(cut))
	b = binary.AppendVarint(b, int64(w.env.minValid))
	b = binary.AppendVarint(b, int64(w.env.maxValid))
	b = binary.AppendVarint(b, int64(w.env.minTx))
	b = binary.AppendVarint(b, int64(w.env.maxTx))
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = appendString(b, k.Entity)
		b = appendString(b, k.Attribute)
		b = binary.AppendUvarint(b, uint64(w.index[k]))
	}
	// Compaction metadata rides after the index as optional trailing
	// fields: segments written before levels existed simply end here and
	// decode as level 0 with no tombstones.
	b = binary.AppendUvarint(b, uint64(w.level))
	b = binary.AppendUvarint(b, uint64(w.tombs))
	// The numeric value envelope is a second optional tail: segments
	// written before it existed decode as vNumeric=false — never pruned
	// by value bounds, always correct.
	vn := uint64(0)
	if w.vNumeric {
		vn = 1
	}
	b = binary.AppendUvarint(b, vn)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(w.vMin))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(w.vMax))
	w.scr = b
	footerOff, err := w.writeFrame(b)
	if err != nil {
		w.abort()
		return nil, fmt.Errorf("segment: footer: %w", err)
	}
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint64(tr[0:], uint64(footerOff))
	copy(tr[8:], trailerMagic)
	if _, err := w.bw.Write(tr[:]); err != nil {
		w.abort()
		return nil, fmt.Errorf("segment: trailer: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		w.abort()
		return nil, fmt.Errorf("segment: flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.abort()
		return nil, fmt.Errorf("segment: sync: %w", err)
	}
	r := &reader{
		f: w.f, fs: w.fs, path: w.path, size: w.off + trailerLen,
		cut: cut, env: w.env, index: w.index,
		level: w.level, tombs: w.tombs,
		vMin: w.vMin, vMax: w.vMax, vNumeric: w.vNumeric,
	}
	r.live.Store(int64(len(w.index)))
	return r, nil
}

// abort discards a partially written segment.
func (w *writer) abort() {
	w.f.Close()
	w.fs.Remove(w.path)
}

// reader is one open segment: its footer index in memory, lineage frames
// read on demand with pread (ReadAt), so concurrent point reads never
// seek-contend.
type reader struct {
	f    vfs.File
	fs   vfs.FS
	path string
	// size bounds every frame read: the length prefix sits outside the
	// frame checksum, so without the bound a bit-rotted prefix would
	// drive an arbitrary allocation before the read fails.
	size  int64
	cut   temporal.Instant
	env   envelope
	index map[element.FactKey]int64
	// level is the segment's compaction level (0 = flush output); tombs
	// its tombstone-frame count. Both come from the footer.
	level int
	tombs int
	// vMin/vMax/vNumeric are the segment's numeric value envelope from
	// the footer (see writer.observeValue): when vNumeric, every record
	// value in the segment lies in [vMin, vMax], so a scan with disjoint
	// value bounds prunes every frame without a pread.
	vMin, vMax float64
	vNumeric   bool
	// live counts the keys whose NEWEST durable frame is in this segment
	// — the catalog's per-segment accounting, maintained O(dirty) per
	// flush: each flush decrements the previous owner of every key it
	// rewrites. len(index) - live + tombs is the reclaimable garbage
	// compaction victim selection scores by.
	live atomic.Int64
}

// openSegment opens and validates a segment file: trailer, footer frame
// checksum, index. Lineage frames are validated lazily on first read.
func openSegment(fsys vfs.FS, path string) (*reader, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segment: open: %w", err)
	}
	r, err := loadSegment(fsys, f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// loadSegment parses the trailer and footer of an open segment file.
func loadSegment(fsys vfs.FS, f vfs.File, path string) (*reader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("segment: stat %s: %w", path, err)
	}
	size := st.Size()
	if size < int64(len(fileMagic))+trailerLen {
		return nil, fmt.Errorf("segment: %s: too short (%d bytes)", path, size)
	}
	var magic [4]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil || string(magic[:]) != fileMagic {
		return nil, fmt.Errorf("segment: %s: bad header", path)
	}
	var tr [trailerLen]byte
	if _, err := f.ReadAt(tr[:], size-trailerLen); err != nil {
		return nil, fmt.Errorf("segment: %s: trailer: %w", path, err)
	}
	if string(tr[8:]) != trailerMagic {
		return nil, fmt.Errorf("segment: %s: bad trailer", path)
	}
	footerOff := int64(binary.LittleEndian.Uint64(tr[0:]))
	payload, err := readFrame(f, footerOff, size)
	if err != nil {
		return nil, fmt.Errorf("segment: %s: footer: %w", path, err)
	}
	c := &cursor{b: payload}
	if c.u8() != kindFooter {
		return nil, fmt.Errorf("segment: %s: footer has wrong frame kind", path)
	}
	r := &reader{f: f, fs: fsys, path: path, size: size, cut: temporal.Instant(c.varint())}
	r.env.minValid = temporal.Instant(c.varint())
	r.env.maxValid = temporal.Instant(c.varint())
	r.env.minTx = temporal.Instant(c.varint())
	r.env.maxTx = temporal.Instant(c.varint())
	n := int(c.uvarint())
	if c.err != nil || n < 0 {
		return nil, fmt.Errorf("segment: %s: corrupt footer", path)
	}
	r.index = make(map[element.FactKey]int64, n)
	for i := 0; i < n; i++ {
		key := element.FactKey{Entity: c.str(), Attribute: c.str()}
		off := int64(c.uvarint())
		if c.err != nil {
			return nil, fmt.Errorf("segment: %s: corrupt footer entry %d", path, i)
		}
		r.index[key] = off
	}
	// Optional trailing compaction metadata (see writer.finish): absent
	// in segments written before levels existed.
	if c.err == nil && len(c.b) > 0 {
		r.level = int(c.uvarint())
		r.tombs = int(c.uvarint())
		if c.err != nil {
			return nil, fmt.Errorf("segment: %s: corrupt footer metadata", path)
		}
	}
	// Optional trailing value envelope: absent in older segments, which
	// decode as vNumeric=false (never value-pruned).
	if c.err == nil && len(c.b) > 0 {
		vn := c.uvarint()
		vb, ok := c.take(16)
		if c.err != nil || !ok {
			return nil, fmt.Errorf("segment: %s: corrupt footer value envelope", path)
		}
		r.vNumeric = vn == 1
		r.vMin = math.Float64frombits(binary.LittleEndian.Uint64(vb))
		r.vMax = math.Float64frombits(binary.LittleEndian.Uint64(vb[8:]))
	}
	return r, nil
}

// garbage scores the segment for compaction victim selection: dead
// frames (a newer segment owns the key) plus live tombstones, as a
// fraction of all frames.
func (r *reader) garbage() float64 {
	n := len(r.index)
	if n == 0 {
		return 0
	}
	g := n - int(r.live.Load()) + r.tombs
	if g > n {
		g = n
	}
	return float64(g) / float64(n)
}

// readLineage preads and decodes the lineage frame at off — the
// fallthrough point-read path.
func (r *reader) readLineage(off int64) (element.FactKey, []*element.Fact, error) {
	payload, err := readFrame(r.f, off, r.size)
	if err != nil {
		return element.FactKey{}, nil, fmt.Errorf("segment: %s @%d: %w", r.path, off, err)
	}
	return r.decodeLineage(payload, off)
}

// image reads the whole segment file into memory — the bulk recovery
// path: decoding every frame from one sequential read beats a pread
// pair per lineage by orders of magnitude in syscalls.
func (r *reader) image() ([]byte, error) {
	img, err := r.fs.ReadFile(r.path)
	if err != nil {
		return nil, fmt.Errorf("segment: %s: image: %w", r.path, err)
	}
	return img, nil
}

// readLineageImage decodes (with checksum verification) the lineage
// frame at off from a full-file image.
func (r *reader) readLineageImage(img []byte, off int64) (element.FactKey, []*element.Fact, error) {
	if off < 0 || off+frameHdrLen > int64(len(img)) {
		return element.FactKey{}, nil, fmt.Errorf("segment: %s @%d: frame out of bounds", r.path, off)
	}
	n := int64(binary.LittleEndian.Uint32(img[off:]))
	want := binary.LittleEndian.Uint32(img[off+4:])
	if n > maxFrameLen || off+frameHdrLen+n > int64(len(img)) {
		return element.FactKey{}, nil, fmt.Errorf("segment: %s @%d: frame length %d out of bounds", r.path, off, n)
	}
	payload := img[off+frameHdrLen : off+frameHdrLen+n]
	if got := crc32.Checksum(payload, crcTable); got != want {
		return element.FactKey{}, nil, fmt.Errorf("segment: %s @%d: frame checksum mismatch", r.path, off)
	}
	return r.decodeLineage(payload, off)
}

// decodeLineage parses a checksum-verified lineage frame payload. The
// frame's facts are carved from one batch allocation: a cold start
// decoding tens of thousands of records pays one allocation per
// lineage, not per record.
func (r *reader) decodeLineage(payload []byte, off int64) (element.FactKey, []*element.Fact, error) {
	c := &cursor{b: payload}
	if c.u8() != kindLineage {
		return element.FactKey{}, nil, fmt.Errorf("segment: %s @%d: wrong frame kind", r.path, off)
	}
	key := element.FactKey{Entity: c.str(), Attribute: c.str()}
	n := int(c.uvarint())
	if c.err != nil || n < 0 || n > len(payload) {
		return element.FactKey{}, nil, fmt.Errorf("segment: %s @%d: corrupt frame", r.path, off)
	}
	facts := make([]element.Fact, n)
	records := make([]*element.Fact, n)
	for i := 0; i < n; i++ {
		ins, ok := c.take(4*8 + 1)
		if !ok {
			return element.FactKey{}, nil, fmt.Errorf("segment: %s @%d: corrupt record %d", r.path, off, i)
		}
		f := &facts[i]
		f.Entity, f.Attribute = key.Entity, key.Attribute
		f.Validity = temporal.NewInterval(
			temporal.Instant(binary.LittleEndian.Uint64(ins)),
			temporal.Instant(binary.LittleEndian.Uint64(ins[8:])))
		f.RecordedAt = temporal.Instant(binary.LittleEndian.Uint64(ins[16:]))
		f.SupersededAt = temporal.Instant(binary.LittleEndian.Uint64(ins[24:]))
		flags := ins[32]
		f.Derived = flags&recDerived != 0
		if flags&recHasSource != 0 {
			f.Source = c.str()
		}
		val := c.bytes(int(c.uvarint()))
		if c.err != nil {
			return element.FactKey{}, nil, fmt.Errorf("segment: %s @%d: corrupt record %d", r.path, off, i)
		}
		if err := f.Value.UnmarshalBinary(val); err != nil {
			return element.FactKey{}, nil, fmt.Errorf("segment: %s @%d: record %d: %w", r.path, off, i, err)
		}
		records[i] = f
	}
	return key, records, nil
}

// readFrame preads one frame at off and verifies its checksum. size (the
// file size) bounds the read: the length prefix is outside the checksum,
// so an unbounded read would let a bit-rotted prefix drive an arbitrary
// allocation.
func readFrame(f io.ReaderAt, off, size int64) ([]byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, fmt.Errorf("frame header: %w", err)
	}
	n := int64(binary.LittleEndian.Uint32(hdr[0:]))
	want := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxFrameLen || off+frameHdrLen+n > size {
		return nil, fmt.Errorf("frame length %d out of bounds", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, off+frameHdrLen, n), payload); err != nil {
		return nil, fmt.Errorf("frame payload: %w", err)
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("frame checksum mismatch (got %08x want %08x)", got, want)
	}
	return payload, nil
}

// appendString appends a uvarint length prefix plus the bytes.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendInstant appends a fixed-width little-endian instant.
func appendInstant(b []byte, t temporal.Instant) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(t))
}

// cursor decodes the primitives of a frame payload, latching the first
// error so call sites check once per frame.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) u8() byte {
	if c.err != nil || len(c.b) < 1 {
		c.fail()
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail()
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *cursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b)
	if n <= 0 {
		c.fail()
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil || n < 0 || len(c.b) < n {
		c.fail()
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

// take returns the next n bytes without the error-latch bookkeeping of
// bytes — the fixed-width fast path of the record decoder.
func (c *cursor) take(n int) ([]byte, bool) {
	if c.err != nil || len(c.b) < n {
		c.fail()
		return nil, false
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v, true
}

func (c *cursor) str() string { return string(c.bytes(int(c.uvarint()))) }

func (c *cursor) fail() {
	if c.err == nil {
		c.err = errors.New("truncated frame payload")
	}
}
