// Shard layout of the state repository. The store hash-partitions its
// lineages into a power-of-two array of shards, each owning its mutex,
// lineage map, attribute index, and occupancy counters, so mutations and
// point reads of unrelated lineages never contend on a lock. The shard of
// a lineage is fixed by an FNV-1a hash of its `entity#attribute` key, the
// same key that names the lineage everywhere else.
//
// Locking protocol:
//
//   - Point operations (Find, Put, Delete, History, ValiditySet, and the
//     positional wrappers) lock exactly one shard.
//   - Cross-shard reads that must observe one consistent cut (List, Scan,
//     Stats, WriteSnapshot) read-lock every shard in index order, gather,
//     then release. Index-ordered acquisition makes the all-shard lock
//     compose safely with itself and with single-shard locking: no path
//     acquires a lower-indexed shard while holding a higher-indexed one.
//   - Maintenance sweeps (CompactBefore, DropDerived) walk shards one at
//     a time under that shard's write lock; they need per-lineage
//     atomicity only, so they avoid a stop-the-world pause.
//
// The transaction clock and the WAL are intentionally not sharded: the
// clock is a single atomic high-water mark (see txclock.go) and the log
// serializes appends through its single-appender channel (see log.go), so
// replay order — and therefore recovery — stays deterministic.
package state

import (
	"runtime"
	"sync"

	"repro/internal/element"
	"repro/internal/temporal"
)

// shard owns one partition of the store's lineages.
type shard struct {
	mu     sync.RWMutex
	byKey  map[element.FactKey]*lineage
	byAttr map[string]map[string]*lineage // attribute → entity → lineage
	// versions counts believed (live) versions, records all records
	// including superseded ones; both are guarded by mu and summed across
	// shards by Stats.
	versions int
	records  int
}

// lineage returns the shard's lineage for key, creating it when create is
// set. Callers hold the shard's write lock (or its read lock when create
// is false).
func (sh *shard) lineage(key element.FactKey, create bool) *lineage {
	l := sh.byKey[key]
	if l == nil && create {
		l = &lineage{key: key, txOrdered: true}
		sh.byKey[key] = l
		ents := sh.byAttr[key.Attribute]
		if ents == nil {
			ents = make(map[string]*lineage)
			sh.byAttr[key.Attribute] = ents
		}
		ents[key.Entity] = l
	}
	return l
}

// appendRecord appends to the lineage's record history, keeping the
// shard's counters and the RecordedAt-ordering flag current.
func (sh *shard) appendRecord(l *lineage, f *element.Fact) {
	if n := len(l.records); n > 0 && f.RecordedAt < l.records[n-1].RecordedAt {
		l.txOrdered = false
	}
	l.records = append(l.records, f)
	sh.records++
}

// reRecord inserts a trimmed replacement for a superseded version: same
// value and provenance, validity iv, recorded at tx.
func (sh *shard) reRecord(l *lineage, v *element.Fact, iv temporal.Interval, tx temporal.Instant) *element.Fact {
	c := v.Clone()
	c.Validity = iv
	c.RecordedAt = tx
	c.SupersededAt = temporal.Forever
	sh.appendRecord(l, c)
	l.insertLive(c)
	sh.versions++
	return c
}

// dropLineage removes an emptied lineage from the shard's indexes.
func (sh *shard) dropLineage(key element.FactKey) {
	delete(sh.byKey, key)
	if ents := sh.byAttr[key.Attribute]; ents != nil {
		delete(ents, key.Entity)
		if len(ents) == 0 {
			delete(sh.byAttr, key.Attribute)
		}
	}
}

// FNV-1a parameters (64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// shardIndex hashes the lineage key `entity#attribute` with FNV-1a and
// maps it onto the shard array. Hashing the two strings with the '#'
// separator inline avoids allocating the joined key on every operation.
func shardIndex(entity, attr string, mask uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(entity); i++ {
		h ^= uint64(entity[i])
		h *= fnvPrime64
	}
	h ^= '#'
	h *= fnvPrime64
	for i := 0; i < len(attr); i++ {
		h ^= uint64(attr[i])
		h *= fnvPrime64
	}
	return h & mask
}

// shardFor returns the shard owning the (entity, attribute) lineage.
func (s *Store) shardFor(entity, attr string) *shard {
	return s.shards[shardIndex(entity, attr, s.shardMask)]
}

// HashString is the store's FNV-1a hash over one string, exported so
// upstream partitioners (the engine's ingestion routing) can align their
// key distribution with the shard function without re-deriving it.
func HashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// defaultShardCount scales the shard array with the machine: the next
// power of two at or above 4×GOMAXPROCS, floored at 8 so small machines
// still spread independent lineages, capped at 256 to bound the cost of
// cross-shard scans.
func defaultShardCount() int {
	n := 4 * runtime.GOMAXPROCS(0)
	switch {
	case n < 8:
		n = 8
	case n > 256:
		n = 256
	}
	return nextPowerOfTwo(n)
}

// nextPowerOfTwo rounds n up to the nearest power of two (minimum 1).
func nextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// rlockAll / runlockAll acquire and release every shard's read lock in
// index order, giving cross-shard readers one consistent cut.
func (s *Store) rlockAll() {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
}

func (s *Store) runlockAll() {
	for _, sh := range s.shards {
		sh.mu.RUnlock()
	}
}
