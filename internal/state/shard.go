// Shard layout of the state repository. The store hash-partitions its
// lineages into a power-of-two array of shards; the shard of a lineage is
// fixed by an FNV-1a hash of its `entity#attribute` key, the same key
// that names the lineage everywhere else.
//
// Since the snapshot-epoch refactor the shard lock serializes WRITERS
// only. Every lineage publishes an immutable head (see head in store.go)
// through an atomic pointer, and each shard publishes an immutable
// lineage directory (pubIndex) the same way, so the read side never
// takes a shard lock for the data itself.
//
// Locking protocol:
//
//   - Mutations (apply, PutBatch, compaction sweeps, DropDerived,
//     loadRecord) take the owning shard's write lock: the lock orders
//     writers of the same shard; readers are ordered by the atomic head
//     publication instead.
//   - Point reads (Find/FindSpec/FindValue, History, ValiditySet, and
//     the positional wrappers) take the shard's read lock ONLY for the
//     byKey map lookup — an O(1) critical section — then release it and
//     walk the published head lock-free. A writer therefore never waits
//     on a reader for longer than one map probe.
//   - Cross-shard reads (List, Scan, Stats, WriteSnapshot, Snapshot
//     handles) acquire NO shard locks at all: they pin a transaction-time
//     instant from the clock, load each shard's published directory and
//     each lineage's published head, and filter by belief visibility at
//     the pin. See "Snapshot epochs" in DESIGN.md for the protocol and
//     its memory model. ListLockAll retains the pre-epoch all-shard
//     read-lock gather purely as a benchmark baseline.
//   - Eviction (EvictToBudget, evict.go) removes fully-durable lineages
//     under the shard's write lock, marking the key in the shard's
//     evicted set and republishing the directory before releasing the
//     lock, so writers and cold readers always see a consistent
//     (byKey, evicted, pub) triple. Cold reads for non-resident keys
//     take no shard locks: they fall through to the store's ColdSource
//     after the ordinary byKey probe misses. A write to an evicted key
//     faults the full record history back in (store.faultIn) under the
//     same write lock its mutation already holds.
//
// The transaction clock and the WAL are intentionally not sharded: the
// clock is a single atomic high-water mark (see txclock.go) and the log
// serializes appends through its single-appender channel (see log.go), so
// replay order — and therefore recovery — stays deterministic.

package state

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/element"
)

// shard owns one partition of the store's lineages.
type shard struct {
	// mu serializes mutators of this shard and guards byKey. Readers use
	// it only for the O(1) byKey probe of point reads; the scan paths
	// never take it.
	mu    sync.RWMutex
	byKey map[element.FactKey]*lineage

	// evicted marks keys the residency budget removed from byKey whose
	// record history lives only in durable frames. The write path must
	// fault such a key back in before mutating it (store.faultIn); read
	// paths ignore the set and fall through to the ColdSource on a byKey
	// miss. Guarded by mu; nil until the first eviction.
	evicted map[element.FactKey]bool

	// pub is the published, immutable lineage directory for lock-free
	// cross-shard readers. Swapped copy-on-write under mu whenever the
	// shard's key set changes (new lineage, compaction drop) — never on
	// ordinary writes, which only swap the touched lineage's head.
	pub atomic.Pointer[pubIndex]

	// versions counts believed (live) versions, records all records
	// including superseded ones. Atomics so Stats sums them without the
	// historical all-shard lock.
	versions atomic.Int64
	records  atomic.Int64

	// growth counts records appended since this shard's last compaction
	// sweep; the per-shard compaction scheduler (Store.maybeCompact)
	// triggers a sweep of just this shard once it crosses the policy
	// threshold.
	growth atomic.Int64

	// bytes estimates the resident size of this shard's records (see
	// approxFactBytes), maintained at every site that adds or removes
	// records. The residency budget (EvictToBudget) compares the summed
	// estimate against its configured byte target.
	bytes atomic.Int64
}

// pubIndex is a shard's published lineage directory: attribute → lineages
// (unordered; cross-shard gathers sort their output) plus the total count.
// A pubIndex and the slices it holds are immutable once published —
// inserts append beyond every published length and swap a fresh index.
type pubIndex struct {
	byAttr map[string][]*lineage
	n      int
}

// emptyPub is the directory of a freshly created shard.
var emptyPub = &pubIndex{byAttr: map[string][]*lineage{}}

// lineage returns the shard's lineage for key, creating (and publishing)
// it when create is set. Callers hold the shard's write lock; callers
// holding only the read lock must pass create=false.
func (sh *shard) lineage(key element.FactKey, create bool) *lineage {
	l := sh.byKey[key]
	if l == nil && create {
		l = &lineage{key: key}
		l.head.Store(emptyHead)
		sh.byKey[key] = l
		sh.publishInsert(l)
	}
	return l
}

// get probes the shard's key map under the read lock — the only lock a
// point read takes, released before the head is walked.
func (sh *shard) get(key element.FactKey) *lineage {
	sh.mu.RLock()
	l := sh.byKey[key]
	sh.mu.RUnlock()
	return l
}

// publishInsert adds a new lineage to the published directory: the outer
// map is copied (O(#attributes)), the touched attribute's slice is
// extended by shared-backing append (readers of older indexes only ever
// touch their own published length). Callers hold sh.mu.
func (sh *shard) publishInsert(l *lineage) {
	old := sh.pub.Load()
	nm := make(map[string][]*lineage, len(old.byAttr)+1)
	for a, ls := range old.byAttr {
		nm[a] = ls
	}
	nm[l.key.Attribute] = append(old.byAttr[l.key.Attribute], l)
	sh.pub.Store(&pubIndex{byAttr: nm, n: old.n + 1})
}

// publishRebuild re-derives the published directory from byKey after
// lineage removals (compaction, DropDerived). Callers hold sh.mu.
func (sh *shard) publishRebuild() {
	nm := make(map[string][]*lineage, len(sh.byKey))
	for key, l := range sh.byKey {
		nm[key.Attribute] = append(nm[key.Attribute], l)
	}
	sh.pub.Store(&pubIndex{byAttr: nm, n: len(sh.byKey)})
}

// FNV-1a parameters (64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// shardIndex hashes the lineage key `entity#attribute` with FNV-1a and
// maps it onto the shard array. Hashing the two strings with the '#'
// separator inline avoids allocating the joined key on every operation.
func shardIndex(entity, attr string, mask uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(entity); i++ {
		h ^= uint64(entity[i])
		h *= fnvPrime64
	}
	h ^= '#'
	h *= fnvPrime64
	for i := 0; i < len(attr); i++ {
		h ^= uint64(attr[i])
		h *= fnvPrime64
	}
	return h & mask
}

// shardFor returns the shard owning the (entity, attribute) lineage.
func (s *Store) shardFor(entity, attr string) *shard {
	return s.shards[shardIndex(entity, attr, s.shardMask)]
}

// ShardIndex reports which shard owns the (entity, attribute) lineage.
// Exported so bulk loaders (the segment backend's parallel cold start)
// can partition LoadLineage calls by shard: two keys with different
// ShardIndex values never contend on a shard lock, so a disjoint
// partition loads lock-free in parallel.
func (s *Store) ShardIndex(entity, attr string) int {
	return int(shardIndex(entity, attr, s.shardMask))
}

// HashString is the store's FNV-1a hash over one string, exported so
// upstream partitioners (the engine's ingestion routing) can align their
// key distribution with the shard function without re-deriving it.
func HashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// defaultShardCount scales the shard array with the machine: the next
// power of two at or above 4×GOMAXPROCS, floored at 8 so small machines
// still spread independent lineages, capped at 256 to bound the cost of
// cross-shard scans.
func defaultShardCount() int {
	n := 4 * runtime.GOMAXPROCS(0)
	switch {
	case n < 8:
		n = 8
	case n > 256:
		n = 256
	}
	return nextPowerOfTwo(n)
}

// nextPowerOfTwo rounds n up to the nearest power of two (minimum 1).
func nextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// rlockAll / runlockAll acquire and release every shard's read lock in
// index order. Since the snapshot-epoch refactor no production read path
// uses them; they survive for ListLockAll, the lock-all contention
// baseline the scan-under-ingest benchmark gate compares against.
func (s *Store) rlockAll() {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
}

func (s *Store) runlockAll() {
	for _, sh := range s.shards {
		sh.mu.RUnlock()
	}
}
