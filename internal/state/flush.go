// Durability seam of the store: the flush-side gather and the
// recovery-side bulk loader the segment backend (internal/state/segment)
// builds on.
//
// A durability flush is a pinned cut, exactly like WriteSnapshot: the
// flusher pins a transaction-time instant and serializes, per lineage,
// the records of the cut believed at that instant (recordsAt — records
// recorded after the pin excluded, belief intervals closed after the pin
// restored to open). FlushCut adds the one thing WriteSnapshot lacks:
// incrementality. Each lineage head tracks the highest transaction time
// that touched it (head.maxTx, which compaction sweeps also bump), so a
// flusher that remembers its last cut revisits only the lineages written
// — or swept — since.
//
// Recovery inverts the gather: LoadLineage installs one lineage's full
// record set in a single head publication, far cheaper than replaying
// the mutations that produced it.

package state

import (
	"fmt"
	"sort"

	"repro/internal/element"
	"repro/internal/temporal"
)

// FlushCut visits every lineage touched after `since`, passing clones of
// the records of the cut believed at tt — the per-lineage WriteSnapshot
// cut (records recorded after tt excluded, supersessions after tt
// restored to open). Lineages are visited in deterministic order: shards
// in index order, keys in (attribute, entity) order within a shard. A
// lineage whose cut at tt is empty (created entirely after the pin) is
// skipped; its maxTx keeps it dirty for the next flush. The gather is
// lock-free, like every cross-shard read: it walks the published
// directories and heads only.
//
// `since` chains flushes: pass MinInstant for a full pass, or the pin of
// the previous successful flush to gather only what changed. The dirty
// test is head.maxTx > since, which covers writes, retroactive
// corrections, and compaction sweeps (sweeps bump maxTx so a swept
// lineage is re-flushed without its dropped records).
//
// Callers pin tt the way snapshot handles do: at a quiesced boundary
// (the engine's watermark after AdvanceClock) or behind the publication
// barrier (Store.Snapshot().At()). Writes with explicit transaction
// times at or before an already-flushed cut forfeit durability exactly
// as they forfeit scan isolation (see snapshot.go).
//
// Each visit also carries the lineage's last WRITE transaction time
// (sweep bumps excluded): for an empty visit the flusher compares it
// against the key's existing frame cut to decide between a tombstone
// (the frame predates writes — stale) and keeping the frame (pure
// compaction — the frame is truthful deeper history).
//
// It returns the number of lineages visited.
func (s *Store) FlushCut(tt, since temporal.Instant, visit func(key element.FactKey, records []*element.Fact, lastWrite temporal.Instant)) int {
	n := 0
	var lins []*lineage
	for _, sh := range s.shards {
		lins = lins[:0]
		for _, ls := range sh.pub.Load().byAttr {
			for _, l := range ls {
				if l.head.Load().maxTx > since {
					lins = append(lins, l)
				}
			}
		}
		sort.Slice(lins, func(i, j int) bool {
			if lins[i].key.Attribute != lins[j].key.Attribute {
				return lins[i].key.Attribute < lins[j].key.Attribute
			}
			return lins[i].key.Entity < lins[j].key.Entity
		})
		for _, l := range lins {
			h := l.head.Load()
			records := recordsAt(h, tt, nil)
			if len(records) == 0 {
				if len(h.records) > 0 {
					// Created entirely after the pin: nothing to persist
					// yet; maxTx keeps it dirty for the next flush.
					continue
				}
				// An emptied husk (see SetRetainSwept): emit the key with
				// no records; the flusher tombstones or retains the
				// existing frame based on lastWrite.
			}
			visit(l.key, records, h.lastWrite)
			n++
		}
	}
	return n
}

// SetRetainSwept makes compaction sweeps that empty a lineage keep it as
// an empty husk (published empty head, maxTx advanced to the sweep
// instant) instead of deleting it. The segment backend sets this: the
// husk is what lets FlushCut emit a durability tombstone for the key, so
// the key's old segment frame stops answering fall-through reads and
// recovery with data the sweep removed. Pair with DropSweptBefore to
// reclaim husks once their tombstones are durable.
func (s *Store) SetRetainSwept(retain bool) {
	s.retainSwept.Store(retain)
}

// DropSweptBefore removes empty husk lineages whose last activity
// (maxTx) is at or before cut — those whose tombstones a flush at cut
// has made durable — and returns the dropped keys. The segment backend
// calls it after each committed flush and records the keys as
// durable-only, so a later recovery keeps them out of the RAM working
// set instead of re-loading frames the sweep already evicted.
func (s *Store) DropSweptBefore(cut temporal.Instant) []element.FactKey {
	var dropped []element.FactKey
	for _, sh := range s.shards {
		sh.mu.Lock()
		changed := false
		for key, l := range sh.byKey {
			h := l.head.Load()
			if len(h.records) == 0 && h.maxTx <= cut {
				delete(sh.byKey, key)
				changed = true
				dropped = append(dropped, key)
			}
		}
		if changed {
			sh.publishRebuild()
		}
		sh.mu.Unlock()
	}
	return dropped
}

// SweptBefore lists the husk keys DropSweptBefore(cut) would drop,
// without dropping them. The segment backend takes the preview BEFORE
// its manifest commit — the manifest must record the keys as
// durable-only in the same atomic rename that makes the flush durable,
// or a restart between the commit and the drop would reload them
// resident.
func (s *Store) SweptBefore(cut temporal.Instant) []element.FactKey {
	var keys []element.FactKey
	for _, sh := range s.shards {
		sh.mu.Lock()
		for key, l := range sh.byKey {
			h := l.head.Load()
			if len(h.records) == 0 && h.maxTx <= cut {
				keys = append(keys, key)
			}
		}
		sh.mu.Unlock()
	}
	return keys
}

// LoadLineage installs one lineage's full record set — as serialized by a
// FlushCut visit — in a single head publication. It is the bulk recovery
// path: where log replay re-runs one mutation per record (validation,
// supersession, a successor head each), LoadLineage builds the published
// head once, so restoring a segment costs O(records) with no per-record
// head churn.
//
// Records must share one key and arrive in recording order (the order
// FlushCut emits). Believed records (open belief interval) must have
// pairwise disjoint validity. The lineage must not already exist: segments
// load into a fresh store before the WAL tail replays on top.
func (s *Store) LoadLineage(records []*element.Fact) error {
	if len(records) == 0 {
		return nil
	}
	key := records[0].Key()
	sh := s.shardFor(key.Entity, key.Attribute)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.byKey[key] != nil {
		return fmt.Errorf("state: load lineage %s: already present", key)
	}
	for i, f := range records {
		if f.Key() != key {
			return fmt.Errorf("state: load lineage %s: record %d has key %s", key, i, f.Key())
		}
	}
	nh, err := buildHead(records, true)
	if err != nil {
		return fmt.Errorf("state: load lineage %s: %w", key, err)
	}

	l := &lineage{key: key}
	l.head.Store(nh)
	sh.byKey[key] = l
	sh.publishInsert(l)
	sh.records.Add(int64(len(records)))
	sh.versions.Add(int64(nh.nLive()))
	sh.bytes.Add(headBytes(nh))
	s.clock.observe(nh.maxTx)
	return nil
}

// PickRecord resolves a point read over a detached record set — records
// serialized by FlushCut and read back from a segment frame — with the
// same selection semantics as Store.Find: by default the open version of
// the set's current belief, AsOfValidTime selecting by valid time,
// AsOfTransactionTime by belief. The segment backend uses it to fall
// through to frames for lineages no longer resident in RAM.
func PickRecord(records []*element.Fact, opts ...ReadOpt) (*element.Fact, bool) {
	h := detachedHead(records)
	cfg := newReadCfg(opts)
	if f := h.pick(cfg); f != nil {
		return cloneAt(f, cfg), true
	}
	return nil, false
}

// BelievedRecords returns, from a detached record set, the version history
// Store.History would: by default the believed versions in validity order;
// under AsOfTransactionTime the versions believed then; with AllVersions
// every record (combined with AsOfTransactionTime, the audit trail of the
// cut at that instant).
func BelievedRecords(records []*element.Fact, opts ...ReadOpt) []*element.Fact {
	h := detachedHead(records)
	cfg := newReadCfg(opts)
	if cfg.allVersions {
		if cfg.hasTxAt {
			return recordsAt(h, cfg.txAt, nil)
		}
		out := make([]*element.Fact, len(h.records))
		for i, f := range h.records {
			out[i] = f.Clone()
		}
		return out
	}
	src := h.believedAt(cfg.txAt, cfg.hasTxAt)
	out := make([]*element.Fact, 0, len(src))
	for _, f := range src {
		out = append(out, cloneAt(f, cfg))
	}
	return out
}

// detachedHead builds a read-only head over a detached record slice, with
// the same belief-slice shape live lineages publish. Records are assumed
// to be in recording order with disjoint believed validity — the
// invariants FlushCut output satisfies; should believed records overlap
// anyway, the earlier-starting one is dropped from the belief slices
// (reads through the record scan still see every record).
func detachedHead(records []*element.Fact) *head {
	h, _ := buildHead(records, false)
	return h
}

// buildHead assembles a head from a detached record slice: records kept
// in the given (recording) order, belief slices derived from the
// non-superseded records in validity order, maxTx and txOrdered computed.
// With strict set, overlapping believed records are an error; otherwise
// the earlier-starting of an overlapping pair is dropped from the belief
// slices.
func buildHead(records []*element.Fact, strict bool) (*head, error) {
	h := &head{records: records, maxTx: temporal.MinInstant, lastWrite: temporal.MinInstant, txOrdered: true}
	var live []*element.Fact
	liveSorted := true
	for i, f := range records {
		if f.RecordedAt > h.maxTx {
			h.maxTx = f.RecordedAt
		}
		if f.Superseded() {
			if end := f.BeliefEnd(); end > h.maxTx {
				h.maxTx = end
			}
		} else {
			if n := len(live); n > 0 && live[n-1].Validity.Start > f.Validity.Start {
				liveSorted = false
			}
			live = append(live, f)
		}
		if i > 0 && f.RecordedAt < records[i-1].RecordedAt {
			h.txOrdered = false
		}
	}
	// The monotonic hot path emits believed records already in validity
	// order; only retroactive shapes pay the sort.
	if !liveSorted {
		sort.Slice(live, func(i, j int) bool {
			return live[i].Validity.Start < live[j].Validity.Start
		})
	}
	kept := live[:0]
	for i, f := range live {
		if i+1 < len(live) && f.Validity.End > live[i+1].Validity.Start {
			if strict {
				return nil, fmt.Errorf("believed validity %s overlaps %s",
					f.Validity, live[i+1].Validity)
			}
			continue
		}
		kept = append(kept, f)
	}
	live = kept
	if n := len(live); n > 0 && live[n-1].IsCurrent() {
		h.open = live[n-1]
		live = live[:n-1]
	}
	h.closed = live
	// Detached records carry only writes, so the write high-water mark
	// coincides with maxTx here (sweep bumps happen to live heads only).
	h.lastWrite = h.maxTx
	h.recomputeValueEnv()
	return h, nil
}

// ListRecords applies List's per-lineage selection to a detached record
// set: the versions a lineage holding exactly these records would
// contribute to List(opts...) — one selected version by default, every
// matching version under AllVersions/DuringValidTime, clones with pinned
// belief ends restored. The segment backend uses it to extend scans over
// lineages that live only in durable frames.
func ListRecords(records []*element.Fact, opts ...ReadOpt) []*element.Fact {
	return pickInto(detachedHead(records), newReadCfg(opts), nil)
}
