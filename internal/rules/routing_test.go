package rules

import (
	"fmt"
	"testing"

	"repro/internal/element"
	"repro/internal/lang"
	"repro/internal/state"
	"repro/internal/temporal"
)

func routedEl(stream, k string, ts temporal.Instant) *element.Element {
	schema := element.NewSchema(
		element.Field{Name: "k", Kind: element.KindString},
		element.Field{Name: "v", Kind: element.KindInt},
	)
	return element.New(stream, ts, element.NewTuple(schema, element.String(k), element.Int(int64(ts))))
}

const routedSrc = `
RULE ra ON A AS a
THEN REPLACE pa(a.k) = a.v

RULE emitA ON A AS a WHERE a.v > 2
THEN EMIT OutA(k = a.k)

RULE rb ON B AS b WHEN EXISTS pa(b.k)
THEN REPLACE pb(b.k) = b.v

RULE pat ON SEQ(A AS x, B AS y) WITHIN 100ns WHERE x.k = y.k
THEN EMIT Pair(k = x.k)
`

// TestRoutingEquivalence: the stream-routing index fires exactly the
// rules the historical full scan fired, in deployment order.
func TestRoutingEquivalence(t *testing.T) {
	set, err := ParseSet(routedSrc)
	if err != nil {
		t.Fatal(err)
	}
	st := state.NewStore()
	var emits []*element.Element
	feed := []*element.Element{
		routedEl("A", "x", 1),
		routedEl("B", "x", 2), // rb fires (pa exists), pattern completes
		routedEl("C", "x", 3), // no routed rules
		routedEl("A", "y", 4), // emitA fires (v=4>2)
		routedEl("B", "z", 5), // rb gated (no pa(z))
	}
	for _, el := range feed {
		out, err := set.Apply(el, st)
		if err != nil {
			t.Fatal(err)
		}
		emits = append(emits, out...)
	}
	if len(emits) != 2 {
		t.Fatalf("emits: %v", emits)
	}
	if emits[0].Stream != "Pair" || emits[0].Seq != 0 {
		t.Fatalf("first emit: %v", emits[0])
	}
	if emits[1].Stream != "OutA" || emits[1].Seq != 1 {
		t.Fatalf("second emit: %v", emits[1])
	}
	if _, ok := st.Find("x", "pb"); !ok {
		t.Fatal("rb should have fired for x")
	}
	if _, ok := st.Find("z", "pb"); ok {
		t.Fatal("rb should have been gated for z")
	}
	if set.Emitted() != 2 {
		t.Fatalf("emitted counter: %d", set.Emitted())
	}
}

// TestStreamPurity: purity analysis accepts state-free REPLACE/EMIT
// stream rules and rejects state reads, pattern participation, and
// RETRACT/ASSERT actions.
func TestStreamPurity(t *testing.T) {
	set, err := ParseSet(routedSrc + `
RULE rc ON C AS c
THEN RETRACT pa(c.k)

RULE rd ON D AS d
THEN REPLACE pd(d.k) = d.v

RULE re ON E AS e WHERE pa(e.k) = 1
THEN REPLACE pe(e.k) = e.v
`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"A": false, // participates in the SEQ pattern
		"B": false, // rb reads state (WHEN), and pattern participation
		"C": false, // RETRACT is impure
		"D": true,  // pure REPLACE
		"E": false, // WHERE reads state
		"F": true,  // no routed rules at all
	}
	for stream, pure := range want {
		if got := set.StreamPure(stream); got != pure {
			t.Errorf("StreamPure(%s) = %v, want %v", stream, got, pure)
		}
	}
	if !set.HasPatterns() {
		t.Error("HasPatterns should be true")
	}
}

// TestApplyStreamBatchDefer: pure rules evaluated against a batch write
// nothing until the batch is committed, then match write-through state.
func TestApplyStreamBatchDefer(t *testing.T) {
	set, err := ParseSet(`
RULE rd ON D AS d
THEN REPLACE pd(d.k) = d.v

RULE ed ON D AS d WHERE d.v > 1
THEN EMIT OutD(k = d.k)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !set.StreamPure("D") {
		t.Fatal("D should be pure")
	}
	st := state.NewStore()
	var batch []state.BatchPut
	var fired []Fired
	for ts := 1; ts <= 3; ts++ {
		if err := set.ApplyStreamBatch(routedEl("D", "k1", temporal.Instant(ts)), st, &batch, &fired); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := st.Find("k1", "pd"); ok {
		t.Fatal("writes must be deferred")
	}
	if len(batch) != 3 || len(fired) != 2 {
		t.Fatalf("batch %d, fired %d", len(batch), len(fired))
	}
	if err := st.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	f, ok := st.Find("k1", "pd")
	if !ok || f.Validity.Start != 3 {
		t.Fatalf("committed state: %v %v", f, ok)
	}
	// Deferred emissions carry the producing rule's deployment index and
	// no sequence number until the driver seals them.
	base := set.TakeSeq(len(fired))
	for i, fr := range fired {
		if fr.RuleIdx != 1 {
			t.Fatalf("fired[%d] rule idx: %d", i, fr.RuleIdx)
		}
		fr.El.Seq = base + uint64(i)
	}
	if set.Emitted() != 2 {
		t.Fatalf("emitted counter: %d", set.Emitted())
	}
}

// TestWildcardPatternDisablesRouting: a pattern atom with an empty stream
// must observe every element, so routing degrades to the full scan and no
// stream is pure.
func TestWildcardPatternDisablesRouting(t *testing.T) {
	set, err := NewSet(
		&Rule{
			Name:    "wild",
			Trigger: &PatternTrigger{Kind: PatternSeq, Items: []PatternItem{{Stream: "", Alias: "x"}, {Stream: "B", Alias: "y"}}},
			Actions: []Action{&EmitAction{Stream: "Out", Fields: []EmitField{{Name: "n", Expr: mustParseExpr(t, "1")}}}},
		},
		&Rule{
			Name:    "pure",
			Trigger: &StreamTrigger{Stream: "D", Alias: "d"},
			Actions: []Action{&ReplaceAction{Attr: "pd", Entity: mustParseExpr(t, "d.k"), Value: mustParseExpr(t, "d.v")}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if set.StreamPure("D") || set.StreamPure("anything") {
		t.Fatal("wildcard pattern must disable purity everywhere")
	}
	// The wildcard atom sees a C element even though no rule names C.
	st := state.NewStore()
	if _, err := set.Apply(routedEl("C", "x", 1), st); err != nil {
		t.Fatal(err)
	}
	out, err := set.Apply(routedEl("B", "x", 2), st)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Stream != "Out" {
		t.Fatalf("wildcard pattern should complete: %v", out)
	}
}

func mustParseExpr(t *testing.T, src string) lang.Expr {
	t.Helper()
	e, err := lang.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// BenchmarkApplyRouted measures the per-element rule pass with many
// deployed rules: routing keeps cost independent of the rule count for
// non-matching streams.
func BenchmarkApplyRouted(b *testing.B) {
	var src string
	for i := 0; i < 100; i++ {
		src += fmt.Sprintf("RULE r%03d ON S%03d AS x THEN REPLACE p%03d(x.k) = x.v\n", i, i, i)
	}
	set, err := ParseSet(src)
	if err != nil {
		b.Fatal(err)
	}
	st := state.NewStore()
	els := make([]*element.Element, 512)
	for i := range els {
		els[i] = routedEl("S050", fmt.Sprintf("k%03d", i), 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el := els[i%len(els)]
		el.Timestamp = temporal.Instant(i + 1)
		if _, err := set.Apply(el, st); err != nil {
			b.Fatal(err)
		}
	}
}
