package rules

import (
	"testing"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
)

func mkEv(stream string, ts int64, who string) *element.Element {
	e := element.New(stream, temporal.Instant(ts),
		element.NewTuple(entrySchema, element.String(who), element.String("r")))
	e.Seq = uint64(ts)
	return e
}

func TestAllPatternTrigger(t *testing.T) {
	// Both a smoke alarm AND a door sensor within a bound, any order.
	set, err := ParseSet(`
RULE confirm ON ALL(Smoke AS s, Door AS d) WITHIN 100ns
WHERE s.visitor = d.visitor
THEN REPLACE confirmed(s.visitor) = true`)
	if err != nil {
		t.Fatal(err)
	}
	store := state.NewStore()
	for _, el := range []*element.Element{
		mkEv("Door", 10, "zone1"),
		mkEv("Smoke", 20, "zone1"), // Door then Smoke: ALL matches either order
	} {
		if _, err := set.Apply(el, store); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := store.Current("zone1", "confirmed"); !ok {
		t.Fatal("ALL pattern should fire regardless of order")
	}

	// Reverse order too.
	store2 := state.NewStore()
	set2, _ := ParseSet(`
RULE confirm ON ALL(Smoke AS s, Door AS d) WITHIN 100ns
WHERE s.visitor = d.visitor
THEN REPLACE confirmed(s.visitor) = true`)
	for _, el := range []*element.Element{
		mkEv("Smoke", 10, "zone2"), mkEv("Door", 20, "zone2"),
	} {
		if _, err := set2.Apply(el, store2); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := store2.Current("zone2", "confirmed"); !ok {
		t.Fatal("ALL pattern should fire in reverse order")
	}
}

func TestAnyPatternTrigger(t *testing.T) {
	set, err := ParseSet(`
RULE panic ON ANY(Fire AS f, Flood AS f)
THEN REPLACE alarm(f.visitor) = true`)
	if err != nil {
		t.Fatal(err)
	}
	store := state.NewStore()
	if _, err := set.Apply(mkEv("Flood", 10, "b1"), store); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Current("b1", "alarm"); !ok {
		t.Fatal("ANY should fire on either stream")
	}
	if _, err := set.Apply(mkEv("Fire", 20, "b2"), store); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Current("b2", "alarm"); !ok {
		t.Fatal("ANY should fire on the other stream too")
	}
}

func TestNotOutsideSeqRejected(t *testing.T) {
	if _, err := Parse("RULE x ON ALL(A, NOT B) THEN RETRACT p(1)"); err == nil {
		t.Error("NOT in ALL should be rejected")
	}
	if _, err := Parse("RULE x ON ANY(NOT A) THEN RETRACT p(1)"); err == nil {
		t.Error("NOT in ANY should be rejected")
	}
}

func TestAllAnyRoundTrip(t *testing.T) {
	srcs := []string{
		"RULE r ON ALL(A AS a, B AS b) WITHIN 5m WHERE a.k = b.k THEN RETRACT p(a.k)",
		"RULE r ON ANY(A AS x, B AS x) THEN REPLACE p(x.k) = 1",
	}
	for _, src := range srcs {
		r1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := r1.String()
		r2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if r2.String() != printed {
			t.Errorf("unstable: %q vs %q", printed, r2.String())
		}
	}
}

// TestCounterStateRule shows state used as an accumulator: the value
// expression reads the current state being replaced, so rules can
// maintain running counters — no windows involved.
func TestCounterStateRule(t *testing.T) {
	set, err := ParseSet(`
RULE count ON Click AS c
THEN REPLACE clicks(c.visitor) = coalesce(clicks(c.visitor), 0) + 1`)
	if err != nil {
		t.Fatal(err)
	}
	store := state.NewStore()
	for i := int64(1); i <= 5; i++ {
		if _, err := set.Apply(mkEv("Click", i*10, "ann"), store); err != nil {
			t.Fatal(err)
		}
	}
	f, ok := store.Current("ann", "clicks")
	if !ok || f.Value.MustInt() != 5 {
		t.Fatalf("counter: %v %v", f, ok)
	}
	// The counter's whole history is queryable: one version per click.
	if got := len(store.History("ann", "clicks")); got != 5 {
		t.Fatalf("counter history: %d versions", got)
	}
}
