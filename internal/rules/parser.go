package rules

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/temporal"
)

// Parse parses one rule.
func Parse(src string) (*Rule, error) {
	toks, err := lang.Lex(src)
	if err != nil {
		return nil, err
	}
	c := lang.NewCursor(toks)
	r, err := parseRule(c)
	if err != nil {
		return nil, err
	}
	if c.Peek().Kind != lang.TokEOF {
		return nil, fmt.Errorf("rules: unexpected input after rule %q", r.Name)
	}
	return r, nil
}

// ParseAll parses a sequence of rules from one source (e.g. a rule file).
func ParseAll(src string) ([]*Rule, error) {
	toks, err := lang.Lex(src)
	if err != nil {
		return nil, err
	}
	c := lang.NewCursor(toks)
	var out []*Rule
	for c.Peek().Kind != lang.TokEOF {
		r, err := parseRule(c)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("rules: no rules in input")
	}
	return out, nil
}

func parseRule(c *lang.Cursor) (*Rule, error) {
	if err := c.ExpectKeyword("rule"); err != nil {
		return nil, err
	}
	name, err := c.Expect(lang.TokIdent)
	if err != nil {
		return nil, err
	}
	r := &Rule{Name: name.Text}

	if err := c.ExpectKeyword("on"); err != nil {
		return nil, err
	}
	switch {
	case c.AcceptKeyword("seq"):
		r.Trigger, err = parsePatternTrigger(c, PatternSeq)
	case c.AcceptKeyword("all"):
		r.Trigger, err = parsePatternTrigger(c, PatternAll)
	case c.AcceptKeyword("any"):
		r.Trigger, err = parsePatternTrigger(c, PatternAny)
	default:
		r.Trigger, err = parseStreamTrigger(c)
	}
	if err != nil {
		return nil, err
	}

	if c.AcceptKeyword("where") {
		r.Where, err = lang.ParseExprFrom(c)
		if err != nil {
			return nil, err
		}
	}
	if c.AcceptKeyword("when") {
		r.When, err = lang.ParseExprFrom(c)
		if err != nil {
			return nil, err
		}
	}
	if err := c.ExpectKeyword("then"); err != nil {
		return nil, err
	}
	for {
		a, err := parseAction(c)
		if err != nil {
			return nil, err
		}
		r.Actions = append(r.Actions, a)
		if _, ok := c.Accept(lang.TokComma); !ok {
			break
		}
	}
	return r, nil
}

func parseStreamTrigger(c *lang.Cursor) (Trigger, error) {
	stream, err := c.Expect(lang.TokIdent)
	if err != nil {
		return nil, err
	}
	t := &StreamTrigger{Stream: stream.Text, Alias: stream.Text}
	if c.AcceptKeyword("as") {
		alias, err := c.Expect(lang.TokIdent)
		if err != nil {
			return nil, err
		}
		t.Alias = alias.Text
	}
	return t, nil
}

func parsePatternTrigger(c *lang.Cursor, kind PatternKind) (Trigger, error) {
	if _, err := c.Expect(lang.TokLParen); err != nil {
		return nil, err
	}
	t := &PatternTrigger{Kind: kind}
	for {
		var it PatternItem
		if c.AcceptKeyword("not") {
			if kind != PatternSeq {
				return nil, fmt.Errorf("rules: NOT items are only valid in SEQ patterns")
			}
			it.Negated = true
		}
		stream, err := c.Expect(lang.TokIdent)
		if err != nil {
			return nil, err
		}
		it.Stream = stream.Text
		it.Alias = stream.Text
		if c.AcceptKeyword("as") {
			alias, err := c.Expect(lang.TokIdent)
			if err != nil {
				return nil, err
			}
			it.Alias = alias.Text
		}
		t.Items = append(t.Items, it)
		if _, ok := c.Accept(lang.TokComma); !ok {
			break
		}
	}
	if _, err := c.Expect(lang.TokRParen); err != nil {
		return nil, err
	}
	if c.AcceptKeyword("within") {
		d, err := c.Expect(lang.TokDuration)
		if err != nil {
			return nil, err
		}
		t.Within = temporal.Instant(d.Int)
	}
	return t, nil
}

func parseAction(c *lang.Cursor) (Action, error) {
	switch {
	case c.AcceptKeyword("replace"):
		attr, entity, err := parseTarget(c)
		if err != nil {
			return nil, err
		}
		if _, err := c.Expect(lang.TokEq); err != nil {
			return nil, err
		}
		value, err := lang.ParseExprFrom(c)
		if err != nil {
			return nil, err
		}
		return &ReplaceAction{Attr: attr, Entity: entity, Value: value}, nil

	case c.AcceptKeyword("assert"):
		attr, entity, err := parseTarget(c)
		if err != nil {
			return nil, err
		}
		if _, err := c.Expect(lang.TokEq); err != nil {
			return nil, err
		}
		value, err := lang.ParseExprFrom(c)
		if err != nil {
			return nil, err
		}
		a := &AssertAction{Attr: attr, Entity: entity, Value: value}
		if c.AcceptKeyword("from") {
			a.From, err = lang.ParseExprFrom(c)
			if err != nil {
				return nil, err
			}
		}
		if c.AcceptKeyword("until") {
			a.Until, err = lang.ParseExprFrom(c)
			if err != nil {
				return nil, err
			}
		}
		return a, nil

	case c.AcceptKeyword("retract"):
		attr, entity, err := parseTarget(c)
		if err != nil {
			return nil, err
		}
		return &RetractAction{Attr: attr, Entity: entity}, nil

	case c.AcceptKeyword("emit"):
		stream, err := c.Expect(lang.TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := c.Expect(lang.TokLParen); err != nil {
			return nil, err
		}
		a := &EmitAction{Stream: stream.Text}
		for {
			name, err := c.Expect(lang.TokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := c.Expect(lang.TokEq); err != nil {
				return nil, err
			}
			e, err := lang.ParseExprFrom(c)
			if err != nil {
				return nil, err
			}
			a.Fields = append(a.Fields, EmitField{Name: name.Text, Expr: e})
			if _, ok := c.Accept(lang.TokComma); !ok {
				break
			}
		}
		if _, err := c.Expect(lang.TokRParen); err != nil {
			return nil, err
		}
		return a, nil
	}
	return nil, fmt.Errorf("rules: expected REPLACE, ASSERT, RETRACT, or EMIT, found %q", c.Peek().Text)
}

// parseTarget parses attr(entityExpr).
func parseTarget(c *lang.Cursor) (string, lang.Expr, error) {
	attr, err := c.Expect(lang.TokIdent)
	if err != nil {
		return "", nil, err
	}
	if _, err := c.Expect(lang.TokLParen); err != nil {
		return "", nil, err
	}
	entity, err := lang.ParseExprFrom(c)
	if err != nil {
		return "", nil, err
	}
	if _, err := c.Expect(lang.TokRParen); err != nil {
		return "", nil, err
	}
	return attr.Text, entity, nil
}
