package rules

import (
	"errors"
	"fmt"

	"repro/internal/cep"
	"repro/internal/element"
	"repro/internal/lang"
	"repro/internal/state"
	"repro/internal/temporal"
)

// Set is a deployed collection of compiled state management rules. The
// engine feeds it every input element in timestamp order; the Set updates
// the state repository and returns any derived (EMIT) elements.
type Set struct {
	rules []*compiledRule
	// emitted counts derived elements, for diagnostics.
	emitted uint64
}

type compiledRule struct {
	rule    *Rule
	matcher *cep.Matcher // nil for stream triggers
	trigger *StreamTrigger
}

// NewSet compiles the given rules. Pattern triggers are compiled to CEP
// matchers; compilation errors name the offending rule.
func NewSet(rs ...*Rule) (*Set, error) {
	s := &Set{}
	for _, r := range rs {
		cr := &compiledRule{rule: r}
		switch t := r.Trigger.(type) {
		case *StreamTrigger:
			cr.trigger = t
		case *PatternTrigger:
			var p cep.Pattern
			switch t.Kind {
			case PatternSeq:
				items := make([]cep.SeqItem, len(t.Items))
				for i, it := range t.Items {
					items[i] = cep.SeqItem{
						Pattern: cep.EventAs(it.Stream, it.Alias),
						Negated: it.Negated,
					}
				}
				p = &cep.Seq{Items: items}
			case PatternAll, PatternAny:
				pats := make([]cep.Pattern, len(t.Items))
				for i, it := range t.Items {
					pats[i] = cep.EventAs(it.Stream, it.Alias)
				}
				if t.Kind == PatternAll {
					p = &cep.All{Patterns: pats}
				} else {
					p = &cep.Any{Patterns: pats}
				}
			default:
				return nil, fmt.Errorf("rules: rule %q: unknown pattern kind %d", r.Name, t.Kind)
			}
			if t.Within > 0 {
				p = &cep.Within{P: p, D: t.Within}
			}
			m, err := cep.NewMatcher(p)
			if err != nil {
				return nil, fmt.Errorf("rules: rule %q: %w", r.Name, err)
			}
			cr.matcher = m
		default:
			return nil, fmt.Errorf("rules: rule %q: unknown trigger %T", r.Name, r.Trigger)
		}
		if len(r.Actions) == 0 {
			return nil, fmt.Errorf("rules: rule %q has no actions", r.Name)
		}
		s.rules = append(s.rules, cr)
	}
	return s, nil
}

// ParseSet parses and compiles a rule file.
func ParseSet(src string) (*Set, error) {
	rs, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	return NewSet(rs...)
}

// Len reports the number of deployed rules.
func (s *Set) Len() int { return len(s.rules) }

// Emitted reports the number of derived elements produced so far.
func (s *Set) Emitted() uint64 { return s.emitted }

// Apply feeds one input element: rules whose trigger matches fire their
// actions against the store at the element's timestamp. It returns any
// EMIT-derived elements. Elements must arrive in timestamp order.
func (s *Set) Apply(el *element.Element, store *state.Store) ([]*element.Element, error) {
	var out []*element.Element
	for _, cr := range s.rules {
		if cr.trigger != nil {
			if cr.trigger.Stream != el.Stream {
				continue
			}
			env := &ruleEnv{
				bindings: map[string]*element.Element{cr.trigger.Alias: el},
				store:    store,
				now:      el.Timestamp,
			}
			emitted, err := s.fire(cr, env)
			if err != nil {
				return out, err
			}
			out = append(out, emitted...)
			continue
		}
		for _, m := range cr.matcher.Observe(el) {
			env := &ruleEnv{
				bindings: m.Bindings,
				store:    store,
				now:      el.Timestamp,
			}
			emitted, err := s.fire(cr, env)
			if err != nil {
				return out, err
			}
			out = append(out, emitted...)
		}
	}
	return out, nil
}

// AdvanceTo propagates a watermark to pattern matchers so stale partial
// matches are pruned.
func (s *Set) AdvanceTo(wm temporal.Instant) {
	for _, cr := range s.rules {
		if cr.matcher != nil {
			cr.matcher.AdvanceTo(wm)
		}
	}
}

func (s *Set) fire(cr *compiledRule, env *ruleEnv) ([]*element.Element, error) {
	r := cr.rule
	if r.Where != nil {
		ok, err := lang.EvalBool(r.Where, env)
		if err != nil {
			return nil, fmt.Errorf("rules: rule %q WHERE: %w", r.Name, err)
		}
		if !ok {
			return nil, nil
		}
	}
	if r.When != nil {
		ok, err := lang.EvalBool(r.When, env)
		if err != nil {
			return nil, fmt.Errorf("rules: rule %q WHEN: %w", r.Name, err)
		}
		if !ok {
			return nil, nil
		}
	}
	var out []*element.Element
	for _, a := range r.Actions {
		emitted, err := s.execute(r, a, env)
		if err != nil {
			return out, fmt.Errorf("rules: rule %q: %w", r.Name, err)
		}
		if emitted != nil {
			out = append(out, emitted)
		}
	}
	return out, nil
}

func (s *Set) execute(r *Rule, a Action, env *ruleEnv) (*element.Element, error) {
	switch act := a.(type) {
	case *ReplaceAction:
		entity, err := evalEntity(act.Entity, env)
		if err != nil {
			return nil, err
		}
		v, err := lang.Eval(act.Value, env)
		if err != nil {
			return nil, err
		}
		return nil, env.store.Put(entity, act.Attr, v, env.now)

	case *AssertAction:
		entity, err := evalEntity(act.Entity, env)
		if err != nil {
			return nil, err
		}
		v, err := lang.Eval(act.Value, env)
		if err != nil {
			return nil, err
		}
		from := env.now
		if act.From != nil {
			if from, err = evalInstant(act.From, env); err != nil {
				return nil, err
			}
		}
		until := temporal.Forever
		if act.Until != nil {
			if until, err = evalInstant(act.Until, env); err != nil {
				return nil, err
			}
		}
		f := element.NewFact(entity, act.Attr, v, temporal.NewInterval(from, until))
		f.Source = r.Name
		return nil, env.store.Assert(f)

	case *RetractAction:
		entity, err := evalEntity(act.Entity, env)
		if err != nil {
			return nil, err
		}
		// Retracting an absent fact is a no-op: rules often fire "close"
		// transitions for keys that were never opened.
		if err := env.store.Retract(entity, act.Attr, env.now); err != nil &&
			!errors.Is(err, state.ErrNoCurrent) {
			return nil, err
		}
		return nil, nil

	case *EmitAction:
		fields := make([]element.Field, len(act.Fields))
		vals := make([]element.Value, len(act.Fields))
		for i, f := range act.Fields {
			v, err := lang.Eval(f.Expr, env)
			if err != nil {
				return nil, err
			}
			fields[i] = element.Field{Name: f.Name, Kind: v.Kind()}
			vals[i] = v
		}
		tuple := element.NewTuple(element.NewSchema(fields...), vals...)
		el := element.New(act.Stream, env.now, tuple)
		el.Seq = s.emitted
		s.emitted++
		return el, nil
	}
	return nil, fmt.Errorf("unknown action %T", a)
}

func evalEntity(e lang.Expr, env *ruleEnv) (string, error) {
	v, err := lang.Eval(e, env)
	if err != nil {
		return "", err
	}
	if v.IsNull() {
		return "", fmt.Errorf("entity expression %s is null", e)
	}
	return v.String(), nil
}

func evalInstant(e lang.Expr, env *ruleEnv) (temporal.Instant, error) {
	v, err := lang.Eval(e, env)
	if err != nil {
		return 0, err
	}
	if t, ok := v.AsTime(); ok {
		return t, nil
	}
	if n, ok := v.AsInt(); ok {
		return temporal.Instant(n), nil
	}
	return 0, fmt.Errorf("expression %s is not a time", e)
}

// ruleEnv implements lang.Env for rule evaluation: variables resolve to
// event bindings' fields, and state lookups read the store as of the
// trigger instant.
type ruleEnv struct {
	bindings map[string]*element.Element
	store    *state.Store
	now      temporal.Instant
}

// Var implements lang.Env. Bare variables are not values in rule scope.
func (e *ruleEnv) Var(string) (element.Value, bool) { return element.Null, false }

// Field implements lang.Env.
func (e *ruleEnv) Field(varName, field string) (element.Value, bool) {
	el, ok := e.bindings[varName]
	if !ok {
		return element.Null, false
	}
	return el.Get(field)
}

// State implements lang.Env: lookups observe the state as of the trigger
// instant, so rules see the effects of earlier rules at the same tick
// (StateFirst policy is enforced by the engine's invocation order).
func (e *ruleEnv) State(attr string, entity element.Value) (element.Value, bool) {
	f, ok := e.store.ValidAt(entity.String(), attr, e.now)
	if !ok {
		return element.Null, false
	}
	return f.Value, true
}

// Now implements lang.Env.
func (e *ruleEnv) Now() temporal.Instant { return e.now }
