package rules

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cep"
	"repro/internal/element"
	"repro/internal/lang"
	"repro/internal/state"
	"repro/internal/temporal"
)

// Set is a deployed collection of compiled state management rules. The
// engine feeds it every input element in timestamp order; the Set updates
// the state repository and returns any derived (EMIT) elements.
//
// Rules are routed, not scanned: at compile time every rule is bucketed
// under the stream names that can fire it (a stream trigger under its
// trigger stream, a pattern trigger under every participating stream), so
// Apply touches only the rules relevant to an element's stream. Firing
// order within a bucket is deployment order, exactly as the pre-index
// full scan fired them.
type Set struct {
	rules []*compiledRule
	// byStream routes elements to the deployment-ordered rules that can
	// fire on their stream. Read-only after NewSet, so concurrent
	// ApplyStream calls from partition workers share it without locks.
	byStream map[string][]*compiledRule
	// wildcard disables routing: a pattern atom with an empty stream
	// matches every element, so every rule must see every element.
	wildcard bool
	// streamPure caches, per routed stream, whether every rule in the
	// bucket is pure (see compiledRule.pure).
	streamPure map[string]bool
	// hasPatterns records whether any rule has a pattern trigger.
	hasPatterns bool
	// emitted counts derived elements and seeds their sequence numbers.
	emitted uint64
}

type compiledRule struct {
	rule    *Rule
	matcher *cep.Matcher // nil for stream triggers
	trigger *StreamTrigger
	// idx is the deployment position; routed iteration preserves it so
	// firing order matches the historical full scan.
	idx int
	// pure marks stream-trigger rules whose clauses and actions never
	// read the state repository and only REPLACE or EMIT: their writes
	// can be deferred into a micro-batch group commit without
	// read-your-write hazards.
	pure bool
}

// Fired is one EMIT-derived element tagged with the deployment index of
// the rule that produced it. The parallel ingestion driver merges each
// input element's stream-phase and pattern-phase emissions back into
// deployment order with it, then numbers them via TakeSeq — reproducing
// the serial path's sequence assignment exactly.
type Fired struct {
	El      *element.Element
	RuleIdx int
}

// NewSet compiles the given rules. Pattern triggers are compiled to CEP
// matchers; compilation errors name the offending rule.
func NewSet(rs ...*Rule) (*Set, error) {
	s := &Set{
		byStream:   make(map[string][]*compiledRule),
		streamPure: make(map[string]bool),
	}
	for _, r := range rs {
		cr := &compiledRule{rule: r, idx: len(s.rules)}
		switch t := r.Trigger.(type) {
		case *StreamTrigger:
			cr.trigger = t
		case *PatternTrigger:
			var p cep.Pattern
			switch t.Kind {
			case PatternSeq:
				items := make([]cep.SeqItem, len(t.Items))
				for i, it := range t.Items {
					items[i] = cep.SeqItem{
						Pattern: cep.EventAs(it.Stream, it.Alias),
						Negated: it.Negated,
					}
				}
				p = &cep.Seq{Items: items}
			case PatternAll, PatternAny:
				pats := make([]cep.Pattern, len(t.Items))
				for i, it := range t.Items {
					pats[i] = cep.EventAs(it.Stream, it.Alias)
				}
				if t.Kind == PatternAll {
					p = &cep.All{Patterns: pats}
				} else {
					p = &cep.Any{Patterns: pats}
				}
			default:
				return nil, fmt.Errorf("rules: rule %q: unknown pattern kind %d", r.Name, t.Kind)
			}
			if t.Within > 0 {
				p = &cep.Within{P: p, D: t.Within}
			}
			m, err := cep.NewMatcher(p)
			if err != nil {
				return nil, fmt.Errorf("rules: rule %q: %w", r.Name, err)
			}
			cr.matcher = m
		default:
			return nil, fmt.Errorf("rules: rule %q: unknown trigger %T", r.Name, r.Trigger)
		}
		if len(r.Actions) == 0 {
			return nil, fmt.Errorf("rules: rule %q has no actions", r.Name)
		}
		cr.pure = cr.computePure()
		s.rules = append(s.rules, cr)
	}
	s.index()
	return s, nil
}

// index builds the stream-routing buckets and the per-stream purity cache.
func (s *Set) index() {
	for _, cr := range s.rules {
		if cr.trigger != nil {
			s.byStream[cr.trigger.Stream] = append(s.byStream[cr.trigger.Stream], cr)
			continue
		}
		s.hasPatterns = true
		t := cr.rule.Trigger.(*PatternTrigger)
		added := make(map[string]bool, len(t.Items))
		for _, it := range t.Items {
			if it.Stream == "" {
				s.wildcard = true
				continue
			}
			if !added[it.Stream] {
				added[it.Stream] = true
				s.byStream[it.Stream] = append(s.byStream[it.Stream], cr)
			}
		}
	}
	for stream, bucket := range s.byStream {
		pure := !s.wildcard
		for _, cr := range bucket {
			if cr.trigger == nil || !cr.pure {
				pure = false
				break
			}
		}
		s.streamPure[stream] = pure
	}
}

// route returns the deployment-ordered rules that can fire on stream.
// Skipping a matcher's Observe for non-participating elements is safe:
// such elements match no atom and no negation guard, so they can neither
// advance, kill, nor spawn a run (WITHIN pruning just happens at the next
// participating element or watermark instead).
func (s *Set) route(stream string) []*compiledRule {
	if s.wildcard {
		return s.rules
	}
	return s.byStream[stream]
}

// computePure reports whether the rule can run against a deferred write
// batch: a stream trigger whose WHERE/WHEN and action expressions never
// read state, with REPLACE and EMIT actions only.
func (cr *compiledRule) computePure() bool {
	if cr.trigger == nil {
		return false
	}
	r := cr.rule
	if exprReadsState(r.Where) || exprReadsState(r.When) {
		return false
	}
	for _, a := range r.Actions {
		switch act := a.(type) {
		case *ReplaceAction:
			if exprReadsState(act.Entity) || exprReadsState(act.Value) {
				return false
			}
		case *EmitAction:
			for _, f := range act.Fields {
				if exprReadsState(f.Expr) {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}

// exprReadsState walks an expression for state repository reads
// (attr(entity) references and EXISTS tests).
func exprReadsState(e lang.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *lang.StateRef, *lang.Exists:
		return true
	case *lang.Unary:
		return exprReadsState(x.X)
	case *lang.Binary:
		return exprReadsState(x.L) || exprReadsState(x.R)
	case *lang.Call:
		for _, a := range x.Args {
			if exprReadsState(a) {
				return true
			}
		}
	}
	return false
}

// ParseSet parses and compiles a rule file.
func ParseSet(src string) (*Set, error) {
	rs, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	return NewSet(rs...)
}

// Len reports the number of deployed rules.
func (s *Set) Len() int { return len(s.rules) }

// Emitted reports the number of derived elements produced so far.
func (s *Set) Emitted() uint64 { return s.emitted }

// HasPatterns reports whether any deployed rule has a pattern trigger.
func (s *Set) HasPatterns() bool { return s.hasPatterns }

// StreamPure reports whether every rule that can fire on elements of the
// given stream is pure (see compiledRule.pure): such elements can be
// applied against a deferred write batch (ApplyStreamBatch) with no
// observable difference from write-through. Streams with no routed rules
// are trivially pure; a wildcard pattern makes every stream impure.
func (s *Set) StreamPure(stream string) bool {
	if s.wildcard {
		return false
	}
	pure, ok := s.streamPure[stream]
	return !ok || pure
}

// TakeSeq reserves n consecutive derived-element sequence numbers and
// returns the first. The parallel driver numbers deferred emissions with
// it after merging; not safe for concurrent use (call from the merge
// phase only).
func (s *Set) TakeSeq(n int) uint64 {
	base := s.emitted
	s.emitted += uint64(n)
	return base
}

// applyKind selects which rule classes an applyRouted pass fires.
type applyKind int

const (
	applyAll applyKind = iota
	applyStreamOnly
	applyPatternsOnly
)

// envPool recycles rule evaluation environments across elements; in
// steady state the per-element rule pass allocates no scratch.
var envPool = sync.Pool{New: func() interface{} { return new(ruleEnv) }}

// applyRouted fires the routed rules of one element, in deployment order,
// appending EMIT-derived elements (sequence numbers unassigned) to fired.
func (s *Set) applyRouted(el *element.Element, store *state.Store, kind applyKind, batch *[]state.BatchPut, fired *[]Fired) error {
	env := envPool.Get().(*ruleEnv)
	env.store, env.now, env.batch = store, el.Timestamp, batch
	defer func() {
		*env = ruleEnv{}
		envPool.Put(env)
	}()
	for _, cr := range s.route(el.Stream) {
		if cr.trigger != nil {
			if kind == applyPatternsOnly || cr.trigger.Stream != el.Stream {
				continue
			}
			env.alias, env.el, env.bindings = cr.trigger.Alias, el, nil
			if err := s.fire(cr, env, fired); err != nil {
				return err
			}
			continue
		}
		if kind == applyStreamOnly {
			continue
		}
		for _, m := range cr.matcher.Observe(el) {
			env.alias, env.el, env.bindings = "", nil, m.Bindings
			if err := s.fire(cr, env, fired); err != nil {
				return err
			}
		}
	}
	return nil
}

// Apply feeds one input element: rules whose trigger matches fire their
// actions against the store at the element's timestamp. It returns any
// EMIT-derived elements. Elements must arrive in timestamp order.
func (s *Set) Apply(el *element.Element, store *state.Store) ([]*element.Element, error) {
	var fired []Fired
	if err := s.applyRouted(el, store, applyAll, nil, &fired); err != nil {
		return nil, err
	}
	return s.seal(fired), nil
}

// ApplyStream fires only the stream-trigger rules routed to el's stream,
// writing state through immediately. Safe to call concurrently from
// partition workers for elements of disjoint routing keys: the routing
// index is read-only, evaluation scratch is pooled, and emitted elements
// go to the caller's sink with sequence assignment deferred (seal the
// merged order with TakeSeq).
func (s *Set) ApplyStream(el *element.Element, store *state.Store, fired *[]Fired) error {
	return s.applyRouted(el, store, applyStreamOnly, nil, fired)
}

// ApplyStreamBatch is ApplyStream with REPLACE writes deferred into batch
// for a later Store.PutBatch group commit. Valid only when
// StreamPure(el.Stream): pure rules never read state, so deferral cannot
// change what they observe.
func (s *Set) ApplyStreamBatch(el *element.Element, store *state.Store, batch *[]state.BatchPut, fired *[]Fired) error {
	return s.applyRouted(el, store, applyStreamOnly, batch, fired)
}

// ApplyPatterns fires only the pattern-trigger rules. Matchers are
// stateful and order-sensitive: feed every element, in timestamp order,
// from a single goroutine.
func (s *Set) ApplyPatterns(el *element.Element, store *state.Store, fired *[]Fired) error {
	if !s.hasPatterns {
		return nil
	}
	return s.applyRouted(el, store, applyPatternsOnly, nil, fired)
}

// seal assigns sequence numbers in firing order and unwraps the elements.
func (s *Set) seal(fired []Fired) []*element.Element {
	if len(fired) == 0 {
		return nil
	}
	out := make([]*element.Element, len(fired))
	for i, f := range fired {
		f.El.Seq = s.emitted
		s.emitted++
		out[i] = f.El
	}
	return out
}

// AdvanceTo propagates a watermark to pattern matchers so stale partial
// matches are pruned.
func (s *Set) AdvanceTo(wm temporal.Instant) {
	for _, cr := range s.rules {
		if cr.matcher != nil {
			cr.matcher.AdvanceTo(wm)
		}
	}
}

func (s *Set) fire(cr *compiledRule, env *ruleEnv, fired *[]Fired) error {
	r := cr.rule
	if r.Where != nil {
		ok, err := lang.EvalBool(r.Where, env)
		if err != nil {
			return fmt.Errorf("rules: rule %q WHERE: %w", r.Name, err)
		}
		if !ok {
			return nil
		}
	}
	if r.When != nil {
		ok, err := lang.EvalBool(r.When, env)
		if err != nil {
			return fmt.Errorf("rules: rule %q WHEN: %w", r.Name, err)
		}
		if !ok {
			return nil
		}
	}
	for _, a := range r.Actions {
		emitted, err := s.execute(r, a, env)
		if err != nil {
			return fmt.Errorf("rules: rule %q: %w", r.Name, err)
		}
		if emitted != nil {
			*fired = append(*fired, Fired{El: emitted, RuleIdx: cr.idx})
		}
	}
	return nil
}

func (s *Set) execute(r *Rule, a Action, env *ruleEnv) (*element.Element, error) {
	switch act := a.(type) {
	case *ReplaceAction:
		entity, err := evalEntity(act.Entity, env)
		if err != nil {
			return nil, err
		}
		v, err := lang.Eval(act.Value, env)
		if err != nil {
			return nil, err
		}
		if env.batch != nil {
			*env.batch = append(*env.batch, state.BatchPut{
				Entity: entity, Attr: act.Attr, Value: v, At: env.now,
			})
			return nil, nil
		}
		return nil, env.store.Put(entity, act.Attr, v, env.now)

	case *AssertAction:
		entity, err := evalEntity(act.Entity, env)
		if err != nil {
			return nil, err
		}
		v, err := lang.Eval(act.Value, env)
		if err != nil {
			return nil, err
		}
		from := env.now
		if act.From != nil {
			if from, err = evalInstant(act.From, env); err != nil {
				return nil, err
			}
		}
		until := temporal.Forever
		if act.Until != nil {
			if until, err = evalInstant(act.Until, env); err != nil {
				return nil, err
			}
		}
		f := element.NewFact(entity, act.Attr, v, temporal.NewInterval(from, until))
		f.Source = r.Name
		return nil, env.store.Assert(f)

	case *RetractAction:
		entity, err := evalEntity(act.Entity, env)
		if err != nil {
			return nil, err
		}
		// Retracting an absent fact is a no-op: rules often fire "close"
		// transitions for keys that were never opened.
		if err := env.store.Retract(entity, act.Attr, env.now); err != nil &&
			!errors.Is(err, state.ErrNoCurrent) {
			return nil, err
		}
		return nil, nil

	case *EmitAction:
		fields := make([]element.Field, len(act.Fields))
		vals := make([]element.Value, len(act.Fields))
		for i, f := range act.Fields {
			v, err := lang.Eval(f.Expr, env)
			if err != nil {
				return nil, err
			}
			fields[i] = element.Field{Name: f.Name, Kind: v.Kind()}
			vals[i] = v
		}
		tuple := element.NewTuple(element.NewSchema(fields...), vals...)
		// Seq is assigned by seal (serial Apply) or the parallel driver's
		// TakeSeq numbering, after firing order is settled.
		return element.New(act.Stream, env.now, tuple), nil
	}
	return nil, fmt.Errorf("unknown action %T", a)
}

func evalEntity(e lang.Expr, env *ruleEnv) (string, error) {
	v, err := lang.Eval(e, env)
	if err != nil {
		return "", err
	}
	if v.IsNull() {
		return "", fmt.Errorf("entity expression %s is null", e)
	}
	return v.String(), nil
}

func evalInstant(e lang.Expr, env *ruleEnv) (temporal.Instant, error) {
	v, err := lang.Eval(e, env)
	if err != nil {
		return 0, err
	}
	if t, ok := v.AsTime(); ok {
		return t, nil
	}
	if n, ok := v.AsInt(); ok {
		return temporal.Instant(n), nil
	}
	return 0, fmt.Errorf("expression %s is not a time", e)
}

// ruleEnv implements lang.Env for rule evaluation: variables resolve to
// event bindings' fields, and state lookups read the store as of the
// trigger instant. A stream trigger's single binding lives in alias/el
// (no map allocation); pattern matches carry their matcher-built bindings
// map. Instances are pooled — applyRouted resets them between elements.
type ruleEnv struct {
	alias    string
	el       *element.Element
	bindings map[string]*element.Element
	store    *state.Store
	now      temporal.Instant
	// batch, when non-nil, receives REPLACE writes instead of the store
	// (the pure-rule deferred path; see ApplyStreamBatch).
	batch *[]state.BatchPut
}

// Var implements lang.Env. Bare variables are not values in rule scope.
func (e *ruleEnv) Var(string) (element.Value, bool) { return element.Null, false }

// Field implements lang.Env.
func (e *ruleEnv) Field(varName, field string) (element.Value, bool) {
	if e.el != nil && varName == e.alias {
		return e.el.Get(field)
	}
	if el, ok := e.bindings[varName]; ok {
		return el.Get(field)
	}
	return element.Null, false
}

// State implements lang.Env: lookups observe the state as of the trigger
// instant, so rules see the effects of earlier rules at the same tick
// (StateFirst policy is enforced by the engine's invocation order). The
// read goes through the spec-based value path: no option closures, no
// fact clone.
func (e *ruleEnv) State(attr string, entity element.Value) (element.Value, bool) {
	return e.store.FindValue(entity.String(), attr,
		state.ReadSpec{ValidAt: e.now, HasValidAt: true})
}

// Now implements lang.Env.
func (e *ruleEnv) Now() temporal.Instant { return e.now }
