// Package rules implements the state management rule language and runtime:
// the component of Figure 1 that "elaborates the input data according to a
// set of deployed state management rules to update the current state of
// the system".
//
// A rule has the shape
//
//	RULE visitor_position
//	ON RoomEntry AS e
//	THEN REPLACE position(e.visitor) = e.room
//
// with three clauses:
//
//   - ON declares the trigger: a single stream element (ON Stream AS x
//     [WHERE expr]) or — answering §3.3's "state transition ... determined
//     by multiple streaming elements" — an event pattern
//     (ON SEQ(A AS a, NOT B, C AS c) [WITHIN 5m] [WHERE expr]) matched by
//     the CEP engine, where WHERE may correlate the bound events.
//   - WHEN optionally gates the rule on the current state
//     (WHEN EXISTS active(e.user)).
//   - THEN lists actions: REPLACE / ASSERT / RETRACT mutate the state
//     repository; EMIT produces derived stream elements.
//
// Rules are deployed into a Set, which the engine invokes for every input
// element in timestamp order.
package rules

import (
	"strings"

	"repro/internal/lang"
	"repro/internal/temporal"
)

// Rule is a parsed state management rule.
type Rule struct {
	// Name identifies the rule; it becomes the Source of facts it asserts.
	Name string
	// Trigger declares when the rule fires.
	Trigger Trigger
	// Where optionally filters trigger matches; it may reference all
	// bound aliases.
	Where lang.Expr
	// When optionally gates on state, evaluated against the state view at
	// the trigger instant.
	When lang.Expr
	// Actions run in order when the rule fires.
	Actions []Action
}

// Trigger is either a StreamTrigger or a PatternTrigger.
type Trigger interface {
	// String renders the trigger's ON clause body.
	String() string
	triggerNode()
}

// StreamTrigger fires on every element of one stream.
type StreamTrigger struct {
	Stream string
	Alias  string
}

// PatternKind selects the combinator of a PatternTrigger.
type PatternKind int

// Pattern trigger combinators.
const (
	// PatternSeq matches items in temporal order (supports NOT guards).
	PatternSeq PatternKind = iota
	// PatternAll matches items in any order (conjunction).
	PatternAll
	// PatternAny matches when any one item occurs (disjunction).
	PatternAny
)

// String names the combinator as it appears in rule text.
func (k PatternKind) String() string {
	switch k {
	case PatternAll:
		return "ALL"
	case PatternAny:
		return "ANY"
	}
	return "SEQ"
}

// PatternTrigger fires on every match of an event pattern.
type PatternTrigger struct {
	Kind  PatternKind
	Items []PatternItem
	// Within bounds the match span; zero means unconstrained.
	Within temporal.Instant
}

// PatternItem is one step of a pattern trigger.
type PatternItem struct {
	Stream  string
	Alias   string
	Negated bool
}

func (*StreamTrigger) triggerNode()  {}
func (*PatternTrigger) triggerNode() {}

// String implements Trigger.
func (t *StreamTrigger) String() string {
	if t.Alias != "" && t.Alias != t.Stream {
		return t.Stream + " AS " + t.Alias
	}
	return t.Stream
}

// String implements Trigger.
func (t *PatternTrigger) String() string {
	parts := make([]string, len(t.Items))
	for i, it := range t.Items {
		s := it.Stream
		if it.Alias != "" && it.Alias != it.Stream {
			s += " AS " + it.Alias
		}
		if it.Negated {
			s = "NOT " + s
		}
		parts[i] = s
	}
	s := t.Kind.String() + "(" + strings.Join(parts, ", ") + ")"
	if t.Within > 0 {
		s += " WITHIN " + (&lang.Duration{Nanos: int64(t.Within)}).String()
	}
	return s
}

// Action is one THEN clause item.
type Action interface {
	// String renders the action.
	String() string
	actionNode()
}

// ReplaceAction terminates the current version of attr(entity) and asserts
// the new value from the trigger instant — the canonical "most recent
// position invalidates any previous position" transition of §1.
type ReplaceAction struct {
	Attr   string
	Entity lang.Expr
	Value  lang.Expr
}

// AssertAction asserts attr(entity) = value with explicit validity. From
// defaults to the trigger instant, Until to Forever.
type AssertAction struct {
	Attr   string
	Entity lang.Expr
	Value  lang.Expr
	From   lang.Expr // optional
	Until  lang.Expr // optional
}

// RetractAction terminates the current version of attr(entity) at the
// trigger instant.
type RetractAction struct {
	Attr   string
	Entity lang.Expr
}

// EmitAction produces a derived stream element.
type EmitAction struct {
	Stream string
	Fields []EmitField
}

// EmitField is one named output field of an EMIT action.
type EmitField struct {
	Name string
	Expr lang.Expr
}

func (*ReplaceAction) actionNode() {}
func (*AssertAction) actionNode()  {}
func (*RetractAction) actionNode() {}
func (*EmitAction) actionNode()    {}

// String implements Action.
func (a *ReplaceAction) String() string {
	return "REPLACE " + a.Attr + "(" + a.Entity.String() + ") = " + a.Value.String()
}

// String implements Action.
func (a *AssertAction) String() string {
	s := "ASSERT " + a.Attr + "(" + a.Entity.String() + ") = " + a.Value.String()
	if a.From != nil {
		s += " FROM " + a.From.String()
	}
	if a.Until != nil {
		s += " UNTIL " + a.Until.String()
	}
	return s
}

// String implements Action.
func (a *RetractAction) String() string {
	return "RETRACT " + a.Attr + "(" + a.Entity.String() + ")"
}

// String implements Action.
func (a *EmitAction) String() string {
	parts := make([]string, len(a.Fields))
	for i, f := range a.Fields {
		parts[i] = f.Name + " = " + f.Expr.String()
	}
	return "EMIT " + a.Stream + "(" + strings.Join(parts, ", ") + ")"
}

// String renders the whole rule in re-parseable syntax.
func (r *Rule) String() string {
	var sb strings.Builder
	sb.WriteString("RULE " + r.Name + "\nON " + r.Trigger.String())
	if r.Where != nil {
		sb.WriteString("\nWHERE " + r.Where.String())
	}
	if r.When != nil {
		sb.WriteString("\nWHEN " + r.When.String())
	}
	sb.WriteString("\nTHEN ")
	for i, a := range r.Actions {
		if i > 0 {
			sb.WriteString(",\n     ")
		}
		sb.WriteString(a.String())
	}
	return sb.String()
}
