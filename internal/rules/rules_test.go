package rules

import (
	"strings"
	"testing"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
)

var entrySchema = element.NewSchema(
	element.Field{Name: "visitor", Kind: element.KindString},
	element.Field{Name: "room", Kind: element.KindString},
)

func entry(ts int64, visitor, room string) *element.Element {
	e := element.New("RoomEntry", temporal.Instant(ts),
		element.NewTuple(entrySchema, element.String(visitor), element.String(room)))
	e.Seq = uint64(ts)
	return e
}

func TestParseSimpleRule(t *testing.T) {
	r, err := Parse(`
RULE visitor_position
ON RoomEntry AS e
THEN REPLACE position(e.visitor) = e.room`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "visitor_position" {
		t.Errorf("name: %q", r.Name)
	}
	st, ok := r.Trigger.(*StreamTrigger)
	if !ok || st.Stream != "RoomEntry" || st.Alias != "e" {
		t.Fatalf("trigger: %+v", r.Trigger)
	}
	if len(r.Actions) != 1 {
		t.Fatalf("actions: %v", r.Actions)
	}
	if _, ok := r.Actions[0].(*ReplaceAction); !ok {
		t.Fatalf("action type: %T", r.Actions[0])
	}
}

func TestParseFullRule(t *testing.T) {
	r, err := Parse(`
RULE checkout
ON Purchase AS p WHERE p.amount > 100 WHEN EXISTS active(p.user)
THEN ASSERT bigspender(p.user) = true FROM now() UNTIL now() + 1h,
     EMIT Alert(user = p.user, amount = p.amount),
     RETRACT cart(p.user)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Where == nil || r.When == nil {
		t.Error("where/when should be set")
	}
	if len(r.Actions) != 3 {
		t.Fatalf("actions: %d", len(r.Actions))
	}
	a := r.Actions[0].(*AssertAction)
	if a.From == nil || a.Until == nil {
		t.Error("assert from/until")
	}
	e := r.Actions[1].(*EmitAction)
	if e.Stream != "Alert" || len(e.Fields) != 2 {
		t.Fatalf("emit: %+v", e)
	}
}

func TestParsePatternRule(t *testing.T) {
	r, err := Parse(`
RULE walkthrough
ON SEQ(Badge AS b, NOT Exit, Vault AS v) WITHIN 5m
WHERE v.visitor = b.visitor
THEN EMIT Alarm(visitor = b.visitor)`)
	if err != nil {
		t.Fatal(err)
	}
	pt, ok := r.Trigger.(*PatternTrigger)
	if !ok || len(pt.Items) != 3 || !pt.Items[1].Negated {
		t.Fatalf("pattern trigger: %+v", pt)
	}
	if pt.Within != temporal.Instant(5*60*1e9) {
		t.Errorf("within: %d", pt.Within)
	}
}

func TestParseAllMultipleRules(t *testing.T) {
	rs, err := ParseAll(`
RULE a ON S AS x THEN REPLACE p(x.k) = 1
RULE b ON S AS x THEN RETRACT p(x.k)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Name != "a" || rs[1].Name != "b" {
		t.Fatalf("rules: %v", rs)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"RULE x ON S AS e",                        // no THEN
		"RULE x ON S AS e THEN",                   // no action
		"RULE x ON S AS e THEN FROB y(e.k) = 1",   // unknown action
		"RULE x ON SEQ() THEN RETRACT p(1)",       // empty pattern
		"RULE x ON S AS e THEN REPLACE p(e.k)",    // missing value
		"RULE x ON S AS e THEN EMIT Out()",        // empty emit
		"RULE x ON S AS e THEN RETRACT p(e.k) 42", // trailing tokens
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
	if _, err := ParseSet("RULE x ON SEQ(A, NOT B) THEN RETRACT p(1)"); err == nil {
		t.Error("ParseSet should surface compile errors")
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	srcs := []string{
		"RULE r1 ON RoomEntry AS e THEN REPLACE position(e.visitor) = e.room",
		"RULE r2 ON S AS x WHERE x.v > 3 WHEN EXISTS a(x.k) THEN RETRACT a(x.k), EMIT Out(k = x.k)",
		"RULE r3 ON SEQ(A AS a, NOT B, C AS c) WITHIN 10m WHERE a.k = c.k THEN ASSERT p(a.k) = 1 FROM now() UNTIL now() + 5m",
	}
	for _, src := range srcs {
		r1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := r1.String()
		r2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if r2.String() != printed {
			t.Errorf("round trip unstable:\n%s\n---\n%s", printed, r2.String())
		}
	}
}

func TestApplyReplaceRule(t *testing.T) {
	// The paper's security use case: position updates invalidate previous
	// positions.
	set, err := ParseSet("RULE pos ON RoomEntry AS e THEN REPLACE position(e.visitor) = e.room")
	if err != nil {
		t.Fatal(err)
	}
	store := state.NewStore()
	for _, el := range []*element.Element{
		entry(10, "ann", "hall"), entry(20, "ann", "lab"), entry(25, "bob", "hall"),
	} {
		if _, err := set.Apply(el, store); err != nil {
			t.Fatal(err)
		}
	}
	if f, _ := store.Current("ann", "position"); f.Value.MustString() != "lab" {
		t.Errorf("ann current: %v", f)
	}
	if f, _ := store.ValidAt("ann", "position", 15); f.Value.MustString() != "hall" {
		t.Errorf("ann history: %v", f)
	}
	// No instant has two positions for ann.
	if len(store.AsOf(22)) != 1+1 { // ann lab + nothing for bob yet at 22? bob at 25. So just ann.
		// AsOf(22): ann=lab only.
		if got := store.AsOf(22); len(got) != 1 {
			t.Errorf("as-of 22: %v", got)
		}
	}
}

func TestApplyWhereFilter(t *testing.T) {
	set, err := ParseSet("RULE pos ON RoomEntry AS e WHERE e.room != 'hall' THEN REPLACE position(e.visitor) = e.room")
	if err != nil {
		t.Fatal(err)
	}
	store := state.NewStore()
	set.Apply(entry(10, "ann", "hall"), store)
	if _, ok := store.Current("ann", "position"); ok {
		t.Error("filtered element should not fire")
	}
	set.Apply(entry(20, "ann", "lab"), store)
	if f, ok := store.Current("ann", "position"); !ok || f.Value.MustString() != "lab" {
		t.Error("passing element should fire")
	}
}

func TestApplyWhenStateGate(t *testing.T) {
	src := `
RULE track ON RoomEntry AS e WHEN EXISTS watchlist(e.visitor)
THEN REPLACE position(e.visitor) = e.room`
	set, err := ParseSet(src)
	if err != nil {
		t.Fatal(err)
	}
	store := state.NewStore()
	set.Apply(entry(10, "ann", "lab"), store)
	if _, ok := store.Current("ann", "position"); ok {
		t.Error("unwatched visitor should be ignored")
	}
	store.Put("ann", "watchlist", element.Bool(true), 15)
	set.Apply(entry(20, "ann", "vault"), store)
	if f, ok := store.Current("ann", "position"); !ok || f.Value.MustString() != "vault" {
		t.Error("watched visitor should be tracked")
	}
}

func TestApplyEmitAndSourceMetadata(t *testing.T) {
	src := `
RULE sess ON Click AS c
THEN ASSERT lastclick(c.visitor) = c.room,
     EMIT Activity(visitor = c.visitor, at = now())`
	set, err := ParseSet(src)
	if err != nil {
		t.Fatal(err)
	}
	store := state.NewStore()
	click := element.New("Click", 30, element.NewTuple(entrySchema, element.String("ann"), element.String("x")))
	out, err := set.Apply(click, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Stream != "Activity" || out[0].Timestamp != 30 {
		t.Fatalf("emitted: %v", out)
	}
	if at, _ := out[0].MustGet("at").AsTime(); at != 30 {
		t.Errorf("now() in emit: %v", out[0])
	}
	f, _ := store.Current("ann", "lastclick")
	if f.Source != "sess" {
		t.Errorf("fact source: %q", f.Source)
	}
	if set.Emitted() != 1 {
		t.Errorf("emitted count: %d", set.Emitted())
	}
}

func TestApplyAssertWithUntil(t *testing.T) {
	set, err := ParseSet(`
RULE promo ON Purchase AS p
THEN ASSERT discount(p.visitor) = 0.1 UNTIL now() + 10ns`)
	if err != nil {
		t.Fatal(err)
	}
	store := state.NewStore()
	p := element.New("Purchase", 100, element.NewTuple(entrySchema, element.String("ann"), element.String("x")))
	if _, err := set.Apply(p, store); err != nil {
		t.Fatal(err)
	}
	f, ok := store.ValidAt("ann", "discount", 105)
	if !ok || f.Validity != temporal.NewInterval(100, 110) {
		t.Fatalf("bounded assert: %v %v", f, ok)
	}
	if _, ok := store.ValidAt("ann", "discount", 110); ok {
		t.Error("discount should expire")
	}
}

func TestApplyRetractAbsentIsNoop(t *testing.T) {
	set, err := ParseSet("RULE out ON Exit AS e THEN RETRACT position(e.visitor)")
	if err != nil {
		t.Fatal(err)
	}
	store := state.NewStore()
	exit := element.New("Exit", 10, element.NewTuple(entrySchema, element.String("ann"), element.String("x")))
	if _, err := set.Apply(exit, store); err != nil {
		t.Fatalf("retract of absent key should not error: %v", err)
	}
}

func TestApplyPatternRule(t *testing.T) {
	src := `
RULE alarm ON SEQ(Badge AS b, Vault AS v) WITHIN 100ns
WHERE v.visitor = b.visitor
THEN EMIT Alarm(visitor = b.visitor)`
	set, err := ParseSet(src)
	if err != nil {
		t.Fatal(err)
	}
	store := state.NewStore()
	mk := func(stream string, ts int64, who string) *element.Element {
		e := element.New(stream, temporal.Instant(ts),
			element.NewTuple(entrySchema, element.String(who), element.String("r")))
		e.Seq = uint64(ts)
		return e
	}
	var emitted []*element.Element
	for _, el := range []*element.Element{
		mk("Badge", 10, "ann"),
		mk("Vault", 20, "bob"),  // wrong visitor: correlated WHERE rejects
		mk("Vault", 30, "ann"),  // fires
		mk("Vault", 200, "ann"), // outside WITHIN
	} {
		out, err := set.Apply(el, store)
		if err != nil {
			t.Fatal(err)
		}
		emitted = append(emitted, out...)
	}
	if len(emitted) != 1 || emitted[0].MustGet("visitor").MustString() != "ann" {
		t.Fatalf("alarm: %v", emitted)
	}
	set.AdvanceTo(1000) // prunes matcher state; just exercise the path
}

func TestRuleErrorsAreNamed(t *testing.T) {
	set, err := ParseSet("RULE broken ON S AS e THEN REPLACE p(e.nosuch) = 1")
	if err != nil {
		t.Fatal(err)
	}
	store := state.NewStore()
	el := element.New("S", 10, element.NewTuple(entrySchema, element.String("a"), element.String("b")))
	if _, err := set.Apply(el, store); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("error should name the rule: %v", err)
	}
}

func TestSetRequiresActions(t *testing.T) {
	if _, err := NewSet(&Rule{Name: "x", Trigger: &StreamTrigger{Stream: "S", Alias: "e"}}); err == nil {
		t.Error("rule without actions should be rejected")
	}
}
