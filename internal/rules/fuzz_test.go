package rules

import (
	"testing"
)

// FuzzParseRule asserts the rule parser never panics and successful
// parses are print/reparse stable.
func FuzzParseRule(f *testing.F) {
	seeds := []string{
		"RULE r ON S AS e THEN REPLACE p(e.k) = e.v",
		"RULE r ON SEQ(A AS a, NOT B, C AS c) WITHIN 5m WHERE a.k = c.k THEN EMIT O(k = a.k)",
		"RULE r ON ALL(A, B) THEN RETRACT p(1)",
		"RULE r ON ANY(A AS x, B AS x) WHEN EXISTS q(x.k) THEN ASSERT p(x.k) = 1 FROM now() UNTIL now() + 1h",
		"RULE",
		"RULE r ON",
		"RULE r ON S THEN",
		"rule lower on s as e then replace p(e.k) = 1",
		"RULE r ON S AS e THEN REPLACE p(e.k) = coalesce(p(e.k), 0) + 1, EMIT O(n = p(e.k))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		r1, err := Parse(src)
		if err != nil {
			return
		}
		printed := r1.String()
		r2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed rule does not reparse: %q -> %q: %v", src, printed, err)
		}
		if r2.String() != printed {
			t.Fatalf("unstable print: %q -> %q -> %q", src, printed, r2.String())
		}
		// Compilation must not panic either (errors are fine).
		_, _ = NewSet(r1)
	})
}
