package workload

import (
	"testing"

	"repro/internal/temporal"
)

func TestClickstreamDeterministic(t *testing.T) {
	cfg := DefaultClickstream()
	a, truthA := Clickstream(cfg)
	b, truthB := Clickstream(cfg)
	if len(a) != len(b) || len(truthA) != len(truthB) {
		t.Fatal("same seed must give same sizes")
	}
	for i := range a {
		if a[i].Timestamp != b[i].Timestamp || a[i].Stream != b[i].Stream {
			t.Fatalf("divergence at %d", i)
		}
	}
	cfg.Seed = 2
	c, _ := Clickstream(cfg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Timestamp != c[i].Timestamp {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestClickstreamShape(t *testing.T) {
	cfg := DefaultClickstream()
	els, truth := Clickstream(cfg)
	if len(truth) != cfg.Users*cfg.SessionsPerUser {
		t.Fatalf("sessions: %d", len(truth))
	}
	// Sorted by timestamp.
	for i := 1; i < len(els); i++ {
		if els[i].Timestamp < els[i-1].Timestamp {
			t.Fatal("events out of order")
		}
	}
	// Every session has at least Enter+Leave and positive duration.
	counts := map[string]int{}
	for _, s := range truth {
		if s.Events < 2 || s.Interval.IsEmpty() {
			t.Fatalf("bad session: %+v", s)
		}
		counts[s.User]++
	}
	if len(counts) != cfg.Users {
		t.Fatalf("users: %d", len(counts))
	}
	// Event count matches session truth.
	total := 0
	for _, s := range truth {
		total += s.Events
	}
	if total != len(els) {
		t.Fatalf("truth events %d != stream events %d", total, len(els))
	}
	// Enter/Leave balance per user.
	streams := map[string]int{}
	for _, el := range els {
		streams[el.Stream]++
	}
	if streams["Enter"] != streams["Leave"] || streams["Enter"] != len(truth) {
		t.Fatalf("enter/leave balance: %v", streams)
	}
}

func TestClickstreamSessionsDisjointPerUser(t *testing.T) {
	_, truth := Clickstream(DefaultClickstream())
	byUser := map[string][]Session{}
	for _, s := range truth {
		byUser[s.User] = append(byUser[s.User], s)
	}
	for user, ss := range byUser {
		for i := 1; i < len(ss); i++ {
			if ss[i-1].Interval.Overlaps(ss[i].Interval) {
				t.Fatalf("user %s sessions overlap: %v %v", user, ss[i-1], ss[i])
			}
		}
	}
}

func TestBuildingShape(t *testing.T) {
	cfg := DefaultBuilding()
	els, truth := Building(cfg)
	if len(truth) != cfg.Visitors*cfg.MovesPerVisitor {
		t.Fatalf("stays: %d", len(truth))
	}
	entries, exits := 0, 0
	for _, el := range els {
		switch el.Stream {
		case "RoomEntry":
			entries++
		case "BuildingExit":
			exits++
		}
	}
	if entries != len(truth) || exits != cfg.Visitors {
		t.Fatalf("entries %d exits %d", entries, exits)
	}
	for i := 1; i < len(els); i++ {
		if els[i].Timestamp < els[i-1].Timestamp {
			t.Fatal("out of order")
		}
	}
}

func TestBuildingTruthNoOverlapAndNoSelfMove(t *testing.T) {
	_, truth := Building(DefaultBuilding())
	byVisitor := map[string][]Stay{}
	for _, s := range truth {
		byVisitor[s.Visitor] = append(byVisitor[s.Visitor], s)
	}
	for v, ss := range byVisitor {
		for i := 1; i < len(ss); i++ {
			if ss[i-1].Interval.Overlaps(ss[i].Interval) {
				t.Fatalf("visitor %s in two rooms: %v %v", v, ss[i-1], ss[i])
			}
			if ss[i-1].Room == ss[i].Room {
				t.Fatalf("visitor %s self-move to %s", v, ss[i].Room)
			}
			if ss[i-1].Interval.End != ss[i].Interval.Start {
				t.Fatalf("visitor %s gap in occupancy", v)
			}
		}
	}
}

func TestTrueRoomAt(t *testing.T) {
	truth := []Stay{
		{Visitor: "v", Room: "a", Interval: temporal.NewInterval(0, 10)},
		{Visitor: "v", Room: "b", Interval: temporal.NewInterval(10, 20)},
	}
	if TrueRoomAt(truth, "v", 5) != "a" || TrueRoomAt(truth, "v", 10) != "b" {
		t.Error("TrueRoomAt")
	}
	if TrueRoomAt(truth, "v", 25) != "" || TrueRoomAt(truth, "x", 5) != "" {
		t.Error("absent cases")
	}
}

func TestEcommerceShape(t *testing.T) {
	cfg := DefaultEcommerce()
	els, truth := Ecommerce(cfg)
	sales, reclass := 0, 0
	for _, el := range els {
		switch el.Stream {
		case "Sale":
			sales++
		case "Reclassify":
			reclass++
		}
	}
	if sales != cfg.Sales {
		t.Fatalf("sales: %d", sales)
	}
	if reclass < cfg.Products { // at least the initial classifications
		t.Fatalf("reclassify events: %d", reclass)
	}
	if len(truth) < cfg.Products {
		t.Fatalf("truth: %d", len(truth))
	}
	for i := 1; i < len(els); i++ {
		if els[i].Timestamp < els[i-1].Timestamp {
			t.Fatal("out of order")
		}
	}
}

func TestEcommerceTruthConsistentWithEvents(t *testing.T) {
	cfg := DefaultEcommerce()
	cfg.Sales = 1000
	els, truth := Ecommerce(cfg)
	// For every sale, the ground-truth class at sale time must equal the
	// latest Reclassify event for that product at or before the sale.
	latest := map[string]string{}
	for _, el := range els {
		switch el.Stream {
		case "Reclassify":
			latest[el.MustGet("product").MustString()] = el.MustGet("class").MustString()
		case "Sale":
			p := el.MustGet("product").MustString()
			want := latest[p]
			got := TrueClassAt(truth, p, el.Timestamp)
			if got != want {
				t.Fatalf("sale %s at %d: truth %q events %q", p, el.Timestamp, got, want)
			}
		}
	}
}

func TestEcommerceNoReclassification(t *testing.T) {
	cfg := DefaultEcommerce()
	cfg.ReclassifyEvery = 0
	cfg.Sales = 100
	els, truth := Ecommerce(cfg)
	reclass := 0
	for _, el := range els {
		if el.Stream == "Reclassify" {
			reclass++
		}
	}
	if reclass != cfg.Products {
		t.Fatalf("only initial classifications expected: %d", reclass)
	}
	if len(truth) != cfg.Products {
		t.Fatalf("truth: %d", len(truth))
	}
}
