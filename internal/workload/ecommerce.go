package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/element"
	"repro/internal/temporal"
)

// E-commerce schemas: Sale events and Reclassify events (the "different
// division of the company" of §3.1 updating the product catalogue).
var (
	// SaleSchema: one product sale.
	SaleSchema = element.NewSchema(
		element.Field{Name: "product", Kind: element.KindString},
		element.Field{Name: "amount", Kind: element.KindFloat},
	)
	// ReclassifySchema: a catalogue update assigning a product to a class.
	ReclassifySchema = element.NewSchema(
		element.Field{Name: "product", Kind: element.KindString},
		element.Field{Name: "class", Kind: element.KindString},
	)
)

// Classification is one ground-truth catalogue interval: the product
// belonged to the class throughout Interval.
type Classification struct {
	Product  string
	Class    string
	Interval temporal.Interval
}

// EcommerceConfig parameterizes the decision-support generator.
type EcommerceConfig struct {
	// Products is the catalogue size.
	Products int
	// Classes is the number of product classes.
	Classes int
	// Sales is the total number of Sale events.
	Sales int
	// MeanInterarrival is the mean time between sales.
	MeanInterarrival temporal.Instant
	// ReclassifyEvery is the mean number of sales between catalogue
	// updates; zero disables reclassification.
	ReclassifyEvery int
	// Seed makes the generation deterministic.
	Seed int64
}

// DefaultEcommerce returns a moderate configuration.
func DefaultEcommerce() EcommerceConfig {
	return EcommerceConfig{
		Products:         100,
		Classes:          10,
		Sales:            5000,
		MeanInterarrival: temporal.FromMillis(200),
		ReclassifyEvery:  50,
		Seed:             1,
	}
}

// Ecommerce generates the interleaved Sale and Reclassify streams plus the
// ground-truth classification timeline. Initial classifications arrive as
// Reclassify events at t=0.
func Ecommerce(cfg EcommerceConfig) ([]*element.Element, []Classification) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var els []*element.Element
	var truth []Classification

	class := make([]int, cfg.Products)
	classStart := make([]temporal.Instant, cfg.Products)
	for p := range class {
		class[p] = rng.Intn(cfg.Classes)
		els = append(els, reclassifyEvent(0, p, class[p]))
	}

	t := temporal.Instant(0)
	for s := 0; s < cfg.Sales; s++ {
		t += expDuration(rng, cfg.MeanInterarrival)
		p := rng.Intn(cfg.Products)
		els = append(els, element.New("Sale", t,
			element.NewTuple(SaleSchema,
				element.String(productName(p)),
				element.Float(1+rng.Float64()*99))))
		if cfg.ReclassifyEvery > 0 && rng.Intn(cfg.ReclassifyEvery) == 0 {
			rp := rng.Intn(cfg.Products)
			next := rng.Intn(cfg.Classes)
			for next == class[rp] && cfg.Classes > 1 {
				next = rng.Intn(cfg.Classes)
			}
			// The update takes effect strictly after the sale at t, so a
			// same-instant sale unambiguously belongs to the old class.
			at := t + 1
			truth = append(truth, Classification{
				Product:  productName(rp),
				Class:    className(class[rp]),
				Interval: temporal.NewInterval(classStart[rp], at),
			})
			class[rp] = next
			classStart[rp] = at
			els = append(els, reclassifyEvent(at, rp, next))
		}
	}
	// Close the open classification intervals.
	for p := range class {
		truth = append(truth, Classification{
			Product:  productName(p),
			Class:    className(class[p]),
			Interval: temporal.Since(classStart[p]),
		})
	}
	element.SortElements(els)
	for i, el := range els {
		el.Seq = uint64(i)
	}
	return els, truth
}

func reclassifyEvent(t temporal.Instant, product, class int) *element.Element {
	return element.New("Reclassify", t,
		element.NewTuple(ReclassifySchema,
			element.String(productName(product)),
			element.String(className(class))))
}

func productName(p int) string { return fmt.Sprintf("product%04d", p) }

func className(c int) string { return fmt.Sprintf("class%02d", c) }

// TrueClassAt returns the ground-truth class of the product at instant t.
func TrueClassAt(truth []Classification, product string, t temporal.Instant) string {
	for _, c := range truth {
		if c.Product == product && c.Interval.Contains(t) {
			return c.Class
		}
	}
	return ""
}
