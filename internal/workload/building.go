package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/element"
	"repro/internal/temporal"
)

// EntrySchema is the schema of RoomEntry and BuildingExit events in the
// security workload.
var EntrySchema = element.NewSchema(
	element.Field{Name: "visitor", Kind: element.KindString},
	element.Field{Name: "room", Kind: element.KindString},
)

// Stay is one ground-truth occupancy: the visitor was in the room
// throughout the interval.
type Stay struct {
	Visitor  string
	Room     string
	Interval temporal.Interval
}

// BuildingConfig parameterizes the security-monitoring generator.
type BuildingConfig struct {
	// Visitors is the number of concurrently tracked visitors.
	Visitors int
	// Rooms is the number of distinct rooms.
	Rooms int
	// MovesPerVisitor is how many room transitions each visitor makes.
	MovesPerVisitor int
	// MeanDwell is the mean time a visitor stays in one room.
	MeanDwell temporal.Instant
	// Seed makes the generation deterministic.
	Seed int64
}

// DefaultBuilding returns a moderate configuration.
func DefaultBuilding() BuildingConfig {
	return BuildingConfig{
		Visitors:        20,
		Rooms:           10,
		MovesPerVisitor: 30,
		MeanDwell:       temporal.FromSeconds(120),
		Seed:            1,
	}
}

// Building generates RoomEntry events (each visitor's random walk through
// the building, ending with a BuildingExit) plus the ground-truth stays.
// The truth is the paper's intended semantics: "the most recent position
// invalidates and updates any previous position of the same visitor" (§1).
func Building(cfg BuildingConfig) ([]*element.Element, []Stay) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var els []*element.Element
	var truth []Stay
	for v := 0; v < cfg.Visitors; v++ {
		visitor := fmt.Sprintf("visitor%03d", v)
		t := temporal.Instant(rng.Int63n(int64(cfg.MeanDwell) + 1))
		room := -1
		for m := 0; m < cfg.MovesPerVisitor; m++ {
			next := rng.Intn(cfg.Rooms)
			for next == room {
				next = rng.Intn(cfg.Rooms)
			}
			room = next
			name := fmt.Sprintf("room%02d", room)
			els = append(els, element.New("RoomEntry", t,
				element.NewTuple(EntrySchema, element.String(visitor), element.String(name))))
			dwell := expDuration(rng, cfg.MeanDwell)
			truth = append(truth, Stay{
				Visitor:  visitor,
				Room:     name,
				Interval: temporal.NewInterval(t, t+dwell),
			})
			t += dwell
		}
		els = append(els, element.New("BuildingExit", t,
			element.NewTuple(EntrySchema, element.String(visitor), element.String("-"))))
	}
	element.SortElements(els)
	for i, el := range els {
		el.Seq = uint64(i)
	}
	return els, truth
}

// TrueRoomAt returns the ground-truth room of the visitor at instant t,
// or "" if the visitor is not in the building.
func TrueRoomAt(truth []Stay, visitor string, t temporal.Instant) string {
	for _, s := range truth {
		if s.Visitor == visitor && s.Interval.Contains(t) {
			return s.Room
		}
	}
	return ""
}
