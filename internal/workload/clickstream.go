// Package workload generates the synthetic event streams for the paper's
// three use cases: click-stream monitoring (§1), building security (§1),
// and the e-commerce decision-support case study (§3.1).
//
// The paper describes these scenarios qualitatively and names no datasets,
// so each generator is a seeded, deterministic synthesizer faithful to the
// prose, and each emits ground truth alongside the events (true sessions,
// true trajectories, true classifications) so experiments can score
// window-based baselines against the explicit-state system.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Click-stream schemas. Enter/Leave delimit a user's visit; Click and
// Purchase happen inside it.
var (
	// ClickSchema is shared by Enter, Leave, and Click events.
	ClickSchema = element.NewSchema(
		element.Field{Name: "visitor", Kind: element.KindString},
		element.Field{Name: "page", Kind: element.KindString},
	)
	// PurchaseSchema extends clicks with an amount.
	PurchaseSchema = element.NewSchema(
		element.Field{Name: "visitor", Kind: element.KindString},
		element.Field{Name: "page", Kind: element.KindString},
		element.Field{Name: "amount", Kind: element.KindFloat},
	)
)

// Session is the ground truth for one user visit.
type Session struct {
	User string
	// Interval spans from the Enter event to just past the Leave event.
	Interval temporal.Interval
	// Events counts all events in the session, including Enter and Leave.
	Events int
}

// ClickstreamConfig parameterizes the click-stream generator.
type ClickstreamConfig struct {
	// Users is the number of distinct visitors.
	Users int
	// SessionsPerUser is the number of visits each user makes.
	SessionsPerUser int
	// MeanEvents is the mean number of clicks inside a session.
	MeanEvents int
	// MeanThink is the mean time between events within a session.
	MeanThink temporal.Instant
	// MeanGap is the mean idle time between a user's sessions.
	MeanGap temporal.Instant
	// PurchaseProb is the probability that a session ends with a purchase.
	PurchaseProb float64
	// Seed makes the generation deterministic.
	Seed int64
}

// DefaultClickstream returns a moderate configuration.
func DefaultClickstream() ClickstreamConfig {
	return ClickstreamConfig{
		Users:           50,
		SessionsPerUser: 4,
		MeanEvents:      8,
		MeanThink:       temporal.FromSeconds(30),
		MeanGap:         temporal.FromSeconds(3600),
		PurchaseProb:    0.3,
		Seed:            1,
	}
}

// Clickstream generates the event stream and its ground-truth sessions.
// Events are returned sorted by timestamp; streams are "Enter", "Click",
// "Purchase", "Leave".
func Clickstream(cfg ClickstreamConfig) ([]*element.Element, []Session) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var els []*element.Element
	var truth []Session
	for u := 0; u < cfg.Users; u++ {
		user := fmt.Sprintf("user%04d", u)
		// Stagger users so sessions interleave.
		t := temporal.Instant(rng.Int63n(int64(cfg.MeanGap) + 1))
		for s := 0; s < cfg.SessionsPerUser; s++ {
			start := t
			events := 2 // enter + leave
			els = append(els, element.New("Enter", t,
				element.NewTuple(ClickSchema, element.String(user), element.String("/"))))
			n := 1 + poissonish(rng, cfg.MeanEvents)
			for i := 0; i < n; i++ {
				t += expDuration(rng, cfg.MeanThink)
				page := fmt.Sprintf("/p/%d", rng.Intn(100))
				els = append(els, element.New("Click", t,
					element.NewTuple(ClickSchema, element.String(user), element.String(page))))
				events++
			}
			if rng.Float64() < cfg.PurchaseProb {
				t += expDuration(rng, cfg.MeanThink)
				els = append(els, element.New("Purchase", t,
					element.NewTuple(PurchaseSchema, element.String(user), element.String("/cart"),
						element.Float(1+rng.Float64()*99))))
				events++
			}
			t += expDuration(rng, cfg.MeanThink)
			els = append(els, element.New("Leave", t,
				element.NewTuple(ClickSchema, element.String(user), element.String("/"))))
			truth = append(truth, Session{
				User:     user,
				Interval: temporal.NewInterval(start, t+1),
				Events:   events,
			})
			t += expDuration(rng, cfg.MeanGap)
		}
	}
	element.SortElements(els)
	for i, el := range els {
		el.Seq = uint64(i)
	}
	return els, truth
}

// expDuration draws an exponentially distributed duration with the given
// mean, floored at 1ns so time always advances.
func expDuration(rng *rand.Rand, mean temporal.Instant) temporal.Instant {
	d := temporal.Instant(rng.ExpFloat64() * float64(mean))
	if d < 1 {
		return 1
	}
	return d
}

// poissonish draws a small non-negative integer with the given mean using
// a clamped normal approximation — adequate for workload shaping.
func poissonish(rng *rand.Rand, mean int) int {
	n := int(rng.NormFloat64()*float64(mean)/3) + mean
	if n < 0 {
		return 0
	}
	return n
}
