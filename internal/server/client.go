package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/element"
	"repro/internal/query"
	"repro/internal/temporal"
)

// Client queries a remote state service.
type Client struct {
	// BaseURL is the service root, e.g. "http://host:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Query runs a temporal query remotely and returns the result table.
func (c *Client) Query(q string) (*query.Result, error) {
	body, err := json.Marshal(queryRequest{Query: q})
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Post(c.BaseURL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("server: query: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("server: query failed (%d): %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var wire queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return nil, fmt.Errorf("server: decode: %w", err)
	}
	out := &query.Result{Columns: wire.Columns}
	for _, row := range wire.Rows {
		vals := make([]element.Value, len(row))
		for i, wv := range row {
			vals[i] = wv.Value()
		}
		out.Rows = append(out.Rows, vals)
	}
	return out, nil
}

// Current fetches the current fact for (entity, attr) from the remote
// store.
func (c *Client) Current(entity, attr string) (*element.Fact, bool, error) {
	return c.fact(fmt.Sprintf("%s/fact?entity=%s&attr=%s", c.BaseURL, entity, attr))
}

// ValidAt fetches the fact valid at t for (entity, attr).
func (c *Client) ValidAt(entity, attr string, t temporal.Instant) (*element.Fact, bool, error) {
	return c.fact(fmt.Sprintf("%s/fact?entity=%s&attr=%s&at=%d", c.BaseURL, entity, attr, int64(t)))
}

// AsOf fetches the version of (entity, attr) the remote store believed at
// transaction time systime about valid time at — the wire form of a
// state.AsOfValidTime + state.AsOfTransactionTime read. Retroactive
// corrections the remote store recorded after systime are invisible.
func (c *Client) AsOf(entity, attr string, at, systime temporal.Instant) (*element.Fact, bool, error) {
	return c.fact(fmt.Sprintf("%s/fact?entity=%s&attr=%s&at=%d&systime=%d",
		c.BaseURL, entity, attr, int64(at), int64(systime)))
}

// CurrentAsOf fetches the open version of (entity, attr) as believed at
// transaction time systime (no valid-time selector).
func (c *Client) CurrentAsOf(entity, attr string, systime temporal.Instant) (*element.Fact, bool, error) {
	return c.fact(fmt.Sprintf("%s/fact?entity=%s&attr=%s&systime=%d",
		c.BaseURL, entity, attr, int64(systime)))
}

func (c *Client) fact(url string) (*element.Fact, bool, error) {
	resp, err := c.http().Get(url)
	if err != nil {
		return nil, false, fmt.Errorf("server: fact: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, false, fmt.Errorf("server: fact failed (%d): %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var fr factResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		return nil, false, fmt.Errorf("server: decode: %w", err)
	}
	if !fr.Found {
		return nil, false, nil
	}
	f := element.NewFact(fr.Fact.Entity, fr.Fact.Attribute, fr.Fact.Value.Value(),
		temporal.NewInterval(temporal.Instant(fr.Fact.Start), temporal.Instant(fr.Fact.End)))
	f.Derived = fr.Fact.Derived
	f.Source = fr.Fact.Source
	// The current wire format always carries the transaction-time
	// interval, and a found point read's superseded is always Forever
	// (pinned reads restore post-pin supersessions to open), never 0. A
	// zero therefore means the payload predates the bitemporal fields —
	// keep NewFact's defaults rather than fabricating an empty belief.
	if fr.Fact.Superseded != 0 {
		f.RecordedAt = temporal.Instant(fr.Fact.Recorded)
		f.SupersededAt = temporal.Instant(fr.Fact.Superseded)
	}
	return f, true, nil
}

// Stats fetches remote store occupancy. The endpoint also carries
// non-scalar rows (segments_per_level is a per-level array); those are
// skipped here — this accessor keeps its flat counter contract, and
// callers wanting the full shape can GET /stats themselves.
func (c *Client) Stats() (map[string]int, error) {
	resp, err := c.http().Get(c.BaseURL + "/stats")
	if err != nil {
		return nil, fmt.Errorf("server: stats: %w", err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, fmt.Errorf("server: decode: %w", err)
	}
	out := make(map[string]int, len(raw))
	for k, v := range raw {
		var n int
		if err := json.Unmarshal(v, &n); err == nil {
			out[k] = n
		}
	}
	return out, nil
}

// RemoteState adapts a Client to the lookup shape gates use, so one
// engine's stream processing can be conditioned on another engine's
// state (the §3.2 interoperability scenario). Lookups are synchronous
// HTTP round trips; cache in front if the remote state changes slowly.
type RemoteState struct {
	Client *Client
}

// Lookup returns the current remote value of attr(entity).
func (r *RemoteState) Lookup(attr string, entity element.Value) (element.Value, bool) {
	f, ok, err := r.Client.Current(entity.String(), attr)
	if err != nil || !ok {
		return element.Null, false
	}
	return f.Value, true
}
