// Package server exposes a state repository over HTTP, realizing the
// interoperability benefit of §3.2: "queryable state can promote
// interoperability, since stream processing systems can expose their
// state and query the state of other systems."
//
// The service is deliberately small and schemaless: one query endpoint
// accepting the temporal query language of internal/query, plus point
// lookup and stats endpoints. A matching Client provides programmatic
// access, and RemoteStore adapts a remote service to the same lookup
// shape engines use locally — one engine's gates can therefore consult
// another engine's state.
//
// Endpoints:
//
//	POST /query        {"query": "SELECT ..."}          → {"columns": [...], "rows": [[...]]}
//	POST /query?explain=1 (same body)                   → physical plan JSON, no execution
//	GET  /fact?entity=E&attr=A[&at=NANOS][&systime=NANOS] → {"found": true, "fact": {...}}
//	GET  /stats                                         → {"keys": n, "versions": n, ...}
//	GET  /subscribe?entity=E&attr=A&stream=S&query=Q    → Server-Sent Events push stream
//	GET  /subscribe/ws (same parameters)                → WebSocket push stream
//	GET  /healthz                                       → 200 ok (liveness: the process serves HTTP)
//	GET  /readyz                                        → readiness: 503 when overloaded, 200 with a
//	                                                      warning while durability is degraded
//
// The server protects itself under load: MaxInFlight bounds admitted
// /query and /fact requests (excess requests are shed with 429 and
// Retry-After before any snapshot pin), RequestTimeout bounds each
// request's execution (exceeding it aborts the scan and returns 504),
// and StreamWriteTimeout bounds every SSE/WebSocket write so stalled
// consumers release their goroutines.
//
// Servers built with NewForEngine additionally push state: clients
// subscribe with a filter (or a continuous SELECT) and receive one JSON
// delivery per watermark whose batch touched it, with bounded queues and
// drop-and-resync semantics for slow consumers (see internal/subscribe).
//
// Both read endpoints are bitemporal: `at` selects by valid time and
// `systime` pins the belief (transaction time) — the wire form of
// state.AsOfTransactionTime, so remote callers can ask "what did this
// store believe at tt" and retroactive corrections recorded after tt
// stay invisible. Queries may equivalently use the SYSTEM TIME ASOF
// clause. Queries are served from a snapshot handle pinned on arrival —
// one consistent lock-free cut, so remote analytical reads never stall
// the engine ingesting into the same store — while point reads resolve
// against the atomically published head of their single lineage, which
// needs no cross-shard pin.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/reason"
	"repro/internal/state"
	"repro/internal/subscribe"
	"repro/internal/temporal"
)

// Server serves one state repository over HTTP.
type Server struct {
	store    *state.Store
	reasoner *reason.Reasoner // optional: enables WITH INFERENCE remotely
	// engine and broker are set by NewForEngine; they enable the
	// /subscribe endpoints and the engine-level stats fields.
	engine *core.Engine
	broker *subscribe.Broker
	// NowFunc anchors now() in received queries; defaults to the largest
	// validity start in the store.
	NowFunc func() temporal.Instant
	// MaxInFlight bounds concurrently admitted /query and /fact
	// requests. Excess requests are shed immediately with 429 and a
	// Retry-After header — before any snapshot pin or scan, so an
	// overloaded server degrades by refusing work, not by queueing it.
	// Zero (the default) means unbounded. Set before serving.
	MaxInFlight int
	// RequestTimeout bounds one /query or /fact request. The deadline
	// flows through query execution as a context: a scan that outlives
	// it aborts between row batches and the client receives 504. Zero
	// (the default) means no server-imposed deadline. Set before serving.
	RequestTimeout time.Duration
	// StreamWriteTimeout bounds each write on the streaming transports
	// (SSE and WebSocket), so a dead or stalled client releases its
	// subscriber goroutine instead of pinning it forever. Defaults to
	// 30s; zero disables the deadline. Set before serving.
	StreamWriteTimeout time.Duration
	// inflight/shed drive the admission gate and its /stats counters.
	inflight metrics.Gauge
	shed     metrics.Counter
	mux      *http.ServeMux
	// plans caches prepared queries by source text, so repeated /query
	// requests skip parsing and planning.
	plans *planCache
}

// New builds a server over the store. The reasoner may be nil.
func New(store *state.Store, reasoner *reason.Reasoner) *Server {
	s := &Server{
		store:              store,
		reasoner:           reasoner,
		plans:              newPlanCache(defaultPlanCacheSize),
		StreamWriteTimeout: 30 * time.Second,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/fact", s.handleFact)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("/subscribe/ws", s.handleSubscribeWS)
	// /healthz is pure liveness: the process is up and serving HTTP.
	// Readiness — should this replica receive traffic — is /readyz.
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", s.handleReady)
	return s
}

// admit runs the admission gate for one request. When the in-flight
// bound is exceeded it sheds the request — 429 with Retry-After, before
// any snapshot pin or scan — and returns ok=false. Otherwise the caller
// must defer release.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	s.inflight.Add(1)
	if s.MaxInFlight > 0 && s.inflight.Value() > int64(s.MaxInFlight) {
		s.inflight.Add(-1)
		s.shed.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server overloaded, retry later", http.StatusTooManyRequests)
		return nil, false
	}
	return func() { s.inflight.Add(-1) }, true
}

// requestCtx derives the request context, applying RequestTimeout.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.RequestTimeout)
}

// handleReady is the readiness probe. Overload (admission gate at
// capacity) is not-ready: the replica should be pulled from rotation
// until load drains. Degraded durability is ready-with-warning: the
// engine still ingests and serves RAM reads, so traffic keeps flowing
// while operators act on the warning.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	type readiness struct {
		Ready   bool   `json:"ready"`
		Reason  string `json:"reason,omitempty"`
		Warning string `json:"warning,omitempty"`
	}
	if s.MaxInFlight > 0 && s.inflight.Value() >= int64(s.MaxInFlight) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(readiness{Ready: false, Reason: "overloaded"})
		return
	}
	resp := readiness{Ready: true}
	if s.engine != nil {
		if h := s.engine.Health(); !h.Healthy() {
			switch {
			case h.Degraded != nil:
				resp.Warning = "durability degraded: " + h.Degraded.Cause.Error()
			case h.DurableErr != nil:
				resp.Warning = "durable layer unavailable: " + h.DurableErr.Error()
			}
		}
	}
	writeJSON(w, resp)
}

// NewForEngine builds a server over a live engine: everything New
// provides, plus push subscriptions (/subscribe, /subscribe/ws) fed by a
// broker tapping the engine's watermark batches, engine-level stats
// fields, and now() anchored at the engine watermark. Register before
// ingestion starts, like any watermark hook.
func NewForEngine(e *core.Engine, reasoner *reason.Reasoner) *Server {
	s := New(e.Store(), reasoner)
	s.engine = e
	s.broker = subscribe.NewBroker(e)
	s.NowFunc = e.Watermark
	return s
}

// Broker exposes the subscription broker (nil unless NewForEngine), for
// in-process subscribers and metrics scraping.
func (s *Server) Broker() *subscribe.Broker { return s.broker }

// Close releases the subscription broker, closing every connected
// subscriber. The store and engine are not touched.
func (s *Server) Close() {
	if s.broker != nil {
		s.broker.Close()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) now() temporal.Instant {
	if s.NowFunc != nil {
		return s.NowFunc()
	}
	var horizon temporal.Instant
	for _, f := range s.store.CurrentAll() {
		if f.Validity.Start > horizon {
			horizon = f.Validity.Start
		}
	}
	return horizon + 1
}

// queryRequest is the POST /query body.
type queryRequest struct {
	Query string `json:"query"`
}

// queryResponse is the POST /query reply.
type queryResponse struct {
	Columns []string      `json:"columns"`
	Rows    [][]wireValue `json:"rows"`
}

// wireValue is the JSON encoding of one element.Value with its kind.
type wireValue struct {
	Kind   string  `json:"kind"`
	Bool   bool    `json:"bool,omitempty"`
	Int    int64   `json:"int,omitempty"`
	Float  float64 `json:"float,omitempty"`
	String string  `json:"string,omitempty"`
	Time   int64   `json:"time,omitempty"`
}

func toWire(v element.Value) wireValue {
	switch v.Kind() {
	case element.KindBool:
		b, _ := v.AsBool()
		return wireValue{Kind: "bool", Bool: b}
	case element.KindInt:
		i, _ := v.AsInt()
		return wireValue{Kind: "int", Int: i}
	case element.KindFloat:
		f, _ := v.AsFloat()
		return wireValue{Kind: "float", Float: f}
	case element.KindString:
		s, _ := v.AsString()
		return wireValue{Kind: "string", String: s}
	case element.KindTime:
		t, _ := v.AsTime()
		return wireValue{Kind: "time", Time: int64(t)}
	}
	return wireValue{Kind: "null"}
}

// Value converts the wire encoding back to an element.Value.
func (w wireValue) Value() element.Value {
	switch w.Kind {
	case "bool":
		return element.Bool(w.Bool)
	case "int":
		return element.Int(w.Int)
	case "float":
		return element.Float(w.Float)
	case "string":
		return element.String(w.String)
	case "time":
		return element.Time(temporal.Instant(w.Time))
	}
	return element.Null
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	explain := false
	if raw := r.URL.Query().Get("explain"); raw != "" {
		v, err := strconv.ParseBool(raw)
		if err != nil {
			http.Error(w, "bad explain: "+err.Error(), http.StatusBadRequest)
			return
		}
		explain = v
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Prepared handles are cached by source text: a repeated query skips
	// parsing and planning entirely.
	p, err := s.plans.get(req.Query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if explain {
		// The plan is static — no store access, no snapshot pin.
		writeJSON(w, p.Explain())
		return
	}
	// Pin one consistent cut for the whole query: the evaluation takes no
	// shard locks, so a slow remote query cannot stall local writers.
	res, err := p.Exec(query.ExecEnv{Store: s.store.Snapshot(), Reasoner: s.reasoner, Now: s.now(), Ctx: ctx})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
			return
		}
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	resp := queryResponse{Columns: res.Columns}
	for _, row := range res.Rows {
		wr := make([]wireValue, len(row))
		for i, v := range row {
			wr[i] = toWire(v)
		}
		resp.Rows = append(resp.Rows, wr)
	}
	writeJSON(w, resp)
}

// wireFact is the JSON encoding of a fact. Recorded and Superseded carry
// the transaction-time interval, so remote callers can audit when the
// version entered the belief and when (if ever) a correction revised it.
type wireFact struct {
	Entity     string    `json:"entity"`
	Attribute  string    `json:"attribute"`
	Value      wireValue `json:"value"`
	Start      int64     `json:"start"`
	End        int64     `json:"end"`
	Recorded   int64     `json:"recorded"`
	Superseded int64     `json:"superseded"`
	Derived    bool      `json:"derived,omitempty"`
	Source     string    `json:"source,omitempty"`
}

type factResponse struct {
	Found bool      `json:"found"`
	Fact  *wireFact `json:"fact,omitempty"`
}

// instantParam parses an optional int64 nanosecond query parameter.
func instantParam(r *http.Request, name string) (temporal.Instant, bool, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, false, nil
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad %s: %w", name, err)
	}
	return temporal.Instant(n), true, nil
}

func (s *Server) handleFact(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	entity := r.URL.Query().Get("entity")
	attr := r.URL.Query().Get("attr")
	if entity == "" || attr == "" {
		http.Error(w, "entity and attr are required", http.StatusBadRequest)
		return
	}
	at, hasAt, err := instantParam(r, "at")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	systime, hasSystime, err := instantParam(r, "systime")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var opts []state.ReadOpt
	if hasAt {
		opts = append(opts, state.AsOfValidTime(at))
	}
	if hasSystime {
		opts = append(opts, state.AsOfTransactionTime(systime))
	}
	// The point read itself is fast; the deadline check here covers a
	// request that spent its whole budget queued behind the gate.
	if err := ctx.Err(); err != nil {
		http.Error(w, "request deadline exceeded", http.StatusGatewayTimeout)
		return
	}
	// A point read resolves against one atomically published head: it
	// needs no cross-shard snapshot pin, so skip the barrier Snapshot()
	// would run.
	f, found := s.store.Find(entity, attr, opts...)
	resp := factResponse{Found: found}
	if found {
		resp.Fact = &wireFact{
			Entity: f.Entity, Attribute: f.Attribute, Value: toWire(f.Value),
			Start: int64(f.Validity.Start), End: int64(f.Validity.End),
			Recorded: int64(f.RecordedAt), Superseded: int64(f.SupersededAt),
			Derived: f.Derived, Source: f.Source,
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.store.Stats()
	out := map[string]any{
		"keys":       st.Keys,
		"versions":   st.Versions,
		"current":    st.Current,
		"attributes": st.Attributes,
		"records":    st.Records,
		"superseded": st.Superseded,
		"shards":     st.Shards,
		// Prepared-query cache effectiveness: misses planned vs hits served.
		"queries_prepared": int(s.plans.prepared.Load()),
		"plan_cache_hits":  int(s.plans.hits.Load()),
		// Overload-protection counters: requests currently admitted and
		// requests shed at the gate (429) since start.
		"inflight_requests": int(s.inflight.Value()),
		"shed_requests":     int(s.shed.Value()),
	}
	if s.engine != nil {
		out["emitted"] = len(s.engine.Emitted())
		out["watermark"] = int(s.engine.Watermark())
		if s.broker != nil {
			out["subscribers"] = s.broker.Metrics().Subscribers
		}
		// Durability posture: degraded flag plus the flush-retry count,
		// mirroring segment.Store.Info for remote operators.
		h := s.engine.Health()
		degraded := 0
		if h.Degraded != nil {
			degraded = 1
		}
		out["degraded"] = degraded
		if d := s.engine.Durable(); d != nil {
			info := d.Info()
			out["flush_retries"] = int(info.FlushRetries)
			// Compaction and segmented-WAL posture: segment count per
			// level (index 0 = freshly flushed), bytes reclaimed by
			// merges so far, and the WAL chain's live/dropped file
			// counts — the runbook reads these to tell "compaction is
			// keeping up" from "the chain is growing unbounded".
			perLevel := info.SegmentsPerLevel
			if perLevel == nil {
				perLevel = []int{} // encode an empty catalog as [], not null
			}
			out["segments_per_level"] = perLevel
			out["merge_bytes_reclaimed"] = int(info.MergeBytesReclaimed)
			out["wal_files"] = info.WALFiles
			out["dropped_wal_files"] = info.DroppedWALFiles
			// Residency posture: how much of the state lives in RAM vs
			// durable frames, and how many frames scans have pulled cold —
			// the out-of-core runbook reads these to tell "the budget is
			// holding" from "the working set is thrashing".
			out["resident_lineages"] = info.ResidentLineages
			out["evicted_lineages"] = info.EvictedLineages
			out["cold_scan_frames"] = int(info.ScanFrames)
			out["scan_frames_pruned"] = int(info.ScanFramesPruned)
		}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
