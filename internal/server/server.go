// Package server exposes a state repository over HTTP, realizing the
// interoperability benefit of §3.2: "queryable state can promote
// interoperability, since stream processing systems can expose their
// state and query the state of other systems."
//
// The service is deliberately small and schemaless: one query endpoint
// accepting the temporal query language of internal/query, plus point
// lookup and stats endpoints. A matching Client provides programmatic
// access, and RemoteStore adapts a remote service to the same lookup
// shape engines use locally — one engine's gates can therefore consult
// another engine's state.
//
// Endpoints:
//
//	POST /query        {"query": "SELECT ..."}          → {"columns": [...], "rows": [[...]]}
//	POST /query?explain=1 (same body)                   → physical plan JSON, no execution
//	GET  /fact?entity=E&attr=A[&at=NANOS][&systime=NANOS] → {"found": true, "fact": {...}}
//	GET  /stats                                         → {"keys": n, "versions": n, ...}
//	GET  /subscribe?entity=E&attr=A&stream=S&query=Q    → Server-Sent Events push stream
//	GET  /subscribe/ws (same parameters)                → WebSocket push stream
//	GET  /healthz                                       → 200 ok
//
// Servers built with NewForEngine additionally push state: clients
// subscribe with a filter (or a continuous SELECT) and receive one JSON
// delivery per watermark whose batch touched it, with bounded queues and
// drop-and-resync semantics for slow consumers (see internal/subscribe).
//
// Both read endpoints are bitemporal: `at` selects by valid time and
// `systime` pins the belief (transaction time) — the wire form of
// state.AsOfTransactionTime, so remote callers can ask "what did this
// store believe at tt" and retroactive corrections recorded after tt
// stay invisible. Queries may equivalently use the SYSTEM TIME ASOF
// clause. Queries are served from a snapshot handle pinned on arrival —
// one consistent lock-free cut, so remote analytical reads never stall
// the engine ingesting into the same store — while point reads resolve
// against the atomically published head of their single lineage, which
// needs no cross-shard pin.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/query"
	"repro/internal/reason"
	"repro/internal/state"
	"repro/internal/subscribe"
	"repro/internal/temporal"
)

// Server serves one state repository over HTTP.
type Server struct {
	store    *state.Store
	reasoner *reason.Reasoner // optional: enables WITH INFERENCE remotely
	// engine and broker are set by NewForEngine; they enable the
	// /subscribe endpoints and the engine-level stats fields.
	engine *core.Engine
	broker *subscribe.Broker
	// NowFunc anchors now() in received queries; defaults to the largest
	// validity start in the store.
	NowFunc func() temporal.Instant
	mux     *http.ServeMux
	// plans caches prepared queries by source text, so repeated /query
	// requests skip parsing and planning.
	plans *planCache
}

// New builds a server over the store. The reasoner may be nil.
func New(store *state.Store, reasoner *reason.Reasoner) *Server {
	s := &Server{store: store, reasoner: reasoner, plans: newPlanCache(defaultPlanCacheSize)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/fact", s.handleFact)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("/subscribe/ws", s.handleSubscribeWS)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// NewForEngine builds a server over a live engine: everything New
// provides, plus push subscriptions (/subscribe, /subscribe/ws) fed by a
// broker tapping the engine's watermark batches, engine-level stats
// fields, and now() anchored at the engine watermark. Register before
// ingestion starts, like any watermark hook.
func NewForEngine(e *core.Engine, reasoner *reason.Reasoner) *Server {
	s := New(e.Store(), reasoner)
	s.engine = e
	s.broker = subscribe.NewBroker(e)
	s.NowFunc = e.Watermark
	return s
}

// Broker exposes the subscription broker (nil unless NewForEngine), for
// in-process subscribers and metrics scraping.
func (s *Server) Broker() *subscribe.Broker { return s.broker }

// Close releases the subscription broker, closing every connected
// subscriber. The store and engine are not touched.
func (s *Server) Close() {
	if s.broker != nil {
		s.broker.Close()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) now() temporal.Instant {
	if s.NowFunc != nil {
		return s.NowFunc()
	}
	var horizon temporal.Instant
	for _, f := range s.store.CurrentAll() {
		if f.Validity.Start > horizon {
			horizon = f.Validity.Start
		}
	}
	return horizon + 1
}

// queryRequest is the POST /query body.
type queryRequest struct {
	Query string `json:"query"`
}

// queryResponse is the POST /query reply.
type queryResponse struct {
	Columns []string      `json:"columns"`
	Rows    [][]wireValue `json:"rows"`
}

// wireValue is the JSON encoding of one element.Value with its kind.
type wireValue struct {
	Kind   string  `json:"kind"`
	Bool   bool    `json:"bool,omitempty"`
	Int    int64   `json:"int,omitempty"`
	Float  float64 `json:"float,omitempty"`
	String string  `json:"string,omitempty"`
	Time   int64   `json:"time,omitempty"`
}

func toWire(v element.Value) wireValue {
	switch v.Kind() {
	case element.KindBool:
		b, _ := v.AsBool()
		return wireValue{Kind: "bool", Bool: b}
	case element.KindInt:
		i, _ := v.AsInt()
		return wireValue{Kind: "int", Int: i}
	case element.KindFloat:
		f, _ := v.AsFloat()
		return wireValue{Kind: "float", Float: f}
	case element.KindString:
		s, _ := v.AsString()
		return wireValue{Kind: "string", String: s}
	case element.KindTime:
		t, _ := v.AsTime()
		return wireValue{Kind: "time", Time: int64(t)}
	}
	return wireValue{Kind: "null"}
}

// Value converts the wire encoding back to an element.Value.
func (w wireValue) Value() element.Value {
	switch w.Kind {
	case "bool":
		return element.Bool(w.Bool)
	case "int":
		return element.Int(w.Int)
	case "float":
		return element.Float(w.Float)
	case "string":
		return element.String(w.String)
	case "time":
		return element.Time(temporal.Instant(w.Time))
	}
	return element.Null
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	explain := false
	if raw := r.URL.Query().Get("explain"); raw != "" {
		v, err := strconv.ParseBool(raw)
		if err != nil {
			http.Error(w, "bad explain: "+err.Error(), http.StatusBadRequest)
			return
		}
		explain = v
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Prepared handles are cached by source text: a repeated query skips
	// parsing and planning entirely.
	p, err := s.plans.get(req.Query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if explain {
		// The plan is static — no store access, no snapshot pin.
		writeJSON(w, p.Explain())
		return
	}
	// Pin one consistent cut for the whole query: the evaluation takes no
	// shard locks, so a slow remote query cannot stall local writers.
	res, err := p.Exec(query.ExecEnv{Store: s.store.Snapshot(), Reasoner: s.reasoner, Now: s.now()})
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	resp := queryResponse{Columns: res.Columns}
	for _, row := range res.Rows {
		wr := make([]wireValue, len(row))
		for i, v := range row {
			wr[i] = toWire(v)
		}
		resp.Rows = append(resp.Rows, wr)
	}
	writeJSON(w, resp)
}

// wireFact is the JSON encoding of a fact. Recorded and Superseded carry
// the transaction-time interval, so remote callers can audit when the
// version entered the belief and when (if ever) a correction revised it.
type wireFact struct {
	Entity     string    `json:"entity"`
	Attribute  string    `json:"attribute"`
	Value      wireValue `json:"value"`
	Start      int64     `json:"start"`
	End        int64     `json:"end"`
	Recorded   int64     `json:"recorded"`
	Superseded int64     `json:"superseded"`
	Derived    bool      `json:"derived,omitempty"`
	Source     string    `json:"source,omitempty"`
}

type factResponse struct {
	Found bool      `json:"found"`
	Fact  *wireFact `json:"fact,omitempty"`
}

// instantParam parses an optional int64 nanosecond query parameter.
func instantParam(r *http.Request, name string) (temporal.Instant, bool, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, false, nil
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad %s: %w", name, err)
	}
	return temporal.Instant(n), true, nil
}

func (s *Server) handleFact(w http.ResponseWriter, r *http.Request) {
	entity := r.URL.Query().Get("entity")
	attr := r.URL.Query().Get("attr")
	if entity == "" || attr == "" {
		http.Error(w, "entity and attr are required", http.StatusBadRequest)
		return
	}
	at, hasAt, err := instantParam(r, "at")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	systime, hasSystime, err := instantParam(r, "systime")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var opts []state.ReadOpt
	if hasAt {
		opts = append(opts, state.AsOfValidTime(at))
	}
	if hasSystime {
		opts = append(opts, state.AsOfTransactionTime(systime))
	}
	// A point read resolves against one atomically published head: it
	// needs no cross-shard snapshot pin, so skip the barrier Snapshot()
	// would run.
	f, ok := s.store.Find(entity, attr, opts...)
	resp := factResponse{Found: ok}
	if ok {
		resp.Fact = &wireFact{
			Entity: f.Entity, Attribute: f.Attribute, Value: toWire(f.Value),
			Start: int64(f.Validity.Start), End: int64(f.Validity.End),
			Recorded: int64(f.RecordedAt), Superseded: int64(f.SupersededAt),
			Derived: f.Derived, Source: f.Source,
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.store.Stats()
	out := map[string]int{
		"keys":       st.Keys,
		"versions":   st.Versions,
		"current":    st.Current,
		"attributes": st.Attributes,
		"records":    st.Records,
		"superseded": st.Superseded,
		"shards":     st.Shards,
		// Prepared-query cache effectiveness: misses planned vs hits served.
		"queries_prepared": int(s.plans.prepared.Load()),
		"plan_cache_hits":  int(s.plans.hits.Load()),
	}
	if s.engine != nil {
		out["emitted"] = len(s.engine.Emitted())
		out["watermark"] = int(s.engine.Watermark())
		if s.broker != nil {
			out["subscribers"] = s.broker.Metrics().Subscribers
		}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
