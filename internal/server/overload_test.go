package server

// Overload-protection and health-surface tests: the admission gate
// (429 + Retry-After before any work), per-request deadlines (504),
// the liveness/readiness split, and the degraded-durability warning
// and counters — named to ride in the CI chaos job.

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/state/segment"
	"repro/internal/vfs"
)

// TestOverloadAdmissionGateSheds: with the gate at capacity, /query and
// /fact shed immediately with 429 + Retry-After, /readyz flips to 503,
// and the shed counter surfaces in /stats. Releasing the slot restores
// readiness.
func TestOverloadAdmissionGateSheds(t *testing.T) {
	st := state.NewStore()
	st.Put("ann", "position", element.String("hall"), 10)
	s := New(st, nil)
	s.MaxInFlight = 1

	// Occupy the single slot as an in-flight request would.
	release, ok := s.admit(httptest.NewRecorder())
	if !ok {
		t.Fatalf("first admission must pass")
	}

	for _, target := range []struct{ method, url, body string }{
		{http.MethodPost, "/query", `{"query":"SELECT entity FROM position"}`},
		{http.MethodGet, "/fact?entity=ann&attr=position", ""},
	} {
		req := httptest.NewRequest(target.method, target.url, strings.NewReader(target.body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("%s at capacity: want 429, got %d", target.url, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%s shed response must carry Retry-After", target.url)
		}
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded /readyz: want 503, got %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	// /stats mixes scalar counters with array-valued rows
	// (segments_per_level), so decode just the fields under test.
	var stats struct {
		Shed     int `json:"shed_requests"`
		Inflight int `json:"inflight_requests"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Shed != 2 || stats.Inflight != 1 {
		t.Fatalf("stats counters: shed=%d inflight=%d", stats.Shed, stats.Inflight)
	}

	// /healthz is liveness: it stays 200 throughout the overload.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz must stay alive under overload, got %d", rec.Code)
	}

	release()
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("drained /readyz: want 200, got %d", rec.Code)
	}
}

// TestOverloadRequestDeadline: a request that outlives RequestTimeout
// aborts with 504 instead of running the scan to completion.
func TestOverloadRequestDeadline(t *testing.T) {
	st := state.NewStore()
	st.Put("ann", "position", element.String("hall"), 10)
	s := New(st, nil)
	s.RequestTimeout = time.Nanosecond // expired before execution starts

	req := httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"query":"SELECT entity FROM position"}`))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired query: want 504, got %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/fact?entity=ann&attr=position", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired fact read: want 504, got %d", rec.Code)
	}

	// A generous deadline serves normally.
	s.RequestTimeout = time.Minute
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"query":"SELECT entity FROM position"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("in-deadline query: want 200, got %d: %s", rec.Code, rec.Body.String())
	}
}

// TestDegradedReadyzWarnsAndStats: a degraded durable layer keeps the
// replica ready — traffic still flows — but /readyz carries the warning
// and /stats reports degraded=1; after Resume both clear.
func TestDegradedReadyzWarnsAndStats(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.OS)
	ffs.AddRule(vfs.Rule{Op: vfs.OpCreate, Path: "seg-*.seg", Count: 1,
		Err: vfs.Permanent(errors.New("medium error"))})
	e := core.New(core.WithDurableDir(t.TempDir(),
		segment.WithFS(ffs), segment.WithFlushEvery(1),
		segment.WithRetryPolicy(segment.RetryPolicy{MaxRetries: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})))
	defer e.Close()
	s := NewForEngine(e, nil)
	defer s.Close()

	d := e.Durable()
	if d == nil {
		t.Fatalf("engine must have a durable layer")
	}
	if err := d.Mem().Put("ann", "position", element.String("hall"), 10); err != nil {
		t.Fatalf("put: %v", err)
	}
	d.Pulse(d.Mem().Snapshot().At())
	deadline := time.Now().Add(5 * time.Second)
	for d.Degraded() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for the store to degrade")
		}
		time.Sleep(time.Millisecond)
	}

	readiness := func() (int, map[string]any) {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		var body map[string]any
		if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
			t.Fatalf("readyz body: %v", err)
		}
		return rec.Code, body
	}
	code, body := readiness()
	if code != http.StatusOK || body["ready"] != true {
		t.Fatalf("degraded replica must stay ready: code=%d body=%v", code, body)
	}
	if w, _ := body["warning"].(string); !strings.Contains(w, "degraded") {
		t.Fatalf("degraded /readyz must warn, got %v", body)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats struct {
		Degraded int `json:"degraded"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Degraded != 1 {
		t.Fatalf("stats must report degraded=1, got %d", stats.Degraded)
	}

	// The fault script is exhausted: Resume heals, warning clears.
	if err := d.Resume(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if code, body = readiness(); code != http.StatusOK || body["warning"] != nil {
		t.Fatalf("healed /readyz must drop the warning: code=%d body=%v", code, body)
	}

	if hc := e.Health(); !hc.Healthy() {
		t.Fatalf("engine health must be clean after resume: %+v", hc)
	}
}
