// Client half of the subscription surface: Client.Subscribe opens the
// SSE stream and decodes its events back into domain types, tracking the
// last-seen watermark so a dropped connection can resume with
// Subscription.Resubscribe — the server answers a stale cursor with one
// resync catch-up instead of a silent gap.

package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/element"
	"repro/internal/query"
	"repro/internal/temporal"
)

// SubscribeOptions selects what a subscription receives; the zero value
// subscribes to everything. Fields mirror subscribe.Filter.
type SubscribeOptions struct {
	// Entity/Attr restrict state-change deliveries; Stream restricts
	// emitted-element deliveries. Setting any implies the matching class.
	Entity, Attr, Stream string
	// Changes/Emitted opt into delivery classes explicitly.
	Changes, Emitted bool
	// Query is a continuous SELECT re-evaluated per watermark.
	Query string
	// QueueLen overrides the server-side per-client queue bound (0 = default).
	QueueLen int
	// Cursor resumes from a last-seen watermark when HasCursor is set.
	Cursor    temporal.Instant
	HasCursor bool
}

// EventChange is one decoded state transition.
type EventChange struct {
	// Kind is "asserted" or "terminated".
	Kind string
	// At is the transaction time of the transition.
	At temporal.Instant
	// Fact is the affected version.
	Fact *element.Fact
}

// EventElement is one decoded emitted element.
type EventElement struct {
	// Stream is the derived stream name.
	Stream string
	// Timestamp is the element's application time.
	Timestamp temporal.Instant
	// Fields holds the tuple's values by field name.
	Fields map[string]element.Value
}

// Event is one decoded subscription delivery.
type Event struct {
	// Kind is "deltas" (one watermark's filtered batch) or "resync" (a
	// snapshot-pinned catch-up after a gap).
	Kind string
	// Watermark is the instant of the batch that produced the event.
	Watermark temporal.Instant
	// Changes and Emitted are the filtered deltas (deltas events).
	Changes []EventChange
	Emitted []EventElement
	// Result is the continuous query's result when it changed.
	Result *query.Result
	// Cut is the transaction-time cut of a resync; State is the filtered
	// believed state at that cut.
	Cut   temporal.Instant
	State []*element.Fact
}

// Subscription is a live server push stream. Recv blocks for the next
// event; Close tears the stream down. Cursor tracks the last-seen
// watermark for Resubscribe.
type Subscription struct {
	c    *Client
	opts SubscribeOptions
	body io.ReadCloser
	sc   *bufio.Scanner
	// cursor is the watermark of the last received event.
	cursor temporal.Instant
	seen   bool
}

// Subscribe opens a push subscription over SSE.
func (c *Client) Subscribe(o SubscribeOptions) (*Subscription, error) {
	v := url.Values{}
	set := func(k, s string) {
		if s != "" {
			v.Set(k, s)
		}
	}
	set("entity", o.Entity)
	set("attr", o.Attr)
	set("stream", o.Stream)
	set("query", o.Query)
	if o.Changes {
		v.Set("changes", "true")
	}
	if o.Emitted {
		v.Set("emitted", "true")
	}
	if o.QueueLen > 0 {
		v.Set("queue", strconv.Itoa(o.QueueLen))
	}
	if o.HasCursor {
		v.Set("cursor", strconv.FormatInt(int64(o.Cursor), 10))
	}
	resp, err := c.http().Get(c.BaseURL + "/subscribe?" + v.Encode())
	if err != nil {
		return nil, fmt.Errorf("server: subscribe: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, fmt.Errorf("server: subscribe failed (%d): %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	return &Subscription{c: c, opts: o, body: resp.Body, sc: sc}, nil
}

// Recv blocks until the next event arrives and returns it decoded. It
// returns io.EOF once the stream ends.
func (s *Subscription) Recv() (*Event, error) {
	var data []byte
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			if len(data) == 0 {
				continue // keep-alive or event/id-only block
			}
			var wd wireDelivery
			if err := json.Unmarshal(data, &wd); err != nil {
				return nil, fmt.Errorf("server: subscribe decode: %w", err)
			}
			ev := fromWireDelivery(wd)
			s.cursor, s.seen = ev.Watermark, true
			return ev, nil
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		}
	}
	if err := s.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// Cursor returns the watermark of the last received event and whether
// any event has arrived yet.
func (s *Subscription) Cursor() (temporal.Instant, bool) { return s.cursor, s.seen }

// Close tears the stream down. The server drops the subscription.
func (s *Subscription) Close() error { return s.body.Close() }

// Resubscribe opens a fresh subscription with the same options, resuming
// from the last-seen watermark. If that cursor is already behind the
// server's cut, the first event is a resync catch-up.
func (s *Subscription) Resubscribe() (*Subscription, error) {
	o := s.opts
	if s.seen {
		o.Cursor, o.HasCursor = s.cursor, true
	}
	return s.c.Subscribe(o)
}

func fromWireDelivery(wd wireDelivery) *Event {
	ev := &Event{
		Kind:      wd.Kind,
		Watermark: temporal.Instant(wd.Watermark),
		Cut:       temporal.Instant(wd.Cut),
	}
	for _, ch := range wd.Changes {
		ev.Changes = append(ev.Changes, EventChange{
			Kind: ch.Kind, At: temporal.Instant(ch.At), Fact: fromWireFact(ch.Fact),
		})
	}
	for _, el := range wd.Emitted {
		ee := EventElement{Stream: el.Stream, Timestamp: temporal.Instant(el.Timestamp)}
		if len(el.Fields) > 0 {
			ee.Fields = make(map[string]element.Value, len(el.Fields))
			for k, wv := range el.Fields {
				ee.Fields[k] = wv.Value()
			}
		}
		ev.Emitted = append(ev.Emitted, ee)
	}
	if wd.Result != nil {
		res := &query.Result{Columns: wd.Result.Columns}
		for _, row := range wd.Result.Rows {
			vals := make([]element.Value, len(row))
			for i, wv := range row {
				vals[i] = wv.Value()
			}
			res.Rows = append(res.Rows, vals)
		}
		ev.Result = res
	}
	for _, wf := range wd.State {
		ev.State = append(ev.State, fromWireFact(wf))
	}
	return ev
}

// fromWireFact rebuilds a fact from its wire form, including the
// transaction-time interval.
func fromWireFact(wf wireFact) *element.Fact {
	f := element.NewFact(wf.Entity, wf.Attribute, wf.Value.Value(),
		temporal.NewInterval(temporal.Instant(wf.Start), temporal.Instant(wf.End)))
	f.Derived = wf.Derived
	f.Source = wf.Source
	if wf.Superseded != 0 {
		f.RecordedAt = temporal.Instant(wf.Recorded)
		f.SupersededAt = temporal.Instant(wf.Superseded)
	}
	return f
}
